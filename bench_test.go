// Benchmark harness: one benchmark per table and figure of the paper.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the paper-comparable headline values as custom
// benchmark metrics (visible in the standard output line) and logs the full
// rows/series with -v. EXPERIMENTS.md records paper-vs-measured for all of
// them.
package repro_test

import (
	"context"
	"fmt"
	"io"
	"os"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/docking"
	"repro/internal/experiment"
	"repro/internal/forecast"
	"repro/internal/grid"
	"repro/internal/obs"
	"repro/internal/project"
	"repro/internal/protein"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/validate"
	"repro/internal/vftp"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

var (
	sysOnce sync.Once
	sys     *core.System
)

func system() *core.System {
	sysOnce.Do(func() { sys = core.NewHCMD() })
	return sys
}

// campaignOnce caches one scaled campaign run shared by the Figure 6-8 and
// Table 2 benchmarks (they report different views of the same experiment).
var (
	campOnce sync.Once
	campRep  *project.Report
)

// benchScale trades fidelity for speed: 1/42 keeps four ligands per
// receptor and a ~550-host population.
const benchScale = 1.0 / 42

func campaign() *project.Report {
	campOnce.Do(func() { campRep = system().RunCampaign(benchScale, 0) })
	return campRep
}

// --- Campaign hot-path benchmarks (BENCH_campaign.json) ---

// ciBenchScale is the CI smoke-job scale: large enough to exercise the
// deadline wheel, quorum switch and population turnover, small enough for
// a per-PR run. It reuses benchScale so the CI trajectory rows stay
// comparable to the shared figure-benchmark campaign.
const ciBenchScale = benchScale

// benchCampaign measures whole-campaign simulations and, when BENCH_JSON
// names a file, records the run in the BENCH_campaign.json trajectory.
func benchCampaign(b *testing.B, name string, cfg project.Config, label string) {
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	var rep *project.Report
	for i := 0; i < b.N; i++ {
		rep = project.New(cfg).Run()
		if !rep.Completed {
			b.Fatal("campaign did not complete")
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	recordBench(b, name, label, cfg, rep,
		elapsed.Nanoseconds()/int64(b.N),
		int64(ms1.TotalAlloc-ms0.TotalAlloc)/int64(b.N),
		int64(ms1.Mallocs-ms0.Mallocs)/int64(b.N))
}

// recordBench reports the kernel-side metrics and, when BENCH_JSON names a
// file, appends the run to the performance trajectory.
func recordBench(b *testing.B, name, label string, cfg project.Config, rep *project.Report, nsPerOp, bytesPerOp, allocsPerOp int64) {
	b.ReportMetric(float64(rep.EventsExecuted), "events/op")
	b.ReportMetric(float64(rep.PeakPending), "peak-queue")
	b.ReportMetric(rep.WeeksElapsed, "sim-weeks")
	b.ReportMetric(float64(rep.HostsJoined), "hosts")
	path := os.Getenv("BENCH_JSON")
	if path == "" {
		return
	}
	run := experiment.BenchRun{
		Benchmark:       name,
		Label:           label,
		Date:            time.Now().UTC().Format("2006-01-02"),
		Scale:           cfg.WorkScale,
		Shards:          cfg.Shards,
		HostsJoined:     rep.HostsJoined,
		NsPerOp:         nsPerOp,
		BytesPerOp:      bytesPerOp,
		AllocsPerOp:     allocsPerOp,
		EventsExecuted:  rep.EventsExecuted,
		PeakQueueDepth:  rep.PeakPending,
		SimWeeks:        rep.WeeksElapsed,
		ResultsReceived: rep.ServerStats.Received,
	}
	if cfg.HostScale != cfg.WorkScale {
		run.HostScale = cfg.HostScale
	}
	if err := experiment.AppendBenchRun(path, run); err != nil {
		b.Fatalf("recording bench run: %v", err)
	}
	b.Logf("recorded %s (%s) in %s", name, label, path)
}

// BenchmarkCampaignFullScale simulates the complete HCMD phase I campaign —
// WorkScale=1, HostScale=1: every workunit of every protein couple on the
// full ~26k-host population, the paper's ~5M returned results. This is the
// headline number of the performance trajectory; run it with
//
//	BENCH_JSON=BENCH_campaign.json go test -run xxx -bench CampaignFullScale -benchtime 2x
func BenchmarkCampaignFullScale(b *testing.B) {
	benchCampaign(b, "BenchmarkCampaignFullScale", system().CampaignConfig(1, 0), benchLabel())
}

// BenchmarkCampaignCI is the CI-sized variant of the campaign benchmark,
// recorded per PR by the benchmark smoke job.
func BenchmarkCampaignCI(b *testing.B) {
	benchCampaign(b, "BenchmarkCampaignCI", system().CampaignConfig(ciBenchScale, 0), benchLabel())
}

// BenchmarkCampaignCIInstrumented is BenchmarkCampaignCI with the whole
// observability plane armed: the metrics registry sampling every series on
// the default cadence plus the run trace streaming to a discarded sink.
// CI records both rows and gates this one's wall time at +5 % of the bare
// row (benchgate -overhead), pinning the plane's enabled cost.
func BenchmarkCampaignCIInstrumented(b *testing.B) {
	cfg := system().CampaignConfig(ciBenchScale, 0)
	cfg.Probe = &obs.Probe{
		Metrics: obs.NewRegistry(0),
		Trace:   obs.NewTrace(obs.NewSink(io.Discard)),
	}
	benchCampaign(b, "BenchmarkCampaignCIInstrumented", cfg, benchLabel())
}

// BenchmarkCampaignGrid10x is the grid-growth scale milestone: the full
// workload on a grid ten times the 2007 capacity (HostScale=10, ~260k
// volunteer hosts at peak), packaged at 1-hour workunits so the result
// stream grows with the fleet — ~13M distinct workunits and tens of
// millions of kernel events end to end. Run it with
//
//	BENCH_JSON=BENCH_campaign.json go test -run xxx -bench CampaignGrid10x -benchtime 1x
func BenchmarkCampaignGrid10x(b *testing.B) {
	cfg := system().CampaignConfig(1, 1) // 1-hour workunits
	cfg.HostScale = 10
	benchCampaign(b, "BenchmarkCampaignGrid10x", cfg, benchLabel())
}

// megaGrid rescales a campaign configuration to the mega-grid posture: a
// grid `times` the 2007 capacity running the project at full power from
// launch (the §7 phase-II stance — no control period, no ramp; with the
// default §5.1 schedule the campaign finishes inside the 5 %-share control
// weeks and the fleet never ramps).
func megaGrid(cfg project.Config, times float64, shards int) project.Config {
	cfg.HostScale = times
	cfg.ControlWeeks = 0
	cfg.RampWeeks = 0
	cfg.Shards = shards
	return cfg
}

// BenchmarkCampaignGrid100x is the mega-grid milestone: the full workload
// at 1-hour workunits on a grid one hundred times the 2007 capacity — a
// fleet of over a million concurrent volunteer hosts — driven through the
// sharded SoA kernel (K=8, fixed so allocations stay deterministic across
// machines). Run it with
//
//	BENCH_JSON=BENCH_campaign.json go test -run xxx -bench 'CampaignGrid100x$' -benchtime 1x
func BenchmarkCampaignGrid100x(b *testing.B) {
	// 1-hour workunits
	benchCampaign(b, "BenchmarkCampaignGrid100x", megaGrid(system().CampaignConfig(1, 1), 100, 8), benchLabel())
}

// BenchmarkCampaignGrid100xCI is the CI-sized mega-grid variant: the same
// 100:1 host-to-work overprovisioning ratio and the same sharded kernel
// (K=4 fixed), reduced to the CI work scale so the per-PR bench job can
// run and gate it.
func BenchmarkCampaignGrid100xCI(b *testing.B) {
	benchCampaign(b, "BenchmarkCampaignGrid100xCI", megaGrid(system().CampaignConfig(ciBenchScale, 1), 100*ciBenchScale, 4), benchLabel())
}

// BenchmarkSharedGrid2Proj measures a two-project equal-share co-run on
// one shared volunteer population at the CI scale: every host arbitrating
// its work fetches across both project servers through the mux. The
// share-err metric is the arbitration fidelity (max |measured −
// configured| share); the benchgate gates its allocs/op like the other
// campaign benchmarks.
func BenchmarkSharedGrid2Proj(b *testing.B) {
	cfg := system().SharedGridConfig(2, ciBenchScale, nil)
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	var rep *project.GridReport
	for i := 0; i < b.N; i++ {
		rep = project.NewGrid(cfg).Run()
		if !rep.Completed {
			b.Fatal("co-run did not complete")
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	b.ReportMetric(rep.MaxShareError(), "share-err")
	b.ReportMetric(float64(rep.EventsExecuted), "events/op")
	b.ReportMetric(rep.WeeksElapsed, "sim-weeks")
	if path := os.Getenv("BENCH_JSON"); path != "" {
		var results int64
		for _, p := range rep.Projects {
			results += p.ServerStats.Received
		}
		run := experiment.BenchRun{
			Benchmark:       "BenchmarkSharedGrid2Proj",
			Label:           benchLabel(),
			Date:            time.Now().UTC().Format("2006-01-02"),
			Scale:           cfg.Projects[0].WorkScale,
			NsPerOp:         elapsed.Nanoseconds() / int64(b.N),
			BytesPerOp:      int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(b.N),
			AllocsPerOp:     int64(ms1.Mallocs-ms0.Mallocs) / int64(b.N),
			EventsExecuted:  rep.EventsExecuted,
			PeakQueueDepth:  rep.PeakPending,
			SimWeeks:        rep.WeeksElapsed,
			ResultsReceived: results,
		}
		if err := experiment.AppendBenchRun(path, run); err != nil {
			b.Fatalf("recording bench run: %v", err)
		}
		b.Logf("recorded BenchmarkSharedGrid2Proj (%s) in %s", run.Label, path)
	}
}

// BenchmarkSweepCell measures one sweep cell through the pooled
// project.Runner — the unit of work internal/experiment schedules per
// worker. The first run (outside the timed loop) builds the arenas; every
// timed iteration is a steady-state replication reusing them. The
// steady-vs-first-% metric is the reuse payoff: steady-state replications
// must allocate under 10 % of the first run's bytes.
func BenchmarkSweepCell(b *testing.B) {
	cfg := system().CampaignConfig(1.0/84, 0) // the sweep CLI's default scale
	runner := project.NewRunner()
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	if rep := runner.Run(cfg); !rep.Completed {
		b.Fatal("first campaign did not complete")
	}
	runtime.ReadMemStats(&ms1)
	firstBytes := ms1.TotalAlloc - ms0.TotalAlloc

	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	var rep *project.Report
	for i := 0; i < b.N; i++ {
		rep = runner.Run(cfg)
		if !rep.Completed {
			b.Fatal("campaign did not complete")
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)
	steadyBytes := int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(b.N)
	b.ReportMetric(float64(steadyBytes)/float64(firstBytes)*100, "steady-vs-first-%")
	recordBench(b, "BenchmarkSweepCell", benchLabel(), cfg, rep,
		elapsed.Nanoseconds()/int64(b.N), steadyBytes,
		int64(ms1.Mallocs-ms0.Mallocs)/int64(b.N))
}

// forkWhatIfGroup is the week-14 what-if group: eight variants of the
// deployed quorum-switch week, every one behavior-identical to the base
// trajectory until the base switches at week 14 — the canonical use case
// for prefix-shared sweeps (what if the team had kept quorum 2 longer?).
func forkWhatIfGroup() []experiment.Scenario {
	var scens []experiment.Scenario
	for k := 1; k <= 8; k++ {
		wk := 14 + k
		scens = append(scens, experiment.Scenario{
			Name:        fmt.Sprintf("switch-w%d", wk),
			Description: fmt.Sprintf("quorum 2→1 switch moved to week %d", wk),
			DivergesAt:  14 * sim.Week,
			Mutate: func(cfg *project.Config) {
				cfg.Server.QuorumSwitchTime = sim.Time(wk) * sim.Week
			},
		})
	}
	return scens
}

// BenchmarkSweepForked measures the prefix-sharing payoff on the week-14
// what-if group: with -fork the base trajectory runs once to the quorum
// switch and all eight variants fork from the snapshot, simulating only
// their post-divergence suffix. The base is the flat-share posture (no
// control/ramp phase) with the fleet sized so the campaign completes a
// couple of weeks past the switch — the regime the fork path is built
// for, where nearly all simulated time is shared prefix. The unforked
// reference runs outside the timed loop; speedup-x is its wall time over
// the forked per-op time, and the benchmark fails if the two modes
// disagree on a single result byte.
func BenchmarkSweepForked(b *testing.B) {
	cfg := system().CampaignConfig(1.0/84, 0) // the sweep CLI's default scale
	cfg.ControlWeeks, cfg.RampWeeks = 0, 0    // flat share: quorum is the only divergence axis
	cfg.HostScale = 2.5 / 84                  // completion lands shortly after the week-14 switch
	opts := experiment.Options{
		Base:      cfg,
		Scenarios: forkWhatIfGroup(),
		Reps:      1,
		Workers:   1, // speedup-x measures simulation work saved, not parallelism
	}

	t0 := time.Now()
	unforked, err := experiment.Run(context.Background(), opts)
	if err != nil {
		b.Fatal(err)
	}
	unforkedSecs := time.Since(t0).Seconds()

	opts.Fork = true
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	var sweep *experiment.Sweep
	for i := 0; i < b.N; i++ {
		sweep, err = experiment.Run(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)

	if !reflect.DeepEqual(unforked.Results, sweep.Results) {
		b.Fatal("forked sweep results differ from unforked")
	}
	if sweep.PrefixHits != len(opts.Scenarios) {
		b.Fatalf("prefix hits = %d, want %d (a fork fell back to a standalone run)",
			sweep.PrefixHits, len(opts.Scenarios))
	}
	forkedSecs := elapsed.Seconds() / float64(b.N)
	b.ReportMetric(unforkedSecs/forkedSecs, "speedup-x")
	b.ReportMetric(sweep.SavedSimWeeks, "saved-sim-weeks")
	b.ReportMetric(float64(sweep.PrefixHits), "prefix-hits")

	if path := os.Getenv("BENCH_JSON"); path != "" {
		run := experiment.BenchRun{
			Benchmark:   "BenchmarkSweepForked",
			Label:       benchLabel(),
			Date:        time.Now().UTC().Format("2006-01-02"),
			Scale:       cfg.WorkScale,
			HostScale:   cfg.HostScale,
			NsPerOp:     elapsed.Nanoseconds() / int64(b.N),
			BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(b.N),
			AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(b.N),
			SimWeeks:    sweep.SavedSimWeeks,
		}
		if err := experiment.AppendBenchRun(path, run); err != nil {
			b.Fatalf("recording bench run: %v", err)
		}
		b.Logf("recorded BenchmarkSweepForked (%s) in %s", run.Label, path)
	}
}

// BenchmarkSweepForkedParallel measures the fork fan-out payoff on the
// same week-14 what-if group: the shared prefix runs once, is captured as
// a portable snapshot, and the eight divergent suffixes adopt it on eight
// pooled runners and race instead of forking sequentially on the
// publisher. speedup-x is the sequential forked sweep's wall time (one
// worker, the BenchmarkSweepForked configuration) over the parallel per-op
// time, so it isolates what the fan-out recovers from idle cores beyond
// what prefix sharing already saved; the benchmark fails if the two modes
// disagree on a single result byte or a chunk silently fell back.
func BenchmarkSweepForkedParallel(b *testing.B) {
	cfg := system().CampaignConfig(1.0/84, 0)
	cfg.ControlWeeks, cfg.RampWeeks = 0, 0
	cfg.HostScale = 2.5 / 84
	opts := experiment.Options{
		Base:      cfg,
		Scenarios: forkWhatIfGroup(),
		Reps:      1,
		Workers:   1,
		Fork:      true,
	}

	t0 := time.Now()
	sequential, err := experiment.Run(context.Background(), opts)
	if err != nil {
		b.Fatal(err)
	}
	sequentialSecs := time.Since(t0).Seconds()

	opts.Workers, opts.ForkWorkers = 8, 8
	var ms0, ms1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&ms0)
	b.ResetTimer()
	start := time.Now()
	var sweep *experiment.Sweep
	for i := 0; i < b.N; i++ {
		sweep, err = experiment.Run(context.Background(), opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	b.StopTimer()
	runtime.ReadMemStats(&ms1)

	if !reflect.DeepEqual(sequential.Results, sweep.Results) {
		b.Fatal("parallel-forked sweep results differ from sequential-forked")
	}
	if sweep.PrefixHits != len(opts.Scenarios) {
		b.Fatalf("prefix hits = %d, want %d (a fork fell back to a standalone run)",
			sweep.PrefixHits, len(opts.Scenarios))
	}
	if sweep.AdoptedRunners == 0 || sweep.ForksParallel == 0 {
		b.Fatalf("no fan-out happened (adopted=%d, parallel forks=%d) — Materialize fell back",
			sweep.AdoptedRunners, sweep.ForksParallel)
	}
	parallelSecs := elapsed.Seconds() / float64(b.N)
	b.ReportMetric(sequentialSecs/parallelSecs, "speedup-x")
	b.ReportMetric(float64(sweep.ForksParallel), "parallel-forks")
	b.ReportMetric(float64(sweep.SnapshotBytes), "snapshot-bytes")
	b.ReportMetric(sweep.ParallelSpeedup, "tree-speedup-x")

	if path := os.Getenv("BENCH_JSON"); path != "" {
		run := experiment.BenchRun{
			Benchmark:   "BenchmarkSweepForkedParallel",
			Label:       benchLabel(),
			Date:        time.Now().UTC().Format("2006-01-02"),
			Scale:       cfg.WorkScale,
			HostScale:   cfg.HostScale,
			NsPerOp:     elapsed.Nanoseconds() / int64(b.N),
			BytesPerOp:  int64(ms1.TotalAlloc-ms0.TotalAlloc) / int64(b.N),
			AllocsPerOp: int64(ms1.Mallocs-ms0.Mallocs) / int64(b.N),
			SimWeeks:    sweep.SavedSimWeeks,
		}
		if err := experiment.AppendBenchRun(path, run); err != nil {
			b.Fatalf("recording bench run: %v", err)
		}
		b.Logf("recorded BenchmarkSweepForkedParallel (%s) in %s", run.Label, path)
	}
}

// benchLabel tags recorded runs; CI sets BENCH_LABEL to the PR/commit.
func benchLabel() string {
	if l := os.Getenv("BENCH_LABEL"); l != "" {
		return l
	}
	return "local"
}

// BenchmarkFigure1_GridVFTP regenerates the grid-wide daily VFTP series
// since the World Community Grid launch (growth, weekend dips, holiday
// troughs).
func BenchmarkFigure1_GridVFTP(b *testing.B) {
	s := system()
	var series *stats.Series
	for i := 0; i < b.N; i++ {
		series = s.Figure1(3 * 364)
	}
	b.ReportMetric(series.YMean(), "mean-vftp")
	b.ReportMetric(series.YMax(), "peak-vftp")
	// Paper (late 2007): ~74,825 VFTP the week the paper was written.
	last := series.Window(float64(series.Len()-28), float64(series.Len()))
	b.ReportMetric(last.YMean(), "final-month-vftp")
}

// BenchmarkFigure2_NsepDistribution regenerates the starting-position
// histogram: most proteins below 3,000 positions, one above 8,000,
// Σ Nsep = 294,533.
func BenchmarkFigure2_NsepDistribution(b *testing.B) {
	s := system()
	var h *stats.Histogram
	for i := 0; i < b.N; i++ {
		h = s.Figure2()
	}
	b.ReportMetric(float64(s.DS.SumNsep()), "sum-nsep")
	b.ReportMetric(float64(s.DS.MaxNsep()), "max-nsep")
	b.ReportMetric(float64(h.MaxBin()), "modal-bin")
	if b.N > 0 && s.DS.SumNsep() != protein.TotalNsep {
		b.Fatalf("ΣNsep = %d, want %d", s.DS.SumNsep(), protein.TotalNsep)
	}
}

// BenchmarkFigure3a_NrotLinearity verifies run time is linear in the number
// of rotations (paper: correlation ≈ 0.99).
func BenchmarkFigure3a_NrotLinearity(b *testing.B) {
	s := system()
	var rep costmodel.LinearityReport
	for i := 0; i < b.N; i++ {
		rep = s.Figure3(0, 1)
	}
	b.ReportMetric(rep.NrotR, "pearson-r")
	b.ReportMetric(rep.NrotFit.R2, "r2")
}

// BenchmarkFigure3b_NsepLinearity verifies run time is linear in the number
// of starting positions.
func BenchmarkFigure3b_NsepLinearity(b *testing.B) {
	s := system()
	var rep costmodel.LinearityReport
	for i := 0; i < b.N; i++ {
		rep = s.Figure3(2, 3)
	}
	b.ReportMetric(rep.NsepR, "pearson-r")
	b.ReportMetric(rep.NsepFit.R2, "r2")
}

// BenchmarkTable1_CostMatrixStats regenerates the computation-time matrix
// statistics (paper: mean 671, σ 968.04, min 6, max 46,347, median 384).
func BenchmarkTable1_CostMatrixStats(b *testing.B) {
	s := system()
	var st stats.Summary
	for i := 0; i < b.N; i++ {
		st = s.Table1()
	}
	b.ReportMetric(st.Mean, "mean-s")
	b.ReportMetric(st.Std, "std-s")
	b.ReportMetric(st.Median, "median-s")
	b.ReportMetric(st.Max, "max-s")
	count, _ := s.Matrix.TopShare(s.DS, 0.30)
	b.ReportMetric(float64(count), "top30pct-proteins")
}

// BenchmarkFormula1_TotalWork evaluates the total-work formula (paper:
// 1,488 years 237 days 19:45:54 ⇒ 46,946,115,954 s).
func BenchmarkFormula1_TotalWork(b *testing.B) {
	s := system()
	var total float64
	for i := 0; i < b.N; i++ {
		total = s.TotalWork()
	}
	b.ReportMetric(total/86400/365, "cpu-years")
	b.ReportMetric(total/costmodel.PaperTotalSeconds, "vs-paper-ratio")
}

// BenchmarkFigure4_Packaging runs the §4.2 packaging at both durations the
// paper plots (paper: 1,364,476 workunits at 10 h; 3,599,937 at 4 h).
func BenchmarkFigure4_Packaging(b *testing.B) {
	s := system()
	var c10, c4 int64
	for i := 0; i < b.N; i++ {
		c10 = s.Package(10).Count()
		c4 = s.Package(4).Count()
	}
	b.ReportMetric(float64(c10), "wu-at-10h")
	b.ReportMetric(float64(c4), "wu-at-4h")
}

// BenchmarkFigure6a_ProjectVFTP reports the weekly project VFTP of the
// campaign simulation (paper: average 16,450; full-power 26,248).
func BenchmarkFigure6a_ProjectVFTP(b *testing.B) {
	var rep *project.Report
	for i := 0; i < b.N; i++ {
		rep = campaign()
	}
	b.ReportMetric(rep.AvgVFTPWhole, "avg-vftp")
	b.ReportMetric(rep.AvgVFTPFullPower, "fullpower-vftp")
	b.ReportMetric(rep.WeeksElapsed, "weeks")
	if testing.Verbose() {
		for i := 0; i < rep.HCMDVFTP.Len(); i++ {
			b.Logf("week %2.0f: %8.0f VFTP (grid %8.0f)",
				rep.HCMDVFTP.X[i], rep.HCMDVFTP.Y[i], rep.GridVFTP.Y[i])
		}
	}
}

// BenchmarkFigure6b_Results reports the result counts and redundancy
// (paper: 5,418,010 received / 3,936,010 distinct = 1.37; 73 % useful).
func BenchmarkFigure6b_Results(b *testing.B) {
	var rep *project.Report
	for i := 0; i < b.N; i++ {
		rep = campaign()
	}
	b.ReportMetric(rep.ServerStats.RedundancyFactor(), "redundancy")
	b.ReportMetric(rep.ServerStats.UsefulFraction()*100, "useful-pct")
	b.ReportMetric(float64(rep.ServerStats.Received)/benchScale, "results-scaled")
}

// BenchmarkFigure7_Progression reports the per-protein progression
// (paper at 05-02-07: 85 % of proteins docked = 47 % of the computation).
func BenchmarkFigure7_Progression(b *testing.B) {
	var rep *project.Report
	for i := 0; i < b.N; i++ {
		rep = campaign()
	}
	for _, sn := range rep.Snapshots {
		if testing.Verbose() {
			b.Logf("week %5.1f: %3.0f%% proteins, %3.0f%% work",
				sn.Week, sn.ProteinsDoneFraction()*100, sn.OverallFraction*100)
		}
	}
	if len(rep.Snapshots) >= 3 {
		mid := rep.Snapshots[2]
		b.ReportMetric(mid.ProteinsDoneFraction()*100, "w19-proteins-pct")
		b.ReportMetric(mid.OverallFraction*100, "w19-work-pct")
	}
}

// BenchmarkFigure8_RealWorkunits reports the deployed workunit duration
// distribution (paper: bulk at 3-4 h on the reference CPU, mean 3 h 18 m;
// observed mean on the grid ≈ 13 h ⇒ speed-down 3.96).
func BenchmarkFigure8_RealWorkunits(b *testing.B) {
	s := system()
	var sum float64
	var rep *project.Report
	for i := 0; i < b.N; i++ {
		pkg := s.Figure4(project.DeployedHHours)
		sum = pkg.MeanSeconds / 3600
		rep = campaign()
	}
	b.ReportMetric(sum, "packaged-mean-h")
	b.ReportMetric(rep.MeanReportedH, "observed-mean-h")
	b.ReportMetric(rep.SpeedDownObserved(sum), "speeddown")
}

// BenchmarkTable2_GridEquivalence converts the run's VFTP into dedicated
// processors (paper: 16,450→3,029 and 26,248→4,833).
func BenchmarkTable2_GridEquivalence(b *testing.B) {
	var rows []vftp.EquivalenceRow
	for i := 0; i < b.N; i++ {
		rows = campaign().Table2()
	}
	b.ReportMetric(rows[0].Dedicated, "whole-dedicated")
	b.ReportMetric(rows[1].Dedicated, "fullpower-dedicated")
	// The paper's own inputs must give the exact published values.
	paper := vftp.PaperTable2()
	b.ReportMetric(paper[0].Dedicated, "paper-whole-dedicated")
	b.ReportMetric(paper[1].Dedicated, "paper-fullpower-dedicated")
}

// BenchmarkTable3_PhaseII evaluates the §7 phase II plan (paper:
// 1,444,998,719,637 s; 59,730 VFTP; 300,430 members).
func BenchmarkTable3_PhaseII(b *testing.B) {
	var fc forecast.Forecast
	for i := 0; i < b.N; i++ {
		fc = forecast.PaperForecast()
	}
	b.ReportMetric(fc.WorkRatio, "work-ratio")
	b.ReportMetric(fc.VFTPII, "phase2-vftp")
	b.ReportMetric(fc.MembersII, "phase2-members")
}

// BenchmarkSection7_Members reports the §7 text estimates (paper: ~90 weeks
// at the phase I rate; ~1,300,000 members at a 25 % share).
func BenchmarkSection7_Members(b *testing.B) {
	var fc forecast.Forecast
	for i := 0; i < b.N; i++ {
		fc = forecast.PaperForecast()
	}
	b.ReportMetric(fc.WeeksAtPhaseIRate, "weeks-at-phase1-rate")
	b.ReportMetric(fc.GridMembersNeeded, "members-needed")
	b.ReportMetric(fc.NewMembersNeeded, "new-members")
}

// --- Ablations (DESIGN.md §4) ---

// ablationScale is smaller than benchScale: ablations run several campaigns.
const ablationScale = 1.0 / 168

func ablationConfig() project.Config {
	return system().CampaignConfig(ablationScale, 0)
}

// BenchmarkAblationLaunchOrder compares completion under the three batch
// release orders. Cheapest-first is the production policy.
func BenchmarkAblationLaunchOrder(b *testing.B) {
	var cheap, random, costly float64
	for i := 0; i < b.N; i++ {
		for _, c := range []struct {
			order project.LaunchOrder
			out   *float64
		}{
			{project.CheapestFirst, &cheap},
			{project.RandomOrder, &random},
			{project.CostliestFirst, &costly},
		} {
			cfg := ablationConfig()
			cfg.Order = c.order
			rep := project.New(cfg).Run()
			// Early-visibility criterion (§5.1): proteins fully docked at
			// the first snapshot — the reason the team launched cheapest
			// first.
			*c.out = rep.Snapshots[0].ProteinsDoneFraction() * 100
		}
	}
	b.ReportMetric(cheap, "cheapfirst-w13-proteins-pct")
	b.ReportMetric(random, "random-w13-proteins-pct")
	b.ReportMetric(costly, "costlyfirst-w13-proteins-pct")
}

// BenchmarkAblationWorkunitSize sweeps the wanted duration h: smaller
// workunits mean more server transactions (§3.2), larger ones risk the
// 10-hour volunteer patience budget.
func BenchmarkAblationWorkunitSize(b *testing.B) {
	s := system()
	var counts [4]float64
	hs := [4]float64{1, 4, 10, 24}
	for i := 0; i < b.N; i++ {
		for j, h := range hs {
			counts[j] = float64(s.Package(h).Count())
		}
	}
	b.ReportMetric(counts[0], "wu-1h")
	b.ReportMetric(counts[1], "wu-4h")
	b.ReportMetric(counts[2], "wu-10h")
	b.ReportMetric(counts[3], "wu-24h")
}

// BenchmarkAblationRedundancy compares always-quorum-2 validation against
// the deployed mid-project switch to value checks.
func BenchmarkAblationRedundancy(b *testing.B) {
	var deployed, always2 float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		deployed = project.New(cfg).Run().ServerStats.RedundancyFactor()

		cfg2 := ablationConfig()
		cfg2.Server = wcg.Config{InitialQuorum: 2, SteadyQuorum: 2, Deadline: cfg2.Server.Deadline}
		always2 = project.New(cfg2).Run().ServerStats.RedundancyFactor()
	}
	b.ReportMetric(deployed, "deployed-redundancy")
	b.ReportMetric(always2, "always-quorum2-redundancy")
}

// BenchmarkAblationSpeeddown removes the UD throttle factor from the host
// population (§6 decomposition: the 60 % cap alone costs 1.67×).
func BenchmarkAblationSpeeddown(b *testing.B) {
	var with, without float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		with = project.New(cfg).Run().WeeksElapsed

		cfg2 := ablationConfig()
		cfg2.Host.MeanSpeedDown = volunteer.MeanSpeedDown / volunteer.UDThrottleFactor
		without = project.New(cfg2).Run().WeeksElapsed
	}
	b.ReportMetric(with, "throttled-weeks")
	b.ReportMetric(without, "unthrottled-weeks")
}

// BenchmarkAblationScheduler compares the volunteer grid against the ideal
// dedicated scheduler on the same work (the §6 comparison executed, not
// just accounted).
func BenchmarkAblationScheduler(b *testing.B) {
	var volunteerWeeks, dedicatedWeeks float64
	for i := 0; i < b.N; i++ {
		rep := campaign()
		volunteerWeeks = rep.WeeksElapsed
		// Same distinct work on the Table 2 dedicated equivalent.
		procs := int(rep.Table2()[1].Dedicated * benchScale)
		if procs < 1 {
			procs = 1
		}
		cluster := grid.NewCluster(procs)
		dedicatedWeeks = cluster.AnalyticMakespan(rep.TotalRefWork) / (7 * 86400)
	}
	b.ReportMetric(volunteerWeeks, "volunteer-weeks")
	b.ReportMetric(dedicatedWeeks, "dedicated-weeks")
}

// BenchmarkKernelDock measures the docking kernel itself (one starting
// position, one rotation group).
func BenchmarkKernelDock(b *testing.B) {
	ds := system().DS
	rec, lig := ds.Proteins[0], ds.Proteins[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = docking.Dock(rec, lig, 1, 1, docking.MinimizeParams{MaxIter: 10, GammaSub: 2})
	}
}

// BenchmarkFullCampaignScaled measures a whole scaled campaign simulation
// per iteration (the cost of one Figure 6 regeneration).
func BenchmarkFullCampaignScaled(b *testing.B) {
	s := system()
	for i := 0; i < b.N; i++ {
		rep := s.RunCampaign(ablationScale, 0)
		if !rep.Completed {
			b.Fatal("campaign did not complete")
		}
	}
}

// BenchmarkAblationAccounting compares the §8 accounting modes: the UD
// agent's wall-clock VFTP vs the BOINC agent's CPU-time VFTP for the same
// physical campaign.
func BenchmarkAblationAccounting(b *testing.B) {
	var udVFTP, boincVFTP float64
	for i := 0; i < b.N; i++ {
		cfgUD := ablationConfig()
		cfgUD.Host.Accounting = volunteer.UDWallClock
		udVFTP = project.New(cfgUD).Run().AvgVFTPWhole

		cfgB := ablationConfig()
		cfgB.Host.Accounting = volunteer.BOINCCPUTime
		boincVFTP = project.New(cfgB).Run().AvgVFTPWhole
	}
	b.ReportMetric(udVFTP, "ud-vftp")
	b.ReportMetric(boincVFTP, "boinc-vftp")
	if boincVFTP > 0 {
		b.ReportMetric(udVFTP/boincVFTP, "accounting-ratio")
	}
}

// BenchmarkPhaseIISimulated validates Table 3 dynamically: the phase II
// workload on a constant 59,730-VFTP grid slice (paper prediction:
// 40 weeks).
func BenchmarkPhaseIISimulated(b *testing.B) {
	var weeks float64
	for i := 0; i < b.N; i++ {
		weeks = system().SimulatePhaseII(1.0 / 168).WeeksElapsed
	}
	b.ReportMetric(weeks, "phase2-weeks")
	b.ReportMetric(forecast.PaperForecast().WeeksII, "predicted-weeks")
}

// BenchmarkArchiveEstimate reproduces the §5.2 archive accounting (paper:
// 123 GB of text, 45 GB compressed).
func BenchmarkArchiveEstimate(b *testing.B) {
	var text, compressed int64
	for i := 0; i < b.N; i++ {
		_, text, compressed = validate.EstimateArchive(system().DS)
	}
	b.ReportMetric(float64(text)/1e9, "text-GB")
	b.ReportMetric(float64(compressed)/1e9, "compressed-GB")
}

// BenchmarkServerCapacity reproduces the §3.2 transaction-rate planning.
func BenchmarkServerCapacity(b *testing.B) {
	var load float64
	cap := wcg.DefaultServerCapacity()
	for i := 0; i < b.N; i++ {
		count := system().Package(project.DeployedHHours).Count()
		load = cap.LoadFor(count, vftp.PaperRedundancy, 26*7*86400)
	}
	b.ReportMetric(load, "tx-per-sec")
}

// BenchmarkAblationWorkBuffer sweeps the agent's work-cache depth: deeper
// buffers increase task turnaround and timeout-driven redundancy.
func BenchmarkAblationWorkBuffer(b *testing.B) {
	var red1, red8 float64
	for i := 0; i < b.N; i++ {
		cfg := ablationConfig()
		cfg.Host.WorkBuffer = 1
		red1 = project.New(cfg).Run().ServerStats.RedundancyFactor()

		cfg8 := ablationConfig()
		cfg8.Host.WorkBuffer = 8
		red8 = project.New(cfg8).Run().ServerStats.RedundancyFactor()
	}
	b.ReportMetric(red1, "buffer1-redundancy")
	b.ReportMetric(red8, "buffer8-redundancy")
}
