// Command benchgate is the CI allocation-regression gate: it compares a
// freshly measured benchmark file against the checked-in
// BENCH_campaign.json baseline and exits non-zero when allocs/op grew
// beyond the allowed margin for any gated benchmark. Allocations are
// deterministic for a deterministic simulation, so the gate is
// machine-independent — unlike ns/op, which is deliberately not gated.
//
// Five benchmarks are gated by default: BenchmarkCampaignCI (the fresh
// one-shot campaign), BenchmarkSweepCell (the pooled steady-state
// replication, which is where arena-reuse regressions hide),
// BenchmarkCampaignGrid10x (the grid-growth scale milestone, where
// per-host overheads that vanish at CI scale show up multiplied by the
// fleet), BenchmarkSweepForked (the prefix-shared sweep, where
// snapshot/restore copy regressions hide), and
// BenchmarkSweepForkedParallel (the fan-out sweep, where portable-snapshot
// capture/adoption copy regressions hide).
//
// Usage:
//
//	benchgate -baseline BENCH_campaign.json -current BENCH_ci.json \
//	          [-bench BenchmarkCampaignCI,BenchmarkSweepCell,BenchmarkCampaignGrid10x,BenchmarkSweepForked,BenchmarkSweepForkedParallel] \
//	          [-max-alloc-growth 0.10] \
//	          [-overhead Instrumented:Bare] [-max-overhead 0.05]
//
// -overhead adds the observability-plane wall-time gate: both named
// benchmarks must appear in the -current file (same machine, same session,
// which is what makes ns/op comparable) and the first must not be slower
// than the second by more than -max-overhead.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiment"
)

func main() {
	baseline := flag.String("baseline", "BENCH_campaign.json", "checked-in benchmark trajectory (the baseline)")
	current := flag.String("current", "", "freshly measured benchmark file to gate")
	bench := flag.String("bench", "BenchmarkCampaignCI,BenchmarkSweepCell,BenchmarkCampaignGrid10x,BenchmarkSweepForked,BenchmarkSweepForkedParallel", "comma-separated benchmark names to compare")
	maxGrowth := flag.Float64("max-alloc-growth", 0.10, "allowed allocs/op growth over the baseline (0.10 = +10%)")
	overhead := flag.String("overhead", "", "Instrumented:Bare pair in the current file to wall-time-gate against each other")
	maxOverhead := flag.Float64("max-overhead", 0.05, "allowed instrumented ns/op overhead over the bare run (0.05 = +5%)")
	flag.Parse()

	if err := run(*baseline, *current, *bench, *maxGrowth, *overhead, *maxOverhead); err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(1)
	}
}

func run(baselinePath, currentPath, benchSpec string, maxGrowth float64, overheadSpec string, maxOverhead float64) error {
	if currentPath == "" {
		return fmt.Errorf("-current is required")
	}
	base, err := experiment.ReadBenchFile(baselinePath)
	if err != nil {
		return err
	}
	cur, err := experiment.ReadBenchFile(currentPath)
	if err != nil {
		return err
	}
	gated := 0
	for _, bench := range strings.Split(benchSpec, ",") {
		bench = strings.TrimSpace(bench)
		if bench == "" {
			continue
		}
		if err := experiment.AllocGate(base, cur, bench, maxGrowth); err != nil {
			return err
		}
		b, _ := base.LatestRun(bench)
		c, _ := cur.LatestRun(bench)
		fmt.Printf("benchgate: %s ok — %d allocs/op (%q) vs %d baseline (%q), limit +%.0f%%\n",
			bench, c.AllocsPerOp, c.Label, b.AllocsPerOp, b.Label, maxGrowth*100)
		gated++
	}
	if gated == 0 {
		return fmt.Errorf("-bench selected no benchmarks")
	}
	if overheadSpec != "" {
		inst, bare, ok := strings.Cut(overheadSpec, ":")
		if !ok || inst == "" || bare == "" {
			return fmt.Errorf("-overhead wants Instrumented:Bare, got %q", overheadSpec)
		}
		if err := experiment.OverheadGate(cur, inst, bare, maxOverhead); err != nil {
			return err
		}
		i, _ := cur.LatestRun(inst)
		b, _ := cur.LatestRun(bare)
		fmt.Printf("benchgate: %s ok — %.2fms/op vs %.2fms/op bare (%+.1f%%), limit +%.0f%%\n",
			inst, float64(i.NsPerOp)/1e6, float64(b.NsPerOp)/1e6,
			100*(float64(i.NsPerOp)/float64(b.NsPerOp)-1), maxOverhead*100)
	}
	return nil
}
