// Command forecast evaluates the §7 phase II plan (Table 3) and arbitrary
// what-if variants of it.
//
// Usage:
//
//	forecast [-proteins 4000] [-reduction 100] [-weeks 40] [-share 0.25]
package main

import (
	"flag"
	"fmt"

	"repro/internal/forecast"
	"repro/internal/report"
)

func main() {
	proteins := flag.Int("proteins", 4000, "phase II protein count")
	reduction := flag.Float64("reduction", 100, "docking-point reduction factor")
	weeks := flag.Float64("weeks", 40, "wanted completion time (weeks)")
	share := flag.Float64("share", 0.25, "project share of the grid")
	flag.Parse()

	plan := forecast.PhaseIIPlan{
		Proteins:        *proteins,
		PointsReduction: *reduction,
		TargetWeeks:     *weeks,
		GridShare:       *share,
	}
	fc := forecast.Estimate(forecast.PaperPhaseI(), plan)

	t := report.NewTable("Table 3: evaluation of the HCMD phase II",
		"", "HCMD phase I", "HCMD phase II")
	for _, r := range fc.Table3() {
		t.AddRow(r.Label, report.Comma(r.PhaseI), report.Comma(r.PhaseII))
	}
	fmt.Print(t.String())
	fmt.Printf("\nwork ratio phase II / phase I: %.2f\n", fc.WorkRatio)
	fmt.Printf("at the phase I rate phase II takes %.0f weeks\n", fc.WeeksAtPhaseIRate)
	if fc.GridMembersNeeded > 0 {
		fmt.Printf("members needed at %.0f%% grid share: %s (%s new volunteers)\n",
			*share*100, report.Comma(fc.GridMembersNeeded), report.Comma(fc.NewMembersNeeded))
	}
}
