// Command gridcmp compares the volunteer grid with a dedicated grid (§6,
// Table 2): it converts virtual full-time processors into equivalent
// dedicated reference processors and reports the dedicated-grid makespan of
// the whole campaign.
//
// Usage:
//
//	gridcmp [-vftp-whole 16450] [-vftp-full 26248] [-factor 5.43] [-procs 640]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
	"repro/internal/vftp"
)

func main() {
	whole := flag.Float64("vftp-whole", 16450, "whole-period volunteer VFTP")
	full := flag.Float64("vftp-full", 26248, "full-power-phase volunteer VFTP")
	factor := flag.Float64("factor", vftp.PaperTotalFactor, "total CPU inflation (speed-down × redundancy)")
	procs := flag.Int("procs", 4833, "dedicated cluster size for the makespan estimate")
	flag.Parse()

	rows := vftp.Table2(*whole, *full, *factor)
	t := report.NewTable("Table 2: equivalence between volunteer VFTP and dedicated processors",
		"Grid", "whole period", "full power working phase")
	t.AddRow("World Community Grid", report.Comma(rows[0].Volunteer), report.Comma(rows[1].Volunteer))
	t.AddRow("Dedicated Grid", report.Comma(rows[0].Dedicated), report.Comma(rows[1].Dedicated))
	fmt.Print(t.String())

	sys := core.NewHCMD()
	total := sys.TotalWork()
	mk := grid.NewCluster(*procs).AnalyticMakespan(total)
	fmt.Printf("\ncampaign total: %s on the reference CPU\n", report.FormatYDHMS(total))
	fmt.Printf("dedicated makespan on %s processors: %.1f weeks\n",
		report.Comma(float64(*procs)), mk/(7*86400))
	fmt.Printf("processors to finish in 26 weeks: %s\n",
		report.Comma(float64(grid.ProcessorsFor(total, 26*7*86400))))
}
