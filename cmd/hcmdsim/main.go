// Command hcmdsim runs the full HCMD phase I reproduction: it assembles the
// benchmark, calibrates the cost matrix, packages workunits, simulates the
// campaign on the volunteer grid, and prints every table and figure of the
// paper. With -outdir it also writes the figure series as CSV files.
//
// Usage:
//
//	hcmdsim [-scale 1/N] [-hours H] [-outdir DIR] [-seed S] [-shards K]
//	        [-coshare F] [-cpuprofile FILE] [-memprofile FILE]
//	        [-metrics FILE] [-trace FILE] [-sample-every S]
//	        [-maintenance-hours H] [-outage-rate R] [-outage-hours H]
//	        [-upload-loss P] [-churn-weekly F] [-fault-seed N]
//
// The default scale (1/84) finishes in seconds; -scale 1 simulates the full
// 3.9-million-workunit campaign (minutes, several GB of events).
//
// -shards K runs the campaign on the deterministic sharded time-window
// kernel with K worker shards instead of the legacy single-heap kernel.
// The printed tables are byte-identical for every K (the sharded kernel is
// golden-hash pinned to the legacy one); sharding pays off at mega-grid
// host scales. The -coshare co-run always uses the legacy shared
// population plane.
//
// With -coshare F (0 < F < 1) it additionally co-runs the HCMD workload at
// resource share F on a shared grid against a phase-II-sized co-project
// holding 1−F, then recomputes the §7 member arithmetic from the measured
// share next to the assumed one — the Table 3 grid-share assumption
// cross-validated by simulation instead of taken as a constant.
//
// The fault flags install the internal/faults plane under the campaign:
// planned weekly maintenance windows, seeded unplanned outages, flaky
// result uploads, and permanent host churn with replacement joins. Hosts
// degrade gracefully (capped exponential backoff, smeared reconnects,
// upload retries) and the run ends with a one-line fault summary. Fault
// runs stay byte-identical across -shards values.
//
// -cpuprofile / -memprofile write pprof files covering the run, the same
// profiling loop cmd/sweep has. -metrics / -trace attach the observability
// probe to the campaign simulation and stream its sim-time metric samples
// and structured run-trace events as NDJSON; the probe is run-neutral, so
// an instrumented campaign prints exactly the tables a bare one does.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/forecast"
	"repro/internal/obs"
	"repro/internal/project"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	scale := flag.Float64("scale", 1.0/84, "work and host scale (0 < s <= 1)")
	hours := flag.Float64("hours", 0, "workunit target duration in hours (0 = deployed 3.7)")
	outdir := flag.String("outdir", "", "directory for CSV figure series (optional)")
	fig1Days := flag.Int("fig1days", 3*364, "days of grid history for Figure 1")
	seed := flag.Uint64("seed", 0, "campaign seed (0 = the deployed default)")
	shards := flag.Int("shards", 0, "sharded-kernel worker shards (0 = legacy kernel; output is byte-identical for every value)")
	coshare := flag.Float64("coshare", 0, "co-run HCMD at this grid share against a phase-II co-project and cross-validate the §7 share assumption (0 = off)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (captured after the run) to this file")
	metricsPath := flag.String("metrics", "", "write campaign metric samples (NDJSON) to this file")
	tracePath := flag.String("trace", "", "write campaign run-trace events (NDJSON) to this file")
	sampleEvery := flag.Float64("sample-every", 0, "metrics sampling cadence in sim seconds (0 = half a sim day)")
	maintHours := flag.Float64("maintenance-hours", 0, "planned weekly server maintenance window, in sim hours (0 = off)")
	outageRate := flag.Float64("outage-rate", 0, "unplanned server outages per sim week (0 = off)")
	outageHours := flag.Float64("outage-hours", 12, "mean unplanned outage duration in sim hours (with -outage-rate)")
	uploadLoss := flag.Float64("upload-loss", 0, "per-result upload loss probability in [0,1) (0 = off; lost uploads retry 3 times)")
	churnWeekly := flag.Float64("churn-weekly", 0, "fraction of the fleet departing permanently per sim week, replaced by fresh joins (0 = off)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault-plane seed override (0 = derived from the campaign seed)")
	flag.Parse()

	if *scale <= 0 || *scale > 1 {
		fmt.Fprintln(os.Stderr, "hcmdsim: -scale must be in (0, 1]")
		os.Exit(2)
	}
	if *coshare < 0 || *coshare >= 1 {
		fmt.Fprintln(os.Stderr, "hcmdsim: -coshare must be in (0, 1)")
		os.Exit(2)
	}
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "hcmdsim: -shards must be ≥ 0")
		os.Exit(2)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "hcmdsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "hcmdsim: -cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "hcmdsim: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the live set so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "hcmdsim: -memprofile: %v\n", err)
			}
		}()
	}

	sys := core.NewHCMD()

	fmt.Println("== HCMD phase I planning ==")
	fmt.Printf("proteins: %d, ΣNsep = %s, generatable workunits = %s\n",
		sys.DS.Len(), report.Comma(float64(sys.DS.SumNsep())), report.Comma(float64(sys.DS.Instances())))
	total := sys.TotalWork()
	fmt.Printf("formula (1) total work: %s (y:d:h:m:s) on the reference CPU (paper: 1,488:237:19:45:54)\n",
		report.FormatYDHMS(total))

	s := sys.Table1()
	t1 := report.NewTable("Table 1: computation-time matrix statistics (s)",
		"average", "standard deviation", "min", "max", "median")
	t1.AddRow(fmt.Sprintf("%.0f", s.Mean), fmt.Sprintf("%.2f", s.Std),
		fmt.Sprintf("%.0f", s.Min), fmt.Sprintf("%.0f", s.Max), fmt.Sprintf("%.0f", s.Median))
	fmt.Println()
	fmt.Print(t1.String())

	fmt.Println("\n== Figure 4: workunit packaging ==")
	for _, h := range []float64{10, 4} {
		sum := sys.Figure4(h)
		fmt.Printf("wanted %v h: %s workunits, mean %.2f h\n",
			h, report.Comma(float64(sum.Count)), sum.MeanSeconds/3600)
	}

	fmt.Printf("\n== Campaign simulation (scale %.5f) ==\n", *scale)
	cfg := sys.CampaignConfig(*scale, *hours)
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.Shards = *shards
	fcfg, ferr := buildFaults(*maintHours, *outageRate, *outageHours, *uploadLoss, *churnWeekly, *faultSeed)
	if ferr != nil {
		fmt.Fprintf(os.Stderr, "hcmdsim: %v\n", ferr)
		os.Exit(2)
	}
	cfg.Faults = fcfg
	probe, flushObs, perr := openProbe(*metricsPath, *tracePath, *sampleEvery)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "hcmdsim: %v\n", perr)
		os.Exit(1)
	}
	cfg.Probe = probe
	rep := project.New(cfg).Run()
	if err := flushObs(); err != nil {
		fmt.Fprintf(os.Stderr, "hcmdsim: observability output: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("completed: %v in %.0f weeks (paper: 26)\n", rep.Completed, rep.WeeksElapsed)
	fmt.Printf("results received: %s (distinct %s) — redundancy %.2f (paper 1.37), useful %.0f%% (paper 73%%)\n",
		report.Comma(float64(rep.ServerStats.Received) / *scale),
		report.Comma(float64(rep.ServerStats.Completed) / *scale),
		rep.ServerStats.RedundancyFactor(), rep.ServerStats.UsefulFraction()*100)
	fmt.Printf("consumed CPU: %s — total factor %.2f (paper 5.43), net speed-down %.2f (paper 3.96)\n",
		report.FormatYDHMS(rep.ServerStats.CPUSeconds / *scale),
		rep.TotalFactor(), rep.TotalFactor()/rep.ServerStats.RedundancyFactor())
	fmt.Printf("mean reported workunit time: %.1f h (paper ≈ 13 h)\n", rep.MeanReportedH)
	fmt.Printf("VFTP: whole period %.0f (paper 16,450), full power %.0f (paper 26,248)\n",
		rep.AvgVFTPWhole, rep.AvgVFTPFullPower)
	if fr := rep.Faults; fr != nil {
		fmt.Printf("faults: %d outages (%d planned, %.1f h down), uploads lost %d / dropped %d, hosts churned %d, mean recovery %.1f min\n",
			fr.Outages, fr.PlannedOutages, fr.DowntimeSeconds/3600,
			fr.LostUploads, fr.DroppedResults, fr.Departures, fr.MeanRecoverySeconds/60)
	}

	fmt.Println("\n== Figure 7: progression snapshots ==")
	for _, sn := range rep.Snapshots {
		fmt.Printf("week %5.1f: %3.0f%% of proteins docked, %3.0f%% of computation done\n",
			sn.Week, sn.ProteinsDoneFraction()*100, sn.OverallFraction*100)
	}

	fmt.Println("\n== Table 2: volunteer vs dedicated grid ==")
	t2 := report.NewTable("", "Grid", "whole period", "full power working phase")
	rows := rep.Table2()
	t2.AddRow("World Community Grid", report.Comma(rows[0].Volunteer), report.Comma(rows[1].Volunteer))
	t2.AddRow("Dedicated Grid", report.Comma(rows[0].Dedicated), report.Comma(rows[1].Dedicated))
	fmt.Print(t2.String())

	fmt.Println("\n== Table 3: phase II evaluation ==")
	fc := sys.ForecastPhaseII()
	t3 := report.NewTable("", "", "HCMD phase I", "HCMD phase II")
	for _, r := range fc.Table3() {
		t3.AddRow(r.Label, report.Comma(r.PhaseI), report.Comma(r.PhaseII))
	}
	fmt.Print(t3.String())
	fmt.Printf("at the phase I rate: %.0f weeks; members needed at 25%% share: %s (%s new)\n",
		fc.WeeksAtPhaseIRate, report.Comma(fc.GridMembersNeeded), report.Comma(fc.NewMembersNeeded))

	if *coshare > 0 {
		fmt.Printf("\n== Shared-grid cross-validation (HCMD share %.0f%%) ==\n", *coshare*100)
		gcfg := sys.CoShareConfig(*scale, *coshare)
		if *seed != 0 {
			// -seed reseeds the co-run too (host streams and tie-breaks;
			// the workloads themselves stay the benchmark's).
			gcfg.Seed = *seed
			for i := range gcfg.Projects {
				gcfg.Projects[i].Seed = *seed + uint64(i)
			}
		}
		gr := sys.RunSharedGrid(gcfg)
		plan := forecast.PaperPhaseIIPlan()
		plan.GridShare = *coshare
		check := sys.CrossValidateGridShare(gr, 0, plan)
		fmt.Printf("configured share %.3f → measured %.3f over %.0f contended weeks (|err| %.4f)\n",
			check.AssumedShare, check.MeasuredShare, gr.ShareWindowWeeks, check.AbsError)
		fmt.Printf("members needed: %s assumed vs %s measured (%s vs %s new)\n",
			report.Comma(check.Assumed.GridMembersNeeded), report.Comma(check.Measured.GridMembersNeeded),
			report.Comma(check.Assumed.NewMembersNeeded), report.Comma(check.Measured.NewMembersNeeded))
	}

	if *outdir != "" {
		if err := writeCSVs(sys, rep, *outdir, *fig1Days); err != nil {
			fmt.Fprintf(os.Stderr, "hcmdsim: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nCSV series written to %s\n", *outdir)
	}
}

// buildFaults resolves the fault-plane flags into a campaign fault
// configuration, or nil when no fault flag is set (the zero-fault path,
// byte-identical to a build without the fault plane).
func buildFaults(maintHours, outageRate, outageHours, uploadLoss, churnWeekly float64, seed uint64) (*faults.Config, error) {
	switch {
	case maintHours < 0:
		return nil, fmt.Errorf("-maintenance-hours must be >= 0, got %v", maintHours)
	case outageRate < 0:
		return nil, fmt.Errorf("-outage-rate must be >= 0, got %v", outageRate)
	case outageRate > 0 && outageHours <= 0:
		return nil, fmt.Errorf("-outage-hours must be > 0 with -outage-rate, got %v", outageHours)
	case uploadLoss < 0 || uploadLoss >= 1:
		return nil, fmt.Errorf("-upload-loss must be in [0, 1), got %v", uploadLoss)
	case churnWeekly < 0 || churnWeekly >= 1:
		return nil, fmt.Errorf("-churn-weekly must be in [0, 1), got %v", churnWeekly)
	}
	if maintHours == 0 && outageRate == 0 && uploadLoss == 0 && churnWeekly == 0 {
		if seed != 0 {
			return nil, fmt.Errorf("-fault-seed needs at least one fault flag (-maintenance-hours, -outage-rate, -upload-loss, -churn-weekly)")
		}
		return nil, nil
	}
	fc := &faults.Config{Seed: seed}
	if maintHours > 0 {
		fc.MaintenanceEvery = sim.Week
		fc.MaintenanceDuration = maintHours * sim.Hour
	}
	if outageRate > 0 {
		fc.UnplannedPerWeek = outageRate
		fc.UnplannedMeanSeconds = outageHours * sim.Hour
	}
	if uploadLoss > 0 {
		fc.UploadLossProb = uploadLoss
		fc.UploadRetries = 3
	}
	if churnWeekly > 0 {
		fc.ChurnPerWeek = churnWeekly
	}
	return fc, nil
}

// openProbe builds the -metrics/-trace observability probe for the single
// campaign run. The returned flush writes the collected metric samples,
// then flushes and closes the files; both probe and flush are no-op when
// neither path is set.
func openProbe(metricsPath, tracePath string, sampleEvery float64) (*obs.Probe, func() error, error) {
	if metricsPath == "" && tracePath == "" {
		return nil, func() error { return nil }, nil
	}
	var (
		files []*os.File
		bufs  []*bufio.Writer
		sinks []*obs.Sink
	)
	open := func(path string) (*obs.Sink, error) {
		if path == "" {
			return nil, nil
		}
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		s := obs.NewSink(bw)
		files, bufs, sinks = append(files, f), append(bufs, bw), append(sinks, s)
		return s, nil
	}
	msink, err := open(metricsPath)
	if err != nil {
		return nil, nil, fmt.Errorf("-metrics: %w", err)
	}
	tsink, err := open(tracePath)
	if err != nil {
		return nil, nil, fmt.Errorf("-trace: %w", err)
	}
	p := &obs.Probe{SampleEvery: sampleEvery}
	if msink != nil {
		p.Metrics = obs.NewRegistry(0)
	}
	if tsink != nil {
		p.Trace = obs.NewTrace(tsink)
	}
	flush := func() error {
		if p.Metrics != nil {
			p.Metrics.WriteNDJSON(msink)
		}
		var first error
		for i := range bufs {
			if e := bufs[i].Flush(); e != nil && first == nil {
				first = e
			}
			if e := files[i].Close(); e != nil && first == nil {
				first = e
			}
			if e := sinks[i].Err(); e != nil && first == nil {
				first = e
			}
		}
		return first
	}
	return p, flush, nil
}

// writeCSVs emits one CSV per figure.
func writeCSVs(sys *core.System, rep *project.Report, dir string, fig1Days int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		defer f.Close()
		return fn(f)
	}
	if err := write("figure1_grid_vftp.csv", func(f *os.File) error {
		return report.WriteSeriesCSV(f, "day", sys.Figure1(fig1Days))
	}); err != nil {
		return err
	}
	if err := write("figure2_nsep_hist.csv", func(f *os.File) error {
		return report.WriteHistogramCSV(f, sys.Figure2())
	}); err != nil {
		return err
	}
	for _, h := range []float64{10, 4} {
		h := h
		name := fmt.Sprintf("figure4_workunits_h%d.csv", int(h))
		if err := write(name, func(f *os.File) error {
			return report.WriteHistogramCSV(f, sys.Figure4(h).Hist)
		}); err != nil {
			return err
		}
	}
	if err := write("figure6a_vftp.csv", func(f *os.File) error {
		return report.WriteSeriesCSV(f, "week", rep.HCMDVFTP, rep.GridVFTP)
	}); err != nil {
		return err
	}
	if err := write("figure6b_results.csv", func(f *os.File) error {
		return report.WriteSeriesCSV(f, "week", rep.ResultsWeek)
	}); err != nil {
		return err
	}
	if err := write("figure8_reported_hours.csv", func(f *os.File) error {
		return report.WriteHistogramCSV(f, rep.ReportedHours)
	}); err != nil {
		return err
	}
	for i, sn := range rep.Snapshots {
		sn := sn
		name := fmt.Sprintf("figure7_progression_w%02.0f_%d.csv", sn.Week, i)
		if err := write(name, func(f *os.File) error {
			fmt.Fprintln(f, "protein_rank,fraction_done")
			for rank, frac := range sn.PerBatch {
				fmt.Fprintf(f, "%d,%.4f\n", rank, frac)
			}
			return nil
		}); err != nil {
			return err
		}
	}
	return nil
}
