// Command maxdo runs the docking kernel for one couple of the benchmark —
// the equivalent of one workunit execution, with the production checkpoint
// behaviour (§4.3): it can be interrupted (-stop-after) and resumed
// (-resume) from the checkpoint file, and writes the §5.2 result file.
//
// Usage:
//
//	maxdo -receptor 0 -ligand 1 -from 1 -to 10 [-nrot 21] [-o results.txt]
//	      [-checkpoint cp.json] [-stop-after N] [-resume]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/docking"
	"repro/internal/protein"
)

func main() {
	receptor := flag.Int("receptor", 0, "receptor protein index (0-based)")
	ligand := flag.Int("ligand", 1, "ligand protein index (0-based)")
	from := flag.Int("from", 1, "first starting position (1-based)")
	to := flag.Int("to", 10, "last starting position")
	nrot := flag.Int("nrot", protein.NRotWorkunit, "rotations per position (1-21)")
	out := flag.String("o", "", "result file (default stdout)")
	cpFile := flag.String("checkpoint", "", "checkpoint file path")
	stopAfter := flag.Int("stop-after", 0, "stop after N positions (simulates the volunteer killing the task)")
	resume := flag.Bool("resume", false, "resume from the checkpoint file")
	maxIter := flag.Int("iter", 0, "minimization iterations (0 = default)")
	dumpPDB := flag.String("dump-pdb", "", "write the receptor and ligand reduced models as PDB files with this prefix and exit")
	flag.Parse()

	ds := protein.HCMD168()
	if *receptor < 0 || *receptor >= ds.Len() || *ligand < 0 || *ligand >= ds.Len() {
		fail("protein index out of range [0,%d)", ds.Len())
	}
	rec, lig := ds.Proteins[*receptor], ds.Proteins[*ligand]
	params := docking.MinimizeParams{MaxIter: *maxIter}

	if *dumpPDB != "" {
		for _, p := range []*protein.Protein{rec, lig} {
			path := fmt.Sprintf("%s_%s.pdb", *dumpPDB, p.Name)
			f, err := os.Create(path)
			if err != nil {
				fail("%v", err)
			}
			if err := protein.WritePDB(f, p); err != nil {
				f.Close()
				fail("%v", err)
			}
			if err := f.Close(); err != nil {
				fail("%v", err)
			}
			fmt.Fprintf(os.Stderr, "maxdo: wrote %s (%d beads)\n", path, p.NumBeads())
		}
		return
	}

	var task *docking.Task
	if *resume {
		if *cpFile == "" {
			fail("-resume needs -checkpoint")
		}
		data, err := os.ReadFile(*cpFile)
		if err != nil {
			fail("reading checkpoint: %v", err)
		}
		cp, err := docking.UnmarshalCheckpoint(data)
		if err != nil {
			fail("%v", err)
		}
		task, err = docking.Resume(cp, rec, lig, params)
		if err != nil {
			fail("%v", err)
		}
		fmt.Fprintf(os.Stderr, "maxdo: resumed at position %d/%d\n",
			int(cp.NextISep), cp.ISepHi)
	} else {
		if *from < 1 || *to > rec.Nsep || *from > *to {
			fail("position range [%d,%d] invalid for %s (Nsep=%d)", *from, *to, rec.Name, rec.Nsep)
		}
		task = docking.NewTask(rec, lig, *from, *to, *nrot, params)
	}

	for !task.Done() {
		task.Step()
		if *cpFile != "" {
			cp := task.Checkpoint()
			data, err := cp.Marshal()
			if err != nil {
				fail("%v", err)
			}
			if err := os.WriteFile(*cpFile, data, 0o644); err != nil {
				fail("writing checkpoint: %v", err)
			}
		}
		if *stopAfter > 0 && int(task.Progress()*float64(task.ISepHi-task.ISepLo+1)+0.5) >= *stopAfter {
			fmt.Fprintf(os.Stderr, "maxdo: stopped after %d positions (%.0f%% done); resume with -resume\n",
				*stopAfter, task.Progress()*100)
			return
		}
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		w = f
	}
	if err := docking.WriteResults(w, task.Results()); err != nil {
		fail("%v", err)
	}
	fmt.Fprintf(os.Stderr, "maxdo: %s vs %s, %d result lines\n", rec.Name, lig.Name, len(task.Results()))
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "maxdo: "+format+"\n", args...)
	os.Exit(1)
}
