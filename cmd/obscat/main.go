// Command obscat validates and summarizes the observability plane's NDJSON
// outputs (sweep/hcmdsim -metrics and -trace files). Every line must parse
// as a standalone JSON object; obscat reports how many did, broken down by
// metric series or trace event, and exits non-zero on the first malformed
// line — the CI gate that instrumented runs emit well-formed telemetry.
//
// Usage:
//
//	obscat [-min-series N] [-min-events N] [-q] FILE...
//
// Examples:
//
//	obscat metrics.ndjson trace.ndjson          # validate + summarize both
//	obscat -min-series 10 metrics.ndjson        # gate: ≥ 10 distinct series
//	obscat -min-events 1 trace.ndjson           # gate: at least one event
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

func main() {
	minSeries := flag.Int("min-series", 0, "fail unless at least this many distinct metric series appear across all files")
	minEvents := flag.Int("min-events", 0, "fail unless at least this many distinct trace events appear across all files")
	quiet := flag.Bool("q", false, "suppress the per-name breakdown, print totals only")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "obscat: no files given")
		os.Exit(2)
	}

	series := map[string]int{}
	events := map[string]int{}
	totalLines := 0
	for _, path := range flag.Args() {
		n, err := scan(path, series, events)
		if err != nil {
			fmt.Fprintf(os.Stderr, "obscat: %v\n", err)
			os.Exit(1)
		}
		totalLines += n
	}

	if !*quiet {
		breakdown("series", series)
		breakdown("event", events)
	}
	fmt.Printf("obscat: %d lines ok across %d files, %d series, %d events\n",
		totalLines, flag.NArg(), len(series), len(events))

	if len(series) < *minSeries {
		fmt.Fprintf(os.Stderr, "obscat: %d distinct series < required %d\n", len(series), *minSeries)
		os.Exit(1)
	}
	if len(events) < *minEvents {
		fmt.Fprintf(os.Stderr, "obscat: %d distinct events < required %d\n", len(events), *minEvents)
		os.Exit(1)
	}
}

// scan parses one NDJSON file line by line, tallying "series" and "event"
// names. It fails on the first line that is not a JSON object.
func scan(path string, series, events map[string]int) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	lineNo, n := 0, 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			return n, fmt.Errorf("%s:%d: %v", path, lineNo, err)
		}
		if s, ok := obj["series"].(string); ok {
			series[s]++
		}
		if e, ok := obj["event"].(string); ok {
			events[e]++
		}
		n++
	}
	if err := sc.Err(); err != nil {
		return n, fmt.Errorf("%s: %v", path, err)
	}
	return n, nil
}

func breakdown(label string, counts map[string]int) {
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("%-8s %-24s %d\n", label, name, counts[name])
	}
}
