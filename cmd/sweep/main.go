// Command sweep explores the HCMD design space: it fans named what-if
// scenarios × replications out across all cores, aggregates each scenario's
// replications into means with 95 % confidence intervals, and checkpoints
// every completed run so an interrupted sweep resumes where it stopped.
//
// Usage:
//
//	sweep -list
//	sweep [-scenarios all|a,b,c] [-reps R] [-workers W] [-shards K] [-fork]
//	      [-fork-workers N]
//	      [-scale S] [-hours H] [-seed N] [-checkpoint FILE] [-resume] [-out DIR]
//	      [-scheduler fifo|lifo|random|batch] [-validator quorum|adaptive]
//	      [-adaptive-streak N] [-maintenance-hours H] [-outage-rate R]
//	      [-outage-hours H] [-upload-loss P] [-churn-weekly F] [-fault-seed N]
//	      [-cpuprofile FILE] [-memprofile FILE]
//	      [-metrics FILE] [-trace FILE] [-progress D] [-sample-every S]
//	sweep -corun [-scenarios all|a,b,c] [-reps R] [-workers W] [-scale S]
//	      [-seed N] [-out DIR] [-metrics FILE] [-trace FILE] [-progress D]
//
// Examples:
//
//	sweep -scenarios all -reps 3 -scale 0.02      # full catalog, 3 reps
//	sweep -scenarios quorum-1,quorum-2 -reps 10   # one ablation, tight CIs
//	sweep -scheduler lifo -reps 5                 # whole catalog on LIFO dispatch
//	sweep -resume                                 # continue a killed sweep
//	sweep -corun -reps 3                          # multi-project co-run catalog
//
// -corun switches to the multi-project catalog: each scenario co-runs N
// project tenants on one shared volunteer population through the work-fetch
// multiplexer, and the headline metric is how closely each tenant's
// measured grid share tracks its configured resource share. Co-runs have
// no checkpoint path and ignore the policy-override flags.
//
// -fork turns on prefix-shared execution: scenarios whose catalog entry
// carries a divergence-time hint share the common prefix of their
// trajectory — it is simulated once per replication, an in-memory snapshot
// is taken at each divergence point, and every what-if cell forks from the
// snapshot and simulates only its suffix. Results and aggregates are
// byte-identical to an unforked sweep (grouped scenarios share one derived
// trajectory seed per replication either way), so -fork composes with
// -resume and -shards; only wall clock and the summary's prefix stats
// change. Forked cells run unprobed (-metrics/-trace samples are skipped
// for them). Ignored with -corun.
//
// -fork-workers N widens each divergence group's fork fan-out: the shared
// prefix is captured once as a portable snapshot, N-1 chunks of the
// group's what-if cells are handed to idle pool workers that adopt the
// snapshot into their own pooled runners, and the suffixes race on all
// cores instead of running sequentially on the publisher's. The default
// (0) follows -workers; 1 restores sequential forks. Results stay
// byte-identical at any width — only wall clock and the summary's fan-out
// line change.
//
// -shards K runs every cell on the sharded campaign kernel with K worker
// shards instead of the legacy single-heap kernel. Results are
// byte-identical either way (the sharded kernel is golden-hash pinned to
// the legacy one), so it composes freely with -resume and every scenario;
// it pays off at large -scale host populations. Ignored with -corun: the
// shared multi-project grid runs on the legacy population plane.
//
// -scheduler and -validator override the base configuration's grid
// policies before each scenario's mutation is applied, so any catalog
// scenario can be re-run under a different dispatch order or validation
// regime. The fault flags (-maintenance-hours, -outage-rate, -outage-hours,
// -upload-loss, -churn-weekly, -fault-seed) likewise install a fault plane
// under the base configuration: planned weekly maintenance windows,
// seeded unplanned outages, flaky result uploads, and permanent host
// churn, with backoff-based graceful degradation on the hosts. None of
// these overrides can be combined with -resume: checkpoint cells do not
// record them, so resuming across them would silently mix regimes — use
// a fresh -checkpoint file.
//
// SIGINT or SIGTERM drains gracefully: no new cells are dispatched,
// in-flight runs finish and are checkpointed, and the process exits with
// code 3 (distinct from failure's 1) so wrappers know -resume will pick
// up exactly where the sweep stopped.
//
// With -out the sweep also writes sweep.json (all runs + aggregates) and
// sweep.csv (per-scenario mean/std/ci95 rows). With -cpuprofile /
// -memprofile it writes pprof files covering the whole sweep, so perf
// work on the simulator is profile-driven (go tool pprof cpu.out).
//
// The observability plane rides along on three flags: -metrics FILE streams
// every cell's sim-time metric samples as NDJSON, -trace FILE streams the
// structured run-trace events (phase transitions, batch feeds, quorum
// switches, saboteur onsets...), and -progress D prints a live telemetry
// ticker (throughput, ETA, memory) every D of wall time, also appended to
// the metrics NDJSON as event=sweep-telemetry lines. Probes are run-neutral:
// instrumented cells produce byte-identical metrics to bare ones.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/project"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/wcg"
)

// Exit codes: 0 success, 1 failure, 3 graceful drain — the sweep was
// interrupted (SIGINT/SIGTERM), stopped dispatching new cells, let the
// in-flight runs finish, and flushed the checkpoint, so -resume continues
// from a consistent state. Scripts can tell "retry with -resume" (3) apart
// from "something is wrong" (1).
const exitDrained = 3

func main() {
	err := run()
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "sweep: interrupted — in-flight runs drained, checkpoint flushed")
		os.Exit(exitDrained)
	}
	fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
	os.Exit(1)
}

func run() (err error) {
	list := flag.Bool("list", false, "print the scenario catalogs and exit")
	corun := flag.Bool("corun", false, "sweep the multi-project co-run catalog instead of the single-project one")
	scenarios := flag.String("scenarios", "all", "comma-separated scenario names, or 'all'")
	reps := flag.Int("reps", 3, "replications per scenario")
	workers := flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0, "per-campaign sharded-kernel shards (0 = legacy kernel; results are byte-identical either way; ignored with -corun)")
	fork := flag.Bool("fork", false, "share scenario prefixes: run each replication's common trajectory once and fork what-if cells from in-memory snapshots (results are byte-identical either way; ignored with -corun)")
	forkWorkers := flag.Int("fork-workers", 0, "parallel fork fan-out width per prefix group with -fork: divergent suffixes adopt portable snapshots on this many pooled runners (0 = -workers; 1 = sequential forks)")
	scale := flag.Float64("scale", 1.0/84, "work and host scale (0 < s <= 1)")
	hours := flag.Float64("hours", 0, "workunit target duration in hours (0 = deployed 3.7)")
	seed := flag.Uint64("seed", 0, "sweep base seed (0 = campaign default)")
	ckptPath := flag.String("checkpoint", "sweep.ckpt.jsonl", "checkpoint file (JSON lines, one per completed run)")
	resume := flag.Bool("resume", false, "reuse completed runs from the checkpoint instead of starting over")
	out := flag.String("out", "", "directory for sweep.json and sweep.csv (optional)")
	scheduler := flag.String("scheduler", "", "dispatch policy for the base config: fifo, lifo, random or batch (default fifo)")
	validator := flag.String("validator", "", "validation policy for the base config: quorum or adaptive (default quorum)")
	adaptiveStreak := flag.Int("adaptive-streak", 10, "valid-result streak that earns a host per-host quorum 1 (with -validator adaptive)")
	quiet := flag.Bool("q", false, "suppress per-run progress lines")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile (captured after the sweep) to this file")
	metricsPath := flag.String("metrics", "", "write per-cell sim-time metric samples (NDJSON) to this file")
	tracePath := flag.String("trace", "", "write structured run-trace events (NDJSON) to this file")
	progressEvery := flag.Duration("progress", 0, "print a live telemetry line at this wall-clock interval (e.g. 5s; 0 = off)")
	sampleEvery := flag.Float64("sample-every", 0, "metrics sampling cadence in sim seconds (0 = half a sim day)")
	maintHours := flag.Float64("maintenance-hours", 0, "planned weekly server maintenance window, in sim hours (0 = off)")
	outageRate := flag.Float64("outage-rate", 0, "unplanned server outages per sim week (0 = off)")
	outageHours := flag.Float64("outage-hours", 12, "mean unplanned outage duration in sim hours (with -outage-rate)")
	uploadLoss := flag.Float64("upload-loss", 0, "per-result upload loss probability in [0,1) (0 = off; lost uploads retry 3 times)")
	churnWeekly := flag.Float64("churn-weekly", 0, "fraction of the fleet departing permanently per sim week, replaced by fresh joins (0 = off)")
	faultSeed := flag.Uint64("fault-seed", 0, "fault-plane seed override (0 = derived from each run seed)")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sweep: -memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the live set so the profile shows retention, not garbage
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "sweep: -memprofile: %v\n", err)
			}
		}()
	}

	if *list {
		t := report.NewTable("Scenario catalog", "name", "description")
		for _, s := range experiment.Catalog() {
			t.AddRow(s.Name, s.Description)
		}
		fmt.Print(t.String())
		g := report.NewTable("Co-run catalog (-corun)", "name", "description")
		for _, s := range experiment.GridCatalog() {
			g.AddRow(s.Name, s.Description)
		}
		fmt.Print(g.String())
		return nil
	}
	if *scale <= 0 || *scale > 1 {
		return fmt.Errorf("-scale must be in (0, 1], got %v", *scale)
	}
	msink, tsink, closeSinks, serr := openSinks(*metricsPath, *tracePath)
	if serr != nil {
		return serr
	}
	defer func() {
		if cerr := closeSinks(); cerr != nil && err == nil {
			err = cerr
		}
	}()
	if *corun {
		return runCoRuns(*scenarios, *reps, *workers, *scale, *seed, *out, *quiet,
			msink, tsink, *sampleEvery, *progressEvery)
	}

	selected, err := experiment.Select(*scenarios)
	if err != nil {
		return err
	}
	ckpt, err := experiment.OpenCheckpoint(*ckptPath, *resume)
	if err != nil {
		return err
	}
	defer ckpt.Close()
	if *resume && ckpt.Len() > 0 {
		fmt.Fprintf(os.Stderr, "resuming: %d completed runs loaded from %s\n", ckpt.Len(), *ckptPath)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nWorkers := *workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	total := len(selected) * *reps
	nForkWorkers := *forkWorkers
	if *fork && nForkWorkers <= 0 {
		nForkWorkers = nWorkers
	}
	forkNote := ""
	if *fork {
		forkNote = ", prefix-forked"
		if nForkWorkers > 1 {
			forkNote = fmt.Sprintf(", prefix-forked ×%d", nForkWorkers)
		}
	}
	fmt.Fprintf(os.Stderr, "sweep: %d scenarios × %d reps = %d runs on %d workers (scale %.4g, shards %d%s)\n",
		len(selected), *reps, total, nWorkers, *scale, *shards, forkNote)

	faultFlags := *maintHours != 0 || *outageRate != 0 || *uploadLoss != 0 || *churnWeekly != 0 || *faultSeed != 0
	if *resume && (*scheduler != "" || *validator != "" || faultFlags) {
		return fmt.Errorf("-resume cannot be combined with -scheduler/-validator or the fault flags: checkpoint cells don't record the overrides they ran under; use a fresh -checkpoint file")
	}
	sys := core.NewHCMD()
	base := sys.CampaignConfig(*scale, *hours)
	if err := applyPolicies(&base, *scheduler, *validator, *adaptiveStreak); err != nil {
		return err
	}
	if err := applyFaults(&base, *maintHours, *outageRate, *outageHours, *uploadLoss, *churnWeekly, *faultSeed); err != nil {
		return err
	}
	start := time.Now()
	tracker := experiment.NewTracker(total)
	tracker.Workers, tracker.Shards, tracker.Forked = nWorkers, *shards, *fork
	if *fork {
		tracker.ForkWorkers = nForkWorkers
	}
	stopTicker := startTicker(tracker, *progressEvery, msink)
	defer stopTicker()
	opts := experiment.Options{
		Base:        base,
		Scenarios:   selected,
		Reps:        *reps,
		Workers:     *workers,
		Shards:      *shards,
		Fork:        *fork,
		ForkWorkers: nForkWorkers,
		BaseSeed:    *seed,
		Checkpoint:  ckpt,
		MetricsSink: msink,
		TraceSink:   tsink,
		SampleEvery: *sampleEvery,
	}
	opts.Progress = func(p experiment.Progress) {
		tracker.Observe(p.WallSeconds)
		if *quiet {
			return
		}
		tag := ""
		if p.Resumed {
			tag = " (resumed)"
		}
		fmt.Fprintf(os.Stderr, "[%3d/%d] %-20s rep %d: %.1f weeks, redundancy %.2f%s\n",
			p.Done, p.Total, p.Result.Scenario, p.Result.Rep,
			p.Result.Metrics.MakespanWeeks, p.Result.Metrics.Redundancy, tag)
	}
	sweep, err := sys.RunExperiments(ctx, *scale, *hours, opts)
	if err != nil {
		if sweep != nil && len(sweep.Results) > 0 {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintf(os.Stderr, "interrupted after %d/%d runs; rerun with -resume to continue\n",
					len(sweep.Results), total)
			} else {
				fmt.Fprintf(os.Stderr, "%d/%d runs completed, %d failed; failed cells are not checkpointed\n",
					len(sweep.Results), total, len(sweep.Failed))
			}
			fmt.Print(experiment.Table(sweep.Aggregates).String())
		}
		return err
	}
	stopTicker()

	fmt.Fprintf(os.Stderr, "done: %d runs (%d resumed) in %.1fs\n",
		len(sweep.Results), sweep.Resumed, time.Since(start).Seconds())
	tracker.RecordPrefix(sweep.PrefixGroups, sweep.PrefixHits, sweep.SavedSimWeeks)
	tracker.RecordFanout(sweep.SnapshotBytes, sweep.SnapshotCaptureNS, sweep.SnapshotAdoptNS,
		sweep.AdoptedRunners, sweep.ForksParallel, sweep.ParallelSpeedup)
	printSummary(tracker)
	if msink != nil {
		// Close the metrics NDJSON with one final sweep-telemetry record so
		// the end-of-sweep totals (prefix stats included) are machine-readable.
		msink.WriteLine(obs.Line(tracker.Snapshot().Fields()...))
	}
	fmt.Print(experiment.Table(sweep.Aggregates).String())

	if *out != "" {
		if err := writeOutputs(*out, sweep); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "sweep.json and sweep.csv written to %s\n", *out)
	}
	return ckpt.Close()
}

// runCoRuns executes the multi-project sweep: co-run scenarios ×
// replications through pooled GridRunners, aggregated on measured-share
// fidelity.
func runCoRuns(scenarios string, reps, workers int, scale float64, seed uint64, out string, quiet bool,
	msink, tsink *obs.Sink, sampleEvery float64, progressEvery time.Duration) error {
	selected, err := experiment.GridSelect(scenarios)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nWorkers := workers
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	total := len(selected) * reps
	fmt.Fprintf(os.Stderr, "sweep -corun: %d scenarios × %d reps = %d co-runs on %d workers (scale %.4g)\n",
		len(selected), reps, total, nWorkers, scale)

	sys := core.NewHCMD()
	tracker := experiment.NewTracker(total)
	tracker.Workers = nWorkers
	stopTicker := startTicker(tracker, progressEvery, msink)
	defer stopTicker()
	opts := experiment.GridOptions{
		Base:        sys.SharedGridConfig(2, scale, nil),
		Scenarios:   selected,
		Reps:        reps,
		Workers:     workers,
		BaseSeed:    seed,
		MetricsSink: msink,
		TraceSink:   tsink,
		SampleEvery: sampleEvery,
	}
	opts.Progress = func(p experiment.GridProgress) {
		tracker.Observe(p.WallSeconds)
		if quiet {
			return
		}
		fmt.Fprintf(os.Stderr, "[%3d/%d] %-20s rep %d: %.1f weeks, max share err %.4f\n",
			p.Done, p.Total, p.Result.Scenario, p.Result.Rep,
			p.Result.Metrics.MakespanWeeks, p.Result.Metrics.MaxShareError)
	}
	start := time.Now()
	sweep, err := experiment.RunGrid(ctx, opts)
	if err != nil {
		if sweep != nil && len(sweep.Results) > 0 {
			fmt.Fprintf(os.Stderr, "interrupted after %d/%d co-runs\n", len(sweep.Results), total)
			fmt.Print(experiment.GridTable(sweep.Aggregates, sweep.Results).String())
		}
		return err
	}
	stopTicker()
	fmt.Fprintf(os.Stderr, "done: %d co-runs in %.1fs\n", len(sweep.Results), time.Since(start).Seconds())
	printSummary(tracker)
	fmt.Print(experiment.GridTable(sweep.Aggregates, sweep.Results).String())

	if out != "" {
		if err := os.MkdirAll(out, 0o755); err != nil {
			return err
		}
		data, err := json.MarshalIndent(sweep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(out, "gridsweep.json"), append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "gridsweep.json written to %s\n", out)
	}
	return nil
}

// openSinks opens the optional -metrics / -trace NDJSON outputs. Either
// path may be empty (that sink stays nil and the plane stays off). The
// returned close function flushes the buffers and surfaces the first write
// error; it is safe to call when neither file was opened.
func openSinks(metricsPath, tracePath string) (metrics, trace *obs.Sink, close func() error, err error) {
	var (
		files []*os.File
		bufs  []*bufio.Writer
		sinks []*obs.Sink
	)
	open := func(path string) (*obs.Sink, error) {
		if path == "" {
			return nil, nil
		}
		f, ferr := os.Create(path)
		if ferr != nil {
			return nil, ferr
		}
		bw := bufio.NewWriterSize(f, 1<<16)
		s := obs.NewSink(bw)
		files = append(files, f)
		bufs = append(bufs, bw)
		sinks = append(sinks, s)
		return s, nil
	}
	closeAll := func() error {
		var first error
		for i := range bufs {
			if e := bufs[i].Flush(); e != nil && first == nil {
				first = e
			}
			if e := files[i].Close(); e != nil && first == nil {
				first = e
			}
			if e := sinks[i].Err(); e != nil && first == nil {
				first = e
			}
		}
		return first
	}
	if metrics, err = open(metricsPath); err != nil {
		return nil, nil, closeAll, fmt.Errorf("-metrics: %w", err)
	}
	if trace, err = open(tracePath); err != nil {
		closeAll()
		return nil, nil, func() error { return nil }, fmt.Errorf("-trace: %w", err)
	}
	return metrics, trace, closeAll, nil
}

// startTicker launches the -progress telemetry loop: a human-readable
// snapshot on stderr every interval, mirrored onto the metrics sink as an
// event=sweep-telemetry NDJSON line. The returned stop function is
// idempotent; with a non-positive interval it is a no-op.
func startTicker(tr *experiment.Tracker, every time.Duration, metrics *obs.Sink) func() {
	if every <= 0 {
		return func() {}
	}
	tick := time.NewTicker(every)
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick.C:
				t := tr.Snapshot()
				fmt.Fprintln(os.Stderr, t.String())
				if metrics != nil {
					metrics.WriteLine(obs.Line(t.Fields()...))
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			tick.Stop()
			close(done)
		})
	}
}

// printSummary emits the end-of-sweep resource line: cell throughput and
// process memory, so even a -q run leaves a one-line wall-time record. A
// forked sweep appends its prefix-sharing stats.
func printSummary(tr *experiment.Tracker) {
	t := tr.Snapshot()
	fmt.Fprintf(os.Stderr, "summary: %d cells in %.1fs, %.2f cells/s, mean cell %.2fs, %d workers (GOMAXPROCS %d), %d shards, %.1f MB sys (peak RSS), %.1f MB allocated\n",
		t.Done, t.ElapsedSeconds, t.CellsPerSec, t.MeanCellSeconds, t.Workers, t.Gomaxprocs, t.Shards, t.SysMB, t.TotalAllocMB)
	if t.Forked {
		fmt.Fprintf(os.Stderr, "prefix sharing: %d groups snapshotted, %d cells forked, %.1f sim-weeks saved\n",
			t.PrefixGroups, t.PrefixHits, t.SavedSimWeeks)
	}
	if t.ForkWorkers > 1 {
		fmt.Fprintf(os.Stderr, "fan-out: %d fork workers, %d runners adopted snapshots, %d cells forked in parallel, %.1f KB snapshots, %.2fx tree speedup\n",
			t.ForkWorkers, t.AdoptedRunners, t.ForksParallel, float64(t.SnapshotBytes)/1024, t.ParallelSpeedup)
	}
}

// applyPolicies resolves the -scheduler/-validator flags onto the base
// campaign configuration. Policy overrides change run outputs without
// changing the checkpoint key (scenario, rep, seed, scale, hours), so
// run() rejects them in combination with -resume: a checkpoint recorded
// under different policies would be silently reused as if it matched.
func applyPolicies(base *project.Config, scheduler, validator string, streak int) error {
	switch scheduler {
	case "", "fifo":
		// the default
	case "lifo":
		base.Server.Scheduler = wcg.LIFOScheduler{}
	case "random":
		base.Server.Scheduler = wcg.RandomScheduler{Seed: base.Seed + 17}
	case "batch":
		base.Server.Scheduler = wcg.BatchPriorityScheduler{}
	default:
		return fmt.Errorf("-scheduler: unknown policy %q (have fifo, lifo, random, batch)", scheduler)
	}
	switch validator {
	case "", "quorum":
		// the default
	case "adaptive":
		if streak < 1 {
			return fmt.Errorf("-adaptive-streak must be at least 1, got %d", streak)
		}
		base.Server.Validator = wcg.AdaptiveValidator{Streak: streak}
	default:
		return fmt.Errorf("-validator: unknown policy %q (have quorum, adaptive)", validator)
	}
	return nil
}

// applyFaults resolves the fault-plane flags onto the base campaign
// configuration. Like the policy overrides, fault overrides change run
// outputs without changing the checkpoint key, so run() rejects them in
// combination with -resume.
func applyFaults(base *project.Config, maintHours, outageRate, outageHours, uploadLoss, churnWeekly float64, seed uint64) error {
	switch {
	case maintHours < 0:
		return fmt.Errorf("-maintenance-hours must be >= 0, got %v", maintHours)
	case outageRate < 0:
		return fmt.Errorf("-outage-rate must be >= 0, got %v", outageRate)
	case outageRate > 0 && outageHours <= 0:
		return fmt.Errorf("-outage-hours must be > 0 with -outage-rate, got %v", outageHours)
	case uploadLoss < 0 || uploadLoss >= 1:
		return fmt.Errorf("-upload-loss must be in [0, 1), got %v", uploadLoss)
	case churnWeekly < 0 || churnWeekly >= 1:
		return fmt.Errorf("-churn-weekly must be in [0, 1), got %v", churnWeekly)
	}
	if maintHours == 0 && outageRate == 0 && uploadLoss == 0 && churnWeekly == 0 {
		if seed != 0 {
			return fmt.Errorf("-fault-seed needs at least one fault flag (-maintenance-hours, -outage-rate, -upload-loss, -churn-weekly)")
		}
		return nil
	}
	fc := &faults.Config{Seed: seed}
	if maintHours > 0 {
		fc.MaintenanceEvery = sim.Week
		fc.MaintenanceDuration = maintHours * sim.Hour
	}
	if outageRate > 0 {
		fc.UnplannedPerWeek = outageRate
		fc.UnplannedMeanSeconds = outageHours * sim.Hour
	}
	if uploadLoss > 0 {
		fc.UploadLossProb = uploadLoss
		fc.UploadRetries = 3
	}
	if churnWeekly > 0 {
		fc.ChurnPerWeek = churnWeekly
	}
	base.Faults = fc
	return nil
}

func writeOutputs(dir string, sweep *experiment.Sweep) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(sweep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "sweep.json"), append(data, '\n'), 0o644); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "sweep.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if err := experiment.WriteCSV(f, sweep.Aggregates); err != nil {
		return err
	}
	return f.Close()
}
