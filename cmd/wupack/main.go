// Command wupack runs the §4.2 workunit packaging over the full benchmark
// and reports the Figure 4 view: workunit count, duration histogram and
// totals for a wanted duration.
//
// Usage:
//
//	wupack [-hours 10] [-bins 28] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	hours := flag.Float64("hours", 10, "wanted workunit duration (hours on the reference CPU)")
	bins := flag.Int("bins", 28, "histogram bins over [0, 14) hours")
	csvPath := flag.String("csv", "", "write the histogram as CSV")
	flag.Parse()

	if *hours <= 0 {
		fmt.Fprintln(os.Stderr, "wupack: -hours must be positive")
		os.Exit(2)
	}
	sys := core.NewHCMD()
	sum := sys.Package(*hours).Summarize(14, *bins)

	fmt.Printf("WantedWuExecTime = %g h, Nb wu = %s\n", *hours, report.Comma(float64(sum.Count)))
	fmt.Printf("total work %s (y:d:h:m:s), mean workunit %.2f h\n",
		report.FormatYDHMS(sum.TotalSeconds), sum.MeanSeconds/3600)
	fmt.Println()
	fmt.Print(sum.Hist.String())

	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wupack: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := report.WriteHistogramCSV(f, sum.Hist); err != nil {
			fmt.Fprintf(os.Stderr, "wupack: %v\n", err)
			os.Exit(1)
		}
	}
}
