// Package repro is a from-scratch Go reproduction of "Large Scale Execution
// of a Bioinformatic Application on a Volunteer Grid" (Bertis, Bolze,
// Desprez, Reed — LIP RR-2007-49 / IPPS 2008): the Help Cure Muscular
// Dystrophy phase I campaign on World Community Grid.
//
// The public entry point is internal/core; the benchmark harness that
// regenerates every table and figure of the paper lives in bench_test.go
// (go test -bench=.). See README.md, DESIGN.md and EXPERIMENTS.md.
package repro
