// Package repro is a from-scratch Go reproduction of "Large Scale Execution
// of a Bioinformatic Application on a Volunteer Grid" (Bertis, Bolze,
// Desprez, Reed — LIP RR-2007-49 / IPPS 2008): the Help Cure Muscular
// Dystrophy phase I campaign on World Community Grid.
//
// The public entry point is internal/core; the benchmark harness that
// regenerates every table and figure of the paper lives in bench_test.go
// (go test -bench=.). The scenario-sweep engine in internal/experiment and
// its cmd/sweep CLI explore the design space around the paper's deployment.
// See README.md for a quickstart, the repository layout and sweep usage.
package repro
