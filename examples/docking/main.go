// Docking example: compute a small interaction-energy map for one couple,
// demonstrate the checkpoint/resume contract of §4.3, and write/validate a
// §5.2 result file.
package main

import (
	"bytes"
	"fmt"
	"log"

	"repro/internal/docking"
	"repro/internal/protein"
)

func main() {
	ds := protein.HCMD168()
	rec, lig := ds.Proteins[2], ds.Proteins[5]
	params := docking.MinimizeParams{MaxIter: 15, GammaSub: 2}

	// A workunit-sized slice: positions 1-4, all 21 rotations.
	task := docking.NewTask(rec, lig, 1, 4, protein.NRotWorkunit, params)

	// The volunteer computes two positions, then kills the agent.
	task.RunN(2)
	cp := task.Checkpoint()
	data, err := cp.Marshal()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interrupted at %.0f%%: checkpoint is %d bytes\n", task.Progress()*100, len(data))

	// Later, the agent restarts from the checkpoint and finishes.
	cp2, err := docking.UnmarshalCheckpoint(data)
	if err != nil {
		log.Fatal(err)
	}
	resumed, err := docking.Resume(cp2, rec, lig, params)
	if err != nil {
		log.Fatal(err)
	}
	results := resumed.Run()
	fmt.Printf("completed: %d result lines for %s vs %s\n", len(results), rec.Name, lig.Name)

	// Result file round trip + the three §5.2 checks.
	var buf bytes.Buffer
	if err := docking.WriteResults(&buf, results); err != nil {
		log.Fatal(err)
	}
	parsed, err := docking.ParseResults(&buf)
	if err != nil {
		log.Fatal(err)
	}
	if err := docking.DefaultValidRange.CheckResults(parsed, 4*protein.NRotWorkunit); err != nil {
		log.Fatalf("validation failed: %v", err)
	}
	fmt.Println("result file validated: line count and value ranges OK")

	// The energy landscape: strongest interaction per starting position.
	fmt.Println("\nstrongest interaction per starting position:")
	for isep := 1; isep <= 4; isep++ {
		best := 0.0
		found := false
		for _, r := range results {
			if r.ISep == isep && (!found || r.Energy.Total() < best) {
				best = r.Energy.Total()
				found = true
			}
		}
		fmt.Printf("  isep %d: E = %8.2f kcal/mol\n", isep, best)
	}
}
