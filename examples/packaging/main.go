// Packaging example: reproduce Figure 4 — how the wanted workunit duration
// trades the number of workunits against the server transaction rate (§3.2,
// §4.2) — by sweeping the wanted duration.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	sys := core.NewHCMD()

	fmt.Println("Figure 4 sweep: workunit count vs wanted duration")
	fmt.Printf("%8s %14s %12s %22s\n", "h (hours)", "workunits", "mean (h)", "server tx/s at 26 wks")
	for _, h := range []float64{1, 2, 4, 6, 8, 10, 14, 24} {
		sum := sys.Figure4(h)
		// Each workunit costs ~2 server transactions (fetch + report);
		// redundancy adds ~37 %. Spread over the 26-week campaign:
		tx := float64(sum.Count) * 2 * 1.37 / (26 * 7 * 86400)
		fmt.Printf("%8.0f %14s %12.2f %22.2f\n",
			h, report.Comma(float64(sum.Count)), sum.MeanSeconds/3600, tx)
	}

	fmt.Println("\nFigure 4(a): duration histogram at h = 10 (paper: 1,364,476 workunits)")
	fmt.Print(sys.Figure4(10).Hist.String())
	fmt.Println("\nFigure 4(b): duration histogram at h = 4 (paper: 3,599,937 workunits)")
	fmt.Print(sys.Figure4(4).Hist.String())
}
