// Phase II example: reproduce Table 3 and explore the §7 what-if space —
// how the needed grid capacity moves with the protein count, the
// docking-point reduction and the deadline.
package main

import (
	"fmt"

	"repro/internal/forecast"
	"repro/internal/report"
)

func main() {
	// The paper's Table 3.
	fc := forecast.PaperForecast()
	t := report.NewTable("Table 3: evaluation of the HCMD phase II",
		"", "HCMD phase I", "HCMD phase II")
	for _, r := range fc.Table3() {
		t.AddRow(r.Label, report.Comma(r.PhaseI), report.Comma(r.PhaseII))
	}
	fmt.Print(t.String())
	fmt.Printf("\nat the phase I rate: %.0f weeks (paper: ~90, '1 year and 9 months')\n",
		fc.WeeksAtPhaseIRate)
	fmt.Printf("members for a 40-week phase II at 25%% share: %s (%s new)\n\n",
		report.Comma(fc.GridMembersNeeded), report.Comma(fc.NewMembersNeeded))

	// What-if: deadline sweep.
	fmt.Println("deadline sweep (4,000 proteins, ÷100 points):")
	fmt.Printf("%8s %12s %16s\n", "weeks", "VFTP", "members @25%")
	for _, weeks := range []float64{20, 30, 40, 52, 90} {
		f := forecast.Estimate(forecast.PaperPhaseI(), forecast.PhaseIIPlan{
			Proteins: 4000, PointsReduction: 100, TargetWeeks: weeks, GridShare: 0.25,
		})
		fmt.Printf("%8.0f %12s %16s\n", weeks, report.Comma(f.VFTPII), report.Comma(f.GridMembersNeeded))
	}

	// What-if: how far does the point reduction have to go for phase II to
	// fit in 26 weeks with phase I's own capacity?
	fmt.Println("\npoint-reduction sweep (40-week target):")
	fmt.Printf("%12s %10s %12s\n", "reduction", "work×", "VFTP")
	for _, red := range []float64{50, 100, 200, 400} {
		f := forecast.Estimate(forecast.PaperPhaseI(), forecast.PhaseIIPlan{
			Proteins: 4000, PointsReduction: red, TargetWeeks: 40, GridShare: 0.25,
		})
		fmt.Printf("%12.0f %10.2f %12s\n", red, f.WorkRatio, report.Comma(f.VFTPII))
	}
}
