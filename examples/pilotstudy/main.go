// Pilot-study example: the §2 prelude. Before phase I, the docking program
// was exercised on 6 proteins on the Décrypthon dedicated grid; that study
// showed the computation was promising but far too expensive for a
// dedicated machine room — the argument for moving to a volunteer grid.
//
// This example reruns that story: dock a 6-protein subset on a simulated
// dedicated cluster, extrapolate the full 168-protein campaign with the
// quadratic scaling of formula (1), and compare the machine-room cost with
// what World Community Grid delivered.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/report"
	"repro/internal/workunit"
)

func main() {
	sys := core.NewHCMD()
	const pilotN = 6

	// The pilot: the first 6 proteins, all couples, sliced into 10-hour
	// workunits and list-scheduled on a 64-node dedicated cluster.
	couples := make([][2]int, 0, pilotN*pilotN)
	for i := 0; i < pilotN; i++ {
		for j := 0; j < pilotN; j++ {
			couples = append(couples, [2]int{i, j})
		}
	}
	plan := sys.Package(10).WithCouples(couples)
	var durations []float64
	var pilotWork float64
	plan.ForEach(func(w workunit.Workunit) bool {
		durations = append(durations, w.RefSeconds)
		pilotWork += w.RefSeconds
		return true
	})

	cluster := grid.NewCluster(64)
	res := cluster.Schedule(durations)
	fmt.Printf("pilot: %d proteins, %d workunits, %s of CPU\n",
		pilotN, res.Tasks, report.FormatYDHMS(pilotWork))
	fmt.Printf("on a %d-node dedicated cluster: %.1f days (utilization %.0f%%)\n",
		cluster.Procs, res.Makespan/86400, res.Utilization*100)

	// Extrapolate to the full campaign: work grows with the square of the
	// protein count (formula 1).
	full := sys.TotalWork()
	naive := pilotWork * float64(168*168) / float64(pilotN*pilotN)
	fmt.Printf("\nfull campaign, quadratic extrapolation: %s (actual formula-(1) total: %s)\n",
		report.FormatYDHMS(naive), report.FormatYDHMS(full))

	fmt.Printf("on the same 64-node cluster: %.1f YEARS\n",
		cluster.AnalyticMakespan(full)/86400/365)
	fmt.Printf("to finish in 26 weeks a dedicated grid needs %s processors\n",
		report.Comma(float64(grid.ProcessorsFor(full, 26*7*86400))))
	fmt.Printf("World Community Grid delivered the equivalent of ≈ %s dedicated processors\n",
		report.Comma(sys.DedicatedEquivalent(26248)))
	fmt.Println("\n⇒ the workload is feasible only on a volunteer grid — the paper's premise.")
}
