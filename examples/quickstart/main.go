// Quickstart: assemble the HCMD system, dock one couple of proteins, and
// plan the campaign — the whole public API in ~40 effective lines.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/docking"
	"repro/internal/report"
)

func main() {
	// 1. The benchmark and its calibrated cost matrix (§2, §4.1).
	sys := core.NewHCMD()
	fmt.Printf("benchmark: %d proteins, %s docking instances\n",
		sys.DS.Len(), report.Comma(float64(sys.DS.Instances())))

	// 2. Dock a couple for a few starting positions (the MAXDo kernel).
	rec, lig := sys.DS.Proteins[0], sys.DS.Proteins[1]
	results := sys.DockCouple(0, 1, 1, 3, docking.MinimizeParams{MaxIter: 20, GammaSub: 2})
	best := results[0]
	for _, r := range results {
		if r.Energy.Total() < best.Energy.Total() {
			best = r
		}
	}
	fmt.Printf("docked %s vs %s: best E = %.2f kcal/mol (Elj %.2f, Eelec %.2f) at isep=%d irot=%d\n",
		rec.Name, lig.Name, best.Energy.Total(), best.Energy.LJ, best.Energy.Elec,
		best.ISep, best.IRot)

	// 3. How much work is the whole campaign? (formula 1)
	fmt.Printf("total campaign work: %s on an Opteron 2 GHz\n", report.FormatYDHMS(sys.TotalWork()))

	// 4. Slice it into 10-hour workunits (§4.2, Figure 4).
	sum := sys.Figure4(10)
	fmt.Printf("at 10-hour workunits: %s workunits (mean %.2f h)\n",
		report.Comma(float64(sum.Count)), sum.MeanSeconds/3600)

	// 5. What does that cost on a dedicated grid? (§6)
	weeks := sys.DedicatedMakespan(4833) / (7 * 86400)
	fmt.Printf("on 4,833 dedicated processors: %.1f weeks\n", weeks)
}
