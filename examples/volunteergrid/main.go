// Volunteer-grid example: run a scaled HCMD campaign end-to-end on the
// simulated World Community Grid and print the §5-§6 evaluation.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	sys := core.NewHCMD()

	// 1/168 scale: one ligand per receptor, ~25k workunits, a few seconds.
	rep := sys.RunCampaign(1.0/168, 0)

	fmt.Printf("campaign completed: %v in %.0f weeks (paper: 26)\n", rep.Completed, rep.WeeksElapsed)
	fmt.Printf("distinct workunits: %s, results received: %s\n",
		report.Comma(float64(rep.DistinctWUs)), report.Comma(float64(rep.ServerStats.Received)))
	fmt.Printf("redundant computing: factor %.2f, useful results %.0f%%\n",
		rep.ServerStats.RedundancyFactor(), rep.ServerStats.UsefulFraction()*100)
	fmt.Printf("speed-down: total %.2f, net of redundancy %.2f (paper: 5.43 and 3.96)\n",
		rep.TotalFactor(), rep.TotalFactor()/rep.ServerStats.RedundancyFactor())

	fmt.Println("\nweekly project VFTP (Figure 6a):")
	for i := 0; i < rep.HCMDVFTP.Len(); i++ {
		week := int(rep.HCMDVFTP.X[i])
		v := rep.HCMDVFTP.Y[i]
		bar := int(v / 600)
		fmt.Printf("w%02d %7.0f |%s\n", week, v, bars(bar))
	}

	fmt.Println("\nprogression (Figure 7):")
	for _, sn := range rep.Snapshots {
		fmt.Printf("  week %5.1f: %3.0f%% proteins, %3.0f%% work\n",
			sn.Week, sn.ProteinsDoneFraction()*100, sn.OverallFraction*100)
	}

	rows := rep.Table2()
	fmt.Println("\nTable 2 from this run:")
	for _, r := range rows {
		fmt.Printf("  %s\n", r)
	}
}

func bars(n int) string {
	if n < 0 {
		n = 0
	}
	b := make([]byte, n)
	for i := range b {
		b[i] = '#'
	}
	return string(b)
}
