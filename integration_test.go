// Integration tests: the full pipeline exercised end-to-end at reduced
// scale, with cross-module invariants that no single package can check on
// its own.
package repro_test

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/docking"
	"repro/internal/forecast"
	"repro/internal/project"
	"repro/internal/protein"
	"repro/internal/validate"
	"repro/internal/volunteer"
	"repro/internal/workunit"
)

// TestPipelinePlanningInvariants checks the identities that tie the
// planning modules together at full scale.
func TestPipelinePlanningInvariants(t *testing.T) {
	s := system()
	// (1) Packaging conserves the formula-(1) total at any h.
	total := s.TotalWork()
	for _, h := range []float64{2, 10} {
		sum := s.Figure4(h)
		if math.Abs(sum.TotalSeconds-total)/total > 1e-9 {
			t.Fatalf("h=%v: packaged %.0f ≠ matrix total %.0f", h, sum.TotalSeconds, total)
		}
	}
	// (2) Workunit count × mean duration = total.
	sum := s.Figure4(10)
	if got := float64(sum.Count) * sum.MeanSeconds; math.Abs(got-total)/total > 1e-9 {
		t.Fatalf("count × mean = %.0f ≠ %.0f", got, total)
	}
	// (3) The per-receptor costs sum to the total.
	per := s.Matrix.ReceptorCost(s.DS)
	var acc float64
	for _, v := range per {
		acc += v
	}
	if math.Abs(acc-total)/total > 1e-9 {
		t.Fatal("receptor costs do not sum to the total")
	}
}

// TestPipelineCampaignConservation runs a scaled campaign and checks that
// the server-side accounting balances exactly.
func TestPipelineCampaignConservation(t *testing.T) {
	rep := system().RunCampaign(1.0/168, 0)
	st := rep.ServerStats
	if !rep.Completed {
		t.Fatal("campaign incomplete")
	}
	// Everything sent is either returned, timed out, or was still in
	// flight at the end; completed ≤ valid ≤ received.
	if st.Valid > st.Received || int64(st.Completed) > st.Valid {
		t.Fatalf("accounting out of order: %+v", st)
	}
	if st.Completed != rep.DistinctWUs {
		t.Fatalf("completed %d ≠ distinct %d", st.Completed, rep.DistinctWUs)
	}
	// Valid results split exactly into useful (quorum-advancing) and
	// wasted; invalid accounts for the rest of received.
	if st.Useful+st.Wasted+st.Invalid != st.Received {
		t.Fatalf("received %d ≠ useful %d + wasted %d + invalid %d",
			st.Received, st.Useful, st.Wasted, st.Invalid)
	}
	// CPU is conserved: every result's CPU is counted once.
	if st.CPUSeconds <= 0 || st.WastedSeconds > st.CPUSeconds {
		t.Fatalf("cpu accounting wrong: %+v", st)
	}
	// Points accounting present and the bias is the hardware share.
	if rep.PointsTotal <= 0 {
		t.Fatal("no points granted")
	}
	if rep.AccountingBias < 1 || rep.AccountingBias > 3 {
		t.Fatalf("accounting bias %v outside hardware-factor band", rep.AccountingBias)
	}
}

// TestPipelineWorkunitToKernel checks that a planned workunit is actually
// executable by the kernel and produces a valid §5.2 result file.
func TestPipelineWorkunitToKernel(t *testing.T) {
	ds := protein.Generate(4, 50)
	for _, p := range ds.Proteins {
		p.Nsep = 6
	}
	m := costmodel.Measure(ds, docking.MinimizeParams{MaxIter: 2, GammaSub: 1})
	plan := workunit.NewPlan(ds, m, 1e-3) // tiny h: multiple WUs per couple
	var first workunit.Workunit
	got := false
	plan.ForEach(func(w workunit.Workunit) bool {
		first = w
		got = true
		return false
	})
	if !got {
		t.Fatal("no workunits")
	}
	rec, lig := ds.Proteins[first.Receptor], ds.Proteins[first.Ligand]
	task := docking.NewTask(rec, lig, first.ISepLo, first.ISepHi, protein.NRotWorkunit,
		docking.MinimizeParams{MaxIter: 2, GammaSub: 1})
	results := task.Run()
	if len(results) != first.Lines() {
		t.Fatalf("kernel produced %d lines, workunit promised %d", len(results), first.Lines())
	}
	var buf bytes.Buffer
	if err := docking.WriteResults(&buf, results); err != nil {
		t.Fatal(err)
	}
	parsed, err := docking.ParseResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := docking.DefaultValidRange.CheckResults(parsed, first.Lines()); err != nil {
		t.Fatalf("workunit output fails §5.2 validation: %v", err)
	}
}

// TestPipelineValidateArchive runs kernel → result files → validation
// pipeline for a tiny campaign.
func TestPipelineValidateArchive(t *testing.T) {
	ds := protein.Generate(2, 60)
	for _, p := range ds.Proteins {
		p.Nsep = 3
	}
	pipe := validate.NewPipeline(ds)
	params := docking.MinimizeParams{MaxIter: 2, GammaSub: 1}
	for rec := 0; rec < ds.Len(); rec++ {
		d := validate.Delivery{Receptor: rec, Files: make(map[int][][]byte)}
		for lig := 0; lig < ds.Len(); lig++ {
			results := docking.EnergyMap(ds.Proteins[rec], ds.Proteins[lig], params)
			var buf bytes.Buffer
			if err := docking.WriteResults(&buf, results); err != nil {
				t.Fatal(err)
			}
			d.Files[lig] = [][]byte{buf.Bytes()}
		}
		if _, err := pipe.Receive(d); err != nil {
			t.Fatal(err)
		}
	}
	if !pipe.Complete() {
		t.Fatal("archive incomplete")
	}
	wantLines := int64(ds.Len() * ds.SumNsep() * protein.NRotWorkunit)
	if pipe.Lines() != wantLines {
		t.Fatalf("archive lines %d, want %d", pipe.Lines(), wantLines)
	}
}

// TestPhaseIISimulationMatchesTable3 validates the §7 forecast dynamically:
// a grid supplying the Table 3 VFTP completes the phase II workload in
// about the predicted 40 weeks.
func TestPhaseIISimulationMatchesTable3(t *testing.T) {
	rep := system().SimulatePhaseII(1.0 / 168) // one ligand per receptor
	if !rep.Completed {
		t.Fatal("phase II simulation did not complete")
	}
	predicted := forecast.PaperForecast().WeeksII
	if rep.WeeksElapsed < predicted*0.75 || rep.WeeksElapsed > predicted*1.35 {
		t.Fatalf("phase II took %.0f weeks, Table 3 predicts %.0f", rep.WeeksElapsed, predicted)
	}
}

// TestAccountingModesEndToEnd compares UD and BOINC accounting over the
// same campaign: identical completion, lower reported totals under BOINC.
func TestAccountingModesEndToEnd(t *testing.T) {
	run := func(mode volunteer.AccountingMode) *project.Report {
		cfg := system().CampaignConfig(1.0/168, 0)
		cfg.Host.Accounting = mode
		return project.New(cfg).Run()
	}
	ud := run(volunteer.UDWallClock)
	boinc := run(volunteer.BOINCCPUTime)
	if !ud.Completed || !boinc.Completed {
		t.Fatal("campaigns incomplete")
	}
	// Physics identical (same seeds, same wall times): same duration.
	if math.Abs(ud.WeeksElapsed-boinc.WeeksElapsed) > 2 {
		t.Fatalf("durations diverge: %v vs %v weeks", ud.WeeksElapsed, boinc.WeeksElapsed)
	}
	// Reported CPU (and hence VFTP) much lower under CPU-time accounting.
	ratio := ud.ServerStats.CPUSeconds / boinc.ServerStats.CPUSeconds
	want := volunteer.UDThrottleFactor * volunteer.PriorityFactor
	if ratio < want*0.9 || ratio > want*1.1 {
		t.Fatalf("accounting ratio %.2f, want ≈ %.2f", ratio, want)
	}
}
