// Package core is the public façade of the HCMD reproduction: one type that
// wires the substrates together and exposes, as plain method calls, every
// planning step and every experiment of the paper.
//
// The pipeline mirrors the paper's own workflow:
//
//  1. assemble the 168-protein benchmark (§2, Figure 2);
//  2. calibrate the computation-time matrix (§4.1, Table 1, Figure 3);
//  3. slice the work into workunits of a wanted duration (§4.2, Figure 4);
//  4. run the campaign on the simulated volunteer grid (§5, Figures 6-8);
//  5. compare against a dedicated grid (§6, Table 2);
//  6. forecast phase II (§7, Table 3).
//
// Example:
//
//	sys := core.NewHCMD()
//	plan := sys.Package(10)                   // 10-hour workunits
//	rep := sys.RunCampaign(1.0/84, 0)         // scaled simulation
//	fc := sys.ForecastPhaseII()               // Table 3
package core

import (
	"context"
	"math"

	"repro/internal/costmodel"
	"repro/internal/docking"
	"repro/internal/experiment"
	"repro/internal/forecast"
	"repro/internal/grid"
	"repro/internal/project"
	"repro/internal/protein"
	"repro/internal/stats"
	"repro/internal/vftp"
	"repro/internal/volunteer"
	"repro/internal/workunit"
)

// System bundles the protein benchmark with its calibrated cost matrix.
type System struct {
	DS     *protein.Dataset
	Matrix *costmodel.Matrix
	Grid   volunteer.GridModel
}

// NewHCMD assembles the canonical HCMD phase I system: the 168-protein
// benchmark and the Table 1-calibrated cost matrix.
func NewHCMD() *System {
	ds := protein.HCMD168()
	return &System{
		DS:     ds,
		Matrix: costmodel.SynthesizeHCMD(ds),
		Grid:   volunteer.DefaultGridModel(),
	}
}

// NewScaled assembles a reduced system of n proteins (tests, examples).
func NewScaled(n int, seed uint64) *System {
	ds := protein.Generate(n, seed)
	return &System{
		DS:     ds,
		Matrix: costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: seed + 1}),
		Grid:   volunteer.DefaultGridModel(),
	}
}

// TotalWork evaluates formula (1): the campaign's total reference-processor
// seconds.
func (s *System) TotalWork() float64 { return s.Matrix.TotalWork(s.DS) }

// Table1 returns the cost-matrix statistics of Table 1.
func (s *System) Table1() stats.Summary { return s.Matrix.Stats() }

// Figure2 returns the Nsep distribution histogram of Figure 2.
func (s *System) Figure2() *stats.Histogram {
	lo, hi, bins := protein.NsepHistogramEdges()
	h := stats.NewHistogram(lo, hi, bins)
	for _, p := range s.DS.Proteins {
		h.Add(float64(p.Nsep))
	}
	return h
}

// Figure3 verifies the run-time linearity of §4.1 for one couple.
func (s *System) Figure3(receptor, ligand int) costmodel.LinearityReport {
	return costmodel.VerifyLinearity(s.DS.Proteins[receptor], s.DS.Proteins[ligand], docking.MinimizeParams{})
}

// Package slices the campaign into workunits of the wanted duration
// (hours on the reference processor) — the §4.2 algorithm.
func (s *System) Package(hHours float64) *workunit.Plan {
	return workunit.NewPlan(s.DS, s.Matrix, hHours)
}

// Figure4 returns the workunit-duration summary for the wanted duration:
// the count and histogram of Figure 4 (and, at the deployed duration,
// the reference-side distribution of Figure 8).
func (s *System) Figure4(hHours float64) workunit.Summary {
	return s.Package(hHours).Summarize(14, 28)
}

// Figure1 returns the grid-wide daily VFTP series of Figure 1 over the
// given number of days since the World Community Grid launch.
func (s *System) Figure1(days int) *stats.Series {
	daily := s.Grid.DailyVFTP(days, protein.DefaultSeed+3)
	series := stats.NewSeries("grid-vftp-daily")
	for d, v := range daily {
		series.Add(float64(d), v)
	}
	return series
}

// CampaignConfig returns the campaign configuration at the given scale
// (0 < scale ≤ 1 subsamples work and hosts together). A zero hHours uses
// the deployed duration.
func (s *System) CampaignConfig(scale, hHours float64) project.Config {
	cfg := project.DefaultConfig(s.DS, s.Matrix)
	cfg.Grid = s.Grid
	if scale > 0 {
		cfg.WorkScale = scale
		cfg.HostScale = scale
	}
	if hHours > 0 {
		cfg.HHours = hHours
	}
	return cfg
}

// RunCampaign simulates the HCMD campaign on the volunteer grid at the
// given scale and returns the full report (Figures 6-8, Table 2 inputs).
func (s *System) RunCampaign(scale, hHours float64) *project.Report {
	return project.New(s.CampaignConfig(scale, hHours)).Run()
}

// RunExperiments fans a scenario sweep out across the machine: every
// selected scenario × replication pair becomes one deterministic campaign
// simulation scheduled on the experiment worker pool. Options.Base is
// filled in from this system (at the given scale and workunit duration) when
// the caller leaves it zero; the remaining options (scenarios, replication
// count, worker bound, checkpoint, progress callback) pass through.
func (s *System) RunExperiments(ctx context.Context, scale, hHours float64, opts experiment.Options) (*experiment.Sweep, error) {
	if opts.Base.DS == nil {
		opts.Base = s.CampaignConfig(scale, hHours)
	}
	if len(opts.Scenarios) == 0 {
		opts.Scenarios = experiment.Catalog()
	}
	return experiment.Run(ctx, opts)
}

// DedicatedEquivalent returns how many dedicated reference processors match
// the given volunteer VFTP under the paper's measured inflation.
func (s *System) DedicatedEquivalent(vftpValue float64) float64 {
	return vftp.DedicatedEquivalent(vftpValue, vftp.PaperTotalFactor)
}

// DedicatedMakespan returns the ideal dedicated-grid makespan (seconds) of
// the whole campaign on n reference processors.
func (s *System) DedicatedMakespan(n int) float64 {
	return grid.NewCluster(n).AnalyticMakespan(s.TotalWork())
}

// ForecastPhaseII computes the §7 phase II estimate from the paper's
// phase I record (Table 3).
func (s *System) ForecastPhaseII() forecast.Forecast {
	return forecast.PaperForecast()
}

// ForecastFromRun computes the phase II estimate from a simulated campaign
// instead of the paper's record: the "what if our own run had been phase I"
// view.
func (s *System) ForecastFromRun(rep *project.Report, plan forecast.PhaseIIPlan) forecast.Forecast {
	fullPowerWeeks := rep.WeeksElapsed - rep.Config.ControlWeeks - rep.Config.RampWeeks
	if fullPowerWeeks < 1 {
		fullPowerWeeks = rep.WeeksElapsed
	}
	p1 := forecast.PhaseI{
		CPUSeconds: rep.ServerStats.CPUSeconds / rep.Config.HostScale,
		Weeks:      fullPowerWeeks,
		Proteins:   s.DS.Len(),
		Members:    forecast.PaperPhaseI().Members,
	}
	return forecast.Estimate(p1, plan)
}

// PhaseIIRatio is the §7 workload ratio: 4000² / (168² × 100).
const PhaseIIRatio = 4000.0 * 4000.0 / (168.0 * 168.0 * 100.0)

// phaseIIMatrix synthesizes the §7 phase II cost matrix — the benchmark's
// shape carrying PhaseIIRatio× the work — the one recipe shared by
// PhaseIIConfig and CoShareConfig.
func phaseIIMatrix(ds *protein.Dataset, seed uint64) *costmodel.Matrix {
	return costmodel.Synthesize(ds, costmodel.SynthesizeOptions{
		Seed:        seed,
		MeanSeconds: costmodel.Table1.Mean * PhaseIIRatio,
		TargetTotal: costmodel.PaperTotalSeconds * PhaseIIRatio,
	})
}

// PhaseIIConfig builds a campaign configuration for the phase II plan of
// §7, validated by simulation rather than arithmetic: the same benchmark
// shape carries 5.67× the work (each couple's per-point cost stands in for
// the 4,000-protein, ÷100-points workload), and the grid supplies a
// constant 59,730 VFTP — the Table 3 operating point. The §7 estimate says
// this completes in 40 weeks.
func (s *System) PhaseIIConfig(scale float64) project.Config {
	cfg := project.DefaultConfig(s.DS, phaseIIMatrix(s.DS, protein.DefaultSeed+11))
	// §7 assumes a steady allocation, not the phase I ramp: a flat grid
	// slice of 59,730 VFTP for the whole run.
	cfg.Grid = volunteer.GridModel{BaseVFTP: 59730, GrowthPerWeek: 0}
	cfg.ControlWeeks = 0
	cfg.RampWeeks = 0.1
	cfg.ControlShare = 1
	cfg.FullShare = 1
	cfg.MaxWeeks = 90
	cfg.SnapshotWeeks = []float64{10, 20, 30, 40}
	if scale > 0 {
		cfg.WorkScale = scale
		cfg.HostScale = scale
	}
	return cfg
}

// SimulatePhaseII runs the §7 plan on the simulated grid and returns the
// report; WeeksElapsed near 40 confirms Table 3 dynamically.
func (s *System) SimulatePhaseII(scale float64) *project.Report {
	return project.New(s.PhaseIIConfig(scale)).Run()
}

// SharedGridConfig builds a shared multi-project grid configuration: n
// co-running copies of the HCMD workload (per-tenant seeds offset so
// seed-dependent choices decorrelate) on one volunteer population carved
// from the whole modeled grid, under the given resource shares (nil =
// equal). scale subsamples work and hosts together, as in CampaignConfig.
func (s *System) SharedGridConfig(n int, scale float64, shares []float64) project.GridConfig {
	if n < 1 {
		panic("core: shared grid needs at least one project")
	}
	base := s.CampaignConfig(scale, 0)
	projects := make([]project.Config, n)
	for i := range projects {
		p := base
		p.Seed = base.Seed + uint64(i)
		projects[i] = p
	}
	return project.GridConfig{
		Projects:  projects,
		Shares:    shares,
		Host:      base.Host,
		Grid:      s.Grid,
		GridShare: 1, // the shared population is the whole grid
		HostScale: base.HostScale,
		Seed:      base.Seed,
		MaxWeeks:  base.MaxWeeks,
	}
}

// CoShareConfig builds the §7 cross-validation co-run: the HCMD workload
// holding the given resource share of a shared grid against a
// phase-II-sized co-project holding the rest. The co-project carries 5.67×
// the work, so it outlasts HCMD and the HCMD tenant's measured share is
// contended for its whole lifetime.
func (s *System) CoShareConfig(scale, share float64) project.GridConfig {
	if share <= 0 || share >= 1 {
		panic("core: co-run share must be in (0,1)")
	}
	cfg := s.SharedGridConfig(2, scale, []float64{share, 1 - share})
	big := &cfg.Projects[1]
	big.M = phaseIIMatrix(big.DS, big.Seed+11)
	cfg.MaxWeeks = 120
	return cfg
}

// RunSharedGrid simulates a multi-project co-run on one shared volunteer
// population: each host multiplexes its work fetches across the attached
// project servers by resource share, so each project's grid share comes
// out as a measurement instead of an assumption.
func (s *System) RunSharedGrid(cfg project.GridConfig) *project.GridReport {
	return project.NewGrid(cfg).Run()
}

// GridShareCheck is the §7 cross-validation: the forecast's assumed grid
// share next to the share a shared-grid simulation actually realized, and
// Table 3 recomputed under each.
type GridShareCheck struct {
	AssumedShare  float64
	MeasuredShare float64
	AbsError      float64
	// Assumed is Table 3 under the plan's GridShare; Measured is Table 3
	// under the simulated share (PhaseIIPlan.MeasuredShare path).
	Assumed  forecast.Forecast
	Measured forecast.Forecast
}

// CrossValidateGridShare recomputes the §7 member arithmetic from the
// grid share project proj realized in a shared-grid co-run, next to the
// plan's assumed share. A small AbsError means the paper's 25 % assumption
// is dynamically consistent with a grid that actually multiplexes the
// projects; a large one quantifies how far the assumption drifts.
func (s *System) CrossValidateGridShare(rep *project.GridReport, proj int, plan forecast.PhaseIIPlan) GridShareCheck {
	measured := rep.MeasuredShareOf(proj)
	if measured <= 0 {
		// A zero measured share means the co-run never contended (the
		// share window closed before any CPU was reported) — passing it
		// on would make forecast.shareInForce silently fall back to the
		// assumption and label it "measured".
		panic("core: co-run measured no contended share; scale the workload up or the population down")
	}
	measuredPlan := plan
	measuredPlan.MeasuredShare = measured
	check := GridShareCheck{
		AssumedShare:  plan.GridShare,
		MeasuredShare: measured,
		Assumed:       forecast.Estimate(forecast.PaperPhaseI(), plan),
		Measured:      forecast.Estimate(forecast.PaperPhaseI(), measuredPlan),
	}
	check.AbsError = math.Abs(measured - plan.GridShare)
	return check
}

// DockCouple runs the real docking kernel for one couple over a range of
// starting positions — the quickstart entry point.
func (s *System) DockCouple(receptor, ligand, isepLo, isepHi int, params docking.MinimizeParams) []docking.Result {
	return docking.DockRange(s.DS.Proteins[receptor], s.DS.Proteins[ligand], isepLo, isepHi, protein.NRotWorkunit, params, nil)
}
