package core

import (
	"math"
	"testing"

	"context"

	"repro/internal/costmodel"
	"repro/internal/docking"
	"repro/internal/experiment"
	"repro/internal/forecast"
)

var hcmd = NewHCMD() // shared across tests; System is read-only after build

func TestNewHCMDShape(t *testing.T) {
	if hcmd.DS.Len() != 168 {
		t.Fatalf("dataset size %d", hcmd.DS.Len())
	}
	if got := hcmd.TotalWork(); math.Abs(got-costmodel.PaperTotalSeconds)/costmodel.PaperTotalSeconds > 1e-3 {
		t.Fatalf("total work %.3g", got)
	}
}

func TestTable1(t *testing.T) {
	s := hcmd.Table1()
	if math.Abs(s.Mean-671) > 0.1 {
		t.Fatalf("mean %v", s.Mean)
	}
}

func TestFigure2(t *testing.T) {
	h := hcmd.Figure2()
	if h.Total() != 168 {
		t.Fatalf("histogram mass %d", h.Total())
	}
	// The outlier beyond 8,000 must be in the last bins, the bulk below
	// 3,000 in the first third.
	var below3000 int
	for i, c := range h.Bins {
		if h.BinLow(i) < 3000 {
			below3000 += c
		}
	}
	if below3000 < 130 {
		t.Fatalf("only %d proteins below 3,000", below3000)
	}
}

func TestFigure3(t *testing.T) {
	rep := hcmd.Figure3(0, 1)
	if rep.NrotR < 0.99 || rep.NsepR < 0.99 {
		t.Fatalf("linearity broken: %+v", rep)
	}
}

func TestFigure4Counts(t *testing.T) {
	// Figure 4: 1,364,476 workunits at h=10; 3,599,937 at h=4. Accept ±3%.
	s10 := hcmd.Figure4(10)
	if math.Abs(float64(s10.Count)-1364476)/1364476 > 0.03 {
		t.Fatalf("h=10 count %d, want ≈ 1,364,476", s10.Count)
	}
	s4 := hcmd.Figure4(4)
	if math.Abs(float64(s4.Count)-3599937)/3599937 > 0.03 {
		t.Fatalf("h=4 count %d, want ≈ 3,599,937", s4.Count)
	}
	// Conservation: both slicings carry the same total work.
	if math.Abs(s10.TotalSeconds-s4.TotalSeconds) > 1 {
		t.Fatal("packaging changed the total work")
	}
}

func TestFigure1(t *testing.T) {
	s := hcmd.Figure1(365)
	if s.Len() != 365 {
		t.Fatalf("len %d", s.Len())
	}
}

func TestRunCampaignSmall(t *testing.T) {
	rep := hcmd.RunCampaign(1.0/168, 0)
	if !rep.Completed {
		t.Fatal("scaled campaign did not complete")
	}
	if rep.WeeksElapsed < 15 || rep.WeeksElapsed > 45 {
		t.Fatalf("weeks %.1f", rep.WeeksElapsed)
	}
}

func TestDedicatedEquivalent(t *testing.T) {
	if got := hcmd.DedicatedEquivalent(16450); math.Abs(got-3029) > 1 {
		t.Fatalf("equivalent %v", got)
	}
}

func TestDedicatedMakespan(t *testing.T) {
	// On 4,833 dedicated processors (Table 2 full-power equivalent) the
	// whole campaign takes total/4833 seconds ≈ 16 weeks — consistent with
	// the full-power phase duration.
	weeks := hcmd.DedicatedMakespan(4833) / (7 * 86400)
	if weeks < 10 || weeks > 25 {
		t.Fatalf("dedicated makespan %.1f weeks, want ≈ 16", weeks)
	}
}

func TestForecastPhaseII(t *testing.T) {
	fc := hcmd.ForecastPhaseII()
	if math.Abs(fc.VFTPII-59730) > 2 {
		t.Fatalf("phase II VFTP %v", fc.VFTPII)
	}
}

func TestForecastFromRun(t *testing.T) {
	rep := hcmd.RunCampaign(1.0/168, 0)
	fc := hcmd.ForecastFromRun(rep, forecast.PaperPhaseIIPlan())
	// Shape: phase II needs tens of thousands of VFTP.
	if fc.VFTPII < 20000 || fc.VFTPII > 150000 {
		t.Fatalf("VFTP II %v", fc.VFTPII)
	}
	if fc.WorkRatio < 5.6 || fc.WorkRatio > 5.8 {
		t.Fatalf("work ratio %v", fc.WorkRatio)
	}
}

func TestDockCouple(t *testing.T) {
	res := hcmd.DockCouple(0, 1, 1, 2, docking.MinimizeParams{MaxIter: 4, GammaSub: 1})
	if len(res) != 2*21 {
		t.Fatalf("results %d", len(res))
	}
}

func TestNewScaled(t *testing.T) {
	s := NewScaled(12, 7)
	if s.DS.Len() != 12 {
		t.Fatalf("len %d", s.DS.Len())
	}
	if s.TotalWork() <= 0 {
		t.Fatal("no work")
	}
}

func TestCampaignConfigOverrides(t *testing.T) {
	cfg := hcmd.CampaignConfig(0.5, 8)
	if cfg.WorkScale != 0.5 || cfg.HostScale != 0.5 {
		t.Fatalf("scale not applied: %+v", cfg)
	}
	if cfg.HHours != 8 {
		t.Fatalf("hHours not applied: %v", cfg.HHours)
	}
	// Zero values keep defaults.
	cfg = hcmd.CampaignConfig(0, 0)
	if cfg.WorkScale != 1 || cfg.HHours <= 0 {
		t.Fatalf("defaults broken: %+v", cfg)
	}
}

func TestPhaseIIConfigShape(t *testing.T) {
	cfg := hcmd.PhaseIIConfig(1.0 / 168)
	// The phase II matrix carries PhaseIIRatio× the phase I work.
	got := cfg.M.TotalWork(hcmd.DS)
	want := costmodel.PaperTotalSeconds * PhaseIIRatio
	if math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("phase II total %.3g, want %.3g", got, want)
	}
	// Flat grid at the Table 3 operating point.
	if cfg.Grid.VFTPAt(0) != 59730 || cfg.Grid.VFTPAt(100) != 59730 {
		t.Fatalf("phase II grid not flat: %v", cfg.Grid)
	}
	if cfg.WorkScale != 1.0/168 || cfg.HostScale != 1.0/168 {
		t.Fatalf("scale not applied: %+v", cfg)
	}
}

func TestSimulatePhaseIICompletes(t *testing.T) {
	rep := hcmd.SimulatePhaseII(1.0 / 168)
	if !rep.Completed {
		t.Fatal("phase II did not complete")
	}
	if rep.WeeksElapsed < 28 || rep.WeeksElapsed > 56 {
		t.Fatalf("phase II took %.0f weeks, §7 predicts 40", rep.WeeksElapsed)
	}
}

func TestForecastFromRunShortCampaign(t *testing.T) {
	// A run shorter than control+ramp weeks falls back to the whole
	// duration as the normalization window.
	rep := hcmd.RunCampaign(1.0/168, 0)
	saved := rep.Config.ControlWeeks
	rep.Config.ControlWeeks = rep.WeeksElapsed + 10
	fc := hcmd.ForecastFromRun(rep, forecast.PaperPhaseIIPlan())
	if fc.VFTPII <= 0 {
		t.Fatal("fallback normalization produced no estimate")
	}
	rep.Config.ControlWeeks = saved
}

// TestSharedGridCrossValidation runs the §7 share assumption through the
// simulator: HCMD at a 25 % resource share of a shared grid against a
// phase-II-sized co-project, measured share fed back into the Table 3
// member arithmetic.
func TestSharedGridCrossValidation(t *testing.T) {
	cfg := hcmd.CoShareConfig(1.0/168, 0.25)
	cfg.HostScale = 0.002 // keep the test population tiny
	rep := hcmd.RunSharedGrid(cfg)
	if len(rep.Projects) != 2 {
		t.Fatalf("co-run carried %d projects, want 2", len(rep.Projects))
	}
	plan := forecast.PaperPhaseIIPlan()
	check := hcmd.CrossValidateGridShare(rep, 0, plan)
	if check.AssumedShare != 0.25 {
		t.Fatalf("assumed share %v", check.AssumedShare)
	}
	if check.AbsError > 0.03 {
		t.Fatalf("measured share %.4f drifted %.4f from the assumed 0.25", check.MeasuredShare, check.AbsError)
	}
	if check.Measured.GridShareUsed != check.MeasuredShare {
		t.Fatal("measured forecast did not rest on the measured share")
	}
	// Member arithmetic scales inversely with the share in force.
	wantRatio := check.AssumedShare / check.MeasuredShare
	gotRatio := check.Measured.GridMembersNeeded / check.Assumed.GridMembersNeeded
	if math.Abs(gotRatio-wantRatio) > 1e-9 {
		t.Fatalf("member arithmetic ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestSharedGridConfigShape(t *testing.T) {
	cfg := hcmd.SharedGridConfig(3, 1.0/84, nil)
	if len(cfg.Projects) != 3 {
		t.Fatalf("projects = %d", len(cfg.Projects))
	}
	seen := map[uint64]bool{}
	for _, p := range cfg.Projects {
		if p.DS != hcmd.DS || p.M != hcmd.Matrix {
			t.Fatal("tenants must share the benchmark dataset and matrix")
		}
		if seen[p.Seed] {
			t.Fatal("tenant seeds must be offset")
		}
		seen[p.Seed] = true
	}
	if cfg.GridShare != 1 {
		t.Fatalf("GridShare = %v, want the whole grid", cfg.GridShare)
	}
}

func TestRunExperiments(t *testing.T) {
	base := hcmd.CampaignConfig(1.0/168, 0)
	base.HostScale = 0.002 // keep the test population tiny
	scen, err := experiment.Select("baseline,quorum-1")
	if err != nil {
		t.Fatal(err)
	}
	sweep, err := hcmd.RunExperiments(context.Background(), 0, 0, experiment.Options{
		Base:      base,
		Scenarios: scen,
		Reps:      2,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 4 || len(sweep.Aggregates) != 2 {
		t.Fatalf("sweep shape: %d results, %d aggregates", len(sweep.Results), len(sweep.Aggregates))
	}
	var q1, base2 experiment.Aggregate
	for _, a := range sweep.Aggregates {
		switch a.Scenario {
		case "quorum-1":
			q1 = a
		case "baseline":
			base2 = a
		}
	}
	if q1.Redundancy.Mean >= base2.Redundancy.Mean {
		t.Fatalf("quorum-1 redundancy %.2f should undercut baseline %.2f",
			q1.Redundancy.Mean, base2.Redundancy.Mean)
	}
}
