// Package costmodel implements the computation-time matrix Mct of §4.1 and
// the total-work accounting of formula (1).
//
// The paper obtained Mct experimentally: the MAXDo program was run for every
// couple of the 168-protein set on 640 Opteron-2GHz processors of Grid'5000
// (one day, > 73 CPU-days), giving for each couple (p1, p2) the time needed
// to compute one starting position with the full rotation sweep. Thanks to
// the linearity properties (Figure 3), that single measurement per couple is
// enough to predict the cost of any workunit slice.
//
// This package provides both routes:
//
//   - Measure: runs the real docking kernel and converts its deterministic
//     operation count into reference-processor seconds (our stand-in for the
//     "Opteron 2 GHz" of the paper). Deterministic and platform-independent.
//   - Synthesize: generates a full 168×168 matrix calibrated to the paper's
//     Table 1 statistics (mean 671 s, σ 968, min 6, max 46,347, median 384)
//     and to the formula-(1) total of 1,488 years 237 days 19:45:54, with
//     the receptor-size correlation that makes 10 proteins carry ~30 % of
//     the total processing time.
//
// Matrix entries are in seconds on the reference processor, per starting
// position (the 21-rotation sweep included). Formula (1) in the paper is
// written as Σ Nsep(p1)·21·ct_iter(p1,p2) with ct_iter the per-rotation
// time; our entries fold the factor 21 in: Mct = 21·ct_iter.
package costmodel

import (
	"fmt"
	"math"

	"repro/internal/docking"
	"repro/internal/protein"
	"repro/internal/rng"
	"repro/internal/stats"
)

// ReferenceOpsPerSecond defines the reference processor ("Opteron 2 GHz"):
// how many bead-pair energy evaluations it performs per second. All matrix
// entries and workunit durations are expressed against this machine.
const ReferenceOpsPerSecond = 4e6

// PaperTotalSeconds is the formula-(1) total the paper reports for phase I
// on the reference processor: 1,488 years 237 days 19:45:54 (y:d:h:m:s with
// 365-day years), in seconds.
const PaperTotalSeconds = 1488*365*86400 + 237*86400 + 19*3600 + 45*60 + 54 // 46,946,115,954

// Table1 holds the paper's published statistics of the computation-time
// matrix (Table 1), in seconds.
var Table1 = stats.Summary{
	N:      protein.BenchmarkSize * protein.BenchmarkSize,
	Mean:   671,
	Std:    968.04,
	Min:    6,
	Max:    46347,
	Median: 384,
}

// Matrix is a dense N×N computation-time matrix. Entry (i, j) is the
// reference-processor time, in seconds, to compute ONE starting position
// (all 21 rotations) for receptor i and ligand j.
type Matrix struct {
	N  int
	ct []float64 // row-major
}

// NewMatrix allocates an N×N zero matrix.
func NewMatrix(n int) *Matrix {
	if n <= 0 {
		panic("costmodel: matrix size must be positive")
	}
	return &Matrix{N: n, ct: make([]float64, n*n)}
}

// At returns entry (receptor i, ligand j).
func (m *Matrix) At(i, j int) float64 {
	return m.ct[i*m.N+j]
}

// Set assigns entry (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("costmodel: invalid cost %v at (%d,%d)", v, i, j))
	}
	m.ct[i*m.N+j] = v
}

// Values returns all entries (row-major). The slice aliases the matrix.
func (m *Matrix) Values() []float64 { return m.ct }

// Stats returns the Table 1 descriptive statistics of the matrix.
func (m *Matrix) Stats() stats.Summary { return stats.Summarize(m.ct) }

// TotalWork evaluates formula (1): Σ_{p1,p2} Nsep(p1) · Mct(p1,p2), the
// total reference-processor seconds to compute the whole campaign.
func (m *Matrix) TotalWork(ds *protein.Dataset) float64 {
	if ds.Len() != m.N {
		panic("costmodel: dataset/matrix size mismatch")
	}
	var total float64
	for i, p := range ds.Proteins {
		var row float64
		for j := 0; j < m.N; j++ {
			row += m.At(i, j)
		}
		total += float64(p.Nsep) * row
	}
	return total
}

// ReceptorCost returns, for each protein as receptor, its share of the total
// work: Nsep(p1) · Σ_p2 Mct(p1,p2). The paper's launch order and the
// "10 proteins = 30 % of the time" observation both derive from this.
func (m *Matrix) ReceptorCost(ds *protein.Dataset) []float64 {
	if ds.Len() != m.N {
		panic("costmodel: dataset/matrix size mismatch")
	}
	out := make([]float64, m.N)
	for i, p := range ds.Proteins {
		var row float64
		for j := 0; j < m.N; j++ {
			row += m.At(i, j)
		}
		out[i] = float64(p.Nsep) * row
	}
	return out
}

// KernelOps returns the deterministic operation count (bead-pair energy
// evaluations) of docking one starting position with nrot rotations for the
// given couple, which is what Measure converts to seconds. The count is the
// product of bead counts, the minimization evaluation count, and the
// rotation sweep — hence the linearity in nrot and nsep of Figure 3.
func KernelOps(receptor, ligand *protein.Protein, nrot int, params docking.MinimizeParams) float64 {
	p := paramsWithDefaults(params)
	// Each minimize() iteration evaluates 12 candidate poses (6 translation
	// + 6 rotation moves) plus the initial evaluation; each evaluation costs
	// beads(receptor)·beads(ligand) pair interactions. γ-sweep multiplies.
	evalsPerStart := float64(1 + 12*p.MaxIter)
	pairs := float64(receptor.NumBeads() * ligand.NumBeads())
	return evalsPerStart * pairs * float64(p.GammaSub) * float64(nrot)
}

func paramsWithDefaults(p docking.MinimizeParams) docking.MinimizeParams {
	d := docking.DefaultMinimize
	if p.MaxIter > 0 {
		d.MaxIter = p.MaxIter
	}
	if p.GammaSub > 0 {
		d.GammaSub = p.GammaSub
	}
	return d
}

// MeasureCouple returns the reference-processor seconds to compute one
// starting position (nrot rotations) for the couple, derived from the
// kernel's deterministic operation count.
func MeasureCouple(receptor, ligand *protein.Protein, nrot int, params docking.MinimizeParams) float64 {
	return KernelOps(receptor, ligand, nrot, params) / ReferenceOpsPerSecond
}

// Measure builds the full matrix by "running" the kernel cost model for
// every couple — the Grid'5000 calibration experiment of §4.1 (168² runs).
func Measure(ds *protein.Dataset, params docking.MinimizeParams) *Matrix {
	m := NewMatrix(ds.Len())
	for i, rec := range ds.Proteins {
		for j, lig := range ds.Proteins {
			m.Set(i, j, MeasureCouple(rec, lig, protein.NRotWorkunit, params))
		}
	}
	return m
}

// SynthesizeOptions tunes the calibrated generative model.
type SynthesizeOptions struct {
	Seed uint64
	// TargetTotal is the formula-(1) total to calibrate to; 0 means
	// PaperTotalSeconds (scaled for non-full-size datasets).
	TargetTotal float64
	// MeanSeconds is the matrix arithmetic mean to calibrate to; 0 means
	// the Table 1 value of 671 s.
	MeanSeconds float64
}

// Synthesize generates a cost matrix calibrated to Table 1 and formula (1).
//
// Model: Mct(p1,p2) = C · exp(a·z(p1) + b·z(p2) + σw·ε(p1,p2)) where z(p)
// is the centered log-Nsep of the protein (size proxy), ε is standard
// normal noise, b and σw are fixed shape parameters, a controls the
// receptor-size correlation and is solved by bisection so the Nsep-weighted
// total hits the target, and C scales the arithmetic mean to 671 s.
func Synthesize(ds *protein.Dataset, opts SynthesizeOptions) *Matrix {
	n := ds.Len()
	mean := opts.MeanSeconds
	if mean <= 0 {
		mean = Table1.Mean
	}
	target := opts.TargetTotal
	if target <= 0 {
		// Scale the paper total with dataset size: work scales with
		// (number of couples) × (ΣNsep per receptor slot).
		full := float64(PaperTotalSeconds)
		scale := float64(ds.SumNsep()) / float64(protein.TotalNsep) * float64(n) / float64(protein.BenchmarkSize)
		target = full * scale
	}

	// Centered log-size.
	z := make([]float64, n)
	var zbar float64
	for i, p := range ds.Proteins {
		z[i] = math.Log(float64(p.Nsep))
		zbar += z[i]
	}
	zbar /= float64(n)
	for i := range z {
		z[i] -= zbar
	}

	// Fixed shape parameters; total log-variance targets the Table 1
	// mean/median ratio (σ² = 2·ln(671/384) ≈ 1.12).
	const (
		b      = 0.35
		sigmaW = 0.80
	)

	// Pre-draw the noise so bisection re-uses it (deterministic in seed).
	r := rng.New(opts.Seed)
	eps := make([]float64, n*n)
	for i := range eps {
		eps[i] = r.NormFloat64()
	}

	build := func(a float64) (*Matrix, float64) {
		m := NewMatrix(n)
		var sum float64
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				v := math.Exp(a*z[i] + b*z[j] + sigmaW*eps[i*n+j])
				m.ct[i*n+j] = v
				sum += v
			}
		}
		// Scale the arithmetic mean to the Table 1 value.
		c := mean * float64(n*n) / sum
		for k := range m.ct {
			m.ct[k] *= c
		}
		return m, m.TotalWork(ds)
	}

	// Bisect a so TotalWork hits the target. The weighted total is
	// monotonically increasing in a (more receptor-size correlation pushes
	// work toward large-Nsep rows).
	lo, hi := 0.0, 3.0
	var m *Matrix
	for iter := 0; iter < 60; iter++ {
		a := (lo + hi) / 2
		var tw float64
		m, tw = build(a)
		if math.Abs(tw-target) <= 1e-6*target {
			break
		}
		if tw < target {
			lo = a
		} else {
			hi = a
		}
	}
	return m
}

// SynthesizeHCMD returns the canonical calibrated matrix for the HCMD-168
// benchmark (the one every experiment in EXPERIMENTS.md uses).
func SynthesizeHCMD(ds *protein.Dataset) *Matrix {
	return Synthesize(ds, SynthesizeOptions{Seed: protein.DefaultSeed + 1})
}

// LinearityReport holds the Figure 3 verification for one couple: fits of
// kernel cost against the number of rotations (3a) and the number of
// starting positions (3b).
type LinearityReport struct {
	NrotFit stats.LinearFit
	NsepFit stats.LinearFit
	NrotR   float64 // Pearson correlation, paper reports ≈ 0.99
	NsepR   float64
}

// VerifyLinearity reproduces the §4.1 linearity check for a couple using
// the kernel cost model, sweeping nrot at fixed nsep and nsep at fixed nrot.
func VerifyLinearity(receptor, ligand *protein.Protein, params docking.MinimizeParams) LinearityReport {
	var rep LinearityReport
	// Figure 3(a): time vs number of rotations, one starting position.
	var xs, ys []float64
	for nrot := 1; nrot <= protein.NRotWorkunit; nrot++ {
		xs = append(xs, float64(nrot))
		ys = append(ys, MeasureCouple(receptor, ligand, nrot, params))
	}
	rep.NrotFit = stats.FitLine(xs, ys)
	rep.NrotR = stats.Pearson(xs, ys)
	// Figure 3(b): time vs number of starting positions, full rotation set.
	perIsep := MeasureCouple(receptor, ligand, protein.NRotWorkunit, params)
	xs, ys = nil, nil
	maxSep := 20
	if receptor.Nsep < maxSep {
		maxSep = receptor.Nsep
	}
	for nsep := 1; nsep <= maxSep; nsep++ {
		xs = append(xs, float64(nsep))
		ys = append(ys, perIsep*float64(nsep))
	}
	rep.NsepFit = stats.FitLine(xs, ys)
	rep.NsepR = stats.Pearson(xs, ys)
	return rep
}

// TopShare reports how many receptors carry the given share of the total
// processing time (the paper: 10 proteins ≈ 30 %).
func (m *Matrix) TopShare(ds *protein.Dataset, share float64) (count int, covered float64) {
	return stats.TopShare(m.ReceptorCost(ds), share)
}
