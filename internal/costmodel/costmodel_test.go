package costmodel

import (
	"math"
	"testing"

	"repro/internal/docking"
	"repro/internal/protein"
	"repro/internal/rng"
	"repro/internal/stats"
)

func hcmd(t testing.TB) (*protein.Dataset, *Matrix) {
	t.Helper()
	ds := protein.HCMD168()
	return ds, SynthesizeHCMD(ds)
}

func TestSynthesizedMeanExact(t *testing.T) {
	_, m := hcmd(t)
	s := m.Stats()
	if math.Abs(s.Mean-Table1.Mean) > 0.01 {
		t.Fatalf("mean = %v, want %v (Table 1)", s.Mean, Table1.Mean)
	}
	if s.N != 168*168 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestSynthesizedTable1Bands(t *testing.T) {
	_, m := hcmd(t)
	s := m.Stats()
	// The generative model is calibrated to the paper's lognormal shape;
	// the sample statistics must land near Table 1.
	if s.Median < Table1.Median*0.75 || s.Median > Table1.Median*1.3 {
		t.Errorf("median = %v, want ≈ %v", s.Median, Table1.Median)
	}
	if s.Std < Table1.Std*0.6 || s.Std > Table1.Std*1.6 {
		t.Errorf("std = %v, want ≈ %v", s.Std, Table1.Std)
	}
	if s.Min > 30 {
		t.Errorf("min = %v, want single-digit-ish (Table 1: 6)", s.Min)
	}
	if s.Max < 10000 || s.Max > 150000 {
		t.Errorf("max = %v, want heavy tail ≈ 46,347", s.Max)
	}
}

func TestTotalWorkMatchesFormula1(t *testing.T) {
	ds, m := hcmd(t)
	total := m.TotalWork(ds)
	if math.Abs(total-PaperTotalSeconds)/PaperTotalSeconds > 1e-4 {
		t.Fatalf("total work = %.0f s, want %d s (1488 y 237 d 19:45:54)", total, int64(PaperTotalSeconds))
	}
}

func TestPaperTotalConstant(t *testing.T) {
	if PaperTotalSeconds != 46946115954 {
		t.Fatalf("PaperTotalSeconds = %d", int64(PaperTotalSeconds))
	}
}

func TestTopShareHeavyTail(t *testing.T) {
	ds, m := hcmd(t)
	count, covered := m.TopShare(ds, 0.30)
	// Paper: "there are 10 proteins which represent 30% of the total
	// processing time". Allow a band around 10.
	if count < 4 || count > 25 {
		t.Fatalf("top-30%% proteins = %d (covered %.2f), want ≈ 10", count, covered)
	}
	if covered < 0.30 {
		t.Fatalf("covered %v < 0.30", covered)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	ds := protein.HCMD168()
	a := SynthesizeHCMD(ds)
	b := SynthesizeHCMD(ds)
	for k, v := range a.Values() {
		if b.Values()[k] != v {
			t.Fatalf("entry %d differs", k)
		}
	}
}

func TestSynthesizeSmallDataset(t *testing.T) {
	ds := protein.Generate(12, 99)
	m := Synthesize(ds, SynthesizeOptions{Seed: 5})
	s := m.Stats()
	if math.Abs(s.Mean-Table1.Mean) > 0.1 {
		t.Fatalf("small-set mean = %v", s.Mean)
	}
	// Target total scales with dataset size.
	wantTotal := float64(PaperTotalSeconds) * float64(ds.SumNsep()) / float64(protein.TotalNsep) * 12.0 / 168.0
	if got := m.TotalWork(ds); math.Abs(got-wantTotal)/wantTotal > 1e-3 {
		t.Fatalf("small-set total = %v, want %v", got, wantTotal)
	}
}

func TestSynthesizeCustomTargets(t *testing.T) {
	ds := protein.Generate(10, 3)
	// A target ~40% above the uncorrelated baseline, the same regime the
	// full calibration works in.
	uncorrelated := float64(ds.Len()*ds.SumNsep()) * 100
	target := uncorrelated * 1.4
	m := Synthesize(ds, SynthesizeOptions{Seed: 1, MeanSeconds: 100, TargetTotal: target})
	if math.Abs(m.Stats().Mean-100) > 0.01 {
		t.Fatalf("custom mean = %v", m.Stats().Mean)
	}
	if got := m.TotalWork(ds); math.Abs(got-target)/target > 1e-3 {
		t.Fatalf("custom total = %v, want %v", got, target)
	}
}

func TestMatrixAccessors(t *testing.T) {
	m := NewMatrix(3)
	m.Set(1, 2, 42)
	if m.At(1, 2) != 42 || m.At(2, 1) != 0 {
		t.Fatal("Set/At broken")
	}
	if len(m.Values()) != 9 {
		t.Fatal("Values length")
	}
}

func TestMatrixSetRejectsInvalid(t *testing.T) {
	m := NewMatrix(2)
	for _, v := range []float64{-1, math.NaN(), math.Inf(1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Set(%v) should panic", v)
				}
			}()
			m.Set(0, 0, v)
		}()
	}
}

func TestNewMatrixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(0)
}

func TestSizeMismatchPanics(t *testing.T) {
	ds := protein.Generate(3, 1)
	m := NewMatrix(4)
	for i, f := range []func(){
		func() { m.TotalWork(ds) },
		func() { m.ReceptorCost(ds) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestMeasureMatrixPositive(t *testing.T) {
	ds := protein.Generate(5, 8)
	m := Measure(ds, docking.MinimizeParams{})
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if m.At(i, j) <= 0 {
				t.Fatalf("measured cost (%d,%d) = %v", i, j, m.At(i, j))
			}
		}
	}
}

func TestMeasuredCostGrowsWithSize(t *testing.T) {
	ds := protein.HCMD168()
	small, large := ds.Proteins[0], ds.Proteins[0]
	for _, p := range ds.Proteins {
		if p.Nsep < small.Nsep {
			small = p
		}
		if p.Nsep > large.Nsep {
			large = p
		}
	}
	cSmall := MeasureCouple(small, small, protein.NRotWorkunit, docking.MinimizeParams{})
	cLarge := MeasureCouple(large, large, protein.NRotWorkunit, docking.MinimizeParams{})
	if cLarge <= cSmall {
		t.Fatalf("cost does not grow with protein size: %v vs %v", cSmall, cLarge)
	}
}

func TestKernelOpsLinearInNrot(t *testing.T) {
	ds := protein.Generate(2, 4)
	rec, lig := ds.Proteins[0], ds.Proteins[1]
	base := KernelOps(rec, lig, 1, docking.MinimizeParams{})
	for nrot := 2; nrot <= 21; nrot++ {
		if got := KernelOps(rec, lig, nrot, docking.MinimizeParams{}); math.Abs(got-base*float64(nrot)) > 1e-6 {
			t.Fatalf("ops(%d) = %v, want %v", nrot, got, base*float64(nrot))
		}
	}
}

func TestVerifyLinearityFigure3(t *testing.T) {
	ds := protein.Generate(4, 21)
	rep := VerifyLinearity(ds.Proteins[0], ds.Proteins[1], docking.MinimizeParams{})
	// Paper: correlation coefficient "always around 0.99"; our kernel is
	// exactly linear so the fit should be essentially perfect.
	if rep.NrotR < 0.99 {
		t.Fatalf("Nrot correlation %v < 0.99", rep.NrotR)
	}
	if rep.NsepR < 0.99 {
		t.Fatalf("Nsep correlation %v < 0.99", rep.NsepR)
	}
	if rep.NrotFit.R2 < 0.999 || rep.NsepFit.R2 < 0.999 {
		t.Fatalf("fits not linear: %+v", rep)
	}
	// The paper simplifies to b = 0: intercepts must be negligible next to
	// the full-sweep cost.
	full := MeasureCouple(ds.Proteins[0], ds.Proteins[1], protein.NRotWorkunit, docking.MinimizeParams{})
	if math.Abs(rep.NrotFit.B) > 0.01*full {
		t.Fatalf("Nrot intercept %v not ≈ 0 (full sweep %v)", rep.NrotFit.B, full)
	}
}

func TestReceptorCostMatchesTotal(t *testing.T) {
	ds, m := hcmd(t)
	per := m.ReceptorCost(ds)
	if math.Abs(stats.Sum(per)-m.TotalWork(ds)) > 1 {
		t.Fatal("per-receptor costs do not sum to total work")
	}
}

func BenchmarkSynthesizeHCMD(b *testing.B) {
	ds := protein.HCMD168()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = SynthesizeHCMD(ds)
	}
}

func BenchmarkTotalWork(b *testing.B) {
	ds := protein.HCMD168()
	m := SynthesizeHCMD(ds)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.TotalWork(ds)
	}
}

// TestSynthesizedDistributionShape quantifies the Table 1 calibration with
// a KS distance against the target log-normal (median 384 s, the sigma
// implied by the paper's mean/median ratio).
func TestSynthesizedDistributionShape(t *testing.T) {
	_, m := hcmd(t)
	r := rng.New(12345)
	sigma := math.Sqrt(2 * math.Log(Table1.Mean/Table1.Median))
	ref := make([]float64, len(m.Values()))
	for i := range ref {
		ref[i] = Table1.Median * math.Exp(r.Normal(0, sigma))
	}
	d := stats.KolmogorovSmirnov(m.Values(), ref)
	if d > 0.08 {
		t.Fatalf("KS distance to the Table 1 log-normal = %.3f, want < 0.08", d)
	}
}
