// Package credit implements the points-based accounting the paper's
// conclusion proposes as a middleware-independent alternative to run-time
// based virtual full-time processors.
//
// "Points represent the amount of work done by a computer to compute a
// result and are based on the run time for that result multiplied by a
// weight factor determined by running a benchmark on the agent. This
// approach should reduce the differences between each platform therefore be
// more middleware independent. This approach should also allow us to
// observe the trend toward more powerful processors in desktop computers."
//
// A device's weight is its benchmark score relative to the reference
// processor; points for a result are reported run time × weight. Because
// the weight cancels the device's slowness, points measure delivered
// reference work — insensitive to whether the agent counted wall-clock
// (UD) or process CPU time (BOINC), as long as the benchmark ran under the
// same accounting.
package credit

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
)

// ReferenceScore is the benchmark score of the reference processor
// (Opteron 2 GHz); a device scoring half of this earns half the points per
// reported hour.
const ReferenceScore = 100.0

// Device is one volunteer machine from the accounting point of view.
type Device struct {
	ID       int
	Score    float64 // benchmark score (ReferenceScore = reference CPU)
	JoinedAt float64 // seconds since grid launch
}

// Weight returns the device's points weight.
func (d Device) Weight() float64 {
	if d.Score <= 0 {
		panic(fmt.Sprintf("credit: device %d has non-positive score %v", d.ID, d.Score))
	}
	return d.Score / ReferenceScore
}

// Result is one returned workunit result from the accounting point of view.
type Result struct {
	Device     int
	ReportedS  float64 // run time the agent reported, seconds
	EffectiveS float64 // reference-CPU seconds of useful work in the result
	At         float64 // completion time, seconds since grid launch
}

// Ledger accumulates points per device and over time.
type Ledger struct {
	devices map[int]Device
	points  map[int]float64
	total   float64
	weekly  map[int]float64
	// reported run time total, for the VFTP comparison
	reportedS float64
}

// NewLedger creates an empty points ledger.
func NewLedger() *Ledger {
	return &Ledger{
		devices: make(map[int]Device),
		points:  make(map[int]float64),
		weekly:  make(map[int]float64),
	}
}

// Register adds (or updates) a device.
func (l *Ledger) Register(d Device) {
	d.Weight() // validate
	l.devices[d.ID] = d
}

// PointsPerSecond is the points a reference processor earns per reported
// second — an arbitrary unit chosen so one reference-hour ≈ 1 point.
const PointsPerSecond = 1.0 / 3600

// Credit grants points for a result: reported time × device weight.
// It returns the points granted and an error if the device is unknown.
func (l *Ledger) Credit(r Result) (float64, error) {
	d, ok := l.devices[r.Device]
	if !ok {
		return 0, fmt.Errorf("credit: unknown device %d", r.Device)
	}
	if r.ReportedS < 0 {
		return 0, fmt.Errorf("credit: negative reported time %v", r.ReportedS)
	}
	pts := r.ReportedS * d.Weight() * PointsPerSecond
	l.points[r.Device] += pts
	l.total += pts
	l.reportedS += r.ReportedS
	week := int(r.At / (7 * 86400))
	l.weekly[week] += pts
	return pts, nil
}

// Total returns all points granted.
func (l *Ledger) Total() float64 { return l.total }

// DevicePoints returns the points of one device.
func (l *Ledger) DevicePoints(id int) float64 { return l.points[id] }

// WeeklySeries returns points per week as a series over [0, maxWeek].
func (l *Ledger) WeeklySeries(maxWeek int) *stats.Series {
	s := stats.NewSeries("points-per-week")
	for w := 0; w <= maxWeek; w++ {
		s.Add(float64(w), l.weekly[w])
	}
	return s
}

// PointsVFTP converts a week's points into point-based virtual full-time
// processors: the number of reference processors that would earn those
// points computing full time — the middleware-independent VFTP variant of
// the conclusion.
func PointsVFTP(weekPoints float64) float64 {
	return weekPoints / (7 * 86400 * PointsPerSecond)
}

// RuntimeVFTP converts a week's reported run time into the paper's §3.1
// run-time-based VFTP.
func RuntimeVFTP(weekReportedSeconds float64) float64 {
	return weekReportedSeconds / (7 * 86400)
}

// AccountingBias compares the two metrics over the whole ledger: how much
// the run-time VFTP overstates the points VFTP. For a fleet of devices
// slower than the reference, run-time VFTP counts a slow hour the same as a
// fast one, so the bias is the reported-time-weighted mean of 1/weight.
func (l *Ledger) AccountingBias() float64 {
	if l.total == 0 {
		return math.NaN()
	}
	// reported seconds per point-second:
	return l.reportedS * PointsPerSecond / l.total
}

// PowerTrend fits a line to device benchmark scores against their join
// times (in weeks): the conclusion's "trend toward more powerful processors
// in desktop computers". Returns the score gained per week and the fit.
func (l *Ledger) PowerTrend() (perWeek float64, fit stats.LinearFit, ok bool) {
	if len(l.devices) < 2 {
		return 0, stats.LinearFit{}, false
	}
	// Iterate devices in ID order: map order is randomized, and the fit's
	// floating-point sums are order-sensitive in their last bits, which
	// would break the repository's bit-for-bit determinism guarantee.
	ids := make([]int, 0, len(l.devices))
	for id := range l.devices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	xs := make([]float64, 0, len(l.devices))
	ys := make([]float64, 0, len(l.devices))
	for _, id := range ids {
		d := l.devices[id]
		xs = append(xs, d.JoinedAt/(7*86400))
		ys = append(ys, d.Score)
	}
	// Guard against a degenerate same-join-time population.
	allSame := true
	for _, x := range xs[1:] {
		if x != xs[0] {
			allSame = false
			break
		}
	}
	if allSame {
		return 0, stats.LinearFit{}, false
	}
	fit = stats.FitLine(xs, ys)
	return fit.A, fit, true
}
