// Package credit implements the points-based accounting the paper's
// conclusion proposes as a middleware-independent alternative to run-time
// based virtual full-time processors.
//
// "Points represent the amount of work done by a computer to compute a
// result and are based on the run time for that result multiplied by a
// weight factor determined by running a benchmark on the agent. This
// approach should reduce the differences between each platform therefore be
// more middleware independent. This approach should also allow us to
// observe the trend toward more powerful processors in desktop computers."
//
// A device's weight is its benchmark score relative to the reference
// processor; points for a result are reported run time × weight. Because
// the weight cancels the device's slowness, points measure delivered
// reference work — insensitive to whether the agent counted wall-clock
// (UD) or process CPU time (BOINC), as long as the benchmark ran under the
// same accounting.
package credit

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// ReferenceScore is the benchmark score of the reference processor
// (Opteron 2 GHz); a device scoring half of this earns half the points per
// reported hour.
const ReferenceScore = 100.0

// Device is one volunteer machine from the accounting point of view.
type Device struct {
	ID       int
	Score    float64 // benchmark score (ReferenceScore = reference CPU)
	JoinedAt float64 // seconds since grid launch
}

// Weight returns the device's points weight.
func (d Device) Weight() float64 {
	if d.Score <= 0 {
		panic(fmt.Sprintf("credit: device %d has non-positive score %v", d.ID, d.Score))
	}
	return d.Score / ReferenceScore
}

// Result is one returned workunit result from the accounting point of view.
type Result struct {
	Device     int
	ReportedS  float64 // run time the agent reported, seconds
	EffectiveS float64 // reference-CPU seconds of useful work in the result
	At         float64 // completion time, seconds since grid launch
}

// Ledger accumulates points per device and over time.
//
// The data plane is dense: devices and points are slices indexed by device
// ID, and the weekly rollup is a slice indexed by week number — device IDs
// in this repository are small sequential integers (the volunteer
// population's join counter), so dense indexing replaces three map lookups
// per credited result with three array accesses. A slot with Score == 0
// is unregistered (Register rejects non-positive scores, so a registered
// device always has Score > 0).
type Ledger struct {
	devices []Device  // by device ID; Score == 0 marks an empty slot
	points  []float64 // by device ID
	weekly  []float64 // by week index
	n       int       // registered devices
	total   float64
	// reported run time total, for the VFTP comparison
	reportedS float64
}

// NewLedger creates an empty points ledger.
func NewLedger() *Ledger {
	return &Ledger{}
}

// Reset empties the ledger for another run, retaining the dense backing
// slices so a pooled run context accumulates without allocating.
func (l *Ledger) Reset() {
	clear(l.devices)
	l.devices = l.devices[:0]
	clear(l.points)
	l.points = l.points[:0]
	clear(l.weekly)
	l.weekly = l.weekly[:0]
	l.n = 0
	l.total, l.reportedS = 0, 0
}

// Register adds (or updates) a device. IDs must be non-negative; the
// ledger is dense in the ID, so IDs should be small sequential integers
// (a sparse ID costs one empty slot per skipped value).
func (l *Ledger) Register(d Device) {
	d.Weight() // validate
	if d.ID < 0 {
		panic(fmt.Sprintf("credit: negative device ID %d", d.ID))
	}
	for len(l.devices) <= d.ID {
		l.devices = append(l.devices, Device{})
		l.points = append(l.points, 0)
	}
	if l.devices[d.ID].Score == 0 {
		l.n++
	}
	l.devices[d.ID] = d
}

// PointsPerSecond is the points a reference processor earns per reported
// second — an arbitrary unit chosen so one reference-hour ≈ 1 point.
const PointsPerSecond = 1.0 / 3600

// Credit grants points for a result: reported time × device weight.
// It returns the points granted and an error if the device is unknown,
// the reported time is negative, or the completion time is negative.
func (l *Ledger) Credit(r Result) (float64, error) {
	if r.Device < 0 || r.Device >= len(l.devices) || l.devices[r.Device].Score == 0 {
		return 0, fmt.Errorf("credit: unknown device %d", r.Device)
	}
	if r.ReportedS < 0 {
		return 0, fmt.Errorf("credit: negative reported time %v", r.ReportedS)
	}
	if r.At < 0 {
		return 0, fmt.Errorf("credit: negative completion time %v", r.At)
	}
	pts := r.ReportedS * l.devices[r.Device].Weight() * PointsPerSecond
	l.points[r.Device] += pts
	l.total += pts
	l.reportedS += r.ReportedS
	week := int(r.At / (7 * 86400))
	for len(l.weekly) <= week {
		l.weekly = append(l.weekly, 0)
	}
	l.weekly[week] += pts
	return pts, nil
}

// Total returns all points granted.
func (l *Ledger) Total() float64 { return l.total }

// DevicePoints returns the points of one device (0 if unknown).
func (l *Ledger) DevicePoints(id int) float64 {
	if id < 0 || id >= len(l.points) {
		return 0
	}
	return l.points[id]
}

// WeeklySeries returns points per week as a series over [0, maxWeek].
func (l *Ledger) WeeklySeries(maxWeek int) *stats.Series {
	s := stats.NewSeries("points-per-week")
	for w := 0; w <= maxWeek; w++ {
		v := 0.0
		if w < len(l.weekly) {
			v = l.weekly[w]
		}
		s.Add(float64(w), v)
	}
	return s
}

// PointsVFTP converts a week's points into point-based virtual full-time
// processors: the number of reference processors that would earn those
// points computing full time — the middleware-independent VFTP variant of
// the conclusion.
func PointsVFTP(weekPoints float64) float64 {
	return weekPoints / (7 * 86400 * PointsPerSecond)
}

// RuntimeVFTP converts a week's reported run time into the paper's §3.1
// run-time-based VFTP.
func RuntimeVFTP(weekReportedSeconds float64) float64 {
	return weekReportedSeconds / (7 * 86400)
}

// AccountingBias compares the two metrics over the whole ledger: how much
// the run-time VFTP overstates the points VFTP. For a fleet of devices
// slower than the reference, run-time VFTP counts a slow hour the same as a
// fast one, so the bias is the reported-time-weighted mean of 1/weight.
func (l *Ledger) AccountingBias() float64 {
	if l.total == 0 {
		return math.NaN()
	}
	// reported seconds per point-second:
	return l.reportedS * PointsPerSecond / l.total
}

// PowerTrend fits a line to device benchmark scores against their join
// times (in weeks): the conclusion's "trend toward more powerful processors
// in desktop computers". Returns the score gained per week and the fit.
func (l *Ledger) PowerTrend() (perWeek float64, fit stats.LinearFit, ok bool) {
	if l.n < 2 {
		return 0, stats.LinearFit{}, false
	}
	// The dense slice iterates in ID order by construction, which keeps the
	// fit's order-sensitive floating-point sums bit-for-bit reproducible
	// (the property the pre-dense ledger got from sorting its map keys).
	xs := make([]float64, 0, l.n)
	ys := make([]float64, 0, l.n)
	for _, d := range l.devices {
		if d.Score == 0 {
			continue
		}
		xs = append(xs, d.JoinedAt/(7*86400))
		ys = append(ys, d.Score)
	}
	// Guard against a degenerate same-join-time population.
	allSame := true
	for _, x := range xs[1:] {
		if x != xs[0] {
			allSame = false
			break
		}
	}
	if allSame {
		return 0, stats.LinearFit{}, false
	}
	fit = stats.FitLine(xs, ys)
	return fit.A, fit, true
}
