package credit

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestWeight(t *testing.T) {
	d := Device{ID: 1, Score: 50}
	if d.Weight() != 0.5 {
		t.Fatalf("weight = %v", d.Weight())
	}
	ref := Device{ID: 2, Score: ReferenceScore}
	if ref.Weight() != 1 {
		t.Fatalf("reference weight = %v", ref.Weight())
	}
}

func TestWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Device{ID: 1, Score: 0}.Weight()
}

func TestCreditGrants(t *testing.T) {
	l := NewLedger()
	l.Register(Device{ID: 1, Score: ReferenceScore})
	pts, err := l.Credit(Result{Device: 1, ReportedS: 3600})
	if err != nil {
		t.Fatal(err)
	}
	// One reference hour = one point.
	if math.Abs(pts-1) > 1e-12 {
		t.Fatalf("points = %v", pts)
	}
	if l.Total() != pts || l.DevicePoints(1) != pts {
		t.Fatal("ledger totals wrong")
	}
}

func TestCreditCancelsDeviceSpeed(t *testing.T) {
	// A half-speed device reporting twice the time earns the same points:
	// points measure delivered reference work.
	l := NewLedger()
	l.Register(Device{ID: 1, Score: ReferenceScore})
	l.Register(Device{ID: 2, Score: ReferenceScore / 2})
	fast, _ := l.Credit(Result{Device: 1, ReportedS: 3600})
	slow, _ := l.Credit(Result{Device: 2, ReportedS: 7200})
	if math.Abs(fast-slow) > 1e-12 {
		t.Fatalf("points differ: %v vs %v", fast, slow)
	}
}

func TestCreditErrors(t *testing.T) {
	l := NewLedger()
	if _, err := l.Credit(Result{Device: 9, ReportedS: 1}); err == nil {
		t.Fatal("unknown device accepted")
	}
	l.Register(Device{ID: 1, Score: 100})
	if _, err := l.Credit(Result{Device: 1, ReportedS: -1}); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestWeeklySeries(t *testing.T) {
	l := NewLedger()
	l.Register(Device{ID: 1, Score: 100})
	l.Credit(Result{Device: 1, ReportedS: 3600, At: 0})
	l.Credit(Result{Device: 1, ReportedS: 3600, At: 8 * 86400})
	s := l.WeeklySeries(2)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Y[0] != 1 || s.Y[1] != 1 || s.Y[2] != 0 {
		t.Fatalf("weekly = %v", s.Y)
	}
}

func TestPointsVFTPRoundTrip(t *testing.T) {
	// A reference processor computing full time for a week earns
	// 7·86400·PointsPerSecond points = exactly 1 points-VFTP.
	weekPts := 7 * 86400 * PointsPerSecond
	if got := PointsVFTP(weekPts); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PointsVFTP = %v", got)
	}
	if got := RuntimeVFTP(7 * 86400); got != 1 {
		t.Fatalf("RuntimeVFTP = %v", got)
	}
}

func TestAccountingBias(t *testing.T) {
	// A fleet of half-speed devices: run-time VFTP counts their hours at
	// face value, points halve them — bias 2.
	l := NewLedger()
	l.Register(Device{ID: 1, Score: 50})
	l.Credit(Result{Device: 1, ReportedS: 3600})
	if got := l.AccountingBias(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("bias = %v", got)
	}
	empty := NewLedger()
	if !math.IsNaN(empty.AccountingBias()) {
		t.Fatal("empty ledger should be NaN")
	}
}

func TestAccountingBiasMatchesPaperIntuition(t *testing.T) {
	// §6: a WCG VFTP is ~4× weaker than the reference processor. If
	// devices' effective scores average 1/3.96 of the reference, the
	// run-time metric overstates delivered work by ≈ 3.96 — exactly the
	// paper's speed-down.
	l := NewLedger()
	r := rng.New(7)
	for i := 0; i < 500; i++ {
		score := ReferenceScore / 3.96 * (0.5 + r.Float64())
		l.Register(Device{ID: i, Score: score})
	}
	for i := 0; i < 500; i++ {
		l.Credit(Result{Device: i, ReportedS: 3600 * (1 + 10*r.Float64())})
	}
	bias := l.AccountingBias()
	if bias < 3 || bias > 5.5 {
		t.Fatalf("bias = %v, want ≈ 4", bias)
	}
}

func TestPowerTrend(t *testing.T) {
	l := NewLedger()
	// Devices joining later are faster: +2 score/week plus noise.
	r := rng.New(3)
	for i := 0; i < 200; i++ {
		week := float64(i % 50)
		l.Register(Device{
			ID:       i,
			Score:    60 + 2*week + r.Normal(0, 3),
			JoinedAt: week * 7 * 86400,
		})
	}
	perWeek, fit, ok := l.PowerTrend()
	if !ok {
		t.Fatal("trend not computed")
	}
	if perWeek < 1.5 || perWeek > 2.5 {
		t.Fatalf("trend %v score/week, want ≈ 2", perWeek)
	}
	if fit.R2 < 0.9 {
		t.Fatalf("R² = %v", fit.R2)
	}
}

func TestPowerTrendDegenerate(t *testing.T) {
	l := NewLedger()
	if _, _, ok := l.PowerTrend(); ok {
		t.Fatal("empty ledger should have no trend")
	}
	l.Register(Device{ID: 1, Score: 100})
	l.Register(Device{ID: 2, Score: 120})
	// Same join time: no trend computable.
	if _, _, ok := l.PowerTrend(); ok {
		t.Fatal("same-join-time fleet should have no trend")
	}
}

// mapLedger is the pre-dense reference implementation: the ledger exactly
// as it was when backed by map[int] lookups. The equivalence test feeds it
// and the dense Ledger the same traffic and demands bit-identical output.
type mapLedger struct {
	devices   map[int]Device
	points    map[int]float64
	weekly    map[int]float64
	total     float64
	reportedS float64
}

func newMapLedger() *mapLedger {
	return &mapLedger{
		devices: make(map[int]Device),
		points:  make(map[int]float64),
		weekly:  make(map[int]float64),
	}
}

func (l *mapLedger) register(d Device) { l.devices[d.ID] = d }

func (l *mapLedger) credit(r Result) float64 {
	d := l.devices[r.Device]
	pts := r.ReportedS * d.Weight() * PointsPerSecond
	l.points[r.Device] += pts
	l.total += pts
	l.reportedS += r.ReportedS
	l.weekly[int(r.At/(7*86400))] += pts
	return pts
}

func (l *mapLedger) accountingBias() float64 { return l.reportedS * PointsPerSecond / l.total }

func (l *mapLedger) powerTrend() (float64, stats.LinearFit, bool) {
	if len(l.devices) < 2 {
		return 0, stats.LinearFit{}, false
	}
	ids := make([]int, 0, len(l.devices))
	for id := range l.devices {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	xs := make([]float64, 0, len(l.devices))
	ys := make([]float64, 0, len(l.devices))
	for _, id := range ids {
		d := l.devices[id]
		xs = append(xs, d.JoinedAt/(7*86400))
		ys = append(ys, d.Score)
	}
	allSame := true
	for _, x := range xs[1:] {
		if x != xs[0] {
			allSame = false
			break
		}
	}
	if allSame {
		return 0, stats.LinearFit{}, false
	}
	fit := stats.FitLine(xs, ys)
	return fit.A, fit, true
}

// TestDenseLedgerMatchesMapReference is the byte-determinism regression
// for the dense data plane: on randomized fleets and result streams, every
// ledger output must be bit-for-bit identical (math.Float64bits, not
// epsilon) to the pre-change map-backed implementation.
func TestDenseLedgerMatchesMapReference(t *testing.T) {
	same := func(name string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s diverged: dense %v (%x) vs map %v (%x)",
				name, a, math.Float64bits(a), b, math.Float64bits(b))
		}
	}
	for trial := 0; trial < 5; trial++ {
		r := rng.New(uint64(100 + trial))
		dense := NewLedger()
		ref := newMapLedger()
		nDev := 50 + r.Intn(200)
		for id := 0; id < nDev; id++ {
			d := Device{
				ID:       id,
				Score:    ReferenceScore * (0.2 + r.Float64()),
				JoinedAt: r.Float64() * 30 * 7 * 86400,
			}
			dense.Register(d)
			ref.register(d)
		}
		maxWeek := 0
		for i := 0; i < 5000; i++ {
			res := Result{
				Device:    r.Intn(nDev),
				ReportedS: r.Float64() * 1e5,
				At:        r.Float64() * 40 * 7 * 86400,
			}
			if w := int(res.At / (7 * 86400)); w > maxWeek {
				maxWeek = w
			}
			got, err := dense.Credit(res)
			if err != nil {
				t.Fatal(err)
			}
			same("per-result points", got, ref.credit(res))
		}
		same("total", dense.Total(), ref.total)
		same("accounting bias", dense.AccountingBias(), ref.accountingBias())
		for id := 0; id < nDev; id++ {
			same("device points", dense.DevicePoints(id), ref.points[id])
		}
		ws := dense.WeeklySeries(maxWeek + 1)
		for i, w := range ws.X {
			same("weekly", ws.Y[i], ref.weekly[int(w)])
		}
		dTrend, dFit, dOK := dense.PowerTrend()
		mTrend, mFit, mOK := ref.powerTrend()
		if dOK != mOK {
			t.Fatalf("trend availability diverged: %v vs %v", dOK, mOK)
		}
		same("trend", dTrend, mTrend)
		same("trend R2", dFit.R2, mFit.R2)
		same("trend intercept", dFit.B, mFit.B)
	}
}

func TestLedgerReset(t *testing.T) {
	run := func(l *Ledger) (float64, float64, float64) {
		l.Register(Device{ID: 0, Score: 80, JoinedAt: 0})
		l.Register(Device{ID: 1, Score: 120, JoinedAt: 7 * 86400})
		l.Register(Device{ID: 2, Score: 140, JoinedAt: 14 * 86400})
		for i := 0; i < 300; i++ {
			if _, err := l.Credit(Result{Device: i % 3, ReportedS: float64(1000 + i), At: float64(i) * 86400}); err != nil {
				t.Fatal(err)
			}
		}
		return l.Total(), l.DevicePoints(1), l.AccountingBias()
	}
	fresh := NewLedger()
	wantT, wantP, wantB := run(fresh)

	reused := NewLedger()
	reused.Register(Device{ID: 7, Score: 50})
	reused.Credit(Result{Device: 7, ReportedS: 12345, At: 3e6})
	reused.Reset()
	if reused.Total() != 0 || reused.DevicePoints(7) != 0 {
		t.Fatalf("reset ledger kept points: total=%v", reused.Total())
	}
	if _, err := reused.Credit(Result{Device: 7, ReportedS: 1}); err == nil {
		t.Fatal("reset ledger kept device registrations")
	}
	gotT, gotP, gotB := run(reused)
	if math.Float64bits(gotT) != math.Float64bits(wantT) ||
		math.Float64bits(gotP) != math.Float64bits(wantP) ||
		math.Float64bits(gotB) != math.Float64bits(wantB) {
		t.Fatalf("reused ledger diverged: %v/%v %v/%v %v/%v", gotT, wantT, gotP, wantP, gotB, wantB)
	}
}

func TestLedgerRejectsBadResults(t *testing.T) {
	l := NewLedger()
	l.Register(Device{ID: 3, Score: 100})
	if _, err := l.Credit(Result{Device: 3, ReportedS: 1, At: -1}); err == nil {
		t.Fatal("negative completion time accepted")
	}
	if _, err := l.Credit(Result{Device: -1, ReportedS: 1}); err == nil {
		t.Fatal("negative device ID accepted")
	}
	if _, err := l.Credit(Result{Device: 2, ReportedS: 1}); err == nil {
		t.Fatal("unregistered in-range device accepted")
	}
}

func BenchmarkCredit(b *testing.B) {
	l := NewLedger()
	l.Register(Device{ID: 1, Score: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Credit(Result{Device: 1, ReportedS: 3600, At: float64(i)})
	}
}
