package credit

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestWeight(t *testing.T) {
	d := Device{ID: 1, Score: 50}
	if d.Weight() != 0.5 {
		t.Fatalf("weight = %v", d.Weight())
	}
	ref := Device{ID: 2, Score: ReferenceScore}
	if ref.Weight() != 1 {
		t.Fatalf("reference weight = %v", ref.Weight())
	}
}

func TestWeightPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Device{ID: 1, Score: 0}.Weight()
}

func TestCreditGrants(t *testing.T) {
	l := NewLedger()
	l.Register(Device{ID: 1, Score: ReferenceScore})
	pts, err := l.Credit(Result{Device: 1, ReportedS: 3600})
	if err != nil {
		t.Fatal(err)
	}
	// One reference hour = one point.
	if math.Abs(pts-1) > 1e-12 {
		t.Fatalf("points = %v", pts)
	}
	if l.Total() != pts || l.DevicePoints(1) != pts {
		t.Fatal("ledger totals wrong")
	}
}

func TestCreditCancelsDeviceSpeed(t *testing.T) {
	// A half-speed device reporting twice the time earns the same points:
	// points measure delivered reference work.
	l := NewLedger()
	l.Register(Device{ID: 1, Score: ReferenceScore})
	l.Register(Device{ID: 2, Score: ReferenceScore / 2})
	fast, _ := l.Credit(Result{Device: 1, ReportedS: 3600})
	slow, _ := l.Credit(Result{Device: 2, ReportedS: 7200})
	if math.Abs(fast-slow) > 1e-12 {
		t.Fatalf("points differ: %v vs %v", fast, slow)
	}
}

func TestCreditErrors(t *testing.T) {
	l := NewLedger()
	if _, err := l.Credit(Result{Device: 9, ReportedS: 1}); err == nil {
		t.Fatal("unknown device accepted")
	}
	l.Register(Device{ID: 1, Score: 100})
	if _, err := l.Credit(Result{Device: 1, ReportedS: -1}); err == nil {
		t.Fatal("negative time accepted")
	}
}

func TestWeeklySeries(t *testing.T) {
	l := NewLedger()
	l.Register(Device{ID: 1, Score: 100})
	l.Credit(Result{Device: 1, ReportedS: 3600, At: 0})
	l.Credit(Result{Device: 1, ReportedS: 3600, At: 8 * 86400})
	s := l.WeeklySeries(2)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Y[0] != 1 || s.Y[1] != 1 || s.Y[2] != 0 {
		t.Fatalf("weekly = %v", s.Y)
	}
}

func TestPointsVFTPRoundTrip(t *testing.T) {
	// A reference processor computing full time for a week earns
	// 7·86400·PointsPerSecond points = exactly 1 points-VFTP.
	weekPts := 7 * 86400 * PointsPerSecond
	if got := PointsVFTP(weekPts); math.Abs(got-1) > 1e-12 {
		t.Fatalf("PointsVFTP = %v", got)
	}
	if got := RuntimeVFTP(7 * 86400); got != 1 {
		t.Fatalf("RuntimeVFTP = %v", got)
	}
}

func TestAccountingBias(t *testing.T) {
	// A fleet of half-speed devices: run-time VFTP counts their hours at
	// face value, points halve them — bias 2.
	l := NewLedger()
	l.Register(Device{ID: 1, Score: 50})
	l.Credit(Result{Device: 1, ReportedS: 3600})
	if got := l.AccountingBias(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("bias = %v", got)
	}
	empty := NewLedger()
	if !math.IsNaN(empty.AccountingBias()) {
		t.Fatal("empty ledger should be NaN")
	}
}

func TestAccountingBiasMatchesPaperIntuition(t *testing.T) {
	// §6: a WCG VFTP is ~4× weaker than the reference processor. If
	// devices' effective scores average 1/3.96 of the reference, the
	// run-time metric overstates delivered work by ≈ 3.96 — exactly the
	// paper's speed-down.
	l := NewLedger()
	r := rng.New(7)
	for i := 0; i < 500; i++ {
		score := ReferenceScore / 3.96 * (0.5 + r.Float64())
		l.Register(Device{ID: i, Score: score})
	}
	for i := 0; i < 500; i++ {
		l.Credit(Result{Device: i, ReportedS: 3600 * (1 + 10*r.Float64())})
	}
	bias := l.AccountingBias()
	if bias < 3 || bias > 5.5 {
		t.Fatalf("bias = %v, want ≈ 4", bias)
	}
}

func TestPowerTrend(t *testing.T) {
	l := NewLedger()
	// Devices joining later are faster: +2 score/week plus noise.
	r := rng.New(3)
	for i := 0; i < 200; i++ {
		week := float64(i % 50)
		l.Register(Device{
			ID:       i,
			Score:    60 + 2*week + r.Normal(0, 3),
			JoinedAt: week * 7 * 86400,
		})
	}
	perWeek, fit, ok := l.PowerTrend()
	if !ok {
		t.Fatal("trend not computed")
	}
	if perWeek < 1.5 || perWeek > 2.5 {
		t.Fatalf("trend %v score/week, want ≈ 2", perWeek)
	}
	if fit.R2 < 0.9 {
		t.Fatalf("R² = %v", fit.R2)
	}
}

func TestPowerTrendDegenerate(t *testing.T) {
	l := NewLedger()
	if _, _, ok := l.PowerTrend(); ok {
		t.Fatal("empty ledger should have no trend")
	}
	l.Register(Device{ID: 1, Score: 100})
	l.Register(Device{ID: 2, Score: 120})
	// Same join time: no trend computable.
	if _, _, ok := l.PowerTrend(); ok {
		t.Fatal("same-join-time fleet should have no trend")
	}
}

func BenchmarkCredit(b *testing.B) {
	l := NewLedger()
	l.Register(Device{ID: 1, Score: 100})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Credit(Result{Device: 1, ReportedS: 3600, At: float64(i)})
	}
}
