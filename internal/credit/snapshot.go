package credit

import "repro/internal/snapshot"

// LedgerSnapshot captures a Ledger's dense accounting arrays and counters
// so a run context can be rewound to an event boundary (see the snapshot
// package doc for the slice rule). In the campaign the ledger is only
// written during the run's finish phase, so the capture at a mid-run
// divergence point is cheap — but the restore is what guarantees a forked
// suffix re-credits from a clean slate.
type LedgerSnapshot struct {
	devices          snapshot.Slice[Device]
	points           snapshot.Slice[float64]
	weekly           snapshot.Slice[float64]
	n                int
	total, reportedS float64
}

// Capture records l's complete state.
func (s *LedgerSnapshot) Capture(l *Ledger) {
	s.devices.Capture(l.devices)
	s.points.Capture(l.points)
	s.weekly.Capture(l.weekly)
	s.n = l.n
	s.total, s.reportedS = l.total, l.reportedS
}

// Restore rewinds l to the captured state.
func (s *LedgerSnapshot) Restore(l *Ledger) {
	l.devices = s.devices.Restore()
	l.points = s.points.Restore()
	l.weekly = s.weekly.Restore()
	l.n = s.n
	l.total, l.reportedS = s.total, s.reportedS
}
