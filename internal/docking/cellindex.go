package docking

import (
	"math"
	"runtime"
	"sync"

	"repro/internal/protein"
)

// CellIndex is a spatial hash of the receptor's beads with cell edge equal
// to the interaction cutoff: any ligand bead interacts only with receptor
// beads in its own and the 26 neighbouring cells. For large proteins this
// turns the O(n·m) energy evaluation into O(m · density), the standard
// cell-list optimization of particle codes.
//
// The index is immutable after construction and safe for concurrent use —
// one index per receptor is shared by all workers of a parallel energy map.
type CellIndex struct {
	receptor *protein.Protein
	cell     float64
	origin   Vec3
	dims     [3]int
	// beads of each cell, flattened; cellStart[i]..cellStart[i+1] indexes
	// beadIdx.
	cellStart []int32
	beadIdx   []int32
}

// NewCellIndex builds the index for a receptor.
func NewCellIndex(receptor *protein.Protein) *CellIndex {
	const cell = Cutoff
	lo := Vec3{X: math.Inf(1), Y: math.Inf(1), Z: math.Inf(1)}
	hi := Vec3{X: math.Inf(-1), Y: math.Inf(-1), Z: math.Inf(-1)}
	for i := range receptor.Beads {
		p := receptor.Beads[i].Pos
		lo.X, lo.Y, lo.Z = math.Min(lo.X, p.X), math.Min(lo.Y, p.Y), math.Min(lo.Z, p.Z)
		hi.X, hi.Y, hi.Z = math.Max(hi.X, p.X), math.Max(hi.Y, p.Y), math.Max(hi.Z, p.Z)
	}
	ci := &CellIndex{receptor: receptor, cell: cell, origin: lo}
	for d, span := range [3]float64{hi.X - lo.X, hi.Y - lo.Y, hi.Z - lo.Z} {
		n := int(span/cell) + 1
		if n < 1 {
			n = 1
		}
		ci.dims[d] = n
	}
	nCells := ci.dims[0] * ci.dims[1] * ci.dims[2]
	counts := make([]int32, nCells+1)
	cellOf := make([]int32, len(receptor.Beads))
	for i := range receptor.Beads {
		c := ci.cellAt(receptor.Beads[i].Pos)
		cellOf[i] = c
		counts[c+1]++
	}
	for i := 1; i <= nCells; i++ {
		counts[i] += counts[i-1]
	}
	ci.cellStart = counts
	ci.beadIdx = make([]int32, len(receptor.Beads))
	fill := make([]int32, nCells)
	for i := range receptor.Beads {
		c := cellOf[i]
		ci.beadIdx[ci.cellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}
	return ci
}

// cellAt maps a position inside the bounding box to its cell id; positions
// outside are clamped to the border cells (they can still interact with
// beads near the boundary).
func (ci *CellIndex) cellAt(p Vec3) int32 {
	ix := clampInt(int((p.X-ci.origin.X)/ci.cell), 0, ci.dims[0]-1)
	iy := clampInt(int((p.Y-ci.origin.Y)/ci.cell), 0, ci.dims[1]-1)
	iz := clampInt(int((p.Z-ci.origin.Z)/ci.cell), 0, ci.dims[2]-1)
	return int32((ix*ci.dims[1]+iy)*ci.dims[2] + iz)
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InteractionEnergy computes the same energy as the brute-force
// docking.InteractionEnergy, visiting only receptor beads within one cell
// of each ligand bead.
func (ci *CellIndex) InteractionEnergy(ligand *protein.Protein, pose Pose) Energy {
	rot := protein.EulerZYZ(pose.Alpha, pose.Beta, pose.Gamma)
	var e Energy
	const cutoff2 = Cutoff * Cutoff
	beads := ci.receptor.Beads
	for li := range ligand.Beads {
		lb := &ligand.Beads[li]
		lpos := rot.Apply(lb.Pos).Add(pose.Pos)
		// Cell coordinates of the ligand bead (unclamped for the scan
		// bounds, so beads far outside the box interact with nothing or
		// only the border shell, exactly as the cutoff dictates).
		cx := int(math.Floor((lpos.X - ci.origin.X) / ci.cell))
		cy := int(math.Floor((lpos.Y - ci.origin.Y) / ci.cell))
		cz := int(math.Floor((lpos.Z - ci.origin.Z) / ci.cell))
		x0, x1 := clampInt(cx-1, 0, ci.dims[0]-1), clampInt(cx+1, 0, ci.dims[0]-1)
		y0, y1 := clampInt(cy-1, 0, ci.dims[1]-1), clampInt(cy+1, 0, ci.dims[1]-1)
		z0, z1 := clampInt(cz-1, 0, ci.dims[2]-1), clampInt(cz+1, 0, ci.dims[2]-1)
		if cx+1 < 0 || cx-1 >= ci.dims[0] ||
			cy+1 < 0 || cy-1 >= ci.dims[1] ||
			cz+1 < 0 || cz-1 >= ci.dims[2] {
			continue // no receptor cell within the cutoff shell
		}
		for x := x0; x <= x1; x++ {
			for y := y0; y <= y1; y++ {
				base := (x*ci.dims[1] + y) * ci.dims[2]
				for z := z0; z <= z1; z++ {
					c := base + z
					for _, ri := range ci.beadIdx[ci.cellStart[c]:ci.cellStart[c+1]] {
						rb := &beads[ri]
						d := lpos.Sub(rb.Pos)
						r2 := d.Norm2()
						if r2 > cutoff2 {
							continue
						}
						if r2 < 1e-6 {
							r2 = 1e-6
						}
						sigma := lb.Radius + rb.Radius
						s2 := sigma * sigma / r2
						s6 := s2 * s2 * s2
						e.LJ += 4 * LJEpsilon * (s6*s6 - s6)
						r := math.Sqrt(r2)
						e.Elec += CoulombK * lb.Charge * rb.Charge / (DielectricScale * r * r)
					}
				}
			}
		}
	}
	return e
}

// EnergyMapParallel computes the full interaction map of a couple using
// nWorkers goroutines (0 = GOMAXPROCS), splitting the starting positions
// across workers. Results are identical to EnergyMap and returned in the
// same (isep, irot) order: the map is embarrassingly parallel, which is
// precisely why the application fits a desktop grid (§4.1).
func EnergyMapParallel(receptor, ligand *protein.Protein, params MinimizeParams, nWorkers int) []Result {
	if nWorkers <= 0 {
		nWorkers = runtime.GOMAXPROCS(0)
	}
	nsep := receptor.Nsep
	out := make([]Result, nsep*protein.NRotWorkunit)
	var next int64
	var mu sync.Mutex
	take := func() int {
		mu.Lock()
		defer mu.Unlock()
		if next >= int64(nsep) {
			return -1
		}
		next++
		return int(next) // 1-based isep
	}
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				isep := take()
				if isep < 0 {
					return
				}
				base := (isep - 1) * protein.NRotWorkunit
				for irot := 1; irot <= protein.NRotWorkunit; irot++ {
					out[base+irot-1] = Dock(receptor, ligand, isep, irot, params)
				}
			}
		}()
	}
	wg.Wait()
	return out
}
