package docking

import (
	"math"
	"testing"

	"repro/internal/protein"
	"repro/internal/rng"
)

func TestCellIndexMatchesBruteForce(t *testing.T) {
	ds := protein.HCMD168()
	// Use the largest protein (worst case for brute force, best for cells).
	rec := ds.Proteins[0]
	for _, p := range ds.Proteins {
		if p.NumBeads() > rec.NumBeads() {
			rec = p
		}
	}
	lig := ds.Proteins[1]
	ci := NewCellIndex(rec)
	r := rng.New(42)
	for trial := 0; trial < 200; trial++ {
		pose := Pose{
			Pos: Vec3{
				X: r.Normal(0, rec.Radius),
				Y: r.Normal(0, rec.Radius),
				Z: r.Normal(0, rec.Radius),
			},
			Alpha: r.Float64() * 2 * math.Pi,
			Beta:  r.Float64() * math.Pi,
			Gamma: r.Float64() * 2 * math.Pi,
		}
		want := InteractionEnergy(rec, lig, pose)
		got := ci.InteractionEnergy(lig, pose)
		tol := 1e-9 * (1 + math.Abs(want.LJ) + math.Abs(want.Elec))
		if math.Abs(got.LJ-want.LJ) > tol || math.Abs(got.Elec-want.Elec) > tol {
			t.Fatalf("trial %d: cell %+v vs brute %+v", trial, got, want)
		}
	}
}

func TestCellIndexFarLigand(t *testing.T) {
	ds := protein.Generate(2, 9)
	rec, lig := ds.Proteins[0], ds.Proteins[1]
	ci := NewCellIndex(rec)
	// Far outside the box: zero energy, and the shell skip must trigger.
	e := ci.InteractionEnergy(lig, Pose{Pos: Vec3{X: 1e5}})
	if e.LJ != 0 || e.Elec != 0 {
		t.Fatalf("distant ligand should not interact: %+v", e)
	}
}

func TestCellIndexNearBoundary(t *testing.T) {
	// Ligand hovering just outside the receptor bounding box must still
	// interact with boundary beads (the clamped border-cell scan).
	ds := protein.Generate(2, 11)
	rec, lig := ds.Proteins[0], ds.Proteins[1]
	ci := NewCellIndex(rec)
	pose := Pose{Pos: Vec3{X: rec.Radius + 5}}
	want := InteractionEnergy(rec, lig, pose)
	got := ci.InteractionEnergy(lig, pose)
	if math.Abs(got.Total()-want.Total()) > 1e-9*(1+math.Abs(want.Total())) {
		t.Fatalf("boundary energy differs: %v vs %v", got.Total(), want.Total())
	}
	if want.LJ == 0 && want.Elec == 0 {
		t.Fatal("test pose should actually interact")
	}
}

func TestCellIndexSingleBeadProtein(t *testing.T) {
	// Degenerate geometry: one bead, 1×1×1 grid.
	p := &protein.Protein{ID: 0, Name: "ONE", Beads: []protein.Bead{{Radius: 2, Charge: 0.1}}, Radius: 0, Nsep: 1}
	q := &protein.Protein{ID: 1, Name: "TWO", Beads: []protein.Bead{{Radius: 2, Charge: -0.1}}, Radius: 0, Nsep: 1}
	ci := NewCellIndex(p)
	pose := Pose{Pos: Vec3{X: 5}}
	want := InteractionEnergy(p, q, pose)
	got := ci.InteractionEnergy(q, pose)
	if math.Abs(got.Total()-want.Total()) > 1e-12 {
		t.Fatalf("single-bead energy differs: %v vs %v", got, want)
	}
}

func TestEnergyMapParallelMatchesSequential(t *testing.T) {
	ds := protein.Generate(2, 33)
	rec, lig := ds.Proteins[0], ds.Proteins[1]
	rec.Nsep = 6
	params := MinimizeParams{MaxIter: 3, GammaSub: 1}
	seq := EnergyMap(rec, lig, params)
	for _, workers := range []int{1, 2, 4, 0} {
		par := EnergyMapParallel(rec, lig, params, workers)
		if len(par) != len(seq) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(par), len(seq))
		}
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: result %d differs", workers, i)
			}
		}
	}
}

func BenchmarkEnergyBruteForce(b *testing.B) {
	ds := protein.HCMD168()
	rec := ds.Proteins[0]
	for _, p := range ds.Proteins {
		if p.NumBeads() > rec.NumBeads() {
			rec = p
		}
	}
	lig := ds.Proteins[1]
	pose := Pose{Pos: Vec3{X: rec.Radius}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = InteractionEnergy(rec, lig, pose)
	}
}

func BenchmarkEnergyCellIndex(b *testing.B) {
	ds := protein.HCMD168()
	rec := ds.Proteins[0]
	for _, p := range ds.Proteins {
		if p.NumBeads() > rec.NumBeads() {
			rec = p
		}
	}
	lig := ds.Proteins[1]
	ci := NewCellIndex(rec)
	pose := Pose{Pos: Vec3{X: rec.Radius}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ci.InteractionEnergy(lig, pose)
	}
}

func BenchmarkEnergyMapParallel(b *testing.B) {
	ds := protein.Generate(2, 3)
	rec, lig := ds.Proteins[0], ds.Proteins[1]
	rec.Nsep = 8
	params := MinimizeParams{MaxIter: 4, GammaSub: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = EnergyMapParallel(rec, lig, params, 0)
	}
}
