// Package docking implements the MAXDo kernel: systematic rigid-body
// cross-docking of a mobile protein (the ligand) against a fixed protein
// (the receptor) in the reduced protein model.
//
// Following §2.1 of the paper, the quality of a protein-protein interaction
// is an interaction energy in kcal/mol, the sum of a Lennard-Jones term
// (Elj) and an electrostatic term (Eelec). The docking search minimizes this
// energy over the six rigid-body degrees of freedom of the ligand — the
// position (x, y, z) of its mass center and its orientation (α, β, γ) —
// from a regular grid of starting configurations indexed by
//
//	isep ∈ [1, Nsep(receptor)] — starting position on the receptor surface
//	irot ∈ [1, 21]            — starting (α, β) couple, each explored for
//	                            10 values of γ (so 210 orientations total)
//
// The kernel is reproducible (property 1 of §4.1), linear in the number of
// orientations at fixed isep (property 2 / Figure 3a), and linear in the
// number of starting positions at fixed irot (property 3 / Figure 3b).
// It checkpoints between starting positions, exactly like the production
// MAXDo port on World Community Grid (§4.3).
package docking

import (
	"fmt"
	"math"

	"repro/internal/protein"
)

// Physical constants of the reduced interaction model.
const (
	// CoulombK is the electrostatic constant in kcal·Å/(mol·e²).
	CoulombK = 332.0637
	// DielectricScale is the distance-dependent dielectric factor ε(r)=Dr.
	DielectricScale = 2.0
	// LJEpsilon is the well depth of the Lennard-Jones term, kcal/mol.
	LJEpsilon = 0.20
	// Clearance is the probe clearance added to the receptor radius when
	// placing ligand starting positions, Å.
	Clearance = 3.0
	// CutoffFactor bounds the pair interaction radius relative to bead
	// contact distance; pairs beyond it contribute negligibly.
	Cutoff = 24.0 // Å
)

// Energy holds the two contributions of the interaction energy (kcal/mol).
type Energy struct {
	LJ   float64 // Lennard-Jones term
	Elec float64 // electrostatic term
}

// Total returns Elj + Eelec; the more negative, the stronger the
// interaction (§2.1).
func (e Energy) Total() float64 { return e.LJ + e.Elec }

// Pose is a rigid-body placement of the ligand relative to the receptor
// body frame.
type Pose struct {
	Pos                Vec3    // ligand mass-center position, Å
	Alpha, Beta, Gamma float64 // ZYZ Euler angles, radians
}

// Vec3 aliases the protein geometry type so callers need only one import.
type Vec3 = protein.Vec3

// InteractionEnergy computes the reduced-model interaction energy between
// the receptor (fixed, body frame) and the ligand placed at pose.
func InteractionEnergy(receptor, ligand *protein.Protein, pose Pose) Energy {
	rot := protein.EulerZYZ(pose.Alpha, pose.Beta, pose.Gamma)
	var e Energy
	const cutoff2 = Cutoff * Cutoff
	for li := range ligand.Beads {
		lb := &ligand.Beads[li]
		lpos := rot.Apply(lb.Pos).Add(pose.Pos)
		for ri := range receptor.Beads {
			rb := &receptor.Beads[ri]
			d := lpos.Sub(rb.Pos)
			r2 := d.Norm2()
			if r2 > cutoff2 {
				continue
			}
			if r2 < 1e-6 {
				r2 = 1e-6 // avoid the singularity for overlapping beads
			}
			sigma := lb.Radius + rb.Radius
			s2 := sigma * sigma / r2
			s6 := s2 * s2 * s2
			e.LJ += 4 * LJEpsilon * (s6*s6 - s6)
			r := math.Sqrt(r2)
			e.Elec += CoulombK * lb.Charge * rb.Charge / (DielectricScale * r * r)
		}
	}
	return e
}

// OrientationGrid returns the (α, β) couple for irot ∈ [1, 21] and the γ
// value for igamma ∈ [1, 10]. The 21 (α, β) couples tile the orientation
// sphere by the golden-spiral construction; γ spans [0, 2π).
func OrientationGrid(irot, igamma int) (alpha, beta, gamma float64) {
	if irot < 1 || irot > protein.NRotWorkunit {
		panic(fmt.Sprintf("docking: irot %d out of range [1,%d]", irot, protein.NRotWorkunit))
	}
	if igamma < 1 || igamma > protein.NGamma {
		panic(fmt.Sprintf("docking: igamma %d out of range [1,%d]", igamma, protein.NGamma))
	}
	dir := protein.FibonacciSphere(protein.NRotWorkunit)[irot-1]
	beta = math.Acos(clamp(dir.Z, -1, 1))
	alpha = math.Atan2(dir.Y, dir.X)
	gamma = 2 * math.Pi * float64(igamma-1) / float64(protein.NGamma)
	return alpha, beta, gamma
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Result is the outcome of minimizing the interaction energy from one
// starting configuration (isep, irot): the best pose over the 10 γ values
// and its energy terms. This is one output line of the MAXDo result file
// (§5.2).
type Result struct {
	ISep, IRot int
	Pose       Pose
	Energy     Energy
}

// MinimizeParams tunes the local energy minimization. The zero value is
// replaced by DefaultMinimize.
type MinimizeParams struct {
	MaxIter  int     // gradient-descent iterations per start
	Step     float64 // initial translation step, Å
	AngStep  float64 // initial rotation step, rad
	Shrink   float64 // step shrink factor on failed move
	MinStep  float64 // convergence threshold on the translation step, Å
	GammaSub int     // γ values explored per (isep, irot); default NGamma
}

// DefaultMinimize is the production parameter set: cheap but genuinely
// descends the energy landscape.
var DefaultMinimize = MinimizeParams{
	MaxIter:  60,
	Step:     1.5,
	AngStep:  0.15,
	Shrink:   0.6,
	MinStep:  0.05,
	GammaSub: protein.NGamma,
}

func (p MinimizeParams) withDefaults() MinimizeParams {
	d := DefaultMinimize
	if p.MaxIter > 0 {
		d.MaxIter = p.MaxIter
	}
	if p.Step > 0 {
		d.Step = p.Step
	}
	if p.AngStep > 0 {
		d.AngStep = p.AngStep
	}
	if p.Shrink > 0 && p.Shrink < 1 {
		d.Shrink = p.Shrink
	}
	if p.MinStep > 0 {
		d.MinStep = p.MinStep
	}
	if p.GammaSub > 0 && p.GammaSub <= protein.NGamma {
		d.GammaSub = p.GammaSub
	}
	return d
}

// Dock minimizes the interaction energy for one (isep, irot) starting
// configuration and returns the best result over the γ sweep. It is
// deterministic: identical inputs give identical outputs (§4.1 property 1).
func Dock(receptor, ligand *protein.Protein, isep, irot int, params MinimizeParams) Result {
	p := params.withDefaults()
	start := receptor.SeparationPoint(isep, ligand.Radius+Clearance)
	best := Result{ISep: isep, IRot: irot, Energy: Energy{LJ: math.Inf(1)}}
	bestTotal := math.Inf(1)
	for ig := 1; ig <= p.GammaSub; ig++ {
		alpha, beta, gamma := OrientationGrid(irot, ig)
		pose := Pose{Pos: start, Alpha: alpha, Beta: beta, Gamma: gamma}
		pose, e := minimize(receptor, ligand, pose, p)
		if tot := e.Total(); tot < bestTotal {
			bestTotal = tot
			best.Pose = pose
			best.Energy = e
		}
	}
	return best
}

// minimize performs a deterministic pattern-search descent over the six
// rigid-body degrees of freedom.
func minimize(receptor, ligand *protein.Protein, pose Pose, p MinimizeParams) (Pose, Energy) {
	e := InteractionEnergy(receptor, ligand, pose)
	step := p.Step
	ang := p.AngStep
	dirs := []Vec3{
		{X: 1}, {X: -1},
		{Y: 1}, {Y: -1},
		{Z: 1}, {Z: -1},
	}
	for iter := 0; iter < p.MaxIter && step > p.MinStep; iter++ {
		improved := false
		// Translation moves.
		for _, d := range dirs {
			cand := pose
			cand.Pos = pose.Pos.Add(d.Scale(step))
			ce := InteractionEnergy(receptor, ligand, cand)
			if ce.Total() < e.Total() {
				pose, e = cand, ce
				improved = true
			}
		}
		// Rotation moves.
		for _, da := range [...][3]float64{
			{ang, 0, 0}, {-ang, 0, 0},
			{0, ang, 0}, {0, -ang, 0},
			{0, 0, ang}, {0, 0, -ang},
		} {
			cand := pose
			cand.Alpha += da[0]
			cand.Beta += da[1]
			cand.Gamma += da[2]
			ce := InteractionEnergy(receptor, ligand, cand)
			if ce.Total() < e.Total() {
				pose, e = cand, ce
				improved = true
			}
		}
		if !improved {
			step *= p.Shrink
			ang *= p.Shrink
		}
	}
	return pose, e
}

// DockRange computes results for starting positions [isepLo, isepHi]
// (inclusive, 1-based) and rotations [1, nrot], the unit of work a workunit
// executes. The onCheckpoint callback, if non-nil, is invoked after each
// completed starting position with the index just finished — mirroring the
// production checkpointing of §4.3 ("the checkpoint occurs only between
// starting positions").
func DockRange(receptor, ligand *protein.Protein, isepLo, isepHi, nrot int, params MinimizeParams, onCheckpoint func(isepDone int)) []Result {
	if isepLo < 1 || isepHi > receptor.Nsep || isepLo > isepHi {
		panic(fmt.Sprintf("docking: isep range [%d,%d] invalid for receptor with Nsep=%d", isepLo, isepHi, receptor.Nsep))
	}
	if nrot < 1 || nrot > protein.NRotWorkunit {
		panic(fmt.Sprintf("docking: nrot %d out of range", nrot))
	}
	out := make([]Result, 0, (isepHi-isepLo+1)*nrot)
	for isep := isepLo; isep <= isepHi; isep++ {
		for irot := 1; irot <= nrot; irot++ {
			out = append(out, Dock(receptor, ligand, isep, irot, params))
		}
		if onCheckpoint != nil {
			onCheckpoint(isep)
		}
	}
	return out
}

// EnergyMap computes the full interaction map for a couple: every
// (isep, irot) result. This is what merging all workunits of a couple
// reconstructs (§5.2).
func EnergyMap(receptor, ligand *protein.Protein, params MinimizeParams) []Result {
	return DockRange(receptor, ligand, 1, receptor.Nsep, protein.NRotWorkunit, params, nil)
}
