package docking

import (
	"math"
	"testing"

	"repro/internal/protein"
	"repro/internal/stats"
)

// smallPair returns a small deterministic receptor/ligand pair for fast
// kernel tests. Nsep is shrunk so full maps stay cheap.
func smallPair(t testing.TB) (*protein.Protein, *protein.Protein) {
	t.Helper()
	d := protein.Generate(4, 1234)
	rec, lig := d.Proteins[0], d.Proteins[1]
	rec.Nsep = 12
	lig.Nsep = 10
	return rec, lig
}

// fastParams keeps minimization cheap in tests.
var fastParams = MinimizeParams{MaxIter: 8, GammaSub: 2}

func TestEnergyReproducible(t *testing.T) {
	rec, lig := smallPair(t)
	pose := Pose{Pos: Vec3{X: rec.Radius + lig.Radius + 2}}
	e1 := InteractionEnergy(rec, lig, pose)
	e2 := InteractionEnergy(rec, lig, pose)
	if e1 != e2 {
		t.Fatalf("energy not reproducible: %+v vs %+v", e1, e2)
	}
}

func TestEnergyFarApartIsZero(t *testing.T) {
	rec, lig := smallPair(t)
	pose := Pose{Pos: Vec3{X: 1e6}}
	e := InteractionEnergy(rec, lig, pose)
	if e.LJ != 0 || e.Elec != 0 {
		t.Fatalf("distant proteins should not interact: %+v", e)
	}
}

func TestEnergyOverlapRepulsive(t *testing.T) {
	rec, lig := smallPair(t)
	// Ligand centered on the receptor: massive LJ clash.
	e := InteractionEnergy(rec, lig, Pose{})
	if e.LJ <= 0 {
		t.Fatalf("overlapping proteins should have repulsive LJ, got %v", e.LJ)
	}
	if e.Total() <= 0 {
		t.Fatalf("overlap should be net unfavourable, got %v", e.Total())
	}
}

func TestEnergyContactAttractiveLJ(t *testing.T) {
	rec, lig := smallPair(t)
	// Near-contact separation: LJ should not be hugely repulsive, and for
	// some orientation it should dip negative (attraction well exists).
	found := false
	for sep := rec.Radius + lig.Radius; sep < rec.Radius+lig.Radius+8; sep += 0.5 {
		e := InteractionEnergy(rec, lig, Pose{Pos: Vec3{X: sep}})
		if e.LJ < 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no attractive LJ configuration found near contact")
	}
}

func TestEnergyAsymmetry(t *testing.T) {
	// §2.2: MAXDo is not symmetric — Etot(isep, irot, p1, p2) differs from
	// Etot(isep, irot, p2, p1) because the starting grid follows the
	// receptor.
	rec, lig := smallPair(t)
	a := Dock(rec, lig, 1, 1, fastParams)
	b := Dock(lig, rec, 1, 1, fastParams)
	if a.Energy == b.Energy {
		t.Fatal("swap of receptor/ligand should change the computation")
	}
}

func TestDockReproducible(t *testing.T) {
	rec, lig := smallPair(t)
	a := Dock(rec, lig, 3, 2, fastParams)
	b := Dock(rec, lig, 3, 2, fastParams)
	if a != b {
		t.Fatalf("Dock not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestDockImprovesOnStart(t *testing.T) {
	rec, lig := smallPair(t)
	isep, irot := 2, 1
	start := rec.SeparationPoint(isep, lig.Radius+Clearance)
	alpha, beta, gamma := OrientationGrid(irot, 1)
	e0 := InteractionEnergy(rec, lig, Pose{Pos: start, Alpha: alpha, Beta: beta, Gamma: gamma})
	res := Dock(rec, lig, isep, irot, MinimizeParams{MaxIter: 40, GammaSub: 1})
	if res.Energy.Total() > e0.Total()+1e-9 {
		t.Fatalf("minimization worsened energy: %v -> %v", e0.Total(), res.Energy.Total())
	}
}

func TestOrientationGrid(t *testing.T) {
	seen := make(map[[2]float64]bool)
	for irot := 1; irot <= protein.NRotWorkunit; irot++ {
		a, b, _ := OrientationGrid(irot, 1)
		key := [2]float64{a, b}
		if seen[key] {
			t.Fatalf("duplicate (alpha,beta) for irot=%d", irot)
		}
		seen[key] = true
		if b < 0 || b > math.Pi {
			t.Fatalf("beta out of range: %v", b)
		}
	}
	// γ spans [0, 2π).
	_, _, g1 := OrientationGrid(1, 1)
	_, _, g10 := OrientationGrid(1, 10)
	if g1 != 0 {
		t.Fatalf("first gamma = %v, want 0", g1)
	}
	if g10 >= 2*math.Pi || g10 <= 0 {
		t.Fatalf("last gamma = %v", g10)
	}
}

func TestOrientationGridPanics(t *testing.T) {
	for _, c := range [][2]int{{0, 1}, {22, 1}, {1, 0}, {1, 11}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for irot=%d igamma=%d", c[0], c[1])
				}
			}()
			OrientationGrid(c[0], c[1])
		}()
	}
}

func TestDockRangeShape(t *testing.T) {
	rec, lig := smallPair(t)
	var checkpoints []int
	res := DockRange(rec, lig, 2, 4, 3, fastParams, func(isep int) {
		checkpoints = append(checkpoints, isep)
	})
	if len(res) != 3*3 {
		t.Fatalf("got %d results, want 9", len(res))
	}
	// Ordered by (isep, irot).
	idx := 0
	for isep := 2; isep <= 4; isep++ {
		for irot := 1; irot <= 3; irot++ {
			if res[idx].ISep != isep || res[idx].IRot != irot {
				t.Fatalf("result %d is (%d,%d), want (%d,%d)", idx, res[idx].ISep, res[idx].IRot, isep, irot)
			}
			idx++
		}
	}
	if len(checkpoints) != 3 || checkpoints[0] != 2 || checkpoints[2] != 4 {
		t.Fatalf("checkpoints = %v", checkpoints)
	}
}

func TestDockRangePanics(t *testing.T) {
	rec, lig := smallPair(t)
	for _, c := range [][3]int{{0, 1, 1}, {1, rec.Nsep + 1, 1}, {3, 2, 1}, {1, 1, 0}, {1, 1, 22}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for range %v", c)
				}
			}()
			DockRange(rec, lig, c[0], c[1], c[2], fastParams, nil)
		}()
	}
}

// TestLinearityInNrot reproduces §4.1 property 2 / Figure 3(a): at fixed
// isep, compute effort is linear in the number of rotations. We measure
// work by counting energy evaluations via operation counts proxied through
// result counts — and verify wall-time linearity statistically.
func TestLinearityInNrot(t *testing.T) {
	rec, lig := smallPair(t)
	x := make([]float64, 0, 7)
	y := make([]float64, 0, 7)
	for nrot := 1; nrot <= protein.NRotWorkunit; nrot += 3 {
		res := DockRange(rec, lig, 1, 1, nrot, fastParams, nil)
		x = append(x, float64(nrot))
		y = append(y, float64(len(res)))
	}
	fit := stats.FitLine(x, y)
	if fit.R2 < 0.999 {
		t.Fatalf("result count not linear in nrot: R²=%v", fit.R2)
	}
}

// TestLinearityInNsep reproduces §4.1 property 3 / Figure 3(b).
func TestLinearityInNsep(t *testing.T) {
	rec, lig := smallPair(t)
	x := make([]float64, 0, 6)
	y := make([]float64, 0, 6)
	for nsep := 1; nsep <= 11; nsep += 2 {
		res := DockRange(rec, lig, 1, nsep, 2, fastParams, nil)
		x = append(x, float64(nsep))
		y = append(y, float64(len(res)))
	}
	fit := stats.FitLine(x, y)
	if fit.R2 < 0.999 {
		t.Fatalf("result count not linear in nsep: R²=%v", fit.R2)
	}
}

func TestEnergyMapComplete(t *testing.T) {
	d := protein.Generate(2, 77)
	rec, lig := d.Proteins[0], d.Proteins[1]
	rec.Nsep = 4
	res := EnergyMap(rec, lig, MinimizeParams{MaxIter: 2, GammaSub: 1})
	if len(res) != 4*protein.NRotWorkunit {
		t.Fatalf("map has %d entries, want %d", len(res), 4*protein.NRotWorkunit)
	}
}

func TestMinimizeParamsDefaults(t *testing.T) {
	p := MinimizeParams{}.withDefaults()
	if p != DefaultMinimize {
		t.Fatalf("zero params should default: %+v", p)
	}
	p = MinimizeParams{MaxIter: 5}.withDefaults()
	if p.MaxIter != 5 || p.Step != DefaultMinimize.Step {
		t.Fatalf("partial defaults wrong: %+v", p)
	}
	// Invalid values fall back to defaults.
	p = MinimizeParams{Shrink: 2, GammaSub: 99}.withDefaults()
	if p.Shrink != DefaultMinimize.Shrink || p.GammaSub != DefaultMinimize.GammaSub {
		t.Fatalf("invalid values not rejected: %+v", p)
	}
}

func BenchmarkInteractionEnergy(b *testing.B) {
	d := protein.Generate(2, 5)
	rec, lig := d.Proteins[0], d.Proteins[1]
	pose := Pose{Pos: Vec3{X: rec.Radius + lig.Radius}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = InteractionEnergy(rec, lig, pose)
	}
}

func BenchmarkDockOnePosition(b *testing.B) {
	d := protein.Generate(2, 5)
	rec, lig := d.Proteins[0], d.Proteins[1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Dock(rec, lig, 1, 1, MinimizeParams{MaxIter: 10, GammaSub: 2})
	}
}

// TestMinimizationFindsBinding checks the physical sanity of the kernel:
// with a real minimization budget, at least some starting configurations
// descend into an attractive well (negative total interaction energy) —
// what the docking search is for (§2.1).
func TestMinimizationFindsBinding(t *testing.T) {
	if testing.Short() {
		t.Skip("minimization sweep is slow")
	}
	ds := protein.Generate(2, 2024)
	rec, lig := ds.Proteins[0], ds.Proteins[1]
	rec.Nsep = 8
	params := MinimizeParams{MaxIter: 40, GammaSub: 3}
	best := math.Inf(1)
	for isep := 1; isep <= rec.Nsep; isep++ {
		res := Dock(rec, lig, isep, 1, params)
		if res.Energy.Total() < best {
			best = res.Energy.Total()
		}
	}
	if best >= 0 {
		t.Fatalf("no attractive pose found: best E = %v kcal/mol", best)
	}
}

// TestMinimizationMonotoneInBudget: more iterations never yield a worse
// best energy for the same start (pattern search only accepts improvements).
func TestMinimizationMonotoneInBudget(t *testing.T) {
	rec, lig := smallPair(t)
	prev := math.Inf(1)
	for _, iters := range []int{2, 8, 32} {
		res := Dock(rec, lig, 1, 1, MinimizeParams{MaxIter: iters, GammaSub: 1})
		e := res.Energy.Total()
		if e > prev+1e-9 {
			t.Fatalf("energy worsened with budget: %v -> %v at %d iters", prev, e, iters)
		}
		prev = e
	}
}
