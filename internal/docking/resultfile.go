package docking

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Result file format (§5.2): "a simple text file that contains on each line
// the coordinates of the ligand and its orientation, and then the
// interaction energy values". One line per (isep, irot):
//
//	isep irot x y z alpha beta gamma Elj Eelec
//
// The validation pipeline checks result files with three controls (§5.2):
// correct number of files, correct number of lines, and values within a
// valid range. Those checks live here too, next to the format they verify.

// WriteResults writes results in the MAXDo text format.
func WriteResults(w io.Writer, results []Result) error {
	bw := bufio.NewWriter(w)
	for _, r := range results {
		_, err := fmt.Fprintf(bw, "%d %d %.4f %.4f %.4f %.6f %.6f %.6f %.6f %.6f\n",
			r.ISep, r.IRot,
			r.Pose.Pos.X, r.Pose.Pos.Y, r.Pose.Pos.Z,
			r.Pose.Alpha, r.Pose.Beta, r.Pose.Gamma,
			r.Energy.LJ, r.Energy.Elec)
		if err != nil {
			return fmt.Errorf("docking: writing result line: %w", err)
		}
	}
	return bw.Flush()
}

// ParseResults reads a MAXDo result file.
func ParseResults(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 10 {
			return nil, fmt.Errorf("docking: line %d has %d fields, want 10", lineNo, len(fields))
		}
		var res Result
		var err error
		if res.ISep, err = strconv.Atoi(fields[0]); err != nil {
			return nil, fmt.Errorf("docking: line %d isep: %w", lineNo, err)
		}
		if res.IRot, err = strconv.Atoi(fields[1]); err != nil {
			return nil, fmt.Errorf("docking: line %d irot: %w", lineNo, err)
		}
		vals := make([]float64, 8)
		for i := 0; i < 8; i++ {
			if vals[i], err = strconv.ParseFloat(fields[2+i], 64); err != nil {
				return nil, fmt.Errorf("docking: line %d field %d: %w", lineNo, 3+i, err)
			}
		}
		res.Pose.Pos = Vec3{X: vals[0], Y: vals[1], Z: vals[2]}
		res.Pose.Alpha, res.Pose.Beta, res.Pose.Gamma = vals[3], vals[4], vals[5]
		res.Energy.LJ, res.Energy.Elec = vals[6], vals[7]
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("docking: reading results: %w", err)
	}
	return out, nil
}

// ValidRange bounds the plausible values of a result line; results outside
// it are rejected by the §5.2 range check. The bounds are generous: they
// exist to catch corrupted or fabricated results, not marginal science.
type ValidRange struct {
	MaxAbsCoord  float64 // |x|,|y|,|z| bound, Å
	MaxAbsEnergy float64 // |Elj|,|Eelec| bound, kcal/mol
}

// DefaultValidRange is the production validation envelope.
var DefaultValidRange = ValidRange{MaxAbsCoord: 500, MaxAbsEnergy: 1e6}

// CheckLine validates one result against the range check.
func (v ValidRange) CheckLine(r Result) error {
	if r.ISep < 1 || r.IRot < 1 {
		return fmt.Errorf("docking: non-positive indices (%d, %d)", r.ISep, r.IRot)
	}
	for _, c := range []float64{r.Pose.Pos.X, r.Pose.Pos.Y, r.Pose.Pos.Z} {
		if c != c || c < -v.MaxAbsCoord || c > v.MaxAbsCoord {
			return fmt.Errorf("docking: coordinate %v out of range ±%v", c, v.MaxAbsCoord)
		}
	}
	for _, e := range []float64{r.Energy.LJ, r.Energy.Elec} {
		if e != e || e < -v.MaxAbsEnergy || e > v.MaxAbsEnergy {
			return fmt.Errorf("docking: energy %v out of range ±%v", e, v.MaxAbsEnergy)
		}
	}
	return nil
}

// CheckResults applies the §5.2 validation to a parsed result set:
// the expected line count and the per-line range check.
func (v ValidRange) CheckResults(results []Result, wantLines int) error {
	if len(results) != wantLines {
		return fmt.Errorf("docking: %d result lines, want %d", len(results), wantLines)
	}
	for i, r := range results {
		if err := v.CheckLine(r); err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return nil
}

// MergeResults concatenates per-workunit result sets of one couple into a
// single map ordered by (isep, irot), detecting duplicates and gaps — the
// merge step of §5.2 ("we merged result files in order to have one result
// file for one couple of proteins"). wantNsep and nrot define completeness.
func MergeResults(parts [][]Result, wantNsep, nrot int) ([]Result, error) {
	type key struct{ isep, irot int }
	seen := make(map[key]Result, wantNsep*nrot)
	for _, part := range parts {
		for _, r := range part {
			k := key{r.ISep, r.IRot}
			if _, dup := seen[k]; dup {
				return nil, fmt.Errorf("docking: duplicate result for (isep=%d, irot=%d)", r.ISep, r.IRot)
			}
			seen[k] = r
		}
	}
	out := make([]Result, 0, wantNsep*nrot)
	for isep := 1; isep <= wantNsep; isep++ {
		for irot := 1; irot <= nrot; irot++ {
			r, ok := seen[key{isep, irot}]
			if !ok {
				return nil, fmt.Errorf("docking: missing result for (isep=%d, irot=%d)", isep, irot)
			}
			out = append(out, r)
		}
	}
	if len(seen) != wantNsep*nrot {
		return nil, fmt.Errorf("docking: %d results beyond the expected grid", len(seen)-wantNsep*nrot)
	}
	return out, nil
}
