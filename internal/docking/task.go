package docking

import (
	"encoding/json"
	"fmt"

	"repro/internal/protein"
)

// Task is a resumable docking computation over a contiguous range of
// starting positions, the exact unit shipped to a volunteer device.
//
// The production MAXDo port checkpoints only between starting positions
// (§4.3): if the volunteer kills the process mid-position, work on that
// position is lost and restarts from the last completed one. Task models
// that contract: Checkpoint captures completed positions only, and Resume
// restarts from the first incomplete position.
type Task struct {
	Receptor, Ligand *protein.Protein
	ISepLo, ISepHi   int // inclusive, 1-based
	NRot             int
	Params           MinimizeParams

	nextISep int // first position not yet completed
	results  []Result
}

// NewTask creates a task covering starting positions [lo, hi].
func NewTask(receptor, ligand *protein.Protein, lo, hi, nrot int, params MinimizeParams) *Task {
	if lo < 1 || hi > receptor.Nsep || lo > hi {
		panic(fmt.Sprintf("docking: task range [%d,%d] invalid for Nsep=%d", lo, hi, receptor.Nsep))
	}
	return &Task{
		Receptor: receptor, Ligand: ligand,
		ISepLo: lo, ISepHi: hi, NRot: nrot,
		Params:   params,
		nextISep: lo,
	}
}

// Done reports whether every starting position has been computed.
func (t *Task) Done() bool { return t.nextISep > t.ISepHi }

// Progress returns the fraction of starting positions completed, in [0, 1].
func (t *Task) Progress() float64 {
	total := t.ISepHi - t.ISepLo + 1
	return float64(t.nextISep-t.ISepLo) / float64(total)
}

// Step computes one starting position (all rotations) and advances the
// checkpoint frontier. It returns false if the task was already done.
func (t *Task) Step() bool {
	if t.Done() {
		return false
	}
	for irot := 1; irot <= t.NRot; irot++ {
		t.results = append(t.results, Dock(t.Receptor, t.Ligand, t.nextISep, irot, t.Params))
	}
	t.nextISep++
	return true
}

// RunN executes up to n starting positions and reports how many were done.
func (t *Task) RunN(n int) int {
	done := 0
	for done < n && t.Step() {
		done++
	}
	return done
}

// Run executes the task to completion and returns all results.
func (t *Task) Run() []Result {
	for t.Step() {
	}
	return t.Results()
}

// Results returns the results computed so far, in (isep, irot) order.
func (t *Task) Results() []Result { return t.results }

// Abort simulates the volunteer killing the process mid-position: any work
// beyond the last completed starting position is discarded (it was never
// there — Step is atomic per position — so Abort is a no-op on state, but it
// documents the contract and is used by the agent model).
func (t *Task) Abort() {}

// Checkpoint is the serializable resume state of a Task.
type Checkpoint struct {
	ReceptorID int      `json:"receptor"`
	LigandID   int      `json:"ligand"`
	ISepLo     int      `json:"isep_lo"`
	ISepHi     int      `json:"isep_hi"`
	NRot       int      `json:"nrot"`
	NextISep   int      `json:"next_isep"`
	Results    []Result `json:"results"`
}

// Checkpoint captures the current resume state (completed positions only).
func (t *Task) Checkpoint() Checkpoint {
	res := make([]Result, len(t.results))
	copy(res, t.results)
	return Checkpoint{
		ReceptorID: t.Receptor.ID,
		LigandID:   t.Ligand.ID,
		ISepLo:     t.ISepLo,
		ISepHi:     t.ISepHi,
		NRot:       t.NRot,
		NextISep:   t.nextISep,
		Results:    res,
	}
}

// Marshal encodes the checkpoint as JSON.
func (c Checkpoint) Marshal() ([]byte, error) { return json.Marshal(c) }

// UnmarshalCheckpoint decodes a checkpoint produced by Marshal.
func UnmarshalCheckpoint(data []byte) (Checkpoint, error) {
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return Checkpoint{}, fmt.Errorf("docking: invalid checkpoint: %w", err)
	}
	return c, nil
}

// Resume reconstructs a task from a checkpoint. The caller supplies the
// protein objects (the checkpoint stores only their IDs, like the workunit
// input files on the grid).
func Resume(c Checkpoint, receptor, ligand *protein.Protein, params MinimizeParams) (*Task, error) {
	if receptor.ID != c.ReceptorID || ligand.ID != c.LigandID {
		return nil, fmt.Errorf("docking: checkpoint is for couple (%d,%d), got (%d,%d)",
			c.ReceptorID, c.LigandID, receptor.ID, ligand.ID)
	}
	if c.NextISep < c.ISepLo || c.NextISep > c.ISepHi+1 {
		return nil, fmt.Errorf("docking: checkpoint frontier %d outside [%d,%d+1]", c.NextISep, c.ISepLo, c.ISepHi)
	}
	t := NewTask(receptor, ligand, c.ISepLo, c.ISepHi, c.NRot, params)
	t.nextISep = c.NextISep
	t.results = append(t.results, c.Results...)
	return t, nil
}
