package docking

import (
	"bytes"
	"strings"
	"testing"
)

func TestTaskRunEqualsDockRange(t *testing.T) {
	rec, lig := smallPair(t)
	task := NewTask(rec, lig, 2, 5, 2, fastParams)
	got := task.Run()
	want := DockRange(rec, lig, 2, 5, 2, fastParams, nil)
	if len(got) != len(want) {
		t.Fatalf("len %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d differs", i)
		}
	}
	if !task.Done() || task.Progress() != 1 {
		t.Fatalf("task not done: progress=%v", task.Progress())
	}
}

func TestTaskStepProgress(t *testing.T) {
	rec, lig := smallPair(t)
	task := NewTask(rec, lig, 1, 4, 1, fastParams)
	if task.Progress() != 0 {
		t.Fatalf("initial progress %v", task.Progress())
	}
	task.Step()
	if task.Progress() != 0.25 {
		t.Fatalf("progress after one step: %v", task.Progress())
	}
	n := task.RunN(10)
	if n != 3 {
		t.Fatalf("RunN did %d, want 3 remaining", n)
	}
	if task.Step() {
		t.Fatal("Step on done task should return false")
	}
}

func TestCheckpointResume(t *testing.T) {
	rec, lig := smallPair(t)
	// Reference: run straight through.
	ref := NewTask(rec, lig, 1, 6, 2, fastParams).Run()

	// Interrupted: run 2 positions, checkpoint, marshal, resume, finish.
	task := NewTask(rec, lig, 1, 6, 2, fastParams)
	task.RunN(2)
	cp := task.Checkpoint()
	data, err := cp.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cp2, err := UnmarshalCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(cp2, rec, lig, fastParams)
	if err != nil {
		t.Fatal(err)
	}
	got := resumed.Run()
	if len(got) != len(ref) {
		t.Fatalf("resumed run produced %d results, want %d", len(got), len(ref))
	}
	for i := range got {
		if got[i] != ref[i] {
			t.Fatalf("resumed result %d differs from straight run", i)
		}
	}
}

func TestCheckpointIsolation(t *testing.T) {
	// Mutating the task after Checkpoint must not alter the snapshot.
	rec, lig := smallPair(t)
	task := NewTask(rec, lig, 1, 3, 1, fastParams)
	task.RunN(1)
	cp := task.Checkpoint()
	nBefore := len(cp.Results)
	task.RunN(2)
	if len(cp.Results) != nBefore {
		t.Fatal("checkpoint aliases live results")
	}
}

func TestResumeValidation(t *testing.T) {
	rec, lig := smallPair(t)
	task := NewTask(rec, lig, 1, 3, 1, fastParams)
	cp := task.Checkpoint()

	if _, err := Resume(cp, lig, rec, fastParams); err == nil {
		t.Fatal("expected error for swapped proteins")
	}
	bad := cp
	bad.NextISep = 99
	if _, err := Resume(bad, rec, lig, fastParams); err == nil {
		t.Fatal("expected error for corrupt frontier")
	}
}

func TestUnmarshalCheckpointError(t *testing.T) {
	if _, err := UnmarshalCheckpoint([]byte("{nope")); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
}

func TestNewTaskPanics(t *testing.T) {
	rec, lig := smallPair(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for bad range")
		}
	}()
	NewTask(rec, lig, 5, 2, 1, fastParams)
}

func TestResultFileRoundTrip(t *testing.T) {
	rec, lig := smallPair(t)
	res := DockRange(rec, lig, 1, 3, 2, fastParams, nil)
	var buf bytes.Buffer
	if err := WriteResults(&buf, res); err != nil {
		t.Fatal(err)
	}
	parsed, err := ParseResults(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != len(res) {
		t.Fatalf("parsed %d, want %d", len(parsed), len(res))
	}
	for i := range parsed {
		if parsed[i].ISep != res[i].ISep || parsed[i].IRot != res[i].IRot {
			t.Fatalf("line %d indices differ", i)
		}
		// Energies round-trip at the printed precision.
		if d := parsed[i].Energy.LJ - res[i].Energy.LJ; d > 1e-6 || d < -1e-6 {
			t.Fatalf("line %d LJ differs by %v", i, d)
		}
	}
}

func TestParseResultsErrors(t *testing.T) {
	cases := []string{
		"1 2 3\n",                       // wrong field count
		"x 1 0 0 0 0 0 0 0 0\n",         // bad isep
		"1 y 0 0 0 0 0 0 0 0\n",         // bad irot
		"1 1 z 0 0 0 0 0 0 0\n",         // bad float
		"1 1 0 0 0 0 0 0 0 not-a-num\n", // bad energy
	}
	for i, c := range cases {
		if _, err := ParseResults(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected parse error", i)
		}
	}
}

func TestParseResultsSkipsBlank(t *testing.T) {
	in := "1 1 0 0 0 0 0 0 -1.5 0.25\n\n  \n2 1 0 0 0 0 0 0 -2 0.5\n"
	res, err := ParseResults(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("parsed %d lines, want 2", len(res))
	}
}

func TestValidRangeChecks(t *testing.T) {
	v := DefaultValidRange
	good := Result{ISep: 1, IRot: 1, Energy: Energy{LJ: -3, Elec: 1}}
	if err := v.CheckLine(good); err != nil {
		t.Fatalf("good line rejected: %v", err)
	}
	bads := []Result{
		{ISep: 0, IRot: 1},
		{ISep: 1, IRot: 0},
		{ISep: 1, IRot: 1, Pose: Pose{Pos: Vec3{X: 1e9}}},
		{ISep: 1, IRot: 1, Energy: Energy{LJ: 1e12}},
		{ISep: 1, IRot: 1, Energy: Energy{Elec: nanF()}},
	}
	for i, b := range bads {
		if err := v.CheckLine(b); err == nil {
			t.Errorf("bad line %d accepted", i)
		}
	}
}

func nanF() float64 { z := 0.0; return z / z }

func TestCheckResultsLineCount(t *testing.T) {
	v := DefaultValidRange
	res := []Result{{ISep: 1, IRot: 1}}
	if err := v.CheckResults(res, 2); err == nil {
		t.Fatal("expected line-count failure")
	}
	if err := v.CheckResults(res, 1); err != nil {
		t.Fatalf("valid set rejected: %v", err)
	}
}

func TestMergeResults(t *testing.T) {
	mk := func(isep, irot int) Result { return Result{ISep: isep, IRot: irot} }
	partA := []Result{mk(1, 1), mk(1, 2)}
	partB := []Result{mk(2, 1), mk(2, 2)}
	merged, err := MergeResults([][]Result{partB, partA}, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 4 {
		t.Fatalf("merged %d", len(merged))
	}
	// Canonical (isep, irot) order regardless of part order.
	if merged[0] != mk(1, 1) || merged[3] != mk(2, 2) {
		t.Fatalf("merge order wrong: %+v", merged)
	}
}

func TestMergeResultsDuplicate(t *testing.T) {
	mk := func(isep, irot int) Result { return Result{ISep: isep, IRot: irot} }
	_, err := MergeResults([][]Result{{mk(1, 1)}, {mk(1, 1)}}, 1, 1)
	if err == nil {
		t.Fatal("expected duplicate error")
	}
}

func TestMergeResultsGap(t *testing.T) {
	mk := func(isep, irot int) Result { return Result{ISep: isep, IRot: irot} }
	_, err := MergeResults([][]Result{{mk(1, 1)}}, 2, 1)
	if err == nil {
		t.Fatal("expected gap error")
	}
}

func BenchmarkResultFileWrite(b *testing.B) {
	res := make([]Result, 1000)
	for i := range res {
		res[i] = Result{ISep: i/21 + 1, IRot: i%21 + 1, Energy: Energy{LJ: -1.5, Elec: 0.3}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		_ = WriteResults(&buf, res)
	}
}
