package experiment

import (
	"fmt"
	"io"
	"math"

	"repro/internal/report"
	"repro/internal/stats"
)

// CI is a cross-replication estimate: sample mean, sample standard
// deviation, and the half-width of the normal-approximation 95 %
// confidence interval (zero when there is a single replication).
type CI struct {
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	Half float64 `json:"ci95"`
}

// z95 is the two-sided 95 % normal quantile.
const z95 = 1.96

// EstimateCI computes a CI over a sample.
func EstimateCI(vals []float64) CI {
	if len(vals) == 0 {
		return CI{Mean: math.NaN(), Std: math.NaN(), Half: math.NaN()}
	}
	mean := stats.Mean(vals)
	if len(vals) == 1 {
		return CI{Mean: mean}
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / float64(len(vals)-1)) // sample (n-1) std for the CI
	return CI{Mean: mean, Std: std, Half: z95 * std / math.Sqrt(float64(len(vals)))}
}

// String renders "mean ± half" with a sensible precision.
func (c CI) String() string { return fmt.Sprintf("%.2f ±%.2f", c.Mean, c.Half) }

// Aggregate is one scenario's cross-replication summary.
type Aggregate struct {
	Scenario  string `json:"scenario"`
	Reps      int    `json:"reps"`
	Completed int    `json:"completed"` // replications that finished before MaxWeeks

	Makespan   CI `json:"makespan_weeks"`
	Redundancy CI `json:"redundancy"`
	Useful     CI `json:"useful_fraction"`
	VFTP       CI `json:"avg_vftp_whole"`
	Factor     CI `json:"total_factor"`
	Points     CI `json:"points_total"`
}

// Aggregated groups results by scenario (in the given presentation order)
// and computes each group's cross-replication statistics. Scenarios with no
// results are omitted.
func Aggregated(order []string, results []RunResult) []Aggregate {
	byName := make(map[string][]RunResult, len(order))
	for _, r := range results {
		byName[r.Scenario] = append(byName[r.Scenario], r)
	}
	out := make([]Aggregate, 0, len(order))
	for _, name := range order {
		group := byName[name]
		if len(group) == 0 {
			continue
		}
		pick := func(f func(Metrics) float64) CI {
			vals := make([]float64, len(group))
			for i, r := range group {
				vals[i] = f(r.Metrics)
			}
			return EstimateCI(vals)
		}
		agg := Aggregate{
			Scenario:   name,
			Reps:       len(group),
			Makespan:   pick(func(m Metrics) float64 { return m.MakespanWeeks }),
			Redundancy: pick(func(m Metrics) float64 { return m.Redundancy }),
			Useful:     pick(func(m Metrics) float64 { return m.UsefulFraction }),
			VFTP:       pick(func(m Metrics) float64 { return m.AvgVFTPWhole }),
			Factor:     pick(func(m Metrics) float64 { return m.TotalFactor }),
			Points:     pick(func(m Metrics) float64 { return m.PointsTotal }),
		}
		for _, r := range group {
			if r.Metrics.Completed {
				agg.Completed++
			}
		}
		out = append(out, agg)
	}
	return out
}

// Table renders the aggregates as a fixed-width sweep report with 95 %
// confidence intervals.
func Table(aggs []Aggregate) *report.Table {
	t := report.NewTable("Scenario sweep (mean ±95% CI across replications)",
		"scenario", "reps", "done", "makespan wk", "redundancy", "useful %", "VFTP", "factor", "points")
	for _, a := range aggs {
		t.AddRow(
			a.Scenario,
			fmt.Sprintf("%d", a.Reps),
			fmt.Sprintf("%d/%d", a.Completed, a.Reps),
			fmt.Sprintf("%.1f ±%.1f", a.Makespan.Mean, a.Makespan.Half),
			fmt.Sprintf("%.2f ±%.2f", a.Redundancy.Mean, a.Redundancy.Half),
			fmt.Sprintf("%.0f ±%.0f", 100*a.Useful.Mean, 100*a.Useful.Half),
			fmt.Sprintf("%.0f ±%.0f", a.VFTP.Mean, a.VFTP.Half),
			fmt.Sprintf("%.2f ±%.2f", a.Factor.Mean, a.Factor.Half),
			fmt.Sprintf("%s ±%s", report.Comma(a.Points.Mean), report.Comma(a.Points.Half)),
		)
	}
	return t
}

// WriteCSV emits the aggregates as machine-readable CSV: one row per
// scenario, mean/std/ci95 columns per metric.
func WriteCSV(w io.Writer, aggs []Aggregate) error {
	if _, err := fmt.Fprintln(w, "scenario,reps,completed,"+
		"makespan_mean,makespan_std,makespan_ci95,"+
		"redundancy_mean,redundancy_std,redundancy_ci95,"+
		"useful_mean,useful_std,useful_ci95,"+
		"vftp_mean,vftp_std,vftp_ci95,"+
		"factor_mean,factor_std,factor_ci95,"+
		"points_mean,points_std,points_ci95"); err != nil {
		return err
	}
	for _, a := range aggs {
		if _, err := fmt.Fprintf(w, "%s,%d,%d", a.Scenario, a.Reps, a.Completed); err != nil {
			return err
		}
		for _, c := range []CI{a.Makespan, a.Redundancy, a.Useful, a.VFTP, a.Factor, a.Points} {
			if _, err := fmt.Fprintf(w, ",%g,%g,%g", c.Mean, c.Std, c.Half); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
