package experiment

import (
	"encoding/json"
	"fmt"
	"os"
)

// BenchSchema identifies the BENCH_campaign.json layout.
const BenchSchema = "bench-campaign/v1"

// BenchRun is one measured campaign-benchmark run: the performance
// trajectory every PR is judged against. Wall-clock and allocation figures
// come from the Go benchmark harness; events and queue depth come from the
// simulation kernel itself, so a run is comparable across machines (same
// events executed) and within a machine (ns/op).
type BenchRun struct {
	Benchmark       string  `json:"benchmark"`              // e.g. "BenchmarkCampaignFullScale"
	Label           string  `json:"label"`                  // e.g. "post-refactor (PR 2)"
	Date            string  `json:"date,omitempty"`         // YYYY-MM-DD the run was recorded
	CPU             string  `json:"cpu,omitempty"`          // informational; ns/op is machine-bound
	Scale           float64 `json:"scale"`                  // WorkScale of the run
	HostScale       float64 `json:"host_scale,omitempty"`   // only when ≠ Scale (grid-growth runs)
	Shards          int     `json:"shards,omitempty"`       // sharded-kernel runs (0 = legacy kernel)
	HostsJoined     int     `json:"hosts_joined,omitempty"` // volunteers that ever joined (churn included)
	NsPerOp         int64   `json:"ns_per_op"`              // wall-clock per campaign
	BytesPerOp      int64   `json:"bytes_per_op"`           // heap allocated per campaign
	AllocsPerOp     int64   `json:"allocs_per_op"`          // heap allocations per campaign
	EventsExecuted  uint64  `json:"events_executed"`        // kernel events per campaign
	PeakQueueDepth  int     `json:"peak_queue_depth"`       // event-queue high-water mark
	SimWeeks        float64 `json:"sim_weeks"`              // simulated campaign duration
	ResultsReceived int64   `json:"results_received"`       // returned results per campaign
}

// BenchFile is the on-disk BENCH_campaign.json: an append-mostly log of
// benchmark runs, one entry per (benchmark, label).
type BenchFile struct {
	Schema string     `json:"schema"`
	Runs   []BenchRun `json:"runs"`
}

// ReadBenchFile loads path; a missing file yields an empty, valid file.
func ReadBenchFile(path string) (*BenchFile, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return &BenchFile{Schema: BenchSchema}, nil
	}
	if err != nil {
		return nil, err
	}
	var f BenchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("experiment: parsing %s: %w", path, err)
	}
	if f.Schema == "" {
		f.Schema = BenchSchema
	}
	return &f, nil
}

// WriteBenchFile writes f to path as indented JSON.
func WriteBenchFile(path string, f *BenchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// AppendBenchRun records run in the bench file at path, replacing any
// existing entry with the same benchmark and label so a re-run updates its
// own row instead of duplicating it.
func AppendBenchRun(path string, run BenchRun) error {
	f, err := ReadBenchFile(path)
	if err != nil {
		return err
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Benchmark == run.Benchmark && f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	return WriteBenchFile(path, f)
}

// LatestRun returns the most recently recorded run of the named
// benchmark: the row with the greatest Date, later rows winning ties.
// Position alone is not enough — AppendBenchRun replaces an existing
// (benchmark, label) row in place, so a re-recorded older label can sit
// before a stale newer one in the file.
func (f *BenchFile) LatestRun(bench string) (BenchRun, bool) {
	best := -1
	for i, r := range f.Runs {
		if r.Benchmark != bench {
			continue
		}
		// Dates are YYYY-MM-DD, so lexicographic order is date order;
		// an absent Date ("") loses to any dated row.
		if best == -1 || r.Date >= f.Runs[best].Date {
			best = i
		}
	}
	if best == -1 {
		return BenchRun{}, false
	}
	return f.Runs[best], true
}

// AllocGate is the CI allocation-regression gate: it compares the latest
// current run of bench against the latest baseline run and returns an
// error when allocs/op grew by more than maxGrowth (0.10 = +10 %).
// ns/op is deliberately not gated — CI machines vary — but allocations
// are deterministic for a deterministic simulation, so a breach means the
// change really did add per-op allocations.
func AllocGate(baseline, current *BenchFile, bench string, maxGrowth float64) error {
	base, ok := baseline.LatestRun(bench)
	if !ok {
		return fmt.Errorf("experiment: baseline has no %s run", bench)
	}
	cur, ok := current.LatestRun(bench)
	if !ok {
		return fmt.Errorf("experiment: current file has no %s run", bench)
	}
	limit := int64(float64(base.AllocsPerOp) * (1 + maxGrowth))
	if cur.AllocsPerOp > limit {
		return fmt.Errorf("experiment: %s allocs/op regressed: %d (%q) > %d baseline (%q) +%.0f%% = %d",
			bench, cur.AllocsPerOp, cur.Label, base.AllocsPerOp, base.Label, maxGrowth*100, limit)
	}
	return nil
}

// OverheadGate is the observability-plane wall-time gate: it compares the
// latest runs of two benchmarks recorded in the SAME file — the
// instrumented and the bare variant of one workload, measured in the same
// session on the same machine, which is what makes ns/op comparable here
// (unlike against the checked-in baseline file) — and returns an error
// when the instrumented run is slower by more than maxOverhead
// (0.05 = +5 %).
func OverheadGate(f *BenchFile, instrumented, baseline string, maxOverhead float64) error {
	inst, ok := f.LatestRun(instrumented)
	if !ok {
		return fmt.Errorf("experiment: file has no %s run", instrumented)
	}
	base, ok := f.LatestRun(baseline)
	if !ok {
		return fmt.Errorf("experiment: file has no %s run", baseline)
	}
	limit := float64(base.NsPerOp) * (1 + maxOverhead)
	if float64(inst.NsPerOp) > limit {
		return fmt.Errorf("experiment: %s overhead breach: %d ns/op > %d ns/op (%s) +%.0f%% = %.0f",
			instrumented, inst.NsPerOp, base.NsPerOp, baseline, maxOverhead*100, limit)
	}
	return nil
}
