package experiment

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	// Missing file reads as empty.
	f, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != BenchSchema || len(f.Runs) != 0 {
		t.Fatalf("empty file: %+v", f)
	}

	run := BenchRun{
		Benchmark: "BenchmarkCampaignCI", Label: "a", Scale: 0.5,
		NsPerOp: 100, AllocsPerOp: 7, EventsExecuted: 42, PeakQueueDepth: 3,
	}
	if err := AppendBenchRun(path, run); err != nil {
		t.Fatal(err)
	}
	other := run
	other.Label = "b"
	if err := AppendBenchRun(path, other); err != nil {
		t.Fatal(err)
	}
	// Same (benchmark, label) replaces in place.
	run.NsPerOp = 50
	if err := AppendBenchRun(path, run); err != nil {
		t.Fatal(err)
	}

	f, err = ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(f.Runs))
	}
	if f.Runs[0].NsPerOp != 50 || f.Runs[0].Label != "a" {
		t.Fatalf("replace failed: %+v", f.Runs[0])
	}
	if f.Runs[1].Label != "b" {
		t.Fatalf("append failed: %+v", f.Runs[1])
	}
}

func TestReadBenchFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchFile(path); err == nil {
		t.Fatal("expected parse error")
	}
}
