package experiment

import (
	"os"
	"path/filepath"
	"testing"
)

func TestBenchFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")

	// Missing file reads as empty.
	f, err := ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if f.Schema != BenchSchema || len(f.Runs) != 0 {
		t.Fatalf("empty file: %+v", f)
	}

	run := BenchRun{
		Benchmark: "BenchmarkCampaignCI", Label: "a", Scale: 0.5,
		NsPerOp: 100, AllocsPerOp: 7, EventsExecuted: 42, PeakQueueDepth: 3,
	}
	if err := AppendBenchRun(path, run); err != nil {
		t.Fatal(err)
	}
	other := run
	other.Label = "b"
	if err := AppendBenchRun(path, other); err != nil {
		t.Fatal(err)
	}
	// Same (benchmark, label) replaces in place.
	run.NsPerOp = 50
	if err := AppendBenchRun(path, run); err != nil {
		t.Fatal(err)
	}

	f, err = ReadBenchFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(f.Runs))
	}
	if f.Runs[0].NsPerOp != 50 || f.Runs[0].Label != "a" {
		t.Fatalf("replace failed: %+v", f.Runs[0])
	}
	if f.Runs[1].Label != "b" {
		t.Fatalf("append failed: %+v", f.Runs[1])
	}
}

func TestLatestRunPicksFreshestDate(t *testing.T) {
	// AppendBenchRun replaces a re-recorded label in place, so the most
	// recent measurement can sit BEFORE a stale row: LatestRun must go by
	// date, not file position.
	f := &BenchFile{Runs: []BenchRun{
		{Benchmark: "B", Label: "pr2", Date: "2026-07-30", AllocsPerOp: 111}, // re-recorded later
		{Benchmark: "B", Label: "pr3", Date: "2026-07-29", AllocsPerOp: 222},
	}}
	r, ok := f.LatestRun("B")
	if !ok || r.Label != "pr2" {
		t.Fatalf("LatestRun = %+v, want the re-recorded pr2 row", r)
	}
	// Equal dates: the later row wins.
	f.Runs[0].Date = "2026-07-29"
	if r, _ := f.LatestRun("B"); r.Label != "pr3" {
		t.Fatalf("tie should go to the later row, got %+v", r)
	}
	// Undated rows lose to dated ones.
	f.Runs = append(f.Runs, BenchRun{Benchmark: "B", Label: "hand-written"})
	if r, _ := f.LatestRun("B"); r.Label != "pr3" {
		t.Fatalf("undated row beat a dated one: %+v", r)
	}
	if _, ok := f.LatestRun("missing"); ok {
		t.Fatal("missing benchmark reported found")
	}
}

func TestAllocGate(t *testing.T) {
	base := &BenchFile{Runs: []BenchRun{
		{Benchmark: "BenchmarkCampaignCI", Label: "old", AllocsPerOp: 5000},
		{Benchmark: "BenchmarkCampaignCI", Label: "baseline", AllocsPerOp: 1000},
		{Benchmark: "BenchmarkOther", Label: "x", AllocsPerOp: 1},
	}}
	cur := func(allocs int64) *BenchFile {
		return &BenchFile{Runs: []BenchRun{
			{Benchmark: "BenchmarkCampaignCI", Label: "pr", AllocsPerOp: allocs},
		}}
	}
	// The gate compares against the LATEST baseline row (1000, not 5000).
	if err := AllocGate(base, cur(1100), "BenchmarkCampaignCI", 0.10); err != nil {
		t.Fatalf("within margin rejected: %v", err)
	}
	if err := AllocGate(base, cur(1101), "BenchmarkCampaignCI", 0.10); err == nil {
		t.Fatal("regression above margin accepted")
	}
	if err := AllocGate(base, cur(900), "BenchmarkCampaignCI", 0.10); err != nil {
		t.Fatalf("improvement rejected: %v", err)
	}
	if err := AllocGate(base, cur(1), "BenchmarkMissing", 0.10); err == nil {
		t.Fatal("missing baseline benchmark accepted")
	}
	if err := AllocGate(cur(1), base, "BenchmarkOther", 0.10); err == nil {
		t.Fatal("missing current benchmark accepted")
	}
}

func TestReadBenchFileRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadBenchFile(path); err == nil {
		t.Fatal("expected parse error")
	}
}
