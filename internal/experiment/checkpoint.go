package experiment

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// Checkpoint persists completed sweep cells as JSON lines so an interrupted
// sweep resumes by skipping (scenario, rep) pairs that already ran. The file
// is append-only: each completed cell is flushed to disk the moment it
// finishes, so a kill at any point loses at most in-flight runs.
//
// Resume safety: the runner only reuses a recorded cell when its derived
// seed and work scale match the current sweep, so a checkpoint from a sweep
// with different parameters is ignored rather than silently mixed in.
type Checkpoint struct {
	mu    sync.Mutex
	path  string
	done  map[Key]RunResult
	f     *os.File
	w     *bufio.Writer
	lines int   // cells appended since open (drives the periodic fsync)
	err   error // first write error, reported at Close
}

// ckptSyncEvery is the fsync cadence: every N appended cells the file is
// synced to stable storage, so a machine crash (not just a process kill,
// which the per-cell Flush already covers) loses at most one window of
// cells. Close syncs unconditionally.
const ckptSyncEvery = 32

// OpenCheckpoint opens (creating if needed) the checkpoint at path and loads
// any cells a previous sweep recorded. With resume=false an existing file is
// truncated: the sweep starts from scratch.
func OpenCheckpoint(path string, resume bool) (*Checkpoint, error) {
	c := &Checkpoint{path: path, done: make(map[Key]RunResult)}
	if resume {
		if data, err := os.ReadFile(path); err == nil {
			// Parse line by line and skip torn lines rather than stopping:
			// a sweep killed mid-write leaves one, and a later resume
			// appends intact lines after it.
			for _, line := range bytes.Split(data, []byte("\n")) {
				if len(bytes.TrimSpace(line)) == 0 {
					continue
				}
				var res RunResult
				if err := json.Unmarshal(line, &res); err != nil {
					continue
				}
				if res.Failed {
					// A failed cell in the file (written by hand or by an
					// older build — Record refuses them) must be re-run on
					// resume, not replayed as a result.
					continue
				}
				c.done[Key{Scenario: res.Scenario, Rep: res.Rep}] = res
			}
		} else if !os.IsNotExist(err) {
			return nil, fmt.Errorf("experiment: read checkpoint: %w", err)
		}
	}
	flags := os.O_CREATE | os.O_WRONLY
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: open checkpoint: %w", err)
	}
	c.f = f
	c.w = bufio.NewWriter(f)
	return c, nil
}

// Len returns the number of cells loaded or recorded so far.
func (c *Checkpoint) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.done)
}

// Lookup returns the recorded result for a cell, if any.
func (c *Checkpoint) Lookup(k Key) (RunResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.done[k]
	return res, ok
}

// Record persists one freshly completed cell and flushes it to disk.
// Failed cells are dropped: a resumed sweep must retry them, so nothing
// may mark them done. Safe for concurrent use by the runner's workers.
func (c *Checkpoint) Record(res RunResult) {
	if res.Failed {
		return
	}
	line, err := json.Marshal(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.done[Key{Scenario: res.Scenario, Rep: res.Rep}] = res
	if err == nil {
		_, err = c.w.Write(append(line, '\n'))
	}
	if err == nil {
		err = c.w.Flush()
	}
	if err == nil {
		c.lines++
		if c.lines%ckptSyncEvery == 0 {
			err = c.f.Sync()
		}
	}
	if err != nil && c.err == nil {
		c.err = err
	}
}

// Close flushes and closes the checkpoint file, returning the first error
// encountered while recording, if any.
func (c *Checkpoint) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.f == nil {
		return c.err
	}
	ferr := c.w.Flush()
	serr := c.f.Sync()
	cerr := c.f.Close()
	c.f = nil
	switch {
	case c.err != nil:
		return c.err
	case ferr != nil:
		return ferr
	case serr != nil:
		return serr
	default:
		return cerr
	}
}
