package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/costmodel"
	"repro/internal/obs"
	"repro/internal/project"
	"repro/internal/report"
)

// GridScenario is one named point of the multi-project design space: a
// mutation applied to a base shared-grid configuration. Like single-project
// scenarios, mutators must be pure functions of the config — the runner
// applies them concurrently to per-run copies.
type GridScenario struct {
	Name        string
	Description string
	Mutate      func(cfg *project.GridConfig)
}

// phase2Matrix synthesizes the §7 phase II cost matrix (5.67× the phase I
// work) against the base tenant's dataset — the heavyweight co-project
// several grid scenarios pit the HCMD workload against.
func phase2Matrix(p *project.Config) *costmodel.Matrix {
	return costmodel.Synthesize(p.DS, costmodel.SynthesizeOptions{
		Seed:        p.Seed + 11,
		MeanSeconds: costmodel.Table1.Mean * PhaseIIRatio,
		TargetTotal: costmodel.PaperTotalSeconds * PhaseIIRatio,
	})
}

// GridCatalog returns the built-in multi-project co-run scenarios. The
// base configuration (see core.SharedGridConfig) carries two equal HCMD
// tenants; each scenario reshapes the tenant mix, the resource shares, or
// both. The order is the canonical presentation order.
func GridCatalog() []GridScenario {
	return []GridScenario{
		{
			Name:        "two-project-equal",
			Description: "two identical HCMD workloads at equal resource shares: measured shares must match 50/50",
			Mutate: func(cfg *project.GridConfig) {
				cfg.Projects = cfg.Projects[:2]
				cfg.Shares = nil
			},
		},
		{
			Name:        "hcmd-25pct-share",
			Description: "the §7 assumption made mechanistic: HCMD at a 25% resource share against a phase-II-sized co-project holding 75%",
			Mutate: func(cfg *project.GridConfig) {
				cfg.Projects = cfg.Projects[:2]
				big := &cfg.Projects[1]
				big.M = phase2Matrix(big)
				cfg.Shares = []float64{0.25, 0.75}
				cfg.MaxWeeks = 120
			},
		},
		{
			Name:        "greedy-coproject",
			Description: "a co-project with a phase-II backlog, coarse 10h workunits and quorum 1 fights for the grid; the mux must still hold it to its half",
			Mutate: func(cfg *project.GridConfig) {
				cfg.Projects = cfg.Projects[:2]
				greedy := &cfg.Projects[1]
				greedy.M = phase2Matrix(greedy)
				greedy.HHours = 10
				greedy.Order = project.CostliestFirst
				greedy.Server.InitialQuorum = 1
				greedy.Server.SteadyQuorum = 1
				greedy.Server.QuorumSwitchTime = 0
				cfg.Shares = []float64{1, 1}
				cfg.MaxWeeks = 120
			},
		},
		{
			Name:        "phase1-phase2-corun",
			Description: "phase I and the 5.67× phase II workload co-running at equal shares on one grid",
			Mutate: func(cfg *project.GridConfig) {
				cfg.Projects = cfg.Projects[:2]
				p2 := &cfg.Projects[1]
				p2.M = phase2Matrix(p2)
				cfg.Shares = nil
				cfg.MaxWeeks = 120
			},
		},
		{
			Name:        "share-starvation",
			Description: "a 5% slice against a 95% phase-II giant: the debt mechanism must keep the small tenant's measured share at its slice, not zero",
			Mutate: func(cfg *project.GridConfig) {
				cfg.Projects = cfg.Projects[:2]
				big := &cfg.Projects[1]
				big.M = phase2Matrix(big)
				cfg.Shares = []float64{0.05, 0.95}
				cfg.MaxWeeks = 40 // the point is the share, not completion
			},
		},
	}
}

// GridLookup returns the grid catalog scenario with the given name.
func GridLookup(name string) (GridScenario, bool) {
	for _, s := range GridCatalog() {
		if s.Name == name {
			return s, true
		}
	}
	return GridScenario{}, false
}

// GridSelect resolves a CLI-style co-run scenario spec, mirroring Select.
func GridSelect(spec string) ([]GridScenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return GridCatalog(), nil
	}
	var out []GridScenario
	seen := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		s, ok := GridLookup(name)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown co-run scenario %q (have: %s)", name, strings.Join(GridNames(), ", "))
		}
		seen[name] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty co-run scenario selection %q", spec)
	}
	return out, nil
}

// GridNames returns the sorted co-run scenario names.
func GridNames() []string {
	cat := GridCatalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}

// GridMetrics is the per-co-run outcome summary: the arbitration-fidelity
// headline (measured vs configured shares) plus per-project completion.
type GridMetrics struct {
	Completed        bool      `json:"completed"` // every tenant finished
	MakespanWeeks    float64   `json:"makespan_weeks"`
	ShareWindowWeeks float64   `json:"share_window_weeks"`
	Shares           []float64 `json:"shares"`
	MeasuredShares   []float64 `json:"measured_shares"`
	MaxShareError    float64   `json:"max_share_error"`
	ProjectWeeks     []float64 `json:"project_weeks"`
	CPUSeconds       float64   `json:"cpu_seconds"` // all tenants
}

// ExtractGridMetrics reduces a grid report to co-run sweep metrics.
func ExtractGridMetrics(rep *project.GridReport) GridMetrics {
	m := GridMetrics{
		Completed:        rep.Completed,
		MakespanWeeks:    rep.WeeksElapsed,
		ShareWindowWeeks: rep.ShareWindowWeeks,
		Shares:           append([]float64(nil), rep.Shares...),
		MeasuredShares:   append([]float64(nil), rep.MeasuredShares...),
		MaxShareError:    rep.MaxShareError(),
	}
	for _, p := range rep.Projects {
		m.ProjectWeeks = append(m.ProjectWeeks, p.WeeksElapsed)
		m.CPUSeconds += p.ServerStats.CPUSeconds
	}
	return m
}

// GridRunResult is one completed (scenario, replication) co-run cell.
type GridRunResult struct {
	Scenario string      `json:"scenario"`
	Rep      int         `json:"rep"`
	Seed     uint64      `json:"seed"`
	Metrics  GridMetrics `json:"metrics"`
}

// GridProgress is delivered to GridOptions.Progress after every cell.
type GridProgress struct {
	Done   int
	Total  int
	Result GridRunResult

	// Live telemetry (wall clock, not sim time), as in Progress.
	WallSeconds float64
	CellsPerSec float64
	ETASeconds  float64
}

// GridOptions parameterizes a co-run sweep. There is no checkpoint path:
// co-runs are few and fast relative to the full single-project catalog.
type GridOptions struct {
	// Base is the shared-grid configuration each scenario mutates a copy
	// of. Base.Projects must carry at least as many tenants as the widest
	// scenario trims it to (core.SharedGridConfig(2, ...) covers the
	// built-in catalog).
	Base project.GridConfig

	Scenarios []GridScenario
	Reps      int // replications per scenario (≥ 1)
	Workers   int // 0 = GOMAXPROCS

	// BaseSeed is mixed with scenario and replication indexes exactly as
	// in the single-project sweep; 0 falls back to Base.Seed.
	BaseSeed uint64

	Progress func(GridProgress)

	// MetricsSink / TraceSink / SampleEvery mirror Options: per-worker obs
	// probes over shared sinks, re-tagged per cell.
	MetricsSink *obs.Sink
	TraceSink   *obs.Sink
	SampleEvery float64
}

// GridSweep is a completed co-run sweep.
type GridSweep struct {
	Results    []GridRunResult `json:"results"`
	Aggregates []GridAggregate `json:"aggregates"`
}

// GridAggregate is one co-run scenario's cross-replication summary.
type GridAggregate struct {
	Scenario  string `json:"scenario"`
	Reps      int    `json:"reps"`
	Completed int    `json:"completed"`

	Makespan   CI `json:"makespan_weeks"`
	ShareError CI `json:"max_share_error"`
}

// GridAggregated groups co-run results by scenario in presentation order.
func GridAggregated(order []string, results []GridRunResult) []GridAggregate {
	byName := make(map[string][]GridRunResult, len(order))
	for _, r := range results {
		byName[r.Scenario] = append(byName[r.Scenario], r)
	}
	out := make([]GridAggregate, 0, len(order))
	for _, name := range order {
		group := byName[name]
		if len(group) == 0 {
			continue
		}
		mk := make([]float64, len(group))
		se := make([]float64, len(group))
		agg := GridAggregate{Scenario: name, Reps: len(group)}
		for i, r := range group {
			mk[i] = r.Metrics.MakespanWeeks
			se[i] = r.Metrics.MaxShareError
			if r.Metrics.Completed {
				agg.Completed++
			}
		}
		agg.Makespan = EstimateCI(mk)
		agg.ShareError = EstimateCI(se)
		out = append(out, agg)
	}
	return out
}

// GridTable renders co-run aggregates, one row per scenario with the
// per-project measured-vs-configured shares of the first replication.
func GridTable(aggs []GridAggregate, results []GridRunResult) *report.Table {
	firstRep := make(map[string]GridRunResult, len(aggs))
	for _, r := range results {
		if _, ok := firstRep[r.Scenario]; !ok || r.Rep < firstRep[r.Scenario].Rep {
			firstRep[r.Scenario] = r
		}
	}
	t := report.NewTable("Co-run sweep (mean ±95% CI across replications)",
		"scenario", "reps", "done", "makespan wk", "max share err", "shares (want → got, rep 0)")
	for _, a := range aggs {
		shares := ""
		if r, ok := firstRep[a.Scenario]; ok {
			parts := make([]string, len(r.Metrics.Shares))
			for i := range r.Metrics.Shares {
				parts[i] = fmt.Sprintf("%.2f→%.3f", r.Metrics.Shares[i], r.Metrics.MeasuredShares[i])
			}
			shares = strings.Join(parts, " ")
		}
		t.AddRow(
			a.Scenario,
			fmt.Sprintf("%d", a.Reps),
			fmt.Sprintf("%d/%d", a.Completed, a.Reps),
			fmt.Sprintf("%.1f ±%.1f", a.Makespan.Mean, a.Makespan.Half),
			fmt.Sprintf("%.4f ±%.4f", a.ShareError.Mean, a.ShareError.Half),
			shares,
		)
	}
	return t
}

// RunGrid executes the co-run sweep: Scenarios × Reps shared-grid
// simulations fanned out over a bounded worker pool, each worker owning a
// pooled project.GridRunner. Every simulation is single-threaded and
// deterministic in its derived seed, so results and aggregates are
// independent of Workers. Cancelling ctx stops handing out new cells and
// returns the partial sweep with the context error.
func RunGrid(ctx context.Context, opts GridOptions) (*GridSweep, error) {
	if len(opts.Base.Projects) == 0 {
		return nil, fmt.Errorf("experiment: GridOptions.Base needs at least one project")
	}
	if len(opts.Scenarios) == 0 {
		return nil, fmt.Errorf("experiment: no co-run scenarios selected")
	}
	if opts.Reps < 1 {
		return nil, fmt.Errorf("experiment: Reps must be ≥ 1, got %d", opts.Reps)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	baseSeed := opts.BaseSeed
	if baseSeed == 0 {
		baseSeed = opts.Base.Seed
	}

	type cell struct {
		scenIdx int
		rep     int
	}
	cells := make([]cell, 0, len(opts.Scenarios)*opts.Reps)
	for si := range opts.Scenarios {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{scenIdx: si, rep: r})
		}
	}
	total := len(cells)
	results := make([]GridRunResult, total)

	var (
		mu   sync.Mutex
		done int
	)
	start := time.Now()
	finish := func(i int, res GridRunResult, wall float64) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = res
		done++
		if opts.Progress != nil {
			p := GridProgress{Done: done, Total: total, Result: res, WallSeconds: wall}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				p.CellsPerSec = float64(done) / elapsed
				p.ETASeconds = float64(total-done) / p.CellsPerSec
			}
			opts.Progress(p)
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runner := project.NewGridRunner()
			cp := newCellProbe(opts.MetricsSink, opts.TraceSink, opts.SampleEvery)
			for i := range jobs {
				c := cells[i]
				sc := opts.Scenarios[c.scenIdx]
				seed := DeriveSeed(baseSeed, c.scenIdx, c.rep)
				cfg := opts.Base // shallow copy; mutators own Projects/Shares edits
				cfg.Projects = append([]project.Config(nil), cfg.Projects...)
				cfg.Shares = append([]float64(nil), cfg.Shares...)
				cfg.Seed = seed
				sc.Mutate(&cfg)
				cfg.Seed = seed // a mutator must not undo the derived seed
				cfg.Probe = cp.arm(sc.Name, c.rep)
				cellStart := time.Now()
				rep := runner.Run(cfg)
				wall := time.Since(cellStart).Seconds()
				cp.flush(sc.Name, c.rep)
				finish(i, GridRunResult{
					Scenario: sc.Name,
					Rep:      c.rep,
					Seed:     seed,
					Metrics:  ExtractGridMetrics(rep),
				}, wall)
			}
		}()
	}

	var ctxErr error
dispatch:
	for i := range cells {
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()

	order := make([]string, len(opts.Scenarios))
	for i, s := range opts.Scenarios {
		order[i] = s.Name
	}
	if ctxErr != nil {
		partial := make([]GridRunResult, 0, done)
		for _, r := range results {
			if r.Scenario != "" {
				partial = append(partial, r)
			}
		}
		return &GridSweep{Results: partial, Aggregates: GridAggregated(order, partial)}, ctxErr
	}
	return &GridSweep{Results: results, Aggregates: GridAggregated(order, results)}, nil
}
