package experiment

import (
	"context"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/project"
	"repro/internal/protein"
	"repro/internal/volunteer"
)

// testGridBase returns a tiny two-tenant shared-grid configuration over
// the runner-test dataset, fast enough for replicated sweeps.
func testGridBase(t *testing.T) project.GridConfig {
	t.Helper()
	ds := protein.Generate(10, 31)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 32})
	pa := project.DefaultConfig(ds, m)
	pa.WorkScale = 0.3
	pb := pa
	pb.Seed = pa.Seed + 1
	return project.GridConfig{
		Projects:  []project.Config{pa, pb},
		Host:      volunteer.DefaultHostConfig(),
		Grid:      volunteer.DefaultGridModel(),
		GridShare: 0.48,
		HostScale: 0.003,
		Seed:      1234,
		MaxWeeks:  80,
	}
}

func testGridScenarios() []GridScenario {
	return []GridScenario{
		{Name: "equal", Description: "two equal tenants", Mutate: func(cfg *project.GridConfig) { cfg.Shares = nil }},
		{Name: "skew", Description: "1:3 shares", Mutate: func(cfg *project.GridConfig) { cfg.Shares = []float64{1, 3} }},
	}
}

// TestGridSweepIdenticalAcrossWorkerCounts is the co-run analogue of the
// single-project workers=1-vs-N guarantee: grid results and aggregates
// must not depend on the worker pool size.
func TestGridSweepIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *GridSweep {
		sw, err := RunGrid(context.Background(), GridOptions{
			Base:      testGridBase(t),
			Scenarios: testGridScenarios(),
			Reps:      3,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial.Results, parallel.Results) {
		t.Fatal("co-run results differ between -workers=1 and -workers=8")
	}
	if !reflect.DeepEqual(serial.Aggregates, parallel.Aggregates) {
		t.Fatal("co-run aggregates differ between -workers=1 and -workers=8")
	}
	if len(serial.Results) != 6 {
		t.Fatalf("results = %d, want 6", len(serial.Results))
	}
	for _, r := range serial.Results {
		if r.Metrics.MaxShareError > 0.05 {
			t.Fatalf("%s rep %d: share error %.4f", r.Scenario, r.Rep, r.Metrics.MaxShareError)
		}
	}
}

// TestGridCatalogShape mirrors the single-project catalog hygiene rules.
func TestGridCatalogShape(t *testing.T) {
	cat := GridCatalog()
	if len(cat) < 5 {
		t.Fatalf("co-run catalog has %d scenarios, want ≥ 5", len(cat))
	}
	seen := make(map[string]bool)
	for _, s := range cat {
		if s.Name == "" || s.Description == "" || s.Mutate == nil {
			t.Fatalf("scenario %+v incomplete", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate co-run scenario name %q", s.Name)
		}
		if !kebabName.MatchString(s.Name) {
			t.Fatalf("co-run scenario name %q is not kebab-case", s.Name)
		}
		seen[s.Name] = true
	}
	for _, want := range []string{"hcmd-25pct-share", "two-project-equal", "greedy-coproject", "phase1-phase2-corun", "share-starvation"} {
		if !seen[want] {
			t.Fatalf("co-run catalog missing %q", want)
		}
	}
}

// TestGridCatalogMutatorsPure: applying a co-run mutator twice to copies
// of the base yields equal configs, and the shared dataset/matrix survive
// untouched.
func TestGridCatalogMutatorsPure(t *testing.T) {
	base := testGridBase(t)
	for _, s := range GridCatalog() {
		a, b := base, base
		a.Projects = append([]project.Config(nil), base.Projects...)
		b.Projects = append([]project.Config(nil), base.Projects...)
		s.Mutate(&a)
		s.Mutate(&b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: mutator is not a pure function of the config", s.Name)
		}
		if len(a.Projects) == 0 {
			t.Fatalf("%s: mutator dropped every project", s.Name)
		}
		for i, p := range a.Projects {
			if p.DS == nil || p.M == nil {
				t.Fatalf("%s: project %d lost dataset or matrix", s.Name, i)
			}
		}
	}
	pristineDS := protein.Generate(10, 31)
	pristineM := costmodel.Synthesize(pristineDS, costmodel.SynthesizeOptions{Seed: 32})
	if !reflect.DeepEqual(base.Projects[0].DS, pristineDS) || !reflect.DeepEqual(base.Projects[0].M, pristineM) {
		t.Fatal("some co-run mutator modified the shared dataset or cost matrix in place")
	}
}

// TestGridCatalogRunnable runs every co-run scenario once at a small scale
// through a pooled runner and sanity-checks the share arbitration.
func TestGridCatalogRunnable(t *testing.T) {
	base := testGridBase(t)
	runner := project.NewGridRunner()
	for si, s := range GridCatalog() {
		cfg := base
		cfg.Projects = append([]project.Config(nil), base.Projects...)
		cfg.Seed = DeriveSeed(base.Seed, si, 0)
		s.Mutate(&cfg)
		cfg.MaxWeeks = 25 // cap the heavyweight scenarios for test budget
		rep := runner.Run(cfg)
		m := ExtractGridMetrics(rep)
		if len(m.Shares) != len(m.MeasuredShares) || len(m.Shares) == 0 {
			t.Fatalf("%s: malformed shares %v / %v", s.Name, m.Shares, m.MeasuredShares)
		}
		var sum float64
		for _, sh := range m.Shares {
			sum += sh
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("%s: configured shares sum to %v", s.Name, sum)
		}
		if m.MaxShareError > 0.06 {
			t.Fatalf("%s: measured shares %v drifted from configured %v (err %.4f)",
				s.Name, m.MeasuredShares, m.Shares, m.MaxShareError)
		}
	}
}

func TestGridSelect(t *testing.T) {
	all, err := GridSelect("all")
	if err != nil || len(all) != len(GridCatalog()) {
		t.Fatalf("GridSelect(all) = %d scenarios, err %v", len(all), err)
	}
	some, err := GridSelect("share-starvation, two-project-equal,share-starvation")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "share-starvation" || some[1].Name != "two-project-equal" {
		t.Fatalf("GridSelect dedup/order broken: %d", len(some))
	}
	if _, err := GridSelect("no-such-corun"); err == nil || !strings.Contains(err.Error(), "co-run") {
		t.Fatalf("expected co-run unknown-name error, got %v", err)
	}
	if _, err := GridSelect(" , "); err == nil {
		t.Fatal("expected error for empty selection")
	}
}

func TestRunGridValidation(t *testing.T) {
	ctx := context.Background()
	if _, err := RunGrid(ctx, GridOptions{Scenarios: testGridScenarios(), Reps: 1}); err == nil {
		t.Fatal("missing base accepted")
	}
	if _, err := RunGrid(ctx, GridOptions{Base: testGridBase(t), Reps: 1}); err == nil {
		t.Fatal("missing scenarios accepted")
	}
	if _, err := RunGrid(ctx, GridOptions{Base: testGridBase(t), Scenarios: testGridScenarios(), Reps: 0}); err == nil {
		t.Fatal("zero reps accepted")
	}
}

// TestRunGridCancellation: a cancelled context returns the partial sweep.
func TestRunGridCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sw, err := RunGrid(ctx, GridOptions{
		Base:      testGridBase(t),
		Scenarios: testGridScenarios(),
		Reps:      2,
		Workers:   1,
	})
	if err == nil {
		t.Fatal("cancelled sweep reported success")
	}
	if sw == nil {
		t.Fatal("cancelled sweep returned no partial result")
	}
}
