package experiment

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/project"
)

// forkScenarios is the fork-identity selection: every catalog scenario
// carrying a DivergesAt hint plus a few ungrouped ones, so a forked sweep
// exercises tree jobs and standalone cells side by side.
func forkScenarios(t *testing.T) []Scenario {
	t.Helper()
	var out []Scenario
	for _, name := range []string{"baseline", "quorum-1", "quorum-2", "late-quorum-switch",
		"no-control-phase", "slow-ramp", "grid-static", "half-share"} {
		sc, ok := Lookup(name)
		if !ok {
			t.Fatalf("catalog lost scenario %q", name)
		}
		out = append(out, sc)
	}
	return out
}

// TestForkedSweepIdentical is the sweep-level fork pin: with prefix sharing
// on, results and aggregates are byte-identical to the unforked sweep — on
// one worker and eight, on the legacy and the sharded kernel — and the
// prefix stats prove every grouped cell really was served by a fork (a
// silent fallback to standalone runs would keep results correct but show
// up as missing hits here).
func TestForkedSweepIdentical(t *testing.T) {
	scenarios := forkScenarios(t)
	const reps = 2
	run := func(fork bool, workers, shards int) *Sweep {
		sw, err := Run(context.Background(), Options{
			Base:      testBase(t),
			Scenarios: scenarios,
			Reps:      reps,
			Workers:   workers,
			Shards:    shards,
			Fork:      fork,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}

	ref := run(false, 1, 0)
	if ref.PrefixHits != 0 || ref.PrefixGroups != 0 {
		t.Fatalf("unforked sweep reported prefix stats: %d hits, %d groups", ref.PrefixHits, ref.PrefixGroups)
	}

	// 5 grouped scenarios at 3 distinct divergence times (1w ×2, 9w, 14w ×2):
	// per rep the tree takes 3 snapshots and forks 5 cells, saving
	// (1+1) + 9 + (14+14) − 14 = 25 sim-weeks over standalone runs.
	const wantHits, wantGroups, wantSaved = 5 * reps, 3 * reps, 25.0 * reps
	for _, tc := range []struct{ workers, shards int }{{1, 0}, {8, 0}, {1, 4}, {8, 4}} {
		sw := run(true, tc.workers, tc.shards)
		if !reflect.DeepEqual(ref.Results, sw.Results) {
			t.Fatalf("workers=%d shards=%d: forked results differ from unforked", tc.workers, tc.shards)
		}
		if !reflect.DeepEqual(ref.Aggregates, sw.Aggregates) {
			t.Fatalf("workers=%d shards=%d: forked aggregates differ from unforked", tc.workers, tc.shards)
		}
		if sw.PrefixHits != wantHits || sw.PrefixGroups != wantGroups {
			t.Errorf("workers=%d shards=%d: prefix stats = %d hits / %d groups, want %d / %d",
				tc.workers, tc.shards, sw.PrefixHits, sw.PrefixGroups, wantHits, wantGroups)
		}
		if sw.SavedSimWeeks != wantSaved {
			t.Errorf("workers=%d shards=%d: saved sim-weeks = %v, want %v",
				tc.workers, tc.shards, sw.SavedSimWeeks, wantSaved)
		}
	}

	// The JSON rendering must not leak the stats: forked and unforked sweep
	// files are diffed byte for byte by the CI smoke.
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	forkJSON, err := json.Marshal(run(true, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(forkJSON) {
		t.Fatal("forked sweep JSON differs from unforked")
	}
}

// TestParallelForkedSweepIdentical is the fan-out pin: with ForkWorkers
// wide enough to split every divergence group, suffixes adopt portable
// snapshots on other pooled runners and race — and the results, the
// aggregates, the prefix stats and the JSON rendering stay byte-identical
// to the sequential single-worker unforked sweep. The fan-out stats prove
// adoption really happened (a silent Materialize fallback would keep
// results correct but show zero adopted runners here).
func TestParallelForkedSweepIdentical(t *testing.T) {
	scenarios := forkScenarios(t)
	const reps = 2
	run := func(fork bool, workers, forkWorkers, shards int) *Sweep {
		sw, err := Run(context.Background(), Options{
			Base:        testBase(t),
			Scenarios:   scenarios,
			Reps:        reps,
			Workers:     workers,
			ForkWorkers: forkWorkers,
			Shards:      shards,
			Fork:        fork,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}

	ref := run(false, 1, 0, 0)
	const wantHits, wantGroups, wantSaved = 5 * reps, 3 * reps, 25.0 * reps
	for _, tc := range []struct{ workers, forkWorkers, shards int }{{8, 8, 0}, {8, 8, 4}, {1, 8, 0}} {
		sw := run(true, tc.workers, tc.forkWorkers, tc.shards)
		if !reflect.DeepEqual(ref.Results, sw.Results) {
			t.Fatalf("workers=%d fork-workers=%d shards=%d: parallel-forked results differ from unforked",
				tc.workers, tc.forkWorkers, tc.shards)
		}
		if !reflect.DeepEqual(ref.Aggregates, sw.Aggregates) {
			t.Fatalf("workers=%d fork-workers=%d shards=%d: parallel-forked aggregates differ from unforked",
				tc.workers, tc.forkWorkers, tc.shards)
		}
		if sw.PrefixHits != wantHits || sw.PrefixGroups != wantGroups || sw.SavedSimWeeks != wantSaved {
			t.Errorf("workers=%d fork-workers=%d shards=%d: prefix stats = %d hits / %d groups / %v weeks, want %d / %d / %v",
				tc.workers, tc.forkWorkers, tc.shards,
				sw.PrefixHits, sw.PrefixGroups, sw.SavedSimWeeks, wantHits, wantGroups, wantSaved)
		}
		if tc.workers > 1 {
			// Real fan-out: at least one chunk adopted on another runner.
			if sw.AdoptedRunners == 0 || sw.ForksParallel == 0 || sw.SnapshotBytes == 0 {
				t.Errorf("workers=%d fork-workers=%d shards=%d: no fan-out happened (adopted=%d, parallel forks=%d, bytes=%d)",
					tc.workers, tc.forkWorkers, tc.shards, sw.AdoptedRunners, sw.ForksParallel, sw.SnapshotBytes)
			}
		} else {
			// ForkWorkers is capped at Workers: one worker means sequential
			// forks and no snapshots captured.
			if sw.AdoptedRunners != 0 || sw.SnapshotBytes != 0 {
				t.Errorf("workers=1: fan-out ran on a single worker (adopted=%d, bytes=%d)",
					sw.AdoptedRunners, sw.SnapshotBytes)
			}
		}
	}

	// The fan-out stats must not leak into the JSON rendering: parallel-forked
	// and unforked sweep files are diffed byte for byte by the CI smoke.
	refJSON, err := json.Marshal(ref)
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.Marshal(run(true, 8, 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	if string(refJSON) != string(parJSON) {
		t.Fatal("parallel-forked sweep JSON differs from unforked")
	}
}

// TestDivergesAtHints validates every catalog DivergesAt hint directly
// against the project fork path: running the base prefix to the hinted
// time, snapshotting, and forking the mutated cell must reproduce the
// cell's straight-run metrics. A hint placed after the true divergence
// point fails the equality; a mutator touching a bind-time field panics
// in the fork's config guard.
func TestDivergesAtHints(t *testing.T) {
	base := testBase(t)
	const seed = 4242
	straightRunner := project.NewRunner()
	forkRunner := project.NewRunner()
	hinted := 0
	for _, sc := range Catalog() {
		if sc.DivergesAt <= 0 {
			continue
		}
		hinted++
		opts := Options{Base: base}
		straight := ExtractMetrics(straightRunner.Run(cellConfig(&opts, sc, seed, nil)))

		baseCfg := base
		baseCfg.Seed = seed
		forkRunner.Begin(baseCfg)
		forkRunner.RunTo(sc.DivergesAt)
		forkRunner.Snapshot()
		forked := ExtractMetrics(forkRunner.Fork(cellConfig(&opts, sc, seed, nil)))
		if !reflect.DeepEqual(straight, forked) {
			t.Errorf("%s: fork at hinted divergence %v differs from straight run\nstraight: %+v\nforked:   %+v",
				sc.Name, sc.DivergesAt, straight, forked)
		}
	}
	if hinted == 0 {
		t.Fatal("catalog carries no DivergesAt hints")
	}
}

// TestForkedSweepCheckpointResume pins checkpoint interchange between the
// two modes: a checkpoint written unforked resumes a forked sweep in full
// (grouped trees are skipped entirely), and a partially filled checkpoint
// makes the forked sweep run only the missing cells — with unchanged
// results either way.
func TestForkedSweepCheckpointResume(t *testing.T) {
	scenarios := forkScenarios(t)
	base := testBase(t)
	opts := Options{Base: base, Scenarios: scenarios, Reps: 1, Workers: 2}

	path := filepath.Join(t.TempDir(), "fork.ckpt.jsonl")
	ckpt, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = ckpt
	first, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	// Full resume: the forked sweep satisfies every cell from the file and
	// never builds a prefix.
	ckpt2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = ckpt2
	opts.Fork = true
	second, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt2.Close(); err != nil {
		t.Fatal(err)
	}
	if second.Resumed != len(first.Results) {
		t.Fatalf("forked resume satisfied %d cells, want all %d", second.Resumed, len(first.Results))
	}
	if second.PrefixGroups != 0 {
		t.Fatalf("fully resumed forked sweep still took %d snapshots", second.PrefixGroups)
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("forked resume changed the results")
	}

	// Partial resume: drop half the recorded cells; the forked sweep must
	// re-run exactly the missing ones and reproduce the full result set.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := splitLines(data)
	if len(lines) != len(first.Results) {
		t.Fatalf("checkpoint has %d lines, want %d", len(lines), len(first.Results))
	}
	if err := os.WriteFile(path, joinLines(lines[:len(lines)/2]), 0o644); err != nil {
		t.Fatal(err)
	}
	ckpt3, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt3.Close()
	opts.Checkpoint = ckpt3
	third, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Resumed != len(lines)/2 {
		t.Fatalf("partial forked resume satisfied %d cells, want %d", third.Resumed, len(lines)/2)
	}
	if !reflect.DeepEqual(first.Results, third.Results) {
		t.Fatal("partially resumed forked sweep changed the results")
	}
}

// TestCheckpointDropsFailedCells is the resume-retries-failures regression
// pin: a Failed line in the file (hand-written or from an older build) is
// not replayed as a result, and Record refuses to persist failed cells in
// the first place.
func TestCheckpointDropsFailedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "failed.ckpt.jsonl")
	good := RunResult{Scenario: "alpha", Rep: 0, Seed: 7, Metrics: Metrics{Completed: true}}
	bad := RunResult{Scenario: "beta", Rep: 0, Seed: 7, Failed: true, Error: "boom"}
	var file []byte
	for _, res := range []RunResult{good, bad} {
		line, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		file = append(file, append(line, '\n')...)
	}
	if err := os.WriteFile(path, file, 0o644); err != nil {
		t.Fatal(err)
	}

	ckpt, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()
	if ckpt.Len() != 1 {
		t.Fatalf("loaded %d cells, want 1 (the failed one re-runs)", ckpt.Len())
	}
	if _, ok := ckpt.Lookup(Key{Scenario: "beta", Rep: 0}); ok {
		t.Fatal("failed cell resumed from checkpoint instead of retrying")
	}
	if _, ok := ckpt.Lookup(Key{Scenario: "alpha", Rep: 0}); !ok {
		t.Fatal("intact cell lost")
	}

	ckpt.Record(bad)
	if _, ok := ckpt.Lookup(Key{Scenario: "beta", Rep: 0}); ok {
		t.Fatal("Record accepted a failed cell")
	}
}

// splitLines splits a JSONL buffer into its non-empty lines.
func splitLines(data []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range data {
		if b == '\n' {
			if i > start {
				lines = append(lines, data[start:i])
			}
			start = i + 1
		}
	}
	if start < len(data) {
		lines = append(lines, data[start:])
	}
	return lines
}

func joinLines(lines [][]byte) []byte {
	var out []byte
	for _, l := range lines {
		out = append(out, append(l, '\n')...)
	}
	return out
}
