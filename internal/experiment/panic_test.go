package experiment

import (
	"context"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/project"
)

// TestSweepIsolatesPanickingCell: a scenario whose cells panic (here via a
// mutator that poisons the config — HostScale < 0 panics in the project
// layer's checkConfig) must not crash the sweep process. The cells are
// retried once, recorded as failed, excluded from the checkpoint, and the
// sweep reports an error while the healthy scenarios' results survive.
func TestSweepIsolatesPanickingCell(t *testing.T) {
	path := filepath.Join(t.TempDir(), "panic.ckpt.jsonl")
	ckpt, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt.Close()

	scenarios := []Scenario{
		{Name: "healthy", Description: "no-op", Mutate: func(*project.Config) {}},
		{Name: "poison", Description: "panics every attempt", Mutate: func(cfg *project.Config) {
			cfg.HostScale = -1
		}},
	}
	sw, err := Run(context.Background(), Options{
		Base:       testBase(t),
		Scenarios:  scenarios,
		Reps:       2,
		Workers:    4,
		Checkpoint: ckpt,
	})
	if err == nil {
		t.Fatal("sweep with a poisoned scenario returned no error")
	}
	if !strings.Contains(err.Error(), "failed after a retry") {
		t.Fatalf("unexpected sweep error: %v", err)
	}
	if sw == nil {
		t.Fatal("failed sweep returned no partial results")
	}
	if len(sw.Results) != 2 {
		t.Fatalf("healthy cells = %d, want 2", len(sw.Results))
	}
	for _, r := range sw.Results {
		if r.Scenario != "healthy" || r.Failed || r.Error != "" {
			t.Fatalf("healthy cell polluted: %+v", r)
		}
	}
	if len(sw.Failed) != 2 {
		t.Fatalf("failed cells = %d, want 2", len(sw.Failed))
	}
	for _, r := range sw.Failed {
		if r.Scenario != "poison" || !r.Failed || r.Error == "" {
			t.Fatalf("failed cell misrecorded: %+v", r)
		}
	}
	// Failed cells must not be checkpointed: a fixed rerun with -resume has
	// to re-execute them.
	if got := ckpt.Len(); got != 2 {
		t.Errorf("checkpoint holds %d cells, want only the 2 healthy ones", got)
	}
	for rep := 0; rep < 2; rep++ {
		if _, ok := ckpt.Lookup(Key{Scenario: "poison", Rep: rep}); ok {
			t.Errorf("failed cell (poison, %d) was checkpointed", rep)
		}
	}
	// Aggregates still rendered for the healthy scenario.
	if len(sw.Aggregates) == 0 {
		t.Error("failed sweep produced no aggregates for the healthy scenario")
	}
}

// TestSweepRetriesTransientPanic: a cell that panics once and then succeeds
// is retried on a fresh runner and lands as an ordinary result — the sweep
// finishes with no error.
func TestSweepRetriesTransientPanic(t *testing.T) {
	var calls atomic.Int32
	scenarios := []Scenario{
		{Name: "flaky-once", Description: "panics on its first attempt only", Mutate: func(*project.Config) {
			if calls.Add(1) == 1 {
				panic("transient test panic")
			}
		}},
	}
	// Workers=1 keeps the attempt order deterministic: the first attempt of
	// rep 0 panics, its retry and every later cell succeed.
	sw, err := Run(context.Background(), Options{
		Base:      testBase(t),
		Scenarios: scenarios,
		Reps:      2,
		Workers:   1,
	})
	if err != nil {
		t.Fatalf("transient panic not absorbed by the retry: %v", err)
	}
	if len(sw.Failed) != 0 {
		t.Fatalf("retried cell still recorded as failed: %+v", sw.Failed)
	}
	if len(sw.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(sw.Results))
	}
	for _, r := range sw.Results {
		if r.Metrics.MakespanWeeks <= 0 {
			t.Fatalf("degenerate retried cell: %+v", r)
		}
	}
	if calls.Load() != 3 {
		t.Errorf("mutator called %d times, want 3 (rep0, retry, rep1)", calls.Load())
	}
}

// TestFaultScenariosWorkerIndependent extends the worker-count determinism
// pin to the fault plane: outage, flaky-uplink, churn, and storm scenarios
// produce identical results on 1 and 8 workers.
func TestFaultScenariosWorkerIndependent(t *testing.T) {
	var scenarios []Scenario
	for _, name := range []string{"weekly-maintenance", "unplanned-24h-outage",
		"flaky-uplink-1pct", "churn-steady", "outage-no-backoff", "fault-storm"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("catalog lost scenario %q", name)
		}
		scenarios = append(scenarios, s)
	}
	run := func(workers, shards int) *Sweep {
		sw, err := Run(context.Background(), Options{
			Base:      testBase(t),
			Scenarios: scenarios,
			Reps:      2,
			Workers:   workers,
			Shards:    shards,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	serial := run(1, 0)
	parallel := run(8, 0)
	if len(serial.Results) != len(parallel.Results) {
		t.Fatal("fault sweeps differ in cell count across worker counts")
	}
	for i := range serial.Results {
		if serial.Results[i] != parallel.Results[i] {
			t.Fatalf("fault cell %d differs between -workers=1 and -workers=8:\n%+v\n%+v",
				i, serial.Results[i], parallel.Results[i])
		}
	}
	sharded := run(8, 8)
	for i := range serial.Results {
		if serial.Results[i] != sharded.Results[i] {
			t.Fatalf("fault cell %d differs between legacy and 8-shard kernels:\n%+v\n%+v",
				i, serial.Results[i], sharded.Results[i])
		}
	}
	// The fault metrics actually surface in sweep cells.
	var sawDowntime, sawLoss, sawChurn bool
	for _, r := range serial.Results {
		if r.Metrics.DowntimeHours > 0 {
			sawDowntime = true
		}
		if r.Metrics.LostUploads > 0 {
			sawLoss = true
		}
		if r.Metrics.ChurnedHosts > 0 {
			sawChurn = true
		}
	}
	if !sawDowntime || !sawLoss || !sawChurn {
		t.Errorf("fault metrics missing from sweep cells: downtime=%v loss=%v churn=%v",
			sawDowntime, sawLoss, sawChurn)
	}
}
