package experiment

import (
	"sort"

	"repro/internal/sim"
)

// prefixPlan is the fork-mode execution plan for one sweep selection: the
// DivergesAt > 0 scenarios grouped by divergence time, ascending. All of
// them share one trajectory per replication — the prefix of the base
// configuration — keyed by the root scenario's selection index, so the
// derived trajectory seed is the same whether the sweep forks or not.
type prefixPlan struct {
	root   int // selection index keying every grouped trajectory's seed
	groups []prefixGroup
}

// prefixGroup is one snapshot point of the plan: the divergence time and
// the selection indexes of the scenarios that fork there.
type prefixGroup struct {
	at    sim.Time
	scens []int
}

// planPrefix builds the prefix plan over a sweep's scenario selection.
// Returns nil when no scenario carries a DivergesAt hint — forking is a
// no-op for such sweeps.
func planPrefix(scenarios []Scenario) *prefixPlan {
	byTime := make(map[sim.Time][]int)
	root := -1
	for si, sc := range scenarios {
		if sc.DivergesAt <= 0 {
			continue
		}
		if root < 0 {
			root = si
		}
		byTime[sc.DivergesAt] = append(byTime[sc.DivergesAt], si)
	}
	if root < 0 {
		return nil
	}
	p := &prefixPlan{root: root}
	for at, scens := range byTime {
		p.groups = append(p.groups, prefixGroup{at: at, scens: scens})
	}
	sort.Slice(p.groups, func(a, b int) bool { return p.groups[a].at < p.groups[b].at })
	return p
}

// cells returns the selection indexes of every scenario in the plan.
func (p *prefixPlan) cells() []int {
	var out []int
	for _, g := range p.groups {
		out = append(out, g.scens...)
	}
	return out
}
