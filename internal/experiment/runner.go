package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/project"
	"repro/internal/rng"
)

// Metrics is the per-run outcome summary the sweep aggregates: the paper's
// headline quantities extracted from a campaign report.
type Metrics struct {
	Completed      bool    `json:"completed"`
	MakespanWeeks  float64 `json:"makespan_weeks"`
	Redundancy     float64 `json:"redundancy"`      // copies sent per distinct workunit
	UsefulFraction float64 `json:"useful_fraction"` // distinct completions per received result
	AvgVFTPWhole   float64 `json:"avg_vftp_whole"`
	AvgVFTPFull    float64 `json:"avg_vftp_full"`
	TotalFactor    float64 `json:"total_factor"` // end-to-end CPU inflation
	CPUSeconds     float64 `json:"cpu_seconds"`
	PointsTotal    float64 `json:"points_total"` // §8 credit accounting
	DistinctWUs    int64   `json:"distinct_wus"`
}

// ExtractMetrics reduces a campaign report to sweep metrics.
func ExtractMetrics(rep *project.Report) Metrics {
	return Metrics{
		Completed:      rep.Completed,
		MakespanWeeks:  rep.WeeksElapsed,
		Redundancy:     rep.ServerStats.RedundancyFactor(),
		UsefulFraction: rep.ServerStats.UsefulFraction(),
		AvgVFTPWhole:   rep.AvgVFTPWhole,
		AvgVFTPFull:    rep.AvgVFTPFullPower,
		TotalFactor:    rep.TotalFactor(),
		CPUSeconds:     rep.ServerStats.CPUSeconds,
		PointsTotal:    rep.PointsTotal,
		DistinctWUs:    rep.DistinctWUs,
	}
}

// RunResult is one completed (scenario, replication) cell of a sweep. Seed,
// Scale and HHours record the sweep parameters the cell ran under so a
// checkpoint from a differently-parameterized sweep is never reused.
type RunResult struct {
	Scenario string  `json:"scenario"`
	Rep      int     `json:"rep"`
	Seed     uint64  `json:"seed"`
	Scale    float64 `json:"scale"`
	HHours   float64 `json:"h_hours"`
	Metrics  Metrics `json:"metrics"`
}

// Key identifies a sweep cell for checkpoint resume.
type Key struct {
	Scenario string
	Rep      int
}

// Progress is delivered to the Options.Progress callback after every cell,
// from the goroutine that finished it.
type Progress struct {
	Done    int // cells finished so far (resumed ones included)
	Total   int // cells in the sweep
	Resumed bool
	Result  RunResult

	// Live telemetry (wall clock, not sim time).
	WallSeconds float64 // this cell's simulation wall time (0 if resumed)
	CellsPerSec float64 // finished cells per wall second so far
	ETASeconds  float64 // projected seconds to sweep completion
}

// Options parameterizes a sweep.
type Options struct {
	// Base is the already-scaled campaign configuration each scenario
	// mutates a copy of. Its DS and M are shared read-only across workers.
	Base project.Config

	Scenarios []Scenario
	Reps      int // replications per scenario (≥ 1)

	// Workers bounds the goroutine pool; 0 means GOMAXPROCS.
	Workers int

	// Shards selects the sharded campaign kernel for every cell (0 = the
	// legacy single-heap kernel). The shard count never changes simulation
	// results — sharded runs are byte-identical to sequential and legacy
	// ones — so it is not part of the checkpoint key and checkpointed
	// cells from a differently-sharded sweep stay valid.
	Shards int

	// BaseSeed is mixed with the scenario and replication indexes to derive
	// each run's seed; 0 falls back to Base.Seed.
	BaseSeed uint64

	// Checkpoint, when non-nil, is consulted before each cell (completed
	// cells are skipped) and receives every freshly completed cell.
	Checkpoint *Checkpoint

	// Progress, when non-nil, is called after every cell. Calls are
	// serialized by the runner's internal lock.
	Progress func(Progress)

	// MetricsSink / TraceSink, when non-nil, attach a pooled obs probe to
	// every cell: each worker owns a registry and trace (re-tagged with
	// scenario/rep per cell) and exports to these shared, mutex-guarded
	// sinks. Probes are run-neutral, so instrumented cells produce the
	// same Metrics as bare ones.
	MetricsSink *obs.Sink
	TraceSink   *obs.Sink
	// SampleEvery is the metrics sampling cadence in sim seconds
	// (0 = obs.DefaultSampleEvery).
	SampleEvery float64
}

// Sweep is a completed sweep: every cell result in deterministic
// (scenario, replication) order plus the per-scenario aggregates.
type Sweep struct {
	Results    []RunResult `json:"results"`
	Aggregates []Aggregate `json:"aggregates"`
	Resumed    int         `json:"resumed"` // cells satisfied from the checkpoint
}

// DeriveSeed mixes the sweep base seed with a cell's scenario and
// replication indexes into an independent per-run seed. The derivation
// depends only on these three values, so a cell's simulation is identical
// no matter which worker runs it or in which order.
func DeriveSeed(base uint64, scenario, rep int) uint64 {
	const goldenGamma = 0x9e3779b97f4a7c15
	const mixGamma = 0xbf58476d1ce4e5b9
	return rng.New(base ^ uint64(scenario+1)*goldenGamma ^ uint64(rep+1)*mixGamma).Uint64()
}

// Run executes the sweep: Scenarios × Reps campaign simulations fanned out
// over a bounded worker pool. Each simulation is single-threaded and
// deterministic in its derived seed; only scheduling is concurrent, so the
// returned results and aggregates are independent of Workers. Cancelling
// ctx stops handing out new cells (in-flight simulations finish) and Run
// returns the context error alongside the partial sweep.
func Run(ctx context.Context, opts Options) (*Sweep, error) {
	if opts.Base.DS == nil || opts.Base.M == nil {
		return nil, fmt.Errorf("experiment: Options.Base needs dataset and matrix")
	}
	if len(opts.Scenarios) == 0 {
		return nil, fmt.Errorf("experiment: no scenarios selected")
	}
	if opts.Reps < 1 {
		return nil, fmt.Errorf("experiment: Reps must be ≥ 1, got %d", opts.Reps)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	baseSeed := opts.BaseSeed
	if baseSeed == 0 {
		baseSeed = opts.Base.Seed
	}

	type cell struct {
		scenIdx int
		rep     int
	}
	cells := make([]cell, 0, len(opts.Scenarios)*opts.Reps)
	for si := range opts.Scenarios {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{scenIdx: si, rep: r})
		}
	}
	total := len(cells)
	results := make([]RunResult, total)

	var (
		mu      sync.Mutex
		done    int
		resumed int
	)
	start := time.Now()
	finish := func(i int, res RunResult, fromCkpt bool, wall float64) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = res
		done++
		if fromCkpt {
			resumed++
		}
		if opts.Progress != nil {
			p := Progress{Done: done, Total: total, Resumed: fromCkpt, Result: res, WallSeconds: wall}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				p.CellsPerSec = float64(done) / elapsed
				p.ETASeconds = float64(total-done) / p.CellsPerSec
			}
			opts.Progress(p)
		}
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled run context per worker: the first cell builds the
			// slabs, heaps and host arrays, every later cell reuses them.
			// Runner reports are valid until the next Run call, which is
			// fine here: ExtractMetrics copies the scalars out immediately.
			runner := project.NewRunner()
			cp := newCellProbe(opts.MetricsSink, opts.TraceSink, opts.SampleEvery)
			for i := range jobs {
				c := cells[i]
				sc := opts.Scenarios[c.scenIdx]
				seed := DeriveSeed(baseSeed, c.scenIdx, c.rep)
				key := Key{Scenario: sc.Name, Rep: c.rep}
				if opts.Checkpoint != nil {
					if prev, ok := opts.Checkpoint.Lookup(key); ok &&
						prev.Seed == seed && prev.Scale == opts.Base.WorkScale &&
						prev.HHours == opts.Base.HHours {
						finish(i, prev, true, 0)
						continue
					}
				}
				cfg := opts.Base // shallow copy; DS and M stay shared read-only
				cfg.Seed = seed
				sc.Mutate(&cfg)
				cfg.Seed = seed // a mutator must not undo the derived seed
				if opts.Shards > 0 {
					cfg.Shards = opts.Shards // execution plan, not an experiment variable
				}
				cfg.Probe = cp.arm(sc.Name, c.rep)
				cellStart := time.Now()
				rep := runner.Run(cfg)
				wall := time.Since(cellStart).Seconds()
				cp.flush(sc.Name, c.rep)
				res := RunResult{
					Scenario: sc.Name,
					Rep:      c.rep,
					Seed:     seed,
					Scale:    opts.Base.WorkScale,
					HHours:   opts.Base.HHours,
					Metrics:  ExtractMetrics(rep),
				}
				if opts.Checkpoint != nil {
					opts.Checkpoint.Record(res)
				}
				finish(i, res, false, wall)
			}
		}()
	}

	var ctxErr error
dispatch:
	for i := range cells {
		select {
		case <-ctx.Done():
			ctxErr = ctx.Err()
			break dispatch
		case jobs <- i:
		}
	}
	close(jobs)
	wg.Wait()

	if ctxErr != nil {
		// Keep only the cells that actually finished, in order.
		partial := make([]RunResult, 0, done)
		for _, r := range results {
			if r.Scenario != "" {
				partial = append(partial, r)
			}
		}
		sw := &Sweep{Results: partial, Resumed: resumed}
		sw.Aggregates = Aggregated(orderedNames(opts.Scenarios), partial)
		return sw, ctxErr
	}
	sw := &Sweep{Results: results, Resumed: resumed}
	sw.Aggregates = Aggregated(orderedNames(opts.Scenarios), results)
	return sw, nil
}

func orderedNames(scenarios []Scenario) []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}
