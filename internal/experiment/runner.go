package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/project"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Metrics is the per-run outcome summary the sweep aggregates: the paper's
// headline quantities extracted from a campaign report.
type Metrics struct {
	Completed      bool    `json:"completed"`
	MakespanWeeks  float64 `json:"makespan_weeks"`
	Redundancy     float64 `json:"redundancy"`      // copies sent per distinct workunit
	UsefulFraction float64 `json:"useful_fraction"` // distinct completions per received result
	AvgVFTPWhole   float64 `json:"avg_vftp_whole"`
	AvgVFTPFull    float64 `json:"avg_vftp_full"`
	TotalFactor    float64 `json:"total_factor"` // end-to-end CPU inflation
	CPUSeconds     float64 `json:"cpu_seconds"`
	PointsTotal    float64 `json:"points_total"` // §8 credit accounting
	DistinctWUs    int64   `json:"distinct_wus"`

	// Fault-plane metrics, filled from Report.Faults. All zero — and
	// omitted from the JSON rendering — on fault-free runs, so pre-fault
	// checkpoint lines still match byte for byte.
	DowntimeHours   float64 `json:"downtime_hours,omitempty"`
	LostUploads     int64   `json:"lost_uploads,omitempty"`
	DroppedResults  int64   `json:"dropped_results,omitempty"`
	ChurnedHosts    int64   `json:"churned_hosts,omitempty"`
	MeanRecoverySec float64 `json:"mean_recovery_seconds,omitempty"`
}

// ExtractMetrics reduces a campaign report to sweep metrics.
func ExtractMetrics(rep *project.Report) Metrics {
	m := Metrics{
		Completed:      rep.Completed,
		MakespanWeeks:  rep.WeeksElapsed,
		Redundancy:     rep.ServerStats.RedundancyFactor(),
		UsefulFraction: rep.ServerStats.UsefulFraction(),
		AvgVFTPWhole:   rep.AvgVFTPWhole,
		AvgVFTPFull:    rep.AvgVFTPFullPower,
		TotalFactor:    rep.TotalFactor(),
		CPUSeconds:     rep.ServerStats.CPUSeconds,
		PointsTotal:    rep.PointsTotal,
		DistinctWUs:    rep.DistinctWUs,
	}
	if f := rep.Faults; f != nil {
		m.DowntimeHours = f.DowntimeSeconds / 3600
		m.LostUploads = f.LostUploads
		m.DroppedResults = f.DroppedResults
		m.ChurnedHosts = f.Departures
		m.MeanRecoverySec = f.MeanRecoverySeconds
	}
	return m
}

// RunResult is one completed (scenario, replication) cell of a sweep. Seed,
// Scale and HHours record the sweep parameters the cell ran under so a
// checkpoint from a differently-parameterized sweep is never reused.
type RunResult struct {
	Scenario string  `json:"scenario"`
	Rep      int     `json:"rep"`
	Seed     uint64  `json:"seed"`
	Scale    float64 `json:"scale"`
	HHours   float64 `json:"h_hours"`
	Metrics  Metrics `json:"metrics"`

	// Failed marks a cell whose simulation panicked twice (see Run's
	// per-cell isolation); Error carries the second panic message. Failed
	// cells are never checkpointed, so a resumed sweep retries them.
	Failed bool   `json:"failed,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Key identifies a sweep cell for checkpoint resume.
type Key struct {
	Scenario string
	Rep      int
}

// Progress is delivered to the Options.Progress callback after every cell,
// from the goroutine that finished it.
type Progress struct {
	Done    int // cells finished so far (resumed ones included)
	Total   int // cells in the sweep
	Resumed bool
	Result  RunResult

	// Live telemetry (wall clock, not sim time).
	WallSeconds float64 // this cell's simulation wall time (0 if resumed)
	CellsPerSec float64 // finished cells per wall second so far
	ETASeconds  float64 // projected seconds to sweep completion
}

// Options parameterizes a sweep.
type Options struct {
	// Base is the already-scaled campaign configuration each scenario
	// mutates a copy of. Its DS and M are shared read-only across workers.
	Base project.Config

	Scenarios []Scenario
	Reps      int // replications per scenario (≥ 1)

	// Workers bounds the goroutine pool; 0 means GOMAXPROCS.
	Workers int

	// Shards selects the sharded campaign kernel for every cell (0 = the
	// legacy single-heap kernel). The shard count never changes simulation
	// results — sharded runs are byte-identical to sequential and legacy
	// ones — so it is not part of the checkpoint key and checkpointed
	// cells from a differently-sharded sweep stay valid.
	Shards int

	// BaseSeed is mixed with the scenario and replication indexes to derive
	// each run's seed; 0 falls back to Base.Seed.
	BaseSeed uint64

	// Checkpoint, when non-nil, is consulted before each cell (completed
	// cells are skipped) and receives every freshly completed cell.
	Checkpoint *Checkpoint

	// Progress, when non-nil, is called after every cell. Calls are
	// serialized by the runner's internal lock.
	Progress func(Progress)

	// Fork enables prefix-shared execution: scenarios carrying a DivergesAt
	// hint are grouped per replication, the shared prefix of their common
	// trajectory runs once, and each cell forks from an in-memory snapshot
	// at its divergence time (the project.Runner fork path). Results and
	// aggregates are byte-identical to an unforked sweep — grouped
	// scenarios share one derived trajectory seed per replication in both
	// modes — only wall clock and the Sweep.Prefix* stats change. Grouped
	// cells run unprobed: MetricsSink/TraceSink samples are skipped for
	// them in fork mode.
	Fork bool

	// ForkWorkers bounds the per-group parallel fan-out in fork mode: when
	// a prefix group has more than one pending cell, the tree worker
	// materializes a portable snapshot of the shared prefix
	// (project.Runner.Materialize) and up to ForkWorkers-1 pool workers
	// adopt it into their own run contexts and race the group's suffixes
	// alongside the tree worker's own in-place forks. 0 or 1 keeps grouped
	// suffixes sequential on the tree worker. Results and aggregates are
	// byte-identical at every value — adoption is pinned to the in-place
	// fork path — so this is purely a wall-clock choice; values above
	// Workers are capped to it.
	ForkWorkers int

	// MetricsSink / TraceSink, when non-nil, attach a pooled obs probe to
	// every cell: each worker owns a registry and trace (re-tagged with
	// scenario/rep per cell) and exports to these shared, mutex-guarded
	// sinks. Probes are run-neutral, so instrumented cells produce the
	// same Metrics as bare ones.
	MetricsSink *obs.Sink
	TraceSink   *obs.Sink
	// SampleEvery is the metrics sampling cadence in sim seconds
	// (0 = obs.DefaultSampleEvery).
	SampleEvery float64
}

// Sweep is a completed sweep: every cell result in deterministic
// (scenario, replication) order plus the per-scenario aggregates.
type Sweep struct {
	Results    []RunResult `json:"results"`
	Aggregates []Aggregate `json:"aggregates"`
	Resumed    int         `json:"resumed"` // cells satisfied from the checkpoint

	// Failed holds the cells whose simulations panicked twice; they are
	// excluded from Results and Aggregates. Run also returns an error when
	// any cell lands here, so unnoticed partial sweeps cannot happen.
	Failed []RunResult `json:"failed,omitempty"`

	// Prefix-sharing statistics, filled only in fork mode. Excluded from
	// the JSON rendering so forked and unforked sweep files diff clean.
	PrefixGroups  int     `json:"-"` // snapshots taken across all prefix trees
	PrefixHits    int     `json:"-"` // cells satisfied by forking a snapshot
	SavedSimWeeks float64 `json:"-"` // sim-weeks not re-simulated thanks to sharing

	// Parallel fan-out statistics, filled only when fork mode runs with
	// ForkWorkers > 1 and at least one group actually fanned out. Excluded
	// from the JSON rendering like the prefix stats, so forked,
	// parallel-forked and unforked sweep files diff clean.
	SnapshotBytes     int     `json:"-"` // portable-snapshot bytes published, summed over groups
	SnapshotCaptureNS int64   `json:"-"` // wall time spent materializing snapshots
	SnapshotAdoptNS   int64   `json:"-"` // wall time spent adopting snapshots, summed over adopters
	AdoptedRunners    int     `json:"-"` // adopt-chunk jobs executed across all groups
	ForksParallel     int     `json:"-"` // cells forked on adopted runners
	ParallelSpeedup   float64 `json:"-"` // Σ fanned-out tree work / Σ tree wall span
}

// DeriveSeed mixes the sweep base seed with a cell's scenario and
// replication indexes into an independent per-run seed. The derivation
// depends only on these three values, so a cell's simulation is identical
// no matter which worker runs it or in which order.
func DeriveSeed(base uint64, scenario, rep int) uint64 {
	const goldenGamma = 0x9e3779b97f4a7c15
	const mixGamma = 0xbf58476d1ce4e5b9
	return rng.New(base ^ uint64(scenario+1)*goldenGamma ^ uint64(rep+1)*mixGamma).Uint64()
}

// Run executes the sweep: Scenarios × Reps campaign simulations fanned out
// over a bounded worker pool. Each simulation is single-threaded and
// deterministic in its derived seed; only scheduling is concurrent, so the
// returned results and aggregates are independent of Workers. Cancelling
// ctx stops handing out new cells (in-flight simulations finish) and Run
// returns the context error alongside the partial sweep.
func Run(ctx context.Context, opts Options) (*Sweep, error) {
	if opts.Base.DS == nil || opts.Base.M == nil {
		return nil, fmt.Errorf("experiment: Options.Base needs dataset and matrix")
	}
	if len(opts.Scenarios) == 0 {
		return nil, fmt.Errorf("experiment: no scenarios selected")
	}
	if opts.Reps < 1 {
		return nil, fmt.Errorf("experiment: Reps must be ≥ 1, got %d", opts.Reps)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	baseSeed := opts.BaseSeed
	if baseSeed == 0 {
		baseSeed = opts.Base.Seed
	}

	type cell struct {
		scenIdx int
		rep     int
	}
	cells := make([]cell, 0, len(opts.Scenarios)*opts.Reps)
	for si := range opts.Scenarios {
		for r := 0; r < opts.Reps; r++ {
			cells = append(cells, cell{scenIdx: si, rep: r})
		}
	}
	total := len(cells)
	results := make([]RunResult, total)

	// The prefix plan exists whether or not the sweep forks: grouped
	// scenarios (DivergesAt > 0) share one trajectory seed per replication
	// in both modes, so a forked sweep's results are byte-identical to an
	// unforked one and checkpoints transfer between the two.
	plan := planPrefix(opts.Scenarios)
	seedFor := func(scenIdx, rep int) uint64 {
		if plan != nil && opts.Scenarios[scenIdx].DivergesAt > 0 {
			scenIdx = plan.root
		}
		return DeriveSeed(baseSeed, scenIdx, rep)
	}

	// treeStat times one replication's fanned-out prefix tree for the
	// parallel-speedup estimate: cost sums the wall time of the tree
	// worker's walk and of every adopted chunk; the span runs from the
	// tree walk's start to its last finisher. Only trees that actually
	// fanned out get an entry.
	type treeStat struct {
		start, end time.Time
		cost       float64
	}
	var (
		mu           sync.Mutex
		done         int
		resumed      int
		prefixGroups int
		prefixHits   int
		savedWeeks   float64
		ctxSkipped   bool

		snapBytes int
		snapCapNS int64
		adoptNS   int64
		adopted   int
		forksPar  int
		treeStats = make(map[int]*treeStat)
	)
	start := time.Now()
	finish := func(i int, res RunResult, fromCkpt bool, wall float64) {
		mu.Lock()
		defer mu.Unlock()
		results[i] = res
		done++
		if fromCkpt {
			resumed++
		}
		if opts.Progress != nil {
			p := Progress{Done: done, Total: total, Resumed: fromCkpt, Result: res, WallSeconds: wall}
			if elapsed := time.Since(start).Seconds(); elapsed > 0 {
				p.CellsPerSec = float64(done) / elapsed
				p.ETASeconds = float64(total-done) / p.CellsPerSec
			}
			opts.Progress(p)
		}
	}

	// A job is one standalone cell (cell ≥ 0), one replication's prefix
	// tree (cell == -1, chunk == nil) — every grouped scenario of that
	// rep, run by forking snapshots off a single shared-prefix trajectory —
	// or one adopted chunk of a fanned-out prefix group (chunk != nil): a
	// slice of a group's cells raced on another worker's runner via
	// portable-snapshot adoption.
	type adoptChunk struct {
		ps    *project.PortableSnapshot
		at    sim.Time
		seed  uint64
		rep   int
		cells []int
	}
	type job struct {
		cell  int
		rep   int
		chunk *adoptChunk
	}
	forkWorkers := opts.ForkWorkers
	if forkWorkers > workers {
		forkWorkers = workers
	}
	var jobList []job
	forking := opts.Fork && plan != nil
	if forking {
		// Tree jobs first: they are the largest units of work, so handing
		// them out before the standalone cells balances the worker pool.
		for r := 0; r < opts.Reps; r++ {
			jobList = append(jobList, job{cell: -1, rep: r})
		}
		inTree := make([]bool, len(opts.Scenarios))
		for _, si := range plan.cells() {
			inTree[si] = true
		}
		for i, c := range cells {
			if !inTree[c.scenIdx] {
				jobList = append(jobList, job{cell: i})
			}
		}
	} else {
		for i := range cells {
			jobList = append(jobList, job{cell: i})
		}
	}

	// The job queue is dynamic: tree jobs enqueue adopt-chunk jobs as their
	// groups fan out. The channel is buffered for the worst-case job count
	// so enqueuing from a worker never blocks, and a WaitGroup-driven
	// closer ends the range loops once every job — late-enqueued chunks
	// included — has drained.
	capN := len(jobList)
	if forking && forkWorkers > 1 {
		capN += opts.Reps * len(plan.groups) * forkWorkers
	}
	jobs := make(chan job, capN)
	var pending sync.WaitGroup
	enqueue := func(j job) {
		pending.Add(1)
		jobs <- j
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One pooled run context per worker: the first cell builds the
			// slabs, heaps and host arrays, every later cell reuses them.
			// Runner reports are valid until the next Run call, which is
			// fine here: ExtractMetrics copies the scalars out immediately.
			runner := project.NewRunner()
			cp := newCellProbe(opts.MetricsSink, opts.TraceSink, opts.SampleEvery)

			// ckptHit finishes cell i from the checkpoint when its recorded
			// parameters match the current sweep.
			ckptHit := func(i int, sc Scenario, seed uint64) bool {
				if opts.Checkpoint == nil {
					return false
				}
				prev, ok := opts.Checkpoint.Lookup(Key{Scenario: sc.Name, Rep: cells[i].rep})
				if !ok || prev.Seed != seed || prev.Scale != opts.Base.WorkScale ||
					prev.HHours != opts.Base.HHours {
					return false
				}
				finish(i, prev, true, 0)
				return true
			}

			runStandalone := func(i int) {
				c := cells[i]
				sc := opts.Scenarios[c.scenIdx]
				seed := seedFor(c.scenIdx, c.rep)
				if ckptHit(i, sc, seed) {
					return
				}
				cellStart := time.Now()
				rep, panicMsg := runCell(runner, &opts, sc, c.rep, seed, cp.arm(sc.Name, c.rep))
				if rep == nil {
					// The panic may have left the pooled run context mid-run
					// and inconsistent; rebuild it and retry the cell once on
					// fresh arenas.
					runner = project.NewRunner()
					rep, panicMsg = runCell(runner, &opts, sc, c.rep, seed, cp.arm(sc.Name, c.rep))
					if rep == nil {
						runner = project.NewRunner() // don't poison later cells
					}
				}
				wall := time.Since(cellStart).Seconds()
				cp.flush(sc.Name, c.rep)
				res := RunResult{
					Scenario: sc.Name,
					Rep:      c.rep,
					Seed:     seed,
					Scale:    opts.Base.WorkScale,
					HHours:   opts.Base.HHours,
				}
				if rep != nil {
					res.Metrics = ExtractMetrics(rep)
					if opts.Checkpoint != nil {
						opts.Checkpoint.Record(res)
					}
				} else {
					res.Failed = true
					res.Error = panicMsg
				}
				finish(i, res, false, wall)
			}

			// runChunk adopts a published prefix snapshot into this worker's
			// pooled runner and forks its slice of the group's cells — the
			// receiving half of a fanned-out prefix group. A panic (in
			// adoption or a fork) rebuilds the runner and reruns the chunk's
			// unfinished cells standalone, exactly like the tree fallback.
			runChunk := func(ch *adoptChunk) {
				chunkStart := time.Now()
				chunkDone := make(map[int]bool)
				ok := func() (ok bool) {
					defer func() {
						if p := recover(); p != nil {
							ok = false
						}
					}()
					adoptStart := time.Now()
					runner.AdoptSnapshot(ch.ps)
					adoptDur := time.Since(adoptStart)
					runner.Snapshot()
					var nHits int
					var saved float64
					for _, ci := range ch.cells {
						c := cells[ci]
						sc := opts.Scenarios[c.scenIdx]
						cellStart := time.Now()
						rp := runner.Fork(cellConfig(&opts, sc, ch.seed, nil))
						wall := time.Since(cellStart).Seconds()
						res := RunResult{
							Scenario: sc.Name,
							Rep:      c.rep,
							Seed:     ch.seed,
							Scale:    opts.Base.WorkScale,
							HHours:   opts.Base.HHours,
							Metrics:  ExtractMetrics(rp),
						}
						if opts.Checkpoint != nil {
							opts.Checkpoint.Record(res)
						}
						chunkDone[ci] = true
						nHits++
						saved += float64(ch.at) / float64(sim.Week)
						finish(ci, res, false, wall)
					}
					mu.Lock()
					prefixHits += nHits
					savedWeeks += saved
					adopted++
					adoptNS += adoptDur.Nanoseconds()
					forksPar += nHits
					mu.Unlock()
					return true
				}()
				mu.Lock()
				if st := treeStats[ch.rep]; st != nil {
					st.cost += time.Since(chunkStart).Seconds()
					if t := time.Now(); t.After(st.end) {
						st.end = t
					}
				}
				mu.Unlock()
				if !ok {
					runner = project.NewRunner()
					for _, ci := range ch.cells {
						if !chunkDone[ci] {
							runStandalone(ci)
						}
					}
				}
			}

			// runTree walks one replication's prefix tree. Cells already in
			// the checkpoint are finished as resumed before the walk; cells
			// the walk forks are tracked in treeDone so the panic fallback
			// reruns only the unfinished remainder standalone, and cells
			// handed off to adopt chunks are excluded from it (their chunk
			// finishes them independently).
			runTree := func(rep int) {
				treeSeed := DeriveSeed(baseSeed, plan.root, rep)
				type pendingGroup struct {
					at    sim.Time
					cells []int
				}
				var groups []pendingGroup
				for _, g := range plan.groups {
					pg := pendingGroup{at: g.at}
					for _, si := range g.scens {
						ci := si*opts.Reps + rep
						if !ckptHit(ci, opts.Scenarios[si], treeSeed) {
							pg.cells = append(pg.cells, ci)
						}
					}
					if len(pg.cells) > 0 {
						groups = append(groups, pg)
					}
				}
				if len(groups) == 0 {
					return // the whole tree resumed from the checkpoint
				}
				treeDone := make(map[int]bool)
				handedOff := make(map[int]bool)
				treeStart := time.Now()
				ok := func() (ok bool) {
					defer func() {
						if p := recover(); p != nil {
							ok = false
						}
					}()
					var nGroups, nHits int
					var saved float64
					baseCfg := opts.Base
					baseCfg.Seed = treeSeed
					if opts.Shards > 0 {
						baseCfg.Shards = opts.Shards
					}
					baseCfg.Probe = nil // forked cells run unprobed
					runner.Begin(baseCfg)
					for gi, g := range groups {
						runner.RunTo(g.at)
						mine := g.cells
						// Fan the group's suffixes out: materialize the
						// shared prefix once, hand every chunk but the first
						// to the pool for snapshot adoption, and keep the
						// first for the in-place fork path below. A context
						// that cannot be made portable (Materialize error)
						// runs the whole group sequentially here instead.
						if n := min(forkWorkers, len(g.cells)); n > 1 {
							capStart := time.Now()
							ps, err := runner.Materialize()
							capDur := time.Since(capStart)
							if err == nil {
								mu.Lock()
								snapBytes += ps.Bytes()
								snapCapNS += capDur.Nanoseconds()
								if treeStats[rep] == nil {
									treeStats[rep] = &treeStat{start: treeStart}
								}
								mu.Unlock()
								per := (len(g.cells) + n - 1) / n
								mine = g.cells[:per]
								for lo := per; lo < len(g.cells); lo += per {
									hi := min(lo+per, len(g.cells))
									ch := &adoptChunk{ps: ps, at: g.at, seed: treeSeed, rep: rep, cells: g.cells[lo:hi]}
									for _, ci := range ch.cells {
										handedOff[ci] = true
									}
									enqueue(job{cell: -1, chunk: ch})
								}
							}
						}
						runner.Snapshot()
						nGroups++
						for _, ci := range mine {
							c := cells[ci]
							sc := opts.Scenarios[c.scenIdx]
							cellStart := time.Now()
							rp := runner.Fork(cellConfig(&opts, sc, treeSeed, nil))
							wall := time.Since(cellStart).Seconds()
							res := RunResult{
								Scenario: sc.Name,
								Rep:      c.rep,
								Seed:     treeSeed,
								Scale:    opts.Base.WorkScale,
								HHours:   opts.Base.HHours,
								Metrics:  ExtractMetrics(rp),
							}
							if opts.Checkpoint != nil {
								opts.Checkpoint.Record(res)
							}
							treeDone[ci] = true
							nHits++
							saved += float64(g.at) / float64(sim.Week)
							finish(ci, res, false, wall)
						}
						if gi < len(groups)-1 {
							runner.Restore()
						}
					}
					// The shared prefix itself was simulated once, to the
					// deepest divergence point.
					saved -= float64(groups[len(groups)-1].at) / float64(sim.Week)
					mu.Lock()
					prefixGroups += nGroups
					prefixHits += nHits
					savedWeeks += saved
					mu.Unlock()
					return true
				}()
				mu.Lock()
				if st := treeStats[rep]; st != nil {
					st.cost += time.Since(treeStart).Seconds()
					if t := time.Now(); t.After(st.end) {
						st.end = t
					}
				}
				mu.Unlock()
				if !ok {
					// The panic may have left the pooled context mid-run and
					// inconsistent; rebuild it and run the unfinished cells
					// standalone (same seed, so results are unchanged).
					runner = project.NewRunner()
					for _, g := range groups {
						for _, ci := range g.cells {
							if !treeDone[ci] && !handedOff[ci] {
								runStandalone(ci)
							}
						}
					}
				}
			}

			for j := range jobs {
				if ctx.Err() != nil {
					// Cancelled: drain the queue without running anything
					// more; in-flight jobs on other workers finish.
					mu.Lock()
					ctxSkipped = true
					mu.Unlock()
				} else {
					switch {
					case j.chunk != nil:
						runChunk(j.chunk)
					case j.cell >= 0:
						runStandalone(j.cell)
					default:
						runTree(j.rep)
					}
				}
				pending.Done()
			}
		}()
	}

	// The queue is buffered for every job that can exist (jobList plus the
	// worst-case adopt-chunk fan-out), so enqueue never blocks: workers can
	// publish chunks from inside a job without deadlocking on the channel.
	// Close once all enqueued work — including chunks enqueued later — is
	// done.
	for _, j := range jobList {
		enqueue(j)
	}
	go func() {
		pending.Wait()
		close(jobs)
	}()
	wg.Wait()

	var ctxErr error
	if ctxSkipped {
		ctxErr = ctx.Err()
	}

	// Assemble in deterministic cell order, splitting out never-dispatched
	// cells (cancelled sweeps) and twice-panicked ones.
	finished := make([]RunResult, 0, done)
	var failed []RunResult
	for _, r := range results {
		switch {
		case r.Scenario == "": // never dispatched
		case r.Failed:
			failed = append(failed, r)
		default:
			finished = append(finished, r)
		}
	}
	sw := &Sweep{
		Results: finished, Failed: failed, Resumed: resumed,
		PrefixGroups: prefixGroups, PrefixHits: prefixHits, SavedSimWeeks: savedWeeks,
		SnapshotBytes: snapBytes, SnapshotCaptureNS: snapCapNS, SnapshotAdoptNS: adoptNS,
		AdoptedRunners: adopted, ForksParallel: forksPar,
	}
	var cost, span float64
	for _, st := range treeStats {
		cost += st.cost
		span += st.end.Sub(st.start).Seconds()
	}
	if span > 0 {
		sw.ParallelSpeedup = cost / span
	}
	sw.Aggregates = Aggregated(orderedNames(opts.Scenarios), finished)
	if ctxErr != nil {
		return sw, ctxErr
	}
	if len(failed) > 0 {
		f := failed[0]
		return sw, fmt.Errorf("experiment: %d of %d cells failed after a retry (first: %s rep %d: %s)",
			len(failed), total, f.Scenario, f.Rep, f.Error)
	}
	return sw, nil
}

// cellConfig builds the campaign configuration for one sweep cell: a copy
// of Base with the derived seed pinned across the scenario mutation, the
// sweep's shard plan, and the cell's probe (nil for forked cells).
func cellConfig(opts *Options, sc Scenario, seed uint64, probe *obs.Probe) project.Config {
	cfg := opts.Base // shallow copy; DS and M stay shared read-only
	cfg.Seed = seed
	sc.Mutate(&cfg)
	cfg.Seed = seed // a mutator must not undo the derived seed
	if opts.Shards > 0 {
		cfg.Shards = opts.Shards // execution plan, not an experiment variable
	}
	cfg.Probe = probe
	return cfg
}

// runCell runs one sweep cell — scenario mutation included — converting a
// panic anywhere in it into a nil report plus the panic message, so one
// poisoned cell cannot take down the worker (and with it the whole sweep).
func runCell(runner *project.Runner, opts *Options, sc Scenario, rep int, seed uint64, probe *obs.Probe) (r *project.Report, panicMsg string) {
	defer func() {
		if p := recover(); p != nil {
			r, panicMsg = nil, fmt.Sprint(p)
		}
	}()
	return runner.Run(cellConfig(opts, sc, seed, probe)), ""
}

func orderedNames(scenarios []Scenario) []string {
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		names[i] = s.Name
	}
	return names
}
