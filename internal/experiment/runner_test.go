package experiment

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/project"
	"repro/internal/protein"
)

// testBase returns a tiny, fast campaign configuration: 10 proteins with a
// sub-sampled grid population, finishing in well under a second per run.
func testBase(t *testing.T) project.Config {
	t.Helper()
	ds := protein.Generate(10, 31)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 32})
	cfg := project.DefaultConfig(ds, m)
	cfg.WorkScale = 0.3
	cfg.HostScale = 0.002
	cfg.Seed = 1234
	return cfg
}

func testScenarios() []Scenario {
	quorum1, _ := Lookup("quorum-1")
	return []Scenario{
		{Name: "base", Description: "no-op", Mutate: func(*project.Config) {}},
		quorum1,
		{Name: "slow", Description: "coarse workunits", Mutate: func(cfg *project.Config) { cfg.HHours = 8 }},
	}
}

func TestSweepIdenticalAcrossWorkerCounts(t *testing.T) {
	run := func(workers int) *Sweep {
		sw, err := Run(context.Background(), Options{
			Base:      testBase(t),
			Scenarios: testScenarios(),
			Reps:      3,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial.Results, parallel.Results) {
		t.Fatal("per-run results differ between -workers=1 and -workers=8")
	}
	if !reflect.DeepEqual(serial.Aggregates, parallel.Aggregates) {
		t.Fatal("aggregates differ between -workers=1 and -workers=8")
	}
	if len(serial.Results) != 9 {
		t.Fatalf("expected 9 cells, got %d", len(serial.Results))
	}
	// Cells are reported in deterministic (scenario, rep) order.
	for i, r := range serial.Results {
		if want := testScenarios()[i/3].Name; r.Scenario != want || r.Rep != i%3 {
			t.Fatalf("cell %d = (%s, %d), want (%s, %d)", i, r.Scenario, r.Rep, want, i%3)
		}
	}
}

// TestPolicyScenariosWorkerIndependent pins the policy layer's
// determinism guarantee at the sweep level: scenarios that change the
// dispatch mechanism, the validation regime or the host cohorts (diurnal
// phases included) produce identical results whether the sweep runs on
// one worker or eight — nothing in the policy state may be shared across
// runs.
func TestPolicyScenariosWorkerIndependent(t *testing.T) {
	var scenarios []Scenario
	for _, name := range []string{"lifo-dispatch", "random-dispatch", "batch-priority",
		"adaptive-replication", "saboteurs-5pct", "deadline-2class", "diurnal-hosts"} {
		s, ok := Lookup(name)
		if !ok {
			t.Fatalf("catalog lost scenario %q", name)
		}
		scenarios = append(scenarios, s)
	}
	run := func(workers int) *Sweep {
		sw, err := Run(context.Background(), Options{
			Base:      testBase(t),
			Scenarios: scenarios,
			Reps:      2,
			Workers:   workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sw
	}
	serial := run(1)
	parallel := run(8)
	if !reflect.DeepEqual(serial.Results, parallel.Results) {
		t.Fatal("policy-scenario results differ between -workers=1 and -workers=8")
	}
	for _, r := range serial.Results {
		if r.Metrics.MakespanWeeks <= 0 || r.Metrics.DistinctWUs == 0 {
			t.Fatalf("degenerate cell %+v", r)
		}
	}
}

func TestSweepCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.ckpt.jsonl")
	base := testBase(t)
	opts := Options{Base: base, Scenarios: testScenarios(), Reps: 2, Workers: 2}

	ckpt, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = ckpt
	first, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if first.Resumed != 0 {
		t.Fatalf("fresh sweep resumed %d cells", first.Resumed)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	ckpt2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if ckpt2.Len() != len(first.Results) {
		t.Fatalf("checkpoint reloaded %d cells, want %d", ckpt2.Len(), len(first.Results))
	}
	opts.Checkpoint = ckpt2
	second, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if second.Resumed != len(first.Results) {
		t.Fatalf("resumed %d cells, want all %d", second.Resumed, len(first.Results))
	}
	if !reflect.DeepEqual(first.Results, second.Results) {
		t.Fatal("resumed sweep changed the results")
	}

	// A different base seed invalidates the recorded cells: nothing resumes.
	opts.BaseSeed = 999
	third, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if third.Resumed != 0 {
		t.Fatalf("checkpoint with stale seeds resumed %d cells", third.Resumed)
	}

	// So does a different workunit duration at the same seed.
	opts.BaseSeed = 0
	opts.Base.HHours = base.HHours * 2
	fourth, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if fourth.Resumed != 0 {
		t.Fatalf("checkpoint with stale HHours resumed %d cells", fourth.Resumed)
	}
}

func TestCheckpointSurvivesTornLine(t *testing.T) {
	path := filepath.Join(t.TempDir(), "torn.ckpt.jsonl")
	opts := Options{Base: testBase(t), Scenarios: testScenarios(), Reps: 1, Workers: 1}

	ckpt, err := OpenCheckpoint(path, false)
	if err != nil {
		t.Fatal(err)
	}
	opts.Checkpoint = ckpt
	first, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a kill mid-write: a torn line in the middle of the file,
	// with intact lines appended after it by a later resumed sweep.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("expected ≥3 checkpoint lines, got %d", len(lines))
	}
	corrupt := append([]byte{}, lines[0]...)
	corrupt = append(corrupt, []byte("{\"torn\n")...)
	for _, l := range lines[1:] {
		corrupt = append(corrupt, l...)
	}
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	ckpt2, err := OpenCheckpoint(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer ckpt2.Close()
	if ckpt2.Len() != len(first.Results) {
		t.Fatalf("torn line dropped intact cells: loaded %d, want %d", ckpt2.Len(), len(first.Results))
	}
}

func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: no cell should be dispatched
	sw, err := Run(ctx, Options{Base: testBase(t), Scenarios: testScenarios(), Reps: 2, Workers: 2})
	if err == nil {
		t.Fatal("expected context error")
	}
	if len(sw.Results) != 0 {
		t.Fatalf("cancelled-before-start sweep ran %d cells", len(sw.Results))
	}
}

func TestRunValidation(t *testing.T) {
	base := testBase(t)
	if _, err := Run(context.Background(), Options{Scenarios: testScenarios(), Reps: 1}); err == nil {
		t.Fatal("expected error for missing base config")
	}
	if _, err := Run(context.Background(), Options{Base: base, Reps: 1}); err == nil {
		t.Fatal("expected error for empty scenario list")
	}
	if _, err := Run(context.Background(), Options{Base: base, Scenarios: testScenarios(), Reps: 0}); err == nil {
		t.Fatal("expected error for zero reps")
	}
}

func TestEstimateCI(t *testing.T) {
	c := EstimateCI([]float64{2, 4, 6})
	if c.Mean != 4 {
		t.Fatalf("mean = %v", c.Mean)
	}
	if math.Abs(c.Std-2) > 1e-12 {
		t.Fatalf("sample std = %v, want 2", c.Std)
	}
	if math.Abs(c.Half-1.96*2/math.Sqrt(3)) > 1e-12 {
		t.Fatalf("ci half-width = %v", c.Half)
	}
	if one := EstimateCI([]float64{5}); one.Mean != 5 || one.Std != 0 || one.Half != 0 {
		t.Fatalf("single-sample CI = %+v", one)
	}
	if empty := EstimateCI(nil); !math.IsNaN(empty.Mean) {
		t.Fatalf("empty CI = %+v", empty)
	}
}

func TestAggregateAndRendering(t *testing.T) {
	sw, err := Run(context.Background(), Options{
		Base:      testBase(t),
		Scenarios: testScenarios(),
		Reps:      2,
		Workers:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Aggregates) != 3 {
		t.Fatalf("aggregates = %d, want 3", len(sw.Aggregates))
	}
	for _, a := range sw.Aggregates {
		if a.Reps != 2 {
			t.Fatalf("%s: reps = %d", a.Scenario, a.Reps)
		}
		if a.Makespan.Mean <= 0 || math.IsNaN(a.Makespan.Mean) {
			t.Fatalf("%s: makespan = %+v", a.Scenario, a.Makespan)
		}
		if a.Redundancy.Mean < 1 {
			t.Fatalf("%s: redundancy = %+v", a.Scenario, a.Redundancy)
		}
		if a.Useful.Mean <= 0 || a.Useful.Mean > 1 {
			t.Fatalf("%s: useful fraction = %+v", a.Scenario, a.Useful)
		}
	}
	rendered := Table(sw.Aggregates).String()
	for _, sc := range testScenarios() {
		if !strings.Contains(rendered, sc.Name) {
			t.Fatalf("rendered table misses scenario %s:\n%s", sc.Name, rendered)
		}
	}
	var csv strings.Builder
	if err := WriteCSV(&csv, sw.Aggregates); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv has %d lines, want header + 3 rows:\n%s", len(lines), csv.String())
	}
	wantCols := strings.Count(lines[0], ",")
	for i, l := range lines {
		if strings.Count(l, ",") != wantCols {
			t.Fatalf("csv line %d has ragged columns:\n%s", i, csv.String())
		}
	}
}
