// Package experiment turns the repository from "replays the paper" into a
// design-space explorer: named what-if scenarios over the campaign
// configuration, a bounded worker pool that fans scenario × replication runs
// out across the machine's cores, cross-replication statistics with 95 %
// confidence intervals, and JSON checkpointing so an interrupted sweep
// resumes where it stopped.
//
// Each discrete-event run stays single-threaded and bit-for-bit
// deterministic in its derived seed; parallelism is only across runs, so a
// sweep's aggregates are identical whether it ran on one worker or sixteen.
package experiment

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/faults"
	"repro/internal/project"
	"repro/internal/sim"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// Scenario is one named point of the design space: a description and a
// mutation applied to the base campaign configuration. Mutators must be
// pure functions of the config (no captured mutable state): the runner
// applies them concurrently to per-run config copies.
type Scenario struct {
	Name        string
	Description string
	Mutate      func(cfg *project.Config)

	// DivergesAt, when positive, is the earliest sim time at which the
	// mutated configuration's behavior can differ from the base config's:
	// before it, every lazily-read knob the mutation touches (the phase
	// schedule sampled at weekly ticks, the grid model, the quorum in
	// force) evaluates identically. The sweep runner uses it to build a
	// prefix tree: all DivergesAt > 0 scenarios of one replication share a
	// single trajectory (and trajectory seed), the common prefix runs
	// once, and each cell forks from an in-memory snapshot at its
	// divergence time. Zero — the default — means the scenario diverges
	// at t = 0 (bind-time mutation) and always runs standalone.
	// TestDivergesAtHints pins the hints against the mutators.
	DivergesAt sim.Time
}

// Catalog returns the built-in scenario catalog: the paper's ablations
// (launch order, quorum regime, deadline, packaging, phase schedule, grid
// growth, phase II plan) plus the policy-layer scenarios that swap whole
// mechanisms — dispatch order, adaptive replication, deadline classes,
// saboteur and diurnal host cohorts — and the fault-plane scenarios that
// stress graceful degradation under outages, flaky uplinks, and churn.
// The order is the canonical presentation order of sweep reports.
func Catalog() []Scenario {
	return []Scenario{
		{
			Name:        "baseline",
			Description: "production deployment: cheapest-first, quorum 2→1 at week 14, 8d deadline, 3.7h workunits",
			Mutate:      func(*project.Config) {},
		},
		{
			Name:        "costliest-first",
			Description: "adversarial launch order: most expensive receptor batches released first",
			Mutate:      func(cfg *project.Config) { cfg.Order = project.CostliestFirst },
		},
		{
			Name:        "random-order",
			Description: "launch order scrambled by the run seed",
			Mutate:      func(cfg *project.Config) { cfg.Order = project.RandomOrder },
		},
		{
			Name:        "quorum-1",
			Description: "value-checked single results from day one (no comparison validation period)",
			Mutate: func(cfg *project.Config) {
				cfg.Server.InitialQuorum = 1
				cfg.Server.SteadyQuorum = 1
				cfg.Server.QuorumSwitchTime = 0
			},
		},
		{
			Name:        "quorum-2",
			Description: "comparison validation for the whole campaign (the switch to quorum 1 never happens)",
			Mutate: func(cfg *project.Config) {
				cfg.Server.InitialQuorum = 2
				cfg.Server.SteadyQuorum = 2
				cfg.Server.QuorumSwitchTime = 0
			},
			// Quorum 2 is already in force until the default switch at week
			// 14; removing the switch first matters there.
			DivergesAt: 14 * sim.Week,
		},
		{
			Name:        "late-quorum-switch",
			Description: "cautious project: the quorum 2→1 switch waits until week 22",
			Mutate:      func(cfg *project.Config) { cfg.Server.QuorumSwitchTime = 22 * sim.Week },
			// Identical to the base until the default switch would have
			// fired at week 14.
			DivergesAt: 14 * sim.Week,
		},
		{
			Name:        "deadline-4d",
			Description: "aggressive 4-day return deadline (more reissues, fewer stragglers)",
			Mutate:      func(cfg *project.Config) { cfg.Server.Deadline = 4 * sim.Day },
		},
		{
			Name:        "deadline-16d",
			Description: "lenient 16-day return deadline (fewer reissues, longer tail)",
			Mutate:      func(cfg *project.Config) { cfg.Server.Deadline = 16 * sim.Day },
		},
		{
			Name:        "wu-1h",
			Description: "fine packaging: 1-hour reference workunits (§4.2 sweep, low end)",
			Mutate:      func(cfg *project.Config) { cfg.HHours = 1 },
		},
		{
			Name:        "wu-10h",
			Description: "coarse packaging: 10-hour reference workunits (§4.2 sweep, high end)",
			Mutate:      func(cfg *project.Config) { cfg.HHours = 10 },
		},
		{
			Name:        "no-control-phase",
			Description: "full project priority from day one: no low-priority control period, half-week ramp",
			Mutate: func(cfg *project.Config) {
				cfg.ControlWeeks = 0
				cfg.RampWeeks = 0.5
			},
			// Share(0) is ControlShare under both schedules (the half-week
			// ramp starts at zero); the first differing weekly tick is w=1.
			DivergesAt: 1 * sim.Week,
		},
		{
			Name:        "slow-ramp",
			Description: "conservative schedule: 8-week control period then a 10-week prioritization ramp",
			Mutate: func(cfg *project.Config) {
				cfg.ControlWeeks = 8
				cfg.RampWeeks = 10
			},
			// The control period is unchanged and Share(8) sits at the ramp
			// start under both; the ramps first differ at the week-9 tick.
			DivergesAt: 9 * sim.Week,
		},
		{
			Name:        "grid-static",
			Description: "pessimistic grid: the World Community Grid stops growing at campaign start",
			Mutate: func(cfg *project.Config) {
				cfg.Grid.BaseVFTP = cfg.Grid.VFTPAt(project.CampaignStartWeek)
				cfg.Grid.GrowthPerWeek = 0
			},
			// The frozen grid equals the growing one at campaign start by
			// construction; the first differing weekly tick is w=1.
			DivergesAt: 1 * sim.Week,
		},
		{
			Name:        "grid-boom",
			Description: "optimistic grid: member recruitment doubles the weekly VFTP growth",
			Mutate:      func(cfg *project.Config) { cfg.Grid.GrowthPerWeek *= 2 },
		},
		{
			Name:        "half-share",
			Description: "the project only ever secures half the production grid share",
			Mutate: func(cfg *project.Config) {
				cfg.ControlShare /= 2
				cfg.FullShare /= 2
				cfg.MaxWeeks *= 2
			},
		},
		// --- Policy scenarios: vary the middleware mechanisms, not just
		// their parameters (the wcg policy layer). ---
		{
			Name:        "lifo-dispatch",
			Description: "stack dispatch: the newest queued workunit goes out first, starving the oldest batches",
			Mutate:      func(cfg *project.Config) { cfg.Server.Scheduler = wcg.LIFOScheduler{} },
		},
		{
			Name:        "random-dispatch",
			Description: "uniform-random dispatch over the queued workunits, seeded from the run seed",
			Mutate: func(cfg *project.Config) {
				cfg.Server.Scheduler = wcg.RandomScheduler{Seed: cfg.Seed + 17}
			},
		},
		{
			Name:        "batch-priority",
			Description: "strict batch seniority: finish the earliest-released receptor batch before issuing newer work",
			Mutate:      func(cfg *project.Config) { cfg.Server.Scheduler = wcg.BatchPriorityScheduler{} },
		},
		{
			Name:        "adaptive-replication",
			Description: "BOINC-style adaptive replication: a 10-valid-result streak earns a host per-host quorum 1",
			Mutate:      func(cfg *project.Config) { cfg.Server.Validator = wcg.AdaptiveValidator{Streak: 10} },
		},
		{
			Name:        "saboteurs-1pct",
			Description: "1% saboteur cohort: hosts that turn permanently bad and return correlated invalid results",
			Mutate: func(cfg *project.Config) {
				cfg.Host.Profiles = volunteer.SaboteurProfiles(0.01, cfg.Host.ErrorProb, 0.25)
			},
		},
		{
			Name:        "saboteurs-5pct",
			Description: "5% saboteur cohort: the heavy-sabotage stress point",
			Mutate: func(cfg *project.Config) {
				cfg.Host.Profiles = volunteer.SaboteurProfiles(0.05, cfg.Host.ErrorProb, 0.25)
			},
		},
		{
			Name:        "adaptive-vs-saboteurs",
			Description: "the defense matchup: adaptive replication facing the 1% saboteur cohort",
			Mutate: func(cfg *project.Config) {
				cfg.Server.Validator = wcg.AdaptiveValidator{Streak: 10}
				cfg.Host.Profiles = volunteer.SaboteurProfiles(0.01, cfg.Host.ErrorProb, 0.25)
			},
		},
		{
			Name:        "deadline-2class",
			Description: "two deadline classes: workunits under 2.5 reference hours get 4 days, the rest keep the server deadline",
			Mutate: func(cfg *project.Config) {
				cfg.Server.DeadlinePolicy = wcg.DeadlineClasses{
					{MaxRefSeconds: 2.5 * 3600, Deadline: 4 * sim.Day},
					{Deadline: cfg.Server.Deadline},
				}
			},
		},
		{
			Name:        "diurnal-hosts",
			Description: "day-cycle fleet: every device online 14h/day with phases spread around the clock",
			Mutate: func(cfg *project.Config) {
				cfg.Host.Profiles = volunteer.DiurnalProfiles(volunteer.DefaultOnlineHours, cfg.Host.ErrorProb)
			},
		},
		// --- Fault scenarios: the internal/faults plane — outages, flaky
		// uplinks, churn — with backoff-based graceful degradation. Each
		// Mutate builds a fresh faults.Config so the mutators stay pure. ---
		{
			Name:        "weekly-maintenance",
			Description: "planned ops: a 4-hour server maintenance window every week, hosts back off and reconnect smeared",
			Mutate: func(cfg *project.Config) {
				cfg.Faults = &faults.Config{
					MaintenanceEvery:    sim.Week,
					MaintenanceOffset:   2*sim.Day + 2*sim.Hour,
					MaintenanceDuration: 4 * sim.Hour,
				}
			},
		},
		{
			Name:        "unplanned-24h-outage",
			Description: "rare disaster: unplanned outages averaging 24 hours roughly twice a year",
			Mutate: func(cfg *project.Config) {
				cfg.Faults = &faults.Config{
					UnplannedPerWeek:     1.0 / 26,
					UnplannedMeanSeconds: 24 * sim.Hour,
				}
			},
		},
		{
			Name:        "flaky-uplink-1pct",
			Description: "lossy last mile: 1% of result uploads vanish, three retries before a result is abandoned",
			Mutate: func(cfg *project.Config) {
				cfg.Faults = &faults.Config{
					UploadLossProb: 0.01,
					UploadRetries:  3,
				}
			},
		},
		{
			Name:        "churn-steady",
			Description: "volunteer churn: 3% of the fleet departs permanently each week, replaced by fresh joins",
			Mutate: func(cfg *project.Config) {
				cfg.Faults = &faults.Config{ChurnPerWeek: 0.03}
			},
		},
		{
			Name:        "outage-no-backoff",
			Description: "degradation control: weekly maintenance with exponential backoff disabled (flat retry hammering)",
			Mutate: func(cfg *project.Config) {
				cfg.Faults = &faults.Config{
					MaintenanceEvery:    sim.Week,
					MaintenanceOffset:   2*sim.Day + 2*sim.Hour,
					MaintenanceDuration: 4 * sim.Hour,
					NoBackoff:           true,
				}
			},
		},
		{
			Name:        "fault-storm",
			Description: "everything at once: weekly maintenance, frequent unplanned outages, 2% upload loss, 5% weekly churn",
			Mutate: func(cfg *project.Config) {
				cfg.Faults = &faults.Config{
					MaintenanceEvery:     sim.Week,
					MaintenanceOffset:    2*sim.Day + 2*sim.Hour,
					MaintenanceDuration:  4 * sim.Hour,
					UnplannedPerWeek:     0.1,
					UnplannedMeanSeconds: 12 * sim.Hour,
					UploadLossProb:       0.02,
					UploadRetries:        3,
					ChurnPerWeek:         0.05,
				}
			},
		},
		{
			Name:        "phase2-plan",
			Description: "§7 phase II operating point: 5.67× workload on a flat 59,730-VFTP slice, validated by simulation",
			Mutate: func(cfg *project.Config) {
				cfg.M = phase2Matrix(cfg)
				cfg.Grid = volunteer.GridModel{BaseVFTP: 59730, GrowthPerWeek: 0}
				cfg.ControlWeeks = 0
				cfg.RampWeeks = 0.1
				cfg.ControlShare = 1
				cfg.FullShare = 1
				cfg.MaxWeeks = 90
			},
		},
	}
}

// PhaseIIRatio is the §7 workload ratio: 4000² / (168² × 100).
const PhaseIIRatio = 4000.0 * 4000.0 / (168.0 * 168.0 * 100.0)

// Lookup returns the catalog scenario with the given name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// Select resolves a CLI-style scenario spec: "all" (or "") yields the whole
// catalog in canonical order; otherwise a comma-separated list of names,
// deduplicated, in the order given.
func Select(spec string) ([]Scenario, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "all" {
		return Catalog(), nil
	}
	var out []Scenario
	seen := make(map[string]bool)
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		if name == "" || seen[name] {
			continue
		}
		s, ok := Lookup(name)
		if !ok {
			return nil, fmt.Errorf("experiment: unknown scenario %q (have: %s)", name, strings.Join(Names(), ", "))
		}
		seen[name] = true
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiment: empty scenario selection %q", spec)
	}
	return out, nil
}

// Names returns the sorted catalog scenario names.
func Names() []string {
	cat := Catalog()
	names := make([]string, len(cat))
	for i, s := range cat {
		names[i] = s.Name
	}
	sort.Strings(names)
	return names
}
