package experiment

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/project"
	"repro/internal/protein"
)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 10 {
		t.Fatalf("catalog has %d scenarios, want ≥ 10", len(cat))
	}
	seen := make(map[string]bool)
	for _, s := range cat {
		if s.Name == "" || s.Description == "" || s.Mutate == nil {
			t.Fatalf("scenario %+v incomplete", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		if strings.ContainsAny(s.Name, ", ") {
			t.Fatalf("scenario name %q would break the comma-separated CLI spec", s.Name)
		}
		seen[s.Name] = true
	}
}

func TestCatalogMutatorsKeepConfigRunnable(t *testing.T) {
	ds := protein.Generate(8, 7)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 8})
	for _, s := range Catalog() {
		cfg := project.DefaultConfig(ds, m)
		cfg.Seed = 42
		s.Mutate(&cfg)
		if cfg.DS == nil || cfg.M == nil {
			t.Fatalf("%s: mutator dropped dataset or matrix", s.Name)
		}
		if cfg.HHours <= 0 || cfg.MaxWeeks <= 0 {
			t.Fatalf("%s: mutator produced invalid durations: %+v", s.Name, cfg)
		}
		if cfg.Server.Deadline <= 0 || cfg.Server.InitialQuorum < 1 || cfg.Server.SteadyQuorum < 1 {
			t.Fatalf("%s: mutator produced invalid server config: %+v", s.Name, cfg.Server)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Catalog()) {
		t.Fatalf("Select(all) = %d scenarios, err %v", len(all), err)
	}
	if def, err := Select(""); err != nil || len(def) != len(Catalog()) {
		t.Fatalf("Select(\"\") = %d scenarios, err %v", len(def), err)
	}
	some, err := Select("quorum-1, baseline,quorum-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "quorum-1" || some[1].Name != "baseline" {
		t.Fatalf("Select dedup/order broken: %v", orderedNames(some))
	}
	if _, err := Select("no-such-scenario"); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
	if _, err := Select(" , "); err == nil {
		t.Fatal("expected error for empty selection")
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("baseline"); !ok {
		t.Fatal("baseline missing from catalog")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup invented a scenario")
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[uint64]string)
	for si := 0; si < 20; si++ {
		for rep := 0; rep < 20; rep++ {
			s := DeriveSeed(12345, si, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between cells %s and (%d,%d)", prev, si, rep)
			}
			seen[s] = fmt.Sprintf("(%d,%d)", si, rep)
		}
	}
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(2, 2, 3) {
		t.Fatal("DeriveSeed ignores base seed")
	}
}
