package experiment

import (
	"fmt"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/project"
	"repro/internal/protein"
)

// kebabName is the catalog naming convention: lowercase alphanumeric
// segments joined by single dashes.
var kebabName = regexp.MustCompile(`^[a-z0-9]+(-[a-z0-9]+)*$`)

func TestCatalogShape(t *testing.T) {
	cat := Catalog()
	if len(cat) < 24 {
		t.Fatalf("catalog has %d scenarios, want ≥ 24", len(cat))
	}
	seen := make(map[string]bool)
	for _, s := range cat {
		if s.Name == "" || s.Description == "" || s.Mutate == nil {
			t.Fatalf("scenario %+v incomplete", s)
		}
		if seen[s.Name] {
			t.Fatalf("duplicate scenario name %q", s.Name)
		}
		if !kebabName.MatchString(s.Name) {
			t.Fatalf("scenario name %q is not kebab-case", s.Name)
		}
		if strings.ContainsAny(s.Name, ", ") {
			t.Fatalf("scenario name %q would break the comma-separated CLI spec", s.Name)
		}
		seen[s.Name] = true
	}
}

// TestCatalogMutatorsPure guards the documented "no captured mutable
// state" contract: applying a scenario's mutator to two independent
// copies of the same base configuration must yield equal configs. A
// mutator leaking state between applications (a captured counter, a
// shared slice it appends to) would make sweep results depend on how
// many times — and on which worker — a scenario has run.
func TestCatalogMutatorsPure(t *testing.T) {
	ds := protein.Generate(8, 7)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 8})
	base := project.DefaultConfig(ds, m)
	base.Seed = 4711
	for _, s := range Catalog() {
		a, b := base, base
		s.Mutate(&a)
		s.Mutate(&b)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: mutator is not a pure function of the config:\nfirst:  %+v\nsecond: %+v", s.Name, a, b)
		}
	}
	// The shared referenced state must come through untouched: a mutator
	// editing the dataset or matrix in place (instead of replacing the
	// pointer) would corrupt every other scenario's runs.
	pristineDS := protein.Generate(8, 7)
	pristineM := costmodel.Synthesize(pristineDS, costmodel.SynthesizeOptions{Seed: 8})
	if !reflect.DeepEqual(ds, pristineDS) || !reflect.DeepEqual(m, pristineM) {
		t.Fatal("some mutator modified the shared dataset or cost matrix in place")
	}
}

func TestCatalogMutatorsKeepConfigRunnable(t *testing.T) {
	ds := protein.Generate(8, 7)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 8})
	for _, s := range Catalog() {
		cfg := project.DefaultConfig(ds, m)
		cfg.Seed = 42
		s.Mutate(&cfg)
		if cfg.DS == nil || cfg.M == nil {
			t.Fatalf("%s: mutator dropped dataset or matrix", s.Name)
		}
		if cfg.HHours <= 0 || cfg.MaxWeeks <= 0 {
			t.Fatalf("%s: mutator produced invalid durations: %+v", s.Name, cfg)
		}
		if cfg.Server.Deadline <= 0 || cfg.Server.InitialQuorum < 1 || cfg.Server.SteadyQuorum < 1 {
			t.Fatalf("%s: mutator produced invalid server config: %+v", s.Name, cfg.Server)
		}
	}
}

func TestSelect(t *testing.T) {
	all, err := Select("all")
	if err != nil || len(all) != len(Catalog()) {
		t.Fatalf("Select(all) = %d scenarios, err %v", len(all), err)
	}
	if def, err := Select(""); err != nil || len(def) != len(Catalog()) {
		t.Fatalf("Select(\"\") = %d scenarios, err %v", len(def), err)
	}
	some, err := Select("quorum-1, baseline,quorum-1")
	if err != nil {
		t.Fatal(err)
	}
	if len(some) != 2 || some[0].Name != "quorum-1" || some[1].Name != "baseline" {
		t.Fatalf("Select dedup/order broken: %v", orderedNames(some))
	}
	if _, err := Select("no-such-scenario"); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
	if _, err := Select(" , "); err == nil {
		t.Fatal("expected error for empty selection")
	}
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("baseline"); !ok {
		t.Fatal("baseline missing from catalog")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup invented a scenario")
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := make(map[uint64]string)
	for si := 0; si < 20; si++ {
		for rep := 0; rep < 20; rep++ {
			s := DeriveSeed(12345, si, rep)
			if prev, dup := seen[s]; dup {
				t.Fatalf("seed collision between cells %s and (%d,%d)", prev, si, rep)
			}
			seen[s] = fmt.Sprintf("(%d,%d)", si, rep)
		}
	}
	if DeriveSeed(1, 2, 3) != DeriveSeed(1, 2, 3) {
		t.Fatal("DeriveSeed not deterministic")
	}
	if DeriveSeed(1, 2, 3) == DeriveSeed(2, 2, 3) {
		t.Fatal("DeriveSeed ignores base seed")
	}
}
