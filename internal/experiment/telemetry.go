package experiment

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
)

// Telemetry is a live wall-clock snapshot of a running sweep: throughput,
// ETA, and process memory, the numbers behind cmd/sweep's -progress ticker
// and the periodic aggregate lines it appends to the metrics NDJSON.
type Telemetry struct {
	Done            int
	Total           int
	Workers         int // sweep worker goroutines
	Gomaxprocs      int // runtime.GOMAXPROCS when the snapshot was taken
	Shards          int // per-campaign kernel shards (0 = legacy kernel)
	ElapsedSeconds  float64
	CellsPerSec     float64
	ETASeconds      float64 // 0 when no cell has finished yet
	MeanCellSeconds float64 // mean wall time of finished cells (resumed excluded)
	TotalAllocMB    float64 // cumulative heap allocation (runtime.MemStats.TotalAlloc)
	SysMB           float64 // memory obtained from the OS (≈ peak RSS)

	// Prefix-sharing stats, present only when the sweep runs forked
	// (Forked gates them out of String and Fields so unforked telemetry
	// lines keep their exact shape). Filled at sweep end via RecordPrefix.
	Forked        bool
	PrefixGroups  int
	PrefixHits    int
	SavedSimWeeks float64

	// Parallel fan-out stats, present only when the sweep runs forked with
	// ForkWorkers > 1 (same gating idea as Forked: fan-out off keeps the
	// forked line shapes exactly as before). Filled via RecordFanout.
	ForkWorkers       int
	SnapshotBytes     int
	SnapshotCaptureNS int64
	SnapshotAdoptNS   int64
	AdoptedRunners    int
	ForksParallel     int
	ParallelSpeedup   float64
}

// String renders the one-line human-readable ticker form.
func (t Telemetry) String() string {
	s := fmt.Sprintf("progress: %d/%d cells, %.1fs elapsed, %.2f cells/s, eta %.0fs, %.1f MB sys",
		t.Done, t.Total, t.ElapsedSeconds, t.CellsPerSec, t.ETASeconds, t.SysMB)
	if t.Forked {
		s += fmt.Sprintf(", prefix: %d groups, %d forks, %.1f sim-weeks saved",
			t.PrefixGroups, t.PrefixHits, t.SavedSimWeeks)
	}
	if t.ForkWorkers > 1 {
		s += fmt.Sprintf(", fan-out: %d workers, %d adopted, %d parallel forks, %d snapshot B, %.2fx speedup",
			t.ForkWorkers, t.AdoptedRunners, t.ForksParallel, t.SnapshotBytes, t.ParallelSpeedup)
	}
	return s
}

// Fields renders the snapshot as obs fields for an NDJSON aggregate line
// (tagged event=sweep-telemetry so jq can separate it from metric samples).
func (t Telemetry) Fields() []obs.F {
	f := []obs.F{
		obs.Str("event", "sweep-telemetry"),
		obs.Int("done", int64(t.Done)),
		obs.Int("total", int64(t.Total)),
		obs.Int("workers", int64(t.Workers)),
		obs.Int("gomaxprocs", int64(t.Gomaxprocs)),
		obs.Int("shards", int64(t.Shards)),
		obs.Num("elapsed-s", t.ElapsedSeconds),
		obs.Num("cells-per-s", t.CellsPerSec),
		obs.Num("eta-s", t.ETASeconds),
		obs.Num("mean-cell-s", t.MeanCellSeconds),
		obs.Num("alloc-mb", t.TotalAllocMB),
		obs.Num("sys-mb", t.SysMB),
	}
	if t.Forked {
		f = append(f,
			obs.Int("prefix-groups", int64(t.PrefixGroups)),
			obs.Int("prefix-hits", int64(t.PrefixHits)),
			obs.Num("saved-sim-weeks", t.SavedSimWeeks),
		)
	}
	if t.ForkWorkers > 1 {
		f = append(f,
			obs.Int("fork-workers", int64(t.ForkWorkers)),
			obs.Int("snapshot_bytes", int64(t.SnapshotBytes)),
			obs.Int("snapshot_capture_ns", t.SnapshotCaptureNS),
			obs.Int("snapshot_adopt_ns", t.SnapshotAdoptNS),
			obs.Int("forks_parallel", int64(t.ForksParallel)),
			obs.Int("adopted-runners", int64(t.AdoptedRunners)),
			obs.Num("parallel-speedup-x", t.ParallelSpeedup),
		)
	}
	return f
}

// Tracker accumulates sweep telemetry from concurrent workers. Feed it from
// a Progress callback (Observe) and poll it from a ticker goroutine
// (Snapshot); both are safe concurrently.
type Tracker struct {
	// Workers, Shards and Forked describe the sweep's execution plan
	// (worker goroutines, per-campaign kernel shards, prefix sharing); set
	// them before the sweep starts and they are copied into every Snapshot.
	Workers int
	Shards  int
	Forked  bool
	// ForkWorkers is the parallel fan-out width (0 or 1 = sequential
	// forks); > 1 gates the fan-out stats into Snapshot output.
	ForkWorkers int

	mu      sync.Mutex
	start   time.Time
	total   int
	done    int
	ran     int // finished cells that actually simulated (not resumed)
	wallSum float64

	// Prefix-sharing totals, filled at sweep end via RecordPrefix.
	prefixGroups int
	prefixHits   int
	savedWeeks   float64

	// Parallel fan-out totals, filled at sweep end via RecordFanout.
	snapBytes int
	snapCapNS int64
	adoptNS   int64
	adopted   int
	forksPar  int
	speedup   float64
}

// RecordPrefix stores a finished forked sweep's prefix-sharing stats so
// the final Snapshot (summary line, closing telemetry NDJSON record)
// carries them.
func (tr *Tracker) RecordPrefix(groups, hits int, savedSimWeeks float64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.prefixGroups, tr.prefixHits, tr.savedWeeks = groups, hits, savedSimWeeks
}

// RecordFanout stores a finished sweep's parallel fan-out stats (snapshot
// volume, capture/adopt time, adopted runners, forks run in parallel,
// speedup over a sequential walk of the same trees).
func (tr *Tracker) RecordFanout(bytes int, capNS, adoptNS int64, adopted, forksPar int, speedup float64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.snapBytes, tr.snapCapNS, tr.adoptNS = bytes, capNS, adoptNS
	tr.adopted, tr.forksPar, tr.speedup = adopted, forksPar, speedup
}

// NewTracker starts tracking a sweep of total cells from now.
func NewTracker(total int) *Tracker {
	return &Tracker{start: time.Now(), total: total}
}

// Observe records one finished cell and its wall time (0 for a cell
// satisfied from the checkpoint).
func (tr *Tracker) Observe(wallSeconds float64) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	tr.done++
	if wallSeconds > 0 {
		tr.ran++
		tr.wallSum += wallSeconds
	}
}

// Snapshot returns the current telemetry, including a fresh memory reading.
func (tr *Tracker) Snapshot() Telemetry {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	tr.mu.Lock()
	defer tr.mu.Unlock()
	t := Telemetry{
		Done:           tr.done,
		Total:          tr.total,
		Workers:        tr.Workers,
		Gomaxprocs:     runtime.GOMAXPROCS(0),
		Shards:         tr.Shards,
		ElapsedSeconds: time.Since(tr.start).Seconds(),
		TotalAllocMB:   float64(ms.TotalAlloc) / (1 << 20),
		SysMB:          float64(ms.Sys) / (1 << 20),
		Forked:         tr.Forked,
		PrefixGroups:   tr.prefixGroups,
		PrefixHits:     tr.prefixHits,
		SavedSimWeeks:  tr.savedWeeks,

		ForkWorkers:       tr.ForkWorkers,
		SnapshotBytes:     tr.snapBytes,
		SnapshotCaptureNS: tr.snapCapNS,
		SnapshotAdoptNS:   tr.adoptNS,
		AdoptedRunners:    tr.adopted,
		ForksParallel:     tr.forksPar,
		ParallelSpeedup:   tr.speedup,
	}
	if t.ElapsedSeconds > 0 && tr.done > 0 {
		t.CellsPerSec = float64(tr.done) / t.ElapsedSeconds
		t.ETASeconds = float64(tr.total-tr.done) / t.CellsPerSec
	}
	if tr.ran > 0 {
		t.MeanCellSeconds = tr.wallSum / float64(tr.ran)
	}
	return t
}

// cellProbe is one sweep worker's pooled observability kit: a registry and
// trace reused cell after cell, re-tagged per cell, exporting to the shared
// sinks. nil when neither sink is configured.
type cellProbe struct {
	probe       obs.Probe
	metricsSink *obs.Sink
}

// newCellProbe builds a worker probe over the sweep's sinks (either may be
// nil). Returns nil when both are nil — the zero-cost default.
func newCellProbe(metrics, trace *obs.Sink, sampleEvery float64) *cellProbe {
	if metrics == nil && trace == nil {
		return nil
	}
	cp := &cellProbe{metricsSink: metrics}
	cp.probe.SampleEvery = sampleEvery
	if metrics != nil {
		cp.probe.Metrics = obs.NewRegistry(0)
	}
	if trace != nil {
		cp.probe.Trace = obs.NewTrace(trace)
	}
	return cp
}

// arm re-tags the probe for one cell and returns it for the cell's config.
// Safe on a nil receiver (returns nil: probe disabled).
func (cp *cellProbe) arm(scenario string, rep int) *obs.Probe {
	if cp == nil {
		return nil
	}
	if cp.probe.Trace != nil {
		cp.probe.Trace.SetTags(obs.Str("scenario", scenario), obs.Int("rep", int64(rep)))
	}
	return &cp.probe
}

// flush exports the finished cell's metric samples, tagged with its cell
// identity. The registry is rebound by the next run's bindProbe, so samples
// must leave now. Safe on a nil receiver.
func (cp *cellProbe) flush(scenario string, rep int) {
	if cp == nil || cp.probe.Metrics == nil {
		return
	}
	cp.probe.Metrics.WriteNDJSON(cp.metricsSink,
		obs.Str("scenario", scenario), obs.Int("rep", int64(rep)))
}
