package experiment

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// parseNDJSON decodes every line, failing on the first malformed one.
func parseNDJSON(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		out = append(out, obj)
	}
	return out
}

// TestSweepSinksProduceNDJSON runs an instrumented sweep over concurrent
// workers and validates everything that reached the shared sinks: every
// line parses, every line carries its cell identity, and every cell of the
// sweep shows up in both streams.
func TestSweepSinksProduceNDJSON(t *testing.T) {
	var mbuf, tbuf bytes.Buffer
	msink, tsink := obs.NewSink(&mbuf), obs.NewSink(&tbuf)
	opts := Options{
		Base:        testBase(t),
		Scenarios:   testScenarios(),
		Reps:        2,
		Workers:     3,
		MetricsSink: msink,
		TraceSink:   tsink,
	}
	sw, err := Run(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if msink.Err() != nil || tsink.Err() != nil {
		t.Fatalf("sink errors: %v / %v", msink.Err(), tsink.Err())
	}

	type cell struct {
		Scenario string
		Rep      int
	}
	covered := func(lines []map[string]any) map[cell]int {
		got := map[cell]int{}
		for _, l := range lines {
			sc, ok := l["scenario"].(string)
			rep, ok2 := l["rep"].(float64)
			if !ok || !ok2 {
				t.Fatalf("line missing cell identity: %v", l)
			}
			got[cell{sc, int(rep)}]++
		}
		return got
	}
	metricCells := covered(parseNDJSON(t, mbuf.Bytes()))
	traceCells := covered(parseNDJSON(t, tbuf.Bytes()))
	for _, r := range sw.Results {
		c := cell{r.Scenario, r.Rep}
		if metricCells[c] == 0 {
			t.Errorf("cell %v has no metric samples", c)
		}
		if traceCells[c] == 0 {
			t.Errorf("cell %v has no trace events", c)
		}
	}
}

// TestSweepSinksAreRunNeutral asserts instrumented and bare sweeps produce
// identical results — the sweep-level restatement of probe neutrality.
func TestSweepSinksAreRunNeutral(t *testing.T) {
	bare := Options{Base: testBase(t), Scenarios: testScenarios(), Reps: 2, Workers: 2}
	plain, err := Run(context.Background(), bare)
	if err != nil {
		t.Fatal(err)
	}
	var mbuf, tbuf bytes.Buffer
	probed := bare
	probed.MetricsSink, probed.TraceSink = obs.NewSink(&mbuf), obs.NewSink(&tbuf)
	traced, err := Run(context.Background(), probed)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Results {
		if plain.Results[i] != traced.Results[i] {
			t.Fatalf("cell %d diverged under instrumentation:\nbare:   %+v\nprobed: %+v",
				i, plain.Results[i], traced.Results[i])
		}
	}
}

// TestProgressTelemetryFields checks the live telemetry the sweep reports:
// per-cell wall time, throughput and ETA populated on Progress, and the
// Tracker's aggregate snapshot consistent with what it observed.
func TestProgressTelemetryFields(t *testing.T) {
	var progressed []Progress
	opts := Options{
		Base:      testBase(t),
		Scenarios: testScenarios(),
		Reps:      1,
		Workers:   1,
		Progress:  func(p Progress) { progressed = append(progressed, p) },
	}
	if _, err := Run(context.Background(), opts); err != nil {
		t.Fatal(err)
	}
	if len(progressed) != 3 {
		t.Fatalf("got %d progress calls, want 3", len(progressed))
	}
	for i, p := range progressed {
		if p.WallSeconds <= 0 {
			t.Errorf("progress %d: WallSeconds = %v, want > 0", i, p.WallSeconds)
		}
		if p.CellsPerSec <= 0 {
			t.Errorf("progress %d: CellsPerSec = %v, want > 0", i, p.CellsPerSec)
		}
	}
	last := progressed[len(progressed)-1]
	if last.ETASeconds != 0 {
		t.Errorf("final ETA = %v, want 0", last.ETASeconds)
	}

	tr := NewTracker(3)
	for _, p := range progressed {
		tr.Observe(p.WallSeconds)
	}
	snap := tr.Snapshot()
	if snap.Done != 3 || snap.Total != 3 {
		t.Errorf("snapshot %d/%d, want 3/3", snap.Done, snap.Total)
	}
	if snap.MeanCellSeconds <= 0 || snap.SysMB <= 0 {
		t.Errorf("snapshot mean %v / sys %v, want > 0", snap.MeanCellSeconds, snap.SysMB)
	}
	line := obs.Line(snap.Fields()...)
	var obj map[string]any
	if err := json.Unmarshal(line, &obj); err != nil {
		t.Fatalf("telemetry Line is not JSON: %v\n%s", err, line)
	}
	if obj["event"] != "sweep-telemetry" || obj["done"] != 3.0 {
		t.Errorf("telemetry line fields wrong: %v", obj)
	}
}

// TestGridSinksProduceNDJSON is the co-run variant: per-tenant series and
// the project-tagged trace events must reach the sinks for every cell.
func TestGridSinksProduceNDJSON(t *testing.T) {
	var mbuf, tbuf bytes.Buffer
	msink, tsink := obs.NewSink(&mbuf), obs.NewSink(&tbuf)
	opts := GridOptions{
		Base:        testGridBase(t),
		Scenarios:   testGridScenarios(),
		Reps:        1,
		Workers:     2,
		MetricsSink: msink,
		TraceSink:   tsink,
	}
	sw, err := RunGrid(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if msink.Err() != nil || tsink.Err() != nil {
		t.Fatalf("sink errors: %v / %v", msink.Err(), tsink.Err())
	}
	mlines := parseNDJSON(t, mbuf.Bytes())
	perTenant := false
	for _, l := range mlines {
		if s, _ := l["series"].(string); len(s) > 3 && s[:3] == "p1-" {
			perTenant = true
			break
		}
	}
	if !perTenant {
		t.Error("no p1- prefixed per-tenant series in the grid metrics")
	}
	if len(parseNDJSON(t, tbuf.Bytes())) == 0 {
		t.Error("no grid trace events")
	}
	if len(sw.Results) == 0 {
		t.Fatal("no grid results")
	}
	for _, p := range sw.Results {
		if p.Scenario == "" {
			t.Error("unfilled grid result")
		}
	}
}
