// Package faults is the deterministic fault plane: server outage windows
// (planned maintenance plus seeded unplanned downtime), per-result
// upload-loss with retry budgets, and permanent host departure with
// replacement joins (churn). Every fault is an ordinary kernel event or a
// pure function of (seed, host, attempt) — never ambient randomness — so a
// fault scenario is byte-reproducible, independent of shard count, and
// identical between the legacy host loop and the sharded SoA kernel.
//
// The plane sits between the host kernels and the middleware as a
// volunteer.WorkSource wrapper (it also implements volunteer.RetryAdvisor,
// replacing the flat IdleRetry with capped exponential backoff while the
// server is down). The outage schedule itself is enforced by wcg.Server —
// Config.Outages refuses dispatch and defers validation inside the windows
// — so the serial execution path sees exactly the same events no matter
// how host work is partitioned.
//
// Determinism rules the plane obeys:
//
//   - The outage schedule is materialized up front by Windows from its own
//     seed; no draws happen during the run.
//   - Per-host draws (upload loss, retry jitter, backoff jitter, reconnect
//     smear) come from a stateless splitmix-style hash of (seed, host,
//     sequence), so they are independent of the order hosts are simulated
//     in — the property that keeps K=1 and K=8 byte-equal.
//   - Churn uses the population's existing SetTarget machinery at a fixed
//     ticker cadence; replacement hosts draw their seeds from the same
//     FIFO seed stream both kernels already share.
//
// A nil *Config (the default) leaves every code path untouched: the kernels
// bind the raw *wcg.Server, the server has no outage windows, and report
// bytes are identical to the pre-fault-plane code.
package faults

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wcg"
)

// Config declares the fault plane for one campaign. All durations are in
// simulation seconds (use the sim.Hour/Day/Week constants); a zero Config
// is valid and means "no faults" (Enabled reports false and the project
// layer drops it).
type Config struct {
	// Planned maintenance: a recurring announced window every
	// MaintenanceEvery seconds, starting at MaintenanceOffset (defaults to
	// Tuesday 02:00, i.e. 2 days + 2 hours into the run), lasting
	// MaintenanceDuration (default 4 hours). Hosts know the announced end:
	// they sleep the window out and reconnect smeared over ReconnectSmear.
	MaintenanceEvery    float64
	MaintenanceOffset   float64
	MaintenanceDuration float64

	// Unplanned downtime: a seeded Poisson process of outages at
	// UnplannedPerWeek expected events per week, each with an
	// exponentially distributed duration of mean UnplannedMeanSeconds
	// (default 12 hours). Hosts cannot see the end: they probe with capped
	// exponential backoff.
	UnplannedPerWeek     float64
	UnplannedMeanSeconds float64

	// Flaky uplink: each returned result is lost with probability
	// UploadLossProb (per attempt, hashed from seed/host/upload-sequence).
	// A lost upload is retried up to UploadRetries times, each retry
	// delayed by UploadRetryDelay (default 30 min) with ±50% seeded
	// jitter; when the budget runs out the result is dropped and the
	// server's deadline wheel eventually reissues the work.
	UploadLossProb   float64
	UploadRetries    int
	UploadRetryDelay float64

	// Churn: the expected fraction of active hosts that permanently
	// depart per week. Each departure is paired with a replacement join,
	// so the fleet size target is preserved while host identities turn
	// over (the paper's grid grew on balance; churn models the turnover
	// underneath).
	ChurnPerWeek float64

	// Graceful-degradation knobs. BackoffBase (default 15 min) doubles per
	// failed probe up to BackoffCap (default 12 h), with ±50% seeded
	// jitter; NoBackoff disables the exponential growth (every probe waits
	// a flat BackoffBase — the thundering-herd control scenario).
	// ReconnectSmear (default 1 h) spreads post-maintenance reconnects.
	BackoffBase    float64
	BackoffCap     float64
	ReconnectSmear float64
	NoBackoff      bool

	// Seed drives the outage schedule and the per-host fault hashes;
	// 0 derives it from the campaign seed so fault draws never share a
	// stream with the simulation's own generators.
	Seed uint64
}

// Enabled reports whether the configuration injects any fault at all.
// A Config that only tunes degradation knobs (backoff, smear) is not
// enabled — there is nothing to degrade gracefully from.
func (c *Config) Enabled() bool {
	return c != nil &&
		(c.MaintenanceEvery > 0 || c.UnplannedPerWeek > 0 ||
			c.UploadLossProb > 0 || c.ChurnPerWeek > 0)
}

// Normalized returns a copy with defaults filled in, panicking on
// out-of-range values (mirroring the project layer's checkConfig
// convention: a bad config is a programming error, not a runtime state).
func (c Config) Normalized() Config {
	switch {
	case c.MaintenanceEvery < 0 || c.MaintenanceOffset < 0 || c.MaintenanceDuration < 0:
		panic(fmt.Sprintf("faults: negative maintenance schedule %+v", c))
	case c.UnplannedPerWeek < 0 || c.UnplannedMeanSeconds < 0:
		panic(fmt.Sprintf("faults: negative unplanned-outage rate or mean %+v", c))
	case c.UploadLossProb < 0 || c.UploadLossProb >= 1:
		panic(fmt.Sprintf("faults: UploadLossProb %v outside [0,1)", c.UploadLossProb))
	case c.UploadRetries < 0 || c.UploadRetryDelay < 0:
		panic(fmt.Sprintf("faults: negative upload retry budget or delay %+v", c))
	case c.ChurnPerWeek < 0 || c.ChurnPerWeek > 1:
		panic(fmt.Sprintf("faults: ChurnPerWeek %v outside [0,1]", c.ChurnPerWeek))
	case c.BackoffBase < 0 || c.BackoffCap < 0 || c.ReconnectSmear < 0:
		panic(fmt.Sprintf("faults: negative backoff/smear %+v", c))
	}
	if c.MaintenanceEvery > 0 {
		if c.MaintenanceOffset == 0 {
			c.MaintenanceOffset = 2*sim.Day + 2*sim.Hour
		}
		if c.MaintenanceDuration == 0 {
			c.MaintenanceDuration = 4 * sim.Hour
		}
		if c.MaintenanceDuration >= c.MaintenanceEvery {
			panic(fmt.Sprintf("faults: maintenance window %vs does not fit its period %vs",
				c.MaintenanceDuration, c.MaintenanceEvery))
		}
	}
	if c.UnplannedPerWeek > 0 && c.UnplannedMeanSeconds == 0 {
		c.UnplannedMeanSeconds = 12 * sim.Hour
	}
	if c.UploadLossProb > 0 && c.UploadRetryDelay == 0 {
		c.UploadRetryDelay = 30 * sim.Minute
	}
	if c.BackoffBase == 0 {
		c.BackoffBase = 15 * sim.Minute
	}
	if c.BackoffCap == 0 {
		c.BackoffCap = 12 * sim.Hour
	}
	if c.BackoffCap < c.BackoffBase {
		c.BackoffCap = c.BackoffBase
	}
	if c.ReconnectSmear == 0 {
		c.ReconnectSmear = sim.Hour
	}
	return c
}

// EffectiveSeed resolves the fault seed for a run: the explicit Seed when
// set, otherwise a fixed perturbation of the campaign seed (so the fault
// plane never consumes — or collides with — the simulation's own streams).
func (c *Config) EffectiveSeed(runSeed uint64) uint64 {
	if c.Seed != 0 {
		return c.Seed
	}
	return runSeed ^ 0xfa17a1de5eedc0de
}

// Window is one server-down interval of the materialized outage schedule.
// Planned windows are announced (hosts wait them out and reconnect
// smeared); unplanned ones are probed with exponential backoff. A merged
// window counts as planned only if every constituent was — hosts cannot
// trust an announced end that an unplanned overrun extends.
type Window struct {
	Start, End float64
	Planned    bool
}

// Domain constants separating the stateless hash streams; arbitrary odd
// 64-bit values, fixed forever (changing one changes every fault scenario's
// bytes).
const (
	domSchedule = 0x9d8e2c6a4b371f55
	domLoss     = 0x5bf0363577b9c8e3
	domRetry    = 0xc2b2ae3d27d4eb4f
	domBackoff  = 0x165667b19e3779f9
	domSmear    = 0x27d4eb2f165667c5
)

// mix3 is a splitmix64-style avalanche of (seed, a, b): a stateless hash
// whose output is uniform enough for Bernoulli and jitter draws. Stateless
// is the point — the draw for (host, seq) is the same whichever kernel,
// shard, or simulation order reaches it.
func mix3(seed, a, b uint64) uint64 {
	z := seed + a*0x9e3779b97f4a7c15 + b*0xd1342543de82ef95
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}

// frac maps mix3 onto [0,1) with 53 uniform bits.
func frac(seed, a, b uint64) float64 {
	return float64(mix3(seed, a, b)>>11) * (1.0 / (1 << 53))
}

// Windows materializes the outage schedule for one run: the planned
// maintenance series plus a seeded walk of unplanned outages, sorted,
// coalesced (overlapping or touching windows merge) and clipped to the
// horizon. Pure function of (cfg, seed, horizon) — checkConfig and the
// plane both call it and must agree.
func Windows(c *Config, seed uint64, horizon float64) []Window {
	var wins []Window
	if c.MaintenanceEvery > 0 {
		for t := c.MaintenanceOffset; t < horizon; t += c.MaintenanceEvery {
			wins = append(wins, Window{Start: t, End: t + c.MaintenanceDuration, Planned: true})
		}
	}
	if c.UnplannedPerWeek > 0 {
		r := rng.New(seed ^ domSchedule)
		meanGap := sim.Week / c.UnplannedPerWeek
		for t := r.Exponential(meanGap); t < horizon; t += r.Exponential(meanGap) {
			d := r.Exponential(c.UnplannedMeanSeconds)
			if d < sim.Minute {
				d = sim.Minute // sub-minute blips would vanish under event granularity
			}
			wins = append(wins, Window{Start: t, End: t + d})
		}
	}
	if len(wins) == 0 {
		return nil
	}
	sort.Slice(wins, func(i, j int) bool {
		if wins[i].Start != wins[j].Start {
			return wins[i].Start < wins[j].Start
		}
		return wins[i].End < wins[j].End
	})
	merged := wins[:1]
	for _, w := range wins[1:] {
		last := &merged[len(merged)-1]
		if w.Start <= last.End {
			if w.End > last.End {
				last.End = w.End
			}
			last.Planned = last.Planned && w.Planned
			continue
		}
		merged = append(merged, w)
	}
	return merged
}

// ServerOutages converts a window schedule to the wcg server's outage
// config (the server only needs the intervals, not the planned flag).
func ServerOutages(wins []Window) []wcg.OutageWindow {
	if len(wins) == 0 {
		return nil
	}
	out := make([]wcg.OutageWindow, len(wins))
	for i, w := range wins {
		out[i] = wcg.OutageWindow{Start: w.Start, End: w.End}
	}
	return out
}

// WorkSource is the middleware surface the plane wraps; structurally
// identical to volunteer.WorkSource (declared locally so faults does not
// import the volunteer package).
type WorkSource interface {
	RequestWork() *wcg.Assignment
	CompleteFrom(a *wcg.Assignment, outcome wcg.Outcome, cpuSeconds float64, host int)
	DeadlineFor(a *wcg.Assignment) float64
}

// Stats counts the plane's fault injections and recoveries for one run.
type Stats struct {
	LostUploads    int64 // upload attempts the flaky uplink ate
	RetriedUploads int64 // re-send events scheduled after a loss
	DroppedResults int64 // results abandoned after the retry budget
	Departures     int64 // hosts permanently churned out
	Recoveries     int64 // outage windows followed by a first dispatch
	RecoveryLagSum float64
	RecoveryLagMax float64
}

// Plane is the per-run fault state: the materialized outage schedule, the
// per-host backoff and upload-sequence tables, and the churn accumulator.
// It wraps the tenant's server as the kernels' WorkSource. Not safe for
// concurrent use; like the server it lives on the serial execution path.
type Plane struct {
	cfg     Config
	eng     *sim.Engine
	inner   WorkSource
	seed    uint64
	horizon float64

	wins           []Window
	winIdx         int  // monotone cursor: first window not yet ended
	outageNoted    bool // OnOutage fired for wins[winIdx]
	recoverPending bool // a window ended; waiting for the first dispatch
	lastEnd        float64

	// Per-host state, grown on demand (host IDs are dense in both
	// kernels). attempt/epoch implement per-window backoff; upSeq numbers
	// a host's upload attempts for the loss hash.
	attempt []int32
	epoch   []int32 // window index the attempt counter belongs to, -1 = none
	upSeq   []uint32

	churnCarry float64

	Stats Stats

	// Observability hooks (bound by the project layer when a probe is
	// attached; cleared on Reset). OnOutage fires at the first fetch the
	// server refuses inside a window; OnRecovery at the first successful
	// dispatch after one, with the lag since the window ended.
	OnOutage   func(at sim.Time, planned bool)
	OnRecovery func(at sim.Time, lag float64)
}

// NewPlane builds a fault plane over inner for one run. cfg must already be
// Normalized and seed resolved via EffectiveSeed; horizon bounds the outage
// schedule (use the campaign's maximum runtime plus drain slack).
func NewPlane(eng *sim.Engine, inner WorkSource, cfg Config, seed uint64, horizon float64) *Plane {
	p := &Plane{}
	p.Reset(eng, inner, cfg, seed, horizon)
	return p
}

// Reset rearms a pooled plane for a new run: recomputes the window
// schedule, rewinds the cursor and per-host tables, zeroes stats and
// hooks. The per-host slices keep their capacity.
func (p *Plane) Reset(eng *sim.Engine, inner WorkSource, cfg Config, seed uint64, horizon float64) {
	p.cfg = cfg
	p.eng = eng
	p.inner = inner
	p.seed = seed
	p.horizon = horizon
	p.wins = Windows(&cfg, seed, horizon)
	p.winIdx = 0
	p.outageNoted = false
	p.recoverPending = false
	p.lastEnd = 0
	p.attempt = p.attempt[:0]
	p.epoch = p.epoch[:0]
	p.upSeq = p.upSeq[:0]
	p.churnCarry = 0
	p.Stats = Stats{}
	p.OnOutage = nil
	p.OnRecovery = nil
}

// Windows exposes the materialized schedule (read-only; tests and the
// report builder use it).
func (p *Plane) Windows() []Window { return p.wins }

// growHost ensures the per-host tables cover host.
func (p *Plane) growHost(host int) {
	for len(p.attempt) <= host {
		p.attempt = append(p.attempt, 0)
		p.epoch = append(p.epoch, -1)
		p.upSeq = append(p.upSeq, 0)
	}
}

// advance moves the window cursor past every window that has ended by now
// and reports whether now falls inside the current one. O(1) amortized —
// simulation time never decreases.
func (p *Plane) advance(now float64) bool {
	for p.winIdx < len(p.wins) && now >= p.wins[p.winIdx].End {
		p.lastEnd = p.wins[p.winIdx].End
		p.recoverPending = true
		p.outageNoted = false
		p.winIdx++
	}
	return p.winIdx < len(p.wins) && now >= p.wins[p.winIdx].Start
}

// RequestWork delegates to the middleware (which refuses inside outage
// windows) and keeps the outage/recovery bookkeeping: the first refused
// fetch of a window fires OnOutage, the first successful dispatch after a
// window records the recovery lag.
func (p *Plane) RequestWork() *wcg.Assignment {
	a := p.inner.RequestWork()
	if len(p.wins) == 0 {
		return a
	}
	now := p.eng.Now()
	if p.advance(now) {
		if !p.outageNoted {
			p.outageNoted = true
			if p.OnOutage != nil {
				p.OnOutage(now, p.wins[p.winIdx].Planned)
			}
		}
	} else if a != nil && p.recoverPending {
		p.recoverPending = false
		lag := now - p.lastEnd
		p.Stats.Recoveries++
		p.Stats.RecoveryLagSum += lag
		if lag > p.Stats.RecoveryLagMax {
			p.Stats.RecoveryLagMax = lag
		}
		if p.OnRecovery != nil {
			p.OnRecovery(now, lag)
		}
	}
	return a
}

// lostUpload draws the flaky-uplink Bernoulli for one upload attempt of
// host. Anonymous completions (host < 0) bypass the uplink model.
func (p *Plane) lostUpload(host int) bool {
	if p.cfg.UploadLossProb <= 0 || host < 0 {
		return false
	}
	p.growHost(host)
	seq := p.upSeq[host]
	p.upSeq[host]++
	return frac(p.seed^domLoss, uint64(host), uint64(seq)) < p.cfg.UploadLossProb
}

// CompleteFrom passes a finished result through the flaky uplink: lost
// uploads are re-sent after a jittered delay until the retry budget runs
// out, then dropped (the server's deadline wheel reissues the work). The
// host is not blocked on the retry — the re-send is an engine event.
func (p *Plane) CompleteFrom(a *wcg.Assignment, outcome wcg.Outcome, cpuSeconds float64, host int) {
	if !p.lostUpload(host) {
		p.inner.CompleteFrom(a, outcome, cpuSeconds, host)
		return
	}
	p.Stats.LostUploads++
	if p.cfg.UploadRetries > 0 {
		p.scheduleRetry(a, outcome, cpuSeconds, host, p.cfg.UploadRetries)
	} else {
		p.Stats.DroppedResults++
	}
}

// scheduleRetry queues one re-send attempt with ±50% seeded jitter; the
// event re-draws the loss and either delivers, re-queues with the rest of
// the budget, or drops. The jitter is drawn at scheduling time (the event
// time carries it), so an adopted retry event needs no re-draw.
func (p *Plane) scheduleRetry(a *wcg.Assignment, outcome wcg.Outcome, cpuSeconds float64, host, budget int) {
	p.Stats.RetriedUploads++
	j := frac(p.seed^domRetry, uint64(host), uint64(p.upSeq[host]))
	p.eng.ScheduleAfterCall(p.cfg.UploadRetryDelay*(0.5+j), p.retryFn(a, outcome, cpuSeconds, host, budget),
		sim.Call{Kind: sim.CallUploadRetry, K0: uint8(outcome), K1: uint8(budget),
			A0: int32(host), A1: wcg.AssignmentIndex(a), F0: cpuSeconds})
}

// retryFn builds the re-send closure for one scheduled retry. Split out of
// scheduleRetry so snapshot adoption can rebuild the identical closure,
// bound to the adopting context's plane and assignment, from a
// CallUploadRetry descriptor.
func (p *Plane) retryFn(a *wcg.Assignment, outcome wcg.Outcome, cpuSeconds float64, host, budget int) func() {
	return func() {
		if !p.lostUpload(host) {
			p.inner.CompleteFrom(a, outcome, cpuSeconds, host)
			return
		}
		p.Stats.LostUploads++
		if budget > 1 {
			p.scheduleRetry(a, outcome, cpuSeconds, host, budget-1)
		} else {
			p.Stats.DroppedResults++
		}
	}
}

// DeadlineFor delegates to the middleware unchanged.
func (p *Plane) DeadlineFor(a *wcg.Assignment) float64 { return p.inner.DeadlineFor(a) }

// FetchRetryDelay implements volunteer.RetryAdvisor: outside an outage the
// flat idleRetry stands; inside a planned window the host sleeps to the
// announced end plus a smeared reconnect offset; inside an unplanned one
// it backs off exponentially (doubling per probe, capped, ±50% jitter),
// with the attempt counter reset per window. NoBackoff flattens the
// unplanned case to BackoffBase — the thundering-herd control.
func (p *Plane) FetchRetryDelay(host int, idleRetry float64) float64 {
	if len(p.wins) == 0 {
		return idleRetry
	}
	now := p.eng.Now()
	if !p.advance(now) {
		return idleRetry
	}
	w := &p.wins[p.winIdx]
	if w.Planned {
		return (w.End - now) + p.cfg.ReconnectSmear*frac(p.seed^domSmear, uint64(host), uint64(p.winIdx))
	}
	if p.cfg.NoBackoff {
		return p.cfg.BackoffBase
	}
	p.growHost(host)
	if p.epoch[host] != int32(p.winIdx) {
		p.epoch[host] = int32(p.winIdx)
		p.attempt[host] = 0
	}
	n := p.attempt[host]
	p.attempt[host]++
	d := p.cfg.BackoffBase * math.Pow(2, float64(min(n, 20)))
	if d > p.cfg.BackoffCap {
		d = p.cfg.BackoffCap
	}
	return d * (0.5 + frac(p.seed^domBackoff, uint64(host), uint64(p.winIdx)<<32|uint64(n)))
}

// Churn ticker parameters: the campaign samples departures every
// ChurnInterval, offset so the tick never collides with the weekly/daily
// feeders (distinct event times keep the ordering obvious rather than
// relying on seq tie-breaks).
const (
	ChurnInterval = sim.Day
	ChurnOffset   = sim.Day / 4
)

// ChurnEnabled reports whether the campaign needs a churn ticker at all.
func (p *Plane) ChurnEnabled() bool { return p.cfg.ChurnPerWeek > 0 }

// ChurnCount returns how many of the currently active hosts permanently
// depart at this tick, accumulating the fractional expectation so the
// long-run rate is exact regardless of fleet size.
func (p *Plane) ChurnCount(active int) int {
	p.churnCarry += float64(active) * p.cfg.ChurnPerWeek * (ChurnInterval / sim.Week)
	n := int(p.churnCarry)
	if n > active {
		n = active
	}
	p.churnCarry -= float64(n)
	p.Stats.Departures += int64(n)
	return n
}

// Report is the fault plane's contribution to the campaign report —
// downtime actually injected, what the flaky uplink cost, and how fast the
// fleet came back.
type Report struct {
	Outages             int     // outage windows in the schedule (merged)
	PlannedOutages      int     // of which announced maintenance
	DowntimeSeconds     float64 // total scheduled downtime inside the horizon
	LostUploads         int64
	RetriedUploads      int64
	DroppedResults      int64
	Departures          int64
	Recoveries          int64
	MeanRecoverySeconds float64 // mean lag from window end to first dispatch
	MaxRecoverySeconds  float64
}

// BuildReport summarizes the run.
func (p *Plane) BuildReport() Report {
	r := Report{
		LostUploads:        p.Stats.LostUploads,
		RetriedUploads:     p.Stats.RetriedUploads,
		DroppedResults:     p.Stats.DroppedResults,
		Departures:         p.Stats.Departures,
		Recoveries:         p.Stats.Recoveries,
		MaxRecoverySeconds: p.Stats.RecoveryLagMax,
	}
	for _, w := range p.wins {
		r.Outages++
		if w.Planned {
			r.PlannedOutages++
		}
		end := w.End
		if end > p.horizon {
			end = p.horizon
		}
		r.DowntimeSeconds += end - w.Start
	}
	if p.Stats.Recoveries > 0 {
		r.MeanRecoverySeconds = p.Stats.RecoveryLagSum / float64(p.Stats.Recoveries)
	}
	return r
}
