package faults

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/wcg"
)

// stubSource is a minimal WorkSource: it hands out whatever assignment it
// holds and counts deliveries, so plane tests need no middleware.
type stubSource struct {
	next      *wcg.Assignment
	delivered int
}

func (s *stubSource) RequestWork() *wcg.Assignment { return s.next }
func (s *stubSource) CompleteFrom(*wcg.Assignment, wcg.Outcome, float64, int) {
	s.delivered++
}
func (s *stubSource) DeadlineFor(*wcg.Assignment) float64 { return 0 }

func TestNormalizedDefaults(t *testing.T) {
	c := Config{
		MaintenanceEvery: sim.Week,
		UnplannedPerWeek: 0.5,
		UploadLossProb:   0.01,
	}.Normalized()
	if c.MaintenanceOffset != 2*sim.Day+2*sim.Hour {
		t.Errorf("MaintenanceOffset default = %v", c.MaintenanceOffset)
	}
	if c.MaintenanceDuration != 4*sim.Hour {
		t.Errorf("MaintenanceDuration default = %v", c.MaintenanceDuration)
	}
	if c.UnplannedMeanSeconds != 12*sim.Hour {
		t.Errorf("UnplannedMeanSeconds default = %v", c.UnplannedMeanSeconds)
	}
	if c.UploadRetryDelay != 30*sim.Minute {
		t.Errorf("UploadRetryDelay default = %v", c.UploadRetryDelay)
	}
	if c.BackoffBase != 15*sim.Minute || c.BackoffCap != 12*sim.Hour {
		t.Errorf("backoff defaults = %v / %v", c.BackoffBase, c.BackoffCap)
	}
	if c.ReconnectSmear != sim.Hour {
		t.Errorf("ReconnectSmear default = %v", c.ReconnectSmear)
	}
	// The cap never undercuts the base.
	c2 := Config{UploadLossProb: 0.1, BackoffBase: 2 * sim.Hour, BackoffCap: sim.Minute}.Normalized()
	if c2.BackoffCap != c2.BackoffBase {
		t.Errorf("BackoffCap %v not lifted to BackoffBase %v", c2.BackoffCap, c2.BackoffBase)
	}
}

func TestNormalizedPanics(t *testing.T) {
	bad := []Config{
		{MaintenanceEvery: -1},
		{UnplannedPerWeek: -0.1},
		{UploadLossProb: 1.0},
		{UploadLossProb: -0.1},
		{UploadLossProb: 0.1, UploadRetries: -1},
		{ChurnPerWeek: 1.5},
		{ChurnPerWeek: 0.1, BackoffBase: -1},
		{MaintenanceEvery: sim.Hour, MaintenanceDuration: 2 * sim.Hour},
	}
	for i, c := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d (%+v) did not panic", i, c)
				}
			}()
			c.Normalized()
		}()
	}
}

func TestEnabled(t *testing.T) {
	var nilCfg *Config
	if nilCfg.Enabled() {
		t.Error("nil config reports enabled")
	}
	if (&Config{BackoffBase: sim.Hour, NoBackoff: true}).Enabled() {
		t.Error("knob-only config reports enabled")
	}
	for _, c := range []Config{
		{MaintenanceEvery: sim.Week},
		{UnplannedPerWeek: 0.1},
		{UploadLossProb: 0.01},
		{ChurnPerWeek: 0.05},
	} {
		if !c.Enabled() {
			t.Errorf("config %+v reports disabled", c)
		}
	}
}

func TestWindowsDeterministicAndSorted(t *testing.T) {
	cfg := Config{
		MaintenanceEvery:     sim.Week,
		UnplannedPerWeek:     0.5,
		UnplannedMeanSeconds: 6 * sim.Hour,
	}.Normalized()
	horizon := 20 * sim.Week
	a := Windows(&cfg, 42, horizon)
	b := Windows(&cfg, 42, horizon)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same (cfg, seed, horizon) produced different schedules")
	}
	if len(a) == 0 {
		t.Fatal("no windows materialized")
	}
	planned := 0
	for i, w := range a {
		if w.End <= w.Start {
			t.Fatalf("window %d empty: %+v", i, w)
		}
		if i > 0 && w.Start <= a[i-1].End {
			t.Fatalf("windows %d/%d not disjoint after merge: %+v %+v", i-1, i, a[i-1], w)
		}
		if w.Planned {
			planned++
		}
	}
	if planned == 0 {
		t.Error("no planned maintenance windows in a maintenance schedule")
	}
	c := Windows(&cfg, 43, horizon)
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical unplanned schedules")
	}
}

func TestWindowsMergePlannedness(t *testing.T) {
	// Two literal windows that overlap: the merge must drop the Planned
	// flag, because an unplanned overrun makes the announced end a lie.
	cfg := Config{MaintenanceEvery: sim.Day, MaintenanceOffset: sim.Hour, MaintenanceDuration: 25 * sim.Hour}
	// Duration > period is rejected by Normalized, so build the overlap via
	// the raw Windows call: consecutive maintenance windows overlap.
	wins := Windows(&cfg, 1, 5*sim.Day)
	if len(wins) != 1 {
		t.Fatalf("overlapping series did not coalesce: %d windows", len(wins))
	}
	if !wins[0].Planned {
		t.Error("merged all-planned window lost its Planned flag")
	}
}

func TestPlannedDelaySleepsToWindowEnd(t *testing.T) {
	cfg := Config{MaintenanceEvery: sim.Week, MaintenanceOffset: sim.Hour, MaintenanceDuration: 4 * sim.Hour}.Normalized()
	eng := sim.NewEngine()
	p := NewPlane(eng, &stubSource{}, cfg, 99, 2*sim.Week)
	eng.AdvanceTo(2 * sim.Hour) // inside the first window, 3h before its end
	idle := 10 * sim.Minute
	for host := 0; host < 50; host++ {
		d := p.FetchRetryDelay(host, idle)
		sleep := d - (cfg.MaintenanceOffset + cfg.MaintenanceDuration - eng.Now())
		if sleep < 0 || sleep >= cfg.ReconnectSmear {
			t.Fatalf("host %d: planned-window delay %v not in [window-end, +smear)", host, d)
		}
	}
	// Outside any window the flat idle retry stands.
	eng.AdvanceTo(6 * sim.Hour)
	if d := p.FetchRetryDelay(0, idle); d != idle {
		t.Errorf("outside outage: delay %v != idleRetry %v", d, idle)
	}
}

func TestUnplannedBackoffGrowsAndCaps(t *testing.T) {
	// One unplanned window, entered directly: successive probes from the
	// same host must grow exponentially (with ±50% jitter) up to the cap.
	cfg := Config{UnplannedPerWeek: 1e-9}.Normalized() // plane needs wins non-empty
	eng := sim.NewEngine()
	p := NewPlane(eng, &stubSource{}, cfg, 7, sim.Week)
	p.wins = []Window{{Start: 0, End: 30 * sim.Day}} // replace with a fixed unplanned window
	p.winIdx = 0
	prevMax := 0.0
	for n := 0; n < 24; n++ {
		d := p.FetchRetryDelay(3, sim.Minute)
		ideal := cfg.BackoffBase * math.Pow(2, float64(n))
		if ideal > cfg.BackoffCap {
			ideal = cfg.BackoffCap
		}
		if d < 0.5*ideal || d >= 1.5*ideal {
			t.Fatalf("probe %d: delay %v outside jitter band of %v", n, d, ideal)
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if prevMax > 1.5*cfg.BackoffCap {
		t.Errorf("max backoff %v exceeds jittered cap", prevMax)
	}
	// A different host draws different jitter but the same band.
	if a, b := p.FetchRetryDelay(10, sim.Minute), p.FetchRetryDelay(11, sim.Minute); a == b {
		t.Error("distinct hosts drew identical backoff jitter (suspicious hash)")
	}
}

func TestNoBackoffIsFlat(t *testing.T) {
	cfg := Config{UnplannedPerWeek: 1e-9, NoBackoff: true}.Normalized()
	eng := sim.NewEngine()
	p := NewPlane(eng, &stubSource{}, cfg, 7, sim.Week)
	p.wins = []Window{{Start: 0, End: 30 * sim.Day}}
	p.winIdx = 0
	for n := 0; n < 10; n++ {
		if d := p.FetchRetryDelay(5, sim.Minute); d != cfg.BackoffBase {
			t.Fatalf("probe %d: NoBackoff delay %v != BackoffBase %v", n, d, cfg.BackoffBase)
		}
	}
}

func TestUploadLossRetryAndDrop(t *testing.T) {
	// Deterministic loss draws: with p=0.5 and a seeded hash some uploads
	// are lost and retried; reruns are byte-identical.
	run := func() (Stats, int) {
		cfg := Config{UploadLossProb: 0.5, UploadRetries: 2}.Normalized()
		eng := sim.NewEngine()
		src := &stubSource{}
		p := NewPlane(eng, src, cfg, 1234, sim.Week)
		a := &wcg.Assignment{}
		for host := 0; host < 200; host++ {
			p.CompleteFrom(a, wcg.OutcomeValid, 100, host)
		}
		eng.RunUntil(sim.Week) // drain the retry events
		return p.Stats, src.delivered
	}
	s1, d1 := run()
	s2, d2 := run()
	if s1 != s2 || d1 != d2 {
		t.Fatalf("upload-loss stats not reproducible: %+v/%d vs %+v/%d", s1, d1, s2, d2)
	}
	if s1.LostUploads == 0 || s1.RetriedUploads == 0 {
		t.Fatalf("p=0.5 lost nothing: %+v", s1)
	}
	if d1+int(s1.DroppedResults) != 200 {
		t.Errorf("delivered %d + dropped %d != 200 submissions", d1, s1.DroppedResults)
	}
	// Anonymous completions bypass the uplink entirely.
	cfg := Config{UploadLossProb: 0.99}.Normalized()
	eng := sim.NewEngine()
	src := &stubSource{}
	p := NewPlane(eng, src, cfg, 1, sim.Week)
	p.CompleteFrom(&wcg.Assignment{}, wcg.OutcomeValid, 1, -1)
	if src.delivered != 1 || p.Stats.LostUploads != 0 {
		t.Error("host<0 completion went through the uplink model")
	}
}

func TestZeroRetryBudgetDropsImmediately(t *testing.T) {
	cfg := Config{UploadLossProb: 0.999}.Normalized() // UploadRetries stays 0
	eng := sim.NewEngine()
	src := &stubSource{}
	p := NewPlane(eng, src, cfg, 5, sim.Week)
	for host := 0; host < 100; host++ {
		p.CompleteFrom(&wcg.Assignment{}, wcg.OutcomeValid, 1, host)
	}
	if p.Stats.RetriedUploads != 0 {
		t.Errorf("no-budget plane scheduled %d retries", p.Stats.RetriedUploads)
	}
	if p.Stats.DroppedResults != p.Stats.LostUploads {
		t.Errorf("drops %d != losses %d with zero budget", p.Stats.DroppedResults, p.Stats.LostUploads)
	}
}

func TestChurnCountCarry(t *testing.T) {
	cfg := Config{ChurnPerWeek: 0.07}.Normalized()
	p := NewPlane(sim.NewEngine(), &stubSource{}, cfg, 1, sim.Week)
	if !p.ChurnEnabled() {
		t.Fatal("churn config reports disabled")
	}
	// 1000 active hosts at 7%/week over 7 daily ticks = 70 departures,
	// accumulated exactly by the fractional carry.
	total := 0
	for day := 0; day < 7; day++ {
		total += p.ChurnCount(1000)
	}
	if total != 70 {
		t.Errorf("weekly churn = %d, want 70", total)
	}
	if p.Stats.Departures != 70 {
		t.Errorf("Stats.Departures = %d, want 70", p.Stats.Departures)
	}
	// The count never exceeds the active fleet.
	p2 := NewPlane(sim.NewEngine(), &stubSource{}, Config{ChurnPerWeek: 1}.Normalized(), 1, sim.Week)
	for day := 0; day < 14; day++ {
		if n := p2.ChurnCount(2); n > 2 {
			t.Fatalf("churn count %d exceeds active fleet 2", n)
		}
	}
}

func TestOutageHooksAndRecoveryLag(t *testing.T) {
	cfg := Config{MaintenanceEvery: sim.Week, MaintenanceOffset: sim.Hour, MaintenanceDuration: sim.Hour}.Normalized()
	eng := sim.NewEngine()
	src := &stubSource{next: nil} // the server "refuses" by returning nil
	p := NewPlane(eng, src, cfg, 11, 2*sim.Week)
	var outages, recoveries int
	var lastLag float64
	p.OnOutage = func(at sim.Time, planned bool) {
		outages++
		if !planned {
			t.Error("maintenance outage reported as unplanned")
		}
	}
	p.OnRecovery = func(at sim.Time, lag float64) { recoveries++; lastLag = lag }

	eng.AdvanceTo(sim.Hour + sim.Minute) // inside the window
	p.RequestWork()
	p.RequestWork()
	if outages != 1 {
		t.Fatalf("OnOutage fired %d times inside one window", outages)
	}
	// After the window: a refused fetch is not a recovery, a dispatch is.
	eng.AdvanceTo(2*sim.Hour + 30*sim.Minute)
	p.RequestWork()
	if recoveries != 0 {
		t.Fatal("recovery recorded on a nil dispatch")
	}
	src.next = &wcg.Assignment{}
	eng.AdvanceTo(3 * sim.Hour)
	p.RequestWork()
	if recoveries != 1 {
		t.Fatalf("recoveries = %d after first real dispatch", recoveries)
	}
	if want := 3*sim.Hour - 2*sim.Hour; lastLag != want {
		t.Errorf("recovery lag = %v, want %v", lastLag, want)
	}
	if p.Stats.Recoveries != 1 || p.Stats.RecoveryLagMax != lastLag {
		t.Errorf("stats not updated: %+v", p.Stats)
	}
}

func TestBuildReportClipsToHorizon(t *testing.T) {
	cfg := Config{MaintenanceEvery: sim.Week, MaintenanceOffset: sim.Hour, MaintenanceDuration: 4 * sim.Hour}.Normalized()
	horizon := sim.Hour + 2*sim.Hour // mid-window
	p := NewPlane(sim.NewEngine(), &stubSource{}, cfg, 3, horizon)
	r := p.BuildReport()
	if r.Outages != 1 || r.PlannedOutages != 1 {
		t.Fatalf("report windows: %+v", r)
	}
	if r.DowntimeSeconds != 2*sim.Hour {
		t.Errorf("downtime %v not clipped to horizon (want %v)", r.DowntimeSeconds, 2*sim.Hour)
	}
}

func TestEffectiveSeed(t *testing.T) {
	c := &Config{}
	if c.EffectiveSeed(1) == 1 {
		t.Error("derived fault seed equals the run seed (stream collision)")
	}
	if c.EffectiveSeed(1) == c.EffectiveSeed(2) {
		t.Error("derived fault seed ignores the run seed")
	}
	c.Seed = 77
	if c.EffectiveSeed(1) != 77 {
		t.Error("explicit Seed not honored")
	}
}

func TestResetReusesPlane(t *testing.T) {
	cfg := Config{UploadLossProb: 0.5, UploadRetries: 1}.Normalized()
	eng := sim.NewEngine()
	src := &stubSource{}
	p := NewPlane(eng, src, cfg, 9, sim.Week)
	for host := 0; host < 64; host++ {
		p.CompleteFrom(&wcg.Assignment{}, wcg.OutcomeValid, 1, host)
	}
	eng.RunUntil(sim.Week)
	first := p.Stats

	eng2 := sim.NewEngine()
	src2 := &stubSource{}
	p.OnOutage = func(sim.Time, bool) {}
	p.Reset(eng2, src2, cfg, 9, sim.Week)
	if p.Stats != (Stats{}) || p.OnOutage != nil {
		t.Fatal("Reset did not clear stats/hooks")
	}
	for host := 0; host < 64; host++ {
		p.CompleteFrom(&wcg.Assignment{}, wcg.OutcomeValid, 1, host)
	}
	eng2.RunUntil(sim.Week)
	if p.Stats != first {
		t.Errorf("pooled plane diverged after Reset: %+v vs %+v", p.Stats, first)
	}
}
