package faults

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/wcg"
)

// PortablePlane is a self-contained copy of a fault plane's mutable state
// at an event boundary (see the snapshot package doc). The materialized
// outage schedule is not exported: it is a pure function of (cfg, seed,
// horizon), which the adopter's own Reset recomputes identically. Safe to
// publish across goroutines; read-only once built.
type PortablePlane struct {
	winIdx         int
	outageNoted    bool
	recoverPending bool
	lastEnd        float64

	attempt []int32
	epoch   []int32
	upSeq   []uint32

	churnCarry float64
	stats      Stats
}

// Bytes estimates the portable plane's memory footprint for the
// snapshot_bytes accounting.
func (p *PortablePlane) Bytes() int {
	return snapshot.Size(p.attempt) + snapshot.Size(p.epoch) + snapshot.Size(p.upSeq)
}

// ExportPortable deep-copies the plane's mutable state into a portable
// snapshot. The retry budget must fit the one-byte slot of the
// CallUploadRetry descriptor that in-flight retry events are revived
// from; a larger budget makes the export fail and the caller falls back
// to the sequential in-place path.
func (p *Plane) ExportPortable() (*PortablePlane, error) {
	if p.cfg.UploadRetries > 255 {
		return nil, fmt.Errorf("faults: portable export supports at most 255 upload retries (got %d)", p.cfg.UploadRetries)
	}
	return &PortablePlane{
		winIdx:         p.winIdx,
		outageNoted:    p.outageNoted,
		recoverPending: p.recoverPending,
		lastEnd:        p.lastEnd,
		attempt:        snapshot.Clone(p.attempt),
		epoch:          snapshot.Clone(p.epoch),
		upSeq:          snapshot.Clone(p.upSeq),
		churnCarry:     p.churnCarry,
		stats:          p.Stats,
	}, nil
}

// AdoptPortable installs a portable plane snapshot into this plane. The
// plane must have been Reset under the same (cfg, seed, horizon), so the
// recomputed window schedule matches the source's; only the cursor and
// per-host tables transfer. Hooks stay nil — adopted forks run unprobed.
func (p *Plane) AdoptPortable(ps *PortablePlane) {
	p.winIdx = ps.winIdx
	p.outageNoted = ps.outageNoted
	p.recoverPending = ps.recoverPending
	p.lastEnd = ps.lastEnd
	p.attempt = append(p.attempt[:0], ps.attempt...)
	p.epoch = append(p.epoch[:0], ps.epoch...)
	p.upSeq = append(p.upSeq[:0], ps.upSeq...)
	p.churnCarry = ps.churnCarry
	p.Stats = ps.stats
}

// ResolveCall rebuilds the closure an adopted engine event should run from
// its portable CallUploadRetry descriptor. Returns nil for calls the
// plane does not own.
func (p *Plane) ResolveCall(c sim.Call, asAt func(int32) *wcg.Assignment) func() {
	if c.Kind != sim.CallUploadRetry {
		return nil
	}
	return p.retryFn(asAt(c.A1), wcg.Outcome(c.K0), c.F0, int(c.A0), int(c.K1))
}
