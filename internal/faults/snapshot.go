package faults

import (
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// PlaneSnapshot captures a fault plane at an event boundary. The per-host
// tables follow the snapshot package's slice rule; the window cursor,
// churn accumulator, stats and hooks are value copies. The materialized
// outage schedule (wins) is immutable for the duration of a run and is
// shared, not copied — a restore never changes which windows exist, only
// where the cursor sits. Upload-retry events in flight at the capture
// live in the engine's event arena and are revived by the engine
// snapshot, with their per-host sequence counters restored here so the
// re-run draws identical loss/jitter hashes.
type PlaneSnapshot struct {
	winIdx         int
	outageNoted    bool
	recoverPending bool
	lastEnd        float64

	attempt snapshot.Slice[int32]
	epoch   snapshot.Slice[int32]
	upSeq   snapshot.Slice[uint32]

	churnCarry float64
	stats      Stats

	onOutage   func(at sim.Time, planned bool)
	onRecovery func(at sim.Time, lag float64)
}

// Capture records p's complete mutable state.
func (s *PlaneSnapshot) Capture(p *Plane) {
	s.winIdx = p.winIdx
	s.outageNoted = p.outageNoted
	s.recoverPending = p.recoverPending
	s.lastEnd = p.lastEnd
	s.attempt.Capture(p.attempt)
	s.epoch.Capture(p.epoch)
	s.upSeq.Capture(p.upSeq)
	s.churnCarry = p.churnCarry
	s.stats = p.Stats
	s.onOutage = p.OnOutage
	s.onRecovery = p.OnRecovery
}

// Restore rewinds p to the captured state. p must be the plane the
// snapshot was captured from, not Reset since.
func (s *PlaneSnapshot) Restore(p *Plane) {
	p.winIdx = s.winIdx
	p.outageNoted = s.outageNoted
	p.recoverPending = s.recoverPending
	p.lastEnd = s.lastEnd
	p.attempt = s.attempt.Restore()
	p.epoch = s.epoch.Restore()
	p.upSeq = s.upSeq.Restore()
	p.churnCarry = s.churnCarry
	p.Stats = s.stats
	p.OnOutage = s.onOutage
	p.OnRecovery = s.onRecovery
}
