// Package forecast implements the §7 phase II planning model and Table 3.
//
// After phase I, the scientists intend to add evolutionary information to
// the docking process, cutting the number of docking points by a factor of
// about 100, and to scale the protein set from 168 to ~4,000. Because the
// total work of formula (1) grows with the square of the number of proteins,
// the phase II workload is
//
//	phaseII = phaseI × (4000² / (168² × 100)) ≈ 5.67 × phaseI
//
// The paper then asks three questions, all answered here: how long phase II
// takes at the phase I rate (~90 weeks); how many virtual full-time
// processors finish it in 40 weeks (59,730); and how many World Community
// Grid members that requires, given the observed VFTP-per-member yield and
// the project's expected 25 % share of the grid (~1.3 million members).
package forecast

import (
	"fmt"
	"math"

	"repro/internal/vftp"
)

// PhaseI holds the phase I observations the forecast extrapolates from.
// The defaults are the paper's published numbers.
type PhaseI struct {
	CPUSeconds   float64 // total consumed CPU time (reported), seconds
	Weeks        float64 // full-power weeks the forecast normalizes to
	Proteins     int     // target-set size
	Members      float64 // WCG members during phase I
	MemberYield  float64 // VFTP per member (derived if zero)
	VFTPObserved float64 // VFTP sustained over Weeks (derived if zero)
}

// PaperPhaseI returns the phase I record as Table 3 states it: the consumed
// 254,897,774,144 s normalized over 16 full-power weeks, with 132,490
// members engaged.
func PaperPhaseI() PhaseI {
	return PhaseI{
		CPUSeconds: 254897774144,
		Weeks:      16,
		Proteins:   168,
		Members:    132490,
	}
}

// vftpOf returns the (possibly derived) sustained VFTP.
func (p PhaseI) vftpOf() float64 {
	if p.VFTPObserved > 0 {
		return p.VFTPObserved
	}
	return p.CPUSeconds / (p.Weeks * 7 * vftp.SecondsPerDay)
}

// yield returns VFTP produced per member.
func (p PhaseI) yield() float64 {
	if p.MemberYield > 0 {
		return p.MemberYield
	}
	if p.Members <= 0 {
		panic("forecast: need members or an explicit yield")
	}
	return p.vftpOf() / p.Members
}

// PhaseIIPlan parameterizes the phase II what-if.
type PhaseIIPlan struct {
	Proteins        int     // target-set size (paper: 4,000)
	PointsReduction float64 // docking-point cut factor (paper: 100)
	TargetWeeks     float64 // wanted completion time (paper: 40)
	GridShare       float64 // project share of the grid in phase II (paper: 0.25)
	// MeasuredShare, when positive, replaces the assumed GridShare in the
	// §7 member arithmetic: the grid share actually realized by a
	// shared-grid co-run simulation (project.GridReport.MeasuredShareOf)
	// instead of the paper's hardcoded 25 %. Table 3 then rests on a
	// mechanistic number rather than an assumption.
	MeasuredShare float64
}

// shareInForce returns the grid share the member arithmetic uses: the
// measured share when one is supplied, the planning assumption otherwise.
func (p PhaseIIPlan) shareInForce() float64 {
	if p.MeasuredShare > 0 {
		return p.MeasuredShare
	}
	return p.GridShare
}

// PaperPhaseIIPlan returns the §7 assumptions.
func PaperPhaseIIPlan() PhaseIIPlan {
	return PhaseIIPlan{Proteins: 4000, PointsReduction: 100, TargetWeeks: 40, GridShare: 0.25}
}

// Forecast is the computed phase II estimate: Table 3 plus the §7 numbers
// discussed in the text.
type Forecast struct {
	WorkRatio         float64 // phase II work / phase I work (≈ 5.67)
	CPUSecondsI       float64
	CPUSecondsII      float64
	WeeksI            float64
	WeeksII           float64 // target
	VFTPI             float64 // Table 3 row 3, phase I
	VFTPII            float64 // Table 3 row 3, phase II
	MembersI          float64
	MembersII         float64 // members whose yield supplies VFTPII
	WeeksAtPhaseIRate float64 // §7: ~90 weeks if nothing changes
	GridShareUsed     float64 // the share the member arithmetic rested on
	GridMembersNeeded float64 // §7: members so a GridShareUsed slice supplies VFTPII
	NewMembersNeeded  float64 // §7: beyond the current grid membership
}

// CurrentGridMembers is the membership of World Community Grid at writing
// time (§7: "approximatively 325,000 members").
const CurrentGridMembers = 325000

// Estimate computes the phase II forecast from phase I observations.
func Estimate(p1 PhaseI, plan PhaseIIPlan) Forecast {
	if p1.CPUSeconds <= 0 || p1.Weeks <= 0 || p1.Proteins <= 0 {
		panic("forecast: phase I record incomplete")
	}
	if plan.Proteins <= 0 || plan.PointsReduction <= 0 || plan.TargetWeeks <= 0 {
		panic("forecast: phase II plan incomplete")
	}
	ratio := float64(plan.Proteins) * float64(plan.Proteins) /
		(float64(p1.Proteins) * float64(p1.Proteins) * plan.PointsReduction)
	cpuII := p1.CPUSeconds * ratio
	vftpI := p1.vftpOf()
	vftpII := cpuII / (plan.TargetWeeks * 7 * vftp.SecondsPerDay)
	f := Forecast{
		WorkRatio:    ratio,
		CPUSecondsI:  p1.CPUSeconds,
		CPUSecondsII: cpuII,
		WeeksI:       p1.Weeks,
		WeeksII:      plan.TargetWeeks,
		VFTPI:        vftpI,
		VFTPII:       vftpII,
		MembersI:     p1.Members,
	}
	f.MembersII = vftpII / p1.yield()
	f.WeeksAtPhaseIRate = cpuII / (vftpI * 7 * vftp.SecondsPerDay)
	if share := plan.shareInForce(); share > 0 {
		// The grid-wide member yield: the whole grid's membership maps to
		// the whole grid's VFTP; the project only gets its share of it.
		// §7 uses ~60,000 VFTP for ~325,000 members and divides by the
		// assumed 25 % share; a MeasuredShare substitutes the share a
		// shared-grid co-run actually realized.
		gridYield := gridVFTPForMembers / float64(CurrentGridMembers)
		f.GridShareUsed = share
		f.GridMembersNeeded = vftpII / (gridYield * share)
		f.NewMembersNeeded = f.GridMembersNeeded - CurrentGridMembers
		if f.NewMembersNeeded < 0 {
			f.NewMembersNeeded = 0
		}
	}
	return f
}

// gridVFTPForMembers is the grid-wide VFTP corresponding to the current
// membership (§7: "It corresponds to about 60,000 virtual full-time
// processors according to the Figure 1").
const gridVFTPForMembers = 60000

// PaperForecast computes Table 3 and the §7 text numbers from the paper's
// own inputs.
func PaperForecast() Forecast {
	return Estimate(PaperPhaseI(), PaperPhaseIIPlan())
}

// Table3Row is one column pair of Table 3.
type Table3Row struct {
	Label    string
	PhaseI   float64
	PhaseII  float64
	Integral bool // render without decimals
}

// Table3 renders the forecast as the paper's Table 3.
func (f Forecast) Table3() []Table3Row {
	return []Table3Row{
		{Label: "cpu time in s", PhaseI: f.CPUSecondsI, PhaseII: f.CPUSecondsII, Integral: true},
		{Label: "Nb weeks", PhaseI: f.WeeksI, PhaseII: f.WeeksII, Integral: true},
		{Label: "Nb virtual full-time processors", PhaseI: math.Round(f.VFTPI), PhaseII: math.Round(f.VFTPII), Integral: true},
		{Label: "Nb members", PhaseI: f.MembersI, PhaseII: math.Round(f.MembersII), Integral: true},
	}
}

// String renders a row.
func (r Table3Row) String() string {
	if r.Integral {
		return fmt.Sprintf("%-33s %18.0f %18.0f", r.Label, r.PhaseI, r.PhaseII)
	}
	return fmt.Sprintf("%-33s %18.2f %18.2f", r.Label, r.PhaseI, r.PhaseII)
}
