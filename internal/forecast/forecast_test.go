package forecast

import (
	"math"
	"testing"
)

func TestPaperTable3Exact(t *testing.T) {
	f := PaperForecast()
	// Work ratio 4000²/(168²·100) = 5.6689…
	if math.Abs(f.WorkRatio-5.6689) > 0.001 {
		t.Fatalf("work ratio = %v", f.WorkRatio)
	}
	// Table 3 row 1: cpu times.
	if f.CPUSecondsI != 254897774144 {
		t.Fatalf("phase I cpu = %v", f.CPUSecondsI)
	}
	// Paper: 1,444,998,719,637 s.
	if math.Abs(f.CPUSecondsII-1444998719637)/1444998719637 > 1e-4 {
		t.Fatalf("phase II cpu = %.0f, want 1,444,998,719,637", f.CPUSecondsII)
	}
	// Row 3: 26,341 and 59,730 VFTP.
	if math.Abs(f.VFTPI-26341) > 1 {
		t.Fatalf("phase I VFTP = %v, want 26,341", f.VFTPI)
	}
	if math.Abs(f.VFTPII-59730) > 1.5 {
		t.Fatalf("phase II VFTP = %v, want 59,730", f.VFTPII)
	}
	// Row 4: 132,490 and 300,430 members.
	if f.MembersI != 132490 {
		t.Fatalf("phase I members = %v", f.MembersI)
	}
	if math.Abs(f.MembersII-300430) > 300430*0.002 {
		t.Fatalf("phase II members = %.0f, want ≈ 300,430", f.MembersII)
	}
}

func TestSection7TextNumbers(t *testing.T) {
	f := PaperForecast()
	// "if it behaves like for the first step, it will take 90 weeks".
	if math.Abs(f.WeeksAtPhaseIRate-90) > 1 {
		t.Fatalf("weeks at phase-I rate = %.1f, want ≈ 90", f.WeeksAtPhaseIRate)
	}
	// "the HCMD project needs 1,300,000 WCG members" (25% share).
	if math.Abs(f.GridMembersNeeded-1294150)/1294150 > 0.01 {
		t.Fatalf("grid members needed = %.0f, want ≈ 1,300,000", f.GridMembersNeeded)
	}
	// "nearly 1,000,000 new volunteers".
	if f.NewMembersNeeded < 900000 || f.NewMembersNeeded > 1100000 {
		t.Fatalf("new members = %.0f, want ≈ 1,000,000", f.NewMembersNeeded)
	}
}

func TestTable3Rendering(t *testing.T) {
	rows := PaperForecast().Table3()
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	labels := []string{"cpu time in s", "Nb weeks", "Nb virtual full-time processors", "Nb members"}
	for i, r := range rows {
		if r.Label != labels[i] {
			t.Errorf("row %d label %q", i, r.Label)
		}
		if r.String() == "" {
			t.Errorf("row %d renders empty", i)
		}
	}
	nonIntegral := Table3Row{Label: "x", PhaseI: 1.5, PhaseII: 2.5}
	if nonIntegral.String() == "" {
		t.Error("non-integral row renders empty")
	}
}

func TestEstimateCustomPlan(t *testing.T) {
	// Doubling the protein count quadruples the work; halving the points
	// reduction doubles it.
	p1 := PaperPhaseI()
	base := Estimate(p1, PhaseIIPlan{Proteins: 4000, PointsReduction: 100, TargetWeeks: 40})
	quad := Estimate(p1, PhaseIIPlan{Proteins: 8000, PointsReduction: 100, TargetWeeks: 40})
	if math.Abs(quad.WorkRatio/base.WorkRatio-4) > 1e-9 {
		t.Fatalf("ratio scaling wrong: %v vs %v", quad.WorkRatio, base.WorkRatio)
	}
	harder := Estimate(p1, PhaseIIPlan{Proteins: 4000, PointsReduction: 50, TargetWeeks: 40})
	if math.Abs(harder.WorkRatio/base.WorkRatio-2) > 1e-9 {
		t.Fatal("points reduction scaling wrong")
	}
	// Halving the target weeks doubles the needed VFTP.
	fast := Estimate(p1, PhaseIIPlan{Proteins: 4000, PointsReduction: 100, TargetWeeks: 20})
	if math.Abs(fast.VFTPII/base.VFTPII-2) > 1e-9 {
		t.Fatal("weeks scaling wrong")
	}
}

func TestEstimateDerivedYield(t *testing.T) {
	p1 := PaperPhaseI()
	p1.MemberYield = 0.2 // explicit yield overrides the derived one
	f := Estimate(p1, PaperPhaseIIPlan())
	want := f.VFTPII / 0.2
	if math.Abs(f.MembersII-want) > 1 {
		t.Fatalf("explicit yield ignored: %v vs %v", f.MembersII, want)
	}
}

func TestEstimateNoShare(t *testing.T) {
	f := Estimate(PaperPhaseI(), PhaseIIPlan{Proteins: 4000, PointsReduction: 100, TargetWeeks: 40, GridShare: 0})
	if f.GridMembersNeeded != 0 || f.NewMembersNeeded != 0 {
		t.Fatal("share-less plan should skip grid-member estimates")
	}
}

// TestMeasuredShareInputPath: Table 3's member arithmetic recomputed from
// a simulated share instead of the hardcoded 25 %. A measured share equal
// to the paper's assumption must reproduce the paper's numbers exactly;
// a different measured share rescales the member need inversely.
func TestMeasuredShareInputPath(t *testing.T) {
	p1 := PaperPhaseI()
	assumed := Estimate(p1, PaperPhaseIIPlan())

	// Measured == assumed ⇒ identical to the paper's Table 3 / §7 numbers.
	same := PaperPhaseIIPlan()
	same.MeasuredShare = same.GridShare
	f := Estimate(p1, same)
	if f.GridMembersNeeded != assumed.GridMembersNeeded || f.NewMembersNeeded != assumed.NewMembersNeeded {
		t.Fatalf("measured share equal to the assumption diverged: %v vs %v",
			f.GridMembersNeeded, assumed.GridMembersNeeded)
	}
	if f.GridShareUsed != 0.25 {
		t.Fatalf("GridShareUsed = %v, want 0.25", f.GridShareUsed)
	}
	// And against the paper's own text: ~1,300,000 members at 25 %.
	if math.Abs(f.GridMembersNeeded-1294150)/1294150 > 0.01 {
		t.Fatalf("members at measured 25%% = %.0f, want ≈ 1,300,000", f.GridMembersNeeded)
	}

	// A measured share of 50 % halves the membership requirement; the
	// measured path overrides the assumption, not the other way round.
	half := PaperPhaseIIPlan()
	half.MeasuredShare = 0.5
	g := Estimate(p1, half)
	if math.Abs(g.GridMembersNeeded*2-assumed.GridMembersNeeded) > 1 {
		t.Fatalf("doubled share should halve the member need: %v vs %v",
			g.GridMembersNeeded, assumed.GridMembersNeeded)
	}
	if g.GridShareUsed != 0.5 {
		t.Fatalf("GridShareUsed = %v, want the measured 0.5", g.GridShareUsed)
	}
	// Everything share-independent is untouched.
	if g.VFTPII != assumed.VFTPII || g.MembersII != assumed.MembersII {
		t.Fatal("measured share must only affect the grid-member arithmetic")
	}
}

func TestEstimatePanics(t *testing.T) {
	good1 := PaperPhaseI()
	goodPlan := PaperPhaseIIPlan()
	cases := []func(){
		func() { Estimate(PhaseI{}, goodPlan) },
		func() { Estimate(good1, PhaseIIPlan{}) },
		func() {
			p := good1
			p.Members = 0
			Estimate(p, goodPlan)
		},
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestVFTPOverride(t *testing.T) {
	p := PaperPhaseI()
	p.VFTPObserved = 30000
	f := Estimate(p, PaperPhaseIIPlan())
	if math.Abs(f.VFTPI-30000) > 1e-9 {
		t.Fatalf("VFTP override ignored: %v", f.VFTPI)
	}
}
