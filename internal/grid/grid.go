// Package grid models the dedicated grid (Grid'5000-like) the paper
// compares the volunteer platform against in §6.
//
// A dedicated grid differs from the volunteer grid in every dimension the
// paper discusses: processors are homogeneous reference CPUs (Opteron
// 2 GHz), always available, run the application at full speed with no
// throttle, never abandon work, and need no redundant computing. The only
// scheduling concern is keeping all processors busy, so the makespan of an
// embarrassingly parallel bag of tasks approaches total-work / processors.
//
// The package provides both the executable scheduler (a discrete-event
// worker pool, used to validate the accounting) and the closed-form
// equivalence the paper's Table 2 is built on.
package grid

import (
	"container/heap"
	"fmt"
)

// Cluster is a dedicated homogeneous cluster.
type Cluster struct {
	Procs int
	// PowerRatio is the per-processor speed relative to the reference CPU
	// (1.0 for Grid'5000 Opteron nodes).
	PowerRatio float64
}

// NewCluster returns a cluster of n reference processors.
func NewCluster(n int) Cluster {
	if n <= 0 {
		panic("grid: cluster needs at least one processor")
	}
	return Cluster{Procs: n, PowerRatio: 1}
}

// AnalyticMakespan returns the ideal makespan (seconds) for totalRefSeconds
// of work: the bound the paper's equivalence assumes ("it supposed that the
// dedicated grid is optimally used").
func (c Cluster) AnalyticMakespan(totalRefSeconds float64) float64 {
	return totalRefSeconds / (float64(c.Procs) * c.PowerRatio)
}

// ScheduleResult reports a simulated run.
type ScheduleResult struct {
	Makespan    float64 // wall-clock seconds to drain the bag
	CPUSeconds  float64 // total processor-seconds consumed
	Utilization float64 // CPUSeconds / (Makespan × Procs)
	Tasks       int
}

// Schedule runs a list-scheduling simulation of the task bag (durations in
// reference seconds) on the cluster: each processor takes the next task as
// soon as it is free (FCFS, the natural batch-scheduler behaviour). Returns
// the exact makespan for this ordering.
func (c Cluster) Schedule(durations []float64) ScheduleResult {
	if len(durations) == 0 {
		return ScheduleResult{}
	}
	// Min-heap of processor free times.
	free := make(procHeap, c.Procs)
	heap.Init(&free)
	var cpu float64
	for _, d := range durations {
		if d < 0 {
			panic(fmt.Sprintf("grid: negative task duration %v", d))
		}
		run := d / c.PowerRatio
		t := free[0]
		heap.Pop(&free)
		heap.Push(&free, t+run)
		cpu += run
	}
	makespan := 0.0
	for _, t := range free {
		if t > makespan {
			makespan = t
		}
	}
	util := 0.0
	if makespan > 0 {
		util = cpu / (makespan * float64(c.Procs))
	}
	return ScheduleResult{Makespan: makespan, CPUSeconds: cpu, Utilization: util, Tasks: len(durations)}
}

type procHeap []float64

func (h procHeap) Len() int           { return len(h) }
func (h procHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h procHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *procHeap) Push(x any)        { *h = append(*h, x.(float64)) }
func (h *procHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// ProcessorsFor returns how many dedicated processors complete
// totalRefSeconds of work within wallSeconds — the planning inverse of
// AnalyticMakespan, used by the §7 phase II estimates.
func ProcessorsFor(totalRefSeconds, wallSeconds float64) int {
	if wallSeconds <= 0 {
		panic("grid: wall time must be positive")
	}
	p := totalRefSeconds / wallSeconds
	n := int(p)
	if float64(n) < p {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
