package grid

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestAnalyticMakespan(t *testing.T) {
	c := NewCluster(640)
	// The paper's calibration run: >73 CPU-days over one day on 640 procs.
	cpuDays := 73.0 * 86400
	if got := c.AnalyticMakespan(cpuDays); math.Abs(got-cpuDays/640) > 1e-9 {
		t.Fatalf("makespan = %v", got)
	}
}

func TestScheduleUniformTasks(t *testing.T) {
	c := NewCluster(4)
	durations := make([]float64, 16)
	for i := range durations {
		durations[i] = 100
	}
	res := c.Schedule(durations)
	if res.Makespan != 400 {
		t.Fatalf("makespan = %v, want 400", res.Makespan)
	}
	if res.Utilization != 1 {
		t.Fatalf("utilization = %v", res.Utilization)
	}
	if res.CPUSeconds != 1600 || res.Tasks != 16 {
		t.Fatalf("res = %+v", res)
	}
}

func TestScheduleBoundsProperty(t *testing.T) {
	// List scheduling is within 2x of the lower bound (Graham), and never
	// below max(total/P, longest task).
	r := rng.New(3)
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%50) + 1
		p := int(pRaw%8) + 1
		c := NewCluster(p)
		durations := make([]float64, n)
		var total, longest float64
		for i := range durations {
			durations[i] = r.Exponential(100) + 1
			total += durations[i]
			if durations[i] > longest {
				longest = durations[i]
			}
		}
		res := c.Schedule(durations)
		lower := math.Max(total/float64(p), longest)
		return res.Makespan >= lower-1e-9 && res.Makespan <= 2*lower+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleEmpty(t *testing.T) {
	c := NewCluster(3)
	res := c.Schedule(nil)
	if res.Makespan != 0 || res.Tasks != 0 {
		t.Fatalf("empty schedule: %+v", res)
	}
}

func TestSchedulePowerRatio(t *testing.T) {
	c := Cluster{Procs: 2, PowerRatio: 2}
	res := c.Schedule([]float64{100, 100})
	if res.Makespan != 50 {
		t.Fatalf("2x processors should halve time: %v", res.Makespan)
	}
}

func TestScheduleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(1).Schedule([]float64{-1})
}

func TestNewClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCluster(0)
}

func TestProcessorsFor(t *testing.T) {
	// 100 s of work in 10 s needs 10 processors.
	if got := ProcessorsFor(100, 10); got != 10 {
		t.Fatalf("got %d", got)
	}
	// Round up.
	if got := ProcessorsFor(101, 10); got != 11 {
		t.Fatalf("got %d", got)
	}
	// At least one.
	if got := ProcessorsFor(1, 100); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestProcessorsForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ProcessorsFor(1, 0)
}

func TestProcessorsForTable3(t *testing.T) {
	// Table 3: phase I cpu time 254,897,774,144 s in 16 weeks needs
	// ~26,341 virtual processors (the paper rounds down; ProcessorsFor
	// ceils, giving 26,342).
	got := ProcessorsFor(254897774144, 16*7*86400)
	if got < 26341 || got > 26342 {
		t.Fatalf("phase I processors = %d, want ≈ 26,341", got)
	}
	got = ProcessorsFor(1444998719637, 40*7*86400)
	if got < 59730 || got > 59731 {
		t.Fatalf("phase II processors = %d, want ≈ 59,730", got)
	}
}

func BenchmarkSchedule(b *testing.B) {
	c := NewCluster(640)
	r := rng.New(1)
	durations := make([]float64, 28224)
	for i := range durations {
		durations[i] = r.LogNormal(6, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.Schedule(durations)
	}
}
