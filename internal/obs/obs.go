// Package obs is the observability plane of the simulator: a sim-time
// sampled metrics registry (Registry), a structured NDJSON run-trace
// (Trace), and the Probe that carries both into a campaign or grid run.
//
// The plane is zero-cost when disabled. A nil *Probe is the default
// everywhere: construction-time wiring (project.checkConfig, tenant.bind)
// only installs hooks when the probe is non-nil, so the per-event hot path
// of an unprobed run contains no interface dispatch, no nil-checks on hot
// branches, and no extra allocations — reports stay byte-identical and
// alloc-gated. When a probe IS attached, sampling rides the kernel's
// observer tickers (sim.Engine.ObserveEvery), which are excluded from
// Pending/MaxPending/Executed accounting, and every callback is read-only,
// so even an instrumented run produces a byte-identical Report.
//
// # Reset contract
//
// Like every pooled layer in this repo, the registry is built to be rebound
// between runs without reallocating:
//
//   - Registry.Rebind() drops the gauge bindings of the previous run (their
//     closures capture dead engine/server state) and recycles the series
//     ring buffers into an internal pool; the next run's Gauge/Counter
//     calls pop storage from that pool instead of allocating.
//   - Trace carries only a sink pointer, per-run tags, and a scratch buffer
//     that is reused line over line; SetTags rearms it for the next run.
//   - Sink is the only shared mutable object: it serializes whole lines
//     under a mutex, so concurrent sweep workers may write one sink.
//
// A probe must never be shared by two concurrently running campaigns — its
// registry gauges capture one run's objects. Share the Sink, not the Probe.
package obs

// DefaultSampleEvery is the metrics sampling cadence (in sim seconds) used
// when Probe.SampleEvery is zero: half a sim day, fine enough to resolve
// the weekday/weekend capacity swing the paper's Figure 1 shows.
const DefaultSampleEvery = 43200

// Probe carries the observability plane into one run. Any field may be nil:
// a probe with only Metrics samples silently, one with only Trace records
// events, and a nil *Probe (the default everywhere) disables the plane
// entirely at construction time.
type Probe struct {
	// Metrics receives sim-time samples of every bound gauge/counter.
	Metrics *Registry
	// Trace receives structured run events (phase transitions, batch
	// feeds, quorum switches, tenant drains, saboteur onsets).
	Trace *Trace
	// SampleEvery is the sim-time sampling cadence in seconds;
	// 0 means DefaultSampleEvery.
	SampleEvery float64
}

// Cadence returns the effective sampling interval in sim seconds.
func (p *Probe) Cadence() float64 {
	if p == nil || p.SampleEvery <= 0 {
		return DefaultSampleEvery
	}
	return p.SampleEvery
}

// Emit records one trace event; a no-op when p or p.Trace is nil, so rare
// call sites need no guard of their own.
func (p *Probe) Emit(at float64, event string, fields ...F) {
	if p == nil || p.Trace == nil {
		return
	}
	p.Trace.Emit(at, event, fields...)
}

// fieldKind discriminates the F payload.
type fieldKind uint8

const (
	fieldStr fieldKind = iota
	fieldNum
	fieldInt
)

// F is one key/value field of a trace event or an export tag. Construct
// with Str, Num, or Int; the zero value renders as an empty string.
type F struct {
	Key  string
	str  string
	num  float64
	i    int64
	kind fieldKind
}

// Str returns a string-valued field.
func Str(key, value string) F { return F{Key: key, str: value, kind: fieldStr} }

// Num returns a float-valued field. NaN and ±Inf render as JSON null.
func Num(key string, value float64) F { return F{Key: key, num: value, kind: fieldNum} }

// Int returns an integer-valued field.
func Int(key string, value int64) F { return F{Key: key, i: value, kind: fieldInt} }
