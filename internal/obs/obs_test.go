package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/stats"
)

// parseLines decodes every NDJSON line, failing on the first malformed one.
func parseLines(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var out []map[string]any
	for i, line := range bytes.Split(bytes.TrimRight(data, "\n"), []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		var obj map[string]any
		if err := json.Unmarshal(line, &obj); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		out = append(out, obj)
	}
	return out
}

func TestTraceEmitShape(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(NewSink(&buf), Str("scenario", "baseline"), Int("rep", 2))
	tr.Emit(week, "phase", Str("phase", "ramp"), Num("share", 0.35))
	tr.Emit(2*week, "quorum-switch", Int("from", 2), Int("to", 1))

	lines := parseLines(t, buf.Bytes())
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	first := lines[0]
	if first["t"] != float64(week) || first["week"] != 1.0 {
		t.Errorf("timestamps: t=%v week=%v, want %d and 1", first["t"], first["week"], week)
	}
	for key, want := range map[string]any{
		"event": "phase", "scenario": "baseline", "rep": 2.0, "phase": "ramp", "share": 0.35,
	} {
		if first[key] != want {
			t.Errorf("field %q = %v, want %v", key, first[key], want)
		}
	}
	if lines[1]["event"] != "quorum-switch" {
		t.Errorf("second event = %v", lines[1]["event"])
	}
}

func TestTraceSetTagsRearms(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(NewSink(&buf), Str("scenario", "a"))
	tr.Emit(0, "run-start")
	tr.SetTags(Str("scenario", "b"), Int("rep", 1))
	tr.Emit(0, "run-start")

	lines := parseLines(t, buf.Bytes())
	if lines[0]["scenario"] != "a" || lines[1]["scenario"] != "b" || lines[1]["rep"] != 1.0 {
		t.Errorf("retagging failed: %v then %v", lines[0], lines[1])
	}
}

func TestTraceEscapingAndSpecials(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTrace(NewSink(&buf))
	tr.Emit(0, `odd "name"`+"\n\tend",
		Str("path", `C:\tmp`), Num("nan", math.NaN()), Num("inf", math.Inf(1)),
		Str("ctl", "a\x01b"))
	lines := parseLines(t, buf.Bytes())
	l := lines[0]
	if l["event"] != "odd \"name\"\n\tend" || l["path"] != `C:\tmp` || l["ctl"] != "a\x01b" {
		t.Errorf("escaping round-trip failed: %v", l)
	}
	if l["nan"] != nil || l["inf"] != nil {
		t.Errorf("NaN/Inf must encode as null, got %v / %v", l["nan"], l["inf"])
	}
}

func TestNilTraceAndProbeAreNoops(t *testing.T) {
	var tr *Trace
	tr.Emit(0, "ignored") // must not panic
	var p *Probe
	p.Emit(0, "ignored", Num("x", 1)) // must not panic
	if (&Probe{}).Cadence() != DefaultSampleEvery {
		t.Errorf("zero probe cadence = %v, want default %v", (&Probe{}).Cadence(), DefaultSampleEvery)
	}
	if (&Probe{SampleEvery: 7}).Cadence() != 7 {
		t.Error("explicit cadence ignored")
	}
}

func TestLine(t *testing.T) {
	b := Line(Str("event", "sweep-telemetry"), Int("done", 3), Num("eta-s", 1.5))
	var obj map[string]any
	if err := json.Unmarshal(b, &obj); err != nil {
		t.Fatalf("Line output is not JSON: %v\n%s", err, b)
	}
	if obj["event"] != "sweep-telemetry" || obj["done"] != 3.0 || obj["eta-s"] != 1.5 {
		t.Errorf("Line fields wrong: %v", obj)
	}
}

func TestSinkStickyError(t *testing.T) {
	s := NewSink(failAfter{n: 2})
	s.WriteLine([]byte(`{"a":1}`))
	s.WriteLine([]byte(`{"a":2}`))
	s.WriteLine([]byte(`{"a":3}`)) // fails
	s.WriteLine([]byte(`{"a":4}`)) // dropped silently
	if s.Lines() != 2 {
		t.Errorf("lines = %d, want 2", s.Lines())
	}
	if s.Err() == nil {
		t.Error("sticky error lost")
	}
}

type failAfter struct{ n int64 }

var failCount int64

func (f failAfter) Write(p []byte) (int, error) {
	failCount++
	if failCount > f.n {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestSinkConcurrentWriters(t *testing.T) {
	var buf bytes.Buffer
	s := NewSink(&buf)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tr := NewTrace(s, Int("worker", int64(w)))
			for i := 0; i < 50; i++ {
				tr.Emit(float64(i), "tick", Int("i", int64(i)))
			}
		}(w)
	}
	wg.Wait()
	lines := parseLines(t, buf.Bytes())
	if len(lines) != 400 || s.Lines() != 400 {
		t.Fatalf("got %d parsed / %d counted lines, want 400", len(lines), s.Lines())
	}
}

func TestRegistrySampling(t *testing.T) {
	r := NewRegistry(16)
	v := 0.0
	r.Gauge("depth", func() float64 { v++; return v })
	r.Counter("total", func() float64 { return 2 * v })
	if r.NumSeries() != 2 {
		t.Fatalf("NumSeries = %d", r.NumSeries())
	}
	for i := 0; i < 10; i++ {
		r.Sample(float64(i))
	}
	if r.Samples() != 10 {
		t.Errorf("Samples = %d, want 10", r.Samples())
	}
	r.Each(func(kind Kind, s *stats.Series) {
		if s.Len() != 10 {
			t.Errorf("series %s holds %d points, want 10", s.Name, s.Len())
		}
	})
}

func TestRegistryDecimation(t *testing.T) {
	const max = 16
	r := NewRegistry(max)
	r.Gauge("g", func() float64 { return 1 })
	for i := 0; i < 10*max; i++ {
		r.Sample(float64(i))
	}
	if r.Samples() > max {
		t.Errorf("stored %d samples, cap %d: decimation failed", r.Samples(), max)
	}
	// The retained samples must stay time-ordered and uniformly spaced
	// (one stride doubling at a time keeps deltas constant).
	r.Each(func(kind Kind, s *stats.Series) {
		if s.Len() < max/2 {
			t.Fatalf("series %s kept only %d points", s.Name, s.Len())
		}
		delta := s.X[1] - s.X[0]
		for i := 1; i < s.Len(); i++ {
			if got := s.X[i] - s.X[i-1]; got != delta {
				t.Fatalf("non-uniform spacing at %d: %v vs %v\nX=%v", i, got, delta, s.X)
			}
		}
	})
}

func TestRegistryRebindRecycles(t *testing.T) {
	r := NewRegistry(8)
	r.Gauge("a", func() float64 { return 1 })
	r.Gauge("b", func() float64 { return 2 })
	for i := 0; i < 20; i++ {
		r.Sample(float64(i))
	}
	r.Rebind()
	if r.NumSeries() != 0 || r.Samples() != 0 {
		t.Fatalf("Rebind left %d series / %d samples", r.NumSeries(), r.Samples())
	}
	// Rebinding the same names must reuse the recycled buffers and sample
	// cleanly from scratch.
	r.Gauge("a", func() float64 { return 3 })
	r.Sample(0)
	if r.Samples() != 1 {
		t.Errorf("post-rebind Samples = %d, want 1", r.Samples())
	}
}

func TestRegistryWriteNDJSON(t *testing.T) {
	r := NewRegistry(8)
	r.Gauge("queue-depth", func() float64 { return 5 })
	r.Counter("results", func() float64 { return 7 })
	r.Sample(0)
	r.Sample(week)

	var buf bytes.Buffer
	r.WriteNDJSON(NewSink(&buf), Str("scenario", "x"), Int("rep", 0))
	lines := parseLines(t, buf.Bytes())
	if len(lines) != 4 {
		t.Fatalf("got %d sample lines, want 4", len(lines))
	}
	kinds := map[string]bool{}
	for _, l := range lines {
		kinds[fmt.Sprint(l["series"], "/", l["kind"])] = true
		if l["scenario"] != "x" || l["rep"] != 0.0 {
			t.Errorf("tags missing on %v", l)
		}
	}
	if !kinds["queue-depth/gauge"] || !kinds["results/counter"] {
		t.Errorf("series/kind pairs wrong: %v", kinds)
	}
}

func TestRegistryWriteCSV(t *testing.T) {
	r := NewRegistry(8)
	r.Gauge("a", func() float64 { return 1 })
	r.Gauge("b", func() float64 { return 2 })
	r.Sample(0)
	r.Sample(week)
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(got) != 3 || !strings.HasPrefix(got[0], "t,week,") {
		t.Fatalf("CSV shape wrong:\n%s", buf.String())
	}
}
