package obs

import (
	"io"

	"repro/internal/stats"
)

// Kind tells an exporter how to read a series: a Gauge is an instantaneous
// level (queue depth, active hosts), a Counter a cumulative monotone total
// (results received, CPU seconds) whose rate is the interesting signal.
type Kind uint8

const (
	Gauge Kind = iota
	Counter
)

// String returns the NDJSON kind label.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// metric is one bound instrument: a closure polled at sample time and the
// ring-capped series its samples land in.
type metric struct {
	kind Kind
	fn   func() float64
	s    *stats.Series
}

// Registry samples a set of bound gauges/counters on a sim-time cadence
// into preallocated stats.Series ring buffers. Memory is bounded: storage
// for every series is capped at maxSamples points, and when a run outlives
// the cap the registry halves its resolution in place (keeps every other
// sample, then records every other tick) — the classic fixed-memory
// profiler decimation, so a surprise month-long run costs no more memory
// than a week-long one and samples stay uniformly spaced.
//
// A Registry belongs to one run at a time; see the package Reset contract
// for how Rebind recycles it between pooled runs.
type Registry struct {
	maxSamples int
	metrics    []metric
	pool       []*stats.Series // retired ring buffers, reused by Gauge/Counter

	stride int // record every stride-th Sample call (doubles on decimation)
	phase  int
	n      int // samples currently held per series

	buf []byte // export scratch, reused line over line
}

// NewRegistry returns an empty registry whose series each hold at most
// maxSamples points (0 means 4096).
func NewRegistry(maxSamples int) *Registry {
	if maxSamples <= 0 {
		maxSamples = 4096
	}
	return &Registry{maxSamples: maxSamples, stride: 1}
}

// Gauge binds an instantaneous instrument under name. The closure is polled
// only at sample time, never on the simulation hot path.
func (r *Registry) Gauge(name string, fn func() float64) { r.bind(name, Gauge, fn) }

// Counter binds a cumulative monotone instrument under name.
func (r *Registry) Counter(name string, fn func() float64) { r.bind(name, Counter, fn) }

func (r *Registry) bind(name string, kind Kind, fn func() float64) {
	var s *stats.Series
	if n := len(r.pool); n > 0 {
		s = r.pool[n-1]
		r.pool[n-1] = nil
		r.pool = r.pool[:n-1]
		s.Name = name
	} else {
		s = stats.NewSeriesCap(name, r.maxSamples)
	}
	r.metrics = append(r.metrics, metric{kind: kind, fn: fn, s: s})
}

// Rebind rearms the registry for the next pooled run: every binding is
// dropped (its closure captures the previous run's engine and servers) and
// its ring buffer recycled, so the next run's Gauge/Counter calls allocate
// nothing. Recorded samples are discarded — export before rebinding.
func (r *Registry) Rebind() {
	for i := range r.metrics {
		s := r.metrics[i].s
		s.Reset()
		r.pool = append(r.pool, s)
		r.metrics[i] = metric{}
	}
	r.metrics = r.metrics[:0]
	r.stride, r.phase, r.n = 1, 0, 0
}

// Sample polls every bound instrument at sim time t. Called from a kernel
// observer ticker; read-only with respect to the model.
func (r *Registry) Sample(t float64) {
	r.phase++
	if r.phase < r.stride {
		return
	}
	r.phase = 0
	if r.n >= r.maxSamples {
		r.decimate()
	}
	for i := range r.metrics {
		m := &r.metrics[i]
		m.s.Add(t, m.fn())
	}
	r.n++
}

// decimate halves resolution in place: keep every other stored sample and
// record every other future tick.
func (r *Registry) decimate() {
	for i := range r.metrics {
		s := r.metrics[i].s
		j := 0
		for k := 0; k < len(s.X); k += 2 {
			s.X[j], s.Y[j] = s.X[k], s.Y[k]
			j++
		}
		s.X, s.Y = s.X[:j], s.Y[:j]
	}
	r.n = (r.n + 1) / 2
	r.stride *= 2
}

// Samples returns how many points each series currently holds.
func (r *Registry) Samples() int { return r.n }

// NumSeries returns how many instruments are bound.
func (r *Registry) NumSeries() int { return len(r.metrics) }

// Each visits every bound series in binding order.
func (r *Registry) Each(fn func(kind Kind, s *stats.Series)) {
	for i := range r.metrics {
		fn(r.metrics[i].kind, r.metrics[i].s)
	}
}

// WriteNDJSON exports every sample of every series as one NDJSON line
//
//	{"t":<sim s>,"week":<t/week>,"series":"<name>","kind":"gauge","v":<y>,<tags...>}
//
// onto the sink, interleaved metric by metric.
func (r *Registry) WriteNDJSON(sink *Sink, tags ...F) {
	for i := range r.metrics {
		m := &r.metrics[i]
		for k := 0; k < len(m.s.X); k++ {
			b := r.buf[:0]
			b = append(b, `{"t":`...)
			b = appendJSONFloat(b, m.s.X[k])
			b = append(b, `,"week":`...)
			b = appendJSONFloat(b, m.s.X[k]/week)
			b = append(b, `,"series":`...)
			b = appendJSONString(b, m.s.Name)
			b = append(b, `,"kind":"`...)
			b = append(b, m.kind.String()...)
			b = append(b, `","v":`...)
			b = appendJSONFloat(b, m.s.Y[k])
			for j := range tags {
				b = appendField(b, &tags[j])
			}
			b = append(b, '}')
			r.buf = b
			sink.WriteLine(b)
		}
	}
}

// WriteCSV exports the registry as one wide CSV table: a t/week pair of
// time columns followed by one column per series, one row per sample.
func (r *Registry) WriteCSV(w io.Writer) error {
	b := r.buf[:0]
	b = append(b, "t,week"...)
	for i := range r.metrics {
		b = append(b, ',')
		b = append(b, r.metrics[i].s.Name...)
	}
	b = append(b, '\n')
	for k := 0; k < r.n; k++ {
		var t float64
		if len(r.metrics) > 0 && k < len(r.metrics[0].s.X) {
			t = r.metrics[0].s.X[k]
		}
		b = appendJSONFloat(b, t)
		b = append(b, ',')
		b = appendJSONFloat(b, t/week)
		for i := range r.metrics {
			b = append(b, ',')
			if k < len(r.metrics[i].s.Y) {
				b = appendJSONFloat(b, r.metrics[i].s.Y[k])
			}
		}
		b = append(b, '\n')
	}
	r.buf = b
	_, err := w.Write(b)
	return err
}
