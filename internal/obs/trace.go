package obs

import (
	"io"
	"math"
	"strconv"
	"sync"
)

// Week mirrors sim.Week (seconds) without importing the kernel: trace lines
// and metric samples carry both raw sim seconds ("t") and derived weeks
// ("week") so downstream jq/plot pipelines never redo the conversion.
const week = 7 * 24 * 3600

// Sink serializes NDJSON lines from any number of writers onto one
// io.Writer. It is the only concurrency point of the plane: sweep workers
// share a sink while each owns its own Registry/Trace. Write errors are
// sticky and reported once via Err; later lines are dropped silently so a
// full disk cannot wedge a sweep.
type Sink struct {
	mu    sync.Mutex
	w     io.Writer
	lines int64
	err   error
}

// NewSink wraps w. The caller keeps ownership of w (closing, buffering).
func NewSink(w io.Writer) *Sink { return &Sink{w: w} }

// WriteLine writes one line (a terminating '\n' is appended; line must not
// contain one). Safe for concurrent use.
func (s *Sink) WriteLine(line []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	if _, err := s.w.Write(append(line, '\n')); err != nil {
		s.err = err
		return
	}
	s.lines++
}

// Lines returns how many lines were written successfully.
func (s *Sink) Lines() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lines
}

// Err returns the first write error, if any.
func (s *Sink) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Trace emits structured run events as NDJSON lines of the shape
//
//	{"t":<sim s>,"week":<t/week>,"event":"<name>",<tags...>,<fields...>}
//
// One Trace belongs to one run at a time; the scratch buffer is reused line
// over line, so Emit allocates only when a line outgrows every previous
// line. Rearm a pooled Trace for the next run with SetTags.
type Trace struct {
	sink *Sink
	tags []F
	buf  []byte
}

// NewTrace returns a trace writing to sink with the given constant tags
// (stamped on every line — e.g. scenario and rep in a sweep).
func NewTrace(sink *Sink, tags ...F) *Trace {
	return &Trace{sink: sink, tags: tags}
}

// SetTags replaces the constant tags; part of the pooled-run Reset contract.
func (t *Trace) SetTags(tags ...F) { t.tags = tags }

// Emit writes one event line. A no-op on a nil Trace.
func (t *Trace) Emit(at float64, event string, fields ...F) {
	if t == nil || t.sink == nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"t":`...)
	b = appendJSONFloat(b, at)
	b = append(b, `,"week":`...)
	b = appendJSONFloat(b, at/week)
	b = append(b, `,"event":`...)
	b = appendJSONString(b, event)
	for i := range t.tags {
		b = appendField(b, &t.tags[i])
	}
	for i := range fields {
		b = appendField(b, &fields[i])
	}
	b = append(b, '}')
	t.buf = b
	t.sink.WriteLine(b)
}

// Line renders one standalone NDJSON object from fields (no newline): the
// escape hatch for telemetry records that are not sim-time trace events,
// like the sweep's wall-clock aggregate snapshots.
func Line(fields ...F) []byte {
	b := []byte{'{'}
	for i := range fields {
		if i > 0 {
			b = append(b, ',')
		}
		b = appendJSONString(b, fields[i].Key)
		b = append(b, ':')
		b = appendValue(b, &fields[i])
	}
	return append(b, '}')
}

// appendField appends `,"key":value` for one F.
func appendField(b []byte, f *F) []byte {
	b = append(b, ',')
	b = appendJSONString(b, f.Key)
	b = append(b, ':')
	return appendValue(b, f)
}

// appendValue appends one F's value as JSON.
func appendValue(b []byte, f *F) []byte {
	switch f.kind {
	case fieldStr:
		b = appendJSONString(b, f.str)
	case fieldNum:
		b = appendJSONFloat(b, f.num)
	case fieldInt:
		b = strconv.AppendInt(b, f.i, 10)
	}
	return b
}

// appendJSONFloat appends v as a JSON number; NaN and ±Inf (not valid JSON
// numbers) become null so the output always parses.
func appendJSONFloat(b []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return append(b, `null`...)
	}
	return strconv.AppendFloat(b, v, 'g', -1, 64)
}

// appendJSONString appends s as a quoted, escaped JSON string. Metric and
// event names here are ASCII identifiers; the escape covers quotes,
// backslashes, and control bytes, which is sufficient for that alphabet
// (and for any UTF-8 payload, which JSON passes through raw).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' || c == '\\':
			b = append(b, '\\', c)
		case c == '\n':
			b = append(b, '\\', 'n')
		case c == '\t':
			b = append(b, '\\', 't')
		case c == '\r':
			b = append(b, '\\', 'r')
		case c < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[c>>4], hex[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
