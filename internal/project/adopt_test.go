package project

import (
	"fmt"
	"sync"
	"testing"
)

// materialize runs base to the fork divergence time on a fresh publisher
// runner and captures the portable snapshot, failing the test if the
// context cannot be made portable (every test fixture here must be).
func materialize(t *testing.T, base Config) (*Runner, *PortableSnapshot) {
	t.Helper()
	pub := NewRunner()
	pub.Begin(base)
	pub.RunTo(forkDivergence)
	ps, err := pub.Materialize()
	if err != nil {
		t.Fatalf("Materialize: %v", err)
	}
	return pub, ps
}

// TestAdoptEqualsStraightRun is the portable-snapshot identity pin: a
// snapshot materialized on one runner and adopted into a different one
// must fork reports byte-identical to the in-place fork path and to a
// straight run — on the legacy and the sharded kernel, into a fresh and
// a dirty (pooled) adopter, and repeatedly into the same adopter.
func TestAdoptEqualsStraightRun(t *testing.T) {
	for _, shards := range []int{0, 4} {
		base := determinismConfig(t, 777)
		base.Shards = shards
		cell := quorumWhatIf(base)
		straightCell := reportHash(t, New(cell).Run())

		pub, ps := materialize(t, base)

		// Fresh adopter: base fork reproduces the golden bytes, cell fork
		// the straight run, and a second fork off the adopted context
		// leaves no residue.
		ad := NewRunner()
		ad.AdoptSnapshot(ps)
		ad.Snapshot()
		if got := reportHash(t, ad.Fork(base)); got != goldenSeed777 {
			t.Errorf("shards=%d: adopted fork(base) hash = %s, want golden %s", shards, got, goldenSeed777)
		}
		if got := reportHash(t, ad.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: adopted fork(cell) hash = %s, want straight-run %s", shards, got, straightCell)
		}

		// Repeated adoption of the same (shared, read-only) snapshot.
		ad.AdoptSnapshot(ps)
		ad.Snapshot()
		if got := reportHash(t, ad.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: re-adopted fork(cell) hash differs — adoption mutates the snapshot or leaks state", shards)
		}

		// Dirty adopter: arenas carry a finished unrelated run.
		dirty := NewRunner()
		dirty.Run(determinismConfig(t, 778))
		dirty.AdoptSnapshot(ps)
		dirty.Snapshot()
		if got := reportHash(t, dirty.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: pooled adopted fork(cell) hash = %s, want %s", shards, got, straightCell)
		}

		// Materialize is non-destructive: the publisher can still snapshot
		// and fork in place afterwards.
		pub.Snapshot()
		if got := reportHash(t, pub.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: publisher fork(cell) after Materialize hash = %s, want %s", shards, got, straightCell)
		}
	}
}

// TestAdoptWithFaultPlane extends the adoption identity pin to a run with
// every fault class enabled: outage spool, upload retries in flight,
// churn accumulator and per-host fault tables all cross the portability
// boundary.
func TestAdoptWithFaultPlane(t *testing.T) {
	for _, shards := range []int{0, 4} {
		base := faultStressConfig(t, 777)
		base.Shards = shards
		cell := quorumWhatIf(base)
		straightBase := reportHash(t, New(base).Run())
		straightCell := reportHash(t, New(cell).Run())

		_, ps := materialize(t, base)
		ad := NewRunner()
		ad.AdoptSnapshot(ps)
		ad.Snapshot()
		if got := reportHash(t, ad.Fork(base)); got != straightBase {
			t.Errorf("shards=%d: fault adopted fork(base) hash = %s, want %s", shards, got, straightBase)
		}
		if got := reportHash(t, ad.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: fault adopted fork(cell) hash = %s, want %s", shards, got, straightCell)
		}
	}
}

// TestAdoptConcurrent races several adopters over one published snapshot
// — the parallel fan-out's sharing pattern. Run under -race this pins the
// read-only contract; the hashes pin byte-identity per adopter.
func TestAdoptConcurrent(t *testing.T) {
	base := determinismConfig(t, 777)
	base.Shards = 4
	cell := quorumWhatIf(base)
	straightCell := reportHash(t, New(cell).Run())

	_, ps := materialize(t, base)
	const n = 4
	errs := make(chan error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ad := NewRunner()
			ad.AdoptSnapshot(ps)
			ad.Snapshot()
			if got := reportHash(t, ad.Fork(cell)); got != straightCell {
				errs <- fmt.Errorf("concurrent adopted fork hash = %s, want %s", got, straightCell)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
