// Package project orchestrates the HCMD phase I campaign on the simulated
// volunteer grid: workunit release order, the three project phases of §5.1,
// and the accounting behind Figures 6-8 and Table 2.
//
// The World Community Grid team launched "the workunit of one protein after
// an other", cheapest protein first — failures surface quickly when results
// return fast, and the ever-growing grid brings new, faster devices for the
// expensive tail. The project's share of the grid went through three
// phases: a low-priority control period (the first two months), a
// prioritization ramp (February), and a full-power phase at a constant
// ~45 % share of a growing grid (March until completion).
package project

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/credit"
	"repro/internal/protein"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vftp"
	"repro/internal/volunteer"
	"repro/internal/wcg"
	"repro/internal/workunit"
)

// LaunchOrder selects the order receptor batches are released in.
type LaunchOrder int

const (
	// CheapestFirst is the production policy (§5.1).
	CheapestFirst LaunchOrder = iota
	// CostliestFirst is the adversarial ablation.
	CostliestFirst
	// RandomOrder releases batches in dataset order scrambled by the seed.
	RandomOrder
)

// DeployedHHours is the workunit target duration the production campaign
// effectively used: Figure 8 shows most workunits tuned to 3-4 hours on the
// reference CPU with a mean of 3 h 18 m 47 s.
const DeployedHHours = 3.7

// CampaignStartWeek places the HCMD launch (December 19, 2006) on the grid
// model's time axis (weeks since the WCG launch of November 16, 2004).
const CampaignStartWeek = 109

// Config parameterizes a campaign run.
type Config struct {
	DS *protein.Dataset
	M  *costmodel.Matrix

	HHours float64 // workunit target duration; 0 = DeployedHHours
	Server wcg.Config
	Host   volunteer.HostConfig
	Grid   volunteer.GridModel

	// Phase schedule (§5.1), in weeks from campaign start.
	ControlWeeks float64 // low-priority period
	RampWeeks    float64 // prioritization ramp
	ControlShare float64 // grid share during the control period
	FullShare    float64 // grid share at full power

	Order LaunchOrder

	// WorkScale subsamples ligands per receptor (1 = all couples);
	// HostScale scales the host population by the same convention.
	// Scaled runs preserve the campaign's shape at a fraction of the cost.
	WorkScale float64
	HostScale float64

	Seed     uint64
	MaxWeeks float64 // safety stop

	// SnapshotWeeks are the Figure 7 progression capture points.
	SnapshotWeeks []float64
}

// DefaultConfig returns the full-scale production configuration; callers
// normally reduce WorkScale/HostScale.
func DefaultConfig(ds *protein.Dataset, m *costmodel.Matrix) Config {
	return Config{
		DS:            ds,
		M:             m,
		HHours:        DeployedHHours,
		Server:        wcg.DefaultConfig(),
		Host:          volunteer.DefaultHostConfig(),
		Grid:          volunteer.DefaultGridModel(),
		ControlWeeks:  8,
		RampWeeks:     3,
		ControlShare:  0.05,
		FullShare:     0.48,
		Order:         CheapestFirst,
		WorkScale:     1,
		HostScale:     1,
		Seed:          protein.DefaultSeed + 2,
		MaxWeeks:      60,
		SnapshotWeeks: []float64{13, 16.3, 19.3, 25},
	}
}

// Share returns the project's share of the grid at week w of the campaign:
// the three-phase schedule of §5.1.
func (c Config) Share(w float64) float64 {
	switch {
	case w < c.ControlWeeks:
		return c.ControlShare
	case w < c.ControlWeeks+c.RampWeeks:
		frac := (w - c.ControlWeeks) / c.RampWeeks
		return c.ControlShare + frac*(c.FullShare-c.ControlShare)
	default:
		return c.FullShare
	}
}

// Snapshot is a Figure 7 progression capture: per-protein completed work
// fraction (in launch order) at a campaign week.
type Snapshot struct {
	Week            float64
	PerBatch        []float64 // completed fraction per batch, launch order
	OverallFraction float64   // completed ref-seconds / total ref-seconds
	BatchesDone     int       // batches fully completed
}

// ProteinsDoneFraction returns the fraction of proteins fully docked.
func (s Snapshot) ProteinsDoneFraction() float64 {
	if len(s.PerBatch) == 0 {
		return 0
	}
	return float64(s.BatchesDone) / float64(len(s.PerBatch))
}

// Report aggregates everything a campaign run produces.
type Report struct {
	Config Config

	// Completion.
	Completed     bool
	WeeksElapsed  float64
	TotalRefWork  float64 // ref-seconds of distinct work released
	DistinctWUs   int64
	ServerStats   wcg.Stats
	MeanSpeedDown float64 // population mean

	// Weekly series (real, de-scaled units).
	HCMDVFTP    *stats.Series // Figure 6(a): project VFTP per week
	GridVFTP    *stats.Series // Figure 6(a): available grid capacity
	ResultsWeek *stats.Series // Figure 6(b): results received per week

	// Figure 8: observed reported run time per result (hours).
	ReportedHours *stats.Histogram
	MeanReportedH float64

	// Figure 7 progression snapshots.
	Snapshots []Snapshot

	// Derived (Table 2 inputs).
	AvgVFTPWhole     float64
	AvgVFTPFullPower float64

	// Points accounting (§8): the middleware-independent alternative to
	// run-time VFTP the conclusion proposes.
	PointsTotal    float64 // points granted over the campaign (simulated units)
	AccountingBias float64 // run-time VFTP / points VFTP (≈ the hardware factor)
	HardwareTrend  float64 // benchmark score gained per week by joining devices

	// Kernel accounting, for the performance trajectory (BENCH_campaign.json).
	EventsExecuted uint64 // discrete events the kernel executed
	PeakPending    int    // high-water mark of the event queue
}

// SpeedDownObserved returns mean reported time / mean reference time per
// useful result — the paper's 3.96 estimate (computed over all results, as
// the paper does: 13 h observed vs 3.3 h packaged).
func (r Report) SpeedDownObserved(meanRefHours float64) float64 {
	if meanRefHours <= 0 {
		return 0
	}
	return r.MeanReportedH / meanRefHours / r.ServerStats.RedundancyFactor()
}

// Table2 returns the volunteer↔dedicated equivalence computed from this
// run, using the run's own measured total inflation factor.
func (r Report) Table2() []vftp.EquivalenceRow {
	factor := r.TotalFactor()
	if factor <= 0 {
		factor = vftp.PaperTotalFactor
	}
	return vftp.Table2(r.AvgVFTPWhole, r.AvgVFTPFullPower, factor)
}

// TotalFactor returns the measured end-to-end CPU inflation: reported CPU
// consumed per reference second of distinct work (the paper's 5.43).
//
// Both the numerator and the denominator are accumulated in simulated
// (WorkScale-scaled) units — CPUSeconds is only ever spent on released
// workunits — so the ratio needs no de-scaling. Runs with HostScale ≠
// WorkScale remain well-defined: an under- or over-provisioned host fleet
// changes how long the campaign takes (and, through extra timeouts, the
// redundancy share of CPUSeconds), which is exactly the inflation the
// factor is meant to measure.
func (r Report) TotalFactor() float64 {
	if r.TotalRefWork <= 0 {
		return 0
	}
	return r.ServerStats.CPUSeconds / r.TotalRefWork
}

// slicePlan is the precomputed packaging of one (receptor, ligand) couple:
// the workunit slicing is decided once in prepare() and reused verbatim by
// releaseBatch, instead of being recomputed at release time.
type slicePlan struct {
	ligand int
	nsep   int // starting positions per workunit (SliceCouple)
}

// batch is one receptor's worth of work.
type batch struct {
	receptor  int
	cost      float64 // ref-seconds (scaled)
	remaining int     // workunits not yet completed
	total     int
	doneRef   float64     // ref-seconds completed
	plan      []slicePlan // release plan, one entry per sampled ligand
}

// Campaign is a configured, runnable simulation.
type Campaign struct {
	cfg     Config
	engine  *sim.Engine
	server  *wcg.Server
	pop     *volunteer.Population
	batches []batch
	order   []int // batch release order (indexes into batches)

	next        int // next batch to release
	outstanding int // batches released but not completed

	weeklyCPU   []float64
	weeklyCount []int64

	// Reusable scratch: the ligand-sampling bitset (one bit per ligand
	// column) and the sampled-index buffer, shared by every releaseBatch
	// and every pooled run.
	seenBits   []uint64
	ligScratch []int

	ledger *credit.Ledger

	// pooled marks a Runner-owned campaign: its arenas survive Run for the
	// next reset. A one-shot campaign instead releases them when Run ends —
	// the Report is a field of this struct, so a caller keeping the report
	// alive would otherwise pin every arena chunk of the finished run.
	pooled bool

	report Report
}

// checkConfig validates cfg and fills in defaulted fields; New and reset
// share it so a pooled campaign enforces exactly the constructor's rules.
func checkConfig(cfg Config) Config {
	if cfg.DS == nil || cfg.M == nil {
		panic("project: config needs dataset and matrix")
	}
	if cfg.HHours <= 0 {
		cfg.HHours = DeployedHHours
	}
	if cfg.WorkScale <= 0 || cfg.WorkScale > 1 {
		panic(fmt.Sprintf("project: WorkScale %v out of (0,1]", cfg.WorkScale))
	}
	if cfg.HostScale <= 0 {
		panic("project: HostScale must be positive")
	}
	if cfg.MaxWeeks <= 0 {
		cfg.MaxWeeks = 60
	}
	return cfg
}

// New builds a campaign from the configuration.
func New(cfg Config) *Campaign {
	cfg = checkConfig(cfg)
	c := &Campaign{cfg: cfg, engine: sim.NewEngine()}
	c.server = wcg.NewServer(c.engine, cfg.Server)
	c.pop = volunteer.NewPopulation(c.engine, c.server, cfg.Host, rng.New(cfg.Seed))
	c.ledger = credit.NewLedger()
	c.report.Config = cfg
	c.report.ReportedHours = stats.NewHistogram(0, 80, 80)
	return c
}

// reset rearms the campaign for another run under a new configuration,
// retaining every layer's backing storage: the kernel's heap and event
// arena, the middleware's queue/ring/state arenas, the host-struct pool,
// the batch plans, the weekly accumulators, the credit ledger's dense
// slices, and the report's series/histogram buffers. The previous run's
// Report is overwritten — this is the Runner's pooled path.
func (c *Campaign) reset(cfg Config) {
	cfg = checkConfig(cfg)
	c.cfg = cfg
	c.engine.Reset()
	c.server.Reset(cfg.Server)
	c.pop.Reset(cfg.Host, rng.New(cfg.Seed))
	c.ledger.Reset()
	c.next, c.outstanding = 0, 0
	c.weeklyCPU = c.weeklyCPU[:0]
	c.weeklyCount = c.weeklyCount[:0]

	r := &c.report
	hist := r.ReportedHours
	hcmd, grid, results := r.HCMDVFTP, r.GridVFTP, r.ResultsWeek
	snaps := r.Snapshots[:0]
	*r = Report{Config: cfg}
	hist.Reset()
	r.ReportedHours = hist
	r.HCMDVFTP, r.GridVFTP, r.ResultsWeek = hcmd, grid, results
	r.Snapshots = snaps
}

// Runner runs campaigns back to back on one reusable arena of state: the
// first Run builds every slab, heap and host array, and each subsequent
// Run recycles them, so a steady-state replication allocates a small
// fraction of a fresh campaign. The returned Report (and everything it
// references: series, histogram, snapshots) is owned by the Runner and
// valid only until the next Run call — callers that need a run's output
// past that point must copy what they keep. A Runner is not safe for
// concurrent use; pool one per worker.
type Runner struct {
	c *Campaign
}

// NewRunner returns an empty runner; the first Run builds its arenas.
func NewRunner() *Runner { return &Runner{} }

// Run simulates one campaign, reusing the previous run's storage.
// Reports are bit-for-bit identical to New(cfg).Run() for the same cfg.
func (r *Runner) Run(cfg Config) *Report {
	if r.c == nil {
		r.c = New(cfg)
		r.c.pooled = true
		// Retain from the start so the first run's chunks already land in
		// the reusable arenas (before any workunit is carved).
		r.c.server.Retain()
	} else {
		r.c.reset(cfg)
	}
	return r.c.Run()
}

// ligandsFor returns the (possibly subsampled) ligand list for a receptor.
// The sample is offset by the receptor index so that across receptors every
// ligand column is drawn evenly — plain striding from 0 would bias the
// scaled workload toward a few ligands' cost profile.
//
// The returned slice is scratch owned by the campaign, valid until the
// next ligandsFor call; the sampling set is a reusable bitset, so repeated
// batch releases allocate nothing once the scratch has grown.
func (c *Campaign) ligandsFor(receptor int) []int {
	n := c.cfg.DS.Len()
	count := int(math.Round(float64(n) * c.cfg.WorkScale))
	if count < 1 {
		count = 1
	}
	out := c.ligScratch[:0]
	if count >= n {
		for j := 0; j < n; j++ {
			out = append(out, j)
		}
		c.ligScratch = out
		return out
	}
	words := (n + 63) / 64
	if cap(c.seenBits) < words {
		c.seenBits = make([]uint64, words)
	}
	seen := c.seenBits[:words]
	clear(seen)
	stride := float64(n) / float64(count)
	// The offset multiplies the receptor index by a constant coprime with
	// typical dataset sizes so the sampled ligand is unrelated to the
	// receptor (receptor+k would select the diagonal at count=1, which is
	// systematically more expensive: big receptors dock big ligands).
	const scatter = 53
	for k := 0; k < count; k++ {
		j := (receptor*scatter + int(math.Round(float64(k)*stride))) % n
		for seen[j>>6]&(1<<(j&63)) != 0 {
			j = (j + 1) % n
		}
		seen[j>>6] |= 1 << (j & 63)
		out = append(out, j)
	}
	c.ligScratch = out
	return out
}

// prepare builds batches and their release order, reusing the previous
// run's batch array and slicing-plan capacity when the campaign is pooled.
func (c *Campaign) prepare() {
	ds, m := c.cfg.DS, c.cfg.M
	if cap(c.batches) < ds.Len() {
		c.batches = make([]batch, ds.Len())
	} else {
		c.batches = c.batches[:ds.Len()]
	}
	for i := range c.batches {
		b := &c.batches[i]
		*b = batch{receptor: i, plan: b.plan[:0]}
		ligands := c.ligandsFor(i)
		for _, j := range ligands {
			nsep := workunit.SliceCouple(c.cfg.HHours*3600, m.At(i, j), ds.Proteins[i].Nsep)
			b.plan = append(b.plan, slicePlan{ligand: j, nsep: nsep})
			b.total += workunit.CoupleCount(ds.Proteins[i].Nsep, nsep)
			b.cost += float64(ds.Proteins[i].Nsep) * m.At(i, j)
		}
		b.remaining = b.total
		c.report.TotalRefWork += b.cost
		c.report.DistinctWUs += int64(b.total)
	}
	if cap(c.order) < len(c.batches) {
		c.order = make([]int, len(c.batches))
	} else {
		c.order = c.order[:len(c.batches)]
	}
	for i := range c.order {
		c.order[i] = i
	}
	switch c.cfg.Order {
	case CheapestFirst:
		sort.SliceStable(c.order, func(a, b int) bool {
			return c.batches[c.order[a]].cost < c.batches[c.order[b]].cost
		})
	case CostliestFirst:
		sort.SliceStable(c.order, func(a, b int) bool {
			return c.batches[c.order[a]].cost > c.batches[c.order[b]].cost
		})
	case RandomOrder:
		rng.New(c.cfg.Seed+99).Shuffle(len(c.order), func(a, b int) {
			c.order[a], c.order[b] = c.order[b], c.order[a]
		})
	}
}

// releaseBatch feeds one receptor's workunits to the server, following the
// slicing plan prepare() computed.
func (c *Campaign) releaseBatch(orderIdx int) {
	bi := c.order[orderIdx]
	b := &c.batches[bi]
	ds, m := c.cfg.DS, c.cfg.M
	rec := b.receptor
	total := ds.Proteins[rec].Nsep
	var id int64
	for _, p := range b.plan {
		cost := m.At(rec, p.ligand)
		for lo := 1; lo <= total; lo += p.nsep {
			hi := lo + p.nsep - 1
			if hi > total {
				hi = total
			}
			c.server.AddWorkunit(workunit.Workunit{
				ID:       int64(rec)<<32 | id,
				Receptor: rec, Ligand: p.ligand,
				ISepLo: lo, ISepHi: hi,
				RefSeconds: float64(hi-lo+1) * cost,
			}, bi)
			id++
		}
	}
	c.outstanding++
}

// feed keeps the server stocked: release batches until pending work covers
// several days of the active population's consumption (a typical workunit
// takes ~13 reported hours, so ~8 workunits per host per feed interval is a
// comfortable buffer).
func (c *Campaign) feed() {
	low := 12 * c.pop.Active()
	if low < 64 {
		low = 64
	}
	for c.next < len(c.order) && c.server.PendingCount() < low {
		c.releaseBatch(c.next)
		c.next++
	}
}

// Run executes the campaign and returns its report.
func (c *Campaign) Run() *Report {
	cfg := &c.cfg
	c.prepare()

	c.server.OnComplete = func(st *wcg.WUState) {
		b := &c.batches[st.Batch]
		b.remaining--
		b.doneRef += st.WU.RefSeconds
		if b.remaining == 0 {
			c.outstanding--
		}
	}
	c.server.OnWeekCPU = func(week int, cpu float64) {
		for len(c.weeklyCPU) <= week {
			c.weeklyCPU = append(c.weeklyCPU, 0)
			c.weeklyCount = append(c.weeklyCount, 0)
		}
		c.weeklyCPU[week] += cpu
		c.weeklyCount[week]++
		c.report.ReportedHours.Add(cpu / 3600)
	}

	done := false
	doneWeek := 0.0
	snapIdx := 0
	weekly := c.engine.Every(0, sim.Week, func(now sim.Time) {
		w := now / sim.Week
		if done {
			return
		}
		// Figure 7 snapshots (captured at the first tick at/after the mark).
		for snapIdx < len(cfg.SnapshotWeeks) && w >= cfg.SnapshotWeeks[snapIdx] {
			c.captureSnapshot(w)
			snapIdx++
		}
		if c.allDone() {
			done = true
			doneWeek = w
			// Capture any snapshot marks not yet reached: the project is
			// finished, so they all see the final (complete) state.
			for snapIdx < len(cfg.SnapshotWeeks) {
				c.captureSnapshot(cfg.SnapshotWeeks[snapIdx])
				snapIdx++
			}
			c.pop.SetTarget(0)
			return
		}
		// Track the phase schedule.
		gridCap := cfg.Grid.VFTPAt(CampaignStartWeek + w)
		target := int(math.Round(cfg.Share(w) * gridCap * cfg.HostScale))
		if target < 1 {
			target = 1
		}
		c.pop.SetTarget(target)
		c.feed()
	})
	// A daily feeder keeps the queue from draining dry between the weekly
	// phase adjustments (the server would otherwise starve fast hosts).
	daily := c.engine.Every(sim.Day/2, sim.Day, func(sim.Time) {
		if !done {
			c.feed()
		}
	})

	c.engine.RunUntil(cfg.MaxWeeks * sim.Week)
	weekly.Stop()
	daily.Stop()
	// Drain any stragglers (late returns) without advancing phases.
	c.engine.RunUntil(cfg.MaxWeeks*sim.Week + 30*sim.Day)

	c.finishReport(done, doneWeek)
	if !c.pooled {
		// Release the run context: kernel, middleware, hosts, scratch. The
		// returned report shares this struct, and a one-shot caller holding
		// it must not keep the dead simulation's arenas live with it.
		c.engine, c.server, c.pop, c.ledger = nil, nil, nil, nil
		c.batches, c.order = nil, nil
		c.weeklyCPU, c.weeklyCount = nil, nil
		c.seenBits, c.ligScratch = nil, nil
	}
	return &c.report
}

func (c *Campaign) allDone() bool {
	return c.next >= len(c.order) && c.outstanding == 0
}

func (c *Campaign) captureSnapshot(week float64) {
	s := Snapshot{Week: week, PerBatch: make([]float64, len(c.order))}
	var doneRef, totalRef float64
	for i, bi := range c.order {
		b := &c.batches[bi]
		frac := 0.0
		if b.cost > 0 {
			frac = b.doneRef / b.cost
			if frac > 1 {
				frac = 1
			}
		}
		s.PerBatch[i] = frac
		if b.remaining == 0 {
			s.BatchesDone++
		}
		doneRef += b.doneRef
		totalRef += b.cost
	}
	if totalRef > 0 {
		s.OverallFraction = doneRef / totalRef
	}
	c.report.Snapshots = append(c.report.Snapshots, s)
}

func (c *Campaign) finishReport(done bool, doneWeek float64) {
	r := &c.report
	r.Completed = done
	r.ServerStats = c.server.Stats
	r.MeanSpeedDown = c.pop.MeanSpeedDown()
	r.EventsExecuted = c.engine.Executed()
	r.PeakPending = c.engine.MaxPending()

	if done {
		r.WeeksElapsed = doneWeek
	} else {
		r.WeeksElapsed = c.cfg.MaxWeeks
	}

	// De-scale the weekly series to real units. The series buffers are
	// reused when the campaign is pooled (reset keeps them in the report).
	r.HCMDVFTP = resetSeries(r.HCMDVFTP, "hcmd-vftp")
	r.ResultsWeek = resetSeries(r.ResultsWeek, "results-per-week")
	r.GridVFTP = resetSeries(r.GridVFTP, "grid-vftp")
	nWeeks := int(r.WeeksElapsed)
	if nWeeks > len(c.weeklyCPU) {
		nWeeks = len(c.weeklyCPU)
	}
	for w := 0; w < nWeeks; w++ {
		v := vftp.FromCPU(c.weeklyCPU[w], 7*vftp.SecondsPerDay) / c.cfg.HostScale
		r.HCMDVFTP.Add(float64(w), v)
		r.ResultsWeek.Add(float64(w), float64(c.weeklyCount[w])/c.cfg.WorkScale)
		r.GridVFTP.Add(float64(w), c.cfg.Grid.VFTPAt(CampaignStartWeek+float64(w)))
	}
	if r.HCMDVFTP.Len() > 0 {
		r.AvgVFTPWhole = r.HCMDVFTP.YMean()
		fp := r.HCMDVFTP.Window(c.cfg.ControlWeeks+c.cfg.RampWeeks, math.Inf(1))
		if fp.Len() > 0 {
			r.AvgVFTPFullPower = fp.YMean()
		}
	}
	if r.ServerStats.Received > 0 {
		r.MeanReportedH = r.ServerStats.CPUSeconds / float64(r.ServerStats.Received) / 3600
	}

	// Points accounting over the host fleet (§8): each device's benchmark
	// score is the reference score divided by its hardware factor. The
	// ledger's dense slices are reused across pooled runs.
	ledger := c.ledger
	for _, h := range c.pop.Hosts() {
		ledger.Register(credit.Device{
			ID:       h.ID,
			Score:    credit.ReferenceScore / h.Hardware,
			JoinedAt: h.JoinedAt,
		})
		if h.CPUSpent > 0 {
			if _, err := ledger.Credit(credit.Result{Device: h.ID, ReportedS: h.CPUSpent, At: h.JoinedAt}); err != nil {
				panic(err) // devices were just registered; cannot happen
			}
		}
	}
	r.PointsTotal = ledger.Total()
	r.AccountingBias = ledger.AccountingBias()
	if trend, _, ok := ledger.PowerTrend(); ok {
		r.HardwareTrend = trend
	}
}

// resetSeries empties s for reuse, creating it on a campaign's first run.
func resetSeries(s *stats.Series, name string) *stats.Series {
	if s == nil {
		return stats.NewSeries(name)
	}
	s.Reset()
	s.Name = name
	return s
}
