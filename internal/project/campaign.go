// Package project orchestrates docking campaigns on the simulated
// volunteer grid: workunit release order, the three project phases of
// §5.1, and the accounting behind Figures 6-8 and Table 2.
//
// The World Community Grid team launched "the workunit of one protein after
// an other", cheapest protein first — failures surface quickly when results
// return fast, and the ever-growing grid brings new, faster devices for the
// expensive tail. The project's share of the grid went through three
// phases: a low-priority control period (the first two months), a
// prioritization ramp (February), and a full-power phase at a constant
// ~45 % share of a growing grid (March until completion).
//
// Two run shapes share the machinery (see tenant.go):
//
//   - Campaign is the single-project path of the paper's phase I: one
//     project owning its entire host population, the population bound
//     straight to the project's middleware server. This path is
//     byte-identical to the pre-shared-grid code, fresh and pooled
//     (golden_test.go pins the hashes).
//   - Grid (grid.go) is the shared multi-project path: N tenants on one
//     volunteer population, each host multiplexing its work fetches across
//     the attached project servers by resource share, so a project's grid
//     share is a measured output instead of an assumed constant.
package project

import (
	"fmt"

	"math"

	"repro/internal/costmodel"
	"repro/internal/credit"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/protein"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vftp"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// LaunchOrder selects the order receptor batches are released in.
type LaunchOrder int

const (
	// CheapestFirst is the production policy (§5.1).
	CheapestFirst LaunchOrder = iota
	// CostliestFirst is the adversarial ablation.
	CostliestFirst
	// RandomOrder releases batches in dataset order scrambled by the seed.
	RandomOrder
)

// DeployedHHours is the workunit target duration the production campaign
// effectively used: Figure 8 shows most workunits tuned to 3-4 hours on the
// reference CPU with a mean of 3 h 18 m 47 s.
const DeployedHHours = 3.7

// CampaignStartWeek places the HCMD launch (December 19, 2006) on the grid
// model's time axis (weeks since the WCG launch of November 16, 2004).
const CampaignStartWeek = 109

// Config parameterizes a campaign run.
type Config struct {
	DS *protein.Dataset
	M  *costmodel.Matrix

	HHours float64 // workunit target duration; 0 = DeployedHHours
	Server wcg.Config
	Host   volunteer.HostConfig
	Grid   volunteer.GridModel

	// Phase schedule (§5.1), in weeks from campaign start.
	ControlWeeks float64 // low-priority period
	RampWeeks    float64 // prioritization ramp
	ControlShare float64 // grid share during the control period
	FullShare    float64 // grid share at full power

	Order LaunchOrder

	// WorkScale subsamples ligands per receptor (1 = all couples);
	// HostScale scales the host population by the same convention.
	// Scaled runs preserve the campaign's shape at a fraction of the cost.
	WorkScale float64
	HostScale float64

	Seed     uint64
	MaxWeeks float64 // safety stop

	// Shards selects the execution plan: 0 (the default) runs the legacy
	// single-heap host kernel; K ≥ 1 runs the deterministic sharded
	// time-window kernel (volunteer.ShardKernel) with K worker shards.
	// Reports are byte-identical across all values — Shards=1 equals
	// Shards=N equals the legacy kernel, fresh and pooled (golden-hash
	// pinned) — so this is purely a performance choice for mega-grid
	// host scales. Excluded from JSON so marshaled reports and scenario
	// hashes are invariant to the plan.
	Shards int `json:"-"`

	// SnapshotWeeks are the Figure 7 progression capture points.
	SnapshotWeeks []float64

	// Faults, when non-nil and enabled, injects the deterministic fault
	// plane (internal/faults): server outage windows, flaky uploads, host
	// churn, and the graceful-degradation behavior around them. nil — or a
	// config injecting nothing — leaves every layer byte-identical to the
	// fault-free code (the golden hashes pin this). A pointer with
	// omitempty so fault-free configs marshal to exactly the pre-fault
	// JSON. Single-project runs only; the shared multi-project grid
	// rejects it.
	Faults *faults.Config `json:",omitempty"`

	// Probe, if non-nil, attaches the observability plane (metrics
	// sampling and run tracing; see internal/obs) to the run. The probe is
	// resolved at construction/Reset time and its callbacks are read-only,
	// so a probed run's Report is byte-identical to an unprobed one and a
	// nil probe costs nothing. Excluded from JSON renderings of the config.
	Probe *obs.Probe `json:"-"`
}

// DefaultConfig returns the full-scale production configuration; callers
// normally reduce WorkScale/HostScale.
func DefaultConfig(ds *protein.Dataset, m *costmodel.Matrix) Config {
	return Config{
		DS:            ds,
		M:             m,
		HHours:        DeployedHHours,
		Server:        wcg.DefaultConfig(),
		Host:          volunteer.DefaultHostConfig(),
		Grid:          volunteer.DefaultGridModel(),
		ControlWeeks:  8,
		RampWeeks:     3,
		ControlShare:  0.05,
		FullShare:     0.48,
		Order:         CheapestFirst,
		WorkScale:     1,
		HostScale:     1,
		Seed:          protein.DefaultSeed + 2,
		MaxWeeks:      60,
		SnapshotWeeks: []float64{13, 16.3, 19.3, 25},
	}
}

// Share returns the project's share of the grid at week w of the campaign:
// the three-phase schedule of §5.1.
func (c Config) Share(w float64) float64 {
	switch {
	case w < c.ControlWeeks:
		return c.ControlShare
	case w < c.ControlWeeks+c.RampWeeks:
		frac := (w - c.ControlWeeks) / c.RampWeeks
		return c.ControlShare + frac*(c.FullShare-c.ControlShare)
	default:
		return c.FullShare
	}
}

// phaseAt names the §5.1 phase in force at week w — the run-trace label
// for the schedule Share implements.
func (c Config) phaseAt(w float64) string {
	switch {
	case w < c.ControlWeeks:
		return "control"
	case w < c.ControlWeeks+c.RampWeeks:
		return "ramp"
	default:
		return "full"
	}
}

// Snapshot is a Figure 7 progression capture: per-protein completed work
// fraction (in launch order) at a campaign week.
type Snapshot struct {
	Week            float64
	PerBatch        []float64 // completed fraction per batch, launch order
	OverallFraction float64   // completed ref-seconds / total ref-seconds
	BatchesDone     int       // batches fully completed
}

// ProteinsDoneFraction returns the fraction of proteins fully docked.
func (s Snapshot) ProteinsDoneFraction() float64 {
	if len(s.PerBatch) == 0 {
		return 0
	}
	return float64(s.BatchesDone) / float64(len(s.PerBatch))
}

// Report aggregates everything a campaign run produces.
type Report struct {
	Config Config

	// Completion.
	Completed     bool
	WeeksElapsed  float64
	TotalRefWork  float64 // ref-seconds of distinct work released
	DistinctWUs   int64
	ServerStats   wcg.Stats
	MeanSpeedDown float64 // population mean
	// HostsJoined counts every volunteer that ever joined (churn included).
	// Excluded from the JSON rendering so the PR 5/6 golden report bytes
	// stay valid; the mega-grid benchmarks read it to record fleet size.
	HostsJoined int `json:"-"`

	// Weekly series (real, de-scaled units).
	HCMDVFTP    *stats.Series // Figure 6(a): project VFTP per week
	GridVFTP    *stats.Series // Figure 6(a): available grid capacity
	ResultsWeek *stats.Series // Figure 6(b): results received per week

	// Figure 8: observed reported run time per result (hours).
	ReportedHours *stats.Histogram
	MeanReportedH float64

	// Figure 7 progression snapshots.
	Snapshots []Snapshot

	// Derived (Table 2 inputs).
	AvgVFTPWhole     float64
	AvgVFTPFullPower float64

	// Points accounting (§8): the middleware-independent alternative to
	// run-time VFTP the conclusion proposes.
	PointsTotal    float64 // points granted over the campaign (simulated units)
	AccountingBias float64 // run-time VFTP / points VFTP (≈ the hardware factor)
	HardwareTrend  float64 // benchmark score gained per week by joining devices

	// Kernel accounting, for the performance trajectory (BENCH_campaign.json).
	EventsExecuted uint64 // discrete events the kernel executed
	PeakPending    int    // high-water mark of the event queue

	// Faults summarizes the injected fault plane: downtime, upload losses,
	// churn, recovery lag. nil — and absent from the JSON rendering — on
	// fault-free runs, keeping the golden report bytes unchanged.
	Faults *faults.Report `json:",omitempty"`
}

// SpeedDownObserved returns mean reported time / mean reference time per
// useful result — the paper's 3.96 estimate (computed over all results, as
// the paper does: 13 h observed vs 3.3 h packaged).
func (r Report) SpeedDownObserved(meanRefHours float64) float64 {
	if meanRefHours <= 0 {
		return 0
	}
	return r.MeanReportedH / meanRefHours / r.ServerStats.RedundancyFactor()
}

// Table2 returns the volunteer↔dedicated equivalence computed from this
// run, using the run's own measured total inflation factor.
func (r Report) Table2() []vftp.EquivalenceRow {
	factor := r.TotalFactor()
	if factor <= 0 {
		factor = vftp.PaperTotalFactor
	}
	return vftp.Table2(r.AvgVFTPWhole, r.AvgVFTPFullPower, factor)
}

// TotalFactor returns the measured end-to-end CPU inflation: reported CPU
// consumed per reference second of distinct work (the paper's 5.43).
//
// Both the numerator and the denominator are accumulated in simulated
// (WorkScale-scaled) units — CPUSeconds is only ever spent on released
// workunits — so the ratio needs no de-scaling. Runs with HostScale ≠
// WorkScale remain well-defined: an under- or over-provisioned host fleet
// changes how long the campaign takes (and, through extra timeouts, the
// redundancy share of CPUSeconds), which is exactly the inflation the
// factor is meant to measure.
func (r Report) TotalFactor() float64 {
	if r.TotalRefWork <= 0 {
		return 0
	}
	return r.ServerStats.CPUSeconds / r.TotalRefWork
}

// Campaign is a configured, runnable single-project simulation: one tenant
// owning its entire host population, bound to it directly (no mux).
type Campaign struct {
	t      tenant
	engine *sim.Engine
	pop    *volunteer.Population  // legacy kernel (Shards == 0)
	kern   *volunteer.ShardKernel // sharded mega-grid kernel (Shards > 0)
	ledger *credit.Ledger
	plane  *faults.Plane // fault plane; kept across resets, bound only on fault runs

	// pooled marks a Runner-owned campaign: its arenas survive Run for the
	// next reset. A one-shot campaign instead releases them when Run ends —
	// the Report is a field of this struct, so a caller keeping the report
	// alive would otherwise pin every arena chunk of the finished run.
	pooled bool

	// Run-phase tickers, installed by start/startSharded and stopped by
	// finish/finishSharded. Struct fields (not Run locals) so the fork path
	// can capture their stopped flags alongside a snapshot; each ticker
	// owns one engine-arena event for its whole life, so the pointers stay
	// valid across a snapshot restore.
	weekly, daily, churn, sampler *sim.Ticker
}

// checkConfig validates cfg and fills in defaulted fields; New and reset
// share it so a pooled campaign enforces exactly the constructor's rules.
func checkConfig(cfg Config) Config {
	if cfg.DS == nil || cfg.M == nil {
		panic("project: config needs dataset and matrix")
	}
	if cfg.HHours <= 0 {
		cfg.HHours = DeployedHHours
	}
	if cfg.WorkScale <= 0 || cfg.WorkScale > 1 {
		panic(fmt.Sprintf("project: WorkScale %v out of (0,1]", cfg.WorkScale))
	}
	if cfg.HostScale <= 0 {
		panic("project: HostScale must be positive")
	}
	if cfg.MaxWeeks <= 0 {
		cfg.MaxWeeks = 60
	}
	if cfg.Shards < 0 {
		cfg.Shards = 0
	}
	if p := cfg.Probe; p != nil && p.Trace != nil {
		// Saboteur onsets surface from deep inside the host layer; route
		// them to the run trace through the host-config hook so the
		// volunteer package stays ignorant of obs.
		cfg.Host.OnSaboteurTurn = func(id int, at sim.Time) {
			p.Emit(at, "saboteur-turn", obs.Int("host", int64(id)))
		}
	}
	if cfg.Faults.Enabled() {
		norm := cfg.Faults.Normalized()
		cfg.Faults = &norm
		// Materialize the outage schedule once here; the plane recomputes
		// the same windows from the same inputs, so the server's refusal
		// gate and the plane's backoff advisor agree to the second.
		cfg.Server.Outages = faults.ServerOutages(
			faults.Windows(&norm, norm.EffectiveSeed(cfg.Seed), faultHorizon(cfg)))
	} else {
		// A present-but-inert fault config must not perturb anything: drop
		// it so the run (and its report bytes) is exactly fault-free.
		cfg.Faults = nil
		cfg.Server.Outages = nil
	}
	return cfg
}

// faultHorizon bounds the materialized outage schedule: the full span the
// engine can reach, including the straggler drain after MaxWeeks.
func faultHorizon(cfg Config) float64 {
	return cfg.MaxWeeks*sim.Week + 30*sim.Day
}

// New builds a campaign from the configuration.
func New(cfg Config) *Campaign {
	cfg = checkConfig(cfg)
	c := &Campaign{engine: sim.NewEngine()}
	c.t.initTenant(cfg, wcg.NewServer(c.engine, cfg.Server))
	ws := c.workSource(cfg)
	if cfg.Shards > 0 {
		c.kern = volunteer.NewShardKernel(c.engine, ws, cfg.Host,
			rng.New(cfg.Seed), cfg.Shards, shardWindow(cfg))
	} else {
		c.pop = volunteer.NewPopulation(c.engine, ws, cfg.Host, rng.New(cfg.Seed))
	}
	c.ledger = credit.NewLedger()
	return c
}

// workSource resolves what the host kernel binds: the tenant's server
// directly on a fault-free run (byte-identical to the pre-fault code), or
// the fault plane wrapping it. The plane struct is pooled across resets;
// only fault runs rearm and bind it.
func (c *Campaign) workSource(cfg Config) volunteer.WorkSource {
	if cfg.Faults == nil {
		return c.t.server
	}
	seed := cfg.Faults.EffectiveSeed(cfg.Seed)
	if c.plane == nil {
		c.plane = faults.NewPlane(c.engine, c.t.server, *cfg.Faults, seed, faultHorizon(cfg))
	} else {
		c.plane.Reset(c.engine, c.t.server, *cfg.Faults, seed, faultHorizon(cfg))
	}
	return c.plane
}

// activePlane returns the fault plane when the current run has one bound,
// nil otherwise (the plane struct may survive from an earlier pooled fault
// run without being part of this run).
func (c *Campaign) activePlane() *faults.Plane {
	if c.t.cfg.Faults == nil {
		return nil
	}
	return c.plane
}

// shardWindow picks the sharded kernel's barrier width: half the target
// task wall time, capped by the idle-retry interval — wide enough that
// almost every host continuation lands beyond the current window (the
// overlay heap catches the rest; any positive value is correct).
func shardWindow(cfg Config) float64 {
	w := cfg.Host.IdleRetry
	if w <= 0 {
		w = 6 * sim.Hour
	}
	if h := cfg.HHours * 1800; h > 0 && h < w {
		w = h
	}
	if w < sim.Minute {
		w = sim.Minute
	}
	return w
}

// reset rearms the campaign for another run under a new configuration,
// retaining every layer's backing storage: the kernel's heap and event
// arena, the middleware's queue/ring/state arenas, the host-struct pool,
// the batch plans, the weekly accumulators, the credit ledger's dense
// slices, and the report's series/histogram buffers. The previous run's
// Report is overwritten — this is the Runner's pooled path.
func (c *Campaign) reset(cfg Config) {
	cfg = checkConfig(cfg)
	c.engine.Reset()
	c.t.server.Reset(cfg.Server)
	ws := c.workSource(cfg)
	if cfg.Shards > 0 {
		if c.kern == nil {
			c.kern = volunteer.NewShardKernel(c.engine, ws, cfg.Host,
				rng.New(cfg.Seed), cfg.Shards, shardWindow(cfg))
		} else {
			c.kern.Reset(c.engine, ws, cfg.Host,
				rng.New(cfg.Seed), cfg.Shards, shardWindow(cfg))
		}
	} else {
		if c.pop == nil {
			c.pop = volunteer.NewPopulation(c.engine, ws, cfg.Host, rng.New(cfg.Seed))
		} else {
			c.pop.Reset(cfg.Host, rng.New(cfg.Seed))
			c.pop.Rebind(ws) // the source wrapping may differ run to run
		}
	}
	c.ledger.Reset()
	c.t.reset(cfg)
}

// Runner runs campaigns back to back on one reusable arena of state: the
// first Run builds every slab, heap and host array, and each subsequent
// Run recycles them, so a steady-state replication allocates a small
// fraction of a fresh campaign. The returned Report (and everything it
// references: series, histogram, snapshots) is owned by the Runner and
// valid only until the next Run call — callers that need a run's output
// past that point must copy what they keep. A Runner is not safe for
// concurrent use; pool one per worker.
type Runner struct {
	c *Campaign

	// snap holds the Begin/RunTo/Snapshot/Fork path's capture buffers
	// (fork.go); one snapshot at a time, reused across groups and runs.
	snap runSnapshot
}

// NewRunner returns an empty runner; the first Run builds its arenas.
func NewRunner() *Runner { return &Runner{} }

// Run simulates one campaign, reusing the previous run's storage.
// Reports are bit-for-bit identical to New(cfg).Run() for the same cfg.
func (r *Runner) Run(cfg Config) *Report {
	if r.c == nil {
		r.c = New(cfg)
		r.c.pooled = true
		// Retain from the start so the first run's chunks already land in
		// the reusable arenas (before any workunit is carved).
		r.c.t.server.Retain()
	} else {
		r.c.reset(cfg)
	}
	return r.c.Run()
}

// Run executes the campaign and returns its report.
func (c *Campaign) Run() *Report {
	if c.t.cfg.Shards > 0 {
		c.startSharded()
		c.kern.RunUntil(c.t.cfg.MaxWeeks * sim.Week)
		return c.finishSharded()
	}
	c.start()
	c.engine.RunUntil(c.t.cfg.MaxWeeks * sim.Week)
	return c.finish()
}

// start arms the legacy-kernel run: batches prepared, callbacks bound,
// probe attached, phase/feeder/churn tickers installed. The weekly loop
// keeps its state in the tenant (t.done, t.doneWeek, t.snapIdx) rather
// than in closure cells so a tenant snapshot carries the loop state and a
// restored fork resumes it; the split into start / engine run / finish is
// what lets the fork path (fork.go) stop the run at a divergence time.
func (c *Campaign) start() {
	cfg := &c.t.cfg
	c.t.prepare()
	c.t.bind()
	probe := cfg.Probe
	c.sampler = c.bindProbe(probe)

	c.weekly = c.engine.Every(0, sim.Week, c.weeklyFn(probe))
	c.weekly.Tag(sim.Call{Kind: sim.CallTickWeekly})
	// A daily feeder keeps the queue from draining dry between the weekly
	// phase adjustments (the server would otherwise starve fast hosts).
	c.daily = c.engine.Every(sim.Day/2, sim.Day, c.dailyFn())
	c.daily.Tag(sim.Call{Kind: sim.CallTickDaily})
	// Churn: permanent departures paired with replacement joins, sampled
	// at a fixed cadence so the injection is an ordinary kernel event.
	// SetTarget stops the oldest hosts and the restore spawns replacements
	// from the same FIFO seed stream both kernels share.
	c.churn = nil
	if plane := c.activePlane(); plane != nil && plane.ChurnEnabled() {
		c.churn = c.engine.Every(faults.ChurnOffset, faults.ChurnInterval, c.churnFn(plane))
		c.churn.Tag(sim.Call{Kind: sim.CallTickChurn})
	}
}

// weeklyFn builds the legacy weekly phase-schedule tick. A factory (rather
// than an inline closure in start) so snapshot adoption can rebuild the
// identical closure on a dormant ticker; the body is unchanged from the
// pre-portable inline version.
func (c *Campaign) weeklyFn(probe *obs.Probe) func(sim.Time) {
	cfg := &c.t.cfg
	return func(now sim.Time) {
		w := now / sim.Week
		if c.t.done {
			return
		}
		if probe != nil {
			if ph := cfg.phaseAt(w); ph != c.t.obsPhase {
				c.t.obsPhase = ph
				probe.Emit(now, "phase", obs.Str("phase", ph), obs.Num("share", cfg.Share(w)))
			}
		}
		// Figure 7 snapshots (captured at the first tick at/after the mark).
		for c.t.snapIdx < len(cfg.SnapshotWeeks) && w >= cfg.SnapshotWeeks[c.t.snapIdx] {
			c.t.captureSnapshot(w)
			c.t.snapIdx++
		}
		if c.t.allDone() {
			c.t.done = true
			c.t.doneWeek = w
			// Capture any snapshot marks not yet reached: the project is
			// finished, so they all see the final (complete) state.
			for c.t.snapIdx < len(cfg.SnapshotWeeks) {
				c.t.captureSnapshot(cfg.SnapshotWeeks[c.t.snapIdx])
				c.t.snapIdx++
			}
			c.pop.SetTarget(0)
			return
		}
		// Track the phase schedule.
		gridCap := cfg.Grid.VFTPAt(CampaignStartWeek + w)
		target := int(math.Round(cfg.Share(w) * gridCap * cfg.HostScale))
		if target < 1 {
			target = 1
		}
		c.pop.SetTarget(target)
		c.t.feed(c.pop.Active())
	}
}

// dailyFn builds the legacy daily feeder tick (factory: see weeklyFn).
func (c *Campaign) dailyFn() func(sim.Time) {
	return func(sim.Time) {
		if !c.t.done {
			c.t.feed(c.pop.Active())
		}
	}
}

// churnFn builds the legacy churn tick (factory: see weeklyFn).
func (c *Campaign) churnFn(plane *faults.Plane) func(sim.Time) {
	return func(sim.Time) {
		if c.t.done {
			return
		}
		if n := plane.ChurnCount(c.pop.Active()); n > 0 {
			a := c.pop.Active()
			c.pop.SetTarget(a - n)
			c.pop.SetTarget(a)
		}
	}
}

// finish stops the phase tickers, drains the straggler tail and fills the
// report — the back half of the legacy-kernel Run.
func (c *Campaign) finish() *Report {
	cfg := &c.t.cfg
	c.weekly.Stop()
	c.daily.Stop()
	if c.churn != nil {
		c.churn.Stop()
	}
	// Drain any stragglers (late returns) without advancing phases.
	c.engine.RunUntil(cfg.MaxWeeks*sim.Week + 30*sim.Day)
	if c.sampler != nil {
		c.sampler.Stop()
	}

	c.t.finishReport(c.engine, c.t.done, c.t.doneWeek)
	r := &c.t.report
	if probe := cfg.Probe; probe != nil {
		probe.Emit(c.engine.Now(), "run-end",
			obs.Str("completed", boolStr(c.t.done)),
			obs.Num("weeks", r.WeeksElapsed),
			obs.Int("events", int64(r.EventsExecuted)),
			obs.Int("completed-wus", r.ServerStats.Completed))
	}
	r.MeanSpeedDown = c.pop.MeanSpeedDown()
	r.HostsJoined = c.pop.TotalJoined()
	r.PointsTotal, r.AccountingBias, r.HardwareTrend = creditPopulation(c.pop, c.ledger)
	if plane := c.activePlane(); plane != nil {
		fr := plane.BuildReport()
		r.Faults = &fr
	}
	if !c.pooled {
		// Release the run context: kernel, middleware, hosts, scratch. The
		// returned report shares this struct, and a one-shot caller holding
		// it must not keep the dead simulation's arenas live with it.
		c.engine, c.pop, c.ledger = nil, nil, nil
		c.t.release()
	}
	return r
}
