package project

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/protein"
	"repro/internal/vftp"
)

// testConfig returns a heavily scaled-down campaign that still exercises
// every mechanism: three phases, batch release, redundancy, timeouts.
func testConfig(t testing.TB, scale float64) Config {
	t.Helper()
	ds := protein.HCMD168()
	m := costmodel.SynthesizeHCMD(ds)
	cfg := DefaultConfig(ds, m)
	cfg.WorkScale = scale
	cfg.HostScale = scale
	return cfg
}

// runScaled caches one scaled campaign run for the package's tests.
var cachedReport *Report

func scaledReport(t testing.TB) *Report {
	t.Helper()
	if cachedReport == nil {
		cfg := testConfig(t, 1.0/168) // one ligand per receptor
		cachedReport = New(cfg).Run()
	}
	return cachedReport
}

func TestCampaignCompletes(t *testing.T) {
	r := scaledReport(t)
	if !r.Completed {
		t.Fatalf("campaign did not complete within %v weeks", r.Config.MaxWeeks)
	}
	if r.ServerStats.Completed != r.DistinctWUs {
		t.Fatalf("completed %d of %d distinct workunits", r.ServerStats.Completed, r.DistinctWUs)
	}
}

func TestCampaignDurationShape(t *testing.T) {
	// The paper: 26 weeks. Accept a generous band — the scaled run keeps
	// the shape, not the exact length.
	r := scaledReport(t)
	if r.WeeksElapsed < 18 || r.WeeksElapsed > 40 {
		t.Fatalf("campaign took %.1f weeks, want ≈ 26", r.WeeksElapsed)
	}
}

func TestRedundancyFactorShape(t *testing.T) {
	// Paper: 1.37 overall (73 % useful results).
	r := scaledReport(t)
	red := r.ServerStats.RedundancyFactor()
	if red < 1.1 || red > 1.7 {
		t.Fatalf("redundancy factor %.3f, want ≈ 1.37", red)
	}
	useful := r.ServerStats.UsefulFraction()
	if useful < 0.55 || useful > 0.92 {
		t.Fatalf("useful fraction %.3f, want ≈ 0.73", useful)
	}
}

func TestThreePhasesVisible(t *testing.T) {
	r := scaledReport(t)
	s := r.HCMDVFTP
	if s.Len() < 15 {
		t.Fatalf("too few weekly points: %d", s.Len())
	}
	control := s.Window(1, r.Config.ControlWeeks-1).YMean()
	full := s.Window(r.Config.ControlWeeks+r.Config.RampWeeks+1, r.WeeksElapsed-2).YMean()
	if !(full > 4*control) {
		t.Fatalf("full-power VFTP %.0f not ≫ control %.0f", full, control)
	}
}

func TestVFTPMagnitudes(t *testing.T) {
	// Paper (Figure 6a): whole-period average 16,450; full power 26,248.
	r := scaledReport(t)
	if r.AvgVFTPWhole < 8000 || r.AvgVFTPWhole > 30000 {
		t.Fatalf("whole-period VFTP %.0f, want ≈ 16,450", r.AvgVFTPWhole)
	}
	if r.AvgVFTPFullPower < 15000 || r.AvgVFTPFullPower > 40000 {
		t.Fatalf("full-power VFTP %.0f, want ≈ 26,248", r.AvgVFTPFullPower)
	}
	if r.AvgVFTPFullPower <= r.AvgVFTPWhole {
		t.Fatal("full-power average must exceed whole-period average")
	}
}

func TestTotalFactorShape(t *testing.T) {
	// Paper: consumed CPU = 5.43× the reference estimate.
	r := scaledReport(t)
	f := r.TotalFactor()
	if f < 3.5 || f > 7.5 {
		t.Fatalf("total factor %.2f, want ≈ 5.43", f)
	}
	// And the speed-down net of redundancy ≈ 3.96.
	net := f / r.ServerStats.RedundancyFactor()
	if net < 3.0 || net > 5.0 {
		t.Fatalf("net speed-down %.2f, want ≈ 3.96", net)
	}
}

func TestProgressionSnapshots(t *testing.T) {
	r := scaledReport(t)
	if len(r.Snapshots) != len(r.Config.SnapshotWeeks) {
		t.Fatalf("got %d snapshots, want %d", len(r.Snapshots), len(r.Config.SnapshotWeeks))
	}
	prev := -1.0
	for _, s := range r.Snapshots {
		if s.OverallFraction < prev-1e-9 {
			t.Fatalf("overall progression decreased: %v after %v", s.OverallFraction, prev)
		}
		prev = s.OverallFraction
		if len(s.PerBatch) != r.Config.DS.Len() {
			t.Fatalf("snapshot has %d batches", len(s.PerBatch))
		}
	}
	// Figure 7's headline: cheapest-first means the fraction of proteins
	// done runs ahead of the fraction of work done (85% proteins vs 47%
	// work on 05-02-07).
	mid := r.Snapshots[2]
	if !(mid.ProteinsDoneFraction() > mid.OverallFraction) {
		t.Fatalf("proteins done %.2f should exceed work done %.2f under cheapest-first",
			mid.ProteinsDoneFraction(), mid.OverallFraction)
	}
	// Final snapshot near completion.
	last := r.Snapshots[len(r.Snapshots)-1]
	if last.OverallFraction < 0.8 {
		t.Fatalf("final snapshot only %.2f complete", last.OverallFraction)
	}
}

func TestReportedHoursFigure8(t *testing.T) {
	// Paper: packaged ≈ 3.3 h on the reference CPU, observed ≈ 13 h on the
	// volunteer grid.
	r := scaledReport(t)
	if r.MeanReportedH < 8 || r.MeanReportedH > 20 {
		t.Fatalf("mean reported hours %.1f, want ≈ 13", r.MeanReportedH)
	}
	if r.ReportedHours.Total() == 0 {
		t.Fatal("empty reported-hours histogram")
	}
}

func TestTable2FromRun(t *testing.T) {
	r := scaledReport(t)
	rows := r.Table2()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Paper: 3,029 and 4,833 dedicated processors. Shape: thousands, and
	// full power > whole period.
	if rows[0].Dedicated < 1200 || rows[0].Dedicated > 6500 {
		t.Fatalf("whole-period equivalent %.0f, want ≈ 3,029", rows[0].Dedicated)
	}
	if rows[1].Dedicated <= rows[0].Dedicated {
		t.Fatal("full-power equivalent must exceed whole-period")
	}
	if rows[1].Dedicated < 2000 || rows[1].Dedicated > 9000 {
		t.Fatalf("full-power equivalent %.0f, want ≈ 4,833", rows[1].Dedicated)
	}
}

func TestShareSchedule(t *testing.T) {
	cfg := testConfig(t, 1.0/168)
	if got := cfg.Share(0); got != cfg.ControlShare {
		t.Fatalf("share(0) = %v", got)
	}
	if got := cfg.Share(cfg.ControlWeeks + cfg.RampWeeks + 1); got != cfg.FullShare {
		t.Fatalf("full share = %v", got)
	}
	mid := cfg.Share(cfg.ControlWeeks + cfg.RampWeeks/2)
	if mid <= cfg.ControlShare || mid >= cfg.FullShare {
		t.Fatalf("ramp share %v not between %v and %v", mid, cfg.ControlShare, cfg.FullShare)
	}
	// Monotone over the ramp.
	prev := -1.0
	for w := 0.0; w < 20; w += 0.5 {
		s := cfg.Share(w)
		if s < prev-1e-12 {
			t.Fatalf("share not monotone at week %v", w)
		}
		prev = s
	}
}

func TestLaunchOrderCheapestFirst(t *testing.T) {
	cfg := testConfig(t, 1.0/168)
	c := New(cfg)
	c.t.prepare()
	prev := -1.0
	for _, bi := range c.t.order {
		cost := c.t.batches[bi].cost
		if cost < prev-1e-9 {
			t.Fatal("batches not in ascending cost order")
		}
		prev = cost
	}
}

func TestLaunchOrderCostliestFirst(t *testing.T) {
	cfg := testConfig(t, 1.0/168)
	cfg.Order = CostliestFirst
	c := New(cfg)
	c.t.prepare()
	if c.t.batches[c.t.order[0]].cost < c.t.batches[c.t.order[len(c.t.order)-1]].cost {
		t.Fatal("costliest-first order wrong")
	}
}

func TestLaunchOrderRandomDeterministic(t *testing.T) {
	cfg := testConfig(t, 1.0/168)
	cfg.Order = RandomOrder
	a := New(cfg)
	a.t.prepare()
	b := New(cfg)
	b.t.prepare()
	for i := range a.t.order {
		if a.t.order[i] != b.t.order[i] {
			t.Fatal("random order not seed-deterministic")
		}
	}
}

func TestWorkScaleConservation(t *testing.T) {
	// Total released work at scale s must be ≈ s × full total.
	cfg := testConfig(t, 1.0/168)
	c := New(cfg)
	c.t.prepare()
	full := cfg.M.TotalWork(cfg.DS)
	want := full / 168
	if math.Abs(c.t.report.TotalRefWork-want)/want > 0.25 {
		t.Fatalf("scaled work %.3g, want ≈ %.3g", c.t.report.TotalRefWork, want)
	}
}

func TestConfigValidation(t *testing.T) {
	ds := protein.Generate(4, 1)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 1})
	cases := []Config{
		{},
		func() Config { c := DefaultConfig(ds, m); c.WorkScale = 0; return c }(),
		func() Config { c := DefaultConfig(ds, m); c.WorkScale = 2; return c }(),
		func() Config { c := DefaultConfig(ds, m); c.HostScale = 0; return c }(),
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %d should panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestSpeedDownObservedAccessor(t *testing.T) {
	r := scaledReport(t)
	meanRef := r.TotalRefWork / float64(r.DistinctWUs) / 3600
	sd := r.SpeedDownObserved(meanRef)
	if sd < 2.5 || sd > 6 {
		t.Fatalf("observed speed-down %.2f, want ≈ 3.96", sd)
	}
	if r.SpeedDownObserved(0) != 0 {
		t.Fatal("zero mean ref should yield 0")
	}
}

func TestPaperConstantsCrossCheck(t *testing.T) {
	// The phase schedule must reproduce the paper's whole-period average
	// analytically: Σ share(w)·grid(w) / 26 ≈ 16,450.
	cfg := testConfig(t, 1.0/168)
	var sum float64
	for w := 0.0; w < 26; w++ {
		sum += cfg.Share(w) * cfg.Grid.VFTPAt(CampaignStartWeek+w)
	}
	avg := sum / 26
	if avg < 12000 || avg > 22000 {
		t.Fatalf("analytic whole-period VFTP %.0f, want ≈ 16,450", avg)
	}
	_ = vftp.PaperTotalFactor
}
