package project

import (
	"bytes"
	"encoding/json"
	"runtime"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/protein"
	"repro/internal/sim"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// TestCampaignByteDeterminism is the regression guard behind the sweep
// engine's resume and parallelism guarantees: the same configuration and
// seed must yield a byte-identical campaign report on every run.
func TestCampaignByteDeterminism(t *testing.T) {
	render := func() []byte {
		ds := protein.Generate(10, 51)
		m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 52})
		cfg := DefaultConfig(ds, m)
		cfg.WorkScale = 0.3
		cfg.HostScale = 0.002
		cfg.Seed = 777
		rep := New(cfg).Run()
		// The config carries the (pointer-identical but value-equal) dataset
		// and matrix; drop it so the comparison covers the run's outputs.
		rep.Config = Config{}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed produced different reports:\nfirst:  %.200s…\nsecond: %.200s…", first, second)
	}
}

// determinismConfig is the configuration the byte-determinism tests run.
func determinismConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	ds := protein.Generate(10, 51)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 52})
	cfg := DefaultConfig(ds, m)
	cfg.WorkScale = 0.3
	cfg.HostScale = 0.002
	cfg.Seed = seed
	return cfg
}

func renderReport(t *testing.T, rep *Report) []byte {
	t.Helper()
	rep.Config = Config{}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRunnerReuseByteIdentical extends the byte-determinism regression to
// the pooled path: a campaign run on a Runner whose arenas are dirty from
// previous (differently configured) runs must produce a report
// byte-identical to a fresh New(cfg).Run().
func TestRunnerReuseByteIdentical(t *testing.T) {
	cfg := determinismConfig(t, 777)
	fresh := renderReport(t, New(cfg).Run())

	runner := NewRunner()
	// Dirty every arena with two runs under different seeds and policies.
	other := determinismConfig(t, 4242)
	other.Order = CostliestFirst
	other.Server.InitialQuorum = 1
	other.Server.SteadyQuorum = 1
	runner.Run(other)
	runner.Run(determinismConfig(t, 31))
	// The reused report's buffers are owned by the runner: marshal before
	// any further Run.
	reused := renderReport(t, runner.Run(cfg))
	if !bytes.Equal(fresh, reused) {
		t.Fatalf("pooled run diverged from fresh run:\nfresh:  %.300s…\nreused: %.300s…", fresh, reused)
	}
	// And the pooled state is not sticky: a different seed still differs.
	if probe := renderReport(t, runner.Run(determinismConfig(t, 778))); bytes.Equal(fresh, probe) {
		t.Fatal("different seed produced an identical report; runner replaying stale state")
	}
}

// TestRunnerReusePolicyConfigs extends the pooled byte-determinism
// regression across the policy layer: campaigns under non-default
// schedulers, validators, deadline classes and host cohorts, run on a
// Runner whose arenas are dirty from other policy runs, must match their
// fresh equivalents bit for bit — and a default-policy run right after
// must too (no policy state may leak through Reset).
func TestRunnerReusePolicyConfigs(t *testing.T) {
	policyCfg := func(seed uint64) Config {
		cfg := determinismConfig(t, seed)
		cfg.Server.Scheduler = wcg.BatchPriorityScheduler{}
		cfg.Server.Validator = wcg.AdaptiveValidator{Streak: 5}
		cfg.Server.DeadlinePolicy = wcg.DeadlineClasses{
			{MaxRefSeconds: 2 * 3600, Deadline: 4 * sim.Day},
			{Deadline: cfg.Server.Deadline},
		}
		cfg.Host.Profiles = volunteer.SaboteurProfiles(0.05, cfg.Host.ErrorProb, 0.25)
		return cfg
	}
	freshPolicy := renderReport(t, New(policyCfg(777)).Run())
	freshDefault := renderReport(t, New(determinismConfig(t, 777)).Run())

	runner := NewRunner()
	lifo := determinismConfig(t, 31)
	lifo.Server.Scheduler = wcg.LIFOScheduler{}
	lifo.Host.Profiles = volunteer.DiurnalProfiles(12, lifo.Host.ErrorProb)
	runner.Run(lifo) // dirty the arenas with a different policy mix
	if got := renderReport(t, runner.Run(policyCfg(777))); !bytes.Equal(freshPolicy, got) {
		t.Fatalf("pooled policy run diverged from fresh:\nfresh:  %.300s…\nreused: %.300s…", freshPolicy, got)
	}
	if got := renderReport(t, runner.Run(determinismConfig(t, 777))); !bytes.Equal(freshDefault, got) {
		t.Fatalf("default run after policy runs diverged (policy state leaked through Reset):\nfresh:  %.300s…\nreused: %.300s…", freshDefault, got)
	}
}

// TestRunnerSteadyStateAllocs asserts the reuse payoff: once a Runner's
// arenas are built, a replication allocates a small fraction of the first
// run's bytes. (The sweep-scale benchmark BenchmarkSweepCell demonstrates
// <10 %; this tiny campaign carries proportionally more fixed per-run
// report overhead, so the test gate is looser.)
func TestRunnerSteadyStateAllocs(t *testing.T) {
	cfg := determinismConfig(t, 99)
	runner := NewRunner()
	measure := func() uint64 {
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		if rep := runner.Run(cfg); !rep.Completed {
			t.Fatal("campaign did not complete")
		}
		runtime.ReadMemStats(&ms1)
		return ms1.TotalAlloc - ms0.TotalAlloc
	}
	first := measure()
	measure() // warm: second run may still grow a few buffers
	steady := measure()
	if steady*4 > first {
		t.Fatalf("steady-state replication allocated %d bytes, over 25%% of the first run's %d", steady, first)
	}
}
