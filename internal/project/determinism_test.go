package project

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/protein"
)

// TestCampaignByteDeterminism is the regression guard behind the sweep
// engine's resume and parallelism guarantees: the same configuration and
// seed must yield a byte-identical campaign report on every run.
func TestCampaignByteDeterminism(t *testing.T) {
	render := func() []byte {
		ds := protein.Generate(10, 51)
		m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 52})
		cfg := DefaultConfig(ds, m)
		cfg.WorkScale = 0.3
		cfg.HostScale = 0.002
		cfg.Seed = 777
		rep := New(cfg).Run()
		// The config carries the (pointer-identical but value-equal) dataset
		// and matrix; drop it so the comparison covers the run's outputs.
		rep.Config = Config{}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	first := render()
	second := render()
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed produced different reports:\nfirst:  %.200s…\nsecond: %.200s…", first, second)
	}
}
