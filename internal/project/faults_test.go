package project

import (
	"bytes"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
)

// faultStressConfig is the determinism configuration with every fault class
// turned on at once: weekly maintenance, frequent unplanned outages, a
// lossy uplink with retries, and heavy churn. The kernel-equality tests run
// it because faults exercise exactly the paths that could diverge between
// the legacy host loop and the sharded kernel (backoff scheduling, retry
// events, churn replacements).
func faultStressConfig(t *testing.T, seed uint64) Config {
	t.Helper()
	cfg := determinismConfig(t, seed)
	cfg.Faults = &faults.Config{
		MaintenanceEvery:     sim.Week,
		MaintenanceDuration:  4 * sim.Hour,
		UnplannedPerWeek:     0.2,
		UnplannedMeanSeconds: 8 * sim.Hour,
		UploadLossProb:       0.02,
		UploadRetries:        3,
		ChurnPerWeek:         0.05,
	}
	return cfg
}

// TestFaultRunByteEqualAcrossKernels is the tentpole invariant: a fault
// scenario produces byte-identical reports on the legacy kernel and on the
// sharded kernel at every shard count, fresh and pooled.
func TestFaultRunByteEqualAcrossKernels(t *testing.T) {
	legacy := renderReport(t, New(faultStressConfig(t, 777)).Run())
	if !bytes.Contains(legacy, []byte(`"Faults"`)) {
		t.Fatal("fault run report carries no Faults section")
	}
	for _, k := range []int{1, 4, 8} {
		cfg := faultStressConfig(t, 777)
		cfg.Shards = k
		if got := renderReport(t, New(cfg).Run()); !bytes.Equal(got, legacy) {
			t.Errorf("shards=%d fault report differs from the legacy kernel's", k)
		}
	}
	// Pooled: arenas dirtied by a different fault run, then the same cell.
	runner := NewRunner()
	runner.Run(faultStressConfig(t, 778))
	if got := renderReport(t, runner.Run(faultStressConfig(t, 777))); !bytes.Equal(got, legacy) {
		t.Error("pooled fault report differs from the fresh legacy run")
	}
	pooledSharded := faultStressConfig(t, 777)
	pooledSharded.Shards = 4
	if got := renderReport(t, runner.Run(pooledSharded)); !bytes.Equal(got, legacy) {
		t.Error("pooled sharded fault report differs from the fresh legacy run")
	}
}

// TestZeroFaultConfigKeepsGoldenBytes pins the other half of the contract:
// an all-zero (disabled) fault config — and a pooled runner that just
// finished a fault run — still reproduce the pre-fault-plane golden hash
// exactly. The fault plane must cost zero bytes when off.
func TestZeroFaultConfigKeepsGoldenBytes(t *testing.T) {
	cfg := determinismConfig(t, 777)
	cfg.Faults = &faults.Config{} // present but disabled
	if got := reportHash(t, New(cfg).Run()); got != goldenSeed777 {
		t.Errorf("disabled fault config hash = %s, want golden %s", got, goldenSeed777)
	}

	// The pooled fault→zero-fault transition is the Rebind regression: the
	// population must re-attach to the raw server once the plane goes away.
	runner := NewRunner()
	runner.Run(faultStressConfig(t, 778))
	if got := reportHash(t, runner.Run(determinismConfig(t, 777))); got != goldenSeed777 {
		t.Errorf("pooled fault→zero-fault hash = %s, want golden %s (stale fault plane still bound?)", got, goldenSeed777)
	}
	shardedZero := determinismConfig(t, 777)
	shardedZero.Shards = 4
	if got := reportHash(t, runner.Run(shardedZero)); got != goldenSeed777 {
		t.Errorf("pooled fault→zero-fault sharded hash = %s, want golden %s", got, goldenSeed777)
	}
}

// TestFaultDegradationObservable checks the faults actually bite and the
// degradation machinery reports them: refused fetches, downtime, lost
// uploads, churned hosts, recoveries.
func TestFaultDegradationObservable(t *testing.T) {
	cfg := faultStressConfig(t, 777)
	rep := New(cfg).Run()
	fr := rep.Faults
	if fr == nil {
		t.Fatal("fault run produced no fault report")
	}
	if fr.Outages == 0 || fr.PlannedOutages == 0 || fr.DowntimeSeconds <= 0 {
		t.Errorf("no outages injected: %+v", fr)
	}
	if fr.LostUploads == 0 || fr.RetriedUploads == 0 {
		t.Errorf("flaky uplink never fired: %+v", fr)
	}
	if fr.Departures == 0 {
		t.Errorf("churn never fired: %+v", fr)
	}
	if fr.Recoveries == 0 || fr.MeanRecoverySeconds <= 0 {
		t.Errorf("no recoveries recorded: %+v", fr)
	}
	if rep.ServerStats.Refused == 0 {
		t.Error("server never refused a fetch during an outage")
	}

	// Churn turns hosts over: strictly more identities join than in the
	// fault-free run of the same configuration.
	base := New(determinismConfig(t, 777)).Run()
	if rep.HostsJoined <= base.HostsJoined {
		t.Errorf("churned run joined %d hosts, fault-free %d — replacements missing",
			rep.HostsJoined, base.HostsJoined)
	}
	if base.Faults != nil {
		t.Error("fault-free run carries a Faults report")
	}
	if base.ServerStats.Refused != 0 || base.ServerStats.Deferred != 0 {
		t.Error("fault-free run recorded refused/deferred results")
	}
}

// TestDeferredValidationDrains checks the outage spool: results that arrive
// while the server is down are deferred, then validated at the window end —
// the run still completes and the deferred count shows up in ServerStats.
func TestDeferredValidationDrains(t *testing.T) {
	cfg := determinismConfig(t, 777)
	cfg.Faults = &faults.Config{
		MaintenanceEvery:    sim.Week,
		MaintenanceDuration: 12 * sim.Hour, // long windows so uploads land inside
	}
	rep := New(cfg).Run()
	if rep.ServerStats.Deferred == 0 {
		t.Skip("no result happened to arrive inside an outage window at this scale")
	}
	if !rep.Completed {
		t.Error("campaign with deferred validation did not complete")
	}
	if rep.ServerStats.Received == 0 {
		t.Error("deferred results were never validated")
	}
}
