package project

import (
	"repro/internal/credit"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// This file is the snapshot/fork path: a Runner can run a campaign's
// shared prefix once, capture the full run context at a divergence time,
// and then finish the run repeatedly — once per what-if configuration —
// restoring the context between forks. The model is restore-in-place (see
// the snapshot package doc): in-flight event closures point at the live
// engine, server, hosts and tenant, so a fork is not an independent copy
// but a byte-exact rewind of the one context; forks run sequentially.
//
//	r.Begin(base)            // build + arm, nothing executed
//	r.RunTo(T)               // events strictly before T
//	r.Snapshot()             // capture at the boundary
//	rep := r.Fork(cellCfg)   // rewind, swap config, finish → report
//	rep2 := r.Fork(cell2Cfg) // next cell, same prefix
//	r.Restore()              // rewind under base to continue to a later T
//
// Each returned Report is owned by the Runner and valid only until the
// next Fork/Run call, exactly like Runner.Run. Fork requires an unprobed
// run and a fork config that agrees with the prefix config on everything
// resolved at bind time (dataset, seed, scales, order, kernel plan,
// horizon, fault plane); wcg.Server.ApplyConfig documents the middleware
// half of that contract.

// tenantSnapshot captures the tenant's run state: config, batch progress,
// release cursor, weekly accumulators, the weekly-loop state and the
// report under construction (series/histogram/snapshot buffers under the
// snapshot slice rule; batch slicing plans are built in prepare and
// immutable during the run, so the batch-struct copies carry them).
type tenantSnapshot struct {
	cfg Config

	batches snapshot.Slice[batch]
	order   snapshot.Slice[int]

	next, outstanding int

	weeklyCPU   snapshot.Slice[float64]
	weeklyCount snapshot.Slice[int64]

	done     bool
	doneWeek float64
	snapIdx  int
	coCPU    float64
	obsPhase string

	report Report
	snaps  snapshot.Slice[Snapshot]
	hist   stats.HistogramSnapshot
	series [3]stats.SeriesSnapshot
}

func (s *tenantSnapshot) capture(t *tenant) {
	s.cfg = t.cfg
	s.batches.Capture(t.batches)
	s.order.Capture(t.order)
	s.next, s.outstanding = t.next, t.outstanding
	s.weeklyCPU.Capture(t.weeklyCPU)
	s.weeklyCount.Capture(t.weeklyCount)
	s.done, s.doneWeek, s.snapIdx, s.coCPU = t.done, t.doneWeek, t.snapIdx, t.coCPU
	s.obsPhase = t.obsPhase
	s.report = t.report
	s.snaps.Capture(t.report.Snapshots)
	s.hist.Capture(t.report.ReportedHours)
	// The weekly series are nil until a first finishReport has created
	// them; a fork's finish creates fresh ones then, and the struct-copy
	// restore drops them again.
	for i, ser := range []*stats.Series{t.report.HCMDVFTP, t.report.GridVFTP, t.report.ResultsWeek} {
		if ser != nil {
			s.series[i].Capture(ser)
		}
	}
}

func (s *tenantSnapshot) restore(t *tenant) {
	t.cfg = s.cfg
	t.batches = s.batches.Restore()
	t.order = s.order.Restore()
	t.next, t.outstanding = s.next, s.outstanding
	t.weeklyCPU = s.weeklyCPU.Restore()
	t.weeklyCount = s.weeklyCount.Restore()
	t.done, t.doneWeek, t.snapIdx, t.coCPU = s.done, s.doneWeek, s.snapIdx, s.coCPU
	t.obsPhase = s.obsPhase
	t.report = s.report
	t.report.Snapshots = s.snaps.Restore()
	s.hist.Restore(t.report.ReportedHours)
	for i, ser := range []*stats.Series{t.report.HCMDVFTP, t.report.GridVFTP, t.report.ResultsWeek} {
		if ser != nil {
			s.series[i].Restore(ser)
		}
	}
}

// runSnapshot bundles every subsystem's capture of one campaign context.
type runSnapshot struct {
	valid bool

	engine sim.EngineSnapshot
	server wcg.ServerSnapshot
	pop    volunteer.PopulationSnapshot
	kern   volunteer.KernelSnapshot
	plane  faults.PlaneSnapshot
	ledger credit.LedgerSnapshot
	ten    tenantSnapshot

	weekly, daily, churn sim.TickerState
	hasChurn             bool
}

// snapshot captures the whole run context at the current event boundary.
func (c *Campaign) snapshot(s *runSnapshot) {
	if c.t.cfg.Probe != nil {
		panic("project: snapshot/fork requires an unprobed run")
	}
	s.engine.Capture(c.engine)
	s.server.Capture(c.t.server)
	if c.t.cfg.Shards > 0 {
		s.kern.Capture(c.kern)
	} else {
		s.pop.Capture(c.pop)
	}
	if plane := c.activePlane(); plane != nil {
		s.plane.Capture(plane)
	}
	s.ledger.Capture(c.ledger)
	s.ten.capture(&c.t)
	s.weekly = c.weekly.State()
	s.daily = c.daily.State()
	s.hasChurn = c.churn != nil
	if s.hasChurn {
		s.churn = c.churn.State()
	}
	s.valid = true
}

// restoreSnap rewinds the whole run context to the captured boundary,
// config included: after it the campaign is back under the prefix config.
func (c *Campaign) restoreSnap(s *runSnapshot) {
	if !s.valid {
		panic("project: Restore/Fork without a Snapshot")
	}
	s.engine.Restore(c.engine)
	s.server.Restore(c.t.server)
	if c.t.cfg.Shards > 0 {
		s.kern.Restore(c.kern)
	} else {
		s.pop.Restore(c.pop)
	}
	if plane := c.activePlane(); plane != nil {
		s.plane.Restore(plane)
	}
	s.ledger.Restore(c.ledger)
	s.ten.restore(&c.t)
	c.weekly.RestoreState(s.weekly)
	c.daily.RestoreState(s.daily)
	if s.hasChurn {
		c.churn.RestoreState(s.churn)
	}
}

// applyConfig swaps the configuration in force at a fork point. Anything
// resolved at construction/bind time must be identical to the prefix
// config — those fields shaped state the snapshot captured — and the
// checks here enforce the ones that are cheap to compare; the middleware
// policy fields are wcg.Server.ApplyConfig's documented contract, which
// the experiment layer's grouping test pins.
func (c *Campaign) applyConfig(cfg Config) {
	if cfg.Probe != nil {
		panic("project: forked runs are unprobed")
	}
	cfg = checkConfig(cfg)
	base := &c.t.cfg
	switch {
	case cfg.DS != base.DS || cfg.M != base.M:
		panic("project: fork cannot change the dataset or cost matrix")
	case cfg.Seed != base.Seed:
		panic("project: fork cannot change the seed")
	case cfg.WorkScale != base.WorkScale || cfg.HostScale != base.HostScale || cfg.HHours != base.HHours:
		panic("project: fork cannot change the work/host scales")
	case cfg.Order != base.Order || cfg.Shards != base.Shards || cfg.MaxWeeks != base.MaxWeeks:
		panic("project: fork cannot change release order, kernel plan or horizon")
	case (cfg.Faults == nil) != (base.Faults == nil),
		cfg.Faults != nil && *cfg.Faults != *base.Faults:
		panic("project: fork cannot change the fault plane")
	}
	c.t.cfg = cfg
	c.t.report.Config = cfg
	c.t.server.ApplyConfig(cfg.Server)
}

// Begin arms a run under cfg — pooled reset (or first build) plus the
// start phase — without executing any events. Begin/RunTo/Snapshot/Fork
// compose into Run: Begin(cfg); RunTo(end) ... is not needed for a plain
// run, which should keep calling Run.
func (r *Runner) Begin(cfg Config) {
	if r.c == nil {
		r.c = New(cfg)
		r.c.pooled = true
		r.c.t.server.Retain()
	} else {
		r.c.reset(cfg)
	}
	r.snap.valid = false
	if r.c.t.cfg.Shards > 0 {
		r.c.startSharded()
	} else {
		r.c.start()
	}
}

// RunTo executes every event with a timestamp strictly before at, in
// exactly the order a full run would, and stops at the boundary without
// advancing the clock to it.
func (r *Runner) RunTo(at sim.Time) {
	if r.c.t.cfg.Shards > 0 {
		r.c.kern.RunBefore(at)
	} else {
		r.c.engine.RunBefore(at)
	}
}

// Snapshot captures the run context at the current event boundary. The
// capture buffers live on the Runner and are reused by later Snapshot
// calls (a later snapshot overwrites the earlier one).
func (r *Runner) Snapshot() {
	r.c.snapshot(&r.snap)
}

// Fork rewinds the context to the snapshot, swaps in cfg and finishes the
// run, returning its report — byte-identical to a straight Run(cfg) when
// cfg's behavior before the snapshot time matches the prefix config's.
// The report is owned by the Runner and valid until the next Fork or Run.
func (r *Runner) Fork(cfg Config) *Report {
	r.c.restoreSnap(&r.snap)
	r.c.applyConfig(cfg)
	if r.c.t.cfg.Shards > 0 {
		r.c.kern.RunUntil(r.c.t.cfg.MaxWeeks * sim.Week)
		return r.c.finishSharded()
	}
	r.c.engine.RunUntil(r.c.t.cfg.MaxWeeks * sim.Week)
	return r.c.finish()
}

// Restore rewinds the context to the snapshot under the prefix's own
// config, so the shared prefix can continue (RunTo a later divergence
// time) after a group of forks has run.
func (r *Runner) Restore() {
	r.c.restoreSnap(&r.snap)
}
