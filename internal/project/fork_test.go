package project

import (
	"testing"

	"repro/internal/sim"
)

// forkDivergence is where the fork tests branch: the default quorum
// switch time, the first moment the quorum what-ifs below can observably
// differ from the base configuration.
const forkDivergence = 14 * sim.Week

// quorumWhatIf derives the what-if cell from a base config — the quorum
// switch moved later, behavior-identical to the base before week 14. A
// fork shares the base's dataset and cost matrix by pointer, exactly as
// the experiment catalog's mutators do.
func quorumWhatIf(base Config) Config {
	base.Server.QuorumSwitchTime = 20 * sim.Week
	return base
}

// forkHash runs base to the divergence time on a runner, snapshots, and
// returns the report hash of the fork finished under cell.
func forkHash(t *testing.T, r *Runner, base, cell Config) string {
	t.Helper()
	r.Begin(base)
	r.RunTo(forkDivergence)
	r.Snapshot()
	return reportHash(t, r.Fork(cell))
}

// TestForkEqualsStraightRun is the fork-identity pin: a run forked at the
// divergence time must hash byte-identically to a straight run of the
// forked config — on the legacy and the sharded kernel, from a fresh and
// from a dirty (pooled) runner, and repeatedly from one snapshot. Forking
// the base config itself must reproduce the goldenSeed777 bytes, so the
// whole snapshot/restore cycle is anchored to the pre-fork golden hash.
func TestForkEqualsStraightRun(t *testing.T) {
	for _, shards := range []int{0, 4} {
		base := determinismConfig(t, 777)
		base.Shards = shards
		cell := quorumWhatIf(base)

		straightCell := reportHash(t, New(cell).Run())
		if straightCell == goldenSeed777 {
			t.Fatalf("shards=%d: quorum what-if did not change the report — divergence fixture is dead", shards)
		}

		r := NewRunner()
		r.Begin(base)
		r.RunTo(forkDivergence)
		r.Snapshot()
		if got := reportHash(t, r.Fork(base)); got != goldenSeed777 {
			t.Errorf("shards=%d: fork(base) hash = %s, want golden %s", shards, got, goldenSeed777)
		}
		if got := reportHash(t, r.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: fork(cell) hash = %s, want straight-run %s", shards, got, straightCell)
		}
		// Same snapshot again: the restore must leave no residue.
		if got := reportHash(t, r.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: second fork(cell) hash differs — restore leaks state", shards)
		}

		// Dirty runner: arenas carry a finished unrelated run.
		dirty := NewRunner()
		dirty.Run(determinismConfig(t, 778))
		if got := forkHash(t, dirty, base, cell); got != straightCell {
			t.Errorf("shards=%d: pooled fork(cell) hash = %s, want %s", shards, got, straightCell)
		}
	}
}

// TestForkRestoreContinuesPrefix pins the prefix-tree walk: fork a group,
// restore, run the prefix further, snapshot again, fork again — each fork
// still byte-identical to its straight run.
func TestForkRestoreContinuesPrefix(t *testing.T) {
	base := determinismConfig(t, 777)
	cell := quorumWhatIf(base)
	straightCell := reportHash(t, New(cell).Run())

	r := NewRunner()
	r.Begin(base)
	r.RunTo(forkDivergence)
	r.Snapshot()
	if got := reportHash(t, r.Fork(cell)); got != straightCell {
		t.Fatalf("first-group fork hash = %s, want %s", got, straightCell)
	}
	r.Restore()
	r.RunTo(15 * sim.Week)
	r.Snapshot()
	if got := reportHash(t, r.Fork(base)); got != goldenSeed777 {
		t.Errorf("second-group fork(base) at week 15 hash = %s, want golden %s", got, goldenSeed777)
	}
}

// TestForkWithFaultPlane extends the identity pin to a run with every
// fault class enabled: the snapshot must carry the fault plane (retry
// budgets, upload sequences, churn accumulator) byte-exactly.
func TestForkWithFaultPlane(t *testing.T) {
	for _, shards := range []int{0, 4} {
		base := faultStressConfig(t, 777)
		base.Shards = shards
		cell := quorumWhatIf(base)

		straightBase := reportHash(t, New(base).Run())
		straightCell := reportHash(t, New(cell).Run())
		if straightCell == straightBase {
			t.Fatalf("shards=%d: fault what-if did not change the report", shards)
		}

		r := NewRunner()
		r.Begin(base)
		r.RunTo(forkDivergence)
		r.Snapshot()
		if got := reportHash(t, r.Fork(base)); got != straightBase {
			t.Errorf("shards=%d: fault fork(base) hash = %s, want %s", shards, got, straightBase)
		}
		if got := reportHash(t, r.Fork(cell)); got != straightCell {
			t.Errorf("shards=%d: fault fork(cell) hash = %s, want %s", shards, got, straightCell)
		}
	}
}

// TestForkRejectsBindTimeChanges pins applyConfig's guard: a fork that
// changes a bind-time field must panic instead of silently producing a
// report from a context built for a different configuration.
func TestForkRejectsBindTimeChanges(t *testing.T) {
	r := NewRunner()
	r.Begin(determinismConfig(t, 777))
	r.RunTo(forkDivergence)
	r.Snapshot()
	bad := determinismConfig(t, 777)
	bad.Seed = 778
	func() {
		defer func() {
			if recover() == nil {
				t.Error("fork with a different seed did not panic")
			}
		}()
		r.Fork(bad)
	}()
}
