package project

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"
)

// Golden report hashes of the single-project determinism configuration,
// recorded BEFORE the shared-grid refactor (PR 5) on the commit where
// Campaign still bound Population straight to one *wcg.Server. The
// multi-project work-fetch layer must leave the single-project path
// byte-identical — fresh and pooled — so these constants are the
// regression anchor: if either hash moves, the refactor changed the
// simulation, not just its structure.
//
// The hashes cover the JSON rendering of renderReport (Config zeroed) for
// determinismConfig seeds 777 and 778. They are tied to the generator's
// float stream (go1.24 linux/amd64 at record time); the cross-checks
// fresh==pooled and seed-777≠seed-778 hold regardless of toolchain.
const (
	goldenSeed777 = "ca45515b87e266fd501c3adcf580628e24959ea1d590b03f50d52d932eeb8766"
	goldenSeed778 = "03cc73a2f201b86ed1a54facc33286cb05c8d5652c0f8aaf5fa4b821d3c15ee6"
)

func reportHash(t *testing.T, rep *Report) string {
	t.Helper()
	sum := sha256.Sum256(renderReport(t, rep))
	return hex.EncodeToString(sum[:])
}

// TestGoldenSingleProjectFresh pins the fresh-run report bytes to the
// pre-refactor golden hashes.
func TestGoldenSingleProjectFresh(t *testing.T) {
	if got := reportHash(t, New(determinismConfig(t, 777)).Run()); got != goldenSeed777 {
		t.Errorf("fresh seed-777 report hash = %s, want golden %s (single-project byte-identity broken)", got, goldenSeed777)
	}
	if got := reportHash(t, New(determinismConfig(t, 778)).Run()); got != goldenSeed778 {
		t.Errorf("fresh seed-778 report hash = %s, want golden %s (single-project byte-identity broken)", got, goldenSeed778)
	}
}

// TestGoldenSingleProjectPooled pins the pooled (Runner reuse) path to the
// same golden hashes, with the arenas dirtied by a different run first.
func TestGoldenSingleProjectPooled(t *testing.T) {
	runner := NewRunner()
	runner.Run(determinismConfig(t, 778)) // dirty every arena
	if got := reportHash(t, runner.Run(determinismConfig(t, 777))); got != goldenSeed777 {
		t.Errorf("pooled seed-777 report hash = %s, want golden %s (pooled byte-identity broken)", got, goldenSeed777)
	}
	if got := reportHash(t, runner.Run(determinismConfig(t, 778))); got != goldenSeed778 {
		t.Errorf("pooled seed-778 report hash = %s, want golden %s (pooled byte-identity broken)", got, goldenSeed778)
	}
}
