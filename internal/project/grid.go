package project

import (
	"fmt"
	"math"

	"repro/internal/credit"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// GridConfig parameterizes a shared multi-project grid run: one volunteer
// population multiplexed across N project tenants by resource share. The
// grid-level fields here (Host, Grid, GridShare, HostScale, Seed, MaxWeeks)
// override the same-named fields of every tenant Config — a tenant on a
// shared grid no longer owns a population or a phase schedule, only its
// workload (DS, M, HHours, WorkScale, Order, Seed for RandomOrder,
// SnapshotWeeks) and its middleware configuration (Server).
type GridConfig struct {
	// Projects are the tenant configurations, one per co-running project.
	// At most 256 (assignments carry the project index in a byte).
	Projects []Config
	// Shares are the tenants' resource shares: any positive weights,
	// normalized to sum to 1. Nil means equal shares.
	Shares []float64

	// Host configures the shared volunteer population; Grid models the
	// capacity of the whole World Community Grid it is carved from.
	Host volunteer.HostConfig
	Grid volunteer.GridModel
	// GridShare is the fraction of the modeled grid's capacity this shared
	// population represents (all tenants together). 0 means 1: the whole
	// grid. There is no per-tenant phase ramp — tenants contend for the
	// shared population through the work-fetch mux from day one, which is
	// exactly the §7 steady-state regime the forecast assumes.
	GridShare float64
	HostScale float64

	Seed     uint64
	MaxWeeks float64 // safety stop for the whole co-run

	// Probe, if non-nil, attaches the observability plane to the co-run:
	// tenant-scoped metric series get a "p<i>-" prefix, trace events carry
	// a "project" tag, and the shared fleet contributes the mux-debt-spread
	// series. Same zero-cost contract as Config.Probe.
	Probe *obs.Probe `json:"-"`
}

// GridReport is what a shared-grid run produces: every tenant's full
// single-project Report plus the co-run quantities that only exist when
// projects contend — most importantly the measured grid share, the number
// the paper's §7 forecast could only assume.
type GridReport struct {
	Config GridConfig `json:"-"`

	// Projects are the per-tenant campaign reports (same shape as a
	// single-project run). Their population-scoped fields — the §8 points
	// accounting — and the kernel accounting (EventsExecuted, PeakPending)
	// live on this struct instead: population and engine are shared, so
	// per-tenant values would double-count. MeanSpeedDown is mirrored into
	// each tenant report (it is the shared fleet's mean).
	Projects []*Report

	// Shares are the normalized configured resource shares; MeasuredShares
	// are the shares actually realized, measured as each tenant's fraction
	// of the reported CPU seconds consumed during the contention window
	// (from launch until the first tenant finishes, or the whole run when
	// none does). ShareWindowWeeks is that window's length.
	Shares           []float64
	MeasuredShares   []float64
	ShareWindowWeeks float64

	Completed    bool    // every tenant finished
	WeeksElapsed float64 // last tenant completion (or MaxWeeks)

	// Population-scoped accounting (shared across tenants).
	MeanSpeedDown  float64
	PointsTotal    float64
	AccountingBias float64
	HardwareTrend  float64

	// Kernel accounting for the whole co-run.
	EventsExecuted uint64
	PeakPending    int
}

// MeasuredShareOf returns tenant i's measured grid share relative to the
// whole modeled grid (not just this population): the mux share scaled by
// the population's GridShare slice. This is the number to compare against
// forecast.PhaseIIPlan.GridShare.
func (r *GridReport) MeasuredShareOf(i int) float64 {
	share := 1.0
	if r.Config.GridShare > 0 {
		share = r.Config.GridShare
	}
	return r.MeasuredShares[i] * share
}

// MaxShareError returns the largest |measured − configured| share gap
// across tenants: the headline arbitration-fidelity metric.
func (r *GridReport) MaxShareError() float64 {
	var max float64
	for i := range r.Shares {
		if d := math.Abs(r.MeasuredShares[i] - r.Shares[i]); d > max {
			max = d
		}
	}
	return max
}

// Grid is a configured, runnable shared multi-project simulation.
//
// # Determinism and Reset contract
//
// A Grid run is byte-for-bit deterministic in its GridConfig: the engine
// serializes all events, hosts draw from per-host streams, and mux ports
// break debt ties from per-host seeded streams. GridRunner pools a Grid
// the way Runner pools a Campaign — engine, servers, population, mux and
// report buffers are retained across Reset, and a pooled run's GridReport
// is bit-identical to a fresh NewGrid(cfg).Run() (grid_test.go asserts
// it). The returned GridReport is owned by the GridRunner and valid only
// until its next Run.
type Grid struct {
	cfg     GridConfig
	engine  *sim.Engine
	mux     *volunteer.Mux
	pop     *volunteer.Population
	tenants []*tenant
	ledger  *credit.Ledger

	windowClosed bool
	pooled       bool

	report GridReport
}

// checkGridConfig validates cfg, fills defaults, normalizes shares, and
// pushes the grid-level fields down into every tenant configuration.
func checkGridConfig(cfg GridConfig) GridConfig {
	if len(cfg.Projects) == 0 {
		panic("project: grid needs at least one project")
	}
	if len(cfg.Projects) > 256 {
		panic("project: at most 256 co-running projects")
	}
	if cfg.Shares != nil && len(cfg.Shares) != len(cfg.Projects) {
		panic(fmt.Sprintf("project: %d shares for %d projects", len(cfg.Shares), len(cfg.Projects)))
	}
	if cfg.Shares == nil {
		cfg.Shares = make([]float64, len(cfg.Projects))
		for i := range cfg.Shares {
			cfg.Shares[i] = 1
		}
	}
	var sum float64
	for _, s := range cfg.Shares {
		if s <= 0 {
			panic("project: resource shares must be positive")
		}
		sum += s
	}
	norm := make([]float64, len(cfg.Shares))
	for i, s := range cfg.Shares {
		norm[i] = s / sum
	}
	cfg.Shares = norm
	if cfg.GridShare < 0 || cfg.GridShare > 1 {
		panic("project: GridShare out of [0,1]")
	}
	if cfg.GridShare == 0 {
		cfg.GridShare = 1
	}
	if cfg.HostScale <= 0 {
		panic("project: HostScale must be positive")
	}
	if cfg.MaxWeeks <= 0 {
		cfg.MaxWeeks = 60
	}
	if p := cfg.Probe; p != nil && p.Trace != nil {
		cfg.Host.OnSaboteurTurn = func(id int, at sim.Time) {
			p.Emit(at, "saboteur-turn", obs.Int("host", int64(id)))
		}
	}
	projects := make([]Config, len(cfg.Projects))
	for i, p := range cfg.Projects {
		if p.Faults.Enabled() {
			// The fault plane wraps a single-project work source; the mux
			// path has no plane to wrap it with. Refuse loudly rather than
			// run a silently fault-free tenant.
			panic("project: the fault plane is single-project only (grid tenants cannot set Faults)")
		}
		p = checkConfig(p)
		// Grid-level fields win: the tenant has no population of its own,
		// and no phase schedule either — tenants contend from day one, so
		// the whole series is the full-power window.
		p.Host = cfg.Host
		p.Grid = cfg.Grid
		p.HostScale = cfg.HostScale
		p.MaxWeeks = cfg.MaxWeeks
		p.ControlWeeks, p.RampWeeks = 0, 0
		p.ControlShare, p.FullShare = 0, 0
		projects[i] = p
	}
	cfg.Projects = projects
	return cfg
}

// NewGrid builds a shared grid from the configuration.
func NewGrid(cfg GridConfig) *Grid {
	cfg = checkGridConfig(cfg)
	g := &Grid{cfg: cfg, engine: sim.NewEngine(), mux: volunteer.NewMux()}
	g.tenants = make([]*tenant, len(cfg.Projects))
	for i, p := range cfg.Projects {
		t := &tenant{}
		t.initTenant(p, wcg.NewServer(g.engine, p.Server))
		g.mux.Attach(t.server, cfg.Shares[i])
		g.tenants[i] = t
	}
	g.pop = volunteer.NewMuxPopulation(g.engine, g.mux, cfg.Host, rng.New(cfg.Seed))
	g.ledger = credit.NewLedger()
	g.report.Config = cfg
	return g
}

// reset rearms the grid for another run, retaining every layer's backing
// storage (kernel heap and arenas, per-server queues and slabs, the
// host-struct pool, tenant batch plans and report buffers). Tenants beyond
// the new project count are dropped; missing ones are built fresh.
func (g *Grid) reset(cfg GridConfig) {
	cfg = checkGridConfig(cfg)
	g.cfg = cfg
	g.engine.Reset()
	g.mux.Reset()
	reuse := len(g.tenants)
	if reuse > len(cfg.Projects) {
		reuse = len(cfg.Projects)
		g.tenants = g.tenants[:reuse]
	}
	for i, p := range cfg.Projects {
		if i < reuse {
			t := g.tenants[i]
			t.server.Reset(p.Server)
			t.reset(p)
			g.mux.Attach(t.server, cfg.Shares[i])
			continue
		}
		t := &tenant{}
		t.initTenant(p, wcg.NewServer(g.engine, p.Server))
		t.server.Retain()
		g.mux.Attach(t.server, cfg.Shares[i])
		g.tenants = append(g.tenants, t)
	}
	g.pop.Reset(cfg.Host, rng.New(cfg.Seed))
	g.ledger.Reset()
	g.windowClosed = false

	r := &g.report
	projects, shares, measured := r.Projects[:0], r.Shares[:0], r.MeasuredShares[:0]
	*r = GridReport{Config: cfg}
	r.Projects, r.Shares, r.MeasuredShares = projects, shares, measured
}

// GridRunner runs shared-grid co-runs back to back on one reusable arena
// of state, the multi-project analogue of Runner. Not safe for concurrent
// use; pool one per worker.
type GridRunner struct {
	g *Grid
}

// NewGridRunner returns an empty runner; the first Run builds its arenas.
func NewGridRunner() *GridRunner { return &GridRunner{} }

// Run simulates one co-run, reusing the previous run's storage. Reports
// are bit-for-bit identical to NewGrid(cfg).Run() for the same cfg.
func (r *GridRunner) Run(cfg GridConfig) *GridReport {
	if r.g == nil {
		r.g = NewGrid(cfg)
		r.g.pooled = true
		for _, t := range r.g.tenants {
			t.server.Retain()
		}
	} else {
		r.g.reset(cfg)
	}
	return r.g.Run()
}

// closeShareWindow snapshots every tenant's consumed CPU at the moment the
// first tenant finishes: from here on the finished tenant stops contending,
// so measured shares are only meaningful up to this point.
func (g *Grid) closeShareWindow(week float64) {
	if g.windowClosed {
		return
	}
	g.windowClosed = true
	g.report.ShareWindowWeeks = week
	if p := g.cfg.Probe; p != nil {
		p.Emit(week*sim.Week, "share-window-close", obs.Num("at-week", week))
	}
	for _, t := range g.tenants {
		t.coCPU = t.server.Stats.CPUSeconds
	}
}

// Run executes the co-run and returns its report.
func (g *Grid) Run() *GridReport {
	cfg := &g.cfg
	for _, t := range g.tenants {
		t.prepare()
		t.bind()
	}
	probe := cfg.Probe
	sampler := g.bindProbe(probe)

	allDone := false
	weekly := g.engine.Every(0, sim.Week, func(now sim.Time) {
		w := now / sim.Week
		if allDone {
			return
		}
		live := 0
		for _, t := range g.tenants {
			if t.done {
				continue
			}
			for t.snapIdx < len(t.cfg.SnapshotWeeks) && w >= t.cfg.SnapshotWeeks[t.snapIdx] {
				t.captureSnapshot(w)
				t.snapIdx++
			}
			if t.allDone() {
				t.done, t.doneWeek = true, w
				if t.probe != nil {
					t.emit(now, "tenant-drain", obs.Num("at-week", w))
				}
				for t.snapIdx < len(t.cfg.SnapshotWeeks) {
					t.captureSnapshot(t.cfg.SnapshotWeeks[t.snapIdx])
					t.snapIdx++
				}
				g.closeShareWindow(w)
				continue
			}
			live++
		}
		if live == 0 {
			allDone = true
			g.pop.SetTarget(0)
			return
		}
		gridCap := cfg.Grid.VFTPAt(CampaignStartWeek + w)
		target := int(math.Round(cfg.GridShare * gridCap * cfg.HostScale))
		if target < 1 {
			target = 1
		}
		g.pop.SetTarget(target)
		for _, t := range g.tenants {
			if !t.done {
				t.feed(g.pop.Active())
			}
		}
		if !g.windowClosed {
			// The share window closes when the first tenant stops being
			// able to absorb its slice (all batches out, queue below the
			// restock level): past that point the mux hands its time to
			// the others by design, and CPU is no longer contended.
			for _, t := range g.tenants {
				if t.draining(g.pop.Active()) {
					g.closeShareWindow(w)
					break
				}
			}
		}
	})
	daily := g.engine.Every(sim.Day/2, sim.Day, func(sim.Time) {
		if allDone {
			return
		}
		for _, t := range g.tenants {
			if !t.done {
				t.feed(g.pop.Active())
			}
		}
	})

	g.engine.RunUntil(cfg.MaxWeeks * sim.Week)
	weekly.Stop()
	daily.Stop()
	// Drain any stragglers (late returns) without advancing phases.
	g.engine.RunUntil(cfg.MaxWeeks*sim.Week + 30*sim.Day)
	if sampler != nil {
		sampler.Stop()
	}

	g.finishReport(allDone)
	r := &g.report
	if probe != nil {
		probe.Emit(g.engine.Now(), "run-end",
			obs.Str("completed", boolStr(allDone)),
			obs.Num("weeks", r.WeeksElapsed),
			obs.Int("events", int64(r.EventsExecuted)))
	}
	if !g.pooled {
		g.engine, g.pop, g.mux, g.ledger = nil, nil, nil, nil
		for _, t := range g.tenants {
			t.release()
		}
		g.tenants = nil
	}
	return r
}

// finishReport assembles the GridReport: per-tenant reports, measured
// shares over the contention window, and the shared-population accounting.
func (g *Grid) finishReport(allDone bool) {
	r := &g.report
	r.Completed = allDone
	r.EventsExecuted = g.engine.Executed()
	r.PeakPending = g.engine.MaxPending()
	r.MeanSpeedDown = g.pop.MeanSpeedDown()
	r.PointsTotal, r.AccountingBias, r.HardwareTrend = creditPopulation(g.pop, g.ledger)

	if !g.windowClosed {
		// No tenant finished: the whole run was contended.
		g.closeShareWindow(g.cfg.MaxWeeks)
	}
	var windowCPU float64
	for _, t := range g.tenants {
		windowCPU += t.coCPU
	}
	for i, t := range g.tenants {
		t.finishReport(g.engine, t.done, t.doneWeek)
		t.report.MeanSpeedDown = r.MeanSpeedDown
		// Kernel accounting is co-run-wide: the grid report carries it,
		// and per-tenant copies would read as N× double-counted totals.
		t.report.EventsExecuted, t.report.PeakPending = 0, 0
		r.Projects = append(r.Projects, &t.report)
		r.Shares = append(r.Shares, g.cfg.Shares[i])
		measured := 0.0
		if windowCPU > 0 {
			measured = t.coCPU / windowCPU
		}
		r.MeasuredShares = append(r.MeasuredShares, measured)
		if t.report.WeeksElapsed > r.WeeksElapsed {
			r.WeeksElapsed = t.report.WeeksElapsed
		}
	}
}
