package project

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/protein"
	"repro/internal/volunteer"
)

// gridConfig builds a small two-project shared grid over the determinism
// dataset: big enough that both tenants run for weeks under contention,
// small enough for the unit-test budget.
func gridConfig(t *testing.T, seed uint64, shares []float64) GridConfig {
	t.Helper()
	ds := protein.Generate(10, 51)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 52})
	pa := DefaultConfig(ds, m)
	pa.WorkScale = 0.3
	pb := pa
	pb.Seed = pa.Seed + 1
	return GridConfig{
		Projects:  []Config{pa, pb},
		Shares:    shares,
		Host:      volunteer.DefaultHostConfig(),
		Grid:      volunteer.DefaultGridModel(),
		GridShare: 0.48,
		HostScale: 0.004,
		Seed:      seed,
		MaxWeeks:  80,
	}
}

// TestTwoProjectEqualShareWithin2pct is the PR's acceptance criterion: a
// two-project equal-share co-run must yield each project a measured share
// within 2 % of its configured resource share.
func TestTwoProjectEqualShareWithin2pct(t *testing.T) {
	gr := NewGrid(gridConfig(t, 777, nil)).Run()
	if !gr.Completed {
		t.Fatalf("co-run did not complete in %v weeks", gr.Config.MaxWeeks)
	}
	for i := range gr.Shares {
		if math.Abs(gr.MeasuredShares[i]-gr.Shares[i]) > 0.02 {
			t.Fatalf("project %d: measured share %.4f vs configured %.4f, want within 0.02 (all: %v vs %v)",
				i, gr.MeasuredShares[i], gr.Shares[i], gr.MeasuredShares, gr.Shares)
		}
	}
	if gr.MaxShareError() > 0.02 {
		t.Fatalf("max share error %.4f", gr.MaxShareError())
	}
}

// TestUnequalShareArbitration pins the 25/75 split: the mux must hold both
// tenants to their configured slices during the contention window.
func TestUnequalShareArbitration(t *testing.T) {
	gr := NewGrid(gridConfig(t, 777, []float64{0.25, 0.75})).Run()
	if gr.MaxShareError() > 0.02 {
		t.Fatalf("25/75 share error %.4f (measured %v), want within 0.02", gr.MaxShareError(), gr.MeasuredShares)
	}
	if gr.ShareWindowWeeks <= 0 {
		t.Fatal("share window never recorded")
	}
	// The 75% tenant finishes the (equal) workload first.
	if !(gr.Projects[1].WeeksElapsed < gr.Projects[0].WeeksElapsed) {
		t.Fatalf("75%% tenant (%.1f wk) should finish before the 25%% tenant (%.1f wk)",
			gr.Projects[1].WeeksElapsed, gr.Projects[0].WeeksElapsed)
	}
}

// renderGridReport marshals a grid report with the per-tenant Configs
// zeroed (they carry shared DS/M pointers), for byte comparisons.
func renderGridReport(t *testing.T, gr *GridReport) []byte {
	t.Helper()
	for _, p := range gr.Projects {
		p.Config = Config{}
	}
	data, err := json.Marshal(gr)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestGridByteDeterminism: same GridConfig, byte-identical GridReport.
func TestGridByteDeterminism(t *testing.T) {
	a := renderGridReport(t, NewGrid(gridConfig(t, 777, []float64{1, 2})).Run())
	b := renderGridReport(t, NewGrid(gridConfig(t, 777, []float64{1, 2})).Run())
	if !bytes.Equal(a, b) {
		t.Fatalf("same config produced different grid reports:\nfirst:  %.300s…\nsecond: %.300s…", a, b)
	}
}

// TestGridRunnerPooledByteIdentical extends the PR3 pooled-reuse contract
// to the shared grid: a co-run on a GridRunner whose arenas are dirty from
// previous (differently configured) co-runs must be byte-identical to a
// fresh NewGrid(cfg).Run().
func TestGridRunnerPooledByteIdentical(t *testing.T) {
	fresh := renderGridReport(t, NewGrid(gridConfig(t, 777, nil)).Run())

	runner := NewGridRunner()
	other := gridConfig(t, 4242, []float64{0.2, 0.8})
	other.Projects[0].Order = CostliestFirst
	runner.Run(other)
	runner.Run(gridConfig(t, 31, []float64{3, 1}))
	reused := renderGridReport(t, runner.Run(gridConfig(t, 777, nil)))
	if !bytes.Equal(fresh, reused) {
		t.Fatalf("pooled co-run diverged from fresh:\nfresh:  %.300s…\nreused: %.300s…", fresh, reused)
	}
	// Different seed still differs (no stale state replay).
	if probe := renderGridReport(t, runner.Run(gridConfig(t, 778, nil))); bytes.Equal(fresh, probe) {
		t.Fatal("different seed produced an identical grid report")
	}
}

// TestGridRunnerTenantCountChange reuses a runner across co-runs of
// different widths: 2 → 1 → 2 tenants must all match their fresh runs.
func TestGridRunnerTenantCountChange(t *testing.T) {
	two := gridConfig(t, 777, nil)
	one := gridConfig(t, 777, nil)
	one.Projects = one.Projects[:1]
	one.Shares = nil

	freshOne := renderGridReport(t, NewGrid(one).Run())
	freshTwo := renderGridReport(t, NewGrid(two).Run())

	runner := NewGridRunner()
	runner.Run(two)
	if got := renderGridReport(t, runner.Run(one)); !bytes.Equal(freshOne, got) {
		t.Fatal("pooled 2→1-tenant run diverged from fresh single-tenant grid")
	}
	if got := renderGridReport(t, runner.Run(two)); !bytes.Equal(freshTwo, got) {
		t.Fatal("pooled 1→2-tenant run diverged from fresh two-tenant grid")
	}
}

// TestGridShareStarvationResists: a 5% tenant against a 95% giant still
// receives its slice — the debt mechanism prevents starvation.
func TestGridShareStarvationResists(t *testing.T) {
	cfg := gridConfig(t, 777, []float64{0.05, 0.95})
	cfg.MaxWeeks = 20 // the point is the share, not completion
	gr := NewGrid(cfg).Run()
	if gr.MeasuredShares[0] < 0.03 || gr.MeasuredShares[0] > 0.07 {
		t.Fatalf("5%% tenant measured share %.4f, want ≈ 0.05", gr.MeasuredShares[0])
	}
	if gr.Projects[0].ServerStats.Completed == 0 {
		t.Fatal("starved tenant completed no work at all")
	}
}

// TestMeasuredShareOfScalesByGridShare: the whole-grid share is the mux
// share scaled by the population's slice of the modeled grid.
func TestMeasuredShareOfScalesByGridShare(t *testing.T) {
	gr := NewGrid(gridConfig(t, 777, nil)).Run()
	want := gr.MeasuredShares[0] * 0.48
	if got := gr.MeasuredShareOf(0); math.Abs(got-want) > 1e-12 {
		t.Fatalf("MeasuredShareOf(0) = %v, want %v", got, want)
	}
}

// TestGridSingleTenantCompletes: the degenerate one-project grid runs the
// mux path end to end.
func TestGridSingleTenantCompletes(t *testing.T) {
	cfg := gridConfig(t, 777, nil)
	cfg.Projects = cfg.Projects[:1]
	cfg.Shares = nil
	gr := NewGrid(cfg).Run()
	if !gr.Completed {
		t.Fatal("single-tenant grid did not complete")
	}
	if gr.MeasuredShares[0] != 1 {
		t.Fatalf("sole tenant's measured share = %v, want 1", gr.MeasuredShares[0])
	}
	if gr.Projects[0].ServerStats.Completed != gr.Projects[0].DistinctWUs {
		t.Fatal("not all workunits completed")
	}
}

// TestGridConfigValidation covers the checkGridConfig panics.
func TestGridConfigValidation(t *testing.T) {
	base := gridConfig(t, 1, nil)
	cases := map[string]func() GridConfig{
		"no projects":     func() GridConfig { c := base; c.Projects = nil; return c },
		"share mismatch":  func() GridConfig { c := base; c.Shares = []float64{1}; return c },
		"negative share":  func() GridConfig { c := base; c.Shares = []float64{1, -1}; return c },
		"zero share":      func() GridConfig { c := base; c.Shares = []float64{1, 0}; return c },
		"bad grid share":  func() GridConfig { c := base; c.GridShare = 1.5; return c },
		"zero host scale": func() GridConfig { c := base; c.HostScale = 0; return c },
	}
	for name, mk := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			NewGrid(mk())
		}()
	}
}

// TestGridReportPopulationAccounting: the shared-population fields live on
// the GridReport, and tenant reports carry no per-tenant points (the hosts
// are shared, so per-tenant crediting would double-count).
func TestGridReportPopulationAccounting(t *testing.T) {
	gr := NewGrid(gridConfig(t, 777, nil)).Run()
	if gr.PointsTotal <= 0 || gr.MeanSpeedDown <= 1 {
		t.Fatalf("grid-level accounting missing: points %v, speed-down %v", gr.PointsTotal, gr.MeanSpeedDown)
	}
	if gr.EventsExecuted == 0 {
		t.Fatal("grid-level kernel accounting missing")
	}
	for i, p := range gr.Projects {
		if p.PointsTotal != 0 {
			t.Fatalf("tenant %d carries per-tenant points %v; population accounting is grid-level", i, p.PointsTotal)
		}
		if p.MeanSpeedDown != gr.MeanSpeedDown {
			t.Fatalf("tenant %d speed-down %v ≠ shared population %v", i, p.MeanSpeedDown, gr.MeanSpeedDown)
		}
		if p.EventsExecuted != 0 || p.PeakPending != 0 {
			t.Fatalf("tenant %d carries engine-wide kernel accounting (%d events); it is grid-level", i, p.EventsExecuted)
		}
		// Grid tenants have no phase ramp: the whole series is the
		// full-power window, so the two VFTP averages coincide.
		if p.Config.ControlWeeks != 0 || p.Config.RampWeeks != 0 {
			t.Fatalf("tenant %d kept a phase schedule (%v/%v weeks)", i, p.Config.ControlWeeks, p.Config.RampWeeks)
		}
		if p.AvgVFTPFullPower != p.AvgVFTPWhole {
			t.Fatalf("tenant %d full-power VFTP %v ≠ whole-period %v despite no ramp", i, p.AvgVFTPFullPower, p.AvgVFTPWhole)
		}
	}
}
