package project

import (
	"strconv"

	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// This file is the project layer's side of the observability plane: the
// metric catalog a probed run samples and the trace hooks a probed tenant
// fires. Everything here binds at Run start — an unprobed run never reaches
// this code beyond one nil check.
//
// Campaign metric catalog (single project; the grid adds a per-tenant
// "p<i>-" prefix to the tenant-scoped series):
//
//	queue-depth        gauge    workunits awaiting copies or validation
//	in-flight          gauge    copies currently in volunteers' hands
//	wheel-occ-<k>      gauge    deadline class k's timeout-ring occupancy
//	invalid-rate       gauge    cumulative invalid / received
//	late-rate          gauge    cumulative late returns / received
//	redundancy         gauge    copies sent per distinct workunit completed
//	credit-throughput  gauge    reported CPU seconds accrued per sim day
//	active-hosts       gauge    hosts attached and not stopped
//	hosts-joined       counter  hosts ever joined
//	results-received   counter  results returned, valid or not
//	completed-wus      counter  distinct workunits validated
//	timeouts           counter  copies reissued after deadline
//	cpu-seconds        counter  reported CPU seconds accrued
//	pending-events     gauge    kernel event-queue depth
//	events-executed    counter  kernel events executed
//	mux-debt-spread    gauge    (grid only) mean per-host debt max−min
//
// Fault runs (Config.Faults enabled) additionally register:
//
//	fault-refused         counter  work requests refused during outages
//	fault-deferred        counter  results spooled for post-outage validation
//	fault-lost-uploads    counter  upload attempts the flaky uplink ate
//	fault-dropped-results counter  results abandoned after the retry budget
//	fault-churned-hosts   counter  hosts permanently departed (churn)
//
// and the trace gains outage-begin / outage-recovered events.

// bindProbe attaches the probe to a single-project campaign: rebinds the
// registry to this run's objects, starts the observer sampler, and emits
// the run-start trace event. Returns the sampler ticker (nil when no
// metrics are attached); Run stops it after the straggler drain.
func (c *Campaign) bindProbe(p *obs.Probe) *sim.Ticker {
	if p == nil {
		return nil
	}
	c.t.bindObs(p, c.engine, "")
	p.Emit(0, "run-start",
		obs.Int("wus", c.t.report.DistinctWUs),
		obs.Num("ref-seconds", c.t.report.TotalRefWork),
		obs.Int("batches", int64(len(c.t.order))))
	var sampler *sim.Ticker
	if reg := p.Metrics; reg != nil {
		reg.Rebind()
		bindServerMetrics(reg, c.engine, c.t.server, "")
		bindFleetMetrics(reg, c.engine, c.pop, false)
		sampler = c.engine.ObserveEvery(0, p.Cadence(), func(now sim.Time) {
			reg.Sample(now)
		})
	}
	c.bindFaultObs(p)
	return sampler
}

// bindFaultObs attaches the fault-plane trace hooks and metric series when
// the run has a fault plane bound. Fault-free runs register nothing, so
// the metric catalog — and the probe-neutrality golden bytes — are
// unchanged. Shared by bindProbe and bindProbeSharded (the plane lives on
// the serial path in both kernels).
func (c *Campaign) bindFaultObs(p *obs.Probe) {
	pl := c.activePlane()
	if pl == nil {
		return
	}
	if p.Trace != nil {
		pl.OnOutage = func(at sim.Time, planned bool) {
			c.t.emit(at, "outage-begin", obs.Str("planned", boolStr(planned)))
		}
		pl.OnRecovery = func(at sim.Time, lag float64) {
			c.t.emit(at, "outage-recovered", obs.Num("lag-seconds", lag))
		}
	}
	if reg := p.Metrics; reg != nil {
		srv := c.t.server
		reg.Counter("fault-refused", func() float64 { return float64(srv.Stats.Refused) })
		reg.Counter("fault-deferred", func() float64 { return float64(srv.Stats.Deferred) })
		reg.Counter("fault-lost-uploads", func() float64 { return float64(pl.Stats.LostUploads) })
		reg.Counter("fault-dropped-results", func() float64 { return float64(pl.Stats.DroppedResults) })
		reg.Counter("fault-churned-hosts", func() float64 { return float64(pl.Stats.Departures) })
	}
}

// bindProbe attaches the probe to a shared multi-project grid: tenant-
// scoped series get a "p<i>-" prefix, the shared fleet contributes the
// population/kernel series plus the mux debt spread.
func (g *Grid) bindProbe(p *obs.Probe) *sim.Ticker {
	if p == nil {
		return nil
	}
	var wus, batches int64
	var ref float64
	for i, t := range g.tenants {
		t.bindObs(p, g.engine, "p"+strconv.Itoa(i))
		wus += t.report.DistinctWUs
		ref += t.report.TotalRefWork
		batches += int64(len(t.order))
	}
	p.Emit(0, "run-start",
		obs.Int("projects", int64(len(g.tenants))),
		obs.Int("wus", wus),
		obs.Num("ref-seconds", ref),
		obs.Int("batches", batches))
	var sampler *sim.Ticker
	if reg := p.Metrics; reg != nil {
		reg.Rebind()
		for i, t := range g.tenants {
			bindServerMetrics(reg, g.engine, t.server, "p"+strconv.Itoa(i)+"-")
		}
		bindFleetMetrics(reg, g.engine, g.pop, true)
		sampler = g.engine.ObserveEvery(0, p.Cadence(), func(now sim.Time) {
			reg.Sample(now)
		})
	}
	return sampler
}

// bindServerMetrics registers the middleware-scoped catalog for one project
// server under the given series-name prefix.
func bindServerMetrics(reg *obs.Registry, engine *sim.Engine, srv *wcg.Server, prefix string) {
	reg.Gauge(prefix+"queue-depth", func() float64 { return float64(srv.PendingCount()) })
	reg.Gauge(prefix+"in-flight", func() float64 { return float64(srv.Stats.InFlight()) })
	for k := 0; k < srv.WheelClasses(); k++ {
		k := k
		reg.Gauge(prefix+"wheel-occ-"+strconv.Itoa(k), func() float64 {
			return float64(srv.WheelOccupancy(k))
		})
	}
	reg.Gauge(prefix+"invalid-rate", func() float64 {
		return ratio(float64(srv.Stats.Invalid), float64(srv.Stats.Received))
	})
	reg.Gauge(prefix+"late-rate", func() float64 {
		return ratio(float64(srv.Stats.LateReturns), float64(srv.Stats.Received))
	})
	reg.Gauge(prefix+"redundancy", func() float64 { return srv.Stats.RedundancyFactor() })
	reg.Counter(prefix+"results-received", func() float64 { return float64(srv.Stats.Received) })
	reg.Counter(prefix+"completed-wus", func() float64 { return float64(srv.Stats.Completed) })
	reg.Counter(prefix+"timeouts", func() float64 { return float64(srv.Stats.TimedOut) })
	reg.Counter(prefix+"cpu-seconds", func() float64 { return srv.Stats.CPUSeconds })
	// Credit throughput: reported CPU seconds accrued per sim day since the
	// previous sample. The closure's own state is sampler-private, so the
	// rate stays correct across registry decimation (variable sample gaps).
	var lastCPU, lastT float64
	reg.Gauge(prefix+"credit-throughput", func() float64 {
		now, cur := engine.Now(), srv.Stats.CPUSeconds
		dt := now - lastT
		var rate float64
		if dt > 0 {
			rate = (cur - lastCPU) / dt * sim.Day
		}
		lastCPU, lastT = cur, now
		return rate
	})
}

// bindFleetMetrics registers the population- and kernel-scoped catalog
// (shared across tenants on a grid).
func bindFleetMetrics(reg *obs.Registry, engine *sim.Engine, pop *volunteer.Population, muxed bool) {
	reg.Gauge("active-hosts", func() float64 { return float64(pop.Active()) })
	reg.Counter("hosts-joined", func() float64 { return float64(pop.TotalJoined()) })
	reg.Gauge("pending-events", func() float64 { return float64(engine.Pending()) })
	reg.Counter("events-executed", func() float64 { return float64(engine.Executed()) })
	if muxed {
		reg.Gauge("mux-debt-spread", func() float64 {
			var sum float64
			n := 0
			for _, h := range pop.Hosts() {
				if h.Stopped() {
					continue
				}
				if port := h.Port(); port != nil {
					sum += port.DebtSpread()
					n++
				}
			}
			return ratio(sum, float64(n))
		})
	}
}

// bindObs arms the tenant's trace hooks for one probed run: batch releases
// and snapshots emit from the tenant's own paths, quorum switches route
// through the server callback. name distinguishes tenants on a grid
// ("p0", "p1", ...; empty for a single-project campaign).
func (t *tenant) bindObs(p *obs.Probe, engine *sim.Engine, name string) {
	t.probe = p
	t.obsEngine = engine
	t.obsName = name
	if p.Trace != nil {
		t.server.OnQuorumSwitch = func(at sim.Time, from, to int) {
			t.emit(at, "quorum-switch", obs.Int("from", int64(from)), obs.Int("to", int64(to)))
		}
	}
}

// emit records one tenant-scoped trace event, stamping the tenant name on
// grid runs. Callers guard on t.probe != nil.
func (t *tenant) emit(at sim.Time, event string, fields ...obs.F) {
	if t.obsName != "" {
		// The project tag rides as a field; fixed fields stay allocation-
		// light because Emit reuses the trace's scratch buffer.
		t.probe.Emit(at, event, append(fields, obs.Str("project", t.obsName))...)
		return
	}
	t.probe.Emit(at, event, fields...)
}

// ratio returns a/b, or 0 when b is 0 (cumulative rates early in a run).
func ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}
