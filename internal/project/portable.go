package project

import (
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// This file is the portable half of the snapshot/fork path (see fork.go
// for the in-place half and the snapshot package doc for the model): a
// Runner can Materialize its run context into a self-contained snapshot
// and a *different* Runner — typically another worker's pooled context —
// can adopt it, so the suffixes diverging from one shared prefix run on
// all cores instead of sequentially on the publisher's.
//
//	pub.Begin(base); pub.RunTo(T)
//	ps, err := pub.Materialize()   // self-contained, goroutine-safe
//	... hand ps to N workers ...
//	w.AdoptSnapshot(ps)            // rebuild the context in w's arenas
//	w.Snapshot()                   // then fork cells exactly as before
//	rep := w.Fork(cellCfg)
//
// A portable snapshot owns every byte it holds (Copies), names arena
// objects by allocation index (Translates), and carries no closures: the
// adopter re-runs the same Reset/prepare/bind machinery a fresh run uses
// and revives the event schedule from sim.Call descriptors (Re-binds).
// Multiple adopters may read one snapshot concurrently; adoption is
// byte-identical to restoring in place on the publisher, which the
// experiment layer's identity tests pin.

// portableBatch is the mutable slice of a batch: everything else
// (receptor, cost, total, plan) is rebuilt by prepare from the config.
type portableBatch struct {
	remaining int
	doneRef   float64
}

// portableTenant is a self-contained copy of a tenant's run state. The
// batch array, release order, slicing plans and report skeleton are not
// exported: prepare() rebuilds them deterministically from the config.
type portableTenant struct {
	batches []portableBatch

	next, outstanding int

	weeklyCPU   []float64
	weeklyCount []int64

	done     bool
	doneWeek float64
	snapIdx  int
	coCPU    float64
	obsPhase string

	snaps []Snapshot // Figure 7 captures so far, PerBatch deep-copied
	hist  stats.PortableHistogram
}

func exportTenant(t *tenant) portableTenant {
	pt := portableTenant{
		batches:     make([]portableBatch, len(t.batches)),
		next:        t.next,
		outstanding: t.outstanding,
		weeklyCPU:   snapshot.Clone(t.weeklyCPU),
		weeklyCount: snapshot.Clone(t.weeklyCount),
		done:        t.done,
		doneWeek:    t.doneWeek,
		snapIdx:     t.snapIdx,
		coCPU:       t.coCPU,
		obsPhase:    t.obsPhase,
		snaps:       make([]Snapshot, len(t.report.Snapshots)),
		hist:        t.report.ReportedHours.ExportPortable(),
	}
	for i := range t.batches {
		pt.batches[i] = portableBatch{remaining: t.batches[i].remaining, doneRef: t.batches[i].doneRef}
	}
	for i, s := range t.report.Snapshots {
		s.PerBatch = snapshot.Clone(s.PerBatch)
		pt.snaps[i] = s
	}
	return pt
}

// adoptTenant installs the portable state into a tenant that prepare()
// and bind() have just armed under the snapshot's config, so the batch
// array and release order already match the source's.
func adoptTenant(t *tenant, pt *portableTenant) {
	for i := range pt.batches {
		t.batches[i].remaining = pt.batches[i].remaining
		t.batches[i].doneRef = pt.batches[i].doneRef
	}
	t.next, t.outstanding = pt.next, pt.outstanding
	t.weeklyCPU = append(t.weeklyCPU[:0], pt.weeklyCPU...)
	t.weeklyCount = append(t.weeklyCount[:0], pt.weeklyCount...)
	t.done, t.doneWeek, t.snapIdx, t.coCPU = pt.done, pt.doneWeek, pt.snapIdx, pt.coCPU
	t.obsPhase = pt.obsPhase
	snaps := t.report.Snapshots[:0]
	for _, s := range pt.snaps {
		s.PerBatch = snapshot.Clone(s.PerBatch) // adopter-owned; ps stays shared
		snaps = append(snaps, s)
	}
	t.report.Snapshots = snaps
	t.report.ReportedHours.AdoptPortable(pt.hist)
}

func (pt *portableTenant) bytes() int {
	n := snapshot.Size(pt.batches) + snapshot.Size(pt.weeklyCPU) +
		snapshot.Size(pt.weeklyCount) + pt.hist.Bytes()
	for i := range pt.snaps {
		n += snapshot.Size(pt.snaps[i].PerBatch)
	}
	return n
}

// PortableSnapshot is a self-contained capture of one campaign run
// context at an event boundary: the configuration, the engine clock and
// event schedule (as sim.Call descriptors), and every subsystem's
// portable state. Safe to publish across goroutines; read-only once
// built. Exactly one of pop/kern is set, matching cfg.Shards.
type PortableSnapshot struct {
	cfg Config

	now           sim.Time
	seq, nEvent   uint64
	live, maxLive int
	events        []sim.PortableEvent

	server *wcg.PortableServer
	pop    *volunteer.PortablePopulation
	kern   *volunteer.PortableKernel
	plane  *faults.PortablePlane
	ten    portableTenant
}

// Bytes estimates the snapshot's memory footprint (slice payloads; the
// fixed struct headers are noise next to them).
func (ps *PortableSnapshot) Bytes() int {
	n := snapshot.Size(ps.events) + ps.server.Bytes() + ps.ten.bytes()
	if ps.pop != nil {
		n += ps.pop.Bytes()
	}
	if ps.kern != nil {
		n += ps.kern.Bytes()
	}
	if ps.plane != nil {
		n += ps.plane.Bytes()
	}
	return n
}

// Materialize captures the current run context as a portable snapshot a
// different Runner can adopt. The run must be unprobed (like the in-place
// fork path) and mid-run — between Begin/RunTo calls, at an event
// boundary. A non-nil error means this context cannot be made portable
// (an untagged event in the schedule, a non-retained server, a mux-bound
// population, an oversized retry budget); callers fall back to the
// sequential in-place path, which has no such limits.
func (r *Runner) Materialize() (*PortableSnapshot, error) {
	c := r.c
	if c.t.cfg.Probe != nil {
		panic("project: snapshot/fork requires an unprobed run")
	}
	events, err := c.engine.ExportEvents()
	if err != nil {
		return nil, err
	}
	server, err := c.t.server.ExportPortable()
	if err != nil {
		return nil, err
	}
	ps := &PortableSnapshot{cfg: c.t.cfg, events: events, server: server}
	ps.now, ps.seq, ps.nEvent, ps.live, ps.maxLive = c.engine.ExportState()
	if c.t.cfg.Shards > 0 {
		ps.kern = c.kern.ExportPortable()
	} else {
		ps.pop, err = c.pop.ExportPortable()
		if err != nil {
			return nil, err
		}
	}
	if plane := c.activePlane(); plane != nil {
		ps.plane, err = plane.ExportPortable()
		if err != nil {
			return nil, err
		}
	}
	ps.ten = exportTenant(&c.t)
	return ps, nil
}

// AdoptSnapshot rebuilds the captured run context inside this Runner's
// own pooled arenas: a Reset under the snapshot's config re-creates the
// immutable structure (batches, policies, wheels, outage windows) and
// re-binds every closure, the portable state is installed over it, and
// the event schedule is revived from its call descriptors onto freshly
// bound closures. Afterwards the Runner is exactly where the publisher
// stood at Materialize time — Snapshot/Fork/RunTo continue from there,
// byte-identical to the publisher doing the same.
func (r *Runner) AdoptSnapshot(ps *PortableSnapshot) {
	if r.c == nil {
		r.c = New(ps.cfg)
		r.c.pooled = true
		r.c.t.server.Retain()
	} else {
		r.c.reset(ps.cfg)
	}
	r.snap.valid = false
	c := r.c
	c.t.prepare()
	c.t.bind()
	adoptTenant(&c.t, &ps.ten)

	c.t.server.AdoptPortable(ps.server)
	asAt := c.t.server.AssignmentAt
	if c.t.cfg.Shards > 0 {
		c.kern.AdoptPortable(ps.kern, asAt)
		c.kern.SpawnHint = c.spawnHintFn()
	} else {
		c.pop.AdoptPortable(ps.pop, asAt)
	}
	plane := c.activePlane()
	if plane != nil {
		plane.AdoptPortable(ps.plane)
	}

	// Dormant tickers: bound like start's, armed below by the adopted
	// heap entries instead of a fresh first tick. Adopted runs are
	// unprobed, so there is no sampler and the probe argument is nil.
	c.sampler = nil
	if c.t.cfg.Shards > 0 {
		c.weekly = c.engine.DormantTicker(sim.Week, c.shardedWeeklyFn(nil))
		c.daily = c.engine.DormantTicker(sim.Day, c.shardedDailyFn())
	} else {
		c.weekly = c.engine.DormantTicker(sim.Week, c.weeklyFn(nil))
		c.daily = c.engine.DormantTicker(sim.Day, c.dailyFn())
	}
	c.churn = nil
	if plane != nil && plane.ChurnEnabled() {
		if c.t.cfg.Shards > 0 {
			c.churn = c.engine.DormantTicker(faults.ChurnInterval, c.shardedChurnFn(plane))
		} else {
			c.churn = c.engine.DormantTicker(faults.ChurnInterval, c.churnFn(plane))
		}
	}

	c.engine.AdoptState(ps.now, ps.seq, ps.nEvent, ps.live, ps.maxLive)
	for i := range ps.events {
		pe := &ps.events[i]
		var tick *sim.Ticker
		var fn func()
		switch pe.Call.Kind {
		case sim.CallTickWeekly:
			tick = c.weekly
		case sim.CallTickDaily:
			tick = c.daily
		case sim.CallTickChurn:
			tick = c.churn
		case sim.CallWheelDrain:
			fn = c.t.server.WheelDrainFn(int(pe.Call.K0))
		case sim.CallSpoolDrain:
			fn = c.t.server.SpoolDrainFn()
		case sim.CallUploadRetry:
			fn = plane.ResolveCall(pe.Call, asAt)
		default:
			fn = c.pop.ResolveCall(pe.Call, asAt)
		}
		if tick != nil {
			// The ticker owns its one event for the run's whole life;
			// hand it the adopted entry in place of a first tick.
			tick.AttachEvent(c.engine.AdoptEvent(pe.At, pe.Seq, pe.Call, tick.TickFn(), false))
			continue
		}
		if fn == nil {
			panic("project: adopted event resolved to no closure — untagged or foreign call kind")
		}
		c.engine.AdoptEvent(pe.At, pe.Seq, pe.Call, fn, true)
	}
}
