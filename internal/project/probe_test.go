package project

import (
	"io"
	"testing"

	"repro/internal/obs"
	"repro/internal/stats"
)

// recordingProbe arms the full plane: a metrics registry sampling on the
// default cadence and a trace streaming to sink (Discard when the test only
// cares about neutrality).
func recordingProbe(sink *obs.Sink) *obs.Probe {
	return &obs.Probe{
		Metrics: obs.NewRegistry(0),
		Trace:   obs.NewTrace(sink),
	}
}

// TestProbeNeutralFresh is the tentpole guarantee in test form: a fresh run
// with the full probe recording must produce a byte-identical report to the
// nil-probe golden hashes — observer events ride the kernel without touching
// the model, and every callback is read-only.
func TestProbeNeutralFresh(t *testing.T) {
	cfg := determinismConfig(t, 777)
	cfg.Probe = recordingProbe(obs.NewSink(io.Discard))
	if got := reportHash(t, New(cfg).Run()); got != goldenSeed777 {
		t.Errorf("probed fresh seed-777 report hash = %s, want golden %s (probe perturbed the simulation)", got, goldenSeed777)
	}
	cfg = determinismConfig(t, 778)
	cfg.Probe = recordingProbe(obs.NewSink(io.Discard))
	if got := reportHash(t, New(cfg).Run()); got != goldenSeed778 {
		t.Errorf("probed fresh seed-778 report hash = %s, want golden %s (probe perturbed the simulation)", got, goldenSeed778)
	}
}

// TestProbeNeutralPooled covers the pooled path: probed and unprobed runs
// interleaved through one Runner must all stay on the golden hashes — the
// probe is rebound per run and fully cleared by reset.
func TestProbeNeutralPooled(t *testing.T) {
	runner := NewRunner()
	probed := func(seed uint64) Config {
		cfg := determinismConfig(t, seed)
		cfg.Probe = recordingProbe(obs.NewSink(io.Discard))
		return cfg
	}
	runner.Run(probed(778)) // dirty the arenas with a probed run
	if got := reportHash(t, runner.Run(probed(777))); got != goldenSeed777 {
		t.Errorf("probed pooled seed-777 report hash = %s, want golden %s", got, goldenSeed777)
	}
	// An unprobed run right after a probed one: no probe state may leak.
	if got := reportHash(t, runner.Run(determinismConfig(t, 778))); got != goldenSeed778 {
		t.Errorf("unprobed pooled seed-778 after probed runs = %s, want golden %s (probe state leaked through reset)", got, goldenSeed778)
	}
	if got := reportHash(t, runner.Run(probed(777))); got != goldenSeed777 {
		t.Errorf("re-probed pooled seed-777 report hash = %s, want golden %s", got, goldenSeed777)
	}
}

// TestProbeCollects asserts the plane actually observes: a probed campaign
// yields the full metric catalog (≥ 10 series, all sampled) and a non-empty
// trace with the run-start/run-end bracket.
func TestProbeCollects(t *testing.T) {
	var lines countingWriter
	sink := obs.NewSink(&lines)
	cfg := determinismConfig(t, 777)
	cfg.Probe = recordingProbe(sink)
	if rep := New(cfg).Run(); !rep.Completed {
		t.Fatal("campaign did not complete")
	}
	reg := cfg.Probe.Metrics
	if reg.NumSeries() < 10 {
		t.Errorf("registry holds %d series, want ≥ 10", reg.NumSeries())
	}
	reg.Each(func(kind obs.Kind, s *stats.Series) {
		if s.Len() == 0 {
			t.Errorf("series %s (%s) collected no samples", s.Name, kind)
		}
	})
	if sink.Lines() == 0 {
		t.Error("trace sink saw no events")
	}
	if sink.Err() != nil {
		t.Errorf("trace sink error: %v", sink.Err())
	}
}

// countingWriter discards bytes; the test only needs the sink's own line
// accounting.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
