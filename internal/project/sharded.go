package project

import (
	"math"

	"repro/internal/credit"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/volunteer"
)

// startSharded is the Shards > 0 mirror of start: the same weekly phase
// schedule, daily feeder and churn tickers, driven through the
// deterministic sharded time-window kernel instead of per-Host engine
// events. The legacy bodies stay untouched so their golden bytes and
// alloc counts cannot drift; this mirror is held byte-identical to them
// by the sharded-vs-legacy golden-hash tests. Loop state lives in the
// tenant (t.done, t.doneWeek, t.snapIdx) so the fork path's snapshots
// carry it.
func (c *Campaign) startSharded() {
	cfg := &c.t.cfg
	c.t.prepare()
	c.t.bind()
	probe := cfg.Probe
	c.sampler = c.bindProbeSharded(probe)
	kern := c.kern

	// The spawn-count forecast for the slot pool: active hosts only change
	// at weekly ticks, so at the window barrier before a tick this is the
	// exact spawn count — except when the project finishes at that very
	// tick, where it overpredicts harmlessly (slots keep, seeds are
	// pre-drawn from a stream nothing else reads).
	kern.SpawnHint = c.spawnHintFn()
	c.weekly = c.engine.Every(0, sim.Week, c.shardedWeeklyFn(probe))
	c.weekly.Tag(sim.Call{Kind: sim.CallTickWeekly})
	c.daily = c.engine.Every(sim.Day/2, sim.Day, c.shardedDailyFn())
	c.daily.Tag(sim.Call{Kind: sim.CallTickDaily})
	// Churn mirror of start: same cadence, same SetTarget pair, so the
	// sharded kernel sees departures and replacement joins at exactly the
	// legacy moments (replacements draw their seeds FIFO from the same
	// stream, whether they come from the slot pool or inline builds).
	c.churn = nil
	if plane := c.activePlane(); plane != nil && plane.ChurnEnabled() {
		c.churn = c.engine.Every(faults.ChurnOffset, faults.ChurnInterval, c.shardedChurnFn(plane))
		c.churn.Tag(sim.Call{Kind: sim.CallTickChurn})
	}
}

// spawnHintFn builds the slot-pool spawn forecast. A factory (like
// weeklyFn in campaign.go) so snapshot adoption can rebuild the identical
// closure on an adopting kernel; the body is unchanged from the
// pre-portable inline version.
func (c *Campaign) spawnHintFn() func(float64) int {
	cfg := &c.t.cfg
	kern := c.kern
	return func(w float64) int {
		if c.t.done {
			return 0
		}
		gridCap := cfg.Grid.VFTPAt(CampaignStartWeek + w)
		target := int(math.Round(cfg.Share(w) * gridCap * cfg.HostScale))
		if target < 1 {
			target = 1
		}
		return target - kern.Active()
	}
}

// shardedWeeklyFn builds the sharded weekly phase-schedule tick (factory:
// see spawnHintFn).
func (c *Campaign) shardedWeeklyFn(probe *obs.Probe) func(sim.Time) {
	cfg := &c.t.cfg
	kern := c.kern
	return func(now sim.Time) {
		w := now / sim.Week
		if c.t.done {
			return
		}
		if probe != nil {
			if ph := cfg.phaseAt(w); ph != c.t.obsPhase {
				c.t.obsPhase = ph
				probe.Emit(now, "phase", obs.Str("phase", ph), obs.Num("share", cfg.Share(w)))
			}
		}
		for c.t.snapIdx < len(cfg.SnapshotWeeks) && w >= cfg.SnapshotWeeks[c.t.snapIdx] {
			c.t.captureSnapshot(w)
			c.t.snapIdx++
		}
		if c.t.allDone() {
			c.t.done = true
			c.t.doneWeek = w
			for c.t.snapIdx < len(cfg.SnapshotWeeks) {
				c.t.captureSnapshot(cfg.SnapshotWeeks[c.t.snapIdx])
				c.t.snapIdx++
			}
			kern.SetTarget(0)
			return
		}
		gridCap := cfg.Grid.VFTPAt(CampaignStartWeek + w)
		target := int(math.Round(cfg.Share(w) * gridCap * cfg.HostScale))
		if target < 1 {
			target = 1
		}
		kern.SetTarget(target)
		c.t.server.EnsureHosts(kern.TotalJoined())
		c.t.feed(kern.Active())
	}
}

// shardedDailyFn builds the sharded daily feeder tick (factory: see
// spawnHintFn).
func (c *Campaign) shardedDailyFn() func(sim.Time) {
	kern := c.kern
	return func(sim.Time) {
		if !c.t.done {
			c.t.feed(kern.Active())
		}
	}
}

// shardedChurnFn builds the sharded churn tick (factory: see spawnHintFn).
func (c *Campaign) shardedChurnFn(plane *faults.Plane) func(sim.Time) {
	kern := c.kern
	return func(sim.Time) {
		if c.t.done {
			return
		}
		if n := plane.ChurnCount(kern.Active()); n > 0 {
			a := kern.Active()
			kern.SetTarget(a - n)
			kern.SetTarget(a)
		}
	}
}

// finishSharded is the Shards > 0 mirror of finish.
func (c *Campaign) finishSharded() *Report {
	cfg := &c.t.cfg
	kern := c.kern
	c.weekly.Stop()
	c.daily.Stop()
	if c.churn != nil {
		c.churn.Stop()
	}
	// Drain stragglers (late returns) without advancing phases — and
	// without forecasting spawns for ticks that will never fire.
	kern.SpawnHint = nil
	kern.RunUntil(cfg.MaxWeeks*sim.Week + 30*sim.Day)
	if c.sampler != nil {
		c.sampler.Stop()
	}

	c.t.finishReport(c.engine, c.t.done, c.t.doneWeek)
	r := &c.t.report
	if probe := cfg.Probe; probe != nil {
		probe.Emit(c.engine.Now(), "run-end",
			obs.Str("completed", boolStr(c.t.done)),
			obs.Num("weeks", r.WeeksElapsed),
			obs.Int("events", int64(r.EventsExecuted)),
			obs.Int("completed-wus", r.ServerStats.Completed))
	}
	r.MeanSpeedDown = kern.MeanSpeedDown()
	r.HostsJoined = kern.TotalJoined()
	r.PointsTotal, r.AccountingBias, r.HardwareTrend = creditKernel(kern, c.ledger)
	if plane := c.activePlane(); plane != nil {
		fr := plane.BuildReport()
		r.Faults = &fr
	}
	if !c.pooled {
		c.engine, c.kern, c.ledger = nil, nil, nil
		c.t.release()
	}
	return r
}

// bindProbeSharded is bindProbe with the fleet metrics read from the
// sharded kernel (same series names, same sampling cadence).
func (c *Campaign) bindProbeSharded(p *obs.Probe) *sim.Ticker {
	if p == nil {
		return nil
	}
	c.t.bindObs(p, c.engine, "")
	p.Emit(0, "run-start",
		obs.Int("wus", c.t.report.DistinctWUs),
		obs.Num("ref-seconds", c.t.report.TotalRefWork),
		obs.Int("batches", int64(len(c.t.order))))
	var sampler *sim.Ticker
	if reg := p.Metrics; reg != nil {
		reg.Rebind()
		bindServerMetrics(reg, c.engine, c.t.server, "")
		kern := c.kern
		reg.Gauge("active-hosts", func() float64 { return float64(kern.Active()) })
		reg.Counter("hosts-joined", func() float64 { return float64(kern.TotalJoined()) })
		reg.Gauge("pending-events", func() float64 { return float64(c.engine.Pending()) })
		reg.Counter("events-executed", func() float64 { return float64(c.engine.Executed()) })
		sampler = c.engine.ObserveEvery(0, p.Cadence(), func(now sim.Time) {
			reg.Sample(now)
		})
	}
	c.bindFaultObs(p)
	return sampler
}

// creditKernel runs the §8 points accounting over the SoA fleet, the
// sharded counterpart of creditPopulation: same join-order iteration, same
// registration and credit calls.
func creditKernel(k *volunteer.ShardKernel, ledger *credit.Ledger) (total, bias, trend float64) {
	n := k.TotalJoined()
	for id := 0; id < n; id++ {
		hw, joined, cpu := k.HostAccounting(id)
		ledger.Register(credit.Device{
			ID:       id,
			Score:    credit.ReferenceScore / hw,
			JoinedAt: joined,
		})
		if cpu > 0 {
			if _, err := ledger.Credit(credit.Result{Device: id, ReportedS: cpu, At: joined}); err != nil {
				panic(err) // devices were just registered; cannot happen
			}
		}
	}
	total = ledger.Total()
	bias = ledger.AccountingBias()
	if tr, _, ok := ledger.PowerTrend(); ok {
		trend = tr
	}
	return total, bias, trend
}
