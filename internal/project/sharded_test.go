package project

import (
	"bytes"
	"testing"

	"repro/internal/volunteer"
	"repro/internal/wcg"
)

// shardedConfig returns the determinism configuration running on the
// sharded kernel with K shards.
func shardedConfig(t *testing.T, seed uint64, shards int) Config {
	t.Helper()
	cfg := determinismConfig(t, seed)
	cfg.Shards = shards
	return cfg
}

// TestShardedMatchesLegacyGolden pins the sharded kernel — sequential
// (K=1) and parallel (K=4) — to the SAME golden report hashes the legacy
// single-heap kernel recorded in PR 5/6: the SoA plane and the time-window
// merge must be byte-invisible, not merely self-consistent.
func TestShardedMatchesLegacyGolden(t *testing.T) {
	for _, shards := range []int{1, 4} {
		if got := reportHash(t, New(shardedConfig(t, 777, shards)).Run()); got != goldenSeed777 {
			t.Errorf("sharded(K=%d) seed-777 hash = %s, want legacy golden %s", shards, got, goldenSeed777)
		}
		if got := reportHash(t, New(shardedConfig(t, 778, shards)).Run()); got != goldenSeed778 {
			t.Errorf("sharded(K=%d) seed-778 hash = %s, want legacy golden %s", shards, got, goldenSeed778)
		}
	}
}

// TestShardedPooledMatchesGolden pins the pooled sharded path to the same
// golden hashes, with the arenas dirtied by runs under different seeds and
// shard counts first (including a shard-count change mid-pool).
func TestShardedPooledMatchesGolden(t *testing.T) {
	runner := NewRunner()
	runner.Run(shardedConfig(t, 778, 4)) // dirty every arena
	runner.Run(shardedConfig(t, 31, 2))  // and change the shard count
	if got := reportHash(t, runner.Run(shardedConfig(t, 777, 4))); got != goldenSeed777 {
		t.Errorf("pooled sharded seed-777 hash = %s, want golden %s", got, goldenSeed777)
	}
	if got := reportHash(t, runner.Run(shardedConfig(t, 778, 1))); got != goldenSeed778 {
		t.Errorf("pooled sharded seed-778 hash = %s, want golden %s", got, goldenSeed778)
	}
}

// TestShardedPooledModeSwitch runs legacy and sharded configurations back
// to back on one pooled Runner: switching execution plans mid-pool must
// not leak state either way.
func TestShardedPooledModeSwitch(t *testing.T) {
	runner := NewRunner()
	if got := reportHash(t, runner.Run(determinismConfig(t, 777))); got != goldenSeed777 {
		t.Fatalf("pooled legacy seed-777 hash = %s, want golden %s", got, goldenSeed777)
	}
	if got := reportHash(t, runner.Run(shardedConfig(t, 777, 3))); got != goldenSeed777 {
		t.Errorf("legacy→sharded pooled switch: hash = %s, want golden %s", got, goldenSeed777)
	}
	if got := reportHash(t, runner.Run(determinismConfig(t, 778))); got != goldenSeed778 {
		t.Errorf("sharded→legacy pooled switch: hash = %s, want golden %s", got, goldenSeed778)
	}
}

// shardedStressConfig exercises every host-model path the goldens do not:
// behavior cohorts (saboteurs + diurnal day-cycles), adaptive validation,
// a work buffer deeper than one, and BOINC CPU-time accounting.
func shardedStressConfig(t *testing.T, seed uint64, shards int) Config {
	t.Helper()
	cfg := determinismConfig(t, seed)
	cfg.Shards = shards
	cfg.Host.WorkBuffer = 3
	cfg.Host.Accounting = volunteer.BOINCCPUTime
	cfg.Host.Profiles = []volunteer.BehaviorProfile{
		{Name: "faithful", Weight: 0.70, ErrorProb: 0.01, AbandonProb: -1},
		{Name: "saboteur", Weight: 0.05, ErrorProb: 0.004, AbandonProb: -1, Saboteur: true},
		{Name: "diurnal", Weight: 0.25, ErrorProb: 0.02, AbandonProb: -1, Diurnal: true, OnlineHours: 12},
	}
	cfg.Server.Validator = wcg.AdaptiveValidator{Streak: 5}
	return cfg
}

// TestShardedOneVsN is the shards=1-vs-N byte-determinism guarantee on the
// stress configuration: the shard count must change only who computes,
// never what. Fresh runs and pooled runs both.
func TestShardedOneVsN(t *testing.T) {
	base := renderReport(t, New(shardedStressConfig(t, 909, 1)).Run())
	for _, shards := range []int{2, 8} {
		got := renderReport(t, New(shardedStressConfig(t, 909, shards)).Run())
		if !bytes.Equal(base, got) {
			t.Errorf("fresh sharded run K=%d diverged from K=1:\nK=1: %.200s…\nK=%d: %.200s…", shards, base, shards, got)
		}
	}
	runner := NewRunner()
	runner.Run(shardedStressConfig(t, 31, 2)) // dirty the arenas
	if got := renderReport(t, runner.Run(shardedStressConfig(t, 909, 8))); !bytes.Equal(base, got) {
		t.Errorf("pooled sharded run K=8 diverged from fresh K=1:\nfresh: %.200s…\npooled: %.200s…", base, got)
	}
}
