package project

import (
	"math"
	"sort"

	"repro/internal/credit"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/vftp"
	"repro/internal/volunteer"
	"repro/internal/wcg"
	"repro/internal/workunit"
)

// slicePlan is the precomputed packaging of one (receptor, ligand) couple:
// the workunit slicing is decided once in prepare() and reused verbatim by
// releaseBatch, instead of being recomputed at release time.
type slicePlan struct {
	ligand int
	nsep   int // starting positions per workunit (SliceCouple)
}

// batch is one receptor's worth of work.
type batch struct {
	receptor  int
	cost      float64 // ref-seconds (scaled)
	remaining int     // workunits not yet completed
	total     int
	doneRef   float64     // ref-seconds completed
	plan      []slicePlan // release plan, one entry per sampled ligand
}

// tenant is one project's machinery on a grid: its middleware server, its
// batches and release order, its feed loop state, and its Report. A
// single-project Campaign owns exactly one tenant bound straight to the
// population; a shared Grid owns N tenants multiplexed over one population.
// The engine, population and credit ledger stay with the owner — a tenant
// only ever touches its own server and accounting.
//
// Reset contract (PR3): reset() retains the batch array, the slicing-plan
// capacity, the weekly accumulators, the ligand-sampling scratch and the
// report's series/histogram buffers; the server is Reset (arenas retained)
// by the owner alongside.
type tenant struct {
	cfg    Config
	server *wcg.Server

	batches []batch
	order   []int // batch release order (indexes into batches)

	next        int // next batch to release
	outstanding int // batches released but not completed

	weeklyCPU   []float64
	weeklyCount []int64

	// Reusable scratch: the ligand-sampling bitset (one bit per ligand
	// column) and the sampled-index buffer, shared by every releaseBatch
	// and every pooled run.
	seenBits   []uint64
	ligScratch []int

	// Weekly-loop state, shared by the single-project Campaign and the
	// Grid co-run. Tenant fields (not run-locals) so a snapshot of the
	// tenant carries the loop state across a fork restore.
	done     bool
	doneWeek float64
	snapIdx  int
	coCPU    float64 // CPUSeconds when the co-run share window closed

	// Observability plane (nil/zero when the run is unprobed; see
	// observe.go). obsName distinguishes tenants on a shared grid; obsPhase
	// lives here rather than as a Run local so the weekly closure does not
	// grow a heap cell on the nil-probe path.
	probe     *obs.Probe
	obsEngine *sim.Engine
	obsName   string
	obsPhase  string

	report Report
}

// initTenant arms a fresh tenant: configuration stored, report seeded.
// The server is created by the owner (it owns the engine binding).
func (t *tenant) initTenant(cfg Config, server *wcg.Server) {
	t.cfg = cfg
	t.server = server
	t.report.Config = cfg
	t.report.ReportedHours = stats.NewHistogram(0, 80, 80)
}

// reset rearms the tenant for another run under a new configuration,
// retaining every backing buffer. The owner must Reset the server first.
func (t *tenant) reset(cfg Config) {
	t.cfg = cfg
	t.next, t.outstanding = 0, 0
	t.done, t.doneWeek, t.snapIdx, t.coCPU = false, 0, 0, 0
	t.probe, t.obsEngine, t.obsName, t.obsPhase = nil, nil, "", ""
	t.weeklyCPU = t.weeklyCPU[:0]
	t.weeklyCount = t.weeklyCount[:0]

	r := &t.report
	hist := r.ReportedHours
	hcmd, grid, results := r.HCMDVFTP, r.GridVFTP, r.ResultsWeek
	snaps := r.Snapshots[:0]
	*r = Report{Config: cfg}
	hist.Reset()
	r.ReportedHours = hist
	r.HCMDVFTP, r.GridVFTP, r.ResultsWeek = hcmd, grid, results
	r.Snapshots = snaps
}

// release drops every backing buffer at the end of a one-shot run so a
// caller keeping the Report does not pin the dead simulation's arenas.
func (t *tenant) release() {
	t.server = nil
	t.batches, t.order = nil, nil
	t.weeklyCPU, t.weeklyCount = nil, nil
	t.seenBits, t.ligScratch = nil, nil
	t.probe, t.obsEngine = nil, nil
}

// bind points the server's completion callbacks at this tenant's batch and
// weekly accounting (per run: the callbacks are cleared by server Reset).
func (t *tenant) bind() {
	t.server.OnComplete = func(st *wcg.WUState) {
		b := &t.batches[st.Batch]
		b.remaining--
		b.doneRef += st.WU.RefSeconds
		if b.remaining == 0 {
			t.outstanding--
		}
	}
	t.server.OnWeekCPU = func(week int, cpu float64) {
		for len(t.weeklyCPU) <= week {
			t.weeklyCPU = append(t.weeklyCPU, 0)
			t.weeklyCount = append(t.weeklyCount, 0)
		}
		t.weeklyCPU[week] += cpu
		t.weeklyCount[week]++
		t.report.ReportedHours.Add(cpu / 3600)
	}
}

// ligandsFor returns the (possibly subsampled) ligand list for a receptor.
// The sample is offset by the receptor index so that across receptors every
// ligand column is drawn evenly — plain striding from 0 would bias the
// scaled workload toward a few ligands' cost profile.
//
// The returned slice is scratch owned by the tenant, valid until the
// next ligandsFor call; the sampling set is a reusable bitset, so repeated
// batch releases allocate nothing once the scratch has grown.
func (t *tenant) ligandsFor(receptor int) []int {
	n := t.cfg.DS.Len()
	count := int(math.Round(float64(n) * t.cfg.WorkScale))
	if count < 1 {
		count = 1
	}
	out := t.ligScratch[:0]
	if count >= n {
		for j := 0; j < n; j++ {
			out = append(out, j)
		}
		t.ligScratch = out
		return out
	}
	words := (n + 63) / 64
	if cap(t.seenBits) < words {
		t.seenBits = make([]uint64, words)
	}
	seen := t.seenBits[:words]
	clear(seen)
	stride := float64(n) / float64(count)
	// The offset multiplies the receptor index by a constant coprime with
	// typical dataset sizes so the sampled ligand is unrelated to the
	// receptor (receptor+k would select the diagonal at count=1, which is
	// systematically more expensive: big receptors dock big ligands).
	const scatter = 53
	for k := 0; k < count; k++ {
		j := (receptor*scatter + int(math.Round(float64(k)*stride))) % n
		for seen[j>>6]&(1<<(j&63)) != 0 {
			j = (j + 1) % n
		}
		seen[j>>6] |= 1 << (j & 63)
		out = append(out, j)
	}
	t.ligScratch = out
	return out
}

// prepare builds batches and their release order, reusing the previous
// run's batch array and slicing-plan capacity when the tenant is pooled.
func (t *tenant) prepare() {
	ds, m := t.cfg.DS, t.cfg.M
	if cap(t.batches) < ds.Len() {
		t.batches = make([]batch, ds.Len())
	} else {
		t.batches = t.batches[:ds.Len()]
	}
	for i := range t.batches {
		b := &t.batches[i]
		*b = batch{receptor: i, plan: b.plan[:0]}
		ligands := t.ligandsFor(i)
		for _, j := range ligands {
			nsep := workunit.SliceCouple(t.cfg.HHours*3600, m.At(i, j), ds.Proteins[i].Nsep)
			b.plan = append(b.plan, slicePlan{ligand: j, nsep: nsep})
			b.total += workunit.CoupleCount(ds.Proteins[i].Nsep, nsep)
			b.cost += float64(ds.Proteins[i].Nsep) * m.At(i, j)
		}
		b.remaining = b.total
		t.report.TotalRefWork += b.cost
		t.report.DistinctWUs += int64(b.total)
	}
	if cap(t.order) < len(t.batches) {
		t.order = make([]int, len(t.batches))
	} else {
		t.order = t.order[:len(t.batches)]
	}
	for i := range t.order {
		t.order[i] = i
	}
	switch t.cfg.Order {
	case CheapestFirst:
		sort.SliceStable(t.order, func(a, b int) bool {
			return t.batches[t.order[a]].cost < t.batches[t.order[b]].cost
		})
	case CostliestFirst:
		sort.SliceStable(t.order, func(a, b int) bool {
			return t.batches[t.order[a]].cost > t.batches[t.order[b]].cost
		})
	case RandomOrder:
		rng.New(t.cfg.Seed+99).Shuffle(len(t.order), func(a, b int) {
			t.order[a], t.order[b] = t.order[b], t.order[a]
		})
	}
}

// releaseBatch feeds one receptor's workunits to the server, following the
// slicing plan prepare() computed.
func (t *tenant) releaseBatch(orderIdx int) {
	bi := t.order[orderIdx]
	b := &t.batches[bi]
	ds, m := t.cfg.DS, t.cfg.M
	rec := b.receptor
	total := ds.Proteins[rec].Nsep
	var id int64
	for _, p := range b.plan {
		cost := m.At(rec, p.ligand)
		for lo := 1; lo <= total; lo += p.nsep {
			hi := lo + p.nsep - 1
			if hi > total {
				hi = total
			}
			t.server.AddWorkunit(workunit.Workunit{
				ID:       int64(rec)<<32 | id,
				Receptor: rec, Ligand: p.ligand,
				ISepLo: lo, ISepHi: hi,
				RefSeconds: float64(hi-lo+1) * cost,
			}, bi)
			id++
		}
	}
	t.outstanding++
	if t.probe != nil {
		t.emit(t.obsEngine.Now(), "batch-release",
			obs.Int("receptor", int64(rec)),
			obs.Int("order", int64(orderIdx)),
			obs.Int("wus", int64(b.total)),
			obs.Num("ref-seconds", b.cost))
	}
}

// feed keeps the server stocked: release batches until pending work covers
// several days of the active population's consumption (a typical workunit
// takes ~13 reported hours, so ~8 workunits per host per feed interval is a
// comfortable buffer). active is the shared population's current size —
// on a multi-project grid every tenant buffers against the whole
// population, which costs nothing but queue depth and guarantees a tenant
// never starves its own mux slice.
func (t *tenant) feed(active int) {
	low := feedLow(active)
	for t.next < len(t.order) && t.server.PendingCount() < low {
		t.releaseBatch(t.next)
		t.next++
	}
}

// feedLow is the queue depth feed() restocks to for the given population.
func feedLow(active int) int {
	low := 12 * active
	if low < 64 {
		low = 64
	}
	return low
}

func (t *tenant) allDone() bool {
	return t.next >= len(t.order) && t.outstanding == 0
}

// draining reports whether the tenant has stopped contending for the
// shared population: every batch is released and the queue has fallen
// below the feed restock level, so the tenant can no longer absorb its
// resource-share slice and the mux hands its time to the others. The
// co-run share window closes at the first tenant's drain, not its last
// validation — the wind-down tail is not contention.
func (t *tenant) draining(active int) bool {
	return t.next >= len(t.order) && t.server.PendingCount() < feedLow(active)
}

func (t *tenant) captureSnapshot(week float64) {
	s := Snapshot{Week: week, PerBatch: make([]float64, len(t.order))}
	var doneRef, totalRef float64
	for i, bi := range t.order {
		b := &t.batches[bi]
		frac := 0.0
		if b.cost > 0 {
			frac = b.doneRef / b.cost
			if frac > 1 {
				frac = 1
			}
		}
		s.PerBatch[i] = frac
		if b.remaining == 0 {
			s.BatchesDone++
		}
		doneRef += b.doneRef
		totalRef += b.cost
	}
	if totalRef > 0 {
		s.OverallFraction = doneRef / totalRef
	}
	t.report.Snapshots = append(t.report.Snapshots, s)
	if t.probe != nil {
		t.emit(week*sim.Week, "snapshot",
			obs.Num("snap-week", week),
			obs.Num("fraction", s.OverallFraction),
			obs.Int("batches-done", int64(s.BatchesDone)))
	}
}

// finishReport fills the tenant-scoped part of the report: completion,
// server stats, kernel accounting and the de-scaled weekly series. The
// population-scoped part (mean speed-down, §8 points accounting) is the
// owner's: a Campaign credits its private population to this report, a
// Grid credits the shared population to the GridReport instead.
func (t *tenant) finishReport(engine *sim.Engine, done bool, doneWeek float64) {
	r := &t.report
	r.Completed = done
	r.ServerStats = t.server.Stats
	r.EventsExecuted = engine.Executed()
	r.PeakPending = engine.MaxPending()

	if done {
		r.WeeksElapsed = doneWeek
	} else {
		r.WeeksElapsed = t.cfg.MaxWeeks
	}

	// De-scale the weekly series to real units. The series buffers are
	// reused when the tenant is pooled (reset keeps them in the report).
	r.HCMDVFTP = resetSeries(r.HCMDVFTP, "hcmd-vftp")
	r.ResultsWeek = resetSeries(r.ResultsWeek, "results-per-week")
	r.GridVFTP = resetSeries(r.GridVFTP, "grid-vftp")
	nWeeks := int(r.WeeksElapsed)
	if nWeeks > len(t.weeklyCPU) {
		nWeeks = len(t.weeklyCPU)
	}
	for w := 0; w < nWeeks; w++ {
		v := vftp.FromCPU(t.weeklyCPU[w], 7*vftp.SecondsPerDay) / t.cfg.HostScale
		r.HCMDVFTP.Add(float64(w), v)
		r.ResultsWeek.Add(float64(w), float64(t.weeklyCount[w])/t.cfg.WorkScale)
		r.GridVFTP.Add(float64(w), t.cfg.Grid.VFTPAt(CampaignStartWeek+float64(w)))
	}
	if r.HCMDVFTP.Len() > 0 {
		r.AvgVFTPWhole = r.HCMDVFTP.YMean()
		fp := r.HCMDVFTP.Window(t.cfg.ControlWeeks+t.cfg.RampWeeks, math.Inf(1))
		if fp.Len() > 0 {
			r.AvgVFTPFullPower = fp.YMean()
		}
	}
	if r.ServerStats.Received > 0 {
		r.MeanReportedH = r.ServerStats.CPUSeconds / float64(r.ServerStats.Received) / 3600
	}
}

// creditPopulation runs the §8 points accounting over a host fleet: each
// device's benchmark score is the reference score divided by its hardware
// factor. Returns (points total, accounting bias, hardware trend). The
// ledger's dense slices are reused across pooled runs.
func creditPopulation(pop *volunteer.Population, ledger *credit.Ledger) (total, bias, trend float64) {
	for _, h := range pop.Hosts() {
		ledger.Register(credit.Device{
			ID:       h.ID,
			Score:    credit.ReferenceScore / h.Hardware,
			JoinedAt: h.JoinedAt,
		})
		if h.CPUSpent > 0 {
			if _, err := ledger.Credit(credit.Result{Device: h.ID, ReportedS: h.CPUSpent, At: h.JoinedAt}); err != nil {
				panic(err) // devices were just registered; cannot happen
			}
		}
	}
	total = ledger.Total()
	bias = ledger.AccountingBias()
	if tr, _, ok := ledger.PowerTrend(); ok {
		trend = tr
	}
	return total, bias, trend
}

// resetSeries empties s for reuse, creating it on a tenant's first run.
func resetSeries(s *stats.Series, name string) *stats.Series {
	if s == nil {
		return stats.NewSeries(name)
	}
	s.Reset()
	s.Name = name
	return s
}
