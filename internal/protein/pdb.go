package protein

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePDB writes the reduced protein model in PDB format, one HETATM
// record per pseudo-atom with the partial charge in the B-factor column and
// the van-der-Waals radius in the occupancy column. The output loads in any
// molecular viewer, which is how the screensaver-style inspection of
// Figure 5 is served in this reproduction.
func WritePDB(w io.Writer, p *Protein) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "HEADER    REDUCED MODEL %s\n", p.Name); err != nil {
		return fmt.Errorf("protein: writing PDB header: %w", err)
	}
	fmt.Fprintf(bw, "REMARK    NSEP %d RADIUS %.3f\n", p.Nsep, p.Radius)
	for i, b := range p.Beads {
		// PDB fixed columns: serial, name, resName, chain, resSeq, x y z,
		// occupancy (radius), tempFactor (charge).
		fmt.Fprintf(bw, "HETATM%5d  CA  BEA A%4d    %8.3f%8.3f%8.3f%6.2f%6.2f\n",
			i+1, i+1, b.Pos.X, b.Pos.Y, b.Pos.Z, b.Radius, b.Charge)
	}
	fmt.Fprintln(bw, "END")
	return bw.Flush()
}

// ParsePDB reads a protein written by WritePDB back. Only the fields this
// package emits are recovered; the name comes from the HEADER record.
func ParsePDB(r io.Reader) (*Protein, error) {
	sc := bufio.NewScanner(r)
	p := &Protein{}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "HEADER"):
			fields := strings.Fields(line)
			if len(fields) >= 4 {
				p.Name = fields[len(fields)-1]
			}
		case strings.HasPrefix(line, "REMARK"):
			fields := strings.Fields(line)
			for i := 0; i+1 < len(fields); i++ {
				switch fields[i] {
				case "NSEP":
					v, err := strconv.Atoi(fields[i+1])
					if err != nil {
						return nil, fmt.Errorf("protein: bad NSEP remark: %w", err)
					}
					p.Nsep = v
				case "RADIUS":
					v, err := strconv.ParseFloat(fields[i+1], 64)
					if err != nil {
						return nil, fmt.Errorf("protein: bad RADIUS remark: %w", err)
					}
					p.Radius = v
				}
			}
		case strings.HasPrefix(line, "HETATM"):
			if len(line) < 66 {
				return nil, fmt.Errorf("protein: short HETATM record %q", line)
			}
			parse := func(lo, hi int) (float64, error) {
				return strconv.ParseFloat(strings.TrimSpace(line[lo:hi]), 64)
			}
			x, err := parse(30, 38)
			if err != nil {
				return nil, fmt.Errorf("protein: HETATM x: %w", err)
			}
			y, err := parse(38, 46)
			if err != nil {
				return nil, fmt.Errorf("protein: HETATM y: %w", err)
			}
			z, err := parse(46, 54)
			if err != nil {
				return nil, fmt.Errorf("protein: HETATM z: %w", err)
			}
			occ, err := parse(54, 60)
			if err != nil {
				return nil, fmt.Errorf("protein: HETATM occupancy: %w", err)
			}
			bf, err := parse(60, 66)
			if err != nil {
				return nil, fmt.Errorf("protein: HETATM b-factor: %w", err)
			}
			p.Beads = append(p.Beads, Bead{Pos: Vec3{X: x, Y: y, Z: z}, Radius: occ, Charge: bf})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("protein: reading PDB: %w", err)
	}
	if len(p.Beads) == 0 {
		return nil, fmt.Errorf("protein: no HETATM records found")
	}
	return p, nil
}
