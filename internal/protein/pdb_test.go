package protein

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestPDBRoundTrip(t *testing.T) {
	ds := Generate(3, 42)
	for _, p := range ds.Proteins {
		var buf bytes.Buffer
		if err := WritePDB(&buf, p); err != nil {
			t.Fatal(err)
		}
		got, err := ParsePDB(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != p.Name {
			t.Fatalf("name %q, want %q", got.Name, p.Name)
		}
		if got.Nsep != p.Nsep {
			t.Fatalf("nsep %d, want %d", got.Nsep, p.Nsep)
		}
		if len(got.Beads) != len(p.Beads) {
			t.Fatalf("beads %d, want %d", len(got.Beads), len(p.Beads))
		}
		for i := range got.Beads {
			// PDB columns carry 3 decimals for coordinates, 2 for the rest.
			if math.Abs(got.Beads[i].Pos.X-p.Beads[i].Pos.X) > 5e-4 {
				t.Fatalf("bead %d x: %v vs %v", i, got.Beads[i].Pos.X, p.Beads[i].Pos.X)
			}
			if math.Abs(got.Beads[i].Charge-p.Beads[i].Charge) > 5e-3 {
				t.Fatalf("bead %d charge: %v vs %v", i, got.Beads[i].Charge, p.Beads[i].Charge)
			}
			if math.Abs(got.Beads[i].Radius-p.Beads[i].Radius) > 5e-3 {
				t.Fatalf("bead %d radius: %v vs %v", i, got.Beads[i].Radius, p.Beads[i].Radius)
			}
		}
	}
}

func TestPDBFormatColumns(t *testing.T) {
	p := Generate(1, 7).Proteins[0]
	var buf bytes.Buffer
	if err := WritePDB(&buf, p); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(buf.String(), "\n")
	if !strings.HasPrefix(lines[0], "HEADER") {
		t.Fatal("missing HEADER")
	}
	sawAtom := false
	for _, l := range lines {
		if strings.HasPrefix(l, "HETATM") {
			sawAtom = true
			if len(l) != 66 {
				t.Fatalf("HETATM record has %d columns: %q", len(l), l)
			}
		}
	}
	if !sawAtom {
		t.Fatal("no HETATM records")
	}
	if lines[len(lines)-2] != "END" {
		t.Fatalf("missing END record: %q", lines[len(lines)-2])
	}
}

func TestParsePDBErrors(t *testing.T) {
	cases := []string{
		"",
		"HETATM short\n",
		"REMARK    NSEP notanumber\n",
		"HEADER    X\nEND\n",
	}
	for i, c := range cases {
		if _, err := ParsePDB(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
