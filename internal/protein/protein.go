// Package protein implements the reduced protein model and the synthetic
// HCMD-168 benchmark used throughout the reproduction.
//
// The paper's phase I targets 168 real proteins drawn from the
// protein-protein docking benchmark 2.0 (Mintseris et al.), represented in
// the Zacharias reduced model: a protein is a rigid set of pseudo-atom beads
// with van-der-Waals radii and partial charges. Per §4.1, the only protein
// properties the campaign planning depends on are
//
//   - Nsep(p): the number of ligand starting positions around receptor p,
//     determined by the protein's size and shape (Figure 2), and
//   - the per-couple compute cost (captured by the cost matrix, Table 1).
//
// We therefore substitute a deterministic synthetic benchmark whose Nsep
// table is calibrated to the paper's aggregate identities:
//
//   - Σp Nsep(p) = 294,533, so the number of generatable workunits is
//     168 · Σp Nsep(p) = 49,481,544 exactly as §4.1 states;
//   - most proteins have fewer than 3,000 starting positions;
//   - one protein exceeds 8,000 (the Figure 2 outlier).
//
// The bead geometry is genuine (beads packed in a ball, alternating partial
// charges) so the docking kernel computes real interaction energies over it.
package protein

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/rng"
)

// BenchmarkSize is the number of proteins in the HCMD phase I target set.
const BenchmarkSize = 168

// TotalNsep is Σp Nsep(p) over the benchmark, calibrated so that
// BenchmarkSize · TotalNsep = 49,481,544 generatable workunits (§4.1).
const TotalNsep = 294533

// TotalInstances is the total number of MAXDo workunit instances that can be
// generated for the benchmark: one per (receptor couple slot, starting
// position), i.e. 168 · Σp Nsep(p).
const TotalInstances = BenchmarkSize * TotalNsep // 49,481,544

// NRotWorkunit is the number of starting orientations per workunit slice
// (§4.2): 21 (α, β) couples.
const NRotWorkunit = 21

// NGamma is the number of γ values explored per (α, β) couple; the full
// orientation set has NRotWorkunit·NGamma = 210 members (§2.1 footnote).
const NGamma = 10

// Bead is a pseudo-atom of the reduced protein model.
type Bead struct {
	Pos    Vec3    // position in the protein body frame, Å
	Radius float64 // van-der-Waals radius, Å
	Charge float64 // partial charge, e
}

// Protein is a rigid reduced-model protein.
type Protein struct {
	ID     int     // index in the benchmark, 0-based
	Name   string  // synthetic PDB-like identifier
	Beads  []Bead  // pseudo-atoms in the body frame, centered on the mass center
	Radius float64 // bounding radius of the bead set, Å
	Nsep   int     // number of ligand starting positions around this protein as receptor
}

// NumBeads returns the number of pseudo-atoms.
func (p *Protein) NumBeads() int { return len(p.Beads) }

// SeparationPoints returns the Nsep ligand starting positions around the
// protein: points on a sphere at the protein surface plus the given probe
// clearance, evenly spread by the golden-spiral construction. The slice is
// freshly allocated.
func (p *Protein) SeparationPoints(clearance float64) []Vec3 {
	dirs := FibonacciSphere(p.Nsep)
	r := p.Radius + clearance
	out := make([]Vec3, len(dirs))
	for i, d := range dirs {
		out[i] = d.Scale(r)
	}
	return out
}

// SeparationPoint returns starting position isep (1-based, as the paper
// indexes) with the given clearance.
func (p *Protein) SeparationPoint(isep int, clearance float64) Vec3 {
	if isep < 1 || isep > p.Nsep {
		panic(fmt.Sprintf("protein: isep %d out of range [1,%d] for %s", isep, p.Nsep, p.Name))
	}
	dirs := FibonacciSphere(p.Nsep)
	return dirs[isep-1].Scale(p.Radius + clearance)
}

// Dataset is a protein benchmark: an ordered set of proteins plus its Nsep
// table.
type Dataset struct {
	Proteins []*Protein
}

// Len returns the number of proteins.
func (d *Dataset) Len() int { return len(d.Proteins) }

// NsepTable returns the Nsep values in protein order.
func (d *Dataset) NsepTable() []int {
	out := make([]int, len(d.Proteins))
	for i, p := range d.Proteins {
		out[i] = p.Nsep
	}
	return out
}

// SumNsep returns Σp Nsep(p).
func (d *Dataset) SumNsep() int {
	sum := 0
	for _, p := range d.Proteins {
		sum += p.Nsep
	}
	return sum
}

// Instances returns the total number of MAXDo instances for the dataset:
// len(d) couple slots per receptor starting position.
func (d *Dataset) Instances() int { return d.Len() * d.SumNsep() }

// MaxNsep returns the largest Nsep in the dataset.
func (d *Dataset) MaxNsep() int {
	m := 0
	for _, p := range d.Proteins {
		if p.Nsep > m {
			m = p.Nsep
		}
	}
	return m
}

// DefaultSeed is the seed of the canonical HCMD-168 benchmark; all
// experiments in EXPERIMENTS.md use it.
const DefaultSeed = 20061219 // the HCMD launch date, 2006-12-19

// HCMD168 generates the canonical synthetic 168-protein benchmark with the
// calibrated Nsep table (Σ = 294,533; one outlier above 8,000; bulk below
// 3,000) and deterministic bead geometry.
func HCMD168() *Dataset { return Generate(BenchmarkSize, DefaultSeed) }

// Generate builds a synthetic benchmark of n proteins from the given seed.
// For n = BenchmarkSize the Nsep table is rescaled to sum exactly to
// TotalNsep; for other n the sum scales proportionally (used by scaled-down
// tests).
func Generate(n int, seed uint64) *Dataset {
	if n <= 0 {
		panic("protein: benchmark size must be positive")
	}
	r := rng.New(seed)
	nseps := calibratedNsep(n, r)
	d := &Dataset{Proteins: make([]*Protein, n)}
	geomRng := r.Split()
	for i := 0; i < n; i++ {
		d.Proteins[i] = synthesize(i, nseps[i], geomRng.Split())
	}
	return d
}

// calibratedNsep draws n starting-position counts matching Figure 2:
// a log-normal body, one forced outlier, rescaled to the exact target sum.
func calibratedNsep(n int, r *rng.Source) []int {
	targetSum := int(math.Round(float64(TotalNsep) * float64(n) / float64(BenchmarkSize)))
	raw := make([]float64, n)
	// Log-normal body: median ≈ 1400 positions, moderate spread, clamped
	// to a plausible range for globular proteins.
	for i := range raw {
		v := r.LogNormal(math.Log(1400), 0.55)
		if v < 150 {
			v = 150
		}
		if v > 5800 {
			v = 5800
		}
		raw[i] = v
	}
	// Figure 2 shows a single protein above 8,000 starting positions.
	// Only force the outlier when the target sum can absorb it while
	// leaving the body proteins a plausible size (small scaled-down test
	// datasets skip it).
	outlier := 8500 + r.Float64()*300
	hasOutlier := n >= 2 && float64(targetSum) >= outlier+300*float64(n-1)
	if hasOutlier {
		raw[0] = outlier
	}
	// Rescale everything except the outlier so the total hits the target.
	var sumOthers, fixed float64
	start := 0
	if hasOutlier {
		fixed = raw[0]
		start = 1
	}
	for _, v := range raw[start:] {
		sumOthers += v
	}
	scale := (float64(targetSum) - fixed) / sumOthers
	ints := make([]int, n)
	sum := 0
	for i := range raw {
		v := raw[i]
		if i >= start {
			v *= scale
		}
		ints[i] = int(math.Round(v))
		if ints[i] < 1 {
			ints[i] = 1
		}
		sum += ints[i]
	}
	// Distribute the rounding residual one unit at a time over the body
	// (never the outlier, to keep it above 8,000). Stop if a full pass
	// makes no progress (every body value already at the floor).
	residual := targetSum - sum
	for residual != 0 && n > 1 {
		progressed := false
		for i := start; i < n && residual != 0; i++ {
			step := 1
			if residual < 0 {
				step = -1
			}
			if ints[i]+step >= 1 {
				ints[i] += step
				residual -= step
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	// Shuffle so the outlier is not always protein 0.
	r.Shuffle(n, func(a, b int) { ints[a], ints[b] = ints[b], ints[a] })
	return ints
}

// synthesize builds the bead geometry of one protein. The bead count scales
// with Nsep (larger surface ⇒ more starting positions ⇒ bigger protein), so
// kernel run time correlates with Nsep exactly as the paper's matrix does.
func synthesize(id, nsep int, r *rng.Source) *Protein {
	nb := 24 + nsep/40
	if nb > 260 {
		nb = 260
	}
	// Pack beads into a ball: radius grows with the cube root of count.
	const beadSpacing = 3.8 // Å, ~Cα-Cα distance
	radius := beadSpacing * math.Cbrt(float64(nb)) * 0.75
	dirs := FibonacciSphere(nb)
	beads := make([]Bead, nb)
	var center Vec3
	for i := range beads {
		// Radial position: bias outward (surface-heavy packing) with jitter.
		frac := math.Cbrt(r.Float64()) // uniform in ball volume
		pos := dirs[i].Scale(radius * frac)
		pos = pos.Add(Vec3{r.Normal(0, 0.4), r.Normal(0, 0.4), r.Normal(0, 0.4)})
		charge := r.Normal(0, 0.25)
		beads[i] = Bead{Pos: pos, Radius: 1.8 + 0.6*r.Float64(), Charge: charge}
		center = center.Add(pos)
	}
	// Center on the mass center, then neutralize total charge (proteins in
	// the benchmark are near-neutral overall).
	center = center.Scale(1 / float64(nb))
	var totalQ float64
	for i := range beads {
		beads[i].Pos = beads[i].Pos.Sub(center)
		totalQ += beads[i].Charge
	}
	dq := totalQ / float64(nb)
	maxR := 0.0
	for i := range beads {
		beads[i].Charge -= dq
		if n := beads[i].Pos.Norm(); n > maxR {
			maxR = n
		}
	}
	return &Protein{
		ID:     id,
		Name:   fmt.Sprintf("HCMD%03d", id+1),
		Beads:  beads,
		Radius: maxR,
		Nsep:   nsep,
	}
}

// NsepHistogramEdges are the bin edges the Figure 2 reproduction uses.
func NsepHistogramEdges() (lo, hi float64, bins int) { return 0, 9000, 18 }

// SortedNsep returns the Nsep table sorted ascending (used by launch-order
// policies and by Figure 2 reporting).
func (d *Dataset) SortedNsep() []int {
	t := d.NsepTable()
	sort.Ints(t)
	return t
}
