package protein

import (
	"math"
	"testing"
	"testing/quick"
)

func TestHCMD168Calibration(t *testing.T) {
	d := HCMD168()
	if d.Len() != BenchmarkSize {
		t.Fatalf("len = %d", d.Len())
	}
	if got := d.SumNsep(); got != TotalNsep {
		t.Fatalf("ΣNsep = %d, want %d", got, TotalNsep)
	}
	if got := d.Instances(); got != 49481544 {
		t.Fatalf("instances = %d, want 49,481,544 (§4.1)", got)
	}
	if d.MaxNsep() <= 8000 {
		t.Fatalf("max Nsep = %d, want > 8000 (Figure 2 outlier)", d.MaxNsep())
	}
	below3000 := 0
	for _, p := range d.Proteins {
		if p.Nsep < 3000 {
			below3000++
		}
		if p.Nsep < 1 {
			t.Fatalf("protein %s has Nsep %d", p.Name, p.Nsep)
		}
	}
	if frac := float64(below3000) / float64(d.Len()); frac < 0.8 {
		t.Fatalf("only %.0f%% of proteins below 3000 positions; Figure 2 wants 'most'", frac*100)
	}
}

func TestHCMD168Deterministic(t *testing.T) {
	a := HCMD168()
	b := HCMD168()
	for i := range a.Proteins {
		pa, pb := a.Proteins[i], b.Proteins[i]
		if pa.Nsep != pb.Nsep || pa.NumBeads() != pb.NumBeads() {
			t.Fatalf("protein %d differs across generations", i)
		}
		if pa.Beads[0].Pos != pb.Beads[0].Pos {
			t.Fatalf("bead geometry differs for protein %d", i)
		}
	}
}

func TestGenerateScaledSum(t *testing.T) {
	d := Generate(42, 7)
	want := int(math.Round(float64(TotalNsep) * 42.0 / 168.0))
	if got := d.SumNsep(); got != want {
		t.Fatalf("scaled ΣNsep = %d, want %d", got, want)
	}
}

func TestGenerateSingleProtein(t *testing.T) {
	d := Generate(1, 3)
	if d.Len() != 1 || d.Proteins[0].Nsep < 1 {
		t.Fatalf("bad single-protein dataset: %+v", d.Proteins[0])
	}
}

func TestGeneratePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Generate(0, 1)
}

func TestProteinGeometry(t *testing.T) {
	d := Generate(8, 11)
	for _, p := range d.Proteins {
		if p.NumBeads() < 20 {
			t.Fatalf("%s has too few beads: %d", p.Name, p.NumBeads())
		}
		// Mass-centered.
		var c Vec3
		for _, b := range p.Beads {
			c = c.Add(b.Pos)
		}
		c = c.Scale(1 / float64(p.NumBeads()))
		if c.Norm() > 1e-9 {
			t.Fatalf("%s not centered: |c| = %v", p.Name, c.Norm())
		}
		// Near-neutral.
		var q float64
		for _, b := range p.Beads {
			q += b.Charge
		}
		if math.Abs(q) > 1e-9 {
			t.Fatalf("%s total charge %v", p.Name, q)
		}
		// Radius is the actual bounding radius.
		maxR := 0.0
		for _, b := range p.Beads {
			if n := b.Pos.Norm(); n > maxR {
				maxR = n
			}
		}
		if math.Abs(maxR-p.Radius) > 1e-9 {
			t.Fatalf("%s radius %v, beads extend to %v", p.Name, p.Radius, maxR)
		}
	}
}

func TestBeadCountCorrelatesWithNsep(t *testing.T) {
	d := HCMD168()
	small, large := d.Proteins[0], d.Proteins[0]
	for _, p := range d.Proteins {
		if p.Nsep < small.Nsep {
			small = p
		}
		if p.Nsep > large.Nsep {
			large = p
		}
	}
	if large.NumBeads() <= small.NumBeads() {
		t.Fatalf("bead count does not grow with Nsep: %d beads (Nsep %d) vs %d beads (Nsep %d)",
			small.NumBeads(), small.Nsep, large.NumBeads(), large.Nsep)
	}
}

func TestSeparationPoints(t *testing.T) {
	d := Generate(4, 5)
	p := d.Proteins[0]
	const clearance = 5.0
	pts := p.SeparationPoints(clearance)
	if len(pts) != p.Nsep {
		t.Fatalf("got %d points, want Nsep=%d", len(pts), p.Nsep)
	}
	wantR := p.Radius + clearance
	for _, pt := range pts {
		if math.Abs(pt.Norm()-wantR) > 1e-9 {
			t.Fatalf("point at radius %v, want %v", pt.Norm(), wantR)
		}
	}
	if got := p.SeparationPoint(1, clearance); got != pts[0] {
		t.Fatal("SeparationPoint(1) != SeparationPoints()[0]")
	}
	if got := p.SeparationPoint(p.Nsep, clearance); got != pts[p.Nsep-1] {
		t.Fatal("SeparationPoint(Nsep) mismatch")
	}
}

func TestSeparationPointRange(t *testing.T) {
	p := Generate(1, 2).Proteins[0]
	for _, bad := range []int{0, -1, p.Nsep + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for isep=%d", bad)
				}
			}()
			p.SeparationPoint(bad, 1)
		}()
	}
}

func TestSortedNsep(t *testing.T) {
	d := Generate(20, 9)
	s := d.SortedNsep()
	for i := 1; i < len(s); i++ {
		if s[i-1] > s[i] {
			t.Fatal("not sorted")
		}
	}
	if len(s) != 20 {
		t.Fatalf("len = %d", len(s))
	}
}

func TestVec3Ops(t *testing.T) {
	a := Vec3{1, 2, 3}
	b := Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Fatal("Add")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Fatal("Sub")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Fatal("Scale")
	}
	if a.Dot(b) != 32 {
		t.Fatal("Dot")
	}
	if a.Cross(b) != (Vec3{-3, 6, -3}) {
		t.Fatal("Cross")
	}
	if math.Abs((Vec3{3, 4, 0}).Norm()-5) > 1e-12 {
		t.Fatal("Norm")
	}
	if math.Abs(a.Dist(b)-math.Sqrt(27)) > 1e-12 {
		t.Fatal("Dist")
	}
	if (Vec3{}).Normalize() != (Vec3{}) {
		t.Fatal("Normalize zero")
	}
	if n := (Vec3{0, 0, 9}).Normalize(); n != (Vec3{0, 0, 1}) {
		t.Fatal("Normalize")
	}
}

func TestRotationMatrixProperties(t *testing.T) {
	f := func(a, b, g float64) bool {
		alpha := math.Mod(a, math.Pi)
		beta := math.Mod(b, math.Pi)
		gamma := math.Mod(g, math.Pi)
		m := EulerZYZ(alpha, beta, gamma)
		// Rotation matrices preserve length.
		v := Vec3{1, 2, 3}
		rv := m.Apply(v)
		if math.Abs(rv.Norm()-v.Norm()) > 1e-9 {
			return false
		}
		// m · mᵀ = I.
		id := m.Mul(m.Transpose())
		want := Identity3()
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if math.Abs(id[i][j]-want[i][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEulerIdentity(t *testing.T) {
	m := EulerZYZ(0, 0, 0)
	id := Identity3()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if math.Abs(m[i][j]-id[i][j]) > 1e-12 {
				t.Fatalf("EulerZYZ(0,0,0) not identity: %v", m)
			}
		}
	}
}

func TestFibonacciSphere(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 500} {
		pts := FibonacciSphere(n)
		if len(pts) != n {
			t.Fatalf("n=%d: got %d points", n, len(pts))
		}
		for _, p := range pts {
			if math.Abs(p.Norm()-1) > 1e-9 {
				t.Fatalf("n=%d: point off unit sphere: %v", n, p.Norm())
			}
		}
	}
	// Spread check: centroid of many points should be near origin.
	pts := FibonacciSphere(1000)
	var c Vec3
	for _, p := range pts {
		c = c.Add(p)
	}
	if c.Scale(1.0/1000).Norm() > 0.01 {
		t.Fatalf("points not balanced: centroid %v", c.Scale(1.0/1000))
	}
}

func TestMatrixApplyMul(t *testing.T) {
	m := EulerZYZ(0.3, 0.7, 1.1)
	n := EulerZYZ(0.2, 0.4, 0.6)
	v := Vec3{1, -2, 0.5}
	// (m·n)(v) == m(n(v))
	lhs := m.Mul(n).Apply(v)
	rhs := m.Apply(n.Apply(v))
	if lhs.Sub(rhs).Norm() > 1e-9 {
		t.Fatalf("composition mismatch: %v vs %v", lhs, rhs)
	}
}

func BenchmarkHCMD168(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = HCMD168()
	}
}

func BenchmarkSeparationPoints(b *testing.B) {
	p := HCMD168().Proteins[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.SeparationPoints(5)
	}
}
