// Package report renders tables, series and durations in the formats the
// paper uses: fixed-width ASCII tables for the numbered tables, CSV files
// for the figure series, and the y:d:h:m:s duration notation of §4.1
// ("1,488:237:19:45:54").
package report

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// FormatYDHMS renders seconds in the paper's y:d:h:m:s notation with
// 365-day years (the convention under which the paper's own totals are
// self-consistent).
func FormatYDHMS(seconds float64) string {
	if seconds < 0 {
		return "-" + FormatYDHMS(-seconds)
	}
	s := int64(math.Round(seconds))
	const (
		minute = 60
		hour   = 60 * minute
		day    = 24 * hour
		year   = 365 * day
	)
	y := s / year
	s %= year
	d := s / day
	s %= day
	h := s / hour
	s %= hour
	m := s / minute
	s %= minute
	return fmt.Sprintf("%s:%03d:%02d:%02d:%02d", groupThousands(y), d, h, m, s)
}

// groupThousands renders n with comma separators.
func groupThousands(n int64) string {
	if n < 0 {
		return "-" + groupThousands(-n)
	}
	digits := fmt.Sprintf("%d", n)
	var b strings.Builder
	lead := len(digits) % 3
	if lead > 0 {
		b.WriteString(digits[:lead])
		if len(digits) > lead {
			b.WriteByte(',')
		}
	}
	for i := lead; i < len(digits); i += 3 {
		b.WriteString(digits[i : i+3])
		if i+3 < len(digits) {
			b.WriteByte(',')
		}
	}
	return b.String()
}

// Comma renders a float with thousands separators and no decimals.
func Comma(v float64) string { return groupThousands(int64(math.Round(v))) }

// Table is a simple fixed-width ASCII table builder.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	bw := bufio.NewWriter(w)
	if t.Title != "" {
		fmt.Fprintf(bw, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(bw, "  ")
			}
			fmt.Fprintf(bw, "%-*s", widths[i], c)
		}
		fmt.Fprintln(bw)
	}
	line(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	return bw.Flush()
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return ""
	}
	return b.String()
}

// WriteSeriesCSV writes one or more series sharing an x axis as CSV with
// the given x-column name. Series of different lengths are padded with
// empty cells.
func WriteSeriesCSV(w io.Writer, xName string, series ...*stats.Series) error {
	if len(series) == 0 {
		return fmt.Errorf("report: no series to write")
	}
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, xName)
	for _, s := range series {
		fmt.Fprintf(bw, ",%s", s.Name)
	}
	fmt.Fprintln(bw)
	maxLen := 0
	for _, s := range series {
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	for i := 0; i < maxLen; i++ {
		wroteX := false
		for _, s := range series {
			if i < s.Len() {
				if !wroteX {
					fmt.Fprintf(bw, "%g", s.X[i])
					wroteX = true
				}
				break
			}
		}
		if !wroteX {
			fmt.Fprint(bw, "")
		}
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(bw, ",%g", s.Y[i])
			} else {
				fmt.Fprint(bw, ",")
			}
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// WriteHistogramCSV writes a histogram as (bin_low, count) CSV rows.
func WriteHistogramCSV(w io.Writer, h *stats.Histogram) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "bin_low,count")
	for i, c := range h.Bins {
		fmt.Fprintf(bw, "%g,%d\n", h.BinLow(i), c)
	}
	return bw.Flush()
}
