package report

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestFormatYDHMSPaperTotal(t *testing.T) {
	// The paper prints the formula-(1) total as 1,488:237:19:45:54.
	got := FormatYDHMS(46946115954)
	if got != "1,488:237:19:45:54" {
		t.Fatalf("got %q", got)
	}
}

func TestFormatYDHMSPhaseI(t *testing.T) {
	// §6: the consumed total is 8,082:275:17:15:44.
	got := FormatYDHMS(254897774144)
	if got != "8,082:275:17:15:44" {
		t.Fatalf("got %q", got)
	}
}

func TestFormatYDHMSSmall(t *testing.T) {
	if got := FormatYDHMS(0); got != "0:000:00:00:00" {
		t.Fatalf("zero: %q", got)
	}
	if got := FormatYDHMS(61); got != "0:000:00:01:01" {
		t.Fatalf("61s: %q", got)
	}
	if got := FormatYDHMS(-61); got != "-0:000:00:01:01" {
		t.Fatalf("negative: %q", got)
	}
}

func TestComma(t *testing.T) {
	cases := map[float64]string{
		0:        "0",
		999:      "999",
		1000:     "1,000",
		1364476:  "1,364,476",
		49481544: "49,481,544",
		-1234:    "-1,234",
	}
	for v, want := range cases {
		if got := Comma(v); got != want {
			t.Errorf("Comma(%v) = %q, want %q", v, got, want)
		}
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Table 2", "Grid", "whole period", "full power")
	tb.AddRow("World Community Grid", "16,450", "26,248")
	tb.AddRow("Dedicated Grid", "3,029", "4,833")
	out := tb.String()
	if !strings.Contains(out, "Table 2") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "World Community Grid") || !strings.Contains(out, "4,833") {
		t.Fatalf("missing cells:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and rows share the position of column 2.
	hdr := lines[1]
	row := lines[3]
	if idx := strings.Index(hdr, "whole period"); idx < 0 || len(row) < idx {
		t.Fatalf("alignment broken:\n%s", out)
	}
}

func TestTableRowPadding(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("only-one")
	tb.AddRow("x", "y", "dropped")
	out := tb.String()
	if strings.Contains(out, "dropped") {
		t.Fatal("extra cell not dropped")
	}
	if !strings.Contains(out, "only-one") {
		t.Fatal("short row lost")
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	a := stats.NewSeries("alpha")
	a.Add(0, 1)
	a.Add(1, 2)
	b := stats.NewSeries("beta")
	b.Add(0, 10)
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, "week", a, b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if lines[0] != "week,alpha,beta" {
		t.Fatalf("header: %q", lines[0])
	}
	if lines[1] != "0,1,10" {
		t.Fatalf("row 1: %q", lines[1])
	}
	if lines[2] != "1,2," {
		t.Fatalf("row 2 should pad short series: %q", lines[2])
	}
}

func TestWriteSeriesCSVEmpty(t *testing.T) {
	var sb strings.Builder
	if err := WriteSeriesCSV(&sb, "x"); err == nil {
		t.Fatal("expected error for no series")
	}
}

func TestWriteHistogramCSV(t *testing.T) {
	h := stats.NewHistogram(0, 10, 2)
	h.Add(1)
	h.Add(6)
	h.Add(7)
	var sb strings.Builder
	if err := WriteHistogramCSV(&sb, h); err != nil {
		t.Fatal(err)
	}
	want := "bin_low,count\n0,1\n5,2\n"
	if sb.String() != want {
		t.Fatalf("got %q", sb.String())
	}
}
