// Package rng provides a deterministic, seedable pseudo-random number
// generator and the distributions needed by the HCMD reproduction.
//
// All stochastic components of the repository (protein benchmark generation,
// cost-matrix synthesis, volunteer population, availability models) draw from
// this package so that every experiment is reproducible bit-for-bit from a
// single seed, independent of Go release or platform.
//
// The core generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 as its authors recommend.
package rng

import "math"

// Source is a deterministic random source implementing xoshiro256**.
// The zero value is not valid; use New.
type Source struct {
	s [4]uint64
}

// New returns a Source seeded from seed via SplitMix64.
// Distinct seeds yield statistically independent streams.
func New(seed uint64) *Source {
	var src Source
	NewInto(&src, seed)
	return &src
}

// NewInto seeds dst in place, exactly as New(seed) would — the
// allocation-free path for pooled objects that embed their Source by value.
func NewInto(dst *Source, seed uint64) {
	sm := seed
	for i := range dst.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		dst.s[i] = z ^ (z >> 31)
	}
	// xoshiro must not be seeded with all zeros; SplitMix64 cannot produce
	// four consecutive zeros, but guard anyway for safety.
	if dst.s[0]|dst.s[1]|dst.s[2]|dst.s[3] == 0 {
		dst.s[0] = 0x9e3779b97f4a7c15
	}
}

// Split derives an independent child stream from the source. It consumes
// one value from the parent, so parent and child sequences do not overlap
// in practice.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // negligible bias for n << 2^64
}

// Int63 returns a non-negative 63-bit integer.
func (r *Source) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the elements of a slice of any indexable collection using
// the provided swap function, Fisher-Yates style.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a normally distributed value with mean 0 and
// standard deviation 1, using the polar (Marsaglia) method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (r *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has parameters mu and sigma.
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// ExpFloat64 returns an exponentially distributed value with rate 1.
func (r *Source) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Exponential returns an exponentially distributed value with the given mean.
func (r *Source) Exponential(mean float64) float64 {
	return mean * r.ExpFloat64()
}

// Pareto returns a Pareto(xm, alpha) distributed value: heavy-tailed with
// minimum xm and shape alpha (smaller alpha = heavier tail).
func (r *Source) Pareto(xm, alpha float64) float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return xm / math.Pow(u, 1/alpha)
		}
	}
}

// Bernoulli returns true with probability p.
func (r *Source) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Uniform returns a uniform value in [lo, hi).
func (r *Source) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Triangular returns a value from a triangular distribution on [lo, hi]
// with the given mode. Useful for bounded, skewed quantities.
func (r *Source) Triangular(lo, mode, hi float64) float64 {
	u := r.Float64()
	c := (mode - lo) / (hi - lo)
	if u < c {
		return lo + math.Sqrt(u*(hi-lo)*(mode-lo))
	}
	return hi - math.Sqrt((1-u)*(hi-lo)*(hi-mode))
}

// Poisson returns a Poisson-distributed count with the given mean, using
// Knuth's method for small means and normal approximation for large ones.
func (r *Source) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 500 {
		// Normal approximation with continuity correction.
		v := r.Normal(mean, math.Sqrt(mean))
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Weighted selects an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if all weights are zero or any is
// negative.
func (r *Source) Weighted(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("rng: all weights zero")
	}
	target := r.Float64() * total
	var cum float64
	for i, w := range weights {
		cum += w
		if target < cum {
			return i
		}
	}
	return len(weights) - 1
}
