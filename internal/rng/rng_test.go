package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestDistinctSeeds(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	if parent.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(4)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(6)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(8)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("normal mean %v, want ~10", mean)
	}
	if math.Abs(std-3) > 0.05 {
		t.Errorf("normal std %v, want ~3", std)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(9)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(2, 0.5)
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	// Selection via counting below exp(2).
	below := 0
	for _, v := range vals {
		if v < math.Exp(2) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.01 {
		t.Fatalf("lognormal median fraction %v, want ~0.5", frac)
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(10)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(7)
	}
	mean := sum / n
	if math.Abs(mean-7) > 0.1 {
		t.Fatalf("exponential mean %v, want ~7", mean)
	}
}

func TestParetoMinimum(t *testing.T) {
	r := New(11)
	for i := 0; i < 10000; i++ {
		if v := r.Pareto(3, 2); v < 3 {
			t.Fatalf("Pareto below xm: %v", v)
		}
	}
}

func TestTriangularBounds(t *testing.T) {
	r := New(12)
	for i := 0; i < 10000; i++ {
		v := r.Triangular(1, 2, 5)
		if v < 1 || v > 5 {
			t.Fatalf("Triangular out of bounds: %v", v)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	r := New(13)
	for _, mean := range []float64{0.5, 4, 50, 1000} {
		const n = 20000
		var sum float64
		for i := 0; i < n; i++ {
			sum += float64(r.Poisson(mean))
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Errorf("Poisson(%v) sample mean %v", mean, got)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(14)
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Fatal("Poisson of non-positive mean must be 0")
	}
}

func TestWeightedDistribution(t *testing.T) {
	r := New(15)
	w := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Weighted(w)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index selected %d times", counts[1])
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.25) > 0.01 {
		t.Fatalf("weight-1 index fraction %v, want ~0.25", frac0)
	}
}

func TestWeightedPanics(t *testing.T) {
	r := New(16)
	for _, w := range [][]float64{{0, 0}, {-1, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for weights %v", w)
				}
			}()
			r.Weighted(w)
		}()
	}
}

func TestShufflePreservesElements(t *testing.T) {
	r := New(17)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.Shuffle(len(s), func(i, j int) { s[i], s[j] = s[j], s[i] })
	for _, v := range s {
		sum += v
	}
	if sum != 21 {
		t.Fatalf("shuffle lost elements: %v", s)
	}
}

func TestBernoulliExtremes(t *testing.T) {
	r := New(18)
	for i := 0; i < 1000; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkNormal(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.NormFloat64()
	}
}
