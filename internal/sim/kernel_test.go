package sim

import (
	"testing"

	"repro/internal/rng"
)

// The lazy-cancel kernel contract: Cancel is O(1), Pending() stays exact,
// FIFO ties hold across both scheduling paths, and recycled events never
// leak state between schedules. These tests cover the paths sim_test.go
// (written against the eager-removal kernel) does not reach.

func TestScheduleFIFOWithAt(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(5, func() { order = append(order, 0) })
	e.Schedule(5, func() { order = append(order, 1) })
	e.At(5, func() { order = append(order, 2) })
	e.ScheduleAfter(5, func() { order = append(order, 3) })
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("mixed At/Schedule ties not FIFO: %v", order)
		}
	}
}

func TestScheduleRecyclesEvents(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain func()
	chain = func() {
		count++
		if count < 10000 {
			e.ScheduleAfter(1, chain)
		}
	}
	e.Schedule(0, chain)
	e.Run()
	if count != 10000 {
		t.Fatalf("count = %d", count)
	}
	// A self-rescheduling chain needs exactly one live event at a time:
	// the free list must be feeding the next link, not growing the slab.
	if len(e.free) != 1 {
		t.Fatalf("free list holds %d events, want 1 (recycling broken)", len(e.free))
	}
}

func TestRecycledEventSafeAfterHandleCancel(t *testing.T) {
	// Cancelling a stale handle (its event already fired) must not corrupt
	// an unrelated recycled event scheduled afterwards.
	e := NewEngine()
	ev := e.At(1, func() {})
	fired := false
	e.Schedule(2, func() { fired = true })
	e.RunUntil(1.5)
	e.Cancel(ev) // already fired: no-op
	e.Run()
	if !fired {
		t.Fatal("recycled event lost to a stale handle cancel")
	}
}

func TestMaxPending(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(float64(i+1), func() {})
	}
	if e.MaxPending() != 5 {
		t.Fatalf("max pending = %d, want 5", e.MaxPending())
	}
	e.Run()
	if e.MaxPending() != 5 {
		t.Fatalf("max pending after run = %d, want 5 (high-water mark)", e.MaxPending())
	}
	e.At(100, func() {})
	if e.MaxPending() != 5 {
		t.Fatalf("max pending = %d, want 5 (1 live < old peak)", e.MaxPending())
	}
}

func TestCancelHeavySweep(t *testing.T) {
	// Cancelling most of a large queue must compact the heap (bounding
	// memory) without disturbing the survivors' order.
	e := NewEngine()
	const n = 20000
	evs := make([]*Event, n)
	for i := 0; i < n; i++ {
		evs[i] = e.At(float64(i), func() {})
	}
	var fired []float64
	keep := 100
	e.At(float64(n), func() {})
	for i := keep; i < n; i++ {
		e.Cancel(evs[i])
	}
	if e.Pending() != keep+1 {
		t.Fatalf("pending = %d, want %d", e.Pending(), keep+1)
	}
	if len(e.queue) >= n {
		t.Fatalf("heap not swept: %d entries for %d live", len(e.queue), e.Pending())
	}
	for i := 0; i < keep; i++ {
		i := i
		evs[i].fn = func() { fired = append(fired, float64(i)) }
	}
	e.Run()
	if len(fired) != keep {
		t.Fatalf("fired %d, want %d", len(fired), keep)
	}
	for i, v := range fired {
		if v != float64(i) {
			t.Fatalf("sweep broke ordering: %v", fired[:i+1])
		}
	}
}

func TestSweepAllTombstones(t *testing.T) {
	// Cancelling every event must survive the sweep compacting the heap to
	// empty (regression: eventHeap.init read h[0] on a zero-length heap).
	e := NewEngine()
	evs := make([]*Event, 1024)
	for i := range evs {
		evs[i] = e.At(float64(i+1), func() {})
	}
	for _, ev := range evs {
		e.Cancel(ev)
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
	fired := false
	e.Schedule(1, func() { fired = true })
	e.Run()
	if !fired {
		t.Fatal("engine unusable after all-tombstone sweep")
	}
}

func TestCancelIsO1UnderLoad(t *testing.T) {
	// Not a timing test: verifies the accounting stays exact through an
	// adversarial cancel/schedule interleave.
	e := NewEngine()
	r := rng.New(11)
	live := 0
	var handles []*Event
	for i := 0; i < 50000; i++ {
		switch {
		case len(handles) > 0 && r.Bernoulli(0.4):
			h := handles[len(handles)-1]
			handles = handles[:len(handles)-1]
			if !h.Canceled() {
				e.Cancel(h)
				live--
			}
		default:
			handles = append(handles, e.At(e.Now()+r.Float64()*100, func() {}))
			live++
		}
		if e.Pending() != live {
			t.Fatalf("step %d: pending %d, want %d", i, e.Pending(), live)
		}
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d", e.Pending())
	}
}

func TestTickerNaNIntervalPanics(t *testing.T) {
	// A NaN interval slips past the `interval <= 0` guard; the reschedule
	// path must reject the non-finite tick time like At does.
	e := NewEngine()
	e.Every(0, nan(), func(Time) {})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic rescheduling at NaN")
		}
	}()
	e.Run()
}

func TestTickerDoesNotAllocatePerTick(t *testing.T) {
	e := NewEngine()
	ticks := 0
	tk := e.Every(0, 1, func(Time) { ticks++ })
	e.RunUntil(10000)
	tk.Stop()
	if ticks != 10001 {
		t.Fatalf("ticks = %d", ticks)
	}
	// The ticker reuses its single event; the slab must not have grown
	// past its first chunk on the ticker's account.
	if e.seq < 10000 {
		t.Fatalf("seq = %d, ticker not rescheduling", e.seq)
	}
}

func TestResetIndistinguishableFromFresh(t *testing.T) {
	// A reset engine must replay a schedule exactly like a fresh one:
	// same clock, same FIFO tie-breaks, same counters.
	run := func(e *Engine) (order []int, executed uint64, maxPending int) {
		e.At(5, func() { order = append(order, 0) })
		e.Schedule(5, func() { order = append(order, 1) })
		ev := e.At(3, func() { order = append(order, 2) })
		e.Cancel(ev)
		e.ScheduleAfter(5, func() { order = append(order, 3) })
		e.Run()
		return order, e.Executed(), e.MaxPending()
	}
	fresh := NewEngine()
	o1, x1, m1 := run(fresh)

	reused := NewEngine()
	for i := 0; i < 1000; i++ { // dirty the heap, free list and arena
		reused.Schedule(float64(i), func() {})
	}
	reused.Every(0, 7, func(Time) {})
	reused.RunUntil(500)
	reused.Reset()
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Executed() != 0 || reused.MaxPending() != 0 {
		t.Fatalf("reset engine not pristine: now=%v pending=%d executed=%d max=%d",
			reused.Now(), reused.Pending(), reused.Executed(), reused.MaxPending())
	}
	o2, x2, m2 := run(reused)
	if len(o1) != len(o2) {
		t.Fatalf("orders differ: %v vs %v", o1, o2)
	}
	for i := range o1 {
		if o1[i] != o2[i] {
			t.Fatalf("orders differ: %v vs %v", o1, o2)
		}
	}
	if x1 != x2 || m1 != m2 {
		t.Fatalf("counters differ: executed %d vs %d, max pending %d vs %d", x1, x2, m1, m2)
	}
}

func TestResetRetainsStorage(t *testing.T) {
	// The steady state of a run-reset-run loop must not allocate events:
	// the second run re-carves the first run's arena.
	e := NewEngine()
	const n = 3 * 1024
	run := func() {
		for i := 0; i < n; i++ {
			e.Schedule(float64(i), func() {})
		}
		e.Run()
	}
	run()
	e.Reset()
	allocs := testing.AllocsPerRun(1, func() {
		run()
		e.Reset()
	})
	// The heap array and arena are retained; only closure-free scheduling
	// remains, so per-event allocations must be gone entirely.
	if allocs > float64(n)/100 {
		t.Fatalf("reused run made %v allocations for %d events", allocs, n)
	}
}

func BenchmarkScheduleRecycled(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Schedule(e.Now()+1, fn)
		e.Step()
	}
}

func BenchmarkCancelO1(b *testing.B) {
	e := NewEngine()
	// A deep queue: eager removal would pay O(log n) sift per cancel.
	for i := 0; i < 100000; i++ {
		e.At(float64(i+1), func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.At(1e9, func() {})
		e.Cancel(ev)
	}
}
