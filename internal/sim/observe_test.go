package sim

import "testing"

// TestObserveEveryInvisible is the observer-lane contract: a sampling
// ticker rides the event heap but must not move Pending, MaxPending or
// Executed — the counters a probed simulation reports byte-identically to
// an unprobed one.
func TestObserveEveryInvisible(t *testing.T) {
	run := func(observe bool) (ticks int, executed uint64, maxPending int) {
		e := NewEngine()
		for i := 0; i < 5; i++ {
			d := float64(i + 1)
			e.ScheduleAfter(d, func() {})
		}
		var obs *Ticker
		if observe {
			obs = e.ObserveEvery(0, 0.5, func(Time) { ticks++ })
		}
		e.RunUntil(10)
		if obs != nil {
			obs.Stop()
		}
		return ticks, e.Executed(), e.MaxPending()
	}

	_, plainExec, plainMax := run(false)
	ticks, obsExec, obsMax := run(true)
	if ticks < 20 {
		t.Fatalf("observer ticked %d times, want ≥ 20", ticks)
	}
	if obsExec != plainExec {
		t.Errorf("Executed with observer = %d, without = %d (observer leaked into the count)", obsExec, plainExec)
	}
	if obsMax != plainMax {
		t.Errorf("MaxPending with observer = %d, without = %d", obsMax, plainMax)
	}
}

// TestObserveEveryPending asserts the live count never includes the
// observer event, even while it is the only thing scheduled.
func TestObserveEveryPending(t *testing.T) {
	e := NewEngine()
	tick := e.ObserveEvery(0, 1, func(Time) {})
	if e.Pending() != 0 {
		t.Fatalf("Pending = %d with only an observer scheduled, want 0", e.Pending())
	}
	e.RunUntil(5)
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after observer ticks, want 0", e.Pending())
	}
	if e.Executed() != 0 {
		t.Errorf("Executed = %d, observer ticks must not count", e.Executed())
	}
	tick.Stop()
	if e.Pending() != 0 {
		t.Errorf("Pending = %d after Stop, want 0 (cancel decremented for an observer)", e.Pending())
	}
}

// TestObserveEveryOrdering verifies observers see a consistent clock: each
// callback fires at its scheduled sim time interleaved with model events.
func TestObserveEveryOrdering(t *testing.T) {
	e := NewEngine()
	var log []Time
	e.ObserveEvery(0, 2, func(now Time) { log = append(log, now) })
	e.ScheduleAfter(3, func() { log = append(log, -3) })
	e.RunUntil(6)
	want := []Time{0, 2, -3, 4, 6}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log[%d] = %v, want %v (full: %v)", i, log[i], want[i], log)
		}
	}
}
