package sim

import "fmt"

// This file is the engine half of the portable-snapshot contract (see
// internal/snapshot): exporting a schedule as passive descriptors and
// rebuilding it inside a different engine. The in-place snapshot path in
// snapshot.go keeps *Event pointers because it restores into the engine
// that created them; a portable snapshot cannot, so events travel as
// (time, seq, Call) triples and the adopting side re-binds callbacks from
// the Call descriptors against its own model objects.

// PortableEvent is one live scheduled event in portable form: its heap
// ordering key plus the Call descriptor its scheduling site tagged it
// with. No pointers — safe to hand to another goroutine/engine.
type PortableEvent struct {
	At   Time
	Seq  uint64
	Call Call
}

// ExportEvents returns every live (non-cancelled) event in the schedule
// as portable descriptors. It fails if any live event is untagged
// (Call.Kind == CallNone) or is an observer event: neither can be rebuilt
// on an adopting engine, and the caller is expected to fall back to
// non-portable execution. Order follows the heap array and is
// deterministic for a deterministic run; adoption keys only on (At, Seq).
func (e *Engine) ExportEvents() ([]PortableEvent, error) {
	out := make([]PortableEvent, 0, len(e.queue))
	for _, en := range e.queue {
		if en.ev.canceled {
			continue
		}
		if en.ev.observer {
			return nil, fmt.Errorf("sim: observer event at %v is not portable", en.at)
		}
		if en.ev.call.Kind == CallNone {
			return nil, fmt.Errorf("sim: untagged event at %v (seq %d) is not portable", en.at, en.seq)
		}
		out = append(out, PortableEvent{At: en.at, Seq: en.seq, Call: en.ev.call})
	}
	return out, nil
}

// ExportState returns the engine's scalar counters for a portable
// snapshot: clock, FIFO sequence, executed count, and the live/max-live
// accounting (which includes externally-scheduled calendar events, so it
// is captured here rather than derived from the exported heap).
func (e *Engine) ExportState() (now Time, seq, nEvent uint64, live, maxLive int) {
	return e.now, e.seq, e.nEvent, e.live, e.maxLive
}

// AdoptState overwrites the engine's scalar counters wholesale. The
// engine must be freshly Reset; the caller then replays the exported
// events through AdoptEvent. live is set directly (not accumulated by
// AdoptEvent) because it also counts external-calendar events that never
// touch this heap.
func (e *Engine) AdoptState(now Time, seq, nEvent uint64, live, maxLive int) {
	e.now = now
	e.seq = seq
	e.nEvent = nEvent
	e.live = live
	e.maxLive = maxLive
}

// AdoptEvent enters a rebuilt event directly into the heap with its
// original ordering key, bypassing insert's monotonic-clock check (an
// adopted schedule is installed after AdoptState has already advanced the
// clock, and heap pushes maintain the invariant under any insertion
// order). It deliberately does not touch seq or the live counters —
// AdoptState owns those wholesale. Returns the handle so tickers can
// re-attach their pending tick.
func (e *Engine) AdoptEvent(at Time, seq uint64, c Call, fn func(), recycle bool) *Event {
	ev := e.alloc()
	*ev = Event{at: at, fn: fn, call: c, recycle: recycle, inHeap: true}
	e.queue.push(entry{at: at, seq: seq, ev: ev})
	return ev
}
