// Package sim implements the discrete-event simulation kernel on which the
// volunteer-grid and dedicated-grid models run.
//
// The kernel is a classic event-list simulator: a binary heap of timestamped
// events, a virtual clock that jumps from event to event, and helpers for
// periodic processes (used by the weekly VFTP samplers and the availability
// models). Time is a float64 number of seconds since the simulation epoch;
// the HCMD campaign spans ~26 weeks ≈ 1.6e7 s, far below float64 integer
// precision limits.
//
// Two design choices keep the hot path cheap at campaign scale (tens of
// millions of events):
//
//   - Cancellation is lazy: Cancel marks the event and returns in O(1);
//     the tombstone is discarded when it reaches the top of the heap (or by
//     an amortized sweep if tombstones ever dominate the heap). Pending()
//     stays exact through a live-event counter.
//   - Events scheduled through Schedule/ScheduleAfter (no cancellation
//     handle) are recycled through a free list once they fire, so steady-
//     state simulation allocates no per-event memory. At/After still return
//     a handle and therefore allocate; handles are never recycled, so a
//     stale handle can never cancel an unrelated reused event.
//
// # Reset contract
//
// Engine.Reset rearms an engine for another run while retaining the
// backing storage a run is expensive to rebuild: the heap array, the
// free list's backing array, and the event arena's chunks. Everything
// observable is zeroed — clock, schedule, executed/pending counters, the
// FIFO tie-break sequence — so a reset engine is indistinguishable from a
// fresh one to the model running on it. Event handles returned by
// At/After before the Reset are invalidated: their structs are zeroed and
// re-carved, and passing one to Cancel afterwards corrupts an unrelated
// event. Callers must drop every handle before resetting.
package sim

import (
	"fmt"
	"math"

	"repro/internal/slab"
)

// Time is a simulation timestamp in seconds since the simulation epoch.
type Time = float64

// Common durations, in seconds.
const (
	Second = 1.0
	Minute = 60.0
	Hour   = 3600.0
	Day    = 24 * Hour
	Week   = 7 * Day
	Year   = 365.25 * Day
)

// Call describes what a scheduled event's closure does, in portable terms:
// a kind tag plus the small arguments the closure captured. A snapshot that
// must travel between run contexts cannot carry the closures themselves
// (they pin the source context's pointers), so the scheduling sites tag
// their events with a Call and the adopting context rebuilds an equivalent
// closure from the descriptor. Kind 0 (CallNone) marks an untagged event;
// ExportEvents refuses to materialize a schedule containing one.
//
// Field meaning is per-kind and documented at the kind constants; the
// struct is sized so tagging stays a handful of stores on the hot path.
type Call struct {
	Kind   uint8
	K0, K1 uint8
	A0, A1 int32
	F0     float64
}

// Event call kinds. The argument conventions are owned by the packages
// that schedule the events; they are centralized here only so the kind
// space has a single allocator.
const (
	// CallNone marks an event whose scheduling site has not been tagged.
	CallNone uint8 = iota
	// CallHostRequest: a volunteer host's work-request callback. A0 = host index.
	CallHostRequest
	// CallHostTaskDone: a volunteer host's compute-completion callback. A0 = host index.
	CallHostTaskDone
	// CallHostLate: a host's late-return upload. A0 = host index,
	// A1 = assignment arena index, F0 = reported CPU seconds.
	CallHostLate
	// CallWheelDrain: a deadline-wheel drain tick. K0 = deadline class.
	CallWheelDrain
	// CallSpoolDrain: the outage spool drain at a window end.
	CallSpoolDrain
	// CallUploadRetry: a fault-plane upload retry. A0 = host index,
	// A1 = assignment arena index, K0 = outcome, K1 = remaining budget,
	// F0 = reported CPU seconds.
	CallUploadRetry
	// CallTickWeekly, CallTickDaily, CallTickChurn: campaign ticker ticks.
	CallTickWeekly
	CallTickDaily
	CallTickChurn
)

// Event is a scheduled callback. Cancel it via its handle.
type Event struct {
	at       Time
	fn       func()
	call     Call
	inHeap   bool
	canceled bool
	recycle  bool // no handle outstanding; safe to reuse after it pops
	observer bool // excluded from Pending/MaxPending/Executed accounting
}

// Time returns the timestamp the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e.canceled }

// entry is one heap slot. The ordering key (timestamp + FIFO sequence)
// lives inline in the slice, so sift comparisons touch contiguous memory
// instead of dereferencing an *Event per comparison — at campaign scale
// the event heap is tens of thousands deep and those misses dominate.
type entry struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among equal timestamps
	ev  *Event
}

func entryLess(a, b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// The heap is 4-ary: half the levels of a binary heap, and the four
// children of a node share cache lines. Hand-rolled so the comparisons
// inline (container/heap pays an interface call per Less/Swap).
const heapArity = 4

type eventHeap []entry

func (h *eventHeap) push(en entry) {
	q := append(*h, en)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / heapArity
		if !entryLess(q[i], q[p]) {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	*h = q
}

// siftDown moves item from the hole at i toward the leaves of h[:n] until
// the heap property holds, writing it into its final slot.
func siftDown(h []entry, i, n int, item entry) {
	for {
		c := heapArity*i + 1
		if c >= n {
			break
		}
		m := c
		end := c + heapArity
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if entryLess(h[j], h[m]) {
				m = j
			}
		}
		if !entryLess(h[m], item) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = item
}

func (h *eventHeap) pop() entry {
	q := *h
	top := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = entry{}
	q = q[:n]
	if n > 0 {
		siftDown(q, 0, n, last)
	}
	*h = q
	return top
}

// init re-establishes the heap property over arbitrary contents.
func (h eventHeap) init() {
	n := len(h)
	if n < 2 {
		return
	}
	for i := (n - 2) / heapArity; i >= 0; i-- {
		siftDown(h, i, n, h[i])
	}
}

// Engine is a discrete-event simulator. The zero value is not valid;
// use NewEngine.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nEvent uint64 // events executed

	live       int // scheduled, not cancelled: the exact Pending() count
	tombstones int // cancelled events still sitting in the heap
	maxLive    int // high-water mark of live

	free []*Event          // recycled no-handle events
	slab slab.Arena[Event] // bump allocator backing new events
}

// NewEngine returns an engine with the clock at 0 and an empty event list.
func NewEngine() *Engine {
	return &Engine{}
}

// Reset rearms the engine for another run: clock back to 0, schedule
// empty, all counters zeroed. The heap array, free-list array and event
// arena are retained, so a reset engine schedules without allocating.
// See the package-level Reset contract: all outstanding event handles are
// invalidated.
func (e *Engine) Reset() {
	clear(e.queue)
	e.queue = e.queue[:0]
	clear(e.free)
	e.free = e.free[:0]
	e.slab.Reset()
	e.now = 0
	e.seq, e.nEvent = 0, 0
	e.live, e.tombstones, e.maxLive = 0, 0, 0
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nEvent }

// Pending returns the exact number of live scheduled events. Cancelled
// events are never counted: Cancel decrements the live counter the moment
// it is called, even though the tombstone leaves the heap lazily.
func (e *Engine) Pending() int { return e.live }

// MaxPending returns the high-water mark of Pending() over the engine's
// lifetime — the peak event-queue depth, reported by the campaign bench.
func (e *Engine) MaxPending() int { return e.maxLive }

// alloc returns an event struct: recycled if one is free, freshly carved
// from the bump slab otherwise. Slab allocation batches the garbage
// collector's work; recycled events make the steady state allocation-free.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return e.slab.Alloc()
}

// release returns a popped event to the free list if it is recyclable.
// Events created by At/After have a caller-held handle and are never
// reused; recyclable events by construction have no handle outstanding.
func (e *Engine) release(ev *Event) {
	if !ev.recycle {
		return
	}
	ev.fn = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// insert validates t and enters ev into the schedule, maintaining the
// FIFO sequence and the live counters. Shared by every scheduling path so
// the invariants live in one place.
func (e *Engine) insert(ev *Event, t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic("sim: scheduling event at non-finite time")
	}
	ev.at = t
	ev.inHeap = true
	e.queue.push(entry{at: t, seq: e.seq, ev: ev})
	e.seq++
	if ev.observer {
		// Observer events (metrics samplers) ride the schedule but must be
		// invisible to every model-observable counter, so an instrumented
		// run reports the same Pending/MaxPending/Executed as a bare one.
		return
	}
	e.live++
	if e.live > e.maxLive {
		e.maxLive = e.live
	}
}

// push schedules fn on a fresh (or recycled) event.
func (e *Engine) push(t Time, fn func(), recycle bool) *Event {
	ev := e.alloc()
	*ev = Event{fn: fn, recycle: recycle}
	e.insert(ev, t)
	return ev
}

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a model that does so is broken, and silently clamping would corrupt
// causality. Returns a handle for cancellation.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.push(t, fn, false)
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Schedule schedules fn at absolute time t with no cancellation handle.
// The event struct is recycled after it fires, so hot loops that never
// cancel (host compute completions, the deadline wheel) schedule without
// allocating.
func (e *Engine) Schedule(t Time, fn func()) {
	e.push(t, fn, true)
}

// ScheduleAfter schedules fn to run d seconds from now, with no handle.
func (e *Engine) ScheduleAfter(d float64, fn func()) {
	e.Schedule(e.now+d, fn)
}

// ScheduleCall is Schedule plus a portable Call descriptor, so the event
// survives snapshot materialization (see ExportEvents). Costs the same as
// Schedule apart from a few extra stores.
func (e *Engine) ScheduleCall(t Time, fn func(), c Call) {
	ev := e.alloc()
	*ev = Event{fn: fn, recycle: true, call: c}
	e.insert(ev, t)
}

// ScheduleAfterCall is ScheduleAfter plus a portable Call descriptor.
func (e *Engine) ScheduleAfterCall(d float64, fn func(), c Call) {
	e.ScheduleCall(e.now+d, fn, c)
}

// reschedule re-arms a popped handle event at a new time, reusing its
// struct. Only the Ticker uses it: the caller must own the handle and the
// event must not be in the heap. fn is re-attached because Step detaches
// callbacks from popped events (so fired closures don't outlive them).
func (e *Engine) reschedule(ev *Event, t Time, fn func()) {
	ev.fn = fn
	ev.canceled = false
	e.insert(ev, t)
}

// Cancel removes the event from the schedule in O(1): the event is marked
// and skipped when it surfaces, rather than removed from the middle of the
// heap. Cancelling an already-fired or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
	// A cancelled event's callback never runs: free it now rather than
	// when the tombstone surfaces, so the closure's captures don't stay
	// reachable until the event's (possibly far-future) timestamp.
	ev.fn = nil
	if ev.inHeap {
		if !ev.observer {
			e.live--
		}
		e.tombstones++
		e.maybeSweep()
	}
}

// maybeSweep compacts the heap when tombstones dominate it, bounding the
// memory a cancel-heavy workload can pin. Amortized O(1) per cancel.
func (e *Engine) maybeSweep() {
	if e.tombstones < 1024 || e.tombstones*2 < len(e.queue) {
		return
	}
	kept := e.queue[:0]
	for _, en := range e.queue {
		if en.ev.canceled {
			en.ev.inHeap = false
			en.ev.fn = nil
			e.release(en.ev)
			continue
		}
		kept = append(kept, en)
	}
	for i := len(kept); i < len(e.queue); i++ {
		e.queue[i] = entry{}
	}
	e.queue = kept
	e.queue.init()
	e.tombstones = 0
}

// discardTombstone retires a popped cancelled event.
func (e *Engine) discardTombstone(ev *Event) {
	ev.inHeap = false
	ev.fn = nil
	e.tombstones--
	e.release(ev)
}

// Peek returns the (time, seq) ordering key of the next live event without
// executing it, discarding any tombstones that surface on the way. ok is
// false when no live events remain. The sharded host kernel merges its own
// event calendars with the engine's schedule through this key: the global
// execution order is exactly "ascending (time, seq)" whichever side an
// event lives on.
func (e *Engine) Peek() (t Time, seq uint64, ok bool) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.ev.canceled {
			e.queue.pop()
			e.discardTombstone(next.ev)
			continue
		}
		return next.at, next.seq, true
	}
	return 0, 0, false
}

// TakeSeq hands out the next FIFO tie-break sequence number, exactly as
// scheduling an event here would. An external event calendar (the sharded
// host plane) draws its sequence numbers from the engine's counter at the
// same moments the legacy code would have scheduled on the engine, so ties
// between external and engine events resolve in the identical order.
func (e *Engine) TakeSeq() uint64 {
	s := e.seq
	e.seq++
	return s
}

// ExternalSchedule accounts one externally-stored event as scheduled:
// Pending/MaxPending move exactly as an engine-side Schedule would move
// them. The event itself lives in the caller's calendar, not the heap.
func (e *Engine) ExternalSchedule() {
	e.live++
	if e.live > e.maxLive {
		e.maxLive = e.live
	}
}

// ExternalExecute advances the clock to t and accounts one externally-
// stored event as executed, mirroring what Step does for heap events
// (live--, executed++, clock forward) so kernel counters stay identical
// whichever calendar ran the event. t must not precede the clock.
func (e *Engine) ExternalExecute(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: external event at %v before now %v", t, e.now))
	}
	e.live--
	e.nEvent++
	e.now = t
}

// AdvanceTo moves the clock forward to t if it is ahead, exactly as
// RunUntil does after draining events up to a deadline.
func (e *Engine) AdvanceTo(t Time) {
	if t > e.now {
		e.now = t
	}
}

// Step executes the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		en := e.queue.pop()
		ev := en.ev
		if ev.canceled {
			e.discardTombstone(ev)
			continue
		}
		ev.inHeap = false
		// Detach the callback: a popped event may sit in a slab chunk
		// pinned by a long-lived neighbour's handle, and its closure must
		// not stay reachable for the rest of the run.
		fn := ev.fn
		ev.fn = nil
		if !ev.observer {
			e.live--
			e.nEvent++
		}
		e.now = en.at
		e.release(ev)
		fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it is ahead of the last event).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.ev.canceled {
			e.queue.pop()
			e.discardTombstone(next.ev)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// RunBefore executes events with timestamps strictly before deadline and
// leaves the clock at the last executed event — it does not advance to
// the deadline and does not run events at it. The snapshot/fork path uses
// it to stop a shared prefix exactly at a divergence time T: events AT T
// (the weekly tick that applies a phase change, say) belong to the
// suffix, where they run under the forked cell's config.
func (e *Engine) RunBefore(deadline Time) {
	for len(e.queue) > 0 {
		next := e.queue[0]
		if next.ev.canceled {
			e.queue.pop()
			e.discardTombstone(next.ev)
			continue
		}
		if next.at >= deadline {
			break
		}
		e.Step()
	}
}

// Ticker invokes fn(now) every interval seconds starting at start, until
// Stop is called or the engine runs out of events. fn runs before the next
// tick is scheduled, so it may stop the ticker from within.
type Ticker struct {
	engine   *Engine
	interval float64
	fn       func(Time)
	tickFn   func() // bound once; re-attached on every reschedule
	ev       *Event
	stopped  bool
}

// Every creates and starts a ticker. interval must be positive.
func (e *Engine) Every(start Time, interval float64, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tickFn = t.tick
	t.ev = e.At(start, t.tickFn)
	return t
}

// ObserveEvery creates and starts an observer ticker: like Every, except
// its events are excluded from the Pending/MaxPending/Executed accounting,
// so attaching one (a metrics sampler, say) leaves every model-observable
// kernel counter — and therefore the run's Report — byte-identical. The
// contract is that fn is read-only with respect to the model: it may poll
// state but must not schedule, cancel, or mutate anything the simulation
// reads.
//
// An observer ticker reschedules itself forever, so it keeps a bare Run()
// loop alive; drive engines carrying observers with RunUntil and Stop the
// ticker when the run's horizon is reached.
func (e *Engine) ObserveEvery(start Time, interval float64, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tickFn = t.tick
	ev := e.alloc()
	*ev = Event{fn: t.tickFn, observer: true}
	e.insert(ev, start)
	t.ev = ev
	return t
}

// Tag attaches a portable Call descriptor to the ticker's pending event.
// A ticker reuses one event struct for its whole life and reschedule
// preserves every field except the callback, so tagging once at creation
// keeps the tick exportable forever.
func (t *Ticker) Tag(c Call) { t.ev.call = c }

// DormantTicker builds a ticker that is bound to the engine but has no
// pending event: AttachEvent arms it with an adopted heap entry. Snapshot
// adoption uses the pair to revive a mid-run periodic process without
// scheduling a fresh first tick (which would double-fire it).
func (e *Engine) DormantTicker(interval float64, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.tickFn = t.tick
	return t
}

// TickFn returns the ticker's bound per-tick callback, the func() an
// adopted heap event must invoke so the ticker reschedules itself exactly
// as a natively started one would.
func (t *Ticker) TickFn() func() { return t.tickFn }

// AttachEvent hands the ticker ownership of an adopted event handle.
func (t *Ticker) AttachEvent(ev *Event) { t.ev = ev }

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn(t.engine.Now())
	if t.stopped {
		return
	}
	// Reuse the popped event struct: the ticker owns the handle, so
	// re-arming it is safe and the ticker never allocates per tick.
	t.engine.reschedule(t.ev, t.engine.Now()+t.interval, t.tickFn)
}

// Stop halts the ticker. Safe to call multiple times and from within fn.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.ev)
}

// Calendar converts simulation time into calendar-like coordinates used by
// the availability models: day of week, hour of day, and week index.
// The simulation epoch is taken to be a Monday at midnight.
type Calendar struct{}

// HourOfDay returns the hour in [0, 24).
func (Calendar) HourOfDay(t Time) float64 {
	d := math.Mod(t, Day)
	if d < 0 {
		d += Day
	}
	return d / Hour
}

// DayOfWeek returns the day in [0, 7), 0 = Monday.
func (Calendar) DayOfWeek(t Time) int {
	w := math.Mod(t, Week)
	if w < 0 {
		w += Week
	}
	return int(w / Day)
}

// IsWeekend reports whether t falls on Saturday or Sunday.
func (c Calendar) IsWeekend(t Time) bool {
	d := c.DayOfWeek(t)
	return d >= 5
}

// WeekIndex returns the zero-based week number of t.
func (Calendar) WeekIndex(t Time) int {
	if t < 0 {
		return int(math.Floor(t / Week))
	}
	return int(t / Week)
}

// DayIndex returns the zero-based day number of t.
func (Calendar) DayIndex(t Time) int {
	if t < 0 {
		return int(math.Floor(t / Day))
	}
	return int(t / Day)
}
