// Package sim implements the discrete-event simulation kernel on which the
// volunteer-grid and dedicated-grid models run.
//
// The kernel is a classic event-list simulator: a binary heap of timestamped
// events, a virtual clock that jumps from event to event, and helpers for
// periodic processes (used by the weekly VFTP samplers and the availability
// models). Time is a float64 number of seconds since the simulation epoch;
// the HCMD campaign spans ~26 weeks ≈ 1.6e7 s, far below float64 integer
// precision limits.
package sim

import (
	"container/heap"
	"fmt"
	"math"
)

// Time is a simulation timestamp in seconds since the simulation epoch.
type Time = float64

// Common durations, in seconds.
const (
	Second = 1.0
	Minute = 60.0
	Hour   = 3600.0
	Day    = 24 * Hour
	Week   = 7 * Day
	Year   = 365.25 * Day
)

// Event is a scheduled callback. Cancel it via its handle.
type Event struct {
	at       Time
	seq      uint64 // tie-breaker: FIFO among equal timestamps
	fn       func()
	index    int // heap index, -1 once popped or cancelled
	canceled bool
}

// Time returns the timestamp the event is scheduled for.
func (e *Event) Time() Time { return e.at }

// Canceled reports whether the event has been cancelled.
func (e *Event) Canceled() bool { return e.canceled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not valid;
// use NewEngine.
type Engine struct {
	now    Time
	queue  eventHeap
	seq    uint64
	nEvent uint64 // events executed
}

// NewEngine returns an engine with the clock at 0 and an empty event list.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Executed returns the number of events executed so far.
func (e *Engine) Executed() uint64 { return e.nEvent }

// Pending returns the exact number of live scheduled events. Cancel removes
// an event from the heap the moment it is cancelled, so cancelled events are
// never counted.
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past panics:
// a model that does so is broken, and silently clamping would corrupt
// causality. Returns a handle for cancellation.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		panic("sim: scheduling event at non-finite time")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d seconds from now.
func (e *Engine) After(d float64, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes the event from the schedule. Cancelling an already-fired
// or already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
}

// Step executes the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.nEvent++
		ev.fn()
		return true
	}
	return false
}

// Run executes events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= deadline, then advances the
// clock to the deadline (if it is ahead of the last event).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.canceled {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Ticker invokes fn(now) every interval seconds starting at start, until
// Stop is called or the engine runs out of events. fn runs before the next
// tick is scheduled, so it may stop the ticker from within.
type Ticker struct {
	engine   *Engine
	interval float64
	fn       func(Time)
	ev       *Event
	stopped  bool
}

// Every creates and starts a ticker. interval must be positive.
func (e *Engine) Every(start Time, interval float64, fn func(Time)) *Ticker {
	if interval <= 0 {
		panic("sim: ticker interval must be positive")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	t.ev = e.At(start, t.tick)
	return t
}

func (t *Ticker) tick() {
	if t.stopped {
		return
	}
	t.fn(t.engine.Now())
	if t.stopped {
		return
	}
	t.ev = t.engine.After(t.interval, t.tick)
}

// Stop halts the ticker. Safe to call multiple times and from within fn.
func (t *Ticker) Stop() {
	if t.stopped {
		return
	}
	t.stopped = true
	t.engine.Cancel(t.ev)
}

// Calendar converts simulation time into calendar-like coordinates used by
// the availability models: day of week, hour of day, and week index.
// The simulation epoch is taken to be a Monday at midnight.
type Calendar struct{}

// HourOfDay returns the hour in [0, 24).
func (Calendar) HourOfDay(t Time) float64 {
	d := math.Mod(t, Day)
	if d < 0 {
		d += Day
	}
	return d / Hour
}

// DayOfWeek returns the day in [0, 7), 0 = Monday.
func (Calendar) DayOfWeek(t Time) int {
	w := math.Mod(t, Week)
	if w < 0 {
		w += Week
	}
	return int(w / Day)
}

// IsWeekend reports whether t falls on Saturday or Sunday.
func (c Calendar) IsWeekend(t Time) bool {
	d := c.DayOfWeek(t)
	return d >= 5
}

// WeekIndex returns the zero-based week number of t.
func (Calendar) WeekIndex(t Time) int {
	if t < 0 {
		return int(math.Floor(t / Week))
	}
	return int(t / Week)
}

// DayIndex returns the zero-based day number of t.
func (Calendar) DayIndex(t Time) int {
	if t < 0 {
		return int(math.Floor(t / Day))
	}
	return int(t / Day)
}
