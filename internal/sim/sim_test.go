package sim

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestOrderingProperty(t *testing.T) {
	r := rng.New(99)
	f := func(n uint8) bool {
		e := NewEngine()
		count := int(n%100) + 1
		times := make([]float64, count)
		var fired []float64
		for i := 0; i < count; i++ {
			times[i] = r.Float64() * 1000
			ti := times[i]
			e.At(ti, func() { fired = append(fired, ti) })
		}
		e.Run()
		if len(fired) != count {
			return false
		}
		return sort.Float64sAreSorted(fired)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleDuringRun(t *testing.T) {
	e := NewEngine()
	var fired []float64
	e.At(10, func() {
		e.After(5, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 1 || fired[0] != 15 {
		t.Fatalf("nested schedule wrong: %v", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling at NaN")
		}
	}()
	e.At(nan(), func() {})
}

func nan() float64 {
	z := 0.0
	return z / z
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("event not marked cancelled")
	}
	// Double cancel and nil cancel are no-ops.
	e.Cancel(ev)
	e.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	e := NewEngine()
	var order []int
	evs := make([]*Event, 5)
	for i := 0; i < 5; i++ {
		i := i
		evs[i] = e.At(float64(i), func() { order = append(order, i) })
	}
	e.Cancel(evs[2])
	e.Run()
	want := []int{0, 1, 3, 4}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []float64
	for _, ts := range []float64{5, 15, 25} {
		ts := ts
		e.At(ts, func() { fired = append(fired, ts) })
	}
	e.RunUntil(20)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want 2 events", fired)
	}
	if e.Now() != 20 {
		t.Fatalf("clock = %v, want 20", e.Now())
	}
	e.RunUntil(30)
	if len(fired) != 3 || e.Now() != 30 {
		t.Fatalf("after second RunUntil: fired=%v now=%v", fired, e.Now())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("clock = %v", e.Now())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []float64
	tk := e.Every(0, 10, func(now Time) {
		ticks = append(ticks, now)
		if now >= 50 {
			// stop from within the callback
		}
	})
	e.RunUntil(45)
	tk.Stop()
	e.RunUntil(100)
	if len(ticks) != 5 { // 0,10,20,30,40
		t.Fatalf("ticks = %v", ticks)
	}
}

func TestTickerStopWithin(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Every(0, 1, func(now Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("count = %d", count)
	}
	tk.Stop() // double-stop is safe
}

func TestTickerBadInterval(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive interval")
		}
	}()
	e.Every(0, 0, func(Time) {})
}

func TestExecutedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(float64(i), func() {})
	}
	e.Run()
	if e.Executed() != 7 {
		t.Fatalf("executed = %d", e.Executed())
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d", e.Pending())
	}
}

func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine()
	evs := make([]*Event, 5)
	for i := range evs {
		evs[i] = e.At(float64(i+1), func() {})
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	e.Cancel(evs[1])
	e.Cancel(evs[3])
	if e.Pending() != 3 {
		t.Fatalf("pending after cancel = %d, want 3", e.Pending())
	}
	e.Cancel(evs[1]) // double-cancel must not double-count
	if e.Pending() != 3 {
		t.Fatalf("pending after double-cancel = %d, want 3", e.Pending())
	}
	e.Step()
	if e.Pending() != 2 {
		t.Fatalf("pending after step = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Pending() != 0 {
		t.Fatalf("pending after run = %d, want 0", e.Pending())
	}
	// Cancelling an already-executed event is a no-op for the count.
	e.Cancel(evs[0])
	if e.Pending() != 0 {
		t.Fatalf("pending after post-run cancel = %d, want 0", e.Pending())
	}
}

func TestCalendar(t *testing.T) {
	var c Calendar
	if c.DayOfWeek(0) != 0 {
		t.Fatal("epoch should be Monday")
	}
	if c.DayOfWeek(5*Day) != 5 || !c.IsWeekend(5*Day) {
		t.Fatal("day 5 should be Saturday")
	}
	if c.IsWeekend(2 * Day) {
		t.Fatal("Wednesday is not a weekend")
	}
	if h := c.HourOfDay(Day + 6*Hour); h != 6 {
		t.Fatalf("hour = %v", h)
	}
	if c.WeekIndex(8*Day) != 1 {
		t.Fatalf("week index = %d", c.WeekIndex(8*Day))
	}
	if c.DayIndex(36*Hour) != 1 {
		t.Fatalf("day index = %d", c.DayIndex(36*Hour))
	}
}

func TestCalendarNegativeTime(t *testing.T) {
	var c Calendar
	if h := c.HourOfDay(-1 * Hour); h != 23 {
		t.Fatalf("hour of -1h = %v, want 23", h)
	}
	if c.WeekIndex(-1) != -1 {
		t.Fatalf("week index of -1s = %d", c.WeekIndex(-1))
	}
}

func TestManyEventsStress(t *testing.T) {
	e := NewEngine()
	r := rng.New(5)
	const n = 100000
	count := 0
	for i := 0; i < n; i++ {
		e.At(r.Float64()*1e6, func() { count++ })
	}
	e.Run()
	if count != n {
		t.Fatalf("count = %d, want %d", count, n)
	}
}

func BenchmarkScheduleAndRun(b *testing.B) {
	r := rng.New(1)
	times := make([]float64, 10000)
	for i := range times {
		times[i] = r.Float64() * 1e6
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for _, ts := range times {
			e.At(ts, func() {})
		}
		e.Run()
	}
}
