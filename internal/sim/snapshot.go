package sim

import (
	"repro/internal/slab"
	"repro/internal/snapshot"
)

// EngineSnapshot captures an Engine at an event boundary so it can be
// restored byte-exactly after a what-if suffix has run on it. The heap
// and free list follow the snapshot package's slice rule; the event arena
// is chunk-copied and rewound (see slab.ArenaSnapshot). Because every
// Event struct is carved from the arena, the content restore revives all
// pre-snapshot events — their timestamps, flags and closure pointers —
// while events the suffix scheduled beyond the mark are zeroed away.
//
// The buffers are reused across captures; see the snapshot package doc
// for the full copy/aliasing contract.
type EngineSnapshot struct {
	queue snapshot.Slice[entry]
	free  snapshot.Slice[*Event]
	arena slab.ArenaSnapshot[Event]

	now         Time
	seq, nEvent uint64
	live        int
	tombstones  int
	maxLive     int
}

// Capture records e's complete mutable state.
func (s *EngineSnapshot) Capture(e *Engine) {
	s.queue.Capture(e.queue)
	s.free.Capture(e.free)
	s.arena.Capture(&e.slab)
	s.now = e.now
	s.seq, s.nEvent = e.seq, e.nEvent
	s.live, s.tombstones, s.maxLive = e.live, e.tombstones, e.maxLive
}

// Restore rewinds e to the captured state. e must be the engine the
// snapshot was captured from, not Reset since.
func (s *EngineSnapshot) Restore(e *Engine) {
	e.queue = s.queue.Restore()
	e.free = s.free.Restore()
	s.arena.Restore(&e.slab)
	e.now = s.now
	e.seq, e.nEvent = s.seq, s.nEvent
	e.live, e.tombstones, e.maxLive = s.live, s.tombstones, s.maxLive
}

// TickerState is the mutable part of a Ticker: everything else (engine,
// interval, callbacks, the event handle) is fixed at creation, and the
// event struct itself lives in the engine arena, restored by
// EngineSnapshot. Save the state at snapshot time and put it back before
// re-running a suffix so a ticker the suffix Stopped ticks again.
type TickerState struct {
	stopped bool
}

// State returns the ticker's mutable state.
func (t *Ticker) State() TickerState { return TickerState{stopped: t.stopped} }

// RestoreState puts a saved state back.
func (t *Ticker) RestoreState(s TickerState) { t.stopped = s.stopped }
