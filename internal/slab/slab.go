// Package slab provides chunked bump allocation for simulation objects
// that are created by the million: instead of one heap allocation per
// object, objects are carved from fixed-size chunks.
//
// The Arena is built for run reuse: Reset rewinds the allocation cursor
// and zeroes the used objects, so the next run carves the same chunks
// again without touching the heap. A pooled run context (one arena per
// object kind per worker) therefore pays the chunk allocations once, on
// its first run, and nearly nothing afterwards. The price is that an
// arena pins every chunk it has ever grown until the arena itself becomes
// unreachable — acceptable for per-worker pools whose runs are all the
// same scale, which is exactly the sweep workload.
package slab

// Chunk is the number of objects carved from one allocation.
const Chunk = 512

// Carve returns the next zeroed object from the slab, starting a fresh
// chunk when the current one is exhausted. Unlike the Arena, a carved-past
// chunk is collected as soon as every object in it is unreachable, so a
// one-shot run's memory is reclaimed progressively — the right allocator
// when the run context is not going to be reused.
func Carve[T any](slab *[]T) *T {
	if len(*slab) == 0 {
		*slab = make([]T, Chunk)
	}
	v := &(*slab)[0]
	*slab = (*slab)[1:]
	return v
}

// Arena is a chunked bump allocator whose memory survives Reset.
// The zero value is ready to use.
type Arena[T any] struct {
	chunks [][]T
	ci     int // chunk currently being carved
	off    int // next free slot in chunks[ci]
}

// Alloc returns the next zeroed object, growing the arena by one chunk
// when the current one is exhausted.
func (a *Arena[T]) Alloc() *T {
	if a.ci == len(a.chunks) {
		a.chunks = append(a.chunks, make([]T, Chunk))
	}
	v := &a.chunks[a.ci][a.off]
	a.off++
	if a.off == Chunk {
		a.ci++
		a.off = 0
	}
	return v
}

// Allocated returns the number of objects carved since the last Reset.
func (a *Arena[T]) Allocated() int {
	return a.ci*Chunk + a.off
}

// At returns the i-th object carved since the last Reset, in allocation
// order. Allocation order is deterministic for a deterministic run, so an
// index is a portable name for an arena object: snapshot materialization
// translates intra-run pointers to indices and the adopting run context —
// which allocates the same objects in the same order — resolves them back
// through At.
func (a *Arena[T]) At(i int) *T {
	return &a.chunks[i/Chunk][i%Chunk]
}

// Reset rewinds the arena for reuse: every previously carved object is
// zeroed and its slot will be handed out again. All pointers obtained from
// Alloc before the Reset must be dead — using one afterwards reads (and
// corrupts) whatever object is carved into that slot next.
func (a *Arena[T]) Reset() {
	for i := 0; i < a.ci; i++ {
		clear(a.chunks[i])
	}
	if a.ci < len(a.chunks) {
		clear(a.chunks[a.ci][:a.off])
	}
	a.ci, a.off = 0, 0
}
