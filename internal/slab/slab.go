// Package slab provides chunked bump allocation for simulation objects
// that are created by the million: instead of one heap allocation per
// object, objects are carved from fixed-size chunks. A chunk is collected
// as soon as every object in it is unreachable, so memory is still
// reclaimed progressively over a run.
package slab

// Chunk is the number of objects carved from one allocation.
const Chunk = 512

// Carve returns the next zeroed object from the slab, starting a fresh
// chunk when the current one is exhausted.
func Carve[T any](slab *[]T) *T {
	if len(*slab) == 0 {
		*slab = make([]T, Chunk)
	}
	v := &(*slab)[0]
	*slab = (*slab)[1:]
	return v
}
