package slab

import "testing"

func TestArenaAllocZeroed(t *testing.T) {
	var a Arena[int]
	for i := 0; i < 3*Chunk; i++ {
		p := a.Alloc()
		if *p != 0 {
			t.Fatalf("alloc %d not zeroed: %d", i, *p)
		}
		*p = i + 1
	}
	if got := a.Allocated(); got != 3*Chunk {
		t.Fatalf("Allocated = %d, want %d", got, 3*Chunk)
	}
}

func TestArenaDistinctPointers(t *testing.T) {
	var a Arena[int]
	seen := make(map[*int]bool)
	for i := 0; i < 2*Chunk+7; i++ {
		p := a.Alloc()
		if seen[p] {
			t.Fatalf("alloc %d returned a live slot twice", i)
		}
		seen[p] = true
	}
}

func TestArenaResetReusesAndZeroes(t *testing.T) {
	var a Arena[int]
	first := make([]*int, 2*Chunk+5)
	for i := range first {
		first[i] = a.Alloc()
		*first[i] = 42
	}
	a.Reset()
	if got := a.Allocated(); got != 0 {
		t.Fatalf("Allocated after Reset = %d", got)
	}
	nChunks := len(a.chunks)
	for i := range first {
		p := a.Alloc()
		if p != first[i] {
			t.Fatalf("alloc %d after Reset did not reuse the original slot", i)
		}
		if *p != 0 {
			t.Fatalf("alloc %d after Reset not zeroed: %d", i, *p)
		}
	}
	if len(a.chunks) != nChunks {
		t.Fatalf("arena grew on reuse: %d chunks, had %d", len(a.chunks), nChunks)
	}
}

func BenchmarkArenaSteadyState(b *testing.B) {
	var a Arena[[4]uint64]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := 0; j < Chunk; j++ {
			a.Alloc()
		}
		a.Reset()
	}
}
