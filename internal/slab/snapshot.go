package slab

import "fmt"

// ArenaSnapshot captures an Arena at its current allocation mark: the
// cursor plus a chunk-wise copy of every object carved so far. Restore
// copies the saved contents back into the same chunks (pointer identity
// of every pre-snapshot object is preserved — chunks are never freed),
// zeroes whatever the run allocated beyond the mark since the capture
// (Alloc relies on slots being pre-zeroed), and rewinds the cursor.
//
// The private chunk copies are reused across captures, so repeated
// snapshot/restore cycles allocate only when the arena's high-water mark
// grows. Restoring requires that the arena has not been Reset since the
// capture: the cursor must be at or past the saved mark.
type ArenaSnapshot[T any] struct {
	ci, off int
	data    [][]T // data[i] mirrors chunks[i]; data[ci] valid up to off
}

// Capture records a's cursor and copies its carved contents.
func (s *ArenaSnapshot[T]) Capture(a *Arena[T]) {
	s.ci, s.off = a.ci, a.off
	need := a.ci
	if a.off > 0 {
		need++
	}
	for len(s.data) < need {
		s.data = append(s.data, make([]T, Chunk))
	}
	for i := 0; i < a.ci; i++ {
		copy(s.data[i], a.chunks[i])
	}
	if a.off > 0 {
		copy(s.data[a.ci][:a.off], a.chunks[a.ci][:a.off])
	}
}

// Restore rewinds a to the captured mark: contents up to the mark are
// copied back, the dirty region between the mark and the current cursor
// is zeroed, and the cursor is reset. Panics if the arena was Reset (or
// otherwise rewound) since the capture.
func (s *ArenaSnapshot[T]) Restore(a *Arena[T]) {
	if a.ci < s.ci || (a.ci == s.ci && a.off < s.off) {
		panic(fmt.Sprintf("slab: restore mark (%d,%d) ahead of arena cursor (%d,%d)",
			s.ci, s.off, a.ci, a.off))
	}
	// Zero what was allocated since the capture so those slots hand out
	// zeroed objects again.
	for i := s.ci; i <= a.ci && i < len(a.chunks); i++ {
		lo, hi := 0, Chunk
		if i == s.ci {
			lo = s.off
		}
		if i == a.ci {
			hi = a.off
		}
		if lo < hi {
			clear(a.chunks[i][lo:hi])
		}
	}
	for i := 0; i < s.ci; i++ {
		copy(a.chunks[i], s.data[i])
	}
	if s.off > 0 {
		copy(a.chunks[s.ci][:s.off], s.data[s.ci][:s.off])
	}
	a.ci, a.off = s.ci, s.off
}
