// Package snapshot provides the building blocks for in-memory snapshots
// of a full run context: capture the mutable state of every subsystem at
// an event boundary, run a what-if suffix to completion, then restore the
// state byte-exactly and run the next suffix. A prefix shared by many
// sweep cells is paid for once.
//
// # Model
//
// Snapshots come in two strengths.
//
// An *in-place* snapshot (Capture/Restore, the Slice type below) is a
// restore point, not an independent copy. The live run context is full of
// closures (scheduled events, policy method values, completion hooks)
// that capture pointers to the live server, hosts and tenant; the
// in-place path sidesteps them entirely by copying mutable state *out*
// into passive buffers and back *in* to the same objects before each
// fork. Suffixes forked from one context therefore run sequentially on
// that context; what is guaranteed is that after a restore the context is
// byte-indistinguishable from the moment of capture.
//
// A *portable* snapshot (Materialize / project.Runner.AdoptSnapshot)
// upgrades those same passive buffers into a self-contained value that a
// different pooled run context can adopt, so the suffixes of one prefix
// can race on every core. The contract splits the state three ways:
//
//   - Copies: mutable POD state — SoA columns, queues, tables, counters,
//     rng sources, histogram bins — is deep-copied into buffers the
//     portable snapshot owns. Nothing aliases the source context, so the
//     source keeps running (on to the next divergence group) while any
//     number of adopters read the snapshot concurrently.
//   - Translates: intra-run pointers (*WUState, *Assignment, hosts) are
//     rewritten as arena/slice indices at capture and resolved against
//     the adopter's own arenas — which, having replayed the same
//     deterministic allocation sequence, carve the same objects in the
//     same order (slab.Arena.At).
//   - Re-binds: everything with a closure environment is never copied at
//     all. The adopter first rebuilds immutable structure with the same
//     Reset/prepare/bind machinery a fresh run uses (policy method
//     values, completion hooks, batch plans, fault windows), then revives
//     the schedule from portable descriptors: every scheduled event
//     carries a sim.Call tag naming its kind and small arguments, and
//     the adopting subsystems rebuild equivalent closures bound to their
//     own objects (sim.Engine.AdoptEvent, dormant tickers). An untagged
//     event makes ExportEvents fail and the caller falls back to the
//     sequential in-place path — portability is verified, not assumed.
//
// After adoption the target context is observably byte-identical to the
// source at the capture point: same clock, same (time, seq) event order,
// same rng streams, same counters. A forked suffix run on an adopter
// produces the same report bytes as one run on the source.
//
// # The slice rule
//
// Almost all mutable state in this codebase lives in Go slices owned by
// long-lived structs. For each one the snapshot saves the slice header
// (pointer, len, cap) plus a private copy of the contents up to len.
// Restore copies the saved contents back into the *original* backing
// array over [0, len) and reassigns the saved header. Consequences:
//
//   - If the suffix appended past the captured capacity, the owner holds
//     a new backing array; restore abandons it and revives the original.
//   - Elements beyond the captured len in the original backing array may
//     hold stale suffix-era data. That is unobservable: every consumer
//     reads only [0, len), and appends overwrite before any read. (For
//     pointer elements the stale entries can keep dead objects reachable
//     until overwritten — a bounded, accepted cost.)
//   - Two captured slices that alias the same backing array are restored
//     consistently: both copies were taken at the same instant, so the
//     double-write lands identical bytes.
//
// # Per-subsystem copy/aliasing contract
//
// Each runtime package owns its snapshot type (the state is private);
// this package only supplies the generic slice helper. The contract per
// captured subsystem:
//
//   - sim.Engine (sim.EngineSnapshot): the event heap and free list
//     follow the slice rule; the event arena is copied chunk-wise up to
//     its allocation mark and restored by copying the chunks back,
//     zeroing the dirty region the suffix allocated beyond the mark, and
//     rewinding the cursor (slab.ArenaSnapshot). Because *every* Event
//     struct is carved from this arena, the content restore revives all
//     pre-snapshot events — ticker events included — byte-exactly,
//     closure pointers and all. Closure environments allocated before the
//     snapshot stay GC-live via the saved event copies; events the suffix
//     scheduled land beyond the mark and are wiped by the zeroing.
//     Tickers themselves are stable heap objects; only their stopped flag
//     is saved (sim.TickerState).
//   - wcg.Server (wcg.ServerSnapshot): config copied by value; work
//     queue, per-rank batch buckets, deadline wheels, anonymous-host
//     streak table and upload spool follow the slice rule; the workunit
//     and assignment arenas are chunk-copied like the engine's, which
//     preserves the identity of every *WorkUnit / *Assignment pointer
//     held by queues, hosts or in-flight events. The outage-window
//     schedule is immutable during a run and shared, not copied. Snapshot
//     requires the retained-arena (pooled Reset) mode: the one-shot
//     slab.Carve mode hands chunks back to the GC and cannot be rewound.
//   - volunteer.Population / Host (volunteer.PopulationSnapshot): the
//     host slice follows the slice rule; each active host's struct —
//     including its rng state and mux port, both plain values — is
//     copied whole, plus its result-cache contents. Pooled (departed)
//     hosts are only captured as headers: Spawn fully re-initializes a
//     host, so their contents need no restore. The spawn-seed stream is
//     a value-copied rng.Source.
//   - volunteer.ShardKernel (volunteer.KernelSnapshot): every SoA column
//     follows the slice rule, as do the per-shard per-window calendar
//     buckets, refill queues and overlay. The current-window buffers
//     alias calendar buckets by construction; both sides are captured
//     and restored, and the double-write is consistent (see above). The
//     free-bucket lists hold len-0 headers over the same arrays and are
//     restored the same way. The SpawnHint callback is captured as a
//     func value because the drain phase nils it.
//   - faults.Plane (faults.PlaneSnapshot): per-host attempt/epoch/upload
//     tables follow the slice rule; the window cursor, churn accumulator
//     and stats are value copies. The materialized outage schedule is
//     immutable during a run and shared.
//   - credit.Ledger (credit.LedgerSnapshot) and stats.Histogram
//     (stats.HistogramSnapshot): dense arrays under the slice rule plus
//     the private counters. stats.Series is fully exported and captured
//     directly by its owner.
//   - project tenant state (captured by the Runner fork path): config and
//     report copied by value; batches, dispatch order, weekly series and
//     snapshot list follow the slice rule. A batch's slice plan is built
//     once in prepare and immutable afterwards, so plan headers are saved
//     but plan contents are shared, not copied. Report snapshots'
//     PerBatch arrays are freshly allocated at capture time and immutable
//     afterwards — shared.
//
// Snapshots are in-memory only and are never persisted; checkpoint files
// continue to record finished cells, not mid-run state.
package snapshot

import "unsafe"

// Slice captures one Go slice per the slice rule above: the header at
// capture time plus a private copy of the contents up to len. The private
// buffer is reused across captures, so a Slice that is captured and
// restored repeatedly (one snapshot per prefix group) allocates only when
// the captured length grows past its high-water mark.
type Slice[T any] struct {
	live []T // header as captured
	data []T // private copy of live[0:len]
}

// Capture saves s's header and copies its contents.
func (c *Slice[T]) Capture(s []T) {
	c.live = s
	c.data = append(c.data[:0], s...)
}

// Restore copies the saved contents back into the captured backing array
// over [0, len) and returns the saved header for the owner to reassign.
func (c *Slice[T]) Restore() []T {
	copy(c.live, c.data)
	return c.live
}

// Len returns the captured length.
func (c *Slice[T]) Len() int { return len(c.data) }

// Materialize returns a freshly allocated copy of the captured contents.
// Unlike Restore it does not touch (or alias) the captured backing array,
// so the result is safe to publish to another run context while the
// source runs on. This is the bridge from an in-place capture to a
// portable snapshot.
func (c *Slice[T]) Materialize() []T {
	if len(c.data) == 0 {
		return nil
	}
	out := make([]T, len(c.data))
	copy(out, c.data)
	return out
}

// Clone returns a freshly allocated copy of s — the portable counterpart
// of the slice rule for state that is deep-copied directly off the live
// structures rather than through a Slice capture.
func Clone[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// Size returns the in-memory size of s's elements in bytes, for the
// snapshot_bytes accounting of a materialized snapshot.
func Size[T any](s []T) int {
	var z T
	return len(s) * int(unsafe.Sizeof(z))
}
