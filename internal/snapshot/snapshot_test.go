package snapshot

import "testing"

// TestSliceRestoreAfterMutation: in-place writes during the "suffix" are
// undone, and the original header comes back.
func TestSliceRestoreAfterMutation(t *testing.T) {
	s := []int{1, 2, 3, 4}
	var c Slice[int]
	c.Capture(s)
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}

	s[0], s[3] = 99, -1
	s = append(s[:2], 7) // shrink then regrow in place

	got := c.Restore()
	if len(got) != 4 {
		t.Fatalf("restored len = %d, want 4", len(got))
	}
	for i, want := range []int{1, 2, 3, 4} {
		if got[i] != want {
			t.Fatalf("restored[%d] = %d, want %d", i, got[i], want)
		}
	}
	if &got[0] != &s[0] {
		t.Error("restore did not revive the original backing array")
	}
}

// TestSliceRestoreAfterRealloc: appends past capacity move the owner to a
// new backing array; restore abandons it and revives the original one.
func TestSliceRestoreAfterRealloc(t *testing.T) {
	s := make([]int, 3, 3)
	s[0], s[1], s[2] = 10, 20, 30
	orig := &s[0]
	var c Slice[int]
	c.Capture(s)

	grown := append(s, 40, 50) // must reallocate: cap == len
	grown[0] = -10

	got := c.Restore()
	if len(got) != 3 || &got[0] != orig {
		t.Fatalf("restore did not return the original 3-element header")
	}
	for i, want := range []int{10, 20, 30} {
		if got[i] != want {
			t.Fatalf("restored[%d] = %d, want %d", i, got[i], want)
		}
	}
}

// TestSliceAliasedCaptures: two captured headers over the same backing
// array restore consistently — the double-write lands identical bytes.
func TestSliceAliasedCaptures(t *testing.T) {
	back := []int{1, 2, 3, 4, 5}
	a := back[0:5]
	b := back[2:4]
	var ca, cb Slice[int]
	ca.Capture(a)
	cb.Capture(b)

	for i := range back {
		back[i] = -back[i]
	}

	ra := ca.Restore()
	rb := cb.Restore()
	for i, want := range []int{1, 2, 3, 4, 5} {
		if ra[i] != want {
			t.Fatalf("ra[%d] = %d, want %d", i, ra[i], want)
		}
	}
	if rb[0] != 3 || rb[1] != 4 {
		t.Fatalf("aliased restore rb = %v, want [3 4]", rb)
	}
	if &ra[2] != &rb[0] {
		t.Error("aliasing lost across restore")
	}
}

// TestSliceRepeatedCapture: the private buffer is reused; capturing a
// shorter slice after a longer one truncates cleanly.
func TestSliceRepeatedCapture(t *testing.T) {
	var c Slice[int]
	c.Capture([]int{1, 2, 3, 4, 5})
	short := []int{7, 8}
	c.Capture(short)
	if c.Len() != 2 {
		t.Fatalf("Len after recapture = %d, want 2", c.Len())
	}
	short[0] = 0
	got := c.Restore()
	if len(got) != 2 || got[0] != 7 || got[1] != 8 {
		t.Fatalf("recaptured restore = %v, want [7 8]", got)
	}
}

// TestSliceNil: capturing a nil slice round-trips to nil.
func TestSliceNil(t *testing.T) {
	var c Slice[int]
	c.Capture(nil)
	if c.Len() != 0 {
		t.Fatalf("Len = %d, want 0", c.Len())
	}
	if got := c.Restore(); got != nil {
		t.Fatalf("restored nil capture = %v, want nil", got)
	}
}
