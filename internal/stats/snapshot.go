package stats

import "repro/internal/snapshot"

// HistogramSnapshot captures a Histogram's counters so a run context can
// be rewound to an event boundary (see the snapshot package doc). The bin
// slice follows the snapshot slice rule; Lo/Hi are fixed at construction
// and not captured.
type HistogramSnapshot struct {
	bins               snapshot.Slice[int]
	under, over, total int
}

// Capture records h's counters.
func (s *HistogramSnapshot) Capture(h *Histogram) {
	s.bins.Capture(h.Bins)
	s.under, s.over, s.total = h.Under, h.Over, h.total
}

// Restore puts the captured counters back into h.
func (s *HistogramSnapshot) Restore(h *Histogram) {
	h.Bins = s.bins.Restore()
	h.Under, h.Over, h.total = s.under, s.over, s.total
}

// SeriesSnapshot captures a Series' points (both coordinate slices under
// the slice rule; the name is fixed).
type SeriesSnapshot struct {
	x, y snapshot.Slice[float64]
}

// Capture records s's points.
func (c *SeriesSnapshot) Capture(s *Series) {
	c.x.Capture(s.X)
	c.y.Capture(s.Y)
}

// Restore puts the captured points back into s.
func (c *SeriesSnapshot) Restore(s *Series) {
	s.X = c.x.Restore()
	s.Y = c.y.Restore()
}
