package stats

import "repro/internal/snapshot"

// HistogramSnapshot captures a Histogram's counters so a run context can
// be rewound to an event boundary (see the snapshot package doc). The bin
// slice follows the snapshot slice rule; Lo/Hi are fixed at construction
// and not captured.
type HistogramSnapshot struct {
	bins               snapshot.Slice[int]
	under, over, total int
}

// Capture records h's counters.
func (s *HistogramSnapshot) Capture(h *Histogram) {
	s.bins.Capture(h.Bins)
	s.under, s.over, s.total = h.Under, h.Over, h.total
}

// Restore puts the captured counters back into h.
func (s *HistogramSnapshot) Restore(h *Histogram) {
	h.Bins = s.bins.Restore()
	h.Under, h.Over, h.total = s.under, s.over, s.total
}

// PortableHistogram is a self-contained copy of a Histogram's counters
// for portable run snapshots (see the snapshot package doc): unlike
// HistogramSnapshot it owns its bin buffer and never aliases the source.
// The bin edges (Lo/Hi, bin count) are fixed at construction and must
// match between source and adopter.
type PortableHistogram struct {
	bins               []int
	under, over, total int
}

// ExportPortable deep-copies h's counters.
func (h *Histogram) ExportPortable() PortableHistogram {
	return PortableHistogram{
		bins:  snapshot.Clone(h.Bins),
		under: h.Under, over: h.Over, total: h.total,
	}
}

// AdoptPortable installs the portable counters into h.
func (h *Histogram) AdoptPortable(p PortableHistogram) {
	h.Bins = append(h.Bins[:0], p.bins...)
	h.Under, h.Over, h.total = p.under, p.over, p.total
}

// Bytes estimates the portable histogram's memory footprint.
func (p *PortableHistogram) Bytes() int { return snapshot.Size(p.bins) }

// SeriesSnapshot captures a Series' points (both coordinate slices under
// the slice rule; the name is fixed).
type SeriesSnapshot struct {
	x, y snapshot.Slice[float64]
}

// Capture records s's points.
func (c *SeriesSnapshot) Capture(s *Series) {
	c.x.Capture(s.X)
	c.y.Capture(s.Y)
}

// Restore puts the captured points back into s.
func (c *SeriesSnapshot) Restore(s *Series) {
	s.X = c.x.Restore()
	s.Y = c.y.Restore()
}
