// Package stats provides the descriptive statistics, histograms, linear
// regression and time-series accumulation used throughout the HCMD
// reproduction: Table 1 summary statistics of the cost matrix, the linearity
// checks of Figure 3, the workunit histograms of Figures 4 and 8 and the
// weekly VFTP series of Figures 1 and 6.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // population standard deviation, as the paper reports
	Min    float64
	Max    float64
	Median float64
	Sum    float64
}

// Summarize computes descriptive statistics of vals. It returns a zero
// Summary for an empty input.
func Summarize(vals []float64) Summary {
	if len(vals) == 0 {
		return Summary{}
	}
	s := Summary{N: len(vals), Min: math.Inf(1), Max: math.Inf(-1)}
	for _, v := range vals {
		s.Sum += v
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = s.Sum / float64(s.N)
	var ss float64
	for _, v := range vals {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(s.N))
	s.Median = Quantile(vals, 0.5)
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of vals using linear
// interpolation between order statistics. The input is not modified (it is
// copied and sorted; callers that already hold a sorted sample should use
// QuantileSorted, which does not allocate).
func Quantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	return QuantileSorted(sorted, q)
}

// QuantileSorted returns the q-quantile of an ascending-sorted sample
// without copying or allocating.
func QuantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of vals, or NaN for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// Sum returns the sum of vals.
func Sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}

// Pearson returns the Pearson correlation coefficient of the paired samples
// x and y. It panics if the lengths differ and returns NaN if either sample
// has zero variance or fewer than two points.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic("stats: Pearson length mismatch")
	}
	n := float64(len(x))
	if n < 2 {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// LinearFit is the result of an ordinary least-squares fit y = A*x + B.
type LinearFit struct {
	A, B float64 // slope and intercept
	R2   float64 // coefficient of determination
}

// FitLine fits y = A*x + B by ordinary least squares. It panics on length
// mismatch and requires at least two points.
func FitLine(x, y []float64) LinearFit {
	if len(x) != len(y) {
		panic("stats: FitLine length mismatch")
	}
	if len(x) < 2 {
		panic("stats: FitLine needs at least two points")
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx float64
	for i := range x {
		dx := x[i] - mx
		sxy += dx * (y[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		panic("stats: FitLine with constant x")
	}
	a := sxy / sxx
	b := my - a*mx
	var ssRes, ssTot float64
	for i := range x {
		res := y[i] - (a*x[i] + b)
		ssRes += res * res
		d := y[i] - my
		ssTot += d * d
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{A: a, B: b, R2: r2}
}

// Histogram is a fixed-width-bin histogram over [Lo, Hi). Values outside the
// range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Bins   []int
	Under  int
	Over   int
	total  int
}

// NewHistogram creates a histogram with nbins equal-width bins over [lo, hi).
// It panics if nbins <= 0 or hi <= lo.
func NewHistogram(lo, hi float64, nbins int) *Histogram {
	if nbins <= 0 {
		panic("stats: histogram needs at least one bin")
	}
	if hi <= lo {
		panic("stats: histogram range empty")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, nbins)}
}

// Reset empties the histogram for reuse, keeping the bin buffer: the
// preallocated-accumulator path for pooled run contexts that record the
// same distribution run after run.
func (h *Histogram) Reset() {
	clear(h.Bins)
	h.Under, h.Over, h.total = 0, 0, 0
}

// Add records one observation.
func (h *Histogram) Add(v float64) {
	h.total++
	if v < h.Lo {
		h.Under++
		return
	}
	if v >= h.Hi {
		h.Over++
		return
	}
	idx := int(float64(len(h.Bins)) * (v - h.Lo) / (h.Hi - h.Lo))
	if idx >= len(h.Bins) { // guard against floating-point edge
		idx = len(h.Bins) - 1
	}
	h.Bins[idx]++
}

// AddN records n identical observations.
func (h *Histogram) AddN(v float64, n int) {
	for i := 0; i < n; i++ {
		h.Add(v)
	}
}

// Total returns the number of observations recorded (including out of range).
func (h *Histogram) Total() int { return h.total }

// BinCenter returns the center value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// BinLow returns the lower edge of bin i.
func (h *Histogram) BinLow(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + float64(i)*w
}

// MaxBin returns the index of the fullest bin.
func (h *Histogram) MaxBin() int {
	best := 0
	for i, c := range h.Bins {
		if c > h.Bins[best] {
			best = i
		}
	}
	return best
}

// Fractions returns each bin count as a fraction of the total (including
// under/overflow in the denominator). Empty histogram returns all zeros.
func (h *Histogram) Fractions() []float64 {
	out := make([]float64, len(h.Bins))
	if h.total == 0 {
		return out
	}
	for i, c := range h.Bins {
		out[i] = float64(c) / float64(h.total)
	}
	return out
}

// String renders a compact ASCII view of the histogram, useful in logs and
// example programs.
func (h *Histogram) String() string {
	const width = 40
	maxCount := 0
	for _, c := range h.Bins {
		if c > maxCount {
			maxCount = c
		}
	}
	out := ""
	for i, c := range h.Bins {
		bar := 0
		if maxCount > 0 {
			bar = c * width / maxCount
		}
		out += fmt.Sprintf("%12.1f |%-*s| %d\n", h.BinLow(i), width, repeat('#', bar), c)
	}
	if h.Under > 0 {
		out += fmt.Sprintf("   underflow: %d\n", h.Under)
	}
	if h.Over > 0 {
		out += fmt.Sprintf("    overflow: %d\n", h.Over)
	}
	return out
}

func repeat(ch byte, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = ch
	}
	return string(b)
}

// Series is an append-only sequence of (x, y) points, used for the figure
// time series (weekly VFTP, results per week, progression curves).
type Series struct {
	Name string
	X, Y []float64
}

// NewSeries creates a named empty series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// NewSeriesCap creates a named empty series with storage preallocated for
// capacity points: the ring-buffer backing used by the obs metrics
// registry, which needs Add to stay allocation-free up to the cap.
func NewSeriesCap(name string, capacity int) *Series {
	return &Series{
		Name: name,
		X:    make([]float64, 0, capacity),
		Y:    make([]float64, 0, capacity),
	}
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Reset empties the series for reuse, keeping the backing arrays.
func (s *Series) Reset() {
	s.X = s.X[:0]
	s.Y = s.Y[:0]
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// YMean returns the mean of the Y values, or NaN if empty.
func (s *Series) YMean() float64 { return Mean(s.Y) }

// YMax returns the maximum Y value, or -Inf if empty.
func (s *Series) YMax() float64 {
	m := math.Inf(-1)
	for _, v := range s.Y {
		if v > m {
			m = v
		}
	}
	return m
}

// Window returns a sub-series restricted to x in [lo, hi].
func (s *Series) Window(lo, hi float64) *Series {
	out := NewSeries(s.Name)
	for i, x := range s.X {
		if x >= lo && x <= hi {
			out.Add(x, s.Y[i])
		}
	}
	return out
}

// TopShare reports the smallest number of values whose sum reaches the given
// share (0..1) of the total, and the share actually covered. The paper uses
// this to state that "10 proteins represent 30% of the total processing
// time".
func TopShare(vals []float64, share float64) (count int, covered float64) {
	if len(vals) == 0 || share <= 0 {
		return 0, 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	total := Sum(sorted)
	if total <= 0 {
		return 0, 0
	}
	var cum float64
	for i, v := range sorted {
		cum += v
		if cum >= share*total {
			return i + 1, cum / total
		}
	}
	return len(sorted), 1
}

// KolmogorovSmirnov returns the two-sample KS statistic: the maximum
// distance between the empirical CDFs of a and b. Used by the calibration
// tests to quantify how close the synthesized cost matrix is to its target
// distribution (0 = identical, 1 = disjoint).
func KolmogorovSmirnov(a, b []float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.NaN()
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)
	var i, j int
	var d float64
	for i < len(sa) && j < len(sb) {
		// Advance past every occurrence of the smaller value on both
		// sides, so ties move the two empirical CDFs together.
		v := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] == v {
			i++
		}
		for j < len(sb) && sb[j] == v {
			j++
		}
		fa := float64(i) / float64(len(sa))
		fb := float64(j) / float64(len(sb))
		if diff := math.Abs(fa - fb); diff > d {
			d = diff
		}
	}
	return d
}

// ShareOfTop returns the fraction of the total mass carried by the k largest
// values.
func ShareOfTop(vals []float64, k int) float64 {
	if len(vals) == 0 || k <= 0 {
		return 0
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	if k > len(sorted) {
		k = len(sorted)
	}
	total := Sum(sorted)
	if total <= 0 {
		return 0
	}
	return Sum(sorted[:k]) / total
}
