package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Sum != 15 {
		t.Fatalf("unexpected summary: %+v", s)
	}
	if !almost(s.Std, math.Sqrt(2), 1e-12) {
		t.Fatalf("std = %v, want sqrt(2)", s.Std)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Sum != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Median != 7 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
}

func TestQuantile(t *testing.T) {
	vals := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {0.25, 17.5},
	}
	for _, c := range cases {
		if got := Quantile(vals, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantile(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileClamps(t *testing.T) {
	vals := []float64{1, 2}
	if Quantile(vals, -1) != 1 || Quantile(vals, 2) != 2 {
		t.Fatal("Quantile did not clamp q")
	}
}

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if got := Pearson(x, y); !almost(got, 1, 1e-12) {
		t.Fatalf("Pearson = %v, want 1", got)
	}
	yneg := []float64{8, 6, 4, 2}
	if got := Pearson(x, yneg); !almost(got, -1, 1e-12) {
		t.Fatalf("Pearson = %v, want -1", got)
	}
}

func TestPearsonZeroVariance(t *testing.T) {
	if !math.IsNaN(Pearson([]float64{1, 1}, []float64{2, 3})) {
		t.Fatal("expected NaN for zero-variance x")
	}
}

func TestFitLineRecoversSlope(t *testing.T) {
	r := rng.New(1)
	x := make([]float64, 100)
	y := make([]float64, 100)
	for i := range x {
		x[i] = float64(i)
		y[i] = 3.5*x[i] + 10 + r.Normal(0, 0.01)
	}
	fit := FitLine(x, y)
	if !almost(fit.A, 3.5, 0.01) || !almost(fit.B, 10, 0.1) {
		t.Fatalf("fit = %+v", fit)
	}
	if fit.R2 < 0.9999 {
		t.Fatalf("R2 = %v", fit.R2)
	}
}

func TestFitLinePanics(t *testing.T) {
	cases := []func(){
		func() { FitLine([]float64{1}, []float64{1, 2}) },
		func() { FitLine([]float64{1}, []float64{1}) },
		func() { FitLine([]float64{2, 2}, []float64{1, 3}) },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(0)
	h.Add(0.5)
	h.Add(9.99)
	h.Add(-1)
	h.Add(10)
	if h.Bins[0] != 2 || h.Bins[9] != 1 {
		t.Fatalf("bins: %v", h.Bins)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under/over: %d/%d", h.Under, h.Over)
	}
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
}

func TestHistogramMassConservation(t *testing.T) {
	r := rng.New(2)
	h := NewHistogram(0, 1, 7)
	f := func(n uint16) bool {
		h2 := NewHistogram(0, 1, 7)
		count := int(n%1000) + 1
		for i := 0; i < count; i++ {
			h2.Add(r.Normal(0.5, 0.5))
		}
		inBins := h2.Under + h2.Over
		for _, c := range h2.Bins {
			inBins += c
		}
		return inBins == h2.Total() && inBins == count
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	_ = h
}

func TestHistogramBinCenters(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	if !almost(h.BinCenter(0), 1, 1e-12) || !almost(h.BinCenter(4), 9, 1e-12) {
		t.Fatalf("bin centers wrong: %v, %v", h.BinCenter(0), h.BinCenter(4))
	}
	if !almost(h.BinLow(2), 4, 1e-12) {
		t.Fatalf("bin low wrong: %v", h.BinLow(2))
	}
}

func TestHistogramMaxBinAndFractions(t *testing.T) {
	h := NewHistogram(0, 3, 3)
	h.AddN(0.5, 1)
	h.AddN(1.5, 5)
	h.AddN(2.5, 2)
	if h.MaxBin() != 1 {
		t.Fatalf("MaxBin = %d", h.MaxBin())
	}
	fr := h.Fractions()
	if !almost(fr[1], 5.0/8, 1e-12) {
		t.Fatalf("fractions = %v", fr)
	}
}

func TestHistogramPanics(t *testing.T) {
	for i, f := range []func(){
		func() { NewHistogram(0, 1, 0) },
		func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram(0, 2, 2)
	h.Add(0.5)
	h.Add(-1)
	h.Add(5)
	s := h.String()
	if s == "" {
		t.Fatal("empty render")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("test")
	for i := 0; i < 10; i++ {
		s.Add(float64(i), float64(i*2))
	}
	if s.Len() != 10 {
		t.Fatalf("len = %d", s.Len())
	}
	if !almost(s.YMean(), 9, 1e-12) {
		t.Fatalf("mean = %v", s.YMean())
	}
	if s.YMax() != 18 {
		t.Fatalf("max = %v", s.YMax())
	}
	w := s.Window(2, 4)
	if w.Len() != 3 || w.X[0] != 2 || w.X[2] != 4 {
		t.Fatalf("window wrong: %+v", w)
	}
}

func TestTopShare(t *testing.T) {
	// One giant value dominating.
	vals := []float64{100, 1, 1, 1, 1}
	count, covered := TopShare(vals, 0.5)
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	if covered < 0.9 {
		t.Fatalf("covered = %v", covered)
	}
	// Uniform values: need half of them.
	uniform := []float64{1, 1, 1, 1}
	count, _ = TopShare(uniform, 0.5)
	if count != 2 {
		t.Fatalf("uniform count = %d, want 2", count)
	}
}

func TestTopShareEdge(t *testing.T) {
	if c, _ := TopShare(nil, 0.5); c != 0 {
		t.Fatal("empty input should give 0")
	}
	if c, _ := TopShare([]float64{1}, 0); c != 0 {
		t.Fatal("zero share should give 0")
	}
}

func TestShareOfTop(t *testing.T) {
	vals := []float64{6, 3, 1}
	if got := ShareOfTop(vals, 1); !almost(got, 0.6, 1e-12) {
		t.Fatalf("ShareOfTop(1) = %v", got)
	}
	if got := ShareOfTop(vals, 10); !almost(got, 1, 1e-12) {
		t.Fatalf("ShareOfTop(all) = %v", got)
	}
	if got := ShareOfTop(vals, 0); got != 0 {
		t.Fatalf("ShareOfTop(0) = %v", got)
	}
}

func TestMeanSumEdge(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if Sum(nil) != 0 {
		t.Fatal("Sum(nil) should be 0")
	}
}

func BenchmarkSummarize(b *testing.B) {
	r := rng.New(1)
	vals := make([]float64, 28224) // 168^2, the cost-matrix size
	for i := range vals {
		vals[i] = r.LogNormal(6, 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Summarize(vals)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(0, 100, 50)
	for i := 0; i < b.N; i++ {
		h.Add(float64(i % 100))
	}
}

func TestKolmogorovSmirnovIdentical(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	if d := KolmogorovSmirnov(a, a); d != 0 {
		t.Fatalf("KS of identical samples = %v", d)
	}
}

func TestKolmogorovSmirnovDisjoint(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{10, 11, 12}
	if d := KolmogorovSmirnov(a, b); d != 1 {
		t.Fatalf("KS of disjoint samples = %v", d)
	}
}

func TestKolmogorovSmirnovSameDistribution(t *testing.T) {
	r := rng.New(4)
	a := make([]float64, 5000)
	b := make([]float64, 5000)
	for i := range a {
		a[i] = r.Normal(0, 1)
		b[i] = r.Normal(0, 1)
	}
	if d := KolmogorovSmirnov(a, b); d > 0.05 {
		t.Fatalf("KS of same-distribution samples = %v", d)
	}
	// Shifted distribution clearly detected.
	for i := range b {
		b[i] += 2
	}
	if d := KolmogorovSmirnov(a, b); d < 0.5 {
		t.Fatalf("KS of shifted samples = %v", d)
	}
}

func TestKolmogorovSmirnovEmpty(t *testing.T) {
	if !math.IsNaN(KolmogorovSmirnov(nil, []float64{1})) {
		t.Fatal("empty sample should give NaN")
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{-1, 0, 3, 7, 42} {
		h.Add(v)
	}
	bins := &h.Bins[0]
	h.Reset()
	if h.Total() != 0 || h.Under != 0 || h.Over != 0 {
		t.Fatalf("reset histogram kept counts: %+v", h)
	}
	for i, c := range h.Bins {
		if c != 0 {
			t.Fatalf("bin %d not zeroed: %d", i, c)
		}
	}
	if &h.Bins[0] != bins {
		t.Fatal("reset reallocated the bin buffer")
	}
	h.Add(3)
	if h.Total() != 1 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestSeriesReset(t *testing.T) {
	s := NewSeries("x")
	for i := 0; i < 100; i++ {
		s.Add(float64(i), float64(i*i))
	}
	c := cap(s.X)
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("reset series has %d points", s.Len())
	}
	if cap(s.X) != c {
		t.Fatal("reset dropped the backing array")
	}
	s.Add(1, 2)
	if s.Len() != 1 || s.YMean() != 2 {
		t.Fatal("series unusable after reset")
	}
}

func TestQuantileSortedMatchesQuantile(t *testing.T) {
	r := rng.New(9)
	vals := make([]float64, 501)
	for i := range vals {
		vals[i] = r.Normal(10, 4)
	}
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	for _, q := range []float64{-0.5, 0, 0.25, 0.5, 0.9, 1, 2} {
		if a, b := Quantile(vals, q), QuantileSorted(sorted, q); a != b {
			t.Fatalf("q=%v: Quantile %v != QuantileSorted %v", q, a, b)
		}
	}
	if !math.IsNaN(QuantileSorted(nil, 0.5)) {
		t.Fatal("empty sorted sample should give NaN")
	}
	if n := testing.AllocsPerRun(10, func() { QuantileSorted(sorted, 0.5) }); n != 0 {
		t.Fatalf("QuantileSorted allocated %v times", n)
	}
}
