// Package validate implements the result processing and verification
// pipeline of §5.2: the storage-server side of the campaign.
//
// During the project the World Community Grid team shipped results to a
// storage server in France whenever one protein had been docked against all
// 168 others. The team there validated each delivery with three checks —
// the correct number of files, the correct number of lines in each file,
// and values within a valid range — then merged the per-workunit result
// files into one file per couple of proteins. The full campaign produced
// 168² merged files totalling 123 GB of text (≈ 45 GB compressed).
package validate

import (
	"bytes"
	"fmt"

	"repro/internal/docking"
	"repro/internal/protein"
)

// CompressionRatio is the text-to-compressed size ratio the paper reports
// (45 GB / 123 GB).
const CompressionRatio = 45.0 / 123.0

// Delivery is one shipment from the grid: every workunit result file of one
// receptor docked against every ligand. Files are grouped by ligand; each
// inner slice is the per-workunit files of that couple, in any order.
type Delivery struct {
	Receptor int
	Files    map[int][][]byte // ligand -> workunit result files
}

// Report is the outcome of validating and merging one delivery.
type Report struct {
	Receptor      int
	Couples       int   // couples validated and merged
	Lines         int64 // result lines after merging
	Bytes         int64 // merged text size
	FilesReceived int
}

// Pipeline validates deliveries and accounts the growing archive.
type Pipeline struct {
	DS    *protein.Dataset
	NRot  int
	Range docking.ValidRange

	merged  map[[2]int]bool
	lines   int64
	bytes   int64
	couples int
}

// NewPipeline creates a pipeline for the dataset with the production
// validation envelope.
func NewPipeline(ds *protein.Dataset) *Pipeline {
	return &Pipeline{
		DS:     ds,
		NRot:   protein.NRotWorkunit,
		Range:  docking.DefaultValidRange,
		merged: make(map[[2]int]bool),
	}
}

// Receive validates one delivery with the three §5.2 checks and merges it.
// Any failed check rejects the whole delivery (the grid re-sends).
func (p *Pipeline) Receive(d Delivery) (Report, error) {
	if d.Receptor < 0 || d.Receptor >= p.DS.Len() {
		return Report{}, fmt.Errorf("validate: receptor %d out of range", d.Receptor)
	}
	// Check 1: the correct number of files — every ligand must be present.
	if len(d.Files) != p.DS.Len() {
		return Report{}, fmt.Errorf("validate: delivery for %s has %d ligands, want %d (file-count check)",
			p.DS.Proteins[d.Receptor].Name, len(d.Files), p.DS.Len())
	}
	rep := Report{Receptor: d.Receptor}
	nsep := p.DS.Proteins[d.Receptor].Nsep
	wantLines := nsep * p.NRot

	type mergedCouple struct {
		ligand int
		data   []byte
		lines  int
	}
	out := make([]mergedCouple, 0, len(d.Files))
	for ligand := 0; ligand < p.DS.Len(); ligand++ {
		files, ok := d.Files[ligand]
		if !ok {
			return Report{}, fmt.Errorf("validate: missing files for couple (%d,%d) (file-count check)", d.Receptor, ligand)
		}
		rep.FilesReceived += len(files)
		parts := make([][]docking.Result, 0, len(files))
		for fi, f := range files {
			results, err := docking.ParseResults(bytes.NewReader(f))
			if err != nil {
				return Report{}, fmt.Errorf("validate: couple (%d,%d) file %d: %w", d.Receptor, ligand, fi, err)
			}
			// Check 3: values within the valid range.
			for li, r := range results {
				if err := p.Range.CheckLine(r); err != nil {
					return Report{}, fmt.Errorf("validate: couple (%d,%d) file %d line %d: %w (range check)",
						d.Receptor, ligand, fi, li+1, err)
				}
			}
			parts = append(parts, results)
		}
		// Check 2 + merge: the union must be exactly the (Nsep × NRot) grid.
		merged, err := docking.MergeResults(parts, nsep, p.NRot)
		if err != nil {
			return Report{}, fmt.Errorf("validate: couple (%d,%d): %w (line-count check)", d.Receptor, ligand, err)
		}
		if len(merged) != wantLines {
			return Report{}, fmt.Errorf("validate: couple (%d,%d): %d lines, want %d (line-count check)",
				d.Receptor, ligand, len(merged), wantLines)
		}
		var buf bytes.Buffer
		if err := docking.WriteResults(&buf, merged); err != nil {
			return Report{}, fmt.Errorf("validate: couple (%d,%d): %w", d.Receptor, ligand, err)
		}
		out = append(out, mergedCouple{ligand: ligand, data: buf.Bytes(), lines: len(merged)})
	}
	// All couples validated: commit.
	for _, mc := range out {
		key := [2]int{d.Receptor, mc.ligand}
		if !p.merged[key] {
			p.merged[key] = true
			p.couples++
		}
		rep.Couples++
		rep.Lines += int64(mc.lines)
		rep.Bytes += int64(len(mc.data))
	}
	p.lines += rep.Lines
	p.bytes += rep.Bytes
	return rep, nil
}

// MergedCouples returns how many couple files the archive holds.
func (p *Pipeline) MergedCouples() int { return p.couples }

// Complete reports whether all 168² couples are merged.
func (p *Pipeline) Complete() bool { return p.couples == p.DS.Len()*p.DS.Len() }

// ArchiveBytes returns the accumulated text size and its compressed
// estimate.
func (p *Pipeline) ArchiveBytes() (text, compressed int64) {
	return p.bytes, int64(float64(p.bytes) * CompressionRatio)
}

// Lines returns the accumulated result-line count.
func (p *Pipeline) Lines() int64 { return p.lines }

// sampleLine is a representative result line used to estimate the archive
// size without materializing it.
var sampleLine = func() int {
	var buf bytes.Buffer
	r := docking.Result{
		ISep: 1234, IRot: 12,
		Pose:   docking.Pose{Pos: docking.Vec3{X: -12.3456, Y: 45.6789, Z: -7.8901}, Alpha: 1.234567, Beta: 2.345678, Gamma: 3.456789},
		Energy: docking.Energy{LJ: -123.456789, Elec: 45.678901},
	}
	if err := docking.WriteResults(&buf, []docking.Result{r}); err != nil {
		panic(err)
	}
	return buf.Len()
}()

// EstimateArchive predicts the full-campaign archive size from the dataset
// alone: one line per (couple, isep, irot). For the HCMD benchmark this
// lands near the paper's 123 GB (and 45 GB compressed).
func EstimateArchive(ds *protein.Dataset) (lines int64, textBytes int64, compressedBytes int64) {
	lines = int64(ds.Instances()) * int64(protein.NRotWorkunit)
	textBytes = lines * int64(sampleLine)
	compressedBytes = int64(float64(textBytes) * CompressionRatio)
	return lines, textBytes, compressedBytes
}
