package validate

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/docking"
	"repro/internal/protein"
)

// tinyDataset builds a dataset small enough to dock fully in tests.
func tinyDataset(t testing.TB) *protein.Dataset {
	t.Helper()
	ds := protein.Generate(3, 77)
	for _, p := range ds.Proteins {
		p.Nsep = 4 // shrink so full maps are cheap
	}
	return ds
}

var fastParams = docking.MinimizeParams{MaxIter: 3, GammaSub: 1}

// makeDelivery computes a full, valid delivery for a receptor, splitting
// each couple's results into nFiles workunit files.
func makeDelivery(t testing.TB, ds *protein.Dataset, rec, nFiles int) Delivery {
	t.Helper()
	d := Delivery{Receptor: rec, Files: make(map[int][][]byte)}
	for lig := 0; lig < ds.Len(); lig++ {
		results := docking.EnergyMap(ds.Proteins[rec], ds.Proteins[lig], fastParams)
		per := (len(results) + nFiles - 1) / nFiles
		var files [][]byte
		for lo := 0; lo < len(results); lo += per {
			hi := lo + per
			if hi > len(results) {
				hi = len(results)
			}
			var buf bytes.Buffer
			if err := docking.WriteResults(&buf, results[lo:hi]); err != nil {
				t.Fatal(err)
			}
			files = append(files, buf.Bytes())
		}
		d.Files[lig] = files
	}
	return d
}

func TestReceiveValidDelivery(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	rep, err := p.Receive(makeDelivery(t, ds, 0, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Couples != ds.Len() {
		t.Fatalf("couples = %d", rep.Couples)
	}
	wantLines := int64(ds.Len() * ds.Proteins[0].Nsep * protein.NRotWorkunit)
	if rep.Lines != wantLines {
		t.Fatalf("lines = %d, want %d", rep.Lines, wantLines)
	}
	if p.MergedCouples() != ds.Len() {
		t.Fatalf("merged = %d", p.MergedCouples())
	}
	if p.Complete() {
		t.Fatal("one receptor should not complete the archive")
	}
}

func TestArchiveCompletes(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	for rec := 0; rec < ds.Len(); rec++ {
		if _, err := p.Receive(makeDelivery(t, ds, rec, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Complete() {
		t.Fatal("archive should be complete")
	}
	text, compressed := p.ArchiveBytes()
	if text <= 0 || compressed <= 0 || compressed >= text {
		t.Fatalf("bytes accounting wrong: %d / %d", text, compressed)
	}
}

func TestFileCountCheck(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	d := makeDelivery(t, ds, 0, 1)
	delete(d.Files, 1)
	if _, err := p.Receive(d); err == nil || !strings.Contains(err.Error(), "file-count") {
		t.Fatalf("missing-ligand delivery accepted: %v", err)
	}
}

func TestLineCountCheck(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	d := makeDelivery(t, ds, 0, 1)
	// Drop the last line of one file.
	f := d.Files[2][0]
	trimmed := bytes.TrimRight(f, "\n")
	idx := bytes.LastIndexByte(trimmed, '\n')
	d.Files[2][0] = trimmed[:idx+1]
	if _, err := p.Receive(d); err == nil || !strings.Contains(err.Error(), "line-count") {
		t.Fatalf("short file accepted: %v", err)
	}
}

func TestRangeCheck(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	d := makeDelivery(t, ds, 0, 1)
	// Corrupt one energy to an absurd value.
	f := string(d.Files[0][0])
	lines := strings.SplitN(f, "\n", 2)
	fields := strings.Fields(lines[0])
	fields[8] = "9.9e99"
	d.Files[0][0] = []byte(strings.Join(fields, " ") + "\n" + lines[1])
	if _, err := p.Receive(d); err == nil || !strings.Contains(err.Error(), "range check") {
		t.Fatalf("corrupt value accepted: %v", err)
	}
}

func TestDuplicateLinesRejected(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	d := makeDelivery(t, ds, 0, 1)
	// Duplicate a whole file: merge must detect the duplicate grid points.
	d.Files[0] = append(d.Files[0], d.Files[0][0])
	if _, err := p.Receive(d); err == nil {
		t.Fatal("duplicated workunit file accepted")
	}
}

func TestRejectedDeliveryLeavesNoTrace(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	d := makeDelivery(t, ds, 0, 1)
	delete(d.Files, 0)
	p.Receive(d) // rejected
	if p.MergedCouples() != 0 || p.Lines() != 0 {
		t.Fatal("rejected delivery left state behind")
	}
}

func TestReceptorRangeChecked(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	if _, err := p.Receive(Delivery{Receptor: 99}); err == nil {
		t.Fatal("bad receptor accepted")
	}
}

func TestRedeliveryIdempotentCount(t *testing.T) {
	ds := tinyDataset(t)
	p := NewPipeline(ds)
	d := makeDelivery(t, ds, 0, 1)
	if _, err := p.Receive(d); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Receive(d); err != nil {
		t.Fatal(err)
	}
	// Re-delivery re-validates but the couple count does not double.
	if p.MergedCouples() != ds.Len() {
		t.Fatalf("merged = %d after redelivery", p.MergedCouples())
	}
}

func TestEstimateArchivePaperScale(t *testing.T) {
	ds := protein.HCMD168()
	lines, text, compressed := EstimateArchive(ds)
	// 49,481,544 instances × 21 rotations ≈ 1.04e9 lines.
	if lines != int64(49481544)*21 {
		t.Fatalf("lines = %d", lines)
	}
	// Paper: 123 GB of text, 45 GB compressed. Accept a generous band —
	// the exact size depends on the authors' column formats.
	gb := float64(text) / 1e9
	if gb < 60 || gb > 220 {
		t.Fatalf("estimated archive %.0f GB, want ≈ 123 GB", gb)
	}
	cgb := float64(compressed) / 1e9
	if cgb/gb < 0.3 || cgb/gb > 0.4 {
		t.Fatalf("compression ratio %.2f, want 45/123", cgb/gb)
	}
}

func BenchmarkReceiveDelivery(b *testing.B) {
	ds := tinyDataset(b)
	d := makeDelivery(b, ds, 0, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewPipeline(ds)
		if _, err := p.Receive(d); err != nil {
			b.Fatal(err)
		}
	}
}
