// Package vftp implements the paper's virtual full-time processor metric
// and the volunteer-to-dedicated equivalence of Table 2.
//
// §3.1 introduces the metric: "How many processors do we need to generate
// 10 years of cpu time for 1 day? If for 1 day, 10 years of cpu time are
// consumed, it is equivalent to at least 3,650 processors that compute full
// time for 1 day." A virtual full-time processor (VFTP) is therefore one
// day of reported CPU time per day of wall time. It says nothing about the
// processor's power — which is exactly why the paper then needs the
// speed-down factor to compare against a dedicated grid.
package vftp

import (
	"fmt"

	"repro/internal/stats"
)

// SecondsPerDay is the VFTP accounting granularity.
const SecondsPerDay = 86400.0

// FromCPU converts consumed CPU time over a wall-clock window into virtual
// full-time processors.
func FromCPU(cpuSeconds, wallSeconds float64) float64 {
	if wallSeconds <= 0 {
		panic("vftp: wall window must be positive")
	}
	return cpuSeconds / wallSeconds
}

// FromWeeklyCPU converts a series of per-week CPU seconds into a weekly
// VFTP series (x = week index).
func FromWeeklyCPU(weekly []float64) *stats.Series {
	s := stats.NewSeries("vftp")
	for w, cpu := range weekly {
		s.Add(float64(w), FromCPU(cpu, 7*SecondsPerDay))
	}
	return s
}

// DedicatedEquivalent converts volunteer VFTP into the number of dedicated
// reference processors doing the same useful work: the volunteer CPU time
// is inflated by the speed-down factor (wall-clock accounting, throttle,
// shared and slower hardware) and by redundant computing, so
//
//	dedicated = vftp / totalFactor
//
// where totalFactor = speedDown × redundancy (the paper's 5.43 = 3.96 × 1.37).
func DedicatedEquivalent(vftp, totalFactor float64) float64 {
	if totalFactor <= 0 {
		panic("vftp: total factor must be positive")
	}
	return vftp / totalFactor
}

// Paper constants of §6.
const (
	// PaperSpeedDown is the measured per-result slow-down net of
	// redundancy.
	PaperSpeedDown = 3.96
	// PaperRedundancy is the measured redundancy factor.
	PaperRedundancy = 1.37
	// PaperTotalFactor is the end-to-end CPU-time inflation.
	PaperTotalFactor = 5.43
)

// EquivalenceRow is one line of Table 2.
type EquivalenceRow struct {
	Period    string
	Volunteer float64 // virtual full-time processors on the volunteer grid
	Dedicated float64 // equivalent dedicated processors
}

// Table2 builds the paper's Table 2 from the two period averages and the
// measured total factor: the whole campaign and the full-power phase.
func Table2(wholeVFTP, fullPowerVFTP, totalFactor float64) []EquivalenceRow {
	return []EquivalenceRow{
		{Period: "whole period", Volunteer: wholeVFTP, Dedicated: DedicatedEquivalent(wholeVFTP, totalFactor)},
		{Period: "full power working phase", Volunteer: fullPowerVFTP, Dedicated: DedicatedEquivalent(fullPowerVFTP, totalFactor)},
	}
}

// PaperTable2 returns Table 2 with the paper's published inputs
// (16,450 and 26,248 VFTP; factor 5.43), yielding 3,029 and 4,833.
func PaperTable2() []EquivalenceRow {
	return Table2(16450, 26248, PaperTotalFactor)
}

// String renders a row the way the paper prints it.
func (r EquivalenceRow) String() string {
	return fmt.Sprintf("%-26s %10.0f %10.0f", r.Period, r.Volunteer, r.Dedicated)
}
