package vftp

import (
	"math"
	"testing"
)

func TestFromCPUPaperExample(t *testing.T) {
	// §3.1: 10 years of CPU time in one day ⇒ at least 3,650 processors.
	tenYears := 10 * 365.0 * SecondsPerDay
	got := FromCPU(tenYears, SecondsPerDay)
	if got != 3650 {
		t.Fatalf("VFTP = %v, want 3650", got)
	}
}

func TestFromCPUWeekWritten(t *testing.T) {
	// §6: "during the prior week, WCG received 1,435 years of run time or
	// an average of 74,825 days of run time per day" ⇒ 74,825 VFTP.
	cpu := 1435 * 365.25 * SecondsPerDay
	got := FromCPU(cpu, 7*SecondsPerDay)
	if math.Abs(got-74875) > 1000 { // paper rounds with 365-day years
		t.Fatalf("VFTP = %v, want ≈ 74,825", got)
	}
	// With 365-day years the match is closer.
	got = FromCPU(1435*365*SecondsPerDay, 7*SecondsPerDay)
	if math.Abs(got-74825) > 1 {
		t.Fatalf("VFTP (365-day years) = %v, want 74,825", got)
	}
}

func TestFromCPUPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromCPU(1, 0)
}

func TestFromWeeklyCPU(t *testing.T) {
	weekly := []float64{7 * SecondsPerDay, 14 * SecondsPerDay}
	s := FromWeeklyCPU(weekly)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
	if s.Y[0] != 1 || s.Y[1] != 2 {
		t.Fatalf("series = %v", s.Y)
	}
}

func TestDedicatedEquivalentTable2(t *testing.T) {
	// Table 2: 16,450 VFTP / 5.43 = 3,029 dedicated processors;
	// 26,248 / 5.43 = 4,833.
	if got := DedicatedEquivalent(16450, PaperTotalFactor); math.Abs(got-3029) > 1 {
		t.Fatalf("whole period = %v, want ≈ 3029", got)
	}
	if got := DedicatedEquivalent(26248, PaperTotalFactor); math.Abs(got-4833) > 1 {
		t.Fatalf("full power = %v, want ≈ 4833", got)
	}
}

func TestDedicatedEquivalentWeekWritten(t *testing.T) {
	// §6: 74,825 VFTP / 3.96 ⇒ ≈ 18,895 Opteron processors.
	got := DedicatedEquivalent(74825, PaperSpeedDown)
	if math.Abs(got-18895) > 1 {
		t.Fatalf("equivalent = %v, want ≈ 18,895", got)
	}
}

func TestDedicatedEquivalentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DedicatedEquivalent(1, 0)
}

func TestPaperFactorsConsistent(t *testing.T) {
	// 5.43 = 3.96 × 1.37 (within rounding).
	if math.Abs(PaperSpeedDown*PaperRedundancy-PaperTotalFactor) > 0.01 {
		t.Fatalf("3.96 × 1.37 = %v ≠ 5.43", PaperSpeedDown*PaperRedundancy)
	}
}

func TestPaperTable2(t *testing.T) {
	rows := PaperTable2()
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if math.Abs(rows[0].Dedicated-3029) > 1 || math.Abs(rows[1].Dedicated-4833) > 1 {
		t.Fatalf("Table 2 = %+v", rows)
	}
	if rows[0].String() == "" || rows[1].String() == "" {
		t.Fatal("empty row render")
	}
}
