// Package volunteer models the volunteer side of World Community Grid: the
// device population, its compute behaviour, and the run-time accounting
// quirks that produce the paper's measured slow-down.
//
// §6 of the paper explains why a workunit that needs t seconds on the
// reference Opteron 2 GHz consumes on average 3.96·t of *reported* run time
// on the grid (5.43·t including redundant copies):
//
//   - the UD agent measures wall-clock time, not process CPU time;
//   - the agent is capped at 60 % CPU by default (the throttle);
//   - the research application runs at the lowest priority, so any other
//     use of the computer displaces it (≲ 50 % of elapsed time in practice);
//   - volunteer devices are on average slower than the reference processor,
//     and the screensaver itself consumes cycles.
//
// A Host carries a SpeedDown factor — the product of those causes — sampled
// from a calibrated distribution whose mean is the paper's 3.96. Hosts also
// abandon work (producing timeouts and late results) and occasionally
// return invalid results, which drives the server's redundancy factor.
//
// # Behavior profiles
//
// By default every host draws the same flat error and abandon
// probabilities. HostConfig.Profiles instead partitions the joining
// population into weighted cohorts (see BehaviorProfile in profile.go):
// per-cohort error rates, saboteur cohorts whose hosts turn permanently
// bad (correlated invalid results — the adversary the middleware's
// adaptive replication defends against), and diurnal cohorts that
// compute only during a daily online window. A host resolves its cohort
// once, at init, from its own random stream; the per-task hot loop reads
// plain fields, and an unprofiled population consumes exactly the
// pre-profile random stream, bit for bit. Profile state is part of host
// init, so pooled hosts (see the Reset contract below) resample it
// exactly as fresh hosts would.
//
// # Multi-project work fetch
//
// A host talks to the project side through the WorkSource interface
// (worksource.go). A single-project population binds the *wcg.Server
// directly — byte-identical to the pre-interface code. On a shared
// multi-project grid (NewMuxPopulation) every host instead owns a MuxPort
// over the shared Mux attachment table (mux.go): each fetch goes to the
// attached project the host owes the most time to under BOINC-style
// short-term debt, with per-host seeded tie-breaks, so every project
// receives its configured resource share of each host's time and an idle
// project yields its slice. The port lives inside the Host struct and is
// re-armed in place when a pooled host respawns.
//
// # Reset contract
//
// Population.Reset rearms a population for another run on the same
// (freshly reset) engine and server. The Host structs of the previous run
// are retained in a pool and reinitialized in place as the new run spawns
// hosts — same struct, same bound method values, freshly sampled
// behaviour — so the steady state of a pooled run context allocates no
// per-host memory. Everything observable (active count, join counter,
// per-host state) is reinitialized exactly as a fresh NewPopulation +
// NewHost sequence would produce; *Host pointers obtained before the
// Reset alias the recycled structs and must be dropped.
package volunteer

import (
	"math"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wcg"
)

// Speed-down decomposition constants (§6). Their product is the calibrated
// mean slow-down; the ablation bench switches them off one at a time.
const (
	// UDThrottleFactor is the wall-time inflation of the default 60 % CPU
	// cap of the UD agent: 1/0.6.
	UDThrottleFactor = 1.0 / 0.6
	// PriorityFactor is the inflation from running at the lowest priority
	// on a shared machine (other processes displace the research app).
	PriorityFactor = 1.32
	// HardwareFactor is the inflation from volunteer devices being slower
	// on average than an Opteron 2 GHz (screensaver overhead included).
	HardwareFactor = 1.80
)

// MeanSpeedDown is the calibrated mean reported-time inflation, the paper's
// measured 3.96.
const MeanSpeedDown = UDThrottleFactor * PriorityFactor * HardwareFactor // ≈ 3.96

// AccountingMode selects how the agent measures the run time it reports —
// the middleware difference the paper's conclusion discusses: phase I ran
// on the UD agent only, phase II will run on BOINC only, and "there exists
// differences between the way the two middleware systems account for
// run-time".
type AccountingMode int

const (
	// UDWallClock reports elapsed wall-clock time while the task is
	// loaded (phase I): throttle idle and priority displacement inflate
	// the figure.
	UDWallClock AccountingMode = iota
	// BOINCCPUTime reports actual process CPU time (phase II): only the
	// device's hardware slowness remains in the figure.
	BOINCCPUTime
)

// HostConfig tunes host behaviour.
type HostConfig struct {
	// MeanSpeedDown is the mean of the per-host speed-down distribution.
	MeanSpeedDown float64
	// SpeedDownSigma is the log-normal spread of per-host speed-down.
	SpeedDownSigma float64
	// AbandonProb is the per-task probability that the volunteer kills or
	// shelves the task so long that the server deadline passes.
	AbandonProb float64
	// LateReturnProb is, given abandonment, the probability the result
	// still comes back eventually (long-offline devices reconnecting,
	// §5.1) rather than vanishing.
	LateReturnProb float64
	// ErrorProb is the per-task probability of returning an invalid result.
	ErrorProb float64
	// IdleRetry is how long a host waits before re-asking when the server
	// had no work.
	IdleRetry float64
	// LateDelayMax bounds the extra delay of a late return beyond the
	// deadline.
	LateDelayMax float64
	// Accounting selects the agent's run-time measurement (§8).
	Accounting AccountingMode
	// WorkBuffer is how many assignments the agent caches locally
	// (BOINC's connect-interval behaviour). 0 or 1 = fetch one at a time.
	// Larger buffers smooth over server outages but age tasks toward
	// their deadline while they queue on the device.
	WorkBuffer int
	// HardwareTrendPerWeek is the relative speed gain of newly joining
	// devices per week since the simulation epoch ("there are always new
	// members that join the grid with brand new machines", §5.1).
	HardwareTrendPerWeek float64
	// Profiles partitions the joining population into weighted behavior
	// cohorts (per-cohort error rates, saboteurs, diurnal availability).
	// Empty means every host follows the flat fields above, exactly as
	// before profiles existed.
	Profiles []BehaviorProfile
	// OnSaboteurTurn, if non-nil, is invoked once per saboteur host at the
	// moment it turns permanently bad — the run-trace hook for adversarial
	// onsets. Read-only with respect to the model; excluded from JSON so
	// marshaled configurations are unaffected.
	OnSaboteurTurn func(id int, at sim.Time) `json:"-"`
}

// DefaultHostConfig mirrors the production campaign.
func DefaultHostConfig() HostConfig {
	return HostConfig{
		MeanSpeedDown:  MeanSpeedDown,
		SpeedDownSigma: 0.40,
		AbandonProb:    0.06,
		LateReturnProb: 0.55,
		ErrorProb:      0.015,
		IdleRetry:      6 * sim.Hour,
		LateDelayMax:   10 * sim.Day,
		Accounting:     UDWallClock,
		// ~0.2 %/week ≈ 11 %/year, a conservative mid-2000s desktop
		// refresh trend.
		HardwareTrendPerWeek: 0.002,
	}
}

// Host is one volunteer device attached to the grid.
type Host struct {
	ID        int
	JoinedAt  sim.Time
	SpeedDown float64 // wall-time inflation vs the reference processor
	// Hardware is the part of SpeedDown attributable to the device itself
	// (≥ 1): the BOINC agent's CPU-time accounting reports RefSeconds ×
	// Hardware, and the device's benchmark score is 1/Hardware of the
	// reference score.
	Hardware float64

	cfg    HostConfig
	engine *sim.Engine
	server WorkSource   // single-project: the *wcg.Server itself; multi: &h.port
	retry  RetryAdvisor // server's optional backoff advisor; nil = flat IdleRetry
	port   MuxPort      // by value: a pooled host re-arms it in place, no allocation
	src    rng.Source   // by value: a pooled host reseeds in place, no allocation

	// Effective behavior, resolved at init from the flat config or the
	// host's drawn cohort (see BehaviorProfile).
	Profile     int     // index into cfg.Profiles; -1 without profiles
	errorProb   float64 // per-task invalid-result (or saboteur-turn) probability
	abandonProb float64 // per-task abandon probability
	saboteur    bool    // errors are correlated: the first one turns the host
	turned      bool    // saboteur gone bad: every further result is invalid
	diurnal     bool    // computes only during a daily online window
	phase       float64 // diurnal window start offset within the day
	onlineSpan  float64 // diurnal window length, seconds

	stopped  bool    // told to stop after the current task
	busy     bool    // currently computing
	Done     int     // tasks returned on time
	CPUSpent float64 // reported run time accumulated

	// Work buffer: fetched but not yet started assignments, consumed from
	// cacheHead so the backing array is reused instead of reallocated on
	// every fetch.
	cache     []*wcg.Assignment
	cacheHead int

	// The fetch-compute-report loop schedules through these bound method
	// values and the cur* fields, so the steady state allocates no closure
	// per task (only the rare abandoned-late-return path captures state).
	requestFn   func()
	taskDoneFn  func()
	cur         *wcg.Assignment
	curOutcome  wcg.Outcome
	curReported float64
}

// NewHost creates a host with behaviour sampled from cfg. It does not start
// requesting work until Start is called. The host copies r's state and
// draws from its own embedded stream from then on; the caller must not
// keep drawing from r on the host's behalf. server is usually a
// *wcg.Server bound directly; a multi-project population instead gives
// each host its own mux port (see Population).
func NewHost(id int, engine *sim.Engine, server WorkSource, cfg HostConfig, r *rng.Source) *Host {
	h := &Host{src: *r}
	h.requestFn = h.requestWork
	h.taskDoneFn = h.taskDone
	h.init(id, engine, server, cfg)
	return h
}

// init (re)initializes a host struct whose src stream has already been
// seeded: the construction path shared by NewHost and the population's
// host pool. It samples behaviour exactly as a fresh host would and zeroes
// all run state, so a recycled struct is indistinguishable from a new one.
// The requestFn/taskDoneFn method values are bound once per struct (in
// NewHost or Population spawn) and stay valid across reinitializations —
// they close over the receiver pointer, which does not change.
func (h *Host) init(id int, engine *sim.Engine, server WorkSource, cfg HostConfig) {
	if cfg.MeanSpeedDown <= 0 {
		panic("volunteer: mean speed-down must be positive")
	}
	sigma := cfg.SpeedDownSigma
	// The paper's 3.96 is a throughput-weighted observation (total CPU
	// consumed / results returned, against the packaged mean): hosts with a
	// small speed-down return more results per unit time, so the observed
	// inflation is the population's harmonic mean. LogNormal(mu, sigma) has
	// harmonic mean exp(mu - sigma²/2); solve mu so that equals
	// cfg.MeanSpeedDown.
	mu := math.Log(cfg.MeanSpeedDown) + sigma*sigma/2
	sd := h.src.LogNormal(mu, sigma)
	// Devices joining later are faster (grid turnover, §5.1).
	if cfg.HardwareTrendPerWeek > 0 {
		weeks := engine.Now() / sim.Week
		sd /= 1 + cfg.HardwareTrendPerWeek*weeks
	}
	if sd < 1 {
		sd = 1 // a volunteer device cannot beat its own wall clock
	}
	hw := sd / (UDThrottleFactor * PriorityFactor)
	if hw < 1 {
		hw = 1
	}
	h.ID = id
	h.JoinedAt = engine.Now()
	h.SpeedDown = sd
	h.Hardware = hw
	h.cfg = cfg
	h.engine = engine
	h.server = server
	h.retry, _ = server.(RetryAdvisor)
	// Resolve the effective behavior: the flat config draws nothing extra
	// (bit-for-bit the pre-profile stream); a profiled population draws
	// the cohort (and, for diurnal cohorts, the phase) from the host's
	// own stream.
	h.Profile = -1
	h.errorProb = cfg.ErrorProb
	h.abandonProb = cfg.AbandonProb
	h.saboteur = false
	h.turned = false
	h.diurnal = false
	h.phase = 0
	h.onlineSpan = 0
	if len(cfg.Profiles) > 0 {
		h.Profile = h.pickProfile(cfg.Profiles)
		p := &cfg.Profiles[h.Profile]
		h.errorProb = p.ErrorProb
		if p.AbandonProb >= 0 {
			h.abandonProb = p.AbandonProb
		}
		h.saboteur = p.Saboteur
		if p.Diurnal {
			h.diurnal = true
			h.onlineSpan = p.OnlineHours * sim.Hour
			if h.onlineSpan <= 0 {
				h.onlineSpan = DefaultOnlineHours * sim.Hour
			}
			if h.onlineSpan > sim.Day {
				h.onlineSpan = sim.Day
			}
			h.phase = h.src.Float64() * sim.Day
		}
	}
	h.stopped = false
	h.busy = false
	h.Done = 0
	h.CPUSpent = 0
	clear(h.cache)
	h.cache = h.cache[:0]
	h.cacheHead = 0
	h.cur = nil
	h.curOutcome = 0
	h.curReported = 0
}

// Start begins the fetch-compute-report loop.
func (h *Host) Start() { h.requestWork() }

// Stop tells the host to cease after its current task (device retired or
// reassigned to another project).
func (h *Host) Stop() { h.stopped = true }

// Stopped reports whether the host has been told to stop.
func (h *Host) Stopped() bool { return h.stopped }

// Busy reports whether the host is computing a task right now.
func (h *Host) Busy() bool { return h.busy }

// Port returns the host's work-fetch mux port, or nil when the host is
// bound to a single project server directly.
func (h *Host) Port() *MuxPort {
	if h.port.mux == nil {
		return nil
	}
	return &h.port
}

func (h *Host) requestWork() {
	if h.stopped {
		return
	}
	buffer := h.cfg.WorkBuffer
	if buffer < 1 {
		buffer = 1
	}
	if h.cacheHead > 0 {
		// Compact the unconsumed tail to the front so the buffer stays
		// bounded by WorkBuffer and the backing array is reused.
		n := copy(h.cache, h.cache[h.cacheHead:])
		for i := n; i < len(h.cache); i++ {
			h.cache[i] = nil
		}
		h.cache = h.cache[:n]
		h.cacheHead = 0
	}
	// cacheHead is 0 here: the compaction above reset it.
	for len(h.cache) < buffer {
		a := h.server.RequestWork()
		if a == nil {
			break
		}
		h.cache = append(h.cache, a)
	}
	if len(h.cache) == 0 {
		d := h.cfg.IdleRetry
		if h.retry != nil {
			// The server's advisor (the fault plane) may stretch the wait:
			// exponential backoff during an outage, smear after maintenance.
			d = h.retry.FetchRetryDelay(h.ID, d)
		}
		h.engine.ScheduleAfterCall(d, h.requestFn, sim.Call{Kind: sim.CallHostRequest, A0: int32(h.ID)})
		return
	}
	if h.busy {
		return // already crunching; the cache refill was all we needed
	}
	a := h.cache[0]
	h.cache[0] = nil
	h.cacheHead = 1
	h.busy = true
	// The task physically occupies the device for wall seconds; what the
	// agent *reports* depends on its accounting mode.
	wall := a.WU.WU.RefSeconds * h.SpeedDown
	reported := wall
	if h.cfg.Accounting == BOINCCPUTime {
		reported = a.WU.WU.RefSeconds * h.Hardware
	}

	if h.src.Bernoulli(h.abandonProb) {
		// The volunteer kills or shelves the task: the deadline passes on
		// the server side. With some probability the device reconnects
		// much later and the (by then redundant) result is still counted.
		if h.src.Bernoulli(h.cfg.LateReturnProb) {
			delay := h.server.DeadlineFor(a) + h.src.Float64()*h.cfg.LateDelayMax
			h.engine.ScheduleAfterCall(delay, h.lateReturnFn(a, reported),
				sim.Call{Kind: sim.CallHostLate, A0: int32(h.ID), A1: wcg.AssignmentIndex(a), F0: reported})
		}
		// Either way this host moves on quickly (it is the task that
		// stalls, not the device).
		h.busy = false
		h.engine.ScheduleAfterCall(h.cfg.IdleRetry, h.requestFn, sim.Call{Kind: sim.CallHostRequest, A0: int32(h.ID)})
		return
	}

	h.cur = a
	h.curReported = reported
	h.curOutcome = wcg.OutcomeValid
	if h.turned || h.src.Bernoulli(h.errorProb) {
		h.curOutcome = wcg.OutcomeInvalid
		if h.saboteur && !h.turned {
			// Correlated errors: the saboteur has turned, and every
			// result from here on is invalid.
			h.turned = true
			if h.cfg.OnSaboteurTurn != nil {
				h.cfg.OnSaboteurTurn(h.ID, h.engine.Now())
			}
		}
	}
	delay := wall
	if h.diurnal {
		// A day-cycle device only computes inside its online window, so
		// the task's elapsed time stretches across the offline gaps.
		delay = diurnalDelay(h.engine.Now(), wall, h.phase, h.onlineSpan)
	}
	h.engine.ScheduleAfterCall(delay, h.taskDoneFn, sim.Call{Kind: sim.CallHostTaskDone, A0: int32(h.ID)})
}

// lateReturnFn builds the late-upload closure for an abandoned task — the
// §5.1 long-offline straggler. Split out of requestWork so snapshot
// adoption can rebuild the identical closure, bound to the adopting
// context's host and assignment, from a CallHostLate descriptor.
func (h *Host) lateReturnFn(a *wcg.Assignment, reported float64) func() {
	return func() {
		h.CPUSpent += reported
		// A turned saboteur's results are invalid however they
		// arrive — the late-return path must not hand a bad host
		// valid results to rebuild validation trust with.
		oc := wcg.OutcomeValid
		if h.turned {
			oc = wcg.OutcomeInvalid
		}
		h.server.CompleteFrom(a, oc, reported, h.ID)
	}
}

// taskDone reports the finished task and fetches the next one.
func (h *Host) taskDone() {
	a, outcome, reported := h.cur, h.curOutcome, h.curReported
	h.cur = nil
	h.busy = false
	h.Done++
	h.CPUSpent += reported
	h.server.CompleteFrom(a, outcome, reported, h.ID)
	h.requestWork()
}
