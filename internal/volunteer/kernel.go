// The deterministic sharded time-window kernel: the execution half of the
// mega-grid data plane (see plane.go for the SoA layout).
//
// # Shard time-window invariant
//
// Host continuation events (task completions, idle retries, late returns)
// are not stored in the central sim.Engine heap. They live in per-shard
// window calendars: shard = host mod K, window = floor(time / W). The
// window width W is min(IdleRetry, half the target task wall time), so
// almost every continuation lands one or more windows ahead of the window
// that schedules it; the rare event that falls due inside the current
// window goes to a small overlay heap instead, which makes W a pure
// performance knob — correctness holds for any W > 0.
//
// At each window barrier the K shard workers run in parallel, touching
// only their own hosts (disjoint array ranges) and their own buckets:
// they sort the window's bucket by (time, seq) and refill the consumed
// per-host decision transcripts (plus, before a weekly tick, the spawn
// slot pool). Between barriers a single goroutine merges the K sorted
// bucket heads, the overlay heap and the engine's own heap in global
// ascending (time, seq) order and executes the model serially.
//
// # Byte-identity with the sequential kernel
//
// The legacy single-heap kernel breaks time ties FIFO by a sequence number
// assigned at scheduling time. The sharded kernel draws its sequence
// numbers from the same engine counter (Engine.TakeSeq) at exactly the
// moments the legacy code would have scheduled, and mirrors the engine's
// live/executed/clock accounting through ExternalSchedule/ExternalExecute.
// Every model draw comes from the same per-host stream positions (see the
// decision transcripts in plane.go). Shard count K therefore changes only
// WHO precomputes a value, never the value or the execution order: reports
// are byte-identical for K=1, K=N and the legacy kernel, fresh and pooled
// (golden-hash tests in internal/project pin all three).
package volunteer

import (
	"math"
	"slices"
	"sync"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wcg"
)

// planeEvent kinds.
const (
	evFetch uint8 = iota // idle retry: run the fetch loop again
	evDone               // current task completes on time
	evLate               // abandoned task returns after its deadline
)

// planeEvent is one host continuation in a shard calendar.
type planeEvent struct {
	at       sim.Time
	seq      uint64
	a        *wcg.Assignment // evLate only
	reported float64         // evLate only
	host     int32
	kind     uint8
}

func planeEventLess(a, b planeEvent) int {
	switch {
	case a.at != b.at:
		if a.at < b.at {
			return -1
		}
		return 1
	case a.seq < b.seq:
		return -1
	case a.seq > b.seq:
		return 1
	}
	return 0
}

// ShardKernel runs a host fleet in SoA form over K deterministic shard
// calendars merged against a sim.Engine. It is the drop-in mega-grid
// replacement for Population + per-Host event scheduling on a
// single-project campaign.
type ShardKernel struct {
	eng    *sim.Engine
	server WorkSource
	retry  RetryAdvisor // server's optional backoff advisor; nil = flat IdleRetry
	cfg    HostConfig
	r      *rng.Source // population stream: host seeds only

	mu, sigma float64 // speed-down LogNormal parameters (see Host.init)
	buffer    int     // effective WorkBuffer (≥ 1)
	shards    int
	window    float64

	// SoA host plane, indexed by host ID (see plane.go).
	flags       []uint8
	speedDown   []float64
	src         []rng.Source
	dec         []decision
	errorProb   []float64
	abandonProb []float64
	phase       []float64
	onlineSpan  []float64
	joinedAt    []sim.Time
	hardware    []float64
	done        []int32
	cpuSpent    []float64
	cur         []*wcg.Assignment
	curOutcome  []wcg.Outcome
	curReported []float64
	cacheLen    []int32
	cache       []*wcg.Assignment // flat slab, buffer slots per host

	active      int
	firstActive int // hosts[:firstActive] are all stopped (stop-oldest cursor)

	// Spawn-slot pool (see plane.go), consumed FIFO from poolHead.
	pool     []spawnSlot
	poolHead int
	seedBuf  []uint64

	// SpawnHint, set by the campaign, predicts how many hosts the next
	// weekly tick will spawn, so prepWindow can top the slot pool up in
	// parallel before the tick runs. Overprediction is harmless (slots
	// carry pre-drawn seeds; nothing else reads the population stream);
	// nil or underprediction falls back to inline serial builds.
	SpawnHint func(week float64) int

	// Shard calendars: buckets[shard][window] holds that shard's events
	// due in [window·W, (window+1)·W), appended unsorted during the merge
	// and sorted at the window barrier. Merged windows recycle their
	// backing arrays through freeB.
	buckets [][][]planeEvent
	freeB   [][][]planeEvent
	refill  [][]int32 // hosts whose decision tuple was consumed this window

	win     int      // current window index
	winEnd  sim.Time // (win+1)·window
	armed   bool     // first RunUntil preps window 0 lazily
	prevWin int
	curBuf  [][]planeEvent // per-shard current-window sorted slice
	cursor  []int          // per-shard read index into curBuf
	overlay []planeEvent   // min-heap of in-window insertions

	livePlane int // plane events scheduled and not yet executed
	peekSrc   int // peekPlane result: shard index, or overlaySrc / noneSrc
}

const (
	overlaySrc = -1
	noneSrc    = -2
)

// NewShardKernel builds an empty sharded fleet bound to the engine and the
// project work source. shards is the worker count K (≥ 1); window is the
// barrier width W in seconds (a performance knob — any positive value is
// correct; see the package notes above). The kernel copies r's state and
// draws host seeds from its own stream from then on.
func NewShardKernel(engine *sim.Engine, server WorkSource, cfg HostConfig, r *rng.Source, shards int, window float64) *ShardKernel {
	k := &ShardKernel{}
	k.Reset(engine, server, cfg, r, shards, window)
	return k
}

// Reset rearms the kernel for another run on a freshly reset engine and
// server: zero hosts joined, new configuration and seed stream, every
// backing array retained. The pooled counterpart of Population.Reset.
func (k *ShardKernel) Reset(engine *sim.Engine, server WorkSource, cfg HostConfig, r *rng.Source, shards int, window float64) {
	if cfg.MeanSpeedDown <= 0 {
		panic("volunteer: mean speed-down must be positive")
	}
	if shards < 1 {
		panic("volunteer: shard count must be >= 1")
	}
	if !(window > 0) {
		panic("volunteer: shard window must be positive")
	}
	k.eng = engine
	k.server = server
	k.retry, _ = server.(RetryAdvisor)
	k.cfg = cfg
	k.r = r
	k.sigma = cfg.SpeedDownSigma
	k.mu = math.Log(cfg.MeanSpeedDown) + k.sigma*k.sigma/2
	k.buffer = cfg.WorkBuffer
	if k.buffer < 1 {
		k.buffer = 1
	}
	k.window = window

	k.flags = k.flags[:0]
	k.speedDown = k.speedDown[:0]
	k.src = k.src[:0]
	k.dec = k.dec[:0]
	k.errorProb = k.errorProb[:0]
	k.abandonProb = k.abandonProb[:0]
	k.phase = k.phase[:0]
	k.onlineSpan = k.onlineSpan[:0]
	k.joinedAt = k.joinedAt[:0]
	k.hardware = k.hardware[:0]
	k.done = k.done[:0]
	k.cpuSpent = k.cpuSpent[:0]
	clear(k.cur)
	k.cur = k.cur[:0]
	k.curOutcome = k.curOutcome[:0]
	k.curReported = k.curReported[:0]
	k.cacheLen = k.cacheLen[:0]
	clear(k.cache)
	k.cache = k.cache[:0]
	k.active, k.firstActive = 0, 0
	k.pool = k.pool[:0]
	k.poolHead = 0

	if shards != k.shards {
		k.shards = shards
		k.buckets = make([][][]planeEvent, shards)
		k.freeB = make([][][]planeEvent, shards)
		k.refill = make([][]int32, shards)
		k.curBuf = make([][]planeEvent, shards)
		k.cursor = make([]int, shards)
	} else {
		for sh := 0; sh < shards; sh++ {
			for w, b := range k.buckets[sh] {
				if b != nil {
					clear(b)
					k.freeB[sh] = append(k.freeB[sh], b[:0])
					k.buckets[sh][w] = nil
				}
			}
			k.refill[sh] = k.refill[sh][:0]
			k.curBuf[sh] = nil
			k.cursor[sh] = 0
		}
	}
	clear(k.overlay)
	k.overlay = k.overlay[:0]
	k.win, k.winEnd = 0, window
	k.armed = false
	k.prevWin = -1
	k.livePlane = 0
	k.peekSrc = noneSrc
	k.SpawnHint = nil
}

// scheduleHostEvent enqueues a host continuation at time `at`, drawing the
// tie-break seq and the Pending accounting from the engine exactly as an
// engine-side ScheduleAfter would.
func (k *ShardKernel) scheduleHostEvent(h int32, kind uint8, at sim.Time) {
	k.insert(planeEvent{at: at, seq: k.eng.TakeSeq(), host: h, kind: kind})
}

// scheduleLate enqueues an abandoned-late-return continuation carrying its
// assignment and reported seconds.
func (k *ShardKernel) scheduleLate(h int32, at sim.Time, a *wcg.Assignment, reported float64) {
	k.insert(planeEvent{at: at, seq: k.eng.TakeSeq(), a: a, reported: reported, host: h, kind: evLate})
}

// insert routes one event to the overlay heap (due inside the current
// window — the exact comparison, immune to division rounding at the
// boundary) or to its shard's future-window bucket.
func (k *ShardKernel) insert(ev planeEvent) {
	k.eng.ExternalSchedule()
	k.livePlane++
	if ev.at < k.winEnd {
		k.overlayPush(ev)
		return
	}
	sh := int(ev.host) % k.shards
	w := int(ev.at / k.window) // ≥ win+1: at ≥ winEnd and (win+1)·W is representable
	bs := k.buckets[sh]
	for len(bs) <= w {
		bs = append(bs, nil)
	}
	if bs[w] == nil {
		if n := len(k.freeB[sh]); n > 0 {
			bs[w] = k.freeB[sh][n-1]
			k.freeB[sh] = k.freeB[sh][:n-1]
		}
	}
	bs[w] = append(bs[w], ev)
	k.buckets[sh] = bs
}

// overlayPush / overlayPop: a plain binary min-heap on (at, seq).
func (k *ShardKernel) overlayPush(ev planeEvent) {
	q := append(k.overlay, ev)
	i := len(q) - 1
	for i > 0 {
		p := (i - 1) / 2
		if planeEventLess(q[i], q[p]) >= 0 {
			break
		}
		q[i], q[p] = q[p], q[i]
		i = p
	}
	k.overlay = q
}

func (k *ShardKernel) overlayPop() planeEvent {
	q := k.overlay
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q[n] = planeEvent{}
	q = q[:n]
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if c+1 < n && planeEventLess(q[c+1], q[c]) < 0 {
			c++
		}
		if planeEventLess(q[c], q[i]) >= 0 {
			break
		}
		q[i], q[c] = q[c], q[i]
		i = c
	}
	k.overlay = q
	return top
}

// peekPlane returns the ordering key of the earliest plane event in the
// current window (across the K sorted bucket heads and the overlay),
// remembering which source holds it for popPlane.
func (k *ShardKernel) peekPlane() (at sim.Time, seq uint64, ok bool) {
	best := noneSrc
	var bt sim.Time
	var bs uint64
	for sh := 0; sh < k.shards; sh++ {
		c := k.cursor[sh]
		if c >= len(k.curBuf[sh]) {
			continue
		}
		ev := &k.curBuf[sh][c]
		if best == noneSrc || ev.at < bt || (ev.at == bt && ev.seq < bs) {
			best, bt, bs = sh, ev.at, ev.seq
		}
	}
	if len(k.overlay) > 0 {
		ov := &k.overlay[0]
		if best == noneSrc || ov.at < bt || (ov.at == bt && ov.seq < bs) {
			best, bt, bs = overlaySrc, ov.at, ov.seq
		}
	}
	k.peekSrc = best
	return bt, bs, best != noneSrc
}

// popPlane removes and returns the event peekPlane found.
func (k *ShardKernel) popPlane() planeEvent {
	if k.peekSrc == overlaySrc {
		return k.overlayPop()
	}
	sh := k.peekSrc
	ev := k.curBuf[sh][k.cursor[sh]]
	k.cursor[sh]++
	return ev
}

// exec runs one plane event through the host model, mirroring the engine's
// clock/executed accounting first (exactly as Step orders it).
func (k *ShardKernel) exec(ev planeEvent) {
	k.eng.ExternalExecute(ev.at)
	k.livePlane--
	switch ev.kind {
	case evFetch:
		k.fetch(ev.host)
	case evDone:
		k.taskDone(ev.host)
	default:
		k.lateReturn(ev.host, ev.a, ev.reported)
	}
}

// runParallel fans fn(0..shards-1) over goroutines, running shard 0 on the
// caller. Shards touch disjoint host-ID ranges and their own buckets, so
// the barrier is the only synchronization the data plane needs.
func (k *ShardKernel) runParallel(fn func(sh int)) {
	if k.shards == 1 {
		fn(0)
		return
	}
	var wg sync.WaitGroup
	wg.Add(k.shards - 1)
	for sh := 1; sh < k.shards; sh++ {
		go func(sh int) {
			defer wg.Done()
			fn(sh)
		}(sh)
	}
	fn(0)
	wg.Wait()
}

// prepWindow is the window barrier: recycle the merged window, top up the
// spawn pool if a weekly tick falls inside the new window, then in
// parallel refill consumed decision tuples and sort the new window's
// buckets, and finally arm the merge cursors.
func (k *ShardKernel) prepWindow(w int) {
	for sh := 0; sh < k.shards; sh++ {
		if prev := k.prevWin; prev >= 0 && prev < len(k.buckets[sh]) {
			if b := k.buckets[sh][prev]; b != nil {
				clear(b)
				k.freeB[sh] = append(k.freeB[sh], b[:0])
				k.buckets[sh][prev] = nil
			}
		}
	}
	k.prevWin = w
	k.win = w
	k.winEnd = float64(w+1) * k.window

	if k.SpawnHint != nil {
		wStart := float64(w) * k.window
		week := math.Ceil(wStart / sim.Week)
		if tick := week * sim.Week; tick >= wStart && tick < k.winEnd {
			if need := k.SpawnHint(week) - (len(k.pool) - k.poolHead); need > 0 {
				k.topUpPool(need)
			}
		}
	}

	work := false
	for sh := 0; sh < k.shards; sh++ {
		if len(k.refill[sh]) > 0 || k.bucketLen(sh, w) > 1 {
			work = true
			break
		}
	}
	if work {
		k.runParallel(func(sh int) {
			for _, h := range k.refill[sh] {
				k.dec[h] = computeDecision(&k.src[h], k.errorProb[h], k.abandonProb[h],
					k.cfg.LateReturnProb, k.flags[h]&hfTurned != 0, k.flags[h]&hfSaboteur != 0)
			}
			if b := k.bucket(sh, w); len(b) > 1 {
				slices.SortFunc(b, planeEventLess)
			}
		})
	}
	for sh := 0; sh < k.shards; sh++ {
		k.refill[sh] = k.refill[sh][:0]
		k.curBuf[sh] = k.bucket(sh, w)
		k.cursor[sh] = 0
	}
}

func (k *ShardKernel) bucket(sh, w int) []planeEvent {
	if w < len(k.buckets[sh]) {
		return k.buckets[sh][w]
	}
	return nil
}

func (k *ShardKernel) bucketLen(sh, w int) int { return len(k.bucket(sh, w)) }

// topUpPool extends the spawn-slot pool by n slots: seeds drawn serially
// from the population stream (preserving the legacy draw order — nothing
// else reads it), slot transcripts built in parallel.
func (k *ShardKernel) topUpPool(n int) {
	if k.poolHead > 0 {
		m := copy(k.pool, k.pool[k.poolHead:])
		k.pool = k.pool[:m]
		k.poolHead = 0
	}
	k.seedBuf = k.seedBuf[:0]
	for i := 0; i < n; i++ {
		k.seedBuf = append(k.seedBuf, k.r.Uint64())
	}
	base := len(k.pool)
	for i := 0; i < n; i++ {
		k.pool = append(k.pool, spawnSlot{})
	}
	slots := k.pool[base:]
	k.runParallel(func(sh int) {
		for i := sh; i < n; i += k.shards {
			k.buildSlot(&slots[i], k.seedBuf[i])
		}
	})
}

// RunUntil merges plane and engine events in global ascending (time, seq)
// order, executing everything with time ≤ deadline and advancing the clock
// to the deadline, exactly as Engine.RunUntil does for a single heap.
// Callable repeatedly with growing deadlines (the campaign runs the phase
// horizon, then the straggler drain).
func (k *ShardKernel) RunUntil(deadline sim.Time) {
	e := k.eng
	if !k.armed {
		k.prepWindow(k.win)
		k.armed = true
	}
	for {
		pt, pseq, pok := k.peekPlane()
		et, eseq, eok := e.Peek()
		if pok && (!eok || pt < et || (pt == et && pseq < eseq)) {
			if pt > deadline {
				break
			}
			ev := k.popPlane()
			k.exec(ev)
			continue
		}
		if eok && et < k.winEnd {
			if et > deadline {
				break
			}
			e.Step()
			continue
		}
		// Current window exhausted on both calendars (any engine head
		// lies in a later window). Advance the window barrier — jumping
		// straight to the engine head's window when no plane events
		// remain anywhere — or stop at the deadline.
		if k.livePlane == 0 {
			if !eok || et > deadline {
				break
			}
			k.prepWindow(int(et / k.window))
			continue
		}
		if k.winEnd > deadline {
			break
		}
		k.prepWindow(k.win + 1)
	}
	e.AdvanceTo(deadline)
}
