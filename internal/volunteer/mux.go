package volunteer

import (
	"repro/internal/rng"
	"repro/internal/wcg"
)

// Mux is the host-side work-fetch multiplexer of a multi-project grid: the
// shared attachment table mapping project index → (server, resource share).
// It models what BOINC calls resource-share scheduling — every volunteer
// host splits its compute time across the projects it is attached to in
// proportion to their shares — except that here the arbitration lives in
// one place instead of in every agent's config file.
//
// The Mux itself holds no per-host state: each host owns a MuxPort, which
// carries that host's short-term debt vector and seeded tie-break stream.
// Attachment order is project identity — Attach stamps the server with its
// index, and every Assignment the server issues carries that index, which
// is how a port routes completions back to the right project.
//
// Determinism: attachments are fixed before the first host spawns; ports
// draw only from their own streams. The whole layer is a pure function of
// (attachment table, host seeds, event order), so multi-project runs are
// as reproducible as single-project ones.
type Mux struct {
	atts []attachment

	// debts is the dense per-host debt plane: host id × projects slab,
	// each port's vector a reused window into it. One allocation per
	// fleet instead of one per host — the mega-grid SoA discipline
	// (plane.go) applied to the multiplexer.
	debts []float64
}

type attachment struct {
	server *wcg.Server
	weight float64 // configured (raw) share
	share  float64 // normalized: Σ share = 1
}

// NewMux returns an empty multiplexer; Attach the project servers before
// any host spawns.
func NewMux() *Mux { return &Mux{} }

// Attach registers a project server under the given resource share (any
// positive weight; shares are normalized to sum to 1 across attachments)
// and returns its project index. The server is stamped with the index so
// its assignments route back through the ports.
func (m *Mux) Attach(s *wcg.Server, share float64) int {
	if s == nil {
		panic("volunteer: Attach(nil server)")
	}
	if share <= 0 {
		panic("volunteer: resource share must be positive")
	}
	idx := len(m.atts)
	s.SetProject(idx)
	m.atts = append(m.atts, attachment{server: s, weight: share})
	var sum float64
	for i := range m.atts {
		sum += m.atts[i].weight
	}
	for i := range m.atts {
		m.atts[i].share = m.atts[i].weight / sum
	}
	return idx
}

// Reset drops all attachments so a pooled grid can re-attach its (freshly
// reset) servers for the next run. The backing arrays (attachments and the
// per-host debt slab) are retained.
func (m *Mux) Reset() {
	m.atts = m.atts[:0]
	m.debts = m.debts[:0]
}

// debtFor returns host id's zeroed debt vector: a full-capacity window into
// the dense slab, grown on demand as the fleet spawns. Hosts (re)arm their
// ports in ascending id order, so growth is an amortized append.
func (m *Mux) debtFor(id int) []float64 {
	n := len(m.atts)
	lo := id * n
	for len(m.debts) < lo+n {
		m.debts = append(m.debts, 0)
	}
	v := m.debts[lo : lo+n : lo+n]
	clear(v)
	return v
}

// Projects returns the number of attached project servers.
func (m *Mux) Projects() int { return len(m.atts) }

// Share returns project i's normalized resource share (Σ over projects = 1).
func (m *Mux) Share(i int) float64 { return m.atts[i].share }

// Server returns project i's server.
func (m *Mux) Server(i int) *wcg.Server { return m.atts[i].server }

// MuxPort is one host's view of the multiplexed grid: a WorkSource that
// arbitrates each fetch across the attached projects by short-term debt.
//
// Debt is the BOINC short-term-debt rule in reference seconds: when a fetch
// takes an assignment of w reference seconds from project c, every project
// currently offering work is credited its share of w (shares renormalized
// over the offering projects, so an idle tenant yields its slice instead of
// banking claim on the future), and c is debited the full w. Debts
// therefore always sum to zero per host, the next fetch goes to the
// highest-debt project with work, and ties break by the port's own seeded
// stream — deterministic, independent of other hosts.
type MuxPort struct {
	mux  *Mux
	debt []float64 // host's window into the mux's dense debt slab
	r    rng.Source
}

// init (re)arms host id's port: debts zeroed, the tie-break stream
// reseeded. The debt vector is the host's slice of the mux's dense slab
// (see Mux.debtFor), so arming a port allocates nothing once the slab has
// grown to the fleet size.
func (p *MuxPort) init(m *Mux, id int, seed uint64) {
	p.mux = m
	rng.NewInto(&p.r, seed)
	p.debt = m.debtFor(id)
}

// Debts returns a copy of the port's per-project short-term debts
// (diagnostics and invariant tests; the hot path never calls it).
func (p *MuxPort) Debts() []float64 {
	out := make([]float64, len(p.debt))
	copy(out, p.debt)
	return out
}

// DebtSpread returns max−min of the port's per-project debts without
// allocating: the per-host arbitration imbalance the obs metrics registry
// samples (a fleet whose spreads stay near one workunit's reference
// seconds is arbitrating fairly).
func (p *MuxPort) DebtSpread() float64 {
	if len(p.debt) == 0 {
		return 0
	}
	lo, hi := p.debt[0], p.debt[0]
	for _, d := range p.debt[1:] {
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return hi - lo
}

// RequestWork fetches one assignment from the attached project this host
// owes the most time to, among those with work available. Returns nil when
// no attached project has work.
func (p *MuxPort) RequestWork() *wcg.Assignment {
	atts := p.mux.atts
	best, ties := -1, 0
	var bestDebt float64
	for i := range atts {
		if !atts[i].server.HasWork() {
			continue
		}
		d := p.debt[i]
		switch {
		case best < 0 || d > bestDebt:
			best, bestDebt, ties = i, d, 1
		case d == bestDebt:
			// Seeded reservoir tie-break: each tied project wins with
			// equal probability, deterministically in the port's stream.
			ties++
			if p.r.Uint64()%uint64(ties) == 0 {
				best = i
			}
		}
	}
	if best < 0 {
		return nil
	}
	a := atts[best].server.RequestWork()
	if a == nil {
		return nil // HasWork raced a reentrant drain; treat as idle
	}
	// Short-term debt update over the projects that were offering work:
	// renormalize their shares, credit each its slice of the fetched
	// reference seconds, debit the chosen project in full. Zero-sum.
	w := a.WU.WU.RefSeconds
	var offered float64
	for i := range atts {
		if i == best || atts[i].server.HasWork() {
			offered += atts[i].share
		}
	}
	for i := range atts {
		if i == best || atts[i].server.HasWork() {
			p.debt[i] += atts[i].share / offered * w
		}
	}
	p.debt[best] -= w
	return a
}

// CompleteFrom routes the finished assignment back to the project server
// that issued it.
func (p *MuxPort) CompleteFrom(a *wcg.Assignment, outcome wcg.Outcome, cpuSeconds float64, host int) {
	p.mux.atts[a.Project()].server.CompleteFrom(a, outcome, cpuSeconds, host)
}

// DeadlineFor returns the assignment's class deadline on the server that
// issued it.
func (p *MuxPort) DeadlineFor(a *wcg.Assignment) float64 {
	return p.mux.atts[a.Project()].server.DeadlineFor(a)
}

var _ WorkSource = (*MuxPort)(nil)
