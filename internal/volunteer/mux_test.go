package volunteer

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/wcg"
	"repro/internal/workunit"
)

// muxFixture builds an engine, n quorum-1 servers preloaded with work, and
// a mux attaching them under the given weights.
func muxFixture(t *testing.T, weights []float64, wus int, refSeconds func(p, i int) float64) (*sim.Engine, *Mux) {
	t.Helper()
	engine := sim.NewEngine()
	cfg := wcg.DefaultConfig()
	cfg.InitialQuorum, cfg.SteadyQuorum, cfg.QuorumSwitchTime = 1, 1, 0
	m := NewMux()
	for p, w := range weights {
		s := wcg.NewServer(engine, cfg)
		for i := 0; i < wus; i++ {
			s.AddWorkunit(workunit.Workunit{ID: int64(i), RefSeconds: refSeconds(p, i)}, 0)
		}
		m.Attach(s, w)
	}
	return engine, m
}

func TestMuxSharesNormalized(t *testing.T) {
	_, m := muxFixture(t, []float64{2, 1, 1}, 1, func(int, int) float64 { return 3600 })
	want := []float64{0.5, 0.25, 0.25}
	var sum float64
	for i := 0; i < m.Projects(); i++ {
		if got := m.Share(i); math.Abs(got-want[i]) > 1e-12 {
			t.Errorf("share[%d] = %v, want %v", i, got, want[i])
		}
		sum += m.Share(i)
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestMuxAttachValidation(t *testing.T) {
	engine := sim.NewEngine()
	s := wcg.NewServer(engine, wcg.DefaultConfig())
	for _, bad := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("share %v should panic", bad)
				}
			}()
			NewMux().Attach(s, bad)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("nil server should panic")
			}
		}()
		NewMux().Attach(nil, 1)
	}()
}

// TestMuxPortDebtInvariants drives one port through a long fetch sequence
// over servers with varying workunit sizes and checks the two debt
// invariants after every fetch: debts sum to zero (the update is zero-sum
// by construction) and every debt stays within a small multiple of the
// largest workunit (no unbounded drift).
func TestMuxPortDebtInvariants(t *testing.T) {
	const maxRef = 4 * 3600.0
	sizes := func(p, i int) float64 { return 1800 + float64((i*7+p*13)%4)*1800/2 } // 0.5h..~1.25h, capped well under maxRef
	_, m := muxFixture(t, []float64{0.1, 0.3, 0.6}, 5000, sizes)
	var p MuxPort
	p.init(m, 0, 99)
	counts := make([]int, 3)
	for i := 0; i < 6000; i++ {
		a := p.RequestWork()
		if a == nil {
			break
		}
		counts[a.Project()]++
		debts := p.Debts()
		var sum float64
		for j, d := range debts {
			sum += d
			if math.Abs(d) > 3*maxRef {
				t.Fatalf("fetch %d: debt[%d] = %v drifted beyond ±3×maxRef", i, j, d)
			}
		}
		if math.Abs(sum) > 1e-6 {
			t.Fatalf("fetch %d: debts sum to %v, want 0 (debts %v)", i, sum, debts)
		}
	}
	for j, c := range counts {
		if c == 0 {
			t.Fatalf("project %d never served (counts %v)", j, counts)
		}
	}
}

// TestMuxPortShareConvergence fetches a long sequence and checks the
// ref-second-weighted split converges to the configured shares.
func TestMuxPortShareConvergence(t *testing.T) {
	_, m := muxFixture(t, []float64{0.25, 0.75}, 20000, func(int, int) float64 { return 3600 })
	var p MuxPort
	p.init(m, 0, 7)
	var ref [2]float64
	for i := 0; i < 8000; i++ {
		a := p.RequestWork()
		if a == nil {
			t.Fatal("ran out of work")
		}
		ref[a.Project()] += a.WU.WU.RefSeconds
	}
	got := ref[0] / (ref[0] + ref[1])
	if math.Abs(got-0.25) > 0.01 {
		t.Fatalf("project 0 got %.4f of ref-seconds, want 0.25 ±0.01", got)
	}
}

// TestMuxIdleTenantYields starves one project and checks the other absorbs
// every fetch while the idle project's debt stays frozen — the
// work-available signaling contract.
func TestMuxIdleTenantYields(t *testing.T) {
	engine := sim.NewEngine()
	cfg := wcg.DefaultConfig()
	cfg.InitialQuorum, cfg.SteadyQuorum, cfg.QuorumSwitchTime = 1, 1, 0
	busy := wcg.NewServer(engine, cfg)
	idle := wcg.NewServer(engine, cfg)
	for i := 0; i < 100; i++ {
		busy.AddWorkunit(workunit.Workunit{ID: int64(i), RefSeconds: 3600}, 0)
	}
	m := NewMux()
	m.Attach(busy, 0.5)
	m.Attach(idle, 0.5)
	var p MuxPort
	p.init(m, 0, 3)
	for i := 0; i < 50; i++ {
		a := p.RequestWork()
		if a == nil || a.Project() != 0 {
			t.Fatalf("fetch %d: got %v, want work from the busy project", i, a)
		}
		debts := p.Debts()
		if debts[1] != 0 {
			t.Fatalf("idle project accumulated debt %v; it must yield its slice", debts[1])
		}
		if debts[0] != 0 {
			t.Fatalf("sole busy project's debt should stay 0 (renormalized share 1), got %v", debts[0])
		}
	}
	// Work arrives at the idle tenant: it is served next (debts tie at 0,
	// then the busy project's consumption pushes fetches its way).
	idle.AddWorkunit(workunit.Workunit{ID: 1000, RefSeconds: 3600}, 0)
	seen := false
	for i := 0; i < 4 && !seen; i++ {
		if a := p.RequestWork(); a != nil && a.Project() == 1 {
			seen = true
		}
	}
	if !seen {
		t.Fatal("re-stocked tenant never served")
	}
}

// TestMuxPortDeterministicTieBreaks: same seed, same fetch decisions; the
// tie-break stream is the port's own.
func TestMuxPortDeterministicTieBreaks(t *testing.T) {
	run := func() []int {
		_, m := muxFixture(t, []float64{1, 1, 1}, 2000, func(int, int) float64 { return 3600 })
		var p MuxPort
		p.init(m, 0, 1234)
		out := make([]int, 0, 600)
		for i := 0; i < 600; i++ {
			a := p.RequestWork()
			if a == nil {
				t.Fatal("ran out of work")
			}
			out = append(out, a.Project())
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fetch %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestMuxPortReuse re-inits a port (the pooled-host path) and checks the
// debt vector and stream reset exactly as a fresh port.
func TestMuxPortReuse(t *testing.T) {
	_, m := muxFixture(t, []float64{0.3, 0.7}, 5000, func(int, int) float64 { return 3600 })
	var fresh, reused MuxPort
	fresh.init(m, 0, 55)
	reused.init(m, 1, 77)
	for i := 0; i < 100; i++ {
		reused.RequestWork() // dirty the debts
	}
	reused.init(m, 1, 55)
	for i := 0; i < 200; i++ {
		a, b := fresh.RequestWork(), reused.RequestWork()
		if (a == nil) != (b == nil) || (a != nil && a.Project() != b.Project()) {
			t.Fatalf("fetch %d: reused port diverged from fresh", i)
		}
	}
}
