// The mega-grid SoA host plane: the data layout half of the sharded kernel.
//
// # SoA layout
//
// A Host struct is ~200 bytes of mixed hot and cold state plus two bound
// method values; at 1M+ hosts the struct-of-pointers population thrashes
// caches and allocates O(hosts) objects. The ShardKernel instead stores the
// fleet as a structure of arrays indexed by host ID:
//
//   - hot, touched every task: flags (packed bits), speedDown, src (the
//     host's rng stream, 32 bytes by value), dec (the precomputed next
//     per-task decision), cur/curOutcome/curReported (the in-flight task),
//     cacheLen + a flat cache slab (WorkBuffer assignments per host);
//   - warm, touched by cohort behavior: errorProb, abandonProb, phase,
//     onlineSpan;
//   - cold, touched once per run: joinedAt, hardware, done, cpuSpent.
//
// Spawning appends to every array; a pooled Reset truncates them in place,
// so a 1M-host run allocates O(arrays), not O(hosts·structs), and the
// steady state of a pooled run context allocates nothing per host.
//
// # Precomputed decision transcripts
//
// The per-task random transcript of Host.requestWork is a short prefix of
// the host's private stream: Bernoulli(abandon); if abandoned,
// Bernoulli(lateReturn) and, if late, one Float64 for the extra delay;
// otherwise — unless the host has already turned — Bernoulli(error). Nothing
// else reads the stream between tasks, so the next transcript can be drawn
// one task ahead, in parallel, without changing any draw's position: the
// shard workers refill consumed decision tuples at every window barrier,
// reading the turned bit as of the barrier (it only flips in the serial
// merge, which consumes the tuple that flips it before the next refill).
// A host that starts two tasks inside one window finds its tuple consumed
// and draws inline in the serial merge — same stream, same bits, just not
// prefetched. Spawn transcripts (speed-down LogNormal, cohort pick, diurnal
// phase, first decision) are precomputed the same way into a slot pool:
// weekly spawn counts are exact functions of serial state, so the pool is
// topped up at the window barrier before each weekly tick, and host seeds
// are pre-drawn FIFO from the population stream (nothing else reads it).
package volunteer

import (
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wcg"
)

// Host-flag bits of the SoA plane (one byte per host).
const (
	hfStopped  uint8 = 1 << iota // told to stop; never fetches again
	hfBusy                       // computing a task right now
	hfSaboteur                   // errors are correlated: the first one turns the host
	hfTurned                     // saboteur gone bad: every further result is invalid
	hfDiurnal                    // computes only during a daily online window
)

// Decision-transcript bits: the outcome of one task's behavior draws.
const (
	dValid   uint8 = 1 << iota // tuple holds an unconsumed transcript
	dAbandon                   // volunteer shelves the task; deadline passes
	dLate                      // abandoned result still returns, late
	dErr                       // result comes back invalid
	dTurns                     // this error turns a saboteur permanently bad
)

// decision is one precomputed per-task draw transcript.
type decision struct {
	lateFrac float64 // late-return delay fraction (dLate only)
	flags    uint8
}

// spawnSlot is one precomputed host initialization: the draws NewHost would
// have made from the host's own stream, plus the stream state after them.
// Time-dependent scaling (the hardware trend) is applied at consume time,
// because only then is the host's join time known.
type spawnSlot struct {
	src         rng.Source // stream state after the init + first-decision draws
	rawSD       float64    // LogNormal speed-down before trend scaling
	phase       float64    // diurnal window offset (0 unless hfDiurnal)
	onlineSpan  float64    // diurnal window length (0 unless hfDiurnal)
	errorProb   float64    // resolved per-task invalid probability
	abandonProb float64    // resolved per-task abandon probability
	dec         decision   // the host's first decision transcript
	flags       uint8      // hfSaboteur / hfDiurnal cohort bits
}

// computeDecision draws one task transcript from src, replaying exactly the
// branch structure of Host.requestWork: a turned host draws no error bit.
func computeDecision(src *rng.Source, errorProb, abandonProb, lateProb float64, turned, saboteur bool) decision {
	d := decision{flags: dValid}
	if src.Bernoulli(abandonProb) {
		d.flags |= dAbandon
		if src.Bernoulli(lateProb) {
			d.flags |= dLate
			d.lateFrac = src.Float64()
		}
		return d
	}
	if turned {
		d.flags |= dErr
		return d
	}
	if src.Bernoulli(errorProb) {
		d.flags |= dErr
		if saboteur {
			d.flags |= dTurns
		}
	}
	return d
}

// buildSlot precomputes one host initialization from its seed: the exact
// draw sequence of Host.init (LogNormal, cohort pick, diurnal phase)
// followed by the host's first decision transcript.
func (k *ShardKernel) buildSlot(slot *spawnSlot, seed uint64) {
	rng.NewInto(&slot.src, seed)
	slot.rawSD = slot.src.LogNormal(k.mu, k.sigma)
	cfg := &k.cfg
	flags := uint8(0)
	errP, abnP := cfg.ErrorProb, cfg.AbandonProb
	slot.phase, slot.onlineSpan = 0, 0
	if len(cfg.Profiles) > 0 {
		pi := pickProfileFrom(&slot.src, cfg.Profiles)
		p := &cfg.Profiles[pi]
		errP = p.ErrorProb
		if p.AbandonProb >= 0 {
			abnP = p.AbandonProb
		}
		if p.Saboteur {
			flags |= hfSaboteur
		}
		if p.Diurnal {
			flags |= hfDiurnal
			slot.onlineSpan = p.OnlineHours * sim.Hour
			if slot.onlineSpan <= 0 {
				slot.onlineSpan = DefaultOnlineHours * sim.Hour
			}
			if slot.onlineSpan > sim.Day {
				slot.onlineSpan = sim.Day
			}
			slot.phase = slot.src.Float64() * sim.Day
		}
	}
	slot.errorProb, slot.abandonProb, slot.flags = errP, abnP, flags
	slot.dec = computeDecision(&slot.src, errP, abnP, cfg.LateReturnProb, false, flags&hfSaboteur != 0)
}

// spawn consumes one precomputed slot (or builds one inline after a pool
// underrun — same seed stream, same bits) and appends the host to every
// plane array, applying the join-time hardware-trend scaling exactly as
// Host.init does. Runs in the serial merge only.
func (k *ShardKernel) spawn() int32 {
	var slot spawnSlot
	if k.poolHead < len(k.pool) {
		slot = k.pool[k.poolHead]
		k.poolHead++
	} else {
		k.buildSlot(&slot, k.r.Uint64())
	}
	now := k.eng.Now()
	sd := slot.rawSD
	if k.cfg.HardwareTrendPerWeek > 0 {
		sd /= 1 + k.cfg.HardwareTrendPerWeek*now/sim.Week
	}
	if sd < 1 {
		sd = 1 // a volunteer device cannot beat its own wall clock
	}
	hw := sd / (UDThrottleFactor * PriorityFactor)
	if hw < 1 {
		hw = 1
	}
	id := int32(len(k.speedDown))
	k.flags = append(k.flags, slot.flags)
	k.speedDown = append(k.speedDown, sd)
	k.src = append(k.src, slot.src)
	k.dec = append(k.dec, slot.dec)
	k.errorProb = append(k.errorProb, slot.errorProb)
	k.abandonProb = append(k.abandonProb, slot.abandonProb)
	k.phase = append(k.phase, slot.phase)
	k.onlineSpan = append(k.onlineSpan, slot.onlineSpan)
	k.joinedAt = append(k.joinedAt, now)
	k.hardware = append(k.hardware, hw)
	k.done = append(k.done, 0)
	k.cpuSpent = append(k.cpuSpent, 0)
	k.cur = append(k.cur, nil)
	k.curOutcome = append(k.curOutcome, 0)
	k.curReported = append(k.curReported, 0)
	k.cacheLen = append(k.cacheLen, 0)
	for j := 0; j < k.buffer; j++ {
		k.cache = append(k.cache, nil)
	}
	k.active++
	return id
}

// pickProfileFrom draws a cohort from the weighted profiles; the shared
// implementation behind Host.pickProfile and the plane's slot builder.
// Panics if no profile has positive weight.
func pickProfileFrom(src *rng.Source, profiles []BehaviorProfile) int {
	var total float64
	for _, p := range profiles {
		if p.Weight < 0 {
			panic("volunteer: negative profile weight")
		}
		total += p.Weight
	}
	if total <= 0 {
		panic("volunteer: behavior profiles need positive total weight")
	}
	target := src.Float64() * total
	var cum float64
	for i, p := range profiles {
		cum += p.Weight
		if target < cum {
			return i
		}
	}
	return len(profiles) - 1
}

// SetTarget adjusts the active host count toward n, spawning fresh hosts or
// stopping the oldest active ones first, exactly as Population.SetTarget.
func (k *ShardKernel) SetTarget(n int) {
	if n < 0 {
		n = 0
	}
	for k.active < n {
		k.fetch(k.spawn())
	}
	if k.active > n {
		excess := k.active - n
		for excess > 0 && k.firstActive < len(k.flags) {
			if k.flags[k.firstActive]&hfStopped == 0 {
				k.flags[k.firstActive] |= hfStopped
				k.active--
				excess--
			}
			k.firstActive++
		}
	}
}

// Active returns the number of hosts currently attached (not stopped).
func (k *ShardKernel) Active() int { return k.active }

// TotalJoined returns how many hosts ever joined.
func (k *ShardKernel) TotalJoined() int { return len(k.flags) }

// MeanSpeedDown returns the average speed-down of all hosts ever joined,
// summed in join order like Population.MeanSpeedDown.
func (k *ShardKernel) MeanSpeedDown() float64 {
	if len(k.speedDown) == 0 {
		return 0
	}
	var sum float64
	for _, sd := range k.speedDown {
		sum += sd
	}
	return sum / float64(len(k.speedDown))
}

// HostAccounting returns host i's credit inputs (the §8 points accounting):
// hardware factor, join time and reported CPU seconds accumulated.
func (k *ShardKernel) HostAccounting(i int) (hardware float64, joinedAt sim.Time, cpuSpent float64) {
	return k.hardware[i], k.joinedAt[i], k.cpuSpent[i]
}

// fetch is the SoA mirror of Host.requestWork: refill the work cache, start
// the front assignment, consume the precomputed decision transcript (or
// draw it inline when the prefetch fell a task behind), and schedule the
// continuation on the shard calendar. Runs in the serial merge only.
func (k *ShardKernel) fetch(h int32) {
	if k.flags[h]&hfStopped != 0 {
		return
	}
	base := int(h) * k.buffer
	n := int(k.cacheLen[h])
	for n < k.buffer {
		a := k.server.RequestWork()
		if a == nil {
			break
		}
		k.cache[base+n] = a
		n++
	}
	k.cacheLen[h] = int32(n)
	if n == 0 {
		d := k.cfg.IdleRetry
		if k.retry != nil {
			// Same advisor hook as Host.requestWork: the fault plane
			// stretches the wait during outages. The draw is a stateless
			// hash of (host, window, attempt), so shard order is irrelevant.
			d = k.retry.FetchRetryDelay(int(h), d)
		}
		k.scheduleHostEvent(h, evFetch, k.eng.Now()+d)
		return
	}
	if k.flags[h]&hfBusy != 0 {
		return // already crunching; the cache refill was all we needed
	}
	a := k.cache[base]
	copy(k.cache[base:base+n-1], k.cache[base+1:base+n])
	k.cache[base+n-1] = nil
	k.cacheLen[h] = int32(n - 1)
	k.flags[h] |= hfBusy
	wall := a.WU.WU.RefSeconds * k.speedDown[h]
	reported := wall
	if k.cfg.Accounting == BOINCCPUTime {
		reported = a.WU.WU.RefSeconds * k.hardware[h]
	}

	d := k.dec[h]
	if d.flags&dValid == 0 {
		// Second task inside one window: the refill has not run yet, so
		// draw the transcript inline. The host is already on the refill
		// list from the consume that emptied the tuple.
		d = computeDecision(&k.src[h], k.errorProb[h], k.abandonProb[h],
			k.cfg.LateReturnProb, k.flags[h]&hfTurned != 0, k.flags[h]&hfSaboteur != 0)
	} else {
		// First consume this window: queue the host for the parallel
		// refill at the next window barrier.
		k.refill[int(h)%k.shards] = append(k.refill[int(h)%k.shards], h)
	}
	k.dec[h].flags = 0

	if d.flags&dAbandon != 0 {
		if d.flags&dLate != 0 {
			delay := k.server.DeadlineFor(a) + d.lateFrac*k.cfg.LateDelayMax
			k.scheduleLate(h, k.eng.Now()+delay, a, reported)
		}
		k.flags[h] &^= hfBusy
		k.scheduleHostEvent(h, evFetch, k.eng.Now()+k.cfg.IdleRetry)
		return
	}

	k.cur[h] = a
	k.curReported[h] = reported
	k.curOutcome[h] = wcg.OutcomeValid
	if d.flags&dErr != 0 {
		k.curOutcome[h] = wcg.OutcomeInvalid
		if d.flags&dTurns != 0 {
			k.flags[h] |= hfTurned
			if k.cfg.OnSaboteurTurn != nil {
				k.cfg.OnSaboteurTurn(int(h), k.eng.Now())
			}
		}
	}
	delay := wall
	if k.flags[h]&hfDiurnal != 0 {
		delay = diurnalDelay(k.eng.Now(), wall, k.phase[h], k.onlineSpan[h])
	}
	k.scheduleHostEvent(h, evDone, k.eng.Now()+delay)
}

// taskDone is the SoA mirror of Host.taskDone: report the finished task and
// fetch the next one.
func (k *ShardKernel) taskDone(h int32) {
	a, outcome, reported := k.cur[h], k.curOutcome[h], k.curReported[h]
	k.cur[h] = nil
	k.flags[h] &^= hfBusy
	k.done[h]++
	k.cpuSpent[h] += reported
	k.server.CompleteFrom(a, outcome, reported, int(h))
	k.fetch(h)
}

// lateReturn is the SoA mirror of the abandoned-late-return closure: a
// long-offline device reconnecting after the deadline passed.
func (k *ShardKernel) lateReturn(h int32, a *wcg.Assignment, reported float64) {
	k.cpuSpent[h] += reported
	oc := wcg.OutcomeValid
	if k.flags[h]&hfTurned != 0 {
		oc = wcg.OutcomeInvalid
	}
	k.server.CompleteFrom(a, oc, reported, int(h))
}
