package volunteer

import (
	"repro/internal/rng"
	"repro/internal/sim"
)

// Population manages the set of volunteer hosts working for one project and
// tracks a time-varying target size — the mechanism behind the paper's
// project phases (§5.1): a handful of devices during the control period,
// then a ramp-up when the project priority is raised, then a roughly
// constant share of a growing grid.
type Population struct {
	engine *sim.Engine
	server WorkSource // single-project: every host binds this directly
	mux    *Mux       // multi-project: every host gets its own port
	cfg    HostConfig
	r      *rng.Source

	hosts       []*Host
	active      int // hosts not stopped
	nextID      int
	firstActive int // hosts[:firstActive] are all stopped (stop-oldest cursor)

	// Host-struct pool: the previous run's hosts, reinitialized in place as
	// this run spawns. See the package-level Reset contract.
	pool     []*Host
	poolNext int
}

// NewPopulation creates an empty population whose hosts all work for the
// one project behind server (normally a *wcg.Server, bound directly: the
// pre-multiplexer fast path, byte-identical to it).
func NewPopulation(engine *sim.Engine, server WorkSource, cfg HostConfig, r *rng.Source) *Population {
	return &Population{engine: engine, server: server, cfg: cfg, r: r}
}

// NewMuxPopulation creates an empty population on a shared multi-project
// grid: every spawned host draws one extra seed for its own MuxPort, which
// arbitrates the host's work fetches across the mux's attached project
// servers by resource share. The mux must hold its attachments before the
// first SetTarget call.
func NewMuxPopulation(engine *sim.Engine, mux *Mux, cfg HostConfig, r *rng.Source) *Population {
	if mux == nil {
		panic("volunteer: NewMuxPopulation(nil mux)")
	}
	return &Population{engine: engine, mux: mux, cfg: cfg, r: r}
}

// Reset rearms the population for another run on the same (freshly reset)
// engine and server: zero hosts joined, a new host configuration and seed
// stream. The previous run's Host structs become the reuse pool.
func (p *Population) Reset(cfg HostConfig, r *rng.Source) {
	p.cfg = cfg
	p.r = r
	// Swap the slices: last run's hosts are this run's pool, and the old
	// pool's backing array (same capacity ballpark) collects the new list.
	p.hosts, p.pool = p.pool[:0], p.hosts
	p.poolNext = 0
	p.active, p.nextID, p.firstActive = 0, 0, 0
}

// Rebind swaps the work source every subsequently spawned host binds to.
// A pooled campaign calls it right after Reset, before any spawn, when the
// source wrapping changes between runs (the fault plane wraps the server
// on fault runs and is absent on fault-free ones). Multiplexed populations
// ignore it — their hosts bind their own ports.
func (p *Population) Rebind(server WorkSource) {
	if p.mux == nil {
		p.server = server
	}
}

// spawn creates (or recycles) one host seeded from the population stream.
// The seed derivation matches what NewHost(..., p.r.Split()) produced
// before pooling existed, so populations are bit-for-bit reproducible. On
// a multiplexed grid one extra draw seeds the host's port; a single-project
// population draws nothing extra, keeping its stream byte-identical to the
// pre-multiplexer code.
func (p *Population) spawn() *Host {
	seed := p.r.Uint64()
	var portSeed uint64
	if p.mux != nil {
		portSeed = p.r.Uint64()
	}
	var h *Host
	if p.poolNext < len(p.pool) {
		h = p.pool[p.poolNext]
		p.pool[p.poolNext] = nil
		p.poolNext++
	} else {
		h = &Host{}
		h.requestFn = h.requestWork
		h.taskDoneFn = h.taskDone
	}
	rng.NewInto(&h.src, seed)
	source := p.server
	if p.mux != nil {
		h.port.init(p.mux, p.nextID, portSeed)
		source = &h.port
	} else {
		h.port.mux = nil // a recycled host may have been multiplexed before
	}
	h.init(p.nextID, p.engine, source, p.cfg)
	p.nextID++
	p.hosts = append(p.hosts, h)
	p.active++
	return h
}

// Active returns the number of hosts currently attached (not stopped).
func (p *Population) Active() int { return p.active }

// TotalJoined returns how many hosts ever joined.
func (p *Population) TotalJoined() int { return p.nextID }

// Hosts returns all hosts ever created (stopped ones included).
func (p *Population) Hosts() []*Host { return p.hosts }

// SetTarget adjusts the active host count toward n: spawning fresh hosts
// (new devices join the grid continuously) or stopping surplus ones (devices
// reassigned to other projects or retired). Hosts finish their current task
// before leaving.
func (p *Population) SetTarget(n int) {
	if n < 0 {
		n = 0
	}
	for p.active < n {
		p.spawn().Start()
	}
	if p.active > n {
		// Stop the oldest active hosts first (device turnover). The cursor
		// makes the weekly shrink O(stopped) instead of rescanning every
		// host ever joined: hosts never restart, so everything before
		// firstActive stays stopped forever.
		excess := p.active - n
		for excess > 0 && p.firstActive < len(p.hosts) {
			h := p.hosts[p.firstActive]
			if !h.Stopped() {
				h.Stop()
				p.active--
				excess--
			}
			p.firstActive++
		}
	}
}

// MeanSpeedDown returns the average speed-down of all hosts ever joined —
// the population-level counterpart of the paper's measured 3.96.
func (p *Population) MeanSpeedDown() float64 {
	if len(p.hosts) == 0 {
		return 0
	}
	var sum float64
	for _, h := range p.hosts {
		sum += h.SpeedDown
	}
	return sum / float64(len(p.hosts))
}

// GridModel is the analytic model of the whole World Community Grid used
// for Figure 1 (grid-wide VFTP since launch) and for the available-capacity
// curve of Figure 6(a). It is a growth model with calendar modulation, not
// a device-level simulation: the paper's own Figure 1 is derived from the
// web site's aggregate statistics exactly the same way.
type GridModel struct {
	// Launch VFTP and weekly growth of the grid-wide capacity.
	BaseVFTP      float64
	GrowthPerWeek float64
	// WeekendDip is the relative capacity drop on Saturday/Sunday
	// (volunteers' office machines going idle... or off).
	WeekendDip float64
	// HolidayDip is the relative drop during holiday periods.
	HolidayDip float64
	// Noise is the relative day-to-day jitter.
	Noise float64
}

// DefaultGridModel calibrates the grid to the paper's numbers: the grid
// passed ~55,000 virtual full-time processors on average during the HCMD
// campaign (which starts at week 110 of this model, December 2006, two
// years after the November 2004 launch) and reached ~74,825 the week the
// paper was written (late 2007).
func DefaultGridModel() GridModel {
	return GridModel{
		BaseVFTP:      4000,
		GrowthPerWeek: 440,
		WeekendDip:    0.12,
		HolidayDip:    0.25,
		Noise:         0.03,
	}
}

// holiday reports whether day d (0 = Monday, week 0 = launch week in
// mid-November) falls in a modelled holiday trough: Christmas/New Year
// (late December) and the summer slowdown (July-August), the two dips the
// paper points out in Figure 1.
func holiday(day int) bool {
	// Model years as 52-week blocks from launch (launch ≈ mid-November).
	dayOfYear := day % 364
	// Launch + ~40 days ≈ Christmas; a 2-week trough.
	if dayOfYear >= 38 && dayOfYear < 52 {
		return true
	}
	// Summer: ~7.5 months after launch, an 8-week softer trough.
	if dayOfYear >= 228 && dayOfYear < 284 {
		return true
	}
	return false
}

// DailyVFTP returns the modelled grid-wide virtual full-time processors for
// each day in [0, days): the Figure 1 series. Deterministic in seed.
func (g GridModel) DailyVFTP(days int, seed uint64) []float64 {
	r := rng.New(seed)
	var cal sim.Calendar
	out := make([]float64, days)
	for d := 0; d < days; d++ {
		t := float64(d) * sim.Day
		base := g.BaseVFTP + g.GrowthPerWeek*float64(d)/7
		v := base
		if cal.IsWeekend(t) {
			v *= 1 - g.WeekendDip
		}
		if holiday(d) {
			v *= 1 - g.HolidayDip
		}
		v *= 1 + g.Noise*r.NormFloat64()
		if v < 0 {
			v = 0
		}
		out[d] = v
	}
	return out
}

// VFTPAt returns the trend capacity (no calendar modulation) at week w.
func (g GridModel) VFTPAt(week float64) float64 {
	return g.BaseVFTP + g.GrowthPerWeek*week
}
