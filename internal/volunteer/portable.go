package volunteer

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/wcg"
)

// Portable population and kernel snapshots (see the snapshot package
// doc): self-contained copies of the volunteer plane's mutable state that
// a different pooled run context can adopt. Assignments held by hosts —
// the work buffer, the in-flight task, late-return calendar entries — are
// translated to arena indices at export and resolved against the
// adopter's own server, which has replayed the same allocation order.
// Closure state (the bound requestFn/taskDoneFn method values, the
// SpawnHint callback) is never exported; the adopter re-binds it.

// portableHost is one Host's mutable state with every intra-run pointer
// translated: the in-flight and cached assignments become arena indices,
// and the engine/server/config bindings are dropped entirely (the adopter
// supplies its own).
type portableHost struct {
	id        int
	joinedAt  sim.Time
	speedDown float64
	hardware  float64
	src       rng.Source

	profile     int
	errorProb   float64
	abandonProb float64
	saboteur    bool
	turned      bool
	diurnal     bool
	phase       float64
	onlineSpan  float64

	stopped  bool
	busy     bool
	done     int
	cpuSpent float64

	cache     []int32
	cacheHead int

	cur         int32
	curOutcome  wcg.Outcome
	curReported float64
}

// PortablePopulation is a self-contained copy of a Population (the legacy
// per-Host kernel) at an event boundary. Safe to publish across
// goroutines; read-only once built.
type PortablePopulation struct {
	hosts []portableHost

	active, nextID, firstActive int

	rsrc rng.Source
}

// Bytes estimates the portable population's memory footprint for the
// snapshot_bytes accounting.
func (p *PortablePopulation) Bytes() int {
	n := snapshot.Size(p.hosts)
	for i := range p.hosts {
		n += snapshot.Size(p.hosts[i].cache)
	}
	return n
}

// ExportPortable deep-copies the population's mutable state into a
// portable snapshot. Multi-project (multiplexed) populations are not
// portable — the shared debt slab and per-port state have no translation
// yet — so the caller falls back to the sequential in-place path.
func (p *Population) ExportPortable() (*PortablePopulation, error) {
	if p.mux != nil {
		return nil, fmt.Errorf("volunteer: portable export does not support multiplexed populations")
	}
	ps := &PortablePopulation{
		active:      p.active,
		nextID:      p.nextID,
		firstActive: p.firstActive,
		rsrc:        *p.r,
	}
	ps.hosts = make([]portableHost, len(p.hosts))
	for i, h := range p.hosts {
		ph := &ps.hosts[i]
		ph.id = h.ID
		ph.joinedAt = h.JoinedAt
		ph.speedDown = h.SpeedDown
		ph.hardware = h.Hardware
		ph.src = h.src
		ph.profile = h.Profile
		ph.errorProb = h.errorProb
		ph.abandonProb = h.abandonProb
		ph.saboteur = h.saboteur
		ph.turned = h.turned
		ph.diurnal = h.diurnal
		ph.phase = h.phase
		ph.onlineSpan = h.onlineSpan
		ph.stopped = h.stopped
		ph.busy = h.busy
		ph.done = h.Done
		ph.cpuSpent = h.CPUSpent
		if len(h.cache) > 0 {
			ph.cache = make([]int32, len(h.cache))
			for j, a := range h.cache {
				ph.cache[j] = wcg.AssignmentIndex(a)
			}
		}
		ph.cacheHead = h.cacheHead
		ph.cur = wcg.AssignmentIndex(h.cur)
		ph.curOutcome = h.curOutcome
		ph.curReported = h.curReported
	}
	return ps, nil
}

// AdoptPortable installs a portable population snapshot into this
// population. The population must have been Reset under the same host
// configuration and bound (Rebind) to its own context's work source.
// Host structs are consumed from the reuse pool exactly as spawn would —
// but with state copied from the snapshot instead of sampled — and every
// assignment index is resolved through asAt against the adopter's server.
func (p *Population) AdoptPortable(ps *PortablePopulation, asAt func(int32) *wcg.Assignment) {
	if p.mux != nil {
		panic("volunteer: portable adoption does not support multiplexed populations")
	}
	for i := range ps.hosts {
		ph := &ps.hosts[i]
		var h *Host
		if p.poolNext < len(p.pool) {
			h = p.pool[p.poolNext]
			p.pool[p.poolNext] = nil
			p.poolNext++
		} else {
			h = &Host{}
			h.requestFn = h.requestWork
			h.taskDoneFn = h.taskDone
		}
		h.ID = ph.id
		h.JoinedAt = ph.joinedAt
		h.SpeedDown = ph.speedDown
		h.Hardware = ph.hardware
		h.cfg = p.cfg
		h.engine = p.engine
		h.server = p.server
		h.retry, _ = p.server.(RetryAdvisor)
		h.port = MuxPort{}
		h.src = ph.src
		h.Profile = ph.profile
		h.errorProb = ph.errorProb
		h.abandonProb = ph.abandonProb
		h.saboteur = ph.saboteur
		h.turned = ph.turned
		h.diurnal = ph.diurnal
		h.phase = ph.phase
		h.onlineSpan = ph.onlineSpan
		h.stopped = ph.stopped
		h.busy = ph.busy
		h.Done = ph.done
		h.CPUSpent = ph.cpuSpent
		clear(h.cache)
		h.cache = h.cache[:0]
		for _, ai := range ph.cache {
			h.cache = append(h.cache, asAt(ai))
		}
		h.cacheHead = ph.cacheHead
		h.cur = asAt(ph.cur)
		h.curOutcome = ph.curOutcome
		h.curReported = ph.curReported
		p.hosts = append(p.hosts, h)
	}
	p.active = ps.active
	p.nextID = ps.nextID
	p.firstActive = ps.firstActive
	*p.r = ps.rsrc
}

// ResolveCall rebuilds the closure an adopted engine event should run,
// from its portable sim.Call descriptor: the bound fetch/report method
// values of the named host, or a freshly built late-return closure over
// the resolved assignment. Returns nil for calls this population does not
// own.
func (p *Population) ResolveCall(c sim.Call, asAt func(int32) *wcg.Assignment) func() {
	switch c.Kind {
	case sim.CallHostRequest:
		return p.hosts[c.A0].requestFn
	case sim.CallHostTaskDone:
		return p.hosts[c.A0].taskDoneFn
	case sim.CallHostLate:
		return p.hosts[c.A0].lateReturnFn(asAt(c.A1), c.F0)
	}
	return nil
}

// portablePlaneEvent is a planeEvent with its assignment pointer replaced
// by the assignment's arena index.
type portablePlaneEvent struct {
	at       sim.Time
	seq      uint64
	a        int32
	reported float64
	host     int32
	kind     uint8
}

// portableShard is one shard's calendar: the window-bucket table and the
// refill queue. The current-window merge buffer is not stored — it
// aliases the armed window's bucket by construction, and the adopter
// re-establishes that alias against its own bucket copy.
type portableShard struct {
	buckets [][]portablePlaneEvent
	refill  []int32
}

// PortableKernel is a self-contained copy of a ShardKernel (the SoA
// mega-grid kernel) at an event boundary. Safe to publish across
// goroutines; read-only once built.
type PortableKernel struct {
	flags       []uint8
	speedDown   []float64
	src         []rng.Source
	dec         []decision
	errorProb   []float64
	abandonProb []float64
	phase       []float64
	onlineSpan  []float64
	joinedAt    []sim.Time
	hardware    []float64
	done        []int32
	cpuSpent    []float64
	cur         []int32
	curOutcome  []wcg.Outcome
	curReported []float64
	cacheLen    []int32
	cache       []int32

	active, firstActive int

	pool     []spawnSlot
	poolHead int
	rsrc     rng.Source

	shards int
	window float64

	shardCals []portableShard
	cursor    []int
	win       int
	winEnd    sim.Time
	armed     bool
	prevWin   int
	overlay   []portablePlaneEvent

	livePlane, peekSrc int
}

// Bytes estimates the portable kernel's memory footprint for the
// snapshot_bytes accounting.
func (p *PortableKernel) Bytes() int {
	n := snapshot.Size(p.flags) + snapshot.Size(p.speedDown) +
		snapshot.Size(p.src) + snapshot.Size(p.dec) +
		snapshot.Size(p.errorProb) + snapshot.Size(p.abandonProb) +
		snapshot.Size(p.phase) + snapshot.Size(p.onlineSpan) +
		snapshot.Size(p.joinedAt) + snapshot.Size(p.hardware) +
		snapshot.Size(p.done) + snapshot.Size(p.cpuSpent) +
		snapshot.Size(p.cur) + snapshot.Size(p.curOutcome) +
		snapshot.Size(p.curReported) + snapshot.Size(p.cacheLen) +
		snapshot.Size(p.cache) + snapshot.Size(p.pool) +
		snapshot.Size(p.cursor) + snapshot.Size(p.overlay)
	for sh := range p.shardCals {
		n += snapshot.Size(p.shardCals[sh].refill)
		for _, b := range p.shardCals[sh].buckets {
			n += snapshot.Size(b)
		}
	}
	return n
}

// portablePlaneEvents translates one bucket (or the overlay) into owned
// portable form.
func portablePlaneEvents(evs []planeEvent) []portablePlaneEvent {
	if len(evs) == 0 {
		return nil
	}
	out := make([]portablePlaneEvent, len(evs))
	for i, ev := range evs {
		out[i] = portablePlaneEvent{
			at: ev.at, seq: ev.seq, a: wcg.AssignmentIndex(ev.a),
			reported: ev.reported, host: ev.host, kind: ev.kind,
		}
	}
	return out
}

// ExportPortable deep-copies the kernel's mutable state into a portable
// snapshot.
func (k *ShardKernel) ExportPortable() *PortableKernel {
	p := &PortableKernel{
		flags:       snapshot.Clone(k.flags),
		speedDown:   snapshot.Clone(k.speedDown),
		src:         snapshot.Clone(k.src),
		dec:         snapshot.Clone(k.dec),
		errorProb:   snapshot.Clone(k.errorProb),
		abandonProb: snapshot.Clone(k.abandonProb),
		phase:       snapshot.Clone(k.phase),
		onlineSpan:  snapshot.Clone(k.onlineSpan),
		joinedAt:    snapshot.Clone(k.joinedAt),
		hardware:    snapshot.Clone(k.hardware),
		done:        snapshot.Clone(k.done),
		cpuSpent:    snapshot.Clone(k.cpuSpent),
		curOutcome:  snapshot.Clone(k.curOutcome),
		curReported: snapshot.Clone(k.curReported),
		cacheLen:    snapshot.Clone(k.cacheLen),

		active:      k.active,
		firstActive: k.firstActive,

		pool:     snapshot.Clone(k.pool),
		poolHead: k.poolHead,
		rsrc:     *k.r,

		shards: k.shards,
		window: k.window,

		cursor:  snapshot.Clone(k.cursor),
		win:     k.win,
		winEnd:  k.winEnd,
		armed:   k.armed,
		prevWin: k.prevWin,
		overlay: portablePlaneEvents(k.overlay),

		livePlane: k.livePlane,
		peekSrc:   k.peekSrc,
	}
	p.cur = make([]int32, len(k.cur))
	for i, a := range k.cur {
		p.cur[i] = wcg.AssignmentIndex(a)
	}
	p.cache = make([]int32, len(k.cache))
	for i, a := range k.cache {
		p.cache[i] = wcg.AssignmentIndex(a)
	}
	p.shardCals = make([]portableShard, k.shards)
	for sh := 0; sh < k.shards; sh++ {
		sc := &p.shardCals[sh]
		sc.refill = snapshot.Clone(k.refill[sh])
		sc.buckets = make([][]portablePlaneEvent, len(k.buckets[sh]))
		for w, b := range k.buckets[sh] {
			sc.buckets[w] = portablePlaneEvents(b)
		}
	}
	return p
}

// AdoptPortable installs a portable kernel snapshot into this kernel. The
// kernel must have been Reset under the same configuration, shard count
// and window width the source ran; every assignment index is resolved
// through asAt against the adopter's server. The current-window merge
// buffers are re-aliased to the adopter's own copy of the armed window's
// buckets, restoring the alias invariant prepWindow establishes.
func (k *ShardKernel) AdoptPortable(p *PortableKernel, asAt func(int32) *wcg.Assignment) {
	if k.shards != p.shards || k.window != p.window {
		panic("volunteer: adopting kernel has a different shard layout — config mismatch")
	}
	k.flags = append(k.flags[:0], p.flags...)
	k.speedDown = append(k.speedDown[:0], p.speedDown...)
	k.src = append(k.src[:0], p.src...)
	k.dec = append(k.dec[:0], p.dec...)
	k.errorProb = append(k.errorProb[:0], p.errorProb...)
	k.abandonProb = append(k.abandonProb[:0], p.abandonProb...)
	k.phase = append(k.phase[:0], p.phase...)
	k.onlineSpan = append(k.onlineSpan[:0], p.onlineSpan...)
	k.joinedAt = append(k.joinedAt[:0], p.joinedAt...)
	k.hardware = append(k.hardware[:0], p.hardware...)
	k.done = append(k.done[:0], p.done...)
	k.cpuSpent = append(k.cpuSpent[:0], p.cpuSpent...)
	k.cur = k.cur[:0]
	for _, ai := range p.cur {
		k.cur = append(k.cur, asAt(ai))
	}
	k.curOutcome = append(k.curOutcome[:0], p.curOutcome...)
	k.curReported = append(k.curReported[:0], p.curReported...)
	k.cacheLen = append(k.cacheLen[:0], p.cacheLen...)
	k.cache = k.cache[:0]
	for _, ai := range p.cache {
		k.cache = append(k.cache, asAt(ai))
	}

	k.active, k.firstActive = p.active, p.firstActive

	k.pool = append(k.pool[:0], p.pool...)
	k.poolHead = p.poolHead
	*k.r = p.rsrc

	for sh := 0; sh < k.shards; sh++ {
		sc := &p.shardCals[sh]
		bs := k.buckets[sh]
		for len(bs) < len(sc.buckets) {
			bs = append(bs, nil)
		}
		bs = bs[:len(sc.buckets)]
		for w, pb := range sc.buckets {
			if len(pb) == 0 {
				if bs[w] != nil {
					clear(bs[w])
					k.freeB[sh] = append(k.freeB[sh], bs[w][:0])
					bs[w] = nil
				}
				continue
			}
			b := bs[w]
			if b == nil {
				if n := len(k.freeB[sh]); n > 0 {
					b = k.freeB[sh][n-1]
					k.freeB[sh] = k.freeB[sh][:n-1]
				}
			}
			b = b[:0]
			for _, pe := range pb {
				b = append(b, planeEvent{
					at: pe.at, seq: pe.seq, a: asAt(pe.a),
					reported: pe.reported, host: pe.host, kind: pe.kind,
				})
			}
			bs[w] = b
		}
		k.buckets[sh] = bs
		k.refill[sh] = append(k.refill[sh][:0], sc.refill...)
	}
	copy(k.cursor, p.cursor)
	k.win, k.winEnd = p.win, p.winEnd
	k.armed, k.prevWin = p.armed, p.prevWin
	k.overlay = k.overlay[:0]
	for _, pe := range p.overlay {
		k.overlay = append(k.overlay, planeEvent{
			at: pe.at, seq: pe.seq, a: asAt(pe.a),
			reported: pe.reported, host: pe.host, kind: pe.kind,
		})
	}
	k.livePlane, k.peekSrc = p.livePlane, p.peekSrc

	// Re-establish prepWindow's alias: the merge buffers point at the armed
	// window's buckets (nil where the window held no events for a shard).
	for sh := 0; sh < k.shards; sh++ {
		if k.armed {
			k.curBuf[sh] = k.bucket(sh, k.win)
		} else {
			k.curBuf[sh] = nil
		}
	}
}
