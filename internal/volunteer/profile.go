// Host behavior profiles: cohorts of the volunteer fleet.
//
// The paper's population is uniformly well-behaved: every host draws the
// same flat error and abandon probabilities. Real desktop grids are not —
// error rates cluster by machine (broken overclocks, bad RAM), a small
// cohort may sabotage results outright, and home desktops compute on a
// day cycle. BehaviorProfile partitions the joining population into
// weighted cohorts with their own behavior, which is what the adaptive
// validation and saboteur scenarios exercise.
package volunteer

import "repro/internal/sim"

// DefaultOnlineHours is the daily online window of a diurnal host when
// the profile leaves OnlineHours zero: a home machine that is on roughly
// from morning to bedtime.
const DefaultOnlineHours = 14.0

// BehaviorProfile describes one cohort of volunteer hosts. When
// HostConfig.Profiles is non-empty, every joining host draws its cohort
// from the weighted profiles (one extra draw from the host's own stream,
// so runs stay deterministic and worker-count independent); with no
// profiles every host follows the flat HostConfig fields, bit-for-bit as
// before profiles existed.
type BehaviorProfile struct {
	// Name tags the cohort in diagnostics and scenario descriptions.
	Name string
	// Weight is the cohort's relative share of joining hosts. Weights
	// need not sum to 1; they are normalized. Must not all be zero.
	Weight float64
	// ErrorProb is the cohort's per-task invalid-result probability
	// (for a Saboteur cohort: the per-task probability of turning bad).
	ErrorProb float64
	// AbandonProb is the cohort's per-task abandon probability; a
	// negative value inherits HostConfig.AbandonProb.
	AbandonProb float64
	// Saboteur marks a cohort whose invalid results are correlated in
	// time as well as by host: once a host's error draw fires it has
	// "turned" and every subsequent result it reports is invalid. This
	// is the adversary adaptive replication defends against — a turned
	// host's streak resets on its first bad result and never recovers.
	Saboteur bool
	// Diurnal switches the cohort to day-cycle availability: the device
	// computes only during a daily online window of OnlineHours, with a
	// per-host phase spread around the clock, so tasks stretch across
	// the offline gaps (and age toward their deadline while they do).
	Diurnal bool
	// OnlineHours is the length of the diurnal cohort's daily online
	// window; 0 means DefaultOnlineHours.
	OnlineHours float64
}

// SaboteurProfiles is the standard two-cohort split the saboteur
// scenarios use: a faithful cohort at the given flat error probability
// and a saboteur cohort of the given fraction that turns permanently bad
// with probability turnProb per task.
func SaboteurProfiles(frac, faithfulErrProb, turnProb float64) []BehaviorProfile {
	return []BehaviorProfile{
		{Name: "faithful", Weight: 1 - frac, ErrorProb: faithfulErrProb, AbandonProb: -1},
		{Name: "saboteur", Weight: frac, ErrorProb: turnProb, AbandonProb: -1, Saboteur: true},
	}
}

// DiurnalProfiles is a whole-fleet day-cycle profile: every host online
// onlineHours per day, phases spread uniformly, behavior otherwise
// inherited from the flat HostConfig fields.
func DiurnalProfiles(onlineHours, errProb float64) []BehaviorProfile {
	return []BehaviorProfile{
		{Name: "diurnal", Weight: 1, ErrorProb: errProb, AbandonProb: -1, Diurnal: true, OnlineHours: onlineHours},
	}
}

// pickProfile draws the host's cohort from the weighted profiles using
// the host's own stream. Panics if no profile has positive weight.
func (h *Host) pickProfile(profiles []BehaviorProfile) int {
	var total float64
	for _, p := range profiles {
		if p.Weight < 0 {
			panic("volunteer: negative profile weight")
		}
		total += p.Weight
	}
	if total <= 0 {
		panic("volunteer: behavior profiles need positive total weight")
	}
	target := h.src.Float64() * total
	var cum float64
	for i, p := range profiles {
		cum += p.Weight
		if target < cum {
			return i
		}
	}
	return len(profiles) - 1
}

// diurnalDelay converts wall seconds of computation into the elapsed
// simulation time a diurnal host needs for them, walking the host's
// daily online windows from now. The host computes only inside
// [phase, phase+onlineSpan) of each day; offline gaps add elapsed time
// without adding computation.
func diurnalDelay(now sim.Time, wall, phase, onlineSpan float64) float64 {
	if wall <= 0 {
		return 0
	}
	// Position inside the host's cycle, measured from its window start.
	t := now - phase
	t -= float64(int(t/sim.Day)) * sim.Day
	if t < 0 {
		t += sim.Day
	}
	elapsed := 0.0
	if t >= onlineSpan {
		// Offline now: wait for the next window.
		elapsed = sim.Day - t
		t = 0
	}
	for {
		slice := onlineSpan - t
		if wall <= slice {
			return elapsed + wall
		}
		wall -= slice
		elapsed += slice + (sim.Day - onlineSpan) // finish window, sleep the gap
		t = 0
	}
}
