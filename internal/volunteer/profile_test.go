package volunteer

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wcg"
)

// popStats runs a population of n hosts under the given profiles against
// a generously stocked quorum-1 server and returns the server stats.
func popStats(t *testing.T, profiles []BehaviorProfile, n int, until sim.Time) wcg.Stats {
	t.Helper()
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 4000, 3600)
	cfg := DefaultHostConfig()
	cfg.Profiles = profiles
	pop := NewPopulation(engine, srv, cfg, rng.New(99))
	pop.SetTarget(n)
	engine.RunUntil(until)
	return srv.Stats
}

// TestSaboteurCohortMonotonic: growing the saboteur cohort drives
// Stats.Invalid up and the useful fraction down, monotonically.
func TestSaboteurCohortMonotonic(t *testing.T) {
	fracs := []float64{0, 0.05, 0.2, 0.5}
	var invalid []int64
	var useful []float64
	for _, f := range fracs {
		st := popStats(t, SaboteurProfiles(f, DefaultHostConfig().ErrorProb, 0.25), 60, 8*sim.Week)
		if st.Received == 0 {
			t.Fatalf("frac %v: no results", f)
		}
		invalid = append(invalid, st.Invalid)
		useful = append(useful, st.UsefulFraction())
	}
	for i := 1; i < len(fracs); i++ {
		if invalid[i] <= invalid[i-1] {
			t.Fatalf("Invalid not increasing with cohort size: %v → %v", fracs, invalid)
		}
		if useful[i] >= useful[i-1] {
			t.Fatalf("UsefulFraction not decreasing with cohort size: %v → %v", fracs, useful)
		}
	}
}

// TestSaboteurTurnsPermanently: once a saboteur host's error draw fires,
// every further result it reports is invalid — including late returns of
// abandoned tasks, which must not hand the host valid results to rebuild
// validation trust with. This is the correlation adaptive replication is
// designed to catch.
func TestSaboteurTurnsPermanently(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 500, 3600)
	cfg := DefaultHostConfig()
	cfg.LateReturnProb = 1 // every abandoned task comes back late
	cfg.Profiles = []BehaviorProfile{
		{Name: "saboteur", Weight: 1, ErrorProb: 0.3, AbandonProb: 0.2, Saboteur: true},
	}
	h := NewHost(0, engine, srv, cfg, rng.New(12))
	h.Start()
	// Run until the host has turned, then measure: every subsequent
	// result must be invalid.
	for engine.Now() < 52*sim.Week && !h.turned {
		engine.RunUntil(engine.Now() + sim.Day)
	}
	if !h.turned {
		t.Fatal("saboteur never turned at ErrorProb 0.3")
	}
	validAtTurn, invalidAtTurn := srv.Stats.Valid, srv.Stats.Invalid
	engine.RunUntil(engine.Now() + 8*sim.Week)
	if srv.Stats.Valid != validAtTurn {
		t.Fatalf("turned saboteur returned %d further valid results", srv.Stats.Valid-validAtTurn)
	}
	if srv.Stats.Invalid <= invalidAtTurn {
		t.Fatal("turned saboteur stopped reporting results")
	}
}

// TestProfileWeightsRespected: cohort shares converge to the normalized
// weights.
func TestProfileWeightsRespected(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 10, 3600)
	cfg := DefaultHostConfig()
	cfg.Profiles = []BehaviorProfile{
		{Name: "a", Weight: 3, ErrorProb: 0.01, AbandonProb: -1},
		{Name: "b", Weight: 1, ErrorProb: 0.10, AbandonProb: -1},
	}
	pop := NewPopulation(engine, srv, cfg, rng.New(5))
	const n = 8000
	pop.SetTarget(n)
	counts := [2]int{}
	for _, h := range pop.Hosts() {
		counts[h.Profile]++
	}
	share := float64(counts[0]) / n
	if math.Abs(share-0.75) > 0.02 {
		t.Fatalf("cohort a share %v, want ≈ 0.75 (counts %v)", share, counts)
	}
}

func TestProfileValidation(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 1, 1)
	cfg := DefaultHostConfig()
	cfg.Profiles = []BehaviorProfile{{Name: "void", Weight: 0}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero total weight")
		}
	}()
	NewHost(0, engine, srv, cfg, rng.New(1))
}

// TestDiurnalDelayArithmetic pins the window-walking math against
// hand-computed cases (14h online window starting at phase 0).
func TestDiurnalDelayArithmetic(t *testing.T) {
	const on = 14 * sim.Hour
	cases := []struct {
		now, wall, want float64
	}{
		// Inside the window with room to finish.
		{0, 2 * sim.Hour, 2 * sim.Hour},
		{10 * sim.Hour, 4 * sim.Hour, 4 * sim.Hour},
		// Ends exactly at the window edge: no offline gap is added.
		{10 * sim.Hour, 4*sim.Hour + 0, 4 * sim.Hour},
		// Spills into the next day: remainder after the 10h gap.
		{10 * sim.Hour, 6 * sim.Hour, 4*sim.Hour + 10*sim.Hour + 2*sim.Hour},
		// Starts while offline: waits for the next window.
		{15 * sim.Hour, 1 * sim.Hour, 9*sim.Hour + 1*sim.Hour},
		// Several full windows.
		{0, 30 * sim.Hour, 2*(10*sim.Hour) + 30*sim.Hour},
	}
	for i, c := range cases {
		got := diurnalDelay(c.now, c.wall, 0, on)
		if math.Abs(got-c.want) > 1e-6 {
			t.Fatalf("case %d: diurnalDelay(%v, %v) = %v, want %v", i, c.now, c.wall, got, c.want)
		}
	}
	// Phase shifts the window: at now=phase the host has a full window.
	if got := diurnalDelay(20*sim.Hour, 14*sim.Hour, 20*sim.Hour, on); got != 14*sim.Hour {
		t.Fatalf("phase-aligned window: %v", got)
	}
}

// TestDiurnalStretchesElapsedNotReported: a diurnal host takes longer on
// the wall clock but reports the same run time — availability is not
// accounting.
func TestDiurnalStretchesElapsedNotReported(t *testing.T) {
	run := func(profiles []BehaviorProfile) (done sim.Time, reported float64) {
		engine := sim.NewEngine()
		srv := makeServer(t, engine, 3, 3600)
		cfg := DefaultHostConfig()
		cfg.AbandonProb = 0
		cfg.ErrorProb = 0
		cfg.Profiles = profiles
		h := NewHost(0, engine, srv, cfg, rng.New(44))
		h.Start()
		srv.OnComplete = func(*wcg.WUState) { done = engine.Now() }
		engine.RunUntil(26 * sim.Week)
		return done, h.CPUSpent
	}
	flatDone, flatCPU := run(nil)
	diurnalDone, diurnalCPU := run(DiurnalProfiles(10, 0))
	if diurnalDone <= flatDone {
		t.Fatalf("diurnal host finished no later: %v vs %v", diurnalDone, flatDone)
	}
	// Same seed, same speed-down sample, same reported time per task.
	if math.Abs(diurnalCPU-flatCPU) > 1e-9 {
		t.Fatalf("diurnal availability changed reported CPU: %v vs %v", diurnalCPU, flatCPU)
	}
}

// TestDiurnalDeterministic: a profiled population is bit-deterministic in
// its seed (the per-host phase draws come from the host streams, nothing
// global).
func TestDiurnalDeterministic(t *testing.T) {
	a := popStats(t, DiurnalProfiles(DefaultOnlineHours, DefaultHostConfig().ErrorProb), 40, 6*sim.Week)
	b := popStats(t, DiurnalProfiles(DefaultOnlineHours, DefaultHostConfig().ErrorProb), 40, 6*sim.Week)
	if a != b {
		t.Fatalf("same seed, different stats:\n%+v\n%+v", a, b)
	}
}
