package volunteer

import (
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wcg"
	"repro/internal/workunit"
)

// drive grows, works and shrinks a population on the given stack,
// returning the fingerprint a reused stack must reproduce exactly.
func drive(engine *sim.Engine, srv *wcg.Server, pop *Population) (completed int64, cpu float64, joined int, mean float64) {
	for i := 0; i < 5000; i++ {
		srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 10, RefSeconds: 3600}, 0)
	}
	pop.SetTarget(40)
	engine.RunUntil(2 * sim.Week)
	pop.SetTarget(10)
	engine.RunUntil(3 * sim.Week)
	pop.SetTarget(60)
	engine.RunUntil(5 * sim.Week)
	return srv.Stats.Completed, srv.Stats.CPUSeconds, pop.TotalJoined(), pop.MeanSpeedDown()
}

func testStack(seed uint64) (*sim.Engine, *wcg.Server, *Population) {
	engine := sim.NewEngine()
	srv := wcg.NewServer(engine, wcg.Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 12 * sim.Day})
	pop := NewPopulation(engine, srv, DefaultHostConfig(), rng.New(seed))
	return engine, srv, pop
}

func TestPopulationResetMatchesFresh(t *testing.T) {
	fe, fs, fp := testStack(123)
	wantC, wantCPU, wantJ, wantM := drive(fe, fs, fp)

	// Dirty a stack with a different seed, reset every layer, rerun with
	// the fresh stack's seed: the outcome must be bit-for-bit identical.
	engine, srv, pop := testStack(999)
	drive(engine, srv, pop)
	engine.Reset()
	srv.Reset(wcg.Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 12 * sim.Day})
	pop.Reset(DefaultHostConfig(), rng.New(123))
	if pop.Active() != 0 || pop.TotalJoined() != 0 || pop.MeanSpeedDown() != 0 {
		t.Fatalf("reset population not empty: active=%d joined=%d", pop.Active(), pop.TotalJoined())
	}
	gotC, gotCPU, gotJ, gotM := drive(engine, srv, pop)
	if gotC != wantC || gotCPU != wantCPU || gotJ != wantJ || gotM != wantM {
		t.Fatalf("reused stack diverged: completed %d/%d cpu %v/%v joined %d/%d mean %v/%v",
			gotC, wantC, gotCPU, wantCPU, gotJ, wantJ, gotM, wantM)
	}
}

func TestPopulationResetReusesHostStructs(t *testing.T) {
	engine, srv, pop := testStack(7)
	for i := 0; i < 100000; i++ {
		srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 10, RefSeconds: 3600}, 0)
	}
	pop.SetTarget(50)
	firstRun := append([]*Host(nil), pop.Hosts()...)
	engine.RunUntil(2 * sim.Week)

	engine.Reset()
	srv.Reset(wcg.Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 12 * sim.Day})
	pop.Reset(DefaultHostConfig(), rng.New(8))
	for i := 0; i < 100000; i++ {
		srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 10, RefSeconds: 3600}, 0)
	}
	pop.SetTarget(50)
	reused := 0
	for i, h := range pop.Hosts() {
		if h == firstRun[i] {
			reused++
		}
		if h.Done != 0 || h.CPUSpent != 0 || h.Stopped() {
			t.Fatalf("host %d kept state across Reset: %+v", i, h)
		}
		if h.ID != i {
			t.Fatalf("host %d has ID %d", i, h.ID)
		}
	}
	if reused != 50 {
		t.Fatalf("reused %d of 50 host structs", reused)
	}
	// The recycled fleet must still work.
	engine.RunUntil(2 * sim.Week)
	if srv.Stats.Completed == 0 {
		t.Fatal("recycled hosts completed nothing")
	}
}

func TestPopulationSpawnSeedMatchesSplit(t *testing.T) {
	// The pooled spawn path seeds host streams in place from p.r.Uint64();
	// the pre-pooling code passed p.r.Split() to NewHost. Both must sample
	// identical hosts.
	engine, srv, pop := testStack(31)
	pop.SetTarget(20)

	r2 := rng.New(31)
	for i, h := range pop.Hosts() {
		want := NewHost(i, engine, srv, DefaultHostConfig(), r2.Split())
		if h.SpeedDown != want.SpeedDown || h.Hardware != want.Hardware {
			t.Fatalf("host %d sampled differently: pooled (%v,%v) vs split (%v,%v)",
				i, h.SpeedDown, h.Hardware, want.SpeedDown, want.Hardware)
		}
	}
}
