package volunteer

import (
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/snapshot"
	"repro/internal/wcg"
)

// hostSnap captures one Host: the whole struct by value (rng stream, mux
// port, in-flight task, bound method values — which close over the
// receiver pointer and so stay valid) plus the work-cache contents.
type hostSnap struct {
	h     *Host
	state Host
	cache snapshot.Slice[*wcg.Assignment]
}

// PopulationSnapshot captures a Population (the legacy per-Host kernel)
// at an event boundary; see the snapshot package doc for the model. Every
// host ever joined in the run is copied struct-wise; pooled (not yet
// respawned) hosts are captured as pointers only, because spawn fully
// re-initializes a recycled struct. On a multiplexed population the
// shared per-host debt slab is captured too (each port's debt vector is a
// window into it).
type PopulationSnapshot struct {
	hosts     snapshot.Slice[*Host]
	hostSnaps []hostSnap

	active, nextID, firstActive int

	pool     snapshot.Slice[*Host]
	poolNext int

	rsrc     rng.Source
	muxDebts snapshot.Slice[float64]
}

// Capture records p's complete mutable state.
func (snap *PopulationSnapshot) Capture(p *Population) {
	snap.hosts.Capture(p.hosts)
	for len(snap.hostSnaps) < len(p.hosts) {
		snap.hostSnaps = append(snap.hostSnaps, hostSnap{})
	}
	for i, h := range p.hosts {
		hs := &snap.hostSnaps[i]
		hs.h = h
		hs.state = *h
		hs.cache.Capture(h.cache)
	}
	snap.active, snap.nextID, snap.firstActive = p.active, p.nextID, p.firstActive
	snap.pool.Capture(p.pool)
	snap.poolNext = p.poolNext
	snap.rsrc = *p.r
	if p.mux != nil {
		snap.muxDebts.Capture(p.mux.debts)
	}
}

// Restore rewinds p to the captured state. p must be the population the
// snapshot was captured from, not Reset since.
func (snap *PopulationSnapshot) Restore(p *Population) {
	n := snap.hosts.Len()
	for i := 0; i < n; i++ {
		hs := &snap.hostSnaps[i]
		*hs.h = hs.state
		hs.h.cache = hs.cache.Restore()
	}
	p.hosts = snap.hosts.Restore()
	p.active, p.nextID, p.firstActive = snap.active, snap.nextID, snap.firstActive
	p.pool = snap.pool.Restore()
	p.poolNext = snap.poolNext
	*p.r = snap.rsrc
	if p.mux != nil {
		p.mux.debts = snap.muxDebts.Restore()
	}
}

// kernelShardSnap captures one shard's calendar: the window-bucket table
// (outer header + every window's contents), the free-bucket list, the
// refill queue and the current-window merge buffer. curBuf aliases the
// current window's bucket by construction; both captures were taken at
// the same instant, so the restore's double-write is consistent.
type kernelShardSnap struct {
	buckets    snapshot.Slice[[]planeEvent]
	bucketData []snapshot.Slice[planeEvent]
	freeB      snapshot.Slice[[]planeEvent]
	refill     snapshot.Slice[int32]
	curBuf     snapshot.Slice[planeEvent]
}

// KernelSnapshot captures a ShardKernel (the SoA mega-grid kernel) at an
// event boundary: every SoA column, the spawn-slot pool, the per-shard
// calendars, the overlay heap, the window cursor and the population
// stream. The SpawnHint callback is captured as a func value because the
// campaign's drain phase nils it. See the snapshot package doc.
type KernelSnapshot struct {
	flags       snapshot.Slice[uint8]
	speedDown   snapshot.Slice[float64]
	src         snapshot.Slice[rng.Source]
	dec         snapshot.Slice[decision]
	errorProb   snapshot.Slice[float64]
	abandonProb snapshot.Slice[float64]
	phase       snapshot.Slice[float64]
	onlineSpan  snapshot.Slice[float64]
	joinedAt    snapshot.Slice[sim.Time]
	hardware    snapshot.Slice[float64]
	done        snapshot.Slice[int32]
	cpuSpent    snapshot.Slice[float64]
	cur         snapshot.Slice[*wcg.Assignment]
	curOutcome  snapshot.Slice[wcg.Outcome]
	curReported snapshot.Slice[float64]
	cacheLen    snapshot.Slice[int32]
	cache       snapshot.Slice[*wcg.Assignment]

	active, firstActive int

	pool     snapshot.Slice[spawnSlot]
	poolHead int
	rsrc     rng.Source

	spawnHint func(week float64) int

	shards  []kernelShardSnap
	cursor  snapshot.Slice[int]
	win     int
	winEnd  sim.Time
	armed   bool
	prevWin int
	overlay snapshot.Slice[planeEvent]

	livePlane, peekSrc int
}

// Capture records k's complete mutable state.
func (snap *KernelSnapshot) Capture(k *ShardKernel) {
	snap.flags.Capture(k.flags)
	snap.speedDown.Capture(k.speedDown)
	snap.src.Capture(k.src)
	snap.dec.Capture(k.dec)
	snap.errorProb.Capture(k.errorProb)
	snap.abandonProb.Capture(k.abandonProb)
	snap.phase.Capture(k.phase)
	snap.onlineSpan.Capture(k.onlineSpan)
	snap.joinedAt.Capture(k.joinedAt)
	snap.hardware.Capture(k.hardware)
	snap.done.Capture(k.done)
	snap.cpuSpent.Capture(k.cpuSpent)
	snap.cur.Capture(k.cur)
	snap.curOutcome.Capture(k.curOutcome)
	snap.curReported.Capture(k.curReported)
	snap.cacheLen.Capture(k.cacheLen)
	snap.cache.Capture(k.cache)

	snap.active, snap.firstActive = k.active, k.firstActive

	snap.pool.Capture(k.pool)
	snap.poolHead = k.poolHead
	snap.rsrc = *k.r
	snap.spawnHint = k.SpawnHint

	for len(snap.shards) < k.shards {
		snap.shards = append(snap.shards, kernelShardSnap{})
	}
	snap.shards = snap.shards[:k.shards]
	for sh := 0; sh < k.shards; sh++ {
		ss := &snap.shards[sh]
		ss.buckets.Capture(k.buckets[sh])
		for len(ss.bucketData) < len(k.buckets[sh]) {
			ss.bucketData = append(ss.bucketData, snapshot.Slice[planeEvent]{})
		}
		for w := range k.buckets[sh] {
			ss.bucketData[w].Capture(k.buckets[sh][w])
		}
		ss.freeB.Capture(k.freeB[sh])
		ss.refill.Capture(k.refill[sh])
		ss.curBuf.Capture(k.curBuf[sh])
	}
	snap.cursor.Capture(k.cursor)
	snap.win, snap.winEnd = k.win, k.winEnd
	snap.armed, snap.prevWin = k.armed, k.prevWin
	snap.overlay.Capture(k.overlay)
	snap.livePlane, snap.peekSrc = k.livePlane, k.peekSrc
}

// Restore rewinds k to the captured state. k must be the kernel the
// snapshot was captured from, not Reset since (same shard count).
func (snap *KernelSnapshot) Restore(k *ShardKernel) {
	k.flags = snap.flags.Restore()
	k.speedDown = snap.speedDown.Restore()
	k.src = snap.src.Restore()
	k.dec = snap.dec.Restore()
	k.errorProb = snap.errorProb.Restore()
	k.abandonProb = snap.abandonProb.Restore()
	k.phase = snap.phase.Restore()
	k.onlineSpan = snap.onlineSpan.Restore()
	k.joinedAt = snap.joinedAt.Restore()
	k.hardware = snap.hardware.Restore()
	k.done = snap.done.Restore()
	k.cpuSpent = snap.cpuSpent.Restore()
	k.cur = snap.cur.Restore()
	k.curOutcome = snap.curOutcome.Restore()
	k.curReported = snap.curReported.Restore()
	k.cacheLen = snap.cacheLen.Restore()
	k.cache = snap.cache.Restore()

	k.active, k.firstActive = snap.active, snap.firstActive

	k.pool = snap.pool.Restore()
	k.poolHead = snap.poolHead
	*k.r = snap.rsrc
	k.SpawnHint = snap.spawnHint

	for sh := range snap.shards {
		ss := &snap.shards[sh]
		for w := 0; w < ss.buckets.Len(); w++ {
			ss.bucketData[w].Restore()
		}
		k.buckets[sh] = ss.buckets.Restore()
		k.freeB[sh] = ss.freeB.Restore()
		k.refill[sh] = ss.refill.Restore()
		k.curBuf[sh] = ss.curBuf.Restore()
	}
	k.cursor = snap.cursor.Restore()
	k.win, k.winEnd = snap.win, snap.winEnd
	k.armed, k.prevWin = snap.armed, snap.prevWin
	k.overlay = snap.overlay.Restore()
	k.livePlane, k.peekSrc = snap.livePlane, snap.peekSrc
}

// RunBefore merges and executes events with timestamps strictly before
// deadline, exactly as RunUntil would order them, and stops without
// advancing the clock to the deadline or prepping the window that
// contains it. The snapshot/fork path uses it to end a shared prefix at
// a divergence time T: the window barrier covering T (bucket sorting,
// decision refills, spawn-pool top-up) runs in each forked suffix, under
// the forked cell's config, exactly as a straight run of that cell would
// have run it.
func (k *ShardKernel) RunBefore(deadline sim.Time) {
	e := k.eng
	if !k.armed {
		k.prepWindow(k.win)
		k.armed = true
	}
	for {
		pt, pseq, pok := k.peekPlane()
		et, eseq, eok := e.Peek()
		if pok && (!eok || pt < et || (pt == et && pseq < eseq)) {
			if pt >= deadline {
				break
			}
			ev := k.popPlane()
			k.exec(ev)
			continue
		}
		if eok && et < k.winEnd {
			if et >= deadline {
				break
			}
			e.Step()
			continue
		}
		// Current window exhausted on both calendars; advance the barrier
		// only while the next window can still hold events before the
		// deadline (its start is the current winEnd).
		if k.livePlane == 0 {
			if !eok || et >= deadline {
				break
			}
			k.prepWindow(int(et / k.window))
			continue
		}
		if k.winEnd >= deadline {
			break
		}
		k.prepWindow(k.win + 1)
	}
}
