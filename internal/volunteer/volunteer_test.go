package volunteer

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/wcg"
	"repro/internal/workunit"
)

func makeServer(t testing.TB, engine *sim.Engine, nWU int, refSeconds float64) *wcg.Server {
	t.Helper()
	srv := wcg.NewServer(engine, wcg.Config{
		InitialQuorum: 1,
		SteadyQuorum:  1,
		Deadline:      12 * sim.Day,
	})
	for i := 0; i < nWU; i++ {
		srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 10, RefSeconds: refSeconds}, 0)
	}
	return srv
}

func TestMeanSpeedDownConstant(t *testing.T) {
	if math.Abs(MeanSpeedDown-3.96) > 0.05 {
		t.Fatalf("MeanSpeedDown = %v, want ≈ 3.96 (§6)", MeanSpeedDown)
	}
}

func TestHostSpeedDownDistribution(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 1, 100)
	r := rng.New(1)
	cfg := DefaultHostConfig()
	const n = 20000
	var invSum float64
	for i := 0; i < n; i++ {
		h := NewHost(i, engine, srv, cfg, r.Split())
		if h.SpeedDown < 1 {
			t.Fatalf("host %d speed-down %v < 1", i, h.SpeedDown)
		}
		invSum += 1 / h.SpeedDown
	}
	// The throughput-weighted (harmonic) mean is what the paper observes.
	harmonic := n / invSum
	if math.Abs(harmonic-MeanSpeedDown)/MeanSpeedDown > 0.03 {
		t.Fatalf("harmonic mean speed-down %v, want ≈ %v", harmonic, MeanSpeedDown)
	}
}

func TestHostCompletesWork(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 5, 1000)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 0
	cfg.ErrorProb = 0
	h := NewHost(0, engine, srv, cfg, rng.New(2))
	h.Start()
	engine.RunUntil(52 * sim.Week)
	if srv.Stats.Completed != 5 {
		t.Fatalf("completed %d of 5 workunits", srv.Stats.Completed)
	}
	if h.Done != 5 {
		t.Fatalf("host Done = %d", h.Done)
	}
	// Reported CPU = refSeconds × speed-down for every task.
	want := 5 * 1000 * h.SpeedDown
	if math.Abs(h.CPUSpent-want) > 1e-6 {
		t.Fatalf("CPUSpent = %v, want %v", h.CPUSpent, want)
	}
}

func TestHostStopsAfterCurrentTask(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 100, 1000)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 0
	cfg.ErrorProb = 0
	h := NewHost(0, engine, srv, cfg, rng.New(3))
	h.Start()
	// Stop the host shortly after it picks up its first task.
	engine.After(1, func() { h.Stop() })
	engine.RunUntil(52 * sim.Week)
	if h.Done != 1 {
		t.Fatalf("stopped host completed %d tasks, want exactly 1", h.Done)
	}
}

func TestHostErrorCausesResend(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 1, 100)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 0
	cfg.ErrorProb = 1 // always invalid
	bad := NewHost(0, engine, srv, cfg, rng.New(4))
	bad.Start()
	engine.RunUntil(sim.Day)
	bad.Stop()
	// A clean host finishes the job.
	good := cfg
	good.ErrorProb = 0
	h := NewHost(1, engine, srv, good, rng.New(5))
	h.Start()
	engine.RunUntil(20 * sim.Day)
	if srv.Stats.Invalid == 0 {
		t.Fatal("no invalid results recorded")
	}
	if srv.Stats.Completed != 1 {
		t.Fatalf("workunit not completed after resend: %+v", srv.Stats)
	}
}

func TestAbandonTimesOutAndReissues(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 1, 100)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 1
	cfg.LateReturnProb = 0
	quitter := NewHost(0, engine, srv, cfg, rng.New(6))
	quitter.Start()
	engine.RunUntil(sim.Hour)
	quitter.Stop()
	good := DefaultHostConfig()
	good.AbandonProb = 0
	good.ErrorProb = 0
	h := NewHost(1, engine, srv, good, rng.New(7))
	h.Start()
	engine.RunUntil(60 * sim.Day)
	if srv.Stats.TimedOut == 0 {
		t.Fatal("no timeout recorded")
	}
	if srv.Stats.Completed != 1 {
		t.Fatalf("workunit not reissued and completed: %+v", srv.Stats)
	}
}

func TestLateReturnCountedAsWasted(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 1, 100)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 1
	cfg.LateReturnProb = 1
	late := NewHost(0, engine, srv, cfg, rng.New(8))
	late.Start()
	engine.RunUntil(sim.Hour)
	late.Stop()
	good := DefaultHostConfig()
	good.AbandonProb = 0
	good.ErrorProb = 0
	h := NewHost(1, engine, srv, good, rng.New(9))
	h.Start()
	engine.RunUntil(80 * sim.Day)
	if srv.Stats.Completed != 1 {
		t.Fatalf("not completed: %+v", srv.Stats)
	}
	// The late copy eventually arrived after the good host validated the
	// workunit: received > useful.
	if srv.Stats.Received != 2 {
		t.Fatalf("received %d results, want 2 (one late)", srv.Stats.Received)
	}
	if srv.Stats.Wasted != 1 {
		t.Fatalf("wasted = %d, want 1", srv.Stats.Wasted)
	}
}

func TestPopulationSetTarget(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 10000, 3600)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 0
	cfg.ErrorProb = 0
	pop := NewPopulation(engine, srv, cfg, rng.New(10))
	pop.SetTarget(50)
	if pop.Active() != 50 {
		t.Fatalf("active = %d", pop.Active())
	}
	engine.RunUntil(sim.Day)
	pop.SetTarget(20)
	if pop.Active() != 20 {
		t.Fatalf("after shrink: active = %d", pop.Active())
	}
	pop.SetTarget(80)
	if pop.Active() != 80 {
		t.Fatalf("after regrow: active = %d", pop.Active())
	}
	if pop.TotalJoined() != 110 { // 50 + 60 new (stopped ones don't return)
		t.Fatalf("total joined = %d", pop.TotalJoined())
	}
	pop.SetTarget(-5)
	if pop.Active() != 0 {
		t.Fatalf("negative target should stop everyone, active = %d", pop.Active())
	}
}

func TestPopulationThroughputScales(t *testing.T) {
	// Twice the hosts should complete roughly twice the work in the same
	// window.
	run := func(hosts int) int64 {
		engine := sim.NewEngine()
		srv := makeServer(t, engine, 100000, 3600)
		cfg := DefaultHostConfig()
		pop := NewPopulation(engine, srv, cfg, rng.New(42))
		pop.SetTarget(hosts)
		engine.RunUntil(4 * sim.Week)
		return srv.Stats.Completed
	}
	c1 := run(20)
	c2 := run(40)
	ratio := float64(c2) / float64(c1)
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("throughput ratio %v for 2x hosts (completed %d vs %d)", ratio, c1, c2)
	}
}

func TestMeanSpeedDownAccessor(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 10, 100)
	pop := NewPopulation(engine, srv, DefaultHostConfig(), rng.New(3))
	if pop.MeanSpeedDown() != 0 {
		t.Fatal("empty population should report 0")
	}
	pop.SetTarget(100)
	m := pop.MeanSpeedDown()
	if m < 2.5 || m > 6.5 {
		t.Fatalf("population mean speed-down %v out of plausible band", m)
	}
}

func TestGridModelFigure1Shape(t *testing.T) {
	g := DefaultGridModel()
	const days = 3 * 364 // three years from launch
	series := g.DailyVFTP(days, 1)
	if len(series) != days {
		t.Fatalf("len = %d", len(series))
	}
	// Growth: final quarter mean well above first quarter mean.
	q := days / 4
	var first, last float64
	for d := 0; d < q; d++ {
		first += series[d]
		last += series[days-1-d]
	}
	if last < 3*first {
		t.Fatalf("grid did not grow enough: first-quarter sum %v, last %v", first, last)
	}
	// Weekend dip: weekday mean above weekend mean.
	var cal sim.Calendar
	var wd, we, nwd, nwe float64
	for d := 0; d < days; d++ {
		if cal.IsWeekend(float64(d) * sim.Day) {
			we += series[d]
			nwe++
		} else {
			wd += series[d]
			nwd++
		}
	}
	if wd/nwd <= we/nwe {
		t.Fatal("no weekend dip in Figure 1 series")
	}
	// Holiday dip: Christmas window below the surrounding trend.
	xmas := series[40]
	beforeXmas := series[30]
	if xmas > beforeXmas {
		t.Fatalf("no Christmas dip: day40=%v day30=%v", xmas, beforeXmas)
	}
}

func TestGridModelDeterministic(t *testing.T) {
	g := DefaultGridModel()
	a := g.DailyVFTP(100, 7)
	b := g.DailyVFTP(100, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("day %d differs", i)
		}
	}
}

func TestGridModelCampaignEraCapacity(t *testing.T) {
	// The HCMD campaign runs roughly weeks 110-136 of the grid model; the
	// paper reports an average available capacity of ~54,947 VFTP there.
	g := DefaultGridModel()
	var sum float64
	for w := 110; w < 136; w++ {
		sum += g.VFTPAt(float64(w))
	}
	avg := sum / 26
	if avg < 45000 || avg > 65000 {
		t.Fatalf("campaign-era capacity %v, want ≈ 55,000", avg)
	}
}

func TestNewHostPanics(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 1, 1)
	cfg := DefaultHostConfig()
	cfg.MeanSpeedDown = 0
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHost(0, engine, srv, cfg, rng.New(1))
}

func BenchmarkPopulationMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		engine := sim.NewEngine()
		srv := makeServer(b, engine, 50000, 3600)
		pop := NewPopulation(engine, srv, DefaultHostConfig(), rng.New(1))
		pop.SetTarget(100)
		engine.RunUntil(4 * sim.Week)
	}
}

func TestBOINCAccountingReportsLess(t *testing.T) {
	// Same device, same work: the BOINC agent reports CPU time (hardware
	// factor only), the UD agent reports wall time (throttle + priority
	// included). §8 of the paper.
	run := func(mode AccountingMode) float64 {
		engine := sim.NewEngine()
		srv := makeServer(t, engine, 3, 1000)
		cfg := DefaultHostConfig()
		cfg.AbandonProb = 0
		cfg.ErrorProb = 0
		cfg.Accounting = mode
		h := NewHost(0, engine, srv, cfg, rng.New(77))
		h.Start()
		engine.RunUntil(26 * sim.Week)
		if srv.Stats.Completed != 3 {
			t.Fatalf("mode %v: completed %d", mode, srv.Stats.Completed)
		}
		return srv.Stats.CPUSeconds
	}
	ud := run(UDWallClock)
	boinc := run(BOINCCPUTime)
	if boinc >= ud {
		t.Fatalf("BOINC accounting (%v) should report less than UD (%v)", boinc, ud)
	}
	// The ratio is the throttle × priority share of the speed-down.
	ratio := ud / boinc
	want := UDThrottleFactor * PriorityFactor
	if math.Abs(ratio-want)/want > 0.01 {
		t.Fatalf("accounting ratio %v, want %v", ratio, want)
	}
}

func TestBOINCAccountingSameWallTime(t *testing.T) {
	// Accounting must not change physics: completion takes the same wall
	// time under both modes.
	run := func(mode AccountingMode) float64 {
		engine := sim.NewEngine()
		srv := makeServer(t, engine, 1, 1000)
		cfg := DefaultHostConfig()
		cfg.AbandonProb = 0
		cfg.ErrorProb = 0
		cfg.Accounting = mode
		h := NewHost(0, engine, srv, cfg, rng.New(78))
		h.Start()
		done := -1.0
		srv.OnComplete = func(*wcg.WUState) { done = engine.Now() }
		engine.RunUntil(26 * sim.Week)
		return done
	}
	if ud, boinc := run(UDWallClock), run(BOINCCPUTime); ud != boinc {
		t.Fatalf("wall completion differs: %v vs %v", ud, boinc)
	}
}

func TestHardwareTrendNewerHostsFaster(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 10, 100)
	cfg := DefaultHostConfig()
	cfg.HardwareTrendPerWeek = 0.01
	// Average speed-down of a cohort joining now vs two years later.
	r := rng.New(5)
	var early, late float64
	const n = 2000
	for i := 0; i < n; i++ {
		early += NewHost(i, engine, srv, cfg, r.Split()).SpeedDown
	}
	engine.RunUntil(104 * sim.Week)
	for i := 0; i < n; i++ {
		late += NewHost(n+i, engine, srv, cfg, r.Split()).SpeedDown
	}
	if late >= early {
		t.Fatalf("later cohort not faster: %v vs %v", late/n, early/n)
	}
	// Two years at 1%/week ⇒ ≈ ×1/2.04.
	ratio := early / late
	if ratio < 1.7 || ratio > 2.4 {
		t.Fatalf("trend ratio %v, want ≈ 2", ratio)
	}
}

func TestHardwareFloor(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 1, 1)
	r := rng.New(9)
	for i := 0; i < 5000; i++ {
		h := NewHost(i, engine, srv, DefaultHostConfig(), r.Split())
		if h.Hardware < 1 {
			t.Fatalf("hardware factor %v < 1", h.Hardware)
		}
		if h.Hardware > h.SpeedDown+1e-9 {
			t.Fatalf("hardware %v exceeds total speed-down %v", h.Hardware, h.SpeedDown)
		}
	}
}

func TestWorkBufferCompletesEverything(t *testing.T) {
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 20, 1000)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 0
	cfg.ErrorProb = 0
	cfg.WorkBuffer = 5
	h := NewHost(0, engine, srv, cfg, rng.New(21))
	h.Start()
	engine.RunUntil(52 * sim.Week)
	if srv.Stats.Completed != 20 {
		t.Fatalf("completed %d of 20 with a work buffer", srv.Stats.Completed)
	}
	if h.Done != 20 {
		t.Fatalf("host Done = %d", h.Done)
	}
}

func TestWorkBufferAgesTasksTowardDeadline(t *testing.T) {
	// A deep buffer on a slow host makes cached tasks miss the deadline —
	// the turnaround cost of BOINC's connect-interval knob.
	run := func(buffer int) int64 {
		engine := sim.NewEngine()
		srv := wcg.NewServer(engine, wcg.Config{
			InitialQuorum: 1, SteadyQuorum: 1, Deadline: 2 * sim.Day,
		})
		for i := 0; i < 40; i++ {
			srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 1, RefSeconds: 6 * sim.Hour}, 0)
		}
		cfg := DefaultHostConfig()
		cfg.AbandonProb = 0
		cfg.ErrorProb = 0
		cfg.WorkBuffer = buffer
		h := NewHost(0, engine, srv, cfg, rng.New(31))
		h.Start()
		engine.RunUntil(30 * sim.Day)
		return srv.Stats.TimedOut
	}
	shallow := run(1)
	deep := run(20)
	if deep <= shallow {
		t.Fatalf("deep buffer should time out more: %d vs %d", deep, shallow)
	}
}

func TestWorkBufferStaysBounded(t *testing.T) {
	// The reusable cache array must compact, not grow with every fetch
	// (regression: with WorkBuffer >= 2 the refill kept one unconsumed
	// entry alive and the slice grew by one per task processed).
	engine := sim.NewEngine()
	srv := makeServer(t, engine, 500, 100)
	cfg := DefaultHostConfig()
	cfg.AbandonProb = 0
	cfg.ErrorProb = 0
	cfg.WorkBuffer = 3
	h := NewHost(0, engine, srv, cfg, rng.New(13))
	h.Start()
	engine.RunUntil(52 * sim.Week)
	if srv.Stats.Completed != 500 {
		t.Fatalf("completed %d of 500", srv.Stats.Completed)
	}
	if len(h.cache) > cfg.WorkBuffer {
		t.Fatalf("cache grew to %d entries (buffer %d)", len(h.cache), cfg.WorkBuffer)
	}
}

func TestWorkBufferDefaultUnchanged(t *testing.T) {
	// Buffer 0/1 must behave exactly like the original fetch-one loop.
	run := func(buffer int) int64 {
		engine := sim.NewEngine()
		srv := makeServer(t, engine, 10, 500)
		cfg := DefaultHostConfig()
		cfg.WorkBuffer = buffer
		h := NewHost(0, engine, srv, cfg, rng.New(8))
		h.Start()
		engine.RunUntil(8 * sim.Week)
		return srv.Stats.Received
	}
	if run(0) != run(1) {
		t.Fatal("buffer 0 and 1 should be identical")
	}
}
