package volunteer

import "repro/internal/wcg"

// WorkSource is what a volunteer host needs from the project side of the
// grid: a place to fetch work from, report results to, and ask deadlines
// of. A single-project population binds a *wcg.Server here directly — the
// host's fetch-compute-report loop then behaves exactly as it did before
// the interface existed (same calls, same order, no extra random draws, no
// allocation), which is what keeps single-project runs byte-identical to
// the pre-multiplexer golden hashes. A multi-project population instead
// binds each host its own *MuxPort (see Mux), which arbitrates every
// request across the attached project servers.
//
// Determinism contract: an implementation must be a pure function of the
// simulation state and its own seeded stream — no wall clock, no map
// iteration, no shared mutable state across hosts that depends on event
// arrival races. The discrete-event engine serializes all calls, so
// implementations need no locking.
type WorkSource interface {
	// RequestWork hands out one assignment, or nil when no attached
	// project has work available.
	RequestWork() *wcg.Assignment
	// CompleteFrom reports a finished assignment back to the server that
	// issued it. host is the reporting device's identity (for per-host
	// validation trust); negative means anonymous.
	CompleteFrom(a *wcg.Assignment, outcome wcg.Outcome, cpuSeconds float64, host int)
	// DeadlineFor returns the reissue deadline of the assignment's
	// deadline class on the server that issued it.
	DeadlineFor(a *wcg.Assignment) float64
}

// The production server satisfies WorkSource by construction.
var _ WorkSource = (*wcg.Server)(nil)

// RetryAdvisor is an optional WorkSource extension: when a host's fetch
// comes up empty, the advisor decides how long to wait before the next
// attempt instead of the flat Config.IdleRetry. The fault plane
// (internal/faults) implements it to substitute capped exponential backoff
// with seeded jitter while the server is down, and announced-maintenance
// deferral with reconnect smearing.
//
// Both kernels resolve the advisor once, by type assertion at bind time; a
// plain *wcg.Server (which does not implement it) costs one nil check per
// idle retry and keeps the flat delay — byte-identical to the pre-advisor
// code.
type RetryAdvisor interface {
	// FetchRetryDelay returns how long host should wait before its next
	// fetch given the configured flat idle-retry delay. Must be positive
	// and deterministic in (simulation state, host, call order) — the
	// same contract as WorkSource.
	FetchRetryDelay(host int, idleRetry float64) float64
}
