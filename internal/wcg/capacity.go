package wcg

import (
	"fmt"
	"math"

	"repro/internal/workunit"
)

// Task-server capacity model (§3.2). The wanted workunit duration is "also
// constrained by the capacity of the servers at World Community Grid to
// distribute the work to volunteer devices: it determines the rate of
// transactions with the servers" — the paper cites the BOINC task-server
// study of Anderson, Korpela and Walton for the machinery. This file
// provides the closed-form planning model: how many server transactions a
// packaging choice implies, and the smallest workunit duration a given
// server can sustain.

// ServerCapacity describes a task server's sustainable load.
type ServerCapacity struct {
	// TransactionsPerSecond the server sustains (scheduler RPCs that
	// assign or collect work). The BOINC task-server paper measured
	// hundreds per second on 2005 hardware.
	TransactionsPerSecond float64
	// TxPerResult is the number of transactions one result copy costs:
	// one to fetch, one to report (plus validator/assimilator work folded
	// into the constant).
	TxPerResult float64
	// UtilizationTarget is the fraction of capacity the operator is
	// willing to spend on one project (headroom for the other hosted
	// projects and load spikes).
	UtilizationTarget float64
}

// DefaultServerCapacity reflects a mid-2000s BOINC task server hosting
// several projects.
func DefaultServerCapacity() ServerCapacity {
	return ServerCapacity{
		TransactionsPerSecond: 200,
		TxPerResult:           2,
		UtilizationTarget:     0.25,
	}
}

// LoadFor returns the average transactions per second a campaign imposes:
// copies sent (workunits × redundancy) × transactions per copy, spread over
// the campaign duration.
func (c ServerCapacity) LoadFor(workunits int64, redundancy float64, campaignSeconds float64) float64 {
	if campaignSeconds <= 0 {
		panic("wcg: campaign duration must be positive")
	}
	if redundancy < 1 {
		redundancy = 1
	}
	return float64(workunits) * redundancy * c.TxPerResult / campaignSeconds
}

// Sustainable reports whether the load fits in the project's share of the
// server.
func (c ServerCapacity) Sustainable(loadTxPerSec float64) bool {
	return loadTxPerSec <= c.TransactionsPerSecond*c.UtilizationTarget
}

// MaxWorkunits returns the largest workunit count the server sustains over
// a campaign of the given length at the given redundancy.
func (c ServerCapacity) MaxWorkunits(redundancy float64, campaignSeconds float64) int64 {
	if redundancy < 1 {
		redundancy = 1
	}
	budget := c.TransactionsPerSecond * c.UtilizationTarget * campaignSeconds
	return int64(budget / (redundancy * c.TxPerResult))
}

// MinWantedHours finds the smallest §4.2 wanted duration h whose packaging
// the server can sustain over the campaign, by bisection on the monotone
// count(h) curve. Returns the duration and the resulting workunit count.
// It searches h in [0.1, 1000] hours and errors if even the largest h
// exceeds capacity.
func (c ServerCapacity) MinWantedHours(plan func(hHours float64) int64, redundancy, campaignSeconds float64) (float64, int64, error) {
	limit := c.MaxWorkunits(redundancy, campaignSeconds)
	lo, hi := 0.1, 1000.0
	if plan(hi) > limit {
		return 0, 0, fmt.Errorf("wcg: even %v-hour workunits exceed server capacity (%d > %d)", hi, plan(hi), limit)
	}
	if plan(lo) <= limit {
		return lo, plan(lo), nil
	}
	for i := 0; i < 50 && hi-lo > 1e-3; i++ {
		mid := (lo + hi) / 2
		if plan(mid) > limit {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi, plan(hi), nil
}

// HumanFactorHours is the §3.2 empirical target: "the team at World
// Community Grid has determined a workunit should last around 10 hours...
// the time a volunteer would wait to accomplish a workunit".
const HumanFactorHours = 10.0

// RecommendWantedHours combines both §3.2 constraints: at least the
// server-sustainable minimum, at most the volunteer patience budget. It
// returns the recommended h given a packaging plan for the dataset.
func RecommendWantedHours(plan *workunit.Plan, cap ServerCapacity, redundancy, campaignSeconds float64) (float64, error) {
	count := func(h float64) int64 {
		return workunit.NewPlan(plan.DS, plan.M, h).Count()
	}
	minH, _, err := cap.MinWantedHours(count, redundancy, campaignSeconds)
	if err != nil {
		return 0, err
	}
	h := math.Max(minH, 1)
	if h > HumanFactorHours {
		return HumanFactorHours, fmt.Errorf("wcg: server needs %0.1f-hour workunits, beyond the %v-hour human factor", h, HumanFactorHours)
	}
	return h, nil
}

// TransactionsEstimate returns the §3.2 planning numbers for a concrete
// packaging: total copies, total transactions and average rate.
func TransactionsEstimate(count int64, redundancy, campaignSeconds float64) (copies int64, tx int64, perSecond float64) {
	if redundancy < 1 {
		redundancy = 1
	}
	copies = int64(math.Round(float64(count) * redundancy))
	tx = copies * 2
	perSecond = float64(tx) / campaignSeconds
	return copies, tx, perSecond
}
