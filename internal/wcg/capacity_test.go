package wcg

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/protein"
	"repro/internal/workunit"
)

func TestLoadForPaperCampaign(t *testing.T) {
	c := DefaultServerCapacity()
	// The deployed campaign: ~3.94 M workunits × 1.37 redundancy over
	// 26 weeks ⇒ ~0.7 tx/s — easily sustainable, as it was in practice.
	load := c.LoadFor(3936010, 1.37, 26*7*86400)
	if load < 0.5 || load > 1.5 {
		t.Fatalf("load = %v tx/s", load)
	}
	if !c.Sustainable(load) {
		t.Fatal("the production campaign must be sustainable")
	}
}

func TestLoadForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	DefaultServerCapacity().LoadFor(1, 1, 0)
}

func TestLoadClampsRedundancy(t *testing.T) {
	c := DefaultServerCapacity()
	if c.LoadFor(100, 0.5, 100) != c.LoadFor(100, 1, 100) {
		t.Fatal("redundancy below 1 should clamp")
	}
}

func TestMaxWorkunits(t *testing.T) {
	c := ServerCapacity{TransactionsPerSecond: 100, TxPerResult: 2, UtilizationTarget: 0.5}
	// Budget: 100 × 0.5 × 1000 s = 50,000 tx ⇒ 25,000 copies ⇒ at
	// redundancy 1, 25,000 workunits.
	if got := c.MaxWorkunits(1, 1000); got != 25000 {
		t.Fatalf("max = %d", got)
	}
	if got := c.MaxWorkunits(2, 1000); got != 12500 {
		t.Fatalf("max at redundancy 2 = %d", got)
	}
}

func TestMinWantedHoursMonotone(t *testing.T) {
	ds := protein.Generate(12, 5)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 2})
	count := func(h float64) int64 { return workunit.NewPlan(ds, m, h).Count() }

	// A tight server forces long workunits; a loose one allows short ones.
	tight := ServerCapacity{TransactionsPerSecond: 1, TxPerResult: 2, UtilizationTarget: 0.01}
	loose := ServerCapacity{TransactionsPerSecond: 1e6, TxPerResult: 2, UtilizationTarget: 1}
	week := 7 * 86400.0

	hLoose, cLoose, err := loose.MinWantedHours(count, 1.37, 26*week)
	if err != nil {
		t.Fatal(err)
	}
	if hLoose != 0.1 {
		t.Fatalf("loose server should allow the minimum h, got %v", hLoose)
	}
	if cLoose != count(0.1) {
		t.Fatalf("count mismatch")
	}

	hTight, cTight, err := tight.MinWantedHours(count, 1.37, 26*week)
	if err != nil {
		t.Fatal(err)
	}
	if hTight <= hLoose {
		t.Fatalf("tight server must force longer workunits: %v vs %v", hTight, hLoose)
	}
	if cTight > tight.MaxWorkunits(1.37, 26*week) {
		t.Fatalf("returned packaging exceeds capacity: %d", cTight)
	}
}

func TestMinWantedHoursInfeasible(t *testing.T) {
	count := func(h float64) int64 { return 1 << 40 } // absurd constant load
	c := ServerCapacity{TransactionsPerSecond: 1, TxPerResult: 2, UtilizationTarget: 0.1}
	if _, _, err := c.MinWantedHours(count, 1, 86400); err == nil {
		t.Fatal("expected infeasibility error")
	}
}

func TestRecommendWantedHours(t *testing.T) {
	ds := protein.Generate(12, 5)
	m := costmodel.Synthesize(ds, costmodel.SynthesizeOptions{Seed: 2})
	plan := workunit.NewPlan(ds, m, 10)
	week := 7 * 86400.0

	// A normal server: the recommendation respects the human factor.
	h, err := RecommendWantedHours(plan, DefaultServerCapacity(), 1.37, 26*week)
	if err != nil {
		t.Fatal(err)
	}
	if h < 1 || h > HumanFactorHours {
		t.Fatalf("recommended h = %v", h)
	}

	// A starved server: needs workunits longer than volunteers accept.
	starved := ServerCapacity{TransactionsPerSecond: 0.0004, TxPerResult: 2, UtilizationTarget: 0.1}
	if _, err := RecommendWantedHours(plan, starved, 1.37, 26*week); err == nil {
		t.Fatal("expected human-factor conflict")
	}
}

func TestTransactionsEstimate(t *testing.T) {
	copies, tx, rate := TransactionsEstimate(1000, 1.37, 1000)
	if copies != 1370 {
		t.Fatalf("copies = %d", copies)
	}
	if tx != 2740 {
		t.Fatalf("tx = %d", tx)
	}
	if math.Abs(rate-2.74) > 1e-12 {
		t.Fatalf("rate = %v", rate)
	}
}
