package wcg

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workunit"
)

// pickScheduler maps a fuzz byte to a scheduler policy (nil = default
// FIFO), covering every implementation including the seeded-random one.
func pickScheduler(b uint8, seed uint64) Scheduler {
	switch b % 5 {
	case 1:
		return FIFOScheduler{}
	case 2:
		return LIFOScheduler{}
	case 3:
		return RandomScheduler{Seed: seed + 1}
	case 4:
		return BatchPriorityScheduler{}
	}
	return nil
}

// pickValidator maps a fuzz byte to a validation policy (nil = default).
func pickValidator(b uint8) Validator {
	switch b % 3 {
	case 1:
		return QuorumValidator{}
	case 2:
		return AdaptiveValidator{Streak: int(b%5) + 1}
	}
	return nil
}

// pickDeadlinePolicy maps a fuzz byte to a deadline policy (nil = default
// single class at cfg.Deadline).
func pickDeadlinePolicy(b uint8) DeadlinePolicy {
	switch b % 3 {
	case 1:
		return UniformDeadline{}
	case 2:
		return DeadlineClasses{
			{MaxRefSeconds: 100, Deadline: 3 * sim.Day},
			{Deadline: 5 * sim.Day},
		}
	}
	return nil
}

// TestServerInvariantsUnderRandomTraffic drives the server with randomized
// agent behaviour (complete / error / vanish / late return, random delays,
// mid-run quorum switch) under a randomized scheduler × validator ×
// deadline-policy combination and asserts the accounting invariants hold
// in every reachable state.
func TestServerInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64, nWU8, schedPick, valPick, dlPick uint8, quorum2 bool) bool {
		r := rng.New(seed)
		engine := sim.NewEngine()
		initial := 1
		if quorum2 {
			initial = 2
		}
		srv := NewServer(engine, Config{
			InitialQuorum:    initial,
			SteadyQuorum:     1,
			QuorumSwitchTime: 30 * sim.Day,
			Deadline:         5 * sim.Day,
			Scheduler:        pickScheduler(schedPick, seed),
			Validator:        pickValidator(valPick),
			DeadlinePolicy:   pickDeadlinePolicy(dlPick),
		})
		nWU := int(nWU8%40) + 1
		for i := 0; i < nWU; i++ {
			ref := 60 + float64(i%2)*80 // straddles the two-class cut at 100
			srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 2, RefSeconds: ref}, i%4)
		}
		// A pool of randomized agents served by one polling loop; the
		// agent slot doubles as the host identity so adaptive validation
		// sees stable hosts building streaks.
		agents := r.Intn(8) + 1
		var loop func()
		loop = func() {
			for k := 0; k < agents; k++ {
				a := srv.RequestWork()
				if a == nil {
					break
				}
				host := k
				switch r.Intn(10) {
				case 0: // vanish: deadline will fire
				case 1: // invalid result after a short delay
					delay := r.Float64() * 3 * sim.Day
					engine.After(delay, func() { srv.CompleteFrom(a, OutcomeInvalid, delay, host) })
				case 2: // very late valid result (after the deadline)
					delay := 5*sim.Day + r.Float64()*10*sim.Day
					engine.After(delay, func() { srv.CompleteFrom(a, OutcomeValid, delay, host) })
				default: // normal valid result
					delay := r.Float64() * 2 * sim.Day
					engine.After(delay, func() { srv.CompleteFrom(a, OutcomeValid, delay, host) })
				}
			}
			engine.After(6*sim.Hour, loop)
		}
		loop()
		engine.RunUntil(200 * sim.Day)

		st := srv.Stats
		// Invariants.
		if st.Completed != int64(nWU) {
			return false // everything must eventually complete
		}
		if st.Useful+st.Wasted+st.Invalid != st.Received {
			return false
		}
		if st.Valid > st.Received || st.Completed > st.Valid {
			return false
		}
		if st.Sent < st.Completed {
			return false
		}
		if st.RedundancyFactor() < 1 {
			return false
		}
		// No workunit may have negative outstanding copies, whichever
		// structure the scheduler keeps them in.
		bad := false
		srv.schedEach(func(wuState *WUState) {
			if wuState.outstanding < 0 {
				bad = true
			}
		})
		return !bad
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- Differential fuzzing: production server vs brute-force reference ---

// Non-commensurate deadlines: timeout events must never share a timestamp
// with the 6-hour polling grid or with the other class's timeouts, so the
// two implementations cannot diverge on same-time event ordering that the
// specification leaves open.
const (
	diffDL0     = 3*sim.Day + 1001.7
	diffDL1     = 7*sim.Day + 517.3
	diffCut     = 100.0
	diffHorizon = 250 * sim.Day
)

// trafficServer is the driver-facing surface shared by the production
// server and the reference implementation.
type trafficServer interface {
	add(wu workunit.Workunit, batch int)
	request() (handle any, ok bool)
	finish(handle any, oc Outcome, cpuSeconds float64, host int)
}

type realTraffic struct{ s *Server }

func (r realTraffic) add(wu workunit.Workunit, batch int) { r.s.AddWorkunit(wu, batch) }
func (r realTraffic) request() (any, bool) {
	if a := r.s.RequestWork(); a != nil {
		return a, true
	}
	return nil, false
}
func (r realTraffic) finish(h any, oc Outcome, cpu float64, host int) {
	r.s.CompleteFrom(h.(*Assignment), oc, cpu, host)
}

type refTraffic struct{ s *refServer }

func (r refTraffic) add(wu workunit.Workunit, batch int) { r.s.addWorkunit(wu, batch) }
func (r refTraffic) request() (any, bool) {
	if a := r.s.requestWork(); a != nil {
		return a, true
	}
	return nil, false
}
func (r refTraffic) finish(h any, oc Outcome, cpu float64, host int) {
	r.s.completeResult(h.(*refAssignment), oc, cpu, host)
}

// driveTraffic runs the scripted randomized workload against one server:
// a fixed agent pool polling every six hours, each granted copy drawn to
// complete, err, vanish, or return very late. The draw sequence depends
// only on the sequence of granted requests, so two semantically
// equivalent servers see bit-identical traffic.
func driveTraffic(engine *sim.Engine, ts trafficServer, seed uint64, nWU, agents int) {
	r := rng.New(seed)
	for i := 0; i < nWU; i++ {
		ref := 40 + r.Float64()*120 // straddles the class cut at diffCut
		ts.add(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 2, RefSeconds: ref}, r.Intn(5))
	}
	var loop func()
	loop = func() {
		for k := 0; k < agents; k++ {
			h, ok := ts.request()
			if !ok {
				break
			}
			host := k
			switch r.Intn(12) {
			case 0: // vanish: the deadline fires
			case 1, 2: // invalid result
				d := r.Float64() * 2 * sim.Day
				engine.After(d, func() { ts.finish(h, OutcomeInvalid, d, host) })
			case 3: // very late valid result (after every class deadline)
				d := 8*sim.Day + r.Float64()*8*sim.Day
				engine.After(d, func() { ts.finish(h, OutcomeValid, d, host) })
			default: // normal valid result
				d := r.Float64() * 2 * sim.Day
				engine.After(d, func() { ts.finish(h, OutcomeValid, d, host) })
			}
		}
		engine.After(6*sim.Hour, loop)
	}
	loop()
	engine.RunUntil(diffHorizon)
}

// TestPolicyCombosMatchReference is the policy layer's differential safety
// net: every deterministic scheduler × validator × deadline-class
// combination must produce, under identical randomized traffic, exactly
// the Stats and queue depth of the brute-force reference server. (The
// seeded-random scheduler is excluded — its draw sequence is an
// implementation detail — and is covered by the invariant fuzz above.)
func TestPolicyCombosMatchReference(t *testing.T) {
	f := func(seed uint64, schedPick, nWU8 uint8, quorum2, adaptive, twoClass bool) bool {
		nWU := int(nWU8%30) + 5
		agents := int(seed%6) + 2
		initial := 1
		if quorum2 {
			initial = 2
		}
		threshold := int(seed%4) + 2
		switchTime := 30*sim.Day + 7777.7

		cfg := Config{
			InitialQuorum:    initial,
			SteadyQuorum:     1,
			QuorumSwitchTime: switchTime,
			Deadline:         diffDL0,
		}
		rcfg := refConfig{
			initialQuorum: initial,
			steadyQuorum:  1,
			switchTime:    switchTime,
			classCut:      nil,
			classDeadline: []float64{diffDL0},
			adaptive:      adaptive,
			threshold:     threshold,
		}
		switch schedPick % 3 {
		case 0:
			cfg.Scheduler, rcfg.sched = FIFOScheduler{}, refFIFO
		case 1:
			cfg.Scheduler, rcfg.sched = LIFOScheduler{}, refLIFO
		case 2:
			cfg.Scheduler, rcfg.sched = BatchPriorityScheduler{}, refBatch
		}
		if adaptive {
			cfg.Validator = AdaptiveValidator{Streak: threshold}
		}
		if twoClass {
			cfg.DeadlinePolicy = DeadlineClasses{
				{MaxRefSeconds: diffCut, Deadline: diffDL0},
				{Deadline: diffDL1},
			}
			rcfg.classCut = []float64{diffCut}
			rcfg.classDeadline = []float64{diffDL0, diffDL1}
		}

		realEngine := sim.NewEngine()
		real := NewServer(realEngine, cfg)
		driveTraffic(realEngine, realTraffic{real}, seed, nWU, agents)

		refEngine := sim.NewEngine()
		ref := newRefServer(refEngine, rcfg)
		driveTraffic(refEngine, refTraffic{ref}, seed, nWU, agents)

		if real.Stats != ref.stats {
			t.Logf("combo sched=%d q=%d adaptive=%v 2class=%v seed=%d:\nreal: %+v\nref:  %+v",
				schedPick%3, initial, adaptive, twoClass, seed, real.Stats, ref.stats)
			return false
		}
		if real.PendingCount() != ref.pendingCount() {
			t.Logf("pending mismatch: real %d, ref %d", real.PendingCount(), ref.pendingCount())
			return false
		}
		if real.Stats.Completed == 0 {
			t.Logf("degenerate run: nothing completed")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainAfterQuorumDrop floods the server during the quorum-2 era
// and checks no workunit is orphaned by the switch (the regression the
// maybeComplete fix addresses).
func TestServerDrainAfterQuorumDrop(t *testing.T) {
	engine := sim.NewEngine()
	srv := NewServer(engine, Config{
		InitialQuorum:    2,
		SteadyQuorum:     1,
		QuorumSwitchTime: 10 * sim.Day,
		Deadline:         3 * sim.Day,
	})
	const n = 200
	for i := 0; i < n; i++ {
		srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 1, RefSeconds: 1}, 0)
	}
	// Era 1: every workunit gets exactly one valid return; the second copy
	// vanishes (timeout).
	for {
		a := srv.RequestWork()
		if a == nil {
			break
		}
		if a.WU.validReturns == 0 && a.WU.outstanding == 1 {
			srv.Complete(a, OutcomeValid, 1)
		}
		// else: leave the copy to time out
	}
	// Cross the switch and let the timeouts + reissues play out.
	engine.RunUntil(60 * sim.Day)
	for {
		a := srv.RequestWork()
		if a == nil {
			break
		}
		srv.Complete(a, OutcomeValid, 1)
	}
	engine.RunUntil(120 * sim.Day)
	// One more pass: reissues scheduled by late timeouts.
	for {
		a := srv.RequestWork()
		if a == nil {
			break
		}
		srv.Complete(a, OutcomeValid, 1)
	}
	if srv.Stats.Completed != n {
		t.Fatalf("completed %d of %d after quorum drop", srv.Stats.Completed, n)
	}
}
