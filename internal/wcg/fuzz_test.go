package wcg

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/workunit"
)

// TestServerInvariantsUnderRandomTraffic drives the server with randomized
// agent behaviour (complete / error / vanish / late return, random delays,
// mid-run quorum switch) and asserts the accounting invariants hold in
// every reachable state.
func TestServerInvariantsUnderRandomTraffic(t *testing.T) {
	f := func(seed uint64, nWU8 uint8, quorum2 bool) bool {
		r := rng.New(seed)
		engine := sim.NewEngine()
		initial := 1
		if quorum2 {
			initial = 2
		}
		srv := NewServer(engine, Config{
			InitialQuorum:    initial,
			SteadyQuorum:     1,
			QuorumSwitchTime: 30 * sim.Day,
			Deadline:         5 * sim.Day,
		})
		nWU := int(nWU8%40) + 1
		for i := 0; i < nWU; i++ {
			srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 2, RefSeconds: 100}, 0)
		}
		// A pool of randomized agents served by one polling loop.
		agents := r.Intn(8) + 1
		var loop func()
		loop = func() {
			for k := 0; k < agents; k++ {
				a := srv.RequestWork()
				if a == nil {
					break
				}
				switch r.Intn(10) {
				case 0: // vanish: deadline will fire
				case 1: // invalid result after a short delay
					delay := r.Float64() * 3 * sim.Day
					engine.After(delay, func() { srv.Complete(a, OutcomeInvalid, delay) })
				case 2: // very late valid result (after the deadline)
					delay := 5*sim.Day + r.Float64()*10*sim.Day
					engine.After(delay, func() { srv.Complete(a, OutcomeValid, delay) })
				default: // normal valid result
					delay := r.Float64() * 2 * sim.Day
					engine.After(delay, func() { srv.Complete(a, OutcomeValid, delay) })
				}
			}
			engine.After(6*sim.Hour, loop)
		}
		loop()
		engine.RunUntil(200 * sim.Day)

		st := srv.Stats
		// Invariants.
		if st.Completed != int64(nWU) {
			return false // everything must eventually complete
		}
		if st.Useful+st.Wasted+st.Invalid != st.Received {
			return false
		}
		if st.Valid > st.Received || st.Completed > st.Valid {
			return false
		}
		if st.Sent < st.Completed {
			return false
		}
		if st.RedundancyFactor() < 1 {
			return false
		}
		// No workunit may have negative outstanding copies.
		for i := srv.qHead; i < len(srv.queue); i++ {
			if wuState := srv.queue[i]; wuState != nil && wuState.outstanding < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestServerDrainAfterQuorumDrop floods the server during the quorum-2 era
// and checks no workunit is orphaned by the switch (the regression the
// maybeComplete fix addresses).
func TestServerDrainAfterQuorumDrop(t *testing.T) {
	engine := sim.NewEngine()
	srv := NewServer(engine, Config{
		InitialQuorum:    2,
		SteadyQuorum:     1,
		QuorumSwitchTime: 10 * sim.Day,
		Deadline:         3 * sim.Day,
	})
	const n = 200
	for i := 0; i < n; i++ {
		srv.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 1, RefSeconds: 1}, 0)
	}
	// Era 1: every workunit gets exactly one valid return; the second copy
	// vanishes (timeout).
	for {
		a := srv.RequestWork()
		if a == nil {
			break
		}
		if a.WU.validReturns == 0 && a.WU.outstanding == 1 {
			srv.Complete(a, OutcomeValid, 1)
		}
		// else: leave the copy to time out
	}
	// Cross the switch and let the timeouts + reissues play out.
	engine.RunUntil(60 * sim.Day)
	for {
		a := srv.RequestWork()
		if a == nil {
			break
		}
		srv.Complete(a, OutcomeValid, 1)
	}
	engine.RunUntil(120 * sim.Day)
	// One more pass: reissues scheduled by late timeouts.
	for {
		a := srv.RequestWork()
		if a == nil {
			break
		}
		srv.Complete(a, OutcomeValid, 1)
	}
	if srv.Stats.Completed != n {
		t.Fatalf("completed %d of %d after quorum drop", srv.Stats.Completed, n)
	}
}
