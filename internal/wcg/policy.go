// Grid policies: the pluggable mechanisms of the middleware.
//
// The paper's campaign is one fixed point in policy space — FIFO dispatch,
// a single quorum 2→1 switch, one server-wide deadline. The Scheduler,
// Validator and DeadlinePolicy interfaces turn each of those mechanisms
// into a configuration choice, so the scenario catalog can vary the
// *mechanism*, not just its parameters, without forking the engine.
//
// # Binding contract
//
// A policy is bound to a server once, at NewServer or Reset time: its bind
// method resolves the policy to concrete method values and plain state on
// the Server struct. The per-transaction hot path therefore pays no
// interface dispatch — RequestWork and Complete call bound func values and
// check plain fields, exactly as the hardcoded mechanisms did. Policy
// values themselves carry parameters only (a seed, a threshold, a class
// table); all run state lives in the Server and is retained across Reset
// like every other arena (see the package-level Reset contract).
//
// The bind methods are unexported: policy implementations live in this
// package, next to the counters and rings they must keep exact.
package wcg

import (
	"fmt"

	"repro/internal/rng"
)

// Scheduler selects the order queued workunits are dispatched in.
// The zero value of every implementation is ready to use; nil in
// Config.Scheduler means FIFOScheduler (the production order).
type Scheduler interface {
	fmt.Stringer
	bindScheduler(s *Server)
}

// Validator selects the validation regime: how many results, from whom,
// complete a workunit. nil in Config.Validator means QuorumValidator.
type Validator interface {
	fmt.Stringer
	bindValidator(s *Server)
}

// DeadlinePolicy selects the reissue-deadline regime. nil in
// Config.DeadlinePolicy means UniformDeadline (one class at
// Config.Deadline).
type DeadlinePolicy interface {
	fmt.Stringer
	bindDeadline(s *Server)
}

// --- Schedulers ---

// FIFOScheduler dispatches workunits in the order they were enqueued —
// the production policy: a workunit stays at the queue head while it
// needs more copies out.
type FIFOScheduler struct{}

func (FIFOScheduler) String() string { return "fifo" }

func (FIFOScheduler) bindScheduler(s *Server) {
	s.schedNext = s.fifoNext
	s.schedPush = s.queuePush
	s.schedEach = s.queueEach
}

// LIFOScheduler dispatches the most recently enqueued workunit first: the
// queue is a stack. Freshly released batches preempt older ones, so the
// oldest work starves until the release stream dries up — the adversarial
// mirror of the production order.
type LIFOScheduler struct{}

func (LIFOScheduler) String() string { return "lifo" }

func (LIFOScheduler) bindScheduler(s *Server) {
	s.schedNext = s.lifoNext
	s.schedPush = s.queuePush
	s.schedEach = s.queueEach
}

// RandomScheduler dispatches a uniformly random queued workunit, drawn
// from its own seeded stream — deterministic in Seed, independent of the
// host population's streams.
type RandomScheduler struct {
	Seed uint64
}

func (RandomScheduler) String() string { return "random" }

func (r RandomScheduler) bindScheduler(s *Server) {
	rng.NewInto(&s.schedRand, r.Seed)
	s.schedNext = s.randNext
	s.schedPush = s.queuePush
	s.schedEach = s.queueEach
}

// BatchPriorityScheduler dispatches strictly by batch seniority: all
// copies of the earliest-released batch still needing work go out before
// anything from a later batch (FIFO within a batch). Reissues of an old
// batch preempt newer batches, so the campaign finishes what it started
// first — the policy that minimizes in-flight batches.
type BatchPriorityScheduler struct{}

func (BatchPriorityScheduler) String() string { return "batch-priority" }

func (BatchPriorityScheduler) bindScheduler(s *Server) {
	s.schedNext = s.batchNext
	s.schedPush = s.batchPush
	s.schedEach = s.batchEach
}

// --- Validators ---

// QuorumValidator is the production regime driven by the Config quorum
// fields: comparison validation at InitialQuorum until QuorumSwitchTime,
// then value-checked results at SteadyQuorum (§5.1/§5.2).
type QuorumValidator struct{}

func (QuorumValidator) String() string { return "quorum-switch" }

func (QuorumValidator) bindValidator(s *Server) {
	s.adaptiveOn = false
	s.adThreshold = 0
}

// AdaptiveValidator layers BOINC-style adaptive replication on top of the
// quorum regime: a host whose streak of valid results has reached Streak
// becomes trusted, and a valid result from a trusted host completes a
// workunit alone — per-host quorum 1 — while untrusted hosts still need
// the quorum in force. An invalid result resets the host's streak to
// zero, so saboteur cohorts never earn trust for long.
//
// Trust state is per server run (cleared by Reset) and keyed by the host
// identity passed to CompleteFrom; results reported without a host
// identity (Complete) never earn or use trust.
type AdaptiveValidator struct {
	// Streak is the number of consecutive valid results a host must
	// return before its results validate alone. Must be ≥ 1.
	Streak int
}

func (v AdaptiveValidator) String() string { return fmt.Sprintf("adaptive-%d", v.Streak) }

func (v AdaptiveValidator) bindValidator(s *Server) {
	if v.Streak < 1 {
		panic("wcg: AdaptiveValidator.Streak must be at least 1")
	}
	s.adaptiveOn = true
	s.adThreshold = v.Streak
}

// --- Deadline policies ---

// UniformDeadline is the production regime: one deadline class for every
// workunit, at Config.Deadline. This is the single-wheel fast path.
type UniformDeadline struct{}

func (UniformDeadline) String() string { return "uniform" }

func (UniformDeadline) bindDeadline(s *Server) {
	s.sizeWheels(1)
	s.wheels[0].deadline = s.cfg.Deadline
	s.classCut = s.classCut[:0]
	s.classFn = nil
}

// DeadlineClass is one band of a DeadlineClasses policy: workunits whose
// reference duration is at most MaxRefSeconds (and above every earlier
// class's bound) are reissued after Deadline.
type DeadlineClass struct {
	// MaxRefSeconds is the class's upper bound on workunit reference
	// seconds. The last class is the catch-all; its bound is ignored.
	MaxRefSeconds float64
	// Deadline is how long a copy of this class may stay out. Must be
	// positive.
	Deadline float64
}

// DeadlineClasses partitions workunits into a small number of deadline
// classes by reference duration, each served by its own exact deadline
// wheel: short workunits can be reclaimed aggressively while long ones
// keep a lenient deadline, and every timeout still fires at exactly
// IssuedAt+class deadline. Classes must be listed in increasing
// MaxRefSeconds order.
type DeadlineClasses []DeadlineClass

func (d DeadlineClasses) String() string { return fmt.Sprintf("classes-%d", len(d)) }

func (d DeadlineClasses) bindDeadline(s *Server) {
	if len(d) == 0 {
		panic("wcg: DeadlineClasses needs at least one class")
	}
	if len(d) > 256 {
		panic("wcg: too many deadline classes")
	}
	for i, c := range d {
		if c.Deadline <= 0 {
			panic("wcg: deadline class with non-positive deadline")
		}
		if i+1 < len(d) && (c.MaxRefSeconds <= 0 || (i > 0 && c.MaxRefSeconds <= d[i-1].MaxRefSeconds)) {
			panic("wcg: deadline class bounds must be positive and increasing")
		}
	}
	s.sizeWheels(len(d))
	s.classCut = s.classCut[:0]
	for i, c := range d {
		s.wheels[i].deadline = c.Deadline
		if i+1 < len(d) {
			s.classCut = append(s.classCut, c.MaxRefSeconds)
		}
	}
	s.classFn = s.classOf
}

// bindPolicies resolves the configured policies (or their production
// defaults) into the server's bound method values and plain state. Called
// from NewServer and Reset, after checkConfig; the scheduler's shared
// structures (queue, buckets) must already be empty.
func (s *Server) bindPolicies() {
	sched := s.cfg.Scheduler
	if sched == nil {
		sched = FIFOScheduler{}
	}
	sched.bindScheduler(s)
	val := s.cfg.Validator
	if val == nil {
		val = QuorumValidator{}
	}
	val.bindValidator(s)
	dl := s.cfg.DeadlinePolicy
	if dl == nil {
		dl = UniformDeadline{}
	}
	dl.bindDeadline(s)
}

// --- Scheduler implementations (bound as method values) ---

// queuePush appends to the shared work queue: the FIFO, LIFO and random
// schedulers all enqueue at the tail and differ only in what they take.
func (s *Server) queuePush(st *WUState) {
	s.queue = append(s.queue, st)
}

// queueEach visits every workunit in the shared queue (quorum recount).
func (s *Server) queueEach(fn func(*WUState)) {
	for i := s.qHead; i < len(s.queue); i++ {
		if st := s.queue[i]; st != nil {
			fn(st)
		}
	}
}

// issueVerdict is the outcome of the shared issue protocol for one
// scan candidate.
type issueVerdict int

const (
	// issueDiscard: the candidate is stale (completed or fully
	// subscribed) — remove it and keep scanning.
	issueDiscard issueVerdict = iota
	// issueConsume: a copy was issued and the workunit is now fully
	// subscribed — remove it and return it.
	issueConsume
	// issueKeep: a copy was issued and the workunit still needs more
	// copies (quorum > 1) — leave it in place and return it.
	issueKeep
)

// issueProtocol is the invariant-critical core every scheduler's take
// loop runs on a candidate: complete it if the quorum in force already
// allows, discard it when stale, otherwise issue one copy and decide
// whether it stays in the scheduler's structure. The counter updates
// live here (and in the caller's removal primitive, which re-syncs after
// clearing the queued flag) so the four schedulers cannot drift apart.
func (s *Server) issueProtocol(st *WUState) issueVerdict {
	s.maybeComplete(st)
	if st.Completed || !s.needsCopies(st) {
		return issueDiscard
	}
	st.outstanding++
	if !s.needsCopies(st) {
		return issueConsume
	}
	s.syncCounts(st)
	return issueKeep
}

// fifoNext takes the next copy to issue in FIFO order: scan from the
// queue head, dropping stale entries; a workunit that still needs more
// copies after this issue stays at the head.
func (s *Server) fifoNext() *WUState {
	for s.qHead < len(s.queue) {
		st := s.queue[s.qHead]
		if st == nil {
			s.dequeueHead(nil)
			continue
		}
		switch s.issueProtocol(st) {
		case issueDiscard:
			s.dequeueHead(st)
		case issueConsume:
			s.dequeueHead(st)
			return st
		default:
			return st
		}
	}
	return nil
}

// popTail removes the queue's tail entry (LIFO consumption).
func (s *Server) popTail(st *WUState) {
	n := len(s.queue) - 1
	s.queue[n] = nil
	s.queue = s.queue[:n]
	st.queued = false
	s.syncCounts(st)
}

// lifoNext takes the next copy in LIFO order: the queue is a stack, and a
// workunit still needing copies stays on top.
func (s *Server) lifoNext() *WUState {
	for len(s.queue) > 0 {
		st := s.queue[len(s.queue)-1]
		switch s.issueProtocol(st) {
		case issueDiscard:
			s.popTail(st)
		case issueConsume:
			s.popTail(st)
			return st
		default:
			return st
		}
	}
	return nil
}

// swapRemove removes queue[i] by moving the tail into its slot — the
// random scheduler keeps the queue dense so a uniform index draw is a
// uniform workunit draw.
func (s *Server) swapRemove(i int, st *WUState) {
	n := len(s.queue) - 1
	s.queue[i] = s.queue[n]
	s.queue[n] = nil
	s.queue = s.queue[:n]
	st.queued = false
	s.syncCounts(st)
}

// randNext takes a uniformly random queued workunit. Stale entries are
// discarded as they are drawn, so each loop iteration either issues or
// shrinks the queue — O(1) amortized like the other schedulers.
func (s *Server) randNext() *WUState {
	for {
		n := len(s.queue)
		if n == 0 {
			return nil
		}
		i := s.schedRand.Intn(n)
		st := s.queue[i]
		switch s.issueProtocol(st) {
		case issueDiscard:
			s.swapRemove(i, st)
		case issueConsume:
			s.swapRemove(i, st)
			return st
		default:
			return st
		}
	}
}

// batchPush enqueues into the per-batch bucket, assigning each batch its
// seniority rank (first-enqueue order) the first time it appears.
func (s *Server) batchPush(st *WUState) {
	b := st.Batch
	for len(s.batchRank) <= b {
		s.batchRank = append(s.batchRank, 0)
	}
	if s.batchRank[b] == 0 {
		s.nextRank++
		s.batchRank[b] = s.nextRank
		for len(s.buckets) < s.nextRank {
			s.buckets = append(s.buckets, nil)
			s.bucketHead = append(s.bucketHead, 0)
		}
	}
	r := s.batchRank[b] - 1
	s.buckets[r] = append(s.buckets[r], st)
	if r < s.minBucket {
		s.minBucket = r
	}
}

// batchEach visits every bucketed workunit (quorum recount).
func (s *Server) batchEach(fn func(*WUState)) {
	for r := range s.buckets {
		q := s.buckets[r]
		for i := s.bucketHead[r]; i < len(q); i++ {
			if st := q[i]; st != nil {
				fn(st)
			}
		}
	}
}

// consumeBucketHead removes the head entry of the bucket at rank r,
// keeping the queued flag, counters and consumed-prefix compaction in
// sync — the bucketed analog of dequeueHead.
func (s *Server) consumeBucketHead(r int, st *WUState) {
	h := s.bucketHead[r]
	s.buckets[r][h] = nil
	s.bucketHead[r] = h + 1
	if st != nil {
		st.queued = false
		s.syncCounts(st)
	}
	s.buckets[r], s.bucketHead[r] = compactPrefix(s.buckets[r], s.bucketHead[r])
}

// batchNext takes the next copy in strict batch-seniority order: FIFO
// within the most senior bucket that still has live entries. minBucket
// only moves backward on a push to a more senior bucket, so the forward
// scan is amortized by the pushes that reset it.
func (s *Server) batchNext() *WUState {
	for s.minBucket < len(s.buckets) {
		r := s.minBucket
		if s.bucketHead[r] >= len(s.buckets[r]) {
			clear(s.buckets[r])
			s.buckets[r] = s.buckets[r][:0]
			s.bucketHead[r] = 0
			s.minBucket++
			continue
		}
		st := s.buckets[r][s.bucketHead[r]]
		if st == nil {
			s.consumeBucketHead(r, nil)
			continue
		}
		switch s.issueProtocol(st) {
		case issueDiscard:
			s.consumeBucketHead(r, st)
		case issueConsume:
			s.consumeBucketHead(r, st)
			return st
		default:
			return st
		}
	}
	return nil
}

// --- Deadline wheel sizing ---

// sizeWheels arranges exactly n deadline wheels, clearing every wheel
// ever created first (a stale ring must not pin the previous run's
// assignment arena) and retaining ring backing arrays and drain closures
// across Reset. Deadlines are set by the caller after sizing.
func (s *Server) sizeWheels(n int) {
	full := s.wheels[:cap(s.wheels)]
	for i := range full {
		clear(full[i].dlq)
		full[i].dlq = full[i].dlq[:0]
		full[i].dlHead = 0
		full[i].armed = false
		full[i].deadline = 0
	}
	if cap(full) >= n {
		s.wheels = full[:n]
	} else {
		s.wheels = full
		for len(s.wheels) < n {
			s.wheels = append(s.wheels, wheel{})
		}
	}
	for k := range s.wheels {
		if s.wheels[k].drainFn == nil {
			k := k
			s.wheels[k].drainFn = func() { s.drainWheel(k) }
		}
	}
}

// classOf maps a workunit to its deadline class: the first class whose
// reference-seconds bound covers it, the last class catching the rest.
func (s *Server) classOf(st *WUState) uint8 {
	for i, cut := range s.classCut {
		if st.WU.RefSeconds <= cut {
			return uint8(i)
		}
	}
	return uint8(len(s.classCut))
}
