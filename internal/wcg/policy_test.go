package wcg

// Unit tests for the policy layer: dispatch order per scheduler, adaptive
// trust mechanics, deadline classes on their own wheels, and the Reset
// contract across policy switches.

import (
	"testing"

	"repro/internal/sim"
)

func withScheduler(sched Scheduler) Config {
	cfg := q1Config()
	cfg.Scheduler = sched
	return cfg
}

// issueOrder adds n workunits and records the order their IDs go out in.
func issueOrder(t *testing.T, cfg Config, n int) []int64 {
	t.Helper()
	_, srv := newTestServer(cfg)
	for i := 0; i < n; i++ {
		srv.AddWorkunit(wu(int64(i), 100), i)
	}
	var order []int64
	for {
		a := srv.RequestWork()
		if a == nil {
			break
		}
		order = append(order, a.WU.WU.ID)
		srv.Complete(a, OutcomeValid, 1)
	}
	if len(order) != n {
		t.Fatalf("issued %d of %d", len(order), n)
	}
	return order
}

func TestSchedulerDispatchOrder(t *testing.T) {
	const n = 6
	fifo := issueOrder(t, withScheduler(FIFOScheduler{}), n)
	lifo := issueOrder(t, withScheduler(LIFOScheduler{}), n)
	def := issueOrder(t, Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 10 * sim.Day}, n)
	for i := 0; i < n; i++ {
		if fifo[i] != int64(i) {
			t.Fatalf("FIFO order: %v", fifo)
		}
		if lifo[i] != int64(n-1-i) {
			t.Fatalf("LIFO order: %v", lifo)
		}
		if def[i] != fifo[i] {
			t.Fatalf("nil scheduler is not FIFO: %v", def)
		}
	}
}

func TestRandomSchedulerDeterministicInSeed(t *testing.T) {
	a := issueOrder(t, withScheduler(RandomScheduler{Seed: 7}), 20)
	b := issueOrder(t, withScheduler(RandomScheduler{Seed: 7}), 20)
	c := issueOrder(t, withScheduler(RandomScheduler{Seed: 8}), 20)
	same, diff := true, false
	for i := range a {
		same = same && a[i] == b[i]
		diff = diff || a[i] != c[i]
	}
	if !same {
		t.Fatalf("same seed, different order:\n%v\n%v", a, b)
	}
	if !diff {
		t.Fatalf("different seeds, identical order: %v", a)
	}
}

// TestBatchPrioritySeniority: a senior batch's reissue preempts junior
// batches even after the senior bucket drained once.
func TestBatchPrioritySeniority(t *testing.T) {
	engine, srv := newTestServer(withScheduler(BatchPriorityScheduler{}))
	// Batch 7 enqueued first → senior, whatever its numeric id.
	srv.AddWorkunit(wu(70, 100), 7)
	srv.AddWorkunit(wu(0, 100), 0)
	srv.AddWorkunit(wu(1, 100), 0)

	a := srv.RequestWork()
	if a.WU.WU.ID != 70 {
		t.Fatalf("first issue = %d, want the senior batch's 70", a.WU.WU.ID)
	}
	// The senior copy vanishes; its timeout re-enqueues it behind the
	// junior batch's fresh workunits — seniority must still win.
	b := srv.RequestWork()
	if b.WU.WU.ID != 0 {
		t.Fatalf("second issue = %d, want 0", b.WU.WU.ID)
	}
	engine.RunUntil(srv.Deadline() + sim.Hour)
	if srv.Stats.TimedOut != 2 {
		t.Fatalf("timeouts = %d, want 2", srv.Stats.TimedOut)
	}
	c := srv.RequestWork()
	if c.WU.WU.ID != 70 {
		t.Fatalf("post-timeout issue = %d, want the reissued senior 70", c.WU.WU.ID)
	}
}

// TestAdaptiveTrustCompletesAlone: under quorum 2, a host that has banked
// Streak valid results validates workunits alone; an invalid result
// forfeits the trust.
func TestAdaptiveTrustCompletesAlone(t *testing.T) {
	cfg := Config{
		InitialQuorum: 2, SteadyQuorum: 2, Deadline: 10 * sim.Day,
		Validator: AdaptiveValidator{Streak: 3},
	}
	_, srv := newTestServer(cfg)
	const host = 5
	// Exactly the workunits the script consumes, so the invalid result's
	// re-enqueue lands at the queue head.
	for i := 0; i < 5; i++ {
		srv.AddWorkunit(wu(int64(i), 100), 0)
	}
	// Build the streak: three workunits completed the hard way, two valid
	// results each (host + a partner host).
	for i := 0; i < 3; i++ {
		a, b := srv.RequestWork(), srv.RequestWork()
		if a.WU != b.WU {
			t.Fatal("quorum 2 should issue two copies of the same workunit")
		}
		srv.CompleteFrom(a, OutcomeValid, 1, host)
		srv.CompleteFrom(b, OutcomeValid, 1, 99)
	}
	if srv.Stats.Completed != 3 {
		t.Fatalf("completed %d while building trust", srv.Stats.Completed)
	}
	// Trusted now: one copy from the host completes the workunit even
	// though the quorum-2 partner copy is still out.
	a, b := srv.RequestWork(), srv.RequestWork()
	srv.CompleteFrom(a, OutcomeValid, 1, host)
	if srv.Stats.Completed != 4 {
		t.Fatalf("trusted host's result did not validate alone: %+v", srv.Stats)
	}
	srv.CompleteFrom(b, OutcomeValid, 1, 99) // partner comes back: wasted
	if srv.Stats.Wasted != 1 {
		t.Fatalf("redundant partner copy not wasted: %+v", srv.Stats)
	}
	// An invalid result forfeits the streak: the next valid result no
	// longer completes alone.
	c, d := srv.RequestWork(), srv.RequestWork()
	srv.CompleteFrom(c, OutcomeInvalid, 1, host)
	e := srv.RequestWork() // replacement copy for the invalid result
	if e == nil || e.WU != c.WU {
		t.Fatal("invalid result should re-enqueue its workunit first")
	}
	srv.CompleteFrom(e, OutcomeValid, 1, host)
	if srv.Stats.Completed != 4 {
		t.Fatalf("untrusted host completed alone after forfeiting: %+v", srv.Stats)
	}
	_ = d
}

// TestAnonymousResultsNeverTrusted: results reported without a host
// identity must not build or use streaks.
func TestAnonymousResultsNeverTrusted(t *testing.T) {
	cfg := Config{
		InitialQuorum: 2, SteadyQuorum: 2, Deadline: 10 * sim.Day,
		Validator: AdaptiveValidator{Streak: 1},
	}
	_, srv := newTestServer(cfg)
	for i := 0; i < 8; i++ {
		srv.AddWorkunit(wu(int64(i), 100), 0)
	}
	for i := 0; i < 4; i++ {
		a, b := srv.RequestWork(), srv.RequestWork()
		srv.Complete(a, OutcomeValid, 1) // anonymous
		if a.WU.Completed && b.WU == a.WU && srv.Stats.Completed > int64(i) && !b.returned {
			t.Fatalf("anonymous result completed a quorum-2 workunit alone at %d", i)
		}
		srv.Complete(b, OutcomeValid, 1)
	}
	if srv.Stats.Completed != 4 {
		t.Fatalf("completed = %d, want 4", srv.Stats.Completed)
	}
}

// TestDeadlineClassesExactTimeouts: each class's wheel fires at exactly
// IssuedAt + its own deadline.
func TestDeadlineClassesExactTimeouts(t *testing.T) {
	short, long := 4*sim.Day, 9*sim.Day
	cfg := q1Config()
	cfg.DeadlinePolicy = DeadlineClasses{
		{MaxRefSeconds: 150, Deadline: short},
		{Deadline: long},
	}
	_, srv := newTestServer(cfg)
	engine := srv.engine
	srv.AddWorkunit(wu(1, 100), 0) // short class
	srv.AddWorkunit(wu(2, 500), 0) // long class
	a := srv.RequestWork()
	b := srv.RequestWork()
	if got := srv.DeadlineFor(a); got != short {
		t.Fatalf("short-class deadline = %v, want %v", got, short)
	}
	if got := srv.DeadlineFor(b); got != long {
		t.Fatalf("long-class deadline = %v, want %v", got, long)
	}
	engine.RunUntil(short - 1e-9)
	if srv.Stats.TimedOut != 0 {
		t.Fatal("short class fired early")
	}
	engine.RunUntil(short)
	if srv.Stats.TimedOut != 1 {
		t.Fatalf("short class did not fire at its deadline: %+v", srv.Stats)
	}
	engine.RunUntil(long - 1e-9)
	if srv.Stats.TimedOut != 1 {
		t.Fatal("long class fired early")
	}
	engine.RunUntil(long)
	if srv.Stats.TimedOut != 2 {
		t.Fatalf("long class did not fire at its deadline: %+v", srv.Stats)
	}
}

// TestResetAcrossPolicySwitches: a server run under non-default policies,
// Reset to defaults, must be indistinguishable from a fresh default
// server — and vice versa.
func TestResetAcrossPolicySwitches(t *testing.T) {
	policyCfg := DefaultConfig()
	policyCfg.Scheduler = BatchPriorityScheduler{}
	policyCfg.Validator = AdaptiveValidator{Streak: 2}
	policyCfg.DeadlinePolicy = DeadlineClasses{
		{MaxRefSeconds: 150, Deadline: 3 * sim.Day},
		{Deadline: 8 * sim.Day},
	}

	freshEngine := sim.NewEngine()
	want := driveServer(t, freshEngine, NewServer(freshEngine, DefaultConfig()))
	freshEngine2 := sim.NewEngine()
	wantPolicy := driveServer(t, freshEngine2, NewServer(freshEngine2, policyCfg))

	engine := sim.NewEngine()
	s := NewServer(engine, policyCfg)
	driveServer(t, engine, s) // dirty buckets, wheels and trust table
	engine.Reset()
	s.Reset(DefaultConfig())
	if got := driveServer(t, engine, s); got != want {
		t.Fatalf("policy→default reset diverged:\nfresh:  %+v\nreused: %+v", want, got)
	}
	engine.Reset()
	s.Reset(policyCfg)
	if got := driveServer(t, engine, s); got != wantPolicy {
		t.Fatalf("default→policy reset diverged:\nfresh:  %+v\nreused: %+v", wantPolicy, got)
	}
}

func TestPolicyValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	engine := sim.NewEngine()
	mustPanic("zero adaptive streak", func() {
		NewServer(engine, Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 1,
			Validator: AdaptiveValidator{}})
	})
	mustPanic("empty deadline classes", func() {
		NewServer(engine, Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 1,
			DeadlinePolicy: DeadlineClasses{}})
	})
	mustPanic("non-positive class deadline", func() {
		NewServer(engine, Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 1,
			DeadlinePolicy: DeadlineClasses{{MaxRefSeconds: 10, Deadline: 0}, {Deadline: 1}}})
	})
	mustPanic("non-increasing class bounds", func() {
		NewServer(engine, Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 1,
			DeadlinePolicy: DeadlineClasses{
				{MaxRefSeconds: 10, Deadline: 1},
				{MaxRefSeconds: 10, Deadline: 1},
				{Deadline: 1},
			}})
	})
}

// TestPolicyNames pins the diagnostic names scenario tables print.
func TestPolicyNames(t *testing.T) {
	for want, got := range map[string]string{
		"fifo":           FIFOScheduler{}.String(),
		"lifo":           LIFOScheduler{}.String(),
		"random":         RandomScheduler{}.String(),
		"batch-priority": BatchPriorityScheduler{}.String(),
		"quorum-switch":  QuorumValidator{}.String(),
		"adaptive-10":    AdaptiveValidator{Streak: 10}.String(),
		"uniform":        UniformDeadline{}.String(),
		"classes-2":      DeadlineClasses{{MaxRefSeconds: 1, Deadline: 1}, {Deadline: 1}}.String(),
	} {
		if want != got {
			t.Fatalf("policy name %q, want %q", got, want)
		}
	}
}

// TestWorkunitsOutliveQuorumSwitchUnderPolicies: the quorum-drop recount
// must stay exact for bucketed and stack schedulers too.
func TestQuorumRecountPerScheduler(t *testing.T) {
	for _, sched := range []Scheduler{FIFOScheduler{}, LIFOScheduler{}, RandomScheduler{Seed: 3}, BatchPriorityScheduler{}} {
		cfg := Config{
			InitialQuorum: 2, SteadyQuorum: 1,
			QuorumSwitchTime: 10 * sim.Day, Deadline: 30 * sim.Day,
			Scheduler: sched,
		}
		engine, srv := newTestServer(cfg)
		const n = 20
		for i := 0; i < n; i++ {
			srv.AddWorkunit(wu(int64(i), 100), i%3)
		}
		// One valid return each; the partner copies stay out.
		seen := make(map[int64]bool)
		for {
			a := srv.RequestWork()
			if a == nil {
				break
			}
			if !seen[a.WU.WU.ID] {
				seen[a.WU.WU.ID] = true
				srv.Complete(a, OutcomeValid, 1)
			}
		}
		if srv.Stats.Completed != 0 {
			t.Fatalf("%v: completed under quorum 2 with one return", sched)
		}
		// Past the switch no further copy goes out, and once the partner
		// copies time out the banked returns complete everything under
		// the dropped quorum — whatever structure the scheduler uses.
		engine.RunUntil(11 * sim.Day)
		if srv.RequestWork() != nil {
			t.Fatalf("%v: copy issued after quorum drop", sched)
		}
		engine.RunUntil(31 * sim.Day) // past the partner copies' deadline
		if srv.Stats.Completed != n {
			t.Fatalf("%v: completed %d of %d after quorum drop, stats %+v", sched, srv.Stats.Completed, n, srv.Stats)
		}
		if srv.PendingCount() != 0 || srv.HasWork() {
			t.Fatalf("%v: counters stale after drop: pending=%d hasWork=%v",
				sched, srv.PendingCount(), srv.HasWork())
		}
	}
}
