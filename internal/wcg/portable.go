package wcg

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/snapshot"
)

// Portable server snapshots (see the snapshot package doc): unlike
// ServerSnapshot, which aliases the live server's backing arrays and
// restores in place, PortableServer owns every byte it holds and names
// arena objects by allocation index, so a different pooled server — which
// re-carves the same objects in the same order — can adopt it. Closure
// state (policy method values, drain closures, completion hooks) is never
// exported: the adopter re-binds it with the same Reset/bind machinery a
// fresh run uses, then resolves indices back to its own pointers.

// portableAssignment is an Assignment with its workunit pointer replaced
// by the workunit's arena index.
type portableAssignment struct {
	wu       int32
	issuedAt sim.Time
	returned bool
	class    uint8
	proj     uint8
}

// portableWheel is one deadline class's ring with assignments as indices.
type portableWheel struct {
	dlq    []int32
	dlHead int
	armed  bool
}

// portableSpooled is a spooled result with its assignment as an index.
type portableSpooled struct {
	a       int32
	cpu     float64
	host    int32
	outcome Outcome
}

// PortableServer is a self-contained copy of a Server's mutable state at
// an event boundary. Safe to publish across goroutines; read-only once
// built.
type PortableServer struct {
	proj uint8

	wus []WUState            // arena contents in allocation order
	ass []portableAssignment // arena contents in allocation order

	queue []int32 // nilIndex for consumed (nil) slots
	qHead int

	schedRand rng.Source

	buckets    [][]int32
	bucketHead []int
	minBucket  int
	batchRank  []int
	nextRank   int

	nQueuedLive, nNeedy, qCache int

	wheels []portableWheel

	adStreak []int

	outIdx     int
	spool      []portableSpooled
	spoolArmed bool

	stats Stats
}

// NilIndex encodes a nil pointer slot in an index-translated slice.
const NilIndex = int32(-1)

// wuIndex returns st's portable allocation index (NilIndex for nil).
func wuIndex(st *WUState) int32 {
	if st == nil {
		return NilIndex
	}
	return st.idx
}

// Bytes estimates the portable server's memory footprint for the
// snapshot_bytes accounting.
func (p *PortableServer) Bytes() int {
	n := snapshot.Size(p.wus) + snapshot.Size(p.ass) +
		snapshot.Size(p.queue) + snapshot.Size(p.bucketHead) +
		snapshot.Size(p.batchRank) + snapshot.Size(p.adStreak) +
		snapshot.Size(p.spool)
	for i := range p.buckets {
		n += snapshot.Size(p.buckets[i])
	}
	for i := range p.wheels {
		n += snapshot.Size(p.wheels[i].dlq)
	}
	return n
}

// ExportPortable deep-copies the server's mutable state into a portable
// snapshot. The server must be in retained (pooled) allocation mode: the
// one-shot Carve mode has no stable allocation-index order to translate
// pointers against.
func (s *Server) ExportPortable() (*PortableServer, error) {
	if !s.retain {
		return nil, fmt.Errorf("wcg: portable export requires a retained (pooled) server")
	}
	nWU := s.wuArena.Allocated()
	nAs := s.asArena.Allocated()
	p := &PortableServer{proj: s.proj}
	p.wus = make([]WUState, nWU)
	for i := 0; i < nWU; i++ {
		p.wus[i] = *s.wuArena.At(i)
	}
	p.ass = make([]portableAssignment, nAs)
	for i := 0; i < nAs; i++ {
		a := s.asArena.At(i)
		p.ass[i] = portableAssignment{
			wu:       wuIndex(a.WU),
			issuedAt: a.IssuedAt,
			returned: a.returned,
			class:    a.class,
			proj:     a.proj,
		}
	}

	p.queue = make([]int32, len(s.queue))
	for i, st := range s.queue {
		p.queue[i] = wuIndex(st)
	}
	p.qHead = s.qHead
	p.schedRand = s.schedRand

	p.buckets = make([][]int32, len(s.buckets))
	for r := range s.buckets {
		b := make([]int32, len(s.buckets[r]))
		for i, st := range s.buckets[r] {
			b[i] = wuIndex(st)
		}
		p.buckets[r] = b
	}
	p.bucketHead = snapshot.Clone(s.bucketHead)
	p.minBucket = s.minBucket
	p.batchRank = snapshot.Clone(s.batchRank)
	p.nextRank = s.nextRank

	p.nQueuedLive, p.nNeedy, p.qCache = s.nQueuedLive, s.nNeedy, s.qCache

	p.wheels = make([]portableWheel, len(s.wheels))
	for k := range s.wheels {
		w := &s.wheels[k]
		dlq := make([]int32, len(w.dlq))
		for i, a := range w.dlq {
			dlq[i] = AssignmentIndex(a)
		}
		p.wheels[k] = portableWheel{dlq: dlq, dlHead: w.dlHead, armed: w.armed}
	}

	p.adStreak = snapshot.Clone(s.adStreak)

	p.outIdx = s.outIdx
	p.spool = make([]portableSpooled, len(s.spool))
	for i, sp := range s.spool {
		p.spool[i] = portableSpooled{a: AssignmentIndex(sp.a), cpu: sp.cpu, host: sp.host, outcome: sp.outcome}
	}
	p.spoolArmed = s.spoolArmed

	p.stats = s.Stats
	return p, nil
}

// WUAt resolves a portable workunit index against this server's arena.
func (s *Server) WUAt(i int32) *WUState {
	if i == NilIndex {
		return nil
	}
	return s.wuArena.At(int(i))
}

// AssignmentAt resolves a portable assignment index against this server's
// arena.
func (s *Server) AssignmentAt(i int32) *Assignment {
	if i == NilIndex {
		return nil
	}
	return s.asArena.At(int(i))
}

// AdoptPortable installs a portable snapshot's state into this server.
// The server must have been Reset under the same configuration the source
// ran (policies, deadlines, outage windows), so everything bind-time —
// scheduler/validator method values, wheel count and deadlines, class
// tables — is already identical; this call rebuilds only the mutable
// state, allocating the same arena objects in the same order as the
// source and resolving the snapshot's indices against them.
func (s *Server) AdoptPortable(p *PortableServer) {
	if !s.retain {
		panic("wcg: portable adoption requires a retained (pooled) server")
	}
	s.proj = p.proj

	for i := range p.wus {
		st := s.allocWU()
		*st = p.wus[i]
	}
	for i := range p.ass {
		a := s.allocAssignment()
		pa := &p.ass[i]
		a.WU = s.WUAt(pa.wu)
		a.IssuedAt = pa.issuedAt
		a.returned = pa.returned
		a.class = pa.class
		a.proj = pa.proj
	}

	s.queue = s.queue[:0]
	for _, wi := range p.queue {
		s.queue = append(s.queue, s.WUAt(wi))
	}
	s.qHead = p.qHead
	s.schedRand = p.schedRand

	for len(s.buckets) < len(p.buckets) {
		s.buckets = append(s.buckets, nil)
		s.bucketHead = append(s.bucketHead, 0)
	}
	for r := range p.buckets {
		s.buckets[r] = s.buckets[r][:0]
		for _, wi := range p.buckets[r] {
			s.buckets[r] = append(s.buckets[r], s.WUAt(wi))
		}
		s.bucketHead[r] = p.bucketHead[r]
	}
	s.minBucket = p.minBucket
	s.batchRank = append(s.batchRank[:0], p.batchRank...)
	s.nextRank = p.nextRank

	s.nQueuedLive, s.nNeedy, s.qCache = p.nQueuedLive, p.nNeedy, p.qCache

	if len(s.wheels) != len(p.wheels) {
		panic("wcg: adopting server has a different deadline-class count — config mismatch")
	}
	for k := range p.wheels {
		w := &s.wheels[k]
		pw := &p.wheels[k]
		w.dlq = w.dlq[:0]
		for _, ai := range pw.dlq {
			w.dlq = append(w.dlq, s.AssignmentAt(ai))
		}
		w.dlHead = pw.dlHead
		w.armed = pw.armed
	}

	s.adStreak = s.adStreak[:0]
	s.adStreak = append(s.adStreak, p.adStreak...)

	s.outIdx = p.outIdx
	s.spool = s.spool[:0]
	for _, sp := range p.spool {
		s.spool = append(s.spool, spooled{a: s.AssignmentAt(sp.a), cpu: sp.cpu, host: sp.host, outcome: sp.outcome})
	}
	s.spoolArmed = p.spoolArmed
	if s.spoolArmed && s.spoolFn == nil {
		s.spoolFn = s.drainSpool
	}

	s.Stats = p.stats
}

// WheelDrainFn returns deadline class k's bound drain closure, for
// re-binding an adopted CallWheelDrain event.
func (s *Server) WheelDrainFn(k int) func() { return s.wheels[k].drainFn }

// SpoolDrainFn returns the bound spool-drain closure (binding it on first
// use, exactly as the live path does), for an adopted CallSpoolDrain event.
func (s *Server) SpoolDrainFn() func() {
	if s.spoolFn == nil {
		s.spoolFn = s.drainSpool
	}
	return s.spoolFn
}
