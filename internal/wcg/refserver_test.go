package wcg

// A brute-force reference implementation of the middleware semantics —
// plain slices, O(n) scans, one engine timer per assignment, map-based
// trust state — used by the differential fuzz tests to check that the
// production server's policy implementations (bound method values, O(1)
// counters, per-class deadline wheels, dense streak table) compute
// exactly the same accounting. The reference implements the same policy
// *specifications*: FIFO / LIFO / strict batch seniority dispatch, the
// quorum-switch and adaptive-replication validation regimes, and
// per-duration deadline classes.

import (
	"sort"

	"repro/internal/sim"
	"repro/internal/workunit"
)

const (
	refFIFO = iota
	refLIFO
	refBatch
)

type refWU struct {
	wu           workunit.Workunit
	batch        int
	outstanding  int
	validReturns int
	completed    bool
	queued       bool
}

type refAssignment struct {
	wu       *refWU
	issuedAt sim.Time
	returned bool
}

// refConfig mirrors the policy choices under test in plain data.
type refConfig struct {
	initialQuorum int
	steadyQuorum  int
	switchTime    sim.Time
	// deadline classes: classCut[i] is class i's RefSeconds upper bound,
	// classDeadline has one extra entry for the catch-all class.
	classCut      []float64
	classDeadline []float64
	sched         int // refFIFO / refLIFO / refBatch
	adaptive      bool
	threshold     int
}

type refServer struct {
	engine *sim.Engine
	cfg    refConfig

	queue     []*refWU    // in enqueue order; scanned per policy
	batchRank map[int]int // batch id → seniority rank (first-enqueue order)
	streak    map[int]int // host → valid-result streak (adaptive)

	stats Stats
}

func newRefServer(engine *sim.Engine, cfg refConfig) *refServer {
	return &refServer{
		engine:    engine,
		cfg:       cfg,
		batchRank: make(map[int]int),
		streak:    make(map[int]int),
	}
}

func (s *refServer) quorum() int {
	if s.engine.Now() < s.cfg.switchTime {
		return s.cfg.initialQuorum
	}
	return s.cfg.steadyQuorum
}

func (s *refServer) deadlineOf(w *refWU) float64 {
	for i, cut := range s.cfg.classCut {
		if w.wu.RefSeconds <= cut {
			return s.cfg.classDeadline[i]
		}
	}
	return s.cfg.classDeadline[len(s.cfg.classCut)]
}

func (s *refServer) needs(w *refWU) bool {
	return w.validReturns+w.outstanding < s.quorum()
}

func (s *refServer) maybeComplete(w *refWU) {
	if !w.completed && w.validReturns >= s.quorum() {
		s.complete(w)
	}
}

func (s *refServer) complete(w *refWU) {
	w.completed = true
	s.stats.Completed++
}

func (s *refServer) enqueue(w *refWU) {
	if w.queued || w.completed {
		return
	}
	w.queued = true
	if _, ok := s.batchRank[w.batch]; !ok {
		s.batchRank[w.batch] = len(s.batchRank)
	}
	s.queue = append(s.queue, w)
}

func (s *refServer) addWorkunit(wu workunit.Workunit, batch int) {
	s.enqueue(&refWU{wu: wu, batch: batch})
}

// scanOrder yields a snapshot of the queued workunits in the dispatch
// order of the policy under test: enqueue order (FIFO), reverse enqueue
// order (LIFO), or batch seniority with enqueue order inside a batch.
// Pointers, not indexes: the request scan dequeues entries as it visits
// them, which must not disturb the rest of the order.
func (s *refServer) scanOrder() []*refWU {
	order := append([]*refWU(nil), s.queue...)
	switch s.cfg.sched {
	case refLIFO:
		for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
			order[i], order[j] = order[j], order[i]
		}
	case refBatch:
		sort.SliceStable(order, func(a, b int) bool {
			return s.batchRank[order[a].batch] < s.batchRank[order[b].batch]
		})
	}
	return order
}

// requestWork hands out one copy per the policy semantics: visit queued
// workunits in dispatch order, completing and dropping stale entries as
// they are encountered, and issue from the first one still needing a
// copy (it stays queued while it needs more).
func (s *refServer) requestWork() *refAssignment {
	for _, w := range s.scanOrder() {
		s.maybeComplete(w)
		if w.completed || !s.needs(w) {
			s.dequeue(w)
			continue
		}
		w.outstanding++
		if !s.needs(w) {
			s.dequeue(w)
		}
		s.stats.Sent++
		a := &refAssignment{wu: w, issuedAt: s.engine.Now()}
		deadline := s.deadlineOf(w)
		s.engine.After(deadline, func() { s.timeout(a) })
		return a
	}
	return nil
}

func (s *refServer) dequeue(w *refWU) {
	for i, q := range s.queue {
		if q == w {
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			break
		}
	}
	w.queued = false
}

func (s *refServer) timeout(a *refAssignment) {
	if a.returned || a.wu.completed {
		return // returned in time (or moot): the timer is a no-op
	}
	s.stats.TimedOut++
	a.returned = true
	a.wu.outstanding--
	s.maybeComplete(a.wu)
	if !a.wu.completed {
		s.enqueue(a.wu)
	}
}

func (s *refServer) completeResult(a *refAssignment, outcome Outcome, cpuSeconds float64, host int) {
	if a.returned {
		s.stats.LateReturns++
	} else {
		a.returned = true
		a.wu.outstanding--
	}
	s.stats.Received++
	s.stats.CPUSeconds += cpuSeconds

	if outcome == OutcomeInvalid {
		s.stats.Invalid++
		s.stats.WastedSeconds += cpuSeconds
		if s.cfg.adaptive && host >= 0 {
			s.streak[host] = 0
		}
		if !a.wu.completed {
			s.enqueue(a.wu)
		}
		return
	}

	s.stats.Valid++
	trusted := false
	if s.cfg.adaptive && host >= 0 {
		trusted = s.streak[host] >= s.cfg.threshold
		s.streak[host]++
	}
	if a.wu.completed {
		s.stats.Wasted++
		s.stats.WastedSeconds += cpuSeconds
		return
	}
	a.wu.validReturns++
	s.stats.Useful++
	s.maybeComplete(a.wu)
	if trusted && !a.wu.completed {
		s.complete(a.wu)
	}
	if !a.wu.completed && s.needs(a.wu) {
		s.enqueue(a.wu)
	}
}

func (s *refServer) pendingCount() int {
	n := 0
	for _, w := range s.queue {
		if !w.completed {
			n++
		}
	}
	return n
}
