package wcg

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workunit"
)

// driveServer exercises every middleware mechanism against a scripted
// sequence: issue, return, timeout, reissue, quorum switch.
func driveServer(t *testing.T, engine *sim.Engine, s *Server) Stats {
	t.Helper()
	cfgDeadline := s.Deadline()
	for i := 0; i < 50; i++ {
		s.AddWorkunit(workunit.Workunit{ID: int64(i), ISepLo: 1, ISepHi: 10, RefSeconds: 100}, 0)
	}
	var held []*Assignment
	for i := 0; i < 30; i++ {
		if a := s.RequestWork(); a != nil {
			held = append(held, a)
		}
	}
	// Return half on time, abandon the rest (they time out and reissue).
	for i, a := range held {
		if i%2 == 0 {
			s.Complete(a, OutcomeValid, 500)
		}
	}
	engine.RunUntil(cfgDeadline + sim.Day)
	// Past the quorum switch: drain everything that is left.
	engine.RunUntil(15 * sim.Week)
	for {
		a := s.RequestWork()
		if a == nil {
			break
		}
		s.Complete(a, OutcomeValid, 400)
	}
	engine.RunUntil(30 * sim.Week)
	return s.Stats
}

func TestServerResetIndistinguishableFromFresh(t *testing.T) {
	cfg := DefaultConfig()

	freshEngine := sim.NewEngine()
	fresh := NewServer(freshEngine, cfg)
	want := driveServer(t, freshEngine, fresh)

	engine := sim.NewEngine()
	s := NewServer(engine, cfg)
	driveServer(t, engine, s) // dirty queue, ring and arenas
	engine.Reset()
	s.Reset(cfg)
	if s.PendingCount() != 0 || s.HasWork() {
		t.Fatalf("reset server not empty: pending=%d hasWork=%v", s.PendingCount(), s.HasWork())
	}
	if s.Stats != (Stats{}) {
		t.Fatalf("reset server kept stats: %+v", s.Stats)
	}
	got := driveServer(t, engine, s)
	if got != want {
		t.Fatalf("reused server diverged:\nfresh:  %+v\nreused: %+v", want, got)
	}
}

func TestServerResetSwitchesConfig(t *testing.T) {
	engine := sim.NewEngine()
	s := NewServer(engine, DefaultConfig())
	driveServer(t, engine, s)
	engine.Reset()
	// Re-arm under a different policy: quorum 1 from the start.
	s.Reset(Config{InitialQuorum: 1, SteadyQuorum: 1, Deadline: 4 * sim.Day})
	if s.Deadline() != 4*sim.Day {
		t.Fatalf("deadline = %v", s.Deadline())
	}
	s.AddWorkunit(workunit.Workunit{ID: 1, ISepLo: 1, ISepHi: 10, RefSeconds: 100}, 0)
	a := s.RequestWork()
	if a == nil {
		t.Fatal("no work after reset")
	}
	s.Complete(a, OutcomeValid, 100)
	if s.Stats.Completed != 1 {
		t.Fatalf("quorum-1 workunit not completed after one result: %+v", s.Stats)
	}
}

func TestServerResetPanicsOnBadConfig(t *testing.T) {
	engine := sim.NewEngine()
	s := NewServer(engine, DefaultConfig())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on zero-deadline reset")
		}
	}()
	s.Reset(Config{InitialQuorum: 1, SteadyQuorum: 1})
}
