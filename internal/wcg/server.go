// Package wcg implements the volunteer-grid middleware: the server side of
// a BOINC / Grid MP style desktop grid as described in §3.1 of the paper.
//
// The server hosts a database of workunits. Volunteer agents contact it to
// fetch work, compute, and send results back. The middleware implements the
// reliability machinery the paper describes:
//
//   - redundant computing (§5.1): more than one copy of a workunit may be
//     sent out, either for quorum validation (results compared against each
//     other) or because a copy timed out or came back invalid. Late results
//     from long-offline volunteers are still accepted and counted, which is
//     why only ~73 % of received results are useful and the overall
//     redundancy factor is 1.37;
//   - validation (§5.2): with quorum 1, results are checked by value
//     (file/line/range checks); with quorum ≥ 2, matching copies validate
//     each other;
//   - timeouts and retransmission: a copy not returned by its deadline is
//     reissued.
//
// The server is driven by a discrete-event engine; it has no goroutines of
// its own and is deterministic given the engine's event order.
package wcg

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/workunit"
)

// Outcome describes how a computation attempt ended, from the server's
// point of view.
type Outcome int

const (
	// OutcomeValid is a correct result returned before (or even after)
	// the deadline.
	OutcomeValid Outcome = iota
	// OutcomeInvalid is a returned result that fails validation.
	OutcomeInvalid
)

// WUState tracks one distinct workunit through its life cycle.
type WUState struct {
	WU workunit.Workunit

	// Copies currently in the hands of volunteers.
	outstanding int
	// Valid results received so far (for quorum validation).
	validReturns int
	// Completed reports whether the workunit has been validated and
	// assimilated.
	Completed bool
	// Batch the workunit belongs to (campaign bookkeeping).
	Batch int
}

// Config tunes the middleware policies.
type Config struct {
	// InitialQuorum is the number of matching results required while the
	// project validates by comparison (the early, cautious period §5.1).
	InitialQuorum int
	// SteadyQuorum is the quorum after the project switches to value-based
	// validation (range checks on the result files).
	SteadyQuorum int
	// QuorumSwitchTime is the simulation time at which validation switches
	// from InitialQuorum to SteadyQuorum. Zero means immediately.
	QuorumSwitchTime sim.Time
	// Deadline is how long a copy may stay out before it is considered
	// timed out and a replacement is issued.
	Deadline float64
}

// DefaultConfig mirrors the production deployment: quorum-2 comparison
// validation for the first weeks, then value-checked single results, with a
// 12-day return deadline.
func DefaultConfig() Config {
	return Config{
		InitialQuorum:    2,
		SteadyQuorum:     1,
		QuorumSwitchTime: 14 * sim.Week,
		Deadline:         8 * sim.Day,
	}
}

// Stats aggregates the server-side accounting the paper reports in
// Figure 6(b) and §5.1.
type Stats struct {
	Sent          int64 // copies handed to volunteers
	Received      int64 // results returned (valid or not)
	Valid         int64 // results passing validation
	Useful        int64 // valid results that completed a workunit need
	Wasted        int64 // valid but redundant results (already validated)
	Invalid       int64 // results failing validation
	TimedOut      int64 // copies reissued after missing the deadline
	Completed     int64 // distinct workunits validated
	CPUSeconds    float64
	WastedSeconds float64
}

// RedundancyFactor returns copies-sent per distinct workunit completed —
// the paper's 1.37.
func (s Stats) RedundancyFactor() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.Sent) / float64(s.Completed)
}

// UsefulFraction returns the fraction of received results that correspond
// to distinct completed workunits — the paper's 73 % (3,936,010 effective
// results out of 5,418,010 received). Quorum duplicates, late returns and
// invalid results make up the remainder.
func (s Stats) UsefulFraction() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Received)
}

// Assignment is a copy of a workunit handed to a volunteer.
type Assignment struct {
	WU       *WUState
	IssuedAt sim.Time
	deadline *sim.Event
	returned bool
}

// Server is the volunteer-grid work distributor.
type Server struct {
	cfg    Config
	engine *sim.Engine

	queue   []*WUState // FIFO of workunits needing more copies out
	qHead   int
	pending map[*WUState]bool // in queue or awaiting more copies

	Stats Stats

	// OnComplete, if non-nil, is invoked when a distinct workunit is
	// validated (used by the campaign orchestrator for progression and
	// batch release).
	OnComplete func(*WUState)

	// OnWeekCPU, if non-nil, receives (weekIndex, cpuSeconds) for every
	// returned result, for the Figure 6(a) weekly VFTP series.
	OnWeekCPU func(week int, cpuSeconds float64)
}

// NewServer creates a server bound to the simulation engine.
func NewServer(engine *sim.Engine, cfg Config) *Server {
	if cfg.InitialQuorum < 1 || cfg.SteadyQuorum < 1 {
		panic("wcg: quorum must be at least 1")
	}
	if cfg.Deadline <= 0 {
		panic("wcg: deadline must be positive")
	}
	return &Server{
		cfg:     cfg,
		engine:  engine,
		pending: make(map[*WUState]bool),
	}
}

// quorum returns the quorum in force at the current simulation time.
func (s *Server) quorum() int {
	if s.engine.Now() < s.cfg.QuorumSwitchTime {
		return s.cfg.InitialQuorum
	}
	return s.cfg.SteadyQuorum
}

// AddWorkunit registers a distinct workunit for distribution.
func (s *Server) AddWorkunit(wu workunit.Workunit, batch int) *WUState {
	st := &WUState{WU: wu, Batch: batch}
	s.enqueue(st)
	return st
}

func (s *Server) enqueue(st *WUState) {
	if s.pending[st] || st.Completed {
		return
	}
	s.pending[st] = true
	s.queue = append(s.queue, st)
}

// compactQueue drops the consumed prefix once it dominates the slice.
func (s *Server) compactQueue() {
	if s.qHead > 1024 && s.qHead*2 > len(s.queue) {
		n := copy(s.queue, s.queue[s.qHead:])
		for i := n; i < len(s.queue); i++ {
			s.queue[i] = nil
		}
		s.queue = s.queue[:n]
		s.qHead = 0
	}
}

// HasWork reports whether a work request would succeed.
func (s *Server) HasWork() bool {
	for i := s.qHead; i < len(s.queue); i++ {
		st := s.queue[i]
		if st != nil && !st.Completed && s.needsCopies(st) {
			return true
		}
	}
	return false
}

// needsCopies reports whether more copies of st should be out, given the
// quorum currently in force.
func (s *Server) needsCopies(st *WUState) bool {
	return st.validReturns+st.outstanding < s.quorum()
}

// maybeComplete validates st against the quorum currently in force. This
// matters when the quorum is lowered mid-project (§5.1): a workunit that
// already holds enough valid returns under the new quorum completes without
// waiting for further copies.
func (s *Server) maybeComplete(st *WUState) {
	if st.Completed || st.validReturns < s.quorum() {
		return
	}
	st.Completed = true
	s.Stats.Completed++
	if s.OnComplete != nil {
		s.OnComplete(st)
	}
}

// RequestWork hands out one copy, or nil if no work is available. The
// deadline timer for the copy starts immediately.
func (s *Server) RequestWork() *Assignment {
	for s.qHead < len(s.queue) {
		st := s.queue[s.qHead]
		if st != nil {
			s.maybeComplete(st)
		}
		if st == nil || st.Completed || !s.needsCopies(st) {
			s.queue[s.qHead] = nil
			s.qHead++
			delete(s.pending, st)
			s.compactQueue()
			continue
		}
		st.outstanding++
		// If the workunit still needs more copies (quorum > 1), leave it
		// at the queue head; otherwise it is consumed for now.
		if !s.needsCopies(st) {
			s.queue[s.qHead] = nil
			s.qHead++
			delete(s.pending, st)
			s.compactQueue()
		}
		s.Stats.Sent++
		a := &Assignment{WU: st, IssuedAt: s.engine.Now()}
		a.deadline = s.engine.After(s.cfg.Deadline, func() { s.timeout(a) })
		return a
	}
	return nil
}

// timeout fires when a copy misses its deadline: the server issues a
// replacement. The late copy may still come back and be counted (§5.1).
func (s *Server) timeout(a *Assignment) {
	if a.returned || a.WU.Completed {
		return
	}
	s.Stats.TimedOut++
	a.WU.outstanding--
	a.returned = true // the original assignment no longer counts as live
	s.maybeComplete(a.WU)
	if !a.WU.Completed {
		s.enqueue(a.WU)
	}
}

// Complete reports a result for an assignment. cpuSeconds is the run time
// the agent reports (wall-clock based for the UD agent, §6). Late results
// (after timeout) are accepted: their CPU time was spent and is accounted,
// and if the workunit still needed a result they validate it.
func (s *Server) Complete(a *Assignment, outcome Outcome, cpuSeconds float64) {
	if a == nil {
		panic("wcg: Complete(nil)")
	}
	late := a.returned
	if !late {
		a.returned = true
		s.engine.Cancel(a.deadline)
		a.WU.outstanding--
	}
	s.Stats.Received++
	s.Stats.CPUSeconds += cpuSeconds
	if s.OnWeekCPU != nil {
		s.OnWeekCPU(sim.Calendar{}.WeekIndex(s.engine.Now()), cpuSeconds)
	}

	if outcome == OutcomeInvalid {
		s.Stats.Invalid++
		s.Stats.WastedSeconds += cpuSeconds
		if !a.WU.Completed {
			s.enqueue(a.WU)
		}
		return
	}

	s.Stats.Valid++
	if a.WU.Completed {
		// Redundant: workunit already validated (late or extra copy).
		s.Stats.Wasted++
		s.Stats.WastedSeconds += cpuSeconds
		return
	}
	a.WU.validReturns++
	if a.WU.validReturns >= s.quorum() {
		a.WU.Completed = true
		s.Stats.Useful++
		s.Stats.Completed++
		if s.OnComplete != nil {
			s.OnComplete(a.WU)
		}
		return
	}
	// Quorum not yet met: the result is useful (it advances the quorum).
	s.Stats.Useful++
	if s.needsCopies(a.WU) {
		s.enqueue(a.WU)
	}
}

// PendingCount returns the number of workunits still waiting for copies or
// validation (approximate queue depth; completed entries are skipped).
func (s *Server) PendingCount() int {
	n := 0
	for i := s.qHead; i < len(s.queue); i++ {
		if st := s.queue[i]; st != nil && !st.Completed {
			n++
		}
	}
	return n
}

// String summarizes the server state for logs.
func (s *Server) String() string {
	return fmt.Sprintf("wcg.Server{sent=%d received=%d valid=%d completed=%d redundancy=%.3f}",
		s.Stats.Sent, s.Stats.Received, s.Stats.Valid, s.Stats.Completed, s.Stats.RedundancyFactor())
}
