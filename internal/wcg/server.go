// Package wcg implements the volunteer-grid middleware: the server side of
// a BOINC / Grid MP style desktop grid as described in §3.1 of the paper.
//
// The server hosts a database of workunits. Volunteer agents contact it to
// fetch work, compute, and send results back. The middleware implements the
// reliability machinery the paper describes:
//
//   - redundant computing (§5.1): more than one copy of a workunit may be
//     sent out, either for quorum validation (results compared against each
//     other) or because a copy timed out or came back invalid. Late results
//     from long-offline volunteers are still accepted and counted, which is
//     why only ~73 % of received results are useful and the overall
//     redundancy factor is 1.37;
//   - validation (§5.2): with quorum 1, results are checked by value
//     (file/line/range checks); with quorum ≥ 2, matching copies validate
//     each other;
//   - timeouts and retransmission: a copy not returned by its deadline is
//     reissued.
//
// The server is driven by a discrete-event engine; it has no goroutines of
// its own and is deterministic given the engine's event order.
//
// # Policy layer
//
// The middleware mechanisms are pluggable (see policy.go): a Scheduler
// decides dispatch order (FIFO by default; LIFO, seeded-random and
// batch-priority alternatives), a Validator decides the validation regime
// (the quorum-switch default, or BOINC-style adaptive replication), and a
// DeadlinePolicy decides the reissue deadline (one server-wide class by
// default, or a small set of per-duration classes). Policies are resolved
// to concrete method values when the server is constructed or Reset, so
// the per-transaction hot path pays no interface dispatch; with the
// default (nil) policies the server is bit-for-bit the production
// deployment.
//
// Two mechanisms keep the server O(1) per transaction at campaign scale
// (millions of workunits, tens of thousands of agents):
//
//   - Queue depth (PendingCount) and work availability (HasWork) are
//     incrementally maintained counters, not scans. The counters depend on
//     the quorum in force, so the one mid-project quorum switch triggers a
//     single O(queue) recount — amortized free.
//   - Deadlines use wheels, not per-assignment timers: each deadline
//     class's deadline is a constant, so its copies time out in issue
//     order, and one ring-buffer FIFO per class, drained by a single
//     re-armed engine event, replaces millions of event-heap inserts and
//     cancellations. Each timeout still fires at exactly IssuedAt+class
//     deadline; copies returned in time simply fall out of the ring
//     unprocessed.
//
// # Reset contract
//
// Server.Reset rearms a server for another run on the same (freshly
// reset) engine, retaining what a campaign is expensive to rebuild: the
// work queue's backing arrays (shared queue and batch buckets), the
// deadline rings and their drain closures, the per-host trust table, and
// the WUState and Assignment arenas. Everything observable is zeroed —
// queue contents, counters, trust streaks, Stats, the
// OnComplete/OnWeekCPU callbacks — and the configured policies are
// re-bound, so a reset server is indistinguishable from NewServer to the
// model driving it. Every *WUState and *Assignment obtained before the
// Reset is invalidated (the arenas re-carve their slots); callers must
// drop them all first.
package wcg

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/slab"
	"repro/internal/workunit"
)

// Outcome describes how a computation attempt ended, from the server's
// point of view.
type Outcome int

const (
	// OutcomeValid is a correct result returned before (or even after)
	// the deadline.
	OutcomeValid Outcome = iota
	// OutcomeInvalid is a returned result that fails validation.
	OutcomeInvalid
)

// WUState tracks one distinct workunit through its life cycle.
type WUState struct {
	WU workunit.Workunit

	// Copies currently in the hands of volunteers.
	outstanding int
	// Valid results received so far (for quorum validation).
	validReturns int
	// Completed reports whether the workunit has been validated and
	// assimilated.
	Completed bool
	// Batch the workunit belongs to (campaign bookkeeping).
	Batch int

	// Counter bookkeeping (see syncCounts).
	queued     bool // sitting in the server's FIFO
	queuedLive bool // counted in nQueuedLive
	needy      bool // counted in nNeedy

	// idx is the workunit's allocation index, stamped at allocWU: the
	// portable name a cross-context snapshot translates this pointer to
	// (in retained mode it equals the arena slot; see slab.Arena.At).
	idx int32
}

// Config tunes the middleware policies.
type Config struct {
	// InitialQuorum is the number of matching results required while the
	// project validates by comparison (the early, cautious period §5.1).
	InitialQuorum int
	// SteadyQuorum is the quorum after the project switches to value-based
	// validation (range checks on the result files).
	SteadyQuorum int
	// QuorumSwitchTime is the simulation time at which validation switches
	// from InitialQuorum to SteadyQuorum. Zero means immediately.
	QuorumSwitchTime sim.Time
	// Deadline is how long a copy may stay out before it is considered
	// timed out and a replacement is issued. Constant per deadline class,
	// which is what makes the deadline wheels exact: a class's copies time
	// out in the order they were issued. This field is the single default
	// class; a DeadlinePolicy below replaces it with its own classes.
	Deadline float64

	// Scheduler selects the dispatch-order policy; nil means FIFOScheduler,
	// the production order.
	Scheduler Scheduler
	// Validator selects the validation regime; nil means QuorumValidator,
	// the comparison→value-check switch driven by the quorum fields above.
	Validator Validator
	// DeadlinePolicy selects the reissue-deadline regime; nil means
	// UniformDeadline: one class at Deadline.
	DeadlinePolicy DeadlinePolicy

	// Outages is the server-down schedule (sorted, disjoint windows,
	// typically materialized by the faults package): inside a window the
	// server refuses work requests and spools arriving results, deferring
	// their validation to a drain event at the window's end. The deadline
	// wheels keep running — copies time out during an outage exactly as
	// they would have, which is what keeps the schedule an ordinary set of
	// kernel events rather than a change to the timeline. Empty (the
	// default) leaves every path byte-identical to the pre-outage server.
	Outages []OutageWindow `json:",omitempty"`
}

// OutageWindow is one half-open [Start, End) interval during which the
// server is unreachable.
type OutageWindow struct {
	Start, End sim.Time
}

// DefaultConfig mirrors the production deployment: quorum-2 comparison
// validation for the first weeks, then value-checked single results, with
// an 8-day return deadline.
func DefaultConfig() Config {
	return Config{
		InitialQuorum:    2,
		SteadyQuorum:     1,
		QuorumSwitchTime: 14 * sim.Week,
		Deadline:         8 * sim.Day,
	}
}

// Stats aggregates the server-side accounting the paper reports in
// Figure 6(b) and §5.1.
type Stats struct {
	Sent          int64 // copies handed to volunteers
	Received      int64 // results returned (valid or not)
	Valid         int64 // results passing validation
	Useful        int64 // valid results that completed a workunit need
	Wasted        int64 // valid but redundant results (already validated)
	Invalid       int64 // results failing validation
	TimedOut      int64 // copies reissued after missing the deadline
	Completed     int64 // distinct workunits validated
	CPUSeconds    float64
	WastedSeconds float64

	// LateReturns counts results that arrived after their copy had already
	// timed out (the §5.1 long-offline stragglers). Diagnostic only — it
	// feeds the InFlight derivation — and excluded from the JSON rendering
	// so report bytes (and the golden hashes pinned on them) are unchanged.
	LateReturns int64 `json:"-"`

	// Outage accounting (always zero — and omitted from the JSON
	// rendering — when Config.Outages is empty, so fault-free report
	// bytes are unchanged).
	Refused  int64 `json:",omitempty"` // work requests refused while down
	Deferred int64 `json:",omitempty"` // results spooled for post-outage validation
}

// InFlight returns the number of copies currently in volunteers' hands:
// sent, minus timed-out, minus on-time returns. A late return was already
// removed from flight by its timeout, so it must not be subtracted twice.
func (s Stats) InFlight() int64 {
	return s.Sent - s.TimedOut - (s.Received - s.LateReturns)
}

// RedundancyFactor returns copies-sent per distinct workunit completed —
// the paper's 1.37.
func (s Stats) RedundancyFactor() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.Sent) / float64(s.Completed)
}

// UsefulFraction returns the fraction of received results that correspond
// to distinct completed workunits — the paper's 73 % (3,936,010 effective
// results out of 5,418,010 received). Quorum duplicates, late returns and
// invalid results make up the remainder.
func (s Stats) UsefulFraction() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Received)
}

// Assignment is a copy of a workunit handed to a volunteer.
type Assignment struct {
	WU       *WUState
	IssuedAt sim.Time
	idx      int32 // allocation index (see WUState.idx)
	returned bool
	class    uint8 // deadline class (wheel index); 0 under UniformDeadline
	proj     uint8 // issuing server's project index (multi-project grids)
}

// AssignmentIndex returns a's portable allocation index (see WUState.idx);
// NilIndex for nil. Event tags carry it so an adopting run context can
// resolve the assignment against its own arena.
func AssignmentIndex(a *Assignment) int32 {
	if a == nil {
		return NilIndex
	}
	return a.idx
}

// Project returns the project index of the server that issued this
// assignment (see Server.SetProject). 0 on a standalone server — the
// hook a multi-project work-fetch multiplexer routes completions by.
func (a *Assignment) Project() int { return int(a.proj) }

// wheel is one deadline class's exact timeout ring: assignments in issue
// order, drained by one re-armed engine event. Returned/completed copies
// fall out of the ring lazily.
type wheel struct {
	deadline float64
	dlq      []*Assignment
	dlHead   int
	armed    bool
	drainFn  func() // bound once per class; re-armed without allocating
}

// spooled is one result that arrived during an outage, held verbatim until
// the window's drain event replays it through the normal completion path.
type spooled struct {
	a       *Assignment
	cpu     float64
	host    int32 // reporting host identity (negative = anonymous)
	outcome Outcome
}

// Server is the volunteer-grid work distributor.
type Server struct {
	cfg    Config
	engine *sim.Engine
	proj   uint8 // project identity stamped on every issued assignment

	// Work pool shared by the FIFO/LIFO/random schedulers; the
	// batch-priority scheduler uses the buckets below instead.
	queue []*WUState // workunits needing more copies out
	qHead int        // consumed prefix (FIFO scheduler only)

	// Scheduler policy, resolved to concrete method values at bind time
	// (NewServer/Reset): the hot path pays no interface dispatch.
	schedNext func() *WUState      // next workunit to issue a copy from
	schedPush func(*WUState)       // enqueue a workunit needing copies
	schedEach func(func(*WUState)) // visit queued workunits (quorum recount)
	schedRand rng.Source           // seeded-random scheduler state

	// Batch-priority scheduler state: one FIFO bucket per batch, ordered
	// by the batch's first-enqueue rank.
	buckets    [][]*WUState
	bucketHead []int
	minBucket  int
	batchRank  []int // batch id → 1+rank of first enqueue (0 = unseen)
	nextRank   int

	// Incrementally maintained counters (see syncCounts):
	nQueuedLive int // queued workunits not yet completed: PendingCount
	nNeedy      int // queued workunits needing more copies out: HasWork
	qCache      int // quorum the counters were computed against

	// Deadline wheels, one exact ring per class; classFn assigns a
	// workunit's class (nil = everything in class 0).
	wheels   []wheel
	classFn  func(*WUState) uint8
	classCut []float64 // per-class RefSeconds upper bounds (classOf)

	// Adaptive-replication validator state: per-host valid-result streaks,
	// dense by host identity.
	adaptiveOn  bool
	adThreshold int
	adStreak    []int

	// Outage machinery: the sorted down windows, a monotone cursor over
	// them (simulation time never decreases), and the deferred-validation
	// spool drained by a single engine event at the window's end. All
	// inert — one integer compare per public entry — when no windows are
	// configured.
	outages    []OutageWindow
	outIdx     int
	spool      []spooled
	spoolArmed bool
	spoolFn    func() // bound lazily at the first spooled result, then reused

	// Bump allocators: workunit states and assignments are carved from
	// chunks instead of allocated one by one (millions per campaign). Two
	// modes, switched by retain:
	//
	//   - one-shot (default): progressive slabs whose carved-past chunks
	//     are collected as soon as their objects are unreachable, so a
	//     single run's memory is reclaimed as the campaign progresses;
	//   - retained (Retain/Reset): arenas that survive Reset, so a pooled
	//     server re-carves the same chunks run after run.
	retain  bool
	wuChunk []WUState
	asChunk []Assignment
	wuArena slab.Arena[WUState]
	asArena slab.Arena[Assignment]
	wuNext  int32 // next allocation index to stamp (WUState.idx)
	asNext  int32

	Stats Stats

	// OnComplete, if non-nil, is invoked when a distinct workunit is
	// validated (used by the campaign orchestrator for progression and
	// batch release).
	OnComplete func(*WUState)

	// OnWeekCPU, if non-nil, receives (weekIndex, cpuSeconds) for every
	// returned result, for the Figure 6(a) weekly VFTP series.
	OnWeekCPU func(week int, cpuSeconds float64)

	// OnQuorumSwitch, if non-nil, is invoked when the quorum in force
	// changes (at most once per run under the default validator): the
	// run-trace hook for the paper's week-14 comparison→value-check switch.
	// Like the callbacks above it must be read-only with respect to the
	// server.
	OnQuorumSwitch func(at sim.Time, from, to int)
}

// NewServer creates a server bound to the simulation engine.
func NewServer(engine *sim.Engine, cfg Config) *Server {
	checkConfig(cfg)
	s := &Server{
		cfg:    cfg,
		engine: engine,
	}
	s.outages = cfg.Outages
	s.qCache = s.quorum()
	s.bindPolicies()
	return s
}

func checkConfig(cfg Config) {
	if cfg.InitialQuorum < 1 || cfg.SteadyQuorum < 1 {
		panic("wcg: quorum must be at least 1")
	}
	if cfg.Deadline <= 0 {
		panic("wcg: deadline must be positive")
	}
	for i, w := range cfg.Outages {
		if w.End <= w.Start || w.Start < 0 {
			panic("wcg: outage window must satisfy 0 <= Start < End")
		}
		if i > 0 && w.Start < cfg.Outages[i-1].End {
			panic("wcg: outage windows must be sorted and disjoint")
		}
	}
}

// SetProject stamps the server with its project identity on a shared
// multi-project grid: every assignment it issues from now on carries the
// index (Assignment.Project), which is how a work-fetch multiplexer routes
// a host's completions back to the issuing tenant. A standalone server
// keeps the zero identity. Work availability itself needs no extra hook:
// HasWork is an O(1) incrementally-maintained counter, so the multiplexer
// polls it per fetch and an idle tenant yields its slice immediately.
func (s *Server) SetProject(id int) {
	if id < 0 || id > 255 {
		panic("wcg: project index out of range [0,255]")
	}
	s.proj = uint8(id)
}

// Project returns the identity set by SetProject (0 when standalone).
func (s *Server) Project() int { return int(s.proj) }

// Retain switches the server to retained (arena) allocation: object
// chunks survive Reset and are re-carved by the next run. Pooled run
// contexts call it right after NewServer, before the first workunit is
// added, so the first run's chunks already land in the reusable arena.
func (s *Server) Retain() { s.retain = true }

// allocWU carves one WUState from the allocator in force, stamping its
// allocation index.
func (s *Server) allocWU() *WUState {
	var st *WUState
	if s.retain {
		st = s.wuArena.Alloc()
	} else {
		st = slab.Carve(&s.wuChunk)
	}
	st.idx = s.wuNext
	s.wuNext++
	return st
}

// allocAssignment carves one Assignment from the allocator in force,
// stamping its allocation index.
func (s *Server) allocAssignment() *Assignment {
	var a *Assignment
	if s.retain {
		a = s.asArena.Alloc()
	} else {
		a = slab.Carve(&s.asChunk)
	}
	a.idx = s.asNext
	s.asNext++
	return a
}

// Reset rearms the server for another run under a (possibly different)
// configuration, switching it to retained allocation (see Retain). The
// engine must have been Reset first: the quorum cache is recomputed
// against the engine's current clock. Backing storage — queue array,
// deadline ring, WUState/Assignment arenas — is retained; see the
// package-level Reset contract.
func (s *Server) Reset(cfg Config) {
	checkConfig(cfg)
	s.cfg = cfg
	s.retain = true
	s.proj = 0 // a pooled grid re-attaches (and re-stamps) after Reset
	s.wuChunk, s.asChunk = nil, nil
	clear(s.queue)
	s.queue = s.queue[:0]
	s.qHead = 0
	for i := range s.buckets {
		clear(s.buckets[i])
		s.buckets[i] = s.buckets[i][:0]
		s.bucketHead[i] = 0
	}
	s.minBucket = 0
	clear(s.batchRank)
	s.nextRank = 0
	s.nQueuedLive, s.nNeedy = 0, 0
	s.qCache = s.quorum()
	clear(s.adStreak)
	s.outages = cfg.Outages
	s.outIdx = 0
	clear(s.spool)
	s.spool = s.spool[:0]
	s.spoolArmed = false
	s.bindPolicies() // sizes and clears the deadline wheels
	s.wuArena.Reset()
	s.asArena.Reset()
	s.wuNext, s.asNext = 0, 0
	s.Stats = Stats{}
	s.OnComplete = nil
	s.OnWeekCPU = nil
	s.OnQuorumSwitch = nil
}

// Deadline returns the server's base reissue deadline: how long a copy of
// the default class may stay out before a replacement is issued. Agents
// use it to model how late a reconnecting device's result arrives; with a
// multi-class DeadlinePolicy, DeadlineFor gives an assignment's own class
// deadline.
func (s *Server) Deadline() float64 { return s.cfg.Deadline }

// DeadlineFor returns the reissue deadline of the assignment's deadline
// class. Under UniformDeadline it equals Deadline().
func (s *Server) DeadlineFor(a *Assignment) float64 {
	return s.wheels[a.class].deadline
}

// quorum returns the quorum in force at the current simulation time.
func (s *Server) quorum() int {
	if s.engine.Now() < s.cfg.QuorumSwitchTime {
		return s.cfg.InitialQuorum
	}
	return s.cfg.SteadyQuorum
}

// refreshQuorum recomputes the counters when the quorum in force has
// changed since they were last maintained. The quorum switches at most
// once per run (§5.1), so the O(queue) recount is amortized free. Every
// public entry point calls this first, so qCache is always the quorum in
// force for the rest of the call.
func (s *Server) refreshQuorum() {
	q := s.quorum()
	if q == s.qCache {
		return
	}
	if s.OnQuorumSwitch != nil {
		s.OnQuorumSwitch(s.engine.Now(), s.qCache, q)
	}
	s.qCache = q
	s.schedEach(s.syncCounts)
}

// syncCounts reconciles st's contribution to the O(1) counters after any
// change to its queue membership, outstanding copies, valid returns, or
// completion.
func (s *Server) syncCounts(st *WUState) {
	ql := st.queued && !st.Completed
	if ql != st.queuedLive {
		if ql {
			s.nQueuedLive++
		} else {
			s.nQueuedLive--
		}
		st.queuedLive = ql
	}
	ny := ql && st.validReturns+st.outstanding < s.qCache
	if ny != st.needy {
		if ny {
			s.nNeedy++
		} else {
			s.nNeedy--
		}
		st.needy = ny
	}
}

// AddWorkunit registers a distinct workunit for distribution.
func (s *Server) AddWorkunit(wu workunit.Workunit, batch int) *WUState {
	s.refreshQuorum()
	st := s.allocWU()
	st.WU = wu
	st.Batch = batch
	s.enqueue(st)
	return st
}

func (s *Server) enqueue(st *WUState) {
	if st.queued || st.Completed {
		return
	}
	st.queued = true
	s.schedPush(st)
	s.syncCounts(st)
}

// dequeueHead removes the queue head, keeping the counters in sync.
func (s *Server) dequeueHead(st *WUState) {
	s.queue[s.qHead] = nil
	s.qHead++
	if st != nil {
		st.queued = false
		s.syncCounts(st)
	}
	s.compactQueue()
}

// compactPrefix drops a slice's consumed prefix once it dominates the
// backing array, returning the compacted slice and head. Shared by the
// workunit FIFO and the deadline ring so the policy lives in one place.
func compactPrefix[T any](s []T, head int) ([]T, int) {
	if head <= 1024 || head*2 <= len(s) {
		return s, head
	}
	n := copy(s, s[head:])
	var zero T
	for i := n; i < len(s); i++ {
		s[i] = zero
	}
	return s[:n], 0
}

// compactQueue drops the consumed prefix once it dominates the slice.
func (s *Server) compactQueue() {
	s.queue, s.qHead = compactPrefix(s.queue, s.qHead)
}

// HasWork reports whether a work request would succeed. O(1).
func (s *Server) HasWork() bool {
	s.refreshQuorum()
	return s.nNeedy > 0
}

// needsCopies reports whether more copies of st should be out, given the
// quorum currently in force.
func (s *Server) needsCopies(st *WUState) bool {
	return st.validReturns+st.outstanding < s.qCache
}

// completeWU marks st validated and assimilated: the single place a
// workunit completes, whether by quorum or by a trusted host's result.
func (s *Server) completeWU(st *WUState) {
	st.Completed = true
	s.Stats.Completed++
	s.syncCounts(st)
	if s.OnComplete != nil {
		s.OnComplete(st)
	}
}

// maybeComplete validates st against the quorum currently in force. This
// matters when the quorum is lowered mid-project (§5.1): a workunit that
// already holds enough valid returns under the new quorum completes without
// waiting for further copies.
func (s *Server) maybeComplete(st *WUState) {
	if st.Completed || st.validReturns < s.qCache {
		return
	}
	s.completeWU(st)
}

// RequestWork hands out one copy, or nil if no work is available. The
// scheduler in force picks the workunit; the deadline timer for the copy
// starts immediately, on the wheel of the workunit's deadline class.
func (s *Server) RequestWork() *Assignment {
	s.refreshQuorum()
	if s.down() {
		// Unreachable middleware: no dispatch, no deadline started. The
		// fault plane's RetryAdvisor decides how long the host backs off.
		s.Stats.Refused++
		return nil
	}
	st := s.schedNext()
	if st == nil {
		return nil
	}
	s.Stats.Sent++
	a := s.allocAssignment()
	a.WU = st
	a.IssuedAt = s.engine.Now()
	a.proj = s.proj
	if s.classFn != nil {
		a.class = s.classFn(st)
	}
	w := &s.wheels[a.class]
	w.dlq = append(w.dlq, a)
	if !w.armed {
		// Arm at the ring head's due time, not the new copy's: when a
		// reentrant callback lands here mid-drain, earlier live
		// entries may still be in the ring and must not fire late.
		w.armed = true
		s.engine.ScheduleCall(w.dlq[w.dlHead].IssuedAt+w.deadline, w.drainFn,
			sim.Call{Kind: sim.CallWheelDrain, K0: a.class})
	}
	return a
}

// drainWheel is deadline class k's single recurring event: it times out
// every copy of the class whose deadline has passed (in issue order, at
// exactly IssuedAt+deadline since the wheel is always armed for the
// head's due time), discards copies that returned in the meantime, and
// re-arms itself for the next live head.
func (s *Server) drainWheel(k int) {
	w := &s.wheels[k]
	w.armed = false
	s.refreshQuorum()
	now := s.engine.Now()
	for w.dlHead < len(w.dlq) {
		a := w.dlq[w.dlHead]
		dead := a.returned || a.WU.Completed
		if !dead && a.IssuedAt+w.deadline > now {
			break
		}
		w.dlq[w.dlHead] = nil
		w.dlHead++
		if dead {
			continue
		}
		// Timed out: the server issues a replacement. The late copy may
		// still come back and be counted (§5.1).
		s.Stats.TimedOut++
		a.returned = true // the assignment no longer counts as live
		a.WU.outstanding--
		s.syncCounts(a.WU)
		s.maybeComplete(a.WU)
		if !a.WU.Completed {
			s.enqueue(a.WU)
		}
	}
	w.dlq, w.dlHead = compactPrefix(w.dlq, w.dlHead)
	// An OnComplete callback above may have called RequestWork and armed
	// the wheel already; re-arming unconditionally would fork a second,
	// permanent drain chain.
	if !w.armed && w.dlHead < len(w.dlq) {
		w.armed = true
		s.engine.ScheduleCall(w.dlq[w.dlHead].IssuedAt+w.deadline, w.drainFn,
			sim.Call{Kind: sim.CallWheelDrain, K0: uint8(k)})
	}
}

// Complete reports a result for an assignment with no host identity: the
// validator in force can never grant it per-host trust. Equivalent to
// CompleteFrom(a, outcome, cpuSeconds, -1).
func (s *Server) Complete(a *Assignment, outcome Outcome, cpuSeconds float64) {
	s.CompleteFrom(a, outcome, cpuSeconds, -1)
}

// CompleteFrom reports a result for an assignment computed by the given
// host (any non-negative identity; negative means anonymous). cpuSeconds
// is the run time the agent reports (wall-clock based for the UD agent,
// §6). Late results (after timeout) are accepted: their CPU time was
// spent and is accounted, and if the workunit still needed a result they
// validate it. Under AdaptiveValidator the host identity carries the
// valid-result streak that can earn the host per-host quorum 1.
func (s *Server) CompleteFrom(a *Assignment, outcome Outcome, cpuSeconds float64, host int) {
	if a == nil {
		panic("wcg: Complete(nil)")
	}
	s.refreshQuorum()
	if s.down() {
		// Deferred validation: the result arrives while the server is down
		// and is spooled verbatim; the drain event at the window's end
		// replays it through completeNow in arrival order. Its copy may
		// time out on the wheel in the meantime, in which case it lands as
		// a late return — the same §5.1 path an offline straggler takes.
		s.Stats.Deferred++
		if !s.spoolArmed {
			s.spoolArmed = true
			if s.spoolFn == nil {
				// Bound lazily at the first spooled result ever, so a
				// server that never sees an outage allocates nothing for
				// the spool machinery (the nil-probe alloc gate covers it).
				s.spoolFn = s.drainSpool
			}
			s.engine.ScheduleCall(s.outages[s.outIdx].End, s.spoolFn,
				sim.Call{Kind: sim.CallSpoolDrain})
		}
		s.spool = append(s.spool, spooled{a: a, cpu: cpuSeconds, host: int32(host), outcome: outcome})
		return
	}
	s.completeNow(a, outcome, cpuSeconds, host)
}

// down reports whether the current simulation time falls inside a
// configured outage window, advancing the monotone cursor past windows
// that have ended. O(1) amortized; a single compare when no windows are
// configured.
func (s *Server) down() bool {
	if s.outIdx >= len(s.outages) {
		return false
	}
	now := s.engine.Now()
	for s.outIdx < len(s.outages) && now >= s.outages[s.outIdx].End {
		s.outIdx++
	}
	return s.outIdx < len(s.outages) && now >= s.outages[s.outIdx].Start
}

// drainSpool replays the results that arrived during the outage, in
// arrival order, through the normal completion path. It runs as a single
// engine event at the window's end, so the replay occupies one
// deterministic slot in the global event order regardless of kernel or
// shard count.
func (s *Server) drainSpool() {
	s.spoolArmed = false
	s.refreshQuorum()
	for i := 0; i < len(s.spool); i++ {
		sp := s.spool[i]
		s.spool[i] = spooled{}
		s.completeNow(sp.a, sp.outcome, sp.cpu, int(sp.host))
	}
	s.spool = s.spool[:0]
}

// completeNow is the validation path proper (CompleteFrom minus the
// outage gate); the caller has already refreshed the quorum.
func (s *Server) completeNow(a *Assignment, outcome Outcome, cpuSeconds float64, host int) {
	late := a.returned
	if late {
		s.Stats.LateReturns++
	} else {
		a.returned = true
		a.WU.outstanding--
		s.syncCounts(a.WU)
	}
	s.Stats.Received++
	s.Stats.CPUSeconds += cpuSeconds
	if s.OnWeekCPU != nil {
		s.OnWeekCPU(sim.Calendar{}.WeekIndex(s.engine.Now()), cpuSeconds)
	}

	if outcome == OutcomeInvalid {
		s.Stats.Invalid++
		s.Stats.WastedSeconds += cpuSeconds
		if s.adaptiveOn && host >= 0 && host < len(s.adStreak) {
			s.adStreak[host] = 0 // an invalid result forfeits the streak
		}
		if !a.WU.Completed {
			s.enqueue(a.WU)
		}
		return
	}

	s.Stats.Valid++
	trusted := false
	if s.adaptiveOn && host >= 0 {
		trusted = s.recordValid(host)
	}
	if a.WU.Completed {
		// Redundant: workunit already validated (late or extra copy).
		s.Stats.Wasted++
		s.Stats.WastedSeconds += cpuSeconds
		return
	}
	// Whether it completes the workunit or advances the quorum, the
	// result is useful.
	a.WU.validReturns++
	s.Stats.Useful++
	s.syncCounts(a.WU)
	s.maybeComplete(a.WU)
	if trusted && !a.WU.Completed {
		// Adaptive replication: a trusted host's result validates alone,
		// regardless of the quorum still pending.
		s.completeWU(a.WU)
	}
	if !a.WU.Completed && s.needsCopies(a.WU) {
		s.enqueue(a.WU)
	}
}

// recordValid advances the host's valid-result streak and reports whether
// the host was already trusted when this result arrived (trust is earned
// by *prior* results: the result that crosses the threshold does not
// validate itself).
func (s *Server) recordValid(host int) bool {
	for len(s.adStreak) <= host {
		s.adStreak = append(s.adStreak, 0)
	}
	trusted := s.adStreak[host] >= s.adThreshold
	s.adStreak[host]++
	return trusted
}

// EnsureHosts presizes the per-host validation-trust table for a fleet of
// n hosts, so a mega-grid spawn burst does not regrow it result by result.
// Purely a capacity hint: an absent streak entry and a zero entry behave
// identically, and a non-adaptive server keeps no table at all.
func (s *Server) EnsureHosts(n int) {
	if !s.adaptiveOn {
		return
	}
	for len(s.adStreak) < n {
		s.adStreak = append(s.adStreak, 0)
	}
}

// PendingCount returns the number of workunits still waiting for copies or
// validation (queue depth; completed entries are not counted). O(1).
func (s *Server) PendingCount() int {
	return s.nQueuedLive
}

// WheelClasses returns the number of deadline classes (wheels) in force.
func (s *Server) WheelClasses() int { return len(s.wheels) }

// WheelOccupancy returns the number of entries sitting in deadline class
// k's timeout ring. Diagnostic, O(1): the count includes copies that
// already returned but have not yet been lazily discarded by the drain, so
// it upper-bounds the class's truly live copies.
func (s *Server) WheelOccupancy(k int) int {
	w := &s.wheels[k]
	return len(w.dlq) - w.dlHead
}

// String summarizes the server state for logs.
func (s *Server) String() string {
	return fmt.Sprintf("wcg.Server{sent=%d received=%d valid=%d completed=%d redundancy=%.3f}",
		s.Stats.Sent, s.Stats.Received, s.Stats.Valid, s.Stats.Completed, s.Stats.RedundancyFactor())
}
