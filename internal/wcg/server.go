// Package wcg implements the volunteer-grid middleware: the server side of
// a BOINC / Grid MP style desktop grid as described in §3.1 of the paper.
//
// The server hosts a database of workunits. Volunteer agents contact it to
// fetch work, compute, and send results back. The middleware implements the
// reliability machinery the paper describes:
//
//   - redundant computing (§5.1): more than one copy of a workunit may be
//     sent out, either for quorum validation (results compared against each
//     other) or because a copy timed out or came back invalid. Late results
//     from long-offline volunteers are still accepted and counted, which is
//     why only ~73 % of received results are useful and the overall
//     redundancy factor is 1.37;
//   - validation (§5.2): with quorum 1, results are checked by value
//     (file/line/range checks); with quorum ≥ 2, matching copies validate
//     each other;
//   - timeouts and retransmission: a copy not returned by its deadline is
//     reissued.
//
// The server is driven by a discrete-event engine; it has no goroutines of
// its own and is deterministic given the engine's event order.
//
// Two mechanisms keep the server O(1) per transaction at campaign scale
// (millions of workunits, tens of thousands of agents):
//
//   - Queue depth (PendingCount) and work availability (HasWork) are
//     incrementally maintained counters, not scans. The counters depend on
//     the quorum in force, so the one mid-project quorum switch triggers a
//     single O(queue) recount — amortized free.
//   - Deadlines use a wheel, not per-assignment timers: Config.Deadline is
//     a constant, so copies time out in issue order, and one ring-buffer
//     FIFO drained by a single re-armed engine event replaces millions of
//     event-heap inserts and cancellations. Each timeout still fires at
//     exactly IssuedAt+Deadline; copies returned in time simply fall out of
//     the ring unprocessed.
//
// # Reset contract
//
// Server.Reset rearms a server for another run on the same (freshly
// reset) engine, retaining what a campaign is expensive to rebuild: the
// workunit FIFO's backing array, the deadline ring, and the WUState and
// Assignment arenas. Everything observable is zeroed — queue contents,
// counters, Stats, the OnComplete/OnWeekCPU callbacks — so a reset server
// is indistinguishable from NewServer to the model driving it. Every
// *WUState and *Assignment obtained before the Reset is invalidated (the
// arenas re-carve their slots); callers must drop them all first.
package wcg

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/slab"
	"repro/internal/workunit"
)

// Outcome describes how a computation attempt ended, from the server's
// point of view.
type Outcome int

const (
	// OutcomeValid is a correct result returned before (or even after)
	// the deadline.
	OutcomeValid Outcome = iota
	// OutcomeInvalid is a returned result that fails validation.
	OutcomeInvalid
)

// WUState tracks one distinct workunit through its life cycle.
type WUState struct {
	WU workunit.Workunit

	// Copies currently in the hands of volunteers.
	outstanding int
	// Valid results received so far (for quorum validation).
	validReturns int
	// Completed reports whether the workunit has been validated and
	// assimilated.
	Completed bool
	// Batch the workunit belongs to (campaign bookkeeping).
	Batch int

	// Counter bookkeeping (see syncCounts).
	queued     bool // sitting in the server's FIFO
	queuedLive bool // counted in nQueuedLive
	needy      bool // counted in nNeedy
}

// Config tunes the middleware policies.
type Config struct {
	// InitialQuorum is the number of matching results required while the
	// project validates by comparison (the early, cautious period §5.1).
	InitialQuorum int
	// SteadyQuorum is the quorum after the project switches to value-based
	// validation (range checks on the result files).
	SteadyQuorum int
	// QuorumSwitchTime is the simulation time at which validation switches
	// from InitialQuorum to SteadyQuorum. Zero means immediately.
	QuorumSwitchTime sim.Time
	// Deadline is how long a copy may stay out before it is considered
	// timed out and a replacement is issued. It is a server-wide constant,
	// which is what makes the deadline wheel exact: copies time out in the
	// order they were issued.
	Deadline float64
}

// DefaultConfig mirrors the production deployment: quorum-2 comparison
// validation for the first weeks, then value-checked single results, with
// an 8-day return deadline.
func DefaultConfig() Config {
	return Config{
		InitialQuorum:    2,
		SteadyQuorum:     1,
		QuorumSwitchTime: 14 * sim.Week,
		Deadline:         8 * sim.Day,
	}
}

// Stats aggregates the server-side accounting the paper reports in
// Figure 6(b) and §5.1.
type Stats struct {
	Sent          int64 // copies handed to volunteers
	Received      int64 // results returned (valid or not)
	Valid         int64 // results passing validation
	Useful        int64 // valid results that completed a workunit need
	Wasted        int64 // valid but redundant results (already validated)
	Invalid       int64 // results failing validation
	TimedOut      int64 // copies reissued after missing the deadline
	Completed     int64 // distinct workunits validated
	CPUSeconds    float64
	WastedSeconds float64
}

// RedundancyFactor returns copies-sent per distinct workunit completed —
// the paper's 1.37.
func (s Stats) RedundancyFactor() float64 {
	if s.Completed == 0 {
		return 0
	}
	return float64(s.Sent) / float64(s.Completed)
}

// UsefulFraction returns the fraction of received results that correspond
// to distinct completed workunits — the paper's 73 % (3,936,010 effective
// results out of 5,418,010 received). Quorum duplicates, late returns and
// invalid results make up the remainder.
func (s Stats) UsefulFraction() float64 {
	if s.Received == 0 {
		return 0
	}
	return float64(s.Completed) / float64(s.Received)
}

// Assignment is a copy of a workunit handed to a volunteer.
type Assignment struct {
	WU       *WUState
	IssuedAt sim.Time
	returned bool
}

// Server is the volunteer-grid work distributor.
type Server struct {
	cfg    Config
	engine *sim.Engine

	queue []*WUState // FIFO of workunits needing more copies out
	qHead int

	// Incrementally maintained counters (see syncCounts):
	nQueuedLive int // queued workunits not yet completed: PendingCount
	nNeedy      int // queued workunits needing more copies out: HasWork
	qCache      int // quorum the counters were computed against

	// Deadline wheel: assignments in issue order, drained by one re-armed
	// engine event. Returned/completed copies fall out of the ring lazily.
	dlq     []*Assignment
	dlHead  int
	dlArmed bool
	drainFn func() // bound once; re-armed without allocating a closure

	// Bump allocators: workunit states and assignments are carved from
	// chunks instead of allocated one by one (millions per campaign). Two
	// modes, switched by retain:
	//
	//   - one-shot (default): progressive slabs whose carved-past chunks
	//     are collected as soon as their objects are unreachable, so a
	//     single run's memory is reclaimed as the campaign progresses;
	//   - retained (Retain/Reset): arenas that survive Reset, so a pooled
	//     server re-carves the same chunks run after run.
	retain  bool
	wuChunk []WUState
	asChunk []Assignment
	wuArena slab.Arena[WUState]
	asArena slab.Arena[Assignment]

	Stats Stats

	// OnComplete, if non-nil, is invoked when a distinct workunit is
	// validated (used by the campaign orchestrator for progression and
	// batch release).
	OnComplete func(*WUState)

	// OnWeekCPU, if non-nil, receives (weekIndex, cpuSeconds) for every
	// returned result, for the Figure 6(a) weekly VFTP series.
	OnWeekCPU func(week int, cpuSeconds float64)
}

// NewServer creates a server bound to the simulation engine.
func NewServer(engine *sim.Engine, cfg Config) *Server {
	checkConfig(cfg)
	s := &Server{
		cfg:    cfg,
		engine: engine,
	}
	s.qCache = s.quorum()
	s.drainFn = s.drainDeadlines
	return s
}

func checkConfig(cfg Config) {
	if cfg.InitialQuorum < 1 || cfg.SteadyQuorum < 1 {
		panic("wcg: quorum must be at least 1")
	}
	if cfg.Deadline <= 0 {
		panic("wcg: deadline must be positive")
	}
}

// Retain switches the server to retained (arena) allocation: object
// chunks survive Reset and are re-carved by the next run. Pooled run
// contexts call it right after NewServer, before the first workunit is
// added, so the first run's chunks already land in the reusable arena.
func (s *Server) Retain() { s.retain = true }

// allocWU carves one WUState from the allocator in force.
func (s *Server) allocWU() *WUState {
	if s.retain {
		return s.wuArena.Alloc()
	}
	return slab.Carve(&s.wuChunk)
}

// allocAssignment carves one Assignment from the allocator in force.
func (s *Server) allocAssignment() *Assignment {
	if s.retain {
		return s.asArena.Alloc()
	}
	return slab.Carve(&s.asChunk)
}

// Reset rearms the server for another run under a (possibly different)
// configuration, switching it to retained allocation (see Retain). The
// engine must have been Reset first: the quorum cache is recomputed
// against the engine's current clock. Backing storage — queue array,
// deadline ring, WUState/Assignment arenas — is retained; see the
// package-level Reset contract.
func (s *Server) Reset(cfg Config) {
	checkConfig(cfg)
	s.cfg = cfg
	s.retain = true
	s.wuChunk, s.asChunk = nil, nil
	clear(s.queue)
	s.queue = s.queue[:0]
	s.qHead = 0
	s.nQueuedLive, s.nNeedy = 0, 0
	s.qCache = s.quorum()
	clear(s.dlq)
	s.dlq = s.dlq[:0]
	s.dlHead = 0
	s.dlArmed = false
	s.wuArena.Reset()
	s.asArena.Reset()
	s.Stats = Stats{}
	s.OnComplete = nil
	s.OnWeekCPU = nil
}

// Deadline returns the server's reissue deadline: how long a copy may stay
// out before a replacement is issued. Agents use it to model how late a
// reconnecting device's result arrives.
func (s *Server) Deadline() float64 { return s.cfg.Deadline }

// quorum returns the quorum in force at the current simulation time.
func (s *Server) quorum() int {
	if s.engine.Now() < s.cfg.QuorumSwitchTime {
		return s.cfg.InitialQuorum
	}
	return s.cfg.SteadyQuorum
}

// refreshQuorum recomputes the counters when the quorum in force has
// changed since they were last maintained. The quorum switches at most
// once per run (§5.1), so the O(queue) recount is amortized free. Every
// public entry point calls this first, so qCache is always the quorum in
// force for the rest of the call.
func (s *Server) refreshQuorum() {
	q := s.quorum()
	if q == s.qCache {
		return
	}
	s.qCache = q
	for i := s.qHead; i < len(s.queue); i++ {
		if st := s.queue[i]; st != nil {
			s.syncCounts(st)
		}
	}
}

// syncCounts reconciles st's contribution to the O(1) counters after any
// change to its queue membership, outstanding copies, valid returns, or
// completion.
func (s *Server) syncCounts(st *WUState) {
	ql := st.queued && !st.Completed
	if ql != st.queuedLive {
		if ql {
			s.nQueuedLive++
		} else {
			s.nQueuedLive--
		}
		st.queuedLive = ql
	}
	ny := ql && st.validReturns+st.outstanding < s.qCache
	if ny != st.needy {
		if ny {
			s.nNeedy++
		} else {
			s.nNeedy--
		}
		st.needy = ny
	}
}

// AddWorkunit registers a distinct workunit for distribution.
func (s *Server) AddWorkunit(wu workunit.Workunit, batch int) *WUState {
	s.refreshQuorum()
	st := s.allocWU()
	st.WU = wu
	st.Batch = batch
	s.enqueue(st)
	return st
}

func (s *Server) enqueue(st *WUState) {
	if st.queued || st.Completed {
		return
	}
	st.queued = true
	s.queue = append(s.queue, st)
	s.syncCounts(st)
}

// dequeueHead removes the queue head, keeping the counters in sync.
func (s *Server) dequeueHead(st *WUState) {
	s.queue[s.qHead] = nil
	s.qHead++
	if st != nil {
		st.queued = false
		s.syncCounts(st)
	}
	s.compactQueue()
}

// compactPrefix drops a slice's consumed prefix once it dominates the
// backing array, returning the compacted slice and head. Shared by the
// workunit FIFO and the deadline ring so the policy lives in one place.
func compactPrefix[T any](s []T, head int) ([]T, int) {
	if head <= 1024 || head*2 <= len(s) {
		return s, head
	}
	n := copy(s, s[head:])
	var zero T
	for i := n; i < len(s); i++ {
		s[i] = zero
	}
	return s[:n], 0
}

// compactQueue drops the consumed prefix once it dominates the slice.
func (s *Server) compactQueue() {
	s.queue, s.qHead = compactPrefix(s.queue, s.qHead)
}

// HasWork reports whether a work request would succeed. O(1).
func (s *Server) HasWork() bool {
	s.refreshQuorum()
	return s.nNeedy > 0
}

// needsCopies reports whether more copies of st should be out, given the
// quorum currently in force.
func (s *Server) needsCopies(st *WUState) bool {
	return st.validReturns+st.outstanding < s.qCache
}

// maybeComplete validates st against the quorum currently in force. This
// matters when the quorum is lowered mid-project (§5.1): a workunit that
// already holds enough valid returns under the new quorum completes without
// waiting for further copies.
func (s *Server) maybeComplete(st *WUState) {
	if st.Completed || st.validReturns < s.qCache {
		return
	}
	st.Completed = true
	s.Stats.Completed++
	s.syncCounts(st)
	if s.OnComplete != nil {
		s.OnComplete(st)
	}
}

// RequestWork hands out one copy, or nil if no work is available. The
// deadline timer for the copy starts immediately.
func (s *Server) RequestWork() *Assignment {
	s.refreshQuorum()
	for s.qHead < len(s.queue) {
		st := s.queue[s.qHead]
		if st != nil {
			s.maybeComplete(st)
		}
		if st == nil || st.Completed || !s.needsCopies(st) {
			s.dequeueHead(st)
			continue
		}
		st.outstanding++
		// If the workunit still needs more copies (quorum > 1), leave it
		// at the queue head; otherwise it is consumed for now.
		if !s.needsCopies(st) {
			s.dequeueHead(st)
		} else {
			s.syncCounts(st)
		}
		s.Stats.Sent++
		a := s.allocAssignment()
		a.WU = st
		a.IssuedAt = s.engine.Now()
		s.dlq = append(s.dlq, a)
		if !s.dlArmed {
			// Arm at the ring head's due time, not the new copy's: when a
			// reentrant callback lands here mid-drain, earlier live
			// entries may still be in the ring and must not fire late.
			s.dlArmed = true
			s.engine.Schedule(s.dlq[s.dlHead].IssuedAt+s.cfg.Deadline, s.drainFn)
		}
		return a
	}
	return nil
}

// drainDeadlines is the deadline wheel's single recurring event: it times
// out every copy whose deadline has passed (in issue order, at exactly
// IssuedAt+Deadline since the wheel is always armed for the head's due
// time), discards copies that returned in the meantime, and re-arms itself
// for the next live head.
func (s *Server) drainDeadlines() {
	s.dlArmed = false
	s.refreshQuorum()
	now := s.engine.Now()
	for s.dlHead < len(s.dlq) {
		a := s.dlq[s.dlHead]
		dead := a.returned || a.WU.Completed
		if !dead && a.IssuedAt+s.cfg.Deadline > now {
			break
		}
		s.dlq[s.dlHead] = nil
		s.dlHead++
		if dead {
			continue
		}
		// Timed out: the server issues a replacement. The late copy may
		// still come back and be counted (§5.1).
		s.Stats.TimedOut++
		a.returned = true // the assignment no longer counts as live
		a.WU.outstanding--
		s.syncCounts(a.WU)
		s.maybeComplete(a.WU)
		if !a.WU.Completed {
			s.enqueue(a.WU)
		}
	}
	s.dlq, s.dlHead = compactPrefix(s.dlq, s.dlHead)
	// An OnComplete callback above may have called RequestWork and armed
	// the wheel already; re-arming unconditionally would fork a second,
	// permanent drain chain.
	if !s.dlArmed && s.dlHead < len(s.dlq) {
		s.dlArmed = true
		s.engine.Schedule(s.dlq[s.dlHead].IssuedAt+s.cfg.Deadline, s.drainFn)
	}
}

// Complete reports a result for an assignment. cpuSeconds is the run time
// the agent reports (wall-clock based for the UD agent, §6). Late results
// (after timeout) are accepted: their CPU time was spent and is accounted,
// and if the workunit still needed a result they validate it.
func (s *Server) Complete(a *Assignment, outcome Outcome, cpuSeconds float64) {
	if a == nil {
		panic("wcg: Complete(nil)")
	}
	s.refreshQuorum()
	late := a.returned
	if !late {
		a.returned = true
		a.WU.outstanding--
		s.syncCounts(a.WU)
	}
	s.Stats.Received++
	s.Stats.CPUSeconds += cpuSeconds
	if s.OnWeekCPU != nil {
		s.OnWeekCPU(sim.Calendar{}.WeekIndex(s.engine.Now()), cpuSeconds)
	}

	if outcome == OutcomeInvalid {
		s.Stats.Invalid++
		s.Stats.WastedSeconds += cpuSeconds
		if !a.WU.Completed {
			s.enqueue(a.WU)
		}
		return
	}

	s.Stats.Valid++
	if a.WU.Completed {
		// Redundant: workunit already validated (late or extra copy).
		s.Stats.Wasted++
		s.Stats.WastedSeconds += cpuSeconds
		return
	}
	// Whether it completes the workunit or advances the quorum, the
	// result is useful.
	a.WU.validReturns++
	s.Stats.Useful++
	s.syncCounts(a.WU)
	s.maybeComplete(a.WU)
	if !a.WU.Completed && s.needsCopies(a.WU) {
		s.enqueue(a.WU)
	}
}

// PendingCount returns the number of workunits still waiting for copies or
// validation (queue depth; completed entries are not counted). O(1).
func (s *Server) PendingCount() int {
	return s.nQueuedLive
}

// String summarizes the server state for logs.
func (s *Server) String() string {
	return fmt.Sprintf("wcg.Server{sent=%d received=%d valid=%d completed=%d redundancy=%.3f}",
		s.Stats.Sent, s.Stats.Received, s.Stats.Valid, s.Stats.Completed, s.Stats.RedundancyFactor())
}
